package isacmp

import (
	"errors"
	"testing"

	"isacmp/internal/a64"
	"isacmp/internal/elfio"
	"isacmp/internal/isa"
	"isacmp/internal/rv64"
	"isacmp/internal/simeng"
)

// textSegmentOf returns the single executable segment of a compiled
// binary.
func textSegmentOf(t *testing.T, f *elfio.File) *elfio.Segment {
	t.Helper()
	for i := range f.Segments {
		if f.Segments[i].Flags&elfio.PFX != 0 {
			return &f.Segments[i]
		}
	}
	t.Fatal("no executable segment")
	return nil
}

// leWord reads the little-endian 32-bit word at byte offset off.
func leWord(data []byte, off int) uint32 {
	return uint32(data[off]) | uint32(data[off+1])<<8 |
		uint32(data[off+2])<<16 | uint32(data[off+3])<<24
}

// TestPredecodeSweep is the exhaustive predecode equality check: for
// every compiled workload on every target, every word of the text
// segment must predecode to exactly what a fresh Decode of the raw
// word produces — the predecode cache can never serve a stale or
// wrong instruction because the text is immutable (see DESIGN.md).
func TestPredecodeSweep(t *testing.T) {
	for _, p := range Suite(Tiny) {
		for _, tgt := range Targets() {
			bin, err := Compile(p, tgt)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, tgt, err)
			}
			mach, _, err := bin.NewMachine()
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, tgt, err)
			}
			text := textSegmentOf(t, bin.compiled.File)
			words := len(text.Data) / 4
			bad := 0
			for i := 0; i < words; i++ {
				pc := text.Vaddr + uint64(i*4)
				w := leWord(text.Data, i*4)
				switch tgt.Arch {
				case isa.AArch64:
					m := mach.(*a64.Machine)
					got, ok := m.InstAt(pc)
					if !ok {
						t.Fatalf("%s %s: pc %#x not in predecode cache", p.Name, tgt, pc)
					}
					want, derr := a64.Decode(w)
					if derr != nil {
						bad++
						want = a64.Inst{} // bad slot stays the zero Inst
					}
					if got != want {
						t.Fatalf("%s %s: pc %#x word %#x: cached %+v != decoded %+v",
							p.Name, tgt, pc, w, got, want)
					}
				case isa.RV64:
					m := mach.(*rv64.Machine)
					got, ok := m.InstAt(pc)
					if !ok {
						t.Fatalf("%s %s: pc %#x not in predecode cache", p.Name, tgt, pc)
					}
					want, derr := rv64.Decode(w)
					if derr != nil {
						bad++
						want = rv64.Inst{}
					}
					if got != want {
						t.Fatalf("%s %s: pc %#x word %#x: cached %+v != decoded %+v",
							p.Name, tgt, pc, w, got, want)
					}
				}
			}
			src, ok := mach.(isa.PredecodeStatsSource)
			if !ok {
				t.Fatalf("%s %s: machine does not report predecode stats", p.Name, tgt)
			}
			st := src.PredecodeStats()
			if st.TextWords != uint64(words) {
				t.Fatalf("%s %s: TextWords = %d, want %d", p.Name, tgt, st.TextWords, words)
			}
			if st.BadWords != uint64(bad) {
				t.Fatalf("%s %s: BadWords = %d, sweep found %d", p.Name, tgt, st.BadWords, bad)
			}
			if st.Fallbacks != 0 {
				t.Fatalf("%s %s: %d fallbacks before any Step", p.Name, tgt, st.Fallbacks)
			}
		}
	}
}

// corruptFirstTextWord compiles the workload and overwrites the first
// text word with an unallocated encoding before machine construction.
func corruptFirstTextWord(t *testing.T, tgt Target) (simeng.Machine, uint64) {
	t.Helper()
	bin, err := Compile(Workload("stream", Tiny), tgt)
	if err != nil {
		t.Fatal(err)
	}
	text := textSegmentOf(t, bin.compiled.File)
	// The all-zero word is an unallocated encoding on both ISAs.
	text.Data[0], text.Data[1], text.Data[2], text.Data[3] = 0, 0, 0, 0
	mach, _, err := bin.NewMachine()
	if err != nil {
		t.Fatalf("tolerant predecode must not fail construction: %v", err)
	}
	return mach, text.Vaddr
}

// TestPredecodeTolerantBadWord checks the fallback path on both ISAs:
// a text word that fails to predecode does not fail machine
// construction; it faults with a classified decode error only when
// the PC actually reaches it, and the fallback counter records the
// attempt.
func TestPredecodeTolerantBadWord(t *testing.T) {
	for _, tgt := range Targets() {
		mach, badPC := corruptFirstTextWord(t, tgt)
		st := mach.(isa.PredecodeStatsSource).PredecodeStats()
		if st.BadWords != 1 {
			t.Fatalf("%s: BadWords = %d, want 1", tgt, st.BadWords)
		}

		// Point the PC at the bad word: Step must fault, and the fault
		// must classify as a decode error.
		switch m := mach.(type) {
		case *a64.Machine:
			m.PCReg = badPC
		case *rv64.Machine:
			m.PCReg = badPC
		}
		var ev isa.Event
		_, err := mach.Step(&ev)
		if err == nil {
			t.Fatalf("%s: executing a bad word did not fault", tgt)
		}
		if !errors.Is(simeng.Classify(err), simeng.ErrDecode) {
			t.Fatalf("%s: fault classified as %v, want ErrDecode", tgt, simeng.Classify(err))
		}
		st = mach.(isa.PredecodeStatsSource).PredecodeStats()
		if st.Fallbacks != 1 {
			t.Fatalf("%s: Fallbacks = %d after bad-word fetch, want 1", tgt, st.Fallbacks)
		}

		// Point the PC outside the text segment: Step must fault and the
		// fallback counter must record the missed fetch.
		switch m := mach.(type) {
		case *a64.Machine:
			m.PCReg = 0x40
		case *rv64.Machine:
			m.PCReg = 0x40
		}
		if _, err := mach.Step(&ev); err == nil {
			t.Fatalf("%s: out-of-text fetch did not fault", tgt)
		}
		st = mach.(isa.PredecodeStatsSource).PredecodeStats()
		if st.Fallbacks != 2 {
			t.Fatalf("%s: Fallbacks = %d after out-of-text fetch, want 2", tgt, st.Fallbacks)
		}
	}
}

// TestPredecodeFaultsThroughStepN checks a bad word faults with the
// same classification and retirement count through the batched loop.
func TestPredecodeFaultsThroughStepN(t *testing.T) {
	for _, tgt := range Targets() {
		mach, badPC := corruptFirstTextWord(t, tgt)
		switch m := mach.(type) {
		case *a64.Machine:
			m.PCReg = badPC
		case *rv64.Machine:
			m.PCReg = badPC
		}
		_, err := (&simeng.EmulationCore{}).Run(mach, nil)
		if err == nil {
			t.Fatalf("%s: batched run over a bad word did not fault", tgt)
		}
		if !errors.Is(err, simeng.ErrDecode) {
			t.Fatalf("%s: batched fault = %v, want ErrDecode", tgt, err)
		}
		var se *simeng.SimError
		if !errors.As(err, &se) {
			t.Fatalf("%s: fault is not a SimError: %v", tgt, err)
		}
		if se.Retired != 0 || se.PC != badPC {
			t.Fatalf("%s: fault at pc=%#x retired=%d, want pc=%#x retired=0", tgt, se.PC, se.Retired, badPC)
		}
	}
}
