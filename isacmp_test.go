package isacmp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	prog := Workload("stream", Tiny)
	if prog == nil {
		t.Fatal("stream workload missing")
	}
	for _, tgt := range Targets() {
		bin, err := Compile(prog, tgt)
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		if err := bin.Verify(); err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		res, err := bin.Analyse(Analyses{
			PathLength: true, CritPath: true, ScaledCritPath: true,
			Windowed: true, WindowSizes: []int{4, 64},
		})
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		if res.Stats.Instructions == 0 || res.CP == 0 || res.ScaledCP == 0 {
			t.Fatalf("%s: empty analysis %+v", tgt, res)
		}
		if res.CP > res.Stats.Instructions {
			t.Fatalf("%s: CP %d exceeds path length %d", tgt, res.CP, res.Stats.Instructions)
		}
		if res.ScaledCP < res.CP {
			t.Fatalf("%s: scaled CP %d below plain CP %d", tgt, res.ScaledCP, res.CP)
		}
		if math.Abs(res.ILP*float64(res.CP)-float64(res.Stats.Instructions)) > 1 {
			t.Fatalf("%s: ILP identity broken", tgt)
		}
		var total uint64
		for _, rc := range res.Regions {
			total += rc.Count
		}
		if total+res.OtherInstructions != res.Stats.Instructions {
			t.Fatalf("%s: region counts %d + other %d != total %d",
				tgt, total, res.OtherInstructions, res.Stats.Instructions)
		}
		if len(res.Windows) != 2 || res.Windows[0].MeanILP <= 0 {
			t.Fatalf("%s: windows %+v", tgt, res.Windows)
		}
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Fatalf("workloads: %v", Workloads())
	}
	if Workload("nope", Tiny) != nil {
		t.Fatal("unknown workload returned non-nil")
	}
	if len(Suite(Tiny)) != 5 {
		t.Fatal("suite incomplete")
	}
}

// TestPaperListingShapes verifies that the generated copy kernels use
// the exact instruction sequences the paper's section 3.3 analyses.
func TestPaperListingShapes(t *testing.T) {
	prog := Workload("stream", Small) // bound 20000 exceeds imm12

	disasm := func(tgt Target) string {
		bin, err := Compile(prog, tgt)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := bin.Disassemble("copy", &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	arm12 := disasm(Target{Arch: AArch64, Flavor: GCC12})
	for _, want := range []string{"ldr d", "lsl #3]", "str d", "cmp x", "b.ne"} {
		if !strings.Contains(arm12, want) {
			t.Errorf("AArch64 GCC12 copy kernel missing %q:\n%s", want, arm12)
		}
	}
	if strings.Contains(arm12, "subs") {
		t.Errorf("AArch64 GCC12 copy kernel should not use subs:\n%s", arm12)
	}

	arm9 := disasm(Target{Arch: AArch64, Flavor: GCC9})
	for _, want := range []string{"sub x", "lsl #12", "subs x"} {
		if !strings.Contains(arm9, want) {
			t.Errorf("AArch64 GCC9 copy kernel missing the sub/subs idiom %q:\n%s", want, arm9)
		}
	}

	rv := disasm(Target{Arch: RV64, Flavor: GCC12})
	for _, want := range []string{"fld f", "fsd f", "addi t", "bne t"} {
		if !strings.Contains(rv, want) {
			t.Errorf("RV64 copy kernel missing %q:\n%s", want, rv)
		}
	}
	if strings.Contains(rv, "slli") && strings.Count(rv, "slli") > 1 {
		t.Errorf("RV64 copy loop should be pointer-bumped, not computed:\n%s", rv)
	}
}

// TestGCCDeltaDirection checks the paper's compiler-version finding:
// GCC 12.2 shortens the AArch64 STREAM path, and the RISC-V kernels
// are identical between compiler versions.
func TestGCCDeltaDirection(t *testing.T) {
	// Use the small scale: its 20000 bound exceeds imm12, so the GCC 9
	// sub/subs idiom appears.
	prog := Workload("stream", Small)
	counts := map[Target]uint64{}
	for _, tgt := range Targets() {
		bin, err := Compile(prog, tgt)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := bin.Run()
		if err != nil {
			t.Fatal(err)
		}
		counts[tgt] = stats.Instructions
	}
	arm9 := counts[Target{Arch: AArch64, Flavor: GCC9}]
	arm12 := counts[Target{Arch: AArch64, Flavor: GCC12}]
	if arm12 >= arm9 {
		t.Errorf("GCC12 AArch64 (%d) not shorter than GCC9 (%d)", arm12, arm9)
	}
	rv9 := counts[Target{Arch: RV64, Flavor: GCC9}]
	rv12 := counts[Target{Arch: RV64, Flavor: GCC12}]
	// RISC-V kernels are identical; only the prologue differs.
	if diff := int64(rv9) - int64(rv12); diff < 0 || diff > 16 {
		t.Errorf("RISC-V GCC9/12 delta = %d, want small positive prologue-only delta", diff)
	}
}

// TestELFRoundTrip writes the ELF image out and ensures it can be
// reloaded and produces the same results.
func TestELFRoundTrip(t *testing.T) {
	prog := Workload("minisweep", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	img := bin.ELF()
	if len(img) == 0 || string(img[1:4]) != "ELF" {
		t.Fatalf("bad ELF image (%d bytes)", len(img))
	}
	if len(bin.Symbols()) == 0 {
		t.Fatal("no symbols")
	}
	if bin.ArrayBase("psi") == 0 {
		t.Fatal("psi array not laid out")
	}
}

// TestWindowedCrossoverShape reproduces the Figure 2 qualitative
// finding: at small windows RISC-V exposes at least as much ILP as
// AArch64 on STREAM-like code (its pointer walks are mutually
// independent, where AArch64 serialises on one index register).
func TestWindowedCrossoverShape(t *testing.T) {
	prog := Workload("stream", Tiny)
	ilp := map[Arch][]WindowResult{}
	for _, arch := range []Arch{AArch64, RV64} {
		bin, err := Compile(prog, Target{Arch: arch, Flavor: GCC12})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bin.Analyse(Analyses{Windowed: true, WindowSizes: []int{4, 16, 64}})
		if err != nil {
			t.Fatal(err)
		}
		ilp[arch] = res.Windows
	}
	if ilp[RV64][0].MeanILP < ilp[AArch64][0].MeanILP*0.95 {
		t.Errorf("window 4: RV64 ILP %.2f far below AArch64 %.2f (paper: RISC-V leads at small windows)",
			ilp[RV64][0].MeanILP, ilp[AArch64][0].MeanILP)
	}
}

func TestTimingModels(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: AArch64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	inorder, err := bin.RunInOrder()
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := bin.RunOoO(nil)
	if err != nil {
		t.Fatal(err)
	}
	if inorder.Cycles == 0 || ooo.Cycles == 0 {
		t.Fatal("timing models returned zero cycles")
	}
	if ooo.Cycles >= inorder.Cycles {
		t.Errorf("OoO (%d cycles) should beat in-order (%d cycles)", ooo.Cycles, inorder.Cycles)
	}
	// The OoO core cannot beat the dataflow limit.
	res, err := bin.Analyse(Analyses{CritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if ooo.Cycles < res.CP {
		t.Errorf("OoO cycles %d below the dataflow bound %d", ooo.Cycles, res.CP)
	}
}

func TestDisassembleErrors(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: AArch64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bin.Disassemble("nonexistent", &buf); err == nil {
		t.Fatal("disassembling unknown kernel should fail")
	}
}

// TestCrossISAResultsIdentical: both ISAs must compute bit-identical
// array contents for every workload (they share FMA contraction and
// IEEE semantics).
func TestCrossISAResultsIdentical(t *testing.T) {
	for _, prog := range Suite(Tiny) {
		images := map[Arch]map[string][]uint64{}
		for _, arch := range []Arch{AArch64, RV64} {
			bin, err := Compile(prog, Target{Arch: arch, Flavor: GCC12})
			if err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			mach, m, err := bin.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bin.Run(); err != nil {
				t.Fatal(err)
			}
			_ = mach
			// Re-run on a fresh machine so we can read its memory.
			mach2, m2, err := bin.NewMachine()
			if err != nil {
				t.Fatal(err)
			}
			_ = m
			for {
				done, err := mach2.Step(&Event{})
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
			}
			arrs := map[string][]uint64{}
			for _, a := range prog.Arrays {
				base := bin.ArrayBase(a.Name)
				vals := make([]uint64, a.Len)
				for i := range vals {
					v, err := m2.Read64(base + uint64(i)*8)
					if err != nil {
						t.Fatal(err)
					}
					vals[i] = v
				}
				arrs[a.Name] = vals
			}
			images[arch] = arrs
		}
		for name, armVals := range images[AArch64] {
			rvVals := images[RV64][name]
			for i := range armVals {
				if armVals[i] != rvVals[i] {
					t.Fatalf("%s: %s[%d]: AArch64 %#x != RV64 %#x",
						prog.Name, name, i, armVals[i], rvVals[i])
				}
			}
		}
	}
}

// TestDepDistanceAnalysis runs the dependency-locality diagnostic on
// STREAM for both ISAs and checks its invariants. (The windowed-CP
// test covers the paper's actual Figure 2 claim; this histogram is a
// complementary diagnostic — RISC-V's pointer self-edges add short
// edges even while its chains inside a window stay shallower.)
func TestDepDistanceAnalysis(t *testing.T) {
	prog := Workload("stream", Tiny)
	for _, arch := range []Arch{AArch64, RV64} {
		bin, err := Compile(prog, Target{Arch: arch, Flavor: GCC12})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bin.Analyse(Analyses{DepDistances: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanDepDistance < 1 {
			t.Errorf("%v: mean distance %v < 1", arch, res.MeanDepDistance)
		}
		if res.ShortDepFraction16 <= 0 || res.ShortDepFraction16 > 1 {
			t.Errorf("%v: short fraction %v out of range", arch, res.ShortDepFraction16)
		}
	}
}

// TestAblationAPIVerifies: binaries compiled with each ablation knob
// must still verify against the (matching) host reference.
func TestAblationAPIVerifies(t *testing.T) {
	prog := Workload("cloverleaf", Tiny)
	for _, opts := range []CompilerOptions{
		{NoFMA: true},
		{NoStrengthReduction: true},
		{NoHoisting: true},
	} {
		for _, tgt := range Targets() {
			bin, err := CompileWithOptions(prog, tgt, opts)
			if err != nil {
				t.Fatalf("%+v %s: %v", opts, tgt, err)
			}
			if err := bin.Verify(); err != nil {
				t.Fatalf("%+v %s: %v", opts, tgt, err)
			}
		}
	}
}

// TestLatencyConfigAPI: a custom core description flows through the
// scaled analysis.
func TestLatencyConfigAPI(t *testing.T) {
	lat, err := ParseLatencyConfig(strings.NewReader("fp-add: 50\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := bin.Analyse(Analyses{ScaledCritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	custom, err := bin.Analyse(Analyses{ScaledCritPath: true, Latencies: lat})
	if err != nil {
		t.Fatal(err)
	}
	if custom.ScaledCP <= tx2.ScaledCP {
		t.Fatalf("fp-add=50 did not lengthen the scaled CP: %d vs %d",
			custom.ScaledCP, tx2.ScaledCP)
	}
}

// TestWindowStrideAPI: disjoint windows produce fewer evaluations than
// the default 50% overlap but similar mean ILP.
func TestWindowStrideAPI(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: AArch64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := bin.Analyse(Analyses{Windowed: true, WindowSizes: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	disjoint, err := bin.Analyse(Analyses{Windowed: true, WindowSizes: []int{16}, WindowStride: 16})
	if err != nil {
		t.Fatal(err)
	}
	if disjoint.Windows[0].Windows >= overlap.Windows[0].Windows {
		t.Fatalf("disjoint windows (%d) should be fewer than overlapped (%d)",
			disjoint.Windows[0].Windows, overlap.Windows[0].Windows)
	}
	ratio := disjoint.Windows[0].MeanILP / overlap.Windows[0].MeanILP
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("stride changed mean ILP implausibly: %v", ratio)
	}
}

// TestMultiSinkRun: multiple sinks attached through the public API see
// the same stream.
func TestMultiSinkRun(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	var n1, n2 uint64
	stats, err := bin.Run(
		SinkFunc(func(*Event) { n1++ }),
		SinkFunc(func(*Event) { n2++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != stats.Instructions || n2 != stats.Instructions {
		t.Fatalf("sinks saw %d/%d events, stats %d", n1, n2, stats.Instructions)
	}
}

// TestMixAndBranchesAPI: the mix/branch analyses flow through Analyse.
func TestMixAndBranchesAPI(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bin.Analyse(Analyses{Mix: true, Branches: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MixCounts) == 0 {
		t.Fatal("no mix data")
	}
	var total uint64
	for _, gc := range res.MixCounts {
		total += gc.Count
	}
	if total != res.Stats.Instructions {
		t.Fatalf("mix total %d != instructions %d", total, res.Stats.Instructions)
	}
	// STREAM's branch density is ~14-16% on both ISAs (paper: ~15%).
	if res.BranchDensity < 0.10 || res.BranchDensity > 0.20 {
		t.Fatalf("branch density %v outside the STREAM range", res.BranchDensity)
	}
	if res.BranchTakenRate < 0.9 {
		t.Fatalf("taken rate %v (loops should dominate)", res.BranchTakenRate)
	}
	if res.BranchCount == 0 {
		t.Fatal("no branches counted")
	}
}

// TestCompileErrorsSurface: facade propagates compile errors.
func TestCompileErrorsSurface(t *testing.T) {
	bad := NewProgram("bad")
	bad.Repeat = 0
	if _, err := Compile(bad, Target{Arch: AArch64, Flavor: GCC12}); err == nil {
		t.Fatal("invalid program accepted")
	}
}
