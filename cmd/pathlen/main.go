// Command pathlen regenerates Figure 1: per-kernel dynamic instruction
// counts for every benchmark and target, normalised to GCC 9.2 /
// AArch64, plus the cross-benchmark RISC-V/AArch64 ratio summary.
//
// Usage: pathlen [-scale tiny|small|paper] [-bench name] [-json file]
// [-progress] [-cpuprofile file] [-memprofile file]
//
// With -json the run manifest (schema isacmp/run-manifest/v1, one
// record per benchmark+target with core stats, per-sink overhead and
// the per-kernel counts) is written to the given file, "-" for stdout;
// the text report still goes to stdout unless -json is "-".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"isacmp/internal/report"
	"isacmp/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	jsonFlag := flag.String("json", "", "write a run manifest to this file (\"-\" for stdout)")
	progressFlag := flag.Bool("progress", false, "print a retire-rate heartbeat to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file")
	flag.Parse()

	scale, err := report.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	progs, err := report.SelectBenchmarks(*benchFlag, scale)
	if err != nil {
		fatal(err)
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()

	reg := telemetry.NewRegistry()
	manifest := telemetry.NewManifest("pathlen", scale.String())
	start := time.Now()
	ex := report.Experiment{PathLength: true, Metrics: reg}
	if *progressFlag {
		ex.Progress = os.Stderr
	}

	text := *jsonFlag != "-"
	if text {
		report.Banner(os.Stdout, "pathlen: Figure 1", scale.String())
	}
	var summaries []report.Summary
	for _, p := range progs {
		rows, err := report.Run(p, ex)
		if err != nil {
			fatal(err)
		}
		if text {
			report.WritePathLengths(os.Stdout, p.Name, rows)
		}
		summaries = append(summaries, report.Summarise(p.Name, rows)...)
		report.AppendRows(manifest, p.Name, rows)
	}
	if text {
		report.WriteSummaries(os.Stdout, summaries)
	}

	manifest.Finish(start, reg)
	if *jsonFlag != "" {
		if err := manifest.WriteFile(*jsonFlag); err != nil {
			fatal(err)
		}
	}
	if err := telemetry.WriteMemProfile(*memProfile); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathlen:", err)
	os.Exit(1)
}
