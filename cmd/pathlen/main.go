// Command pathlen regenerates Figure 1: per-kernel dynamic instruction
// counts for every benchmark and target, normalised to GCC 9.2 /
// AArch64, plus the cross-benchmark RISC-V/AArch64 ratio summary.
//
// Usage: pathlen [-scale tiny|small|paper] [-bench name] [-parallel n]
// [-json file] [-progress] [-cpuprofile file] [-memprofile file]
// [-serve addr] [-log-level l] [-log-format f] [-durable-dir d]
// [-resume d]
//
// -durable-dir arms crash-safe running (write-ahead cell journal plus
// content-addressed result cache); -resume replays such a directory
// and recomputes only unfinished cells. SIGINT/SIGTERM drains
// gracefully — in-flight cells finish and journal — and a second
// signal aborts them.
//
// -parallel fans the (benchmark, target) matrix over n analysis
// workers (0, the default, uses every CPU; 1 is strictly sequential).
// Results and report text are byte-identical for every value.
//
// With -json the run manifest (schema isacmp/run-manifest/v2, one
// record per benchmark+target with core stats, per-sink overhead and
// the per-kernel counts) is written to the given file, "-" for stdout;
// the text report still goes to stdout unless -json is "-". -serve
// exposes the live /metrics, /statusz, /events and pprof endpoints
// for the duration of the run; -log-level and -log-format control the
// structured stderr log.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"isacmp/internal/fusion"
	"isacmp/internal/obs"
	"isacmp/internal/obs/slogx"
	"isacmp/internal/report"
	"isacmp/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	fusionFlag := flag.String("fusion", "off", "macro-op fusion: off, rv64, a64 or both, optionally :rule,rule,... (see internal/fusion)")
	jsonFlag := flag.String("json", "", "write a run manifest to this file (\"-\" for stdout)")
	parallelFlag := flag.Int("parallel", 0, "analysis workers (0 = all CPUs, 1 = sequential); results are identical for every value")
	progressFlag := flag.Bool("progress", false, "print a retire-rate heartbeat to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file")
	cellTimeoutFlag := flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline; overrunning cells become FAILED rows (0 disables)")
	retriesFlag := flag.Int("retries", 0, "re-attempts per failed cell before marking it FAILED")
	retryBackoffFlag := flag.Duration("retry-backoff", 100*time.Millisecond, "sleep before the first retry, doubling each further retry")
	failFastFlag := flag.Bool("fail-fast", false, "cancel the whole matrix on the first cell failure")
	serveFlag := flag.String("serve", "", "serve /metrics, /statusz, /events and pprof on this address for the duration of the run")
	logLevelFlag := flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	logFormatFlag := flag.String("log-format", "text", "structured log encoding on stderr: text or json")
	durableDirFlag := flag.String("durable-dir", "", "arm crash-safe running: write-ahead cell journal + content-addressed result cache in this directory")
	resumeFlag := flag.String("resume", "", "resume an interrupted run from this durability directory: replay the journal, recompute only unfinished cells")
	flag.Parse()

	scale, err := report.ParseScale(*scaleFlag)
	if err != nil {
		usageFatal(err)
	}
	progs, err := report.SelectBenchmarks(*benchFlag, scale)
	if err != nil {
		usageFatal(err)
	}
	fusionCfg, err := fusion.ParseSpec(*fusionFlag)
	if err != nil {
		usageFatal(err)
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()

	reg := telemetry.NewRegistry()
	manifest := telemetry.NewManifest("pathlen", scale.String())
	start := time.Now()
	runID := obs.NewRunID()
	log, err := slogx.New(os.Stderr, *logLevelFlag, *logFormatFlag)
	if err != nil {
		usageFatal(err)
	}
	log = log.With(slogx.KeyRunID, runID)
	board := obs.NewBoard(runID, reg)
	manifest.Obs = &telemetry.ObsConfig{RunID: runID, LogLevel: *logLevelFlag, LogFormat: *logFormatFlag}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *serveFlag != "" {
		srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: *serveFlag, Registry: reg, Board: board, Log: log})
		if err != nil {
			fatal(err)
		}
		srv.SetReady(true)
		defer srv.Close()
		manifest.Obs.ServeAddr = srv.Addr()
		log.Info("observability server listening", "addr", srv.Addr())
	}
	drun, err := report.ArmDurability(*durableDirFlag, *resumeFlag, log)
	if err != nil {
		fatal(err)
	}
	if drun != nil {
		defer drun.Close()
	}
	hardCtx, drainCtx := report.InstallDrainHandler(log)
	ex := report.Experiment{
		PathLength: true, Metrics: reg, Fusion: fusionCfg, Parallel: *parallelFlag,
		CellTimeout: *cellTimeoutFlag, Retries: *retriesFlag,
		RetryBackoff: *retryBackoffFlag, FailFast: *failFastFlag,
		Log: log, RunID: runID, Status: board,
		Ctx: hardCtx, Drain: drainCtx, Durable: drun,
	}
	if *progressFlag {
		ex.Progress = os.Stderr
		ex.ProgressFinalOnly = !slogx.IsTerminal(os.Stderr)
	}
	if err := ex.Validate(); err != nil {
		usageFatal(err)
	}

	text := *jsonFlag != "-"
	if text {
		report.Banner(os.Stdout, "pathlen: Figure 1", scale.String())
	}
	all, st, err := report.RunSuite(progs, ex)
	if err != nil {
		fatal(err)
	}
	manifest.Sched = st
	var summaries []report.Summary
	for i, p := range progs {
		rows := all[i]
		if text {
			report.WritePathLengths(os.Stdout, p.Name, rows)
			report.WriteFusion(os.Stdout, p.Name, rows)
		}
		summaries = append(summaries, report.Summarise(p.Name, rows)...)
		report.AppendRows(manifest, p.Name, rows)
	}
	if text {
		report.WriteSummaries(os.Stdout, summaries)
	}

	if drun != nil {
		st := drun.Stats()
		manifest.Durable = &st
	}
	manifest.Finish(start, reg)
	if *jsonFlag != "" {
		if err := manifest.WriteFile(*jsonFlag); err != nil {
			fatal(err)
		}
	}
	if err := telemetry.WriteMemProfile(*memProfile); err != nil {
		fatal(err)
	}
	if n := report.CountFailures(all); n > 0 {
		fmt.Fprintf(os.Stderr, "pathlen: %d matrix cell(s) FAILED\n", n)
		os.Exit(report.ExitPartial)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathlen:", err)
	os.Exit(report.ExitFatal)
}

func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "pathlen:", err)
	fmt.Fprintln(os.Stderr, "run `pathlen -h` for usage")
	os.Exit(report.ExitUsage)
}
