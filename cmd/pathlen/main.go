// Command pathlen regenerates Figure 1: per-kernel dynamic instruction
// counts for every benchmark and target, normalised to GCC 9.2 /
// AArch64, plus the cross-benchmark RISC-V/AArch64 ratio summary.
//
// Usage: pathlen [-scale tiny|small|paper] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"isacmp/internal/report"
	"isacmp/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	flag.Parse()

	scale := workloads.Small
	switch *scaleFlag {
	case "tiny":
		scale = workloads.Tiny
	case "small":
	case "paper":
		scale = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "pathlen: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	progs := workloads.Suite(scale)
	if *benchFlag != "" {
		p := workloads.ByName(*benchFlag, scale)
		if p == nil {
			fmt.Fprintf(os.Stderr, "pathlen: unknown benchmark %q\n", *benchFlag)
			os.Exit(2)
		}
		progs = progs[:0]
		progs = append(progs, p)
	}

	report.Banner(os.Stdout, "pathlen: Figure 1", scale.String())
	var summaries []report.Summary
	for _, p := range progs {
		rows, err := report.Run(p, report.Experiment{PathLength: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathlen:", err)
			os.Exit(1)
		}
		report.WritePathLengths(os.Stdout, p.Name, rows)
		summaries = append(summaries, report.Summarise(p.Name, rows)...)
	}
	report.WriteSummaries(os.Stdout, summaries)
}
