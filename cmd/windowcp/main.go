// Command windowcp regenerates Figure 2: mean ILP per window size for
// the GCC 12.2 binaries, sliding windows of 4 to 2000 instructions
// over the dynamic stream with 50% overlap.
//
// Usage: windowcp [-scale tiny|small|paper] [-bench name]
// [-stride n] [-parallel n] [-json file] [-progress]
// [-cpuprofile file] [-memprofile file]
//
// -parallel fans the (benchmark, target) matrix over n analysis
// workers and shards the windowed-CP computation itself (0, the
// default, uses every CPU; 1 is strictly sequential). Results and
// report text are byte-identical for every value.
//
// -stride overrides the paper's size/2 window stride (the
// commit-width knob section 6 leaves unexplored). With -json the run
// manifest (schema isacmp/run-manifest/v1, with the per-window-size
// series per run) is written to the given file, "-" for stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"isacmp/internal/report"
	"isacmp/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	strideFlag := flag.Int("stride", 0, "window stride in instructions (0 = the paper's size/2)")
	jsonFlag := flag.String("json", "", "write a run manifest to this file (\"-\" for stdout)")
	parallelFlag := flag.Int("parallel", 0, "analysis workers (0 = all CPUs, 1 = sequential); results are identical for every value")
	progressFlag := flag.Bool("progress", false, "print a retire-rate heartbeat to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file")
	flag.Parse()

	scale, err := report.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	progs, err := report.SelectBenchmarks(*benchFlag, scale)
	if err != nil {
		fatal(err)
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()

	reg := telemetry.NewRegistry()
	ex := report.Experiment{Windowed: true, GCC12Only: true, WindowStride: *strideFlag, Metrics: reg, Parallel: *parallelFlag}
	if *progressFlag {
		ex.Progress = os.Stderr
	}
	manifest := telemetry.NewManifest("windowcp", scale.String())
	start := time.Now()

	text := *jsonFlag != "-"
	if text {
		report.Banner(os.Stdout, "windowcp: Figure 2", scale.String())
	}
	all, st, err := report.RunSuite(progs, ex)
	if err != nil {
		fatal(err)
	}
	manifest.Sched = st
	for i, p := range progs {
		rows := all[i]
		if text {
			report.WriteWindowed(os.Stdout, p.Name, rows)
		}
		report.AppendRows(manifest, p.Name, rows)
	}

	manifest.Finish(start, reg)
	if *jsonFlag != "" {
		if err := manifest.WriteFile(*jsonFlag); err != nil {
			fatal(err)
		}
	}
	if err := telemetry.WriteMemProfile(*memProfile); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windowcp:", err)
	os.Exit(1)
}
