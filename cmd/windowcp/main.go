// Command windowcp regenerates Figure 2: mean ILP per window size for
// the GCC 12.2 binaries, sliding windows of 4 to 2000 instructions
// over the dynamic stream with 50% overlap.
//
// Usage: windowcp [-scale tiny|small|paper] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"isacmp/internal/report"
	"isacmp/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	flag.Parse()

	scale := workloads.Small
	switch *scaleFlag {
	case "tiny":
		scale = workloads.Tiny
	case "small":
	case "paper":
		scale = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "windowcp: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	progs := workloads.Suite(scale)
	if *benchFlag != "" {
		p := workloads.ByName(*benchFlag, scale)
		if p == nil {
			fmt.Fprintf(os.Stderr, "windowcp: unknown benchmark %q\n", *benchFlag)
			os.Exit(2)
		}
		progs = progs[:0]
		progs = append(progs, p)
	}

	report.Banner(os.Stdout, "windowcp: Figure 2", scale.String())
	for _, p := range progs {
		rows, err := report.Run(p, report.Experiment{Windowed: true, GCC12Only: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowcp:", err)
			os.Exit(1)
		}
		report.WriteWindowed(os.Stdout, p.Name, rows)
	}
}
