// Command critpath regenerates Table 1 (critical paths, ILP and ideal
// 2 GHz run times) and, with -scaled, Table 2 (latency-weighted
// critical paths under the ThunderX2-style model).
//
// Usage: critpath [-scaled] [-scale tiny|small|paper] [-bench name]
// [-parallel n] [-json file] [-progress] [-cpuprofile file]
// [-memprofile file] [-durable-dir d] [-resume d]
//
// -durable-dir arms crash-safe running (write-ahead cell journal plus
// content-addressed result cache); -resume replays such a directory
// and recomputes only unfinished cells. SIGINT/SIGTERM drains
// gracefully; a second signal aborts in-flight cells.
//
// -parallel fans the (benchmark, target) matrix over n analysis
// workers (0, the default, uses every CPU; 1 is strictly sequential).
// Results and report text are byte-identical for every value.
//
// With -json the run manifest (schema isacmp/run-manifest/v1,
// including per-run CP/ILP results, critical-path-tracker footprint,
// core stats and per-sink overhead) is written to the given file, "-"
// for stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"isacmp/internal/fusion"
	"isacmp/internal/obs"
	"isacmp/internal/obs/slogx"
	"isacmp/internal/report"
	"isacmp/internal/telemetry"
)

func main() {
	scaledFlag := flag.Bool("scaled", false, "produce Table 2 (latency-scaled) instead of Table 1")
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	fusionFlag := flag.String("fusion", "off", "macro-op fusion: off, rv64, a64 or both, optionally :rule,rule,... (see internal/fusion)")
	jsonFlag := flag.String("json", "", "write a run manifest to this file (\"-\" for stdout)")
	parallelFlag := flag.Int("parallel", 0, "analysis workers (0 = all CPUs, 1 = sequential); results are identical for every value")
	progressFlag := flag.Bool("progress", false, "print a retire-rate heartbeat to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file")
	cellTimeoutFlag := flag.Duration("cell-timeout", 0, "per-cell wall-clock deadline; overrunning cells become FAILED rows (0 disables)")
	retriesFlag := flag.Int("retries", 0, "re-attempts per failed cell before marking it FAILED")
	retryBackoffFlag := flag.Duration("retry-backoff", 100*time.Millisecond, "sleep before the first retry, doubling each further retry")
	failFastFlag := flag.Bool("fail-fast", false, "cancel the whole matrix on the first cell failure")
	serveFlag := flag.String("serve", "", "serve /metrics, /statusz, /events and pprof on this address for the duration of the run")
	logLevelFlag := flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	logFormatFlag := flag.String("log-format", "text", "structured log encoding on stderr: text or json")
	durableDirFlag := flag.String("durable-dir", "", "arm crash-safe running: write-ahead cell journal + content-addressed result cache in this directory")
	resumeFlag := flag.String("resume", "", "resume an interrupted run from this durability directory: replay the journal, recompute only unfinished cells")
	flag.Parse()

	scale, err := report.ParseScale(*scaleFlag)
	if err != nil {
		usageFatal(err)
	}
	progs, err := report.SelectBenchmarks(*benchFlag, scale)
	if err != nil {
		usageFatal(err)
	}
	fusionCfg, err := fusion.ParseSpec(*fusionFlag)
	if err != nil {
		usageFatal(err)
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()

	what := "critpath: Table 1"
	command := "critpath"
	ex := report.Experiment{CritPath: true}
	if *scaledFlag {
		what = "critpath: Table 2 (scaled)"
		command = "scaledcp"
		ex = report.Experiment{Scaled: true}
	}
	ex.Fusion = fusionCfg
	reg := telemetry.NewRegistry()
	ex.Metrics = reg
	ex.Parallel = *parallelFlag
	ex.CellTimeout = *cellTimeoutFlag
	ex.Retries = *retriesFlag
	ex.RetryBackoff = *retryBackoffFlag
	ex.FailFast = *failFastFlag
	runID := obs.NewRunID()
	log, err := slogx.New(os.Stderr, *logLevelFlag, *logFormatFlag)
	if err != nil {
		usageFatal(err)
	}
	log = log.With(slogx.KeyRunID, runID)
	board := obs.NewBoard(runID, reg)
	ex.Log, ex.RunID, ex.Status = log, runID, board
	drun, err := report.ArmDurability(*durableDirFlag, *resumeFlag, log)
	if err != nil {
		fatal(err)
	}
	if drun != nil {
		defer drun.Close()
	}
	ex.Ctx, ex.Drain = report.InstallDrainHandler(log)
	ex.Durable = drun
	if *progressFlag {
		ex.Progress = os.Stderr
		ex.ProgressFinalOnly = !slogx.IsTerminal(os.Stderr)
	}
	if err := ex.Validate(); err != nil {
		usageFatal(err)
	}
	manifest := telemetry.NewManifest(command, scale.String())
	manifest.Obs = &telemetry.ObsConfig{RunID: runID, LogLevel: *logLevelFlag, LogFormat: *logFormatFlag}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *serveFlag != "" {
		srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: *serveFlag, Registry: reg, Board: board, Log: log})
		if err != nil {
			fatal(err)
		}
		srv.SetReady(true)
		defer srv.Close()
		manifest.Obs.ServeAddr = srv.Addr()
		log.Info("observability server listening", "addr", srv.Addr())
	}
	start := time.Now()

	text := *jsonFlag != "-"
	if text {
		report.Banner(os.Stdout, what, scale.String())
	}
	all, st, err := report.RunSuite(progs, ex)
	if err != nil {
		fatal(err)
	}
	manifest.Sched = st
	for i, p := range progs {
		rows := all[i]
		if text {
			report.WriteCritPaths(os.Stdout, p.Name, rows, *scaledFlag)
			report.WriteFusion(os.Stdout, p.Name, rows)
		}
		report.AppendRows(manifest, p.Name, rows)
	}

	if drun != nil {
		st := drun.Stats()
		manifest.Durable = &st
	}
	manifest.Finish(start, reg)
	if *jsonFlag != "" {
		if err := manifest.WriteFile(*jsonFlag); err != nil {
			fatal(err)
		}
	}
	if err := telemetry.WriteMemProfile(*memProfile); err != nil {
		fatal(err)
	}
	if n := report.CountFailures(all); n > 0 {
		fmt.Fprintf(os.Stderr, "critpath: %d matrix cell(s) FAILED\n", n)
		os.Exit(report.ExitPartial)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "critpath:", err)
	os.Exit(report.ExitFatal)
}

func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "critpath:", err)
	fmt.Fprintln(os.Stderr, "run `critpath -h` for usage")
	os.Exit(report.ExitUsage)
}
