// Command critpath regenerates Table 1 (critical paths, ILP and ideal
// 2 GHz run times) and, with -scaled, Table 2 (latency-weighted
// critical paths under the ThunderX2-style model).
//
// Usage: critpath [-scaled] [-scale tiny|small|paper] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"isacmp/internal/report"
	"isacmp/internal/workloads"
)

func main() {
	scaledFlag := flag.Bool("scaled", false, "produce Table 2 (latency-scaled) instead of Table 1")
	scaleFlag := flag.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := flag.String("bench", "", "single benchmark to run")
	flag.Parse()

	scale := workloads.Small
	switch *scaleFlag {
	case "tiny":
		scale = workloads.Tiny
	case "small":
	case "paper":
		scale = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "critpath: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	progs := workloads.Suite(scale)
	if *benchFlag != "" {
		p := workloads.ByName(*benchFlag, scale)
		if p == nil {
			fmt.Fprintf(os.Stderr, "critpath: unknown benchmark %q\n", *benchFlag)
			os.Exit(2)
		}
		progs = progs[:0]
		progs = append(progs, p)
	}

	what := "critpath: Table 1"
	ex := report.Experiment{CritPath: true}
	if *scaledFlag {
		what = "critpath: Table 2 (scaled)"
		ex = report.Experiment{Scaled: true}
	}
	report.Banner(os.Stdout, what, scale.String())
	for _, p := range progs {
		rows, err := report.Run(p, ex)
		if err != nil {
			fmt.Fprintln(os.Stderr, "critpath:", err)
			os.Exit(1)
		}
		report.WriteCritPaths(os.Stdout, p.Name, rows, *scaledFlag)
	}
}
