package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"isacmp/internal/benchdb"
	"isacmp/internal/ir"
	"isacmp/internal/report"
	"isacmp/internal/sched"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// benchLedgerPath is where every bench writer appends its finished
// document to the benchdb performance ledger. Set from the -benchdb
// flag; "" disables appends (the flag value "none").
var benchLedgerPath = benchdb.DefaultLedgerPath

// benchProvenance is the measurement-provenance block every v2 bench
// document embeds: the host fingerprint and the calibrated
// noise-probe result. It is what lets bench-watch refuse a
// cross-host comparison instead of reporting host drift as a code
// regression.
type benchProvenance struct {
	Fingerprint *benchdb.Fingerprint `json:"fingerprint"`
	Noise       *benchdb.Probe       `json:"noise"`
}

// collectProvenance gathers the fingerprint and runs the noise probe.
// Called once per bench writer, after the timed legs — the ~10–20 ms
// probe must not sit inside a measured region.
func collectProvenance() benchProvenance {
	return benchProvenance{
		Fingerprint: benchdb.Collect(),
		Noise:       benchdb.RunProbe(benchdb.DefaultProbeReps),
	}
}

// writeBenchDoc commits a finished bench document: atomic write of
// the JSON (as before), then an append of its flattened metrics +
// provenance to the benchdb ledger. Ledger trouble is reported, not
// fatal — the committed document is the artifact of record; the
// ledger is the longitudinal observatory behind it.
func writeBenchDoc(out string, doc any) error {
	if err := writeDocAtomic(out, doc); err != nil {
		return err
	}
	if benchLedgerPath == "" {
		return nil
	}
	if err := appendBenchLedger(benchLedgerPath, out, doc); err != nil {
		fmt.Fprintf(os.Stderr, "isacmp: warning: benchdb ledger append failed: %v\n", err)
	}
	return nil
}

// appendBenchLedger flattens doc through its JSON form and appends
// one fsynced entry to the ledger at path.
func appendBenchLedger(path, out string, doc any) error {
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		return err
	}
	entry := benchdb.EntryFromDoc(generic, filepath.Base(out))
	entry.Time = time.Now().UTC().Format(time.RFC3339)
	l, _, err := benchdb.Open(path, nil)
	if err != nil {
		return err
	}
	defer l.Close()
	return l.Append(entry)
}

// benchBenchdbSchema identifies the bench-benchdb document layout.
const benchBenchdbSchema = "isacmp/bench-benchdb/v1"

// benchBenchdbReps is how many bare/armed pairs the comparison times;
// interleaved with alternating order for the same reasons as
// benchObsReps.
const benchBenchdbReps = 7

// benchdbDoc is the record `isacmp bench-benchdb` writes
// (BENCH_PR10.json): the full matrix timed once bare and once with
// the observatory instrumentation a bench writer now adds — the
// noise probe plus one fsynced ledger append — with byte-identity
// checked and the overhead recorded against the <= 1% budget.
type benchdbDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Cells      int    `json:"cells"`

	// BareSeconds is the best matrix wall time across the pairs;
	// ArmedSeconds the best wall time of matrix + probe + ledger
	// append (fsync included, fresh ledger per rep).
	BareSeconds  float64 `json:"bare_seconds"`
	ArmedSeconds float64 `json:"armed_seconds"`
	// OverheadPercent is the median over the interleaved pairs of
	// (armed - bare) / bare * 100 — the observatory's own cost.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that arming the observatory changed no output
	// byte — the ledger observes documents, never computation.
	Identical bool `json:"identical"`
	// LedgerEntries is how many entries the armed reps appended and
	// replayed back intact — each armed rep's append is verified, so
	// the overhead number covers real durable appends.
	LedgerEntries int `json:"ledger_entries"`

	benchProvenance
}

// benchBenchdb times the matrix bare and with the per-bench
// observatory cost armed (noise probe + fsynced ledger append) and
// writes the benchdbDoc JSON to out.
func benchBenchdb(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	ex := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	}

	dir, err := os.MkdirTemp("", "isacmp-benchdb-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var bareRows, armedRows [][]report.Row
	var st *telemetry.SchedStats
	bareWalls := make([]float64, benchBenchdbReps)
	armedWalls := make([]float64, benchBenchdbReps)
	appended := 0
	timeBare := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, ex)
		if err != nil {
			return err
		}
		bareWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			bareRows = rows
		}
		return nil
	}
	timeArmed := func(i int) error {
		runtime.GC()
		ledgerPath := filepath.Join(dir, fmt.Sprintf("ledger-%d.jsonl", i))
		start := time.Now()
		rows, stats, err := report.RunSuite(progs, ex)
		if err != nil {
			return err
		}
		prov := collectProvenance()
		l, _, err := benchdb.Open(ledgerPath, nil)
		if err != nil {
			return err
		}
		appendErr := l.Append(benchdb.Entry{
			Schema:      benchBenchdbSchema,
			Doc:         filepath.Base(out),
			Metrics:     map[string]float64{"rep": float64(i)},
			Fingerprint: prov.Fingerprint,
			Noise:       prov.Noise,
		})
		closeErr := l.Close()
		armedWalls[i] = time.Since(start).Seconds()
		if appendErr != nil {
			return appendErr
		}
		if closeErr != nil {
			return closeErr
		}
		if i == 0 {
			armedRows, st = rows, stats
		}
		entries, torn, err := benchdb.Replay(ledgerPath)
		if err != nil || torn || len(entries) != 1 {
			return fmt.Errorf("bench-benchdb: armed rep %d ledger replay: entries=%d torn=%v err=%v", i, len(entries), torn, err)
		}
		appended++
		return nil
	}
	for i := 0; i < benchBenchdbReps; i++ {
		first, second := timeBare, timeArmed
		if i%2 == 1 {
			first, second = timeArmed, timeBare
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	bareWall := minFloat(bareWalls)
	armedWall := minFloat(armedWalls)
	pairOverheads := make([]float64, benchBenchdbReps)
	for i := range pairOverheads {
		pairOverheads[i] = (armedWalls[i] - bareWalls[i]) / bareWalls[i] * 100
	}

	bareJSON, err := canonicalRowsJSON(progs, scale, bareRows)
	if err != nil {
		return err
	}
	armedJSON, err := canonicalRowsJSON(progs, scale, armedRows)
	if err != nil {
		return err
	}

	doc := benchdbDoc{
		Schema:          benchBenchdbSchema,
		Scale:           scale.String(),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         sched.DefaultWorkers(parallel),
		Cells:           st.Cells,
		BareSeconds:     bareWall,
		ArmedSeconds:    armedWall,
		BudgetPercent:   1,
		Identical:       bytes.Equal(bareJSON, armedJSON),
		LedgerEntries:   appended,
		benchProvenance: collectProvenance(),
	}
	doc.OverheadPercent = medianFloat(pairOverheads)
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-benchdb: armed results differ from bare (observer pass-through violation)")
	}

	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-benchdb: %d cells, %d workers: bare %.3fs, armed %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v, ledger entries %d -> %s\n",
			doc.Cells, doc.Workers, bareWall, armedWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, doc.LedgerEntries, out)
	}
	return nil
}
