package main

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"isacmp/internal/fusion"
	"isacmp/internal/ir"
	"isacmp/internal/report"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// benchFusionSchema identifies the bench-fusion document layout.
const benchFusionSchema = "isacmp/bench-fusion/v2"

// benchFusionReps is how many off/scan pairs bench-fusion times;
// interleaved with alternating order for the same reasons as
// benchObsReps.
const benchFusionReps = 7

// fusionKernelJSON records one fusion-on matrix cell: the
// architectural path length, the effective (fused) path length and
// their ratio — the Celio-style counter-number to the paper's Table 1.
type fusionKernelJSON struct {
	Workload string  `json:"workload"`
	Target   string  `json:"target"`
	PathLen  uint64  `json:"path_len"`
	FusedLen uint64  `json:"fused_len"`
	Ratio    float64 `json:"ratio"`
}

// fusionDoc is the record `isacmp bench-fusion` writes
// (BENCH_PR7.json): the full matrix timed once with fusion off (the
// adapter elided entirely) and once with an attached-but-inert pass
// (every rule masked off, so the measurement isolates the pass's bare
// scan cost), with byte-identity of the two result sets checked and
// the overhead recorded against the <= 1% budget; plus one fusion-on
// run recording the effective path length per RV64 kernel and the
// per-rule hit totals.
type fusionDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is always 1: all legs run single-threaded so the
	// comparison isolates the adapter cost. Recorded for the uniform
	// bench-watch provenance rule.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	// OffSeconds is the best fusion-off wall time across the
	// interleaved pairs; ScanSeconds the best wall time with the pass
	// attached but no rules enabled (it inspects every event and fuses
	// none).
	OffSeconds  float64 `json:"off_seconds"`
	ScanSeconds float64 `json:"scan_seconds"`
	// OverheadPercent is the smallest (scan - off) / off * 100 across
	// the interleaved pairs. The pass's structural cost is present in
	// every pair while host interference only inflates a pair, so the
	// best pair bounds the adapter's true cost from above — the median
	// on a ~5s leg swings several percent with co-tenant noise, far
	// beyond the 1% budget being judged. The adapter's budget is
	// BudgetPercent.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that attaching the inert pass changed no
	// result byte (the scan leg's fusion provenance blocks are cleared
	// before comparison — they record that the pass ran, not what it
	// computed).
	Identical bool `json:"identical"`

	// OnSeconds times the single -fusion=rv64 run behind Kernels.
	OnSeconds float64 `json:"on_seconds"`
	// Kernels is the per-cell effective path length for every cell the
	// fusion-on run rewrote (RV64 targets only under -fusion=rv64).
	Kernels []fusionKernelJSON `json:"kernels"`
	// RuleHits sums each rule's fired-pair count across the whole
	// fusion-on matrix.
	RuleHits []telemetry.FusionRuleJSON `json:"rule_hits"`

	benchProvenance
}

// benchFusion times the matrix with fusion off and with an inert
// scan-only pass attached (both single-threaded), verifies
// byte-identity, then runs the matrix once with every RV64 rule live
// to record effective path lengths and per-rule hit totals, and
// writes the fusionDoc JSON to out. When guardPath names a committed
// bench-fusion doc, the fresh doc is judged against it through the
// uniform bench-watch rules.
func benchFusion(progs []*ir.Program, scale workloads.Scale, out, guardPath string, text bool) error {
	off := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: 1,
	}
	scan := off
	// Attach with zero rules: the adapter sits on the hot path and
	// inspects every event but provably fuses nothing, so the off/scan
	// difference is the pure scan overhead.
	scan.Fusion = fusion.Config{RV64: true, A64: true, Attach: true}
	on := off
	on.Fusion = fusion.Config{RV64: true, Rules: fusion.AllRules}

	var offRows, scanRows [][]report.Row
	var st *telemetry.SchedStats
	offWalls := make([]float64, benchFusionReps)
	scanWalls := make([]float64, benchFusionReps)
	timeOff := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, off)
		if err != nil {
			return err
		}
		offWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			offRows = rows
		}
		return nil
	}
	timeScan := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, stats, err := report.RunSuite(progs, scan)
		if err != nil {
			return err
		}
		scanWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			scanRows, st = rows, stats
		}
		return nil
	}
	for i := 0; i < benchFusionReps; i++ {
		first, second := timeOff, timeScan
		if i%2 == 1 {
			first, second = timeScan, timeOff
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	offWall := minFloat(offWalls)
	scanWall := minFloat(scanWalls)
	pairOverheads := make([]float64, benchFusionReps)
	for i := range pairOverheads {
		pairOverheads[i] = (scanWalls[i] - offWalls[i]) / offWalls[i] * 100
	}

	// The scan rows carry fusion provenance blocks ("pass attached,
	// zero pairs"); strip them so the comparison judges results, not
	// provenance.
	for _, rows := range scanRows {
		for j := range rows {
			rows[j].Fusion = nil
		}
	}
	offJSON, err := canonicalRowsJSON(progs, scale, offRows)
	if err != nil {
		return err
	}
	scanJSON, err := canonicalRowsJSON(progs, scale, scanRows)
	if err != nil {
		return err
	}

	runtime.GC()
	start := time.Now()
	onRows, _, err := report.RunSuite(progs, on)
	if err != nil {
		return err
	}
	onWall := time.Since(start).Seconds()

	doc := fusionDoc{
		Schema:        benchFusionSchema,
		Scale:         scale.String(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       1,
		Cells:         st.Cells,
		OffSeconds:    offWall,
		ScanSeconds:   scanWall,
		BudgetPercent: 1,
		Identical:     bytes.Equal(offJSON, scanJSON),
		OnSeconds:     onWall,
	}
	doc.OverheadPercent = minFloat(pairOverheads)
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-fusion: inert pass changed results (zero-cost-when-disabled violation)")
	}

	ruleTotals := make(map[string]uint64)
	for i, p := range progs {
		for _, r := range onRows[i] {
			if r.Failed() || r.Fusion == nil {
				continue
			}
			k := fusionKernelJSON{
				Workload: p.Name,
				Target:   r.Target.String(),
				PathLen:  r.Fusion.EventsIn,
				FusedLen: r.Fusion.EventsOut,
			}
			if k.PathLen > 0 {
				k.Ratio = float64(k.FusedLen) / float64(k.PathLen)
			}
			doc.Kernels = append(doc.Kernels, k)
			for _, rh := range r.Fusion.Rules {
				ruleTotals[rh.Rule] += rh.Hits
			}
		}
	}
	// Emit the rules in their canonical enum order so the doc is
	// deterministic.
	for r := fusion.Rule(0); r < fusion.NumRules; r++ {
		name := r.String()
		if hits, ok := ruleTotals[name]; ok {
			doc.RuleHits = append(doc.RuleHits, telemetry.FusionRuleJSON{Rule: name, Hits: hits})
		}
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-fusion: %d cells: off %.3fs, scan %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v, on %.3fs (%d kernels) -> %s\n",
			doc.Cells, offWall, scanWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, onWall, len(doc.Kernels), out)
	}
	if guardPath != "" {
		return benchWatch(guardPath, out, text)
	}
	return nil
}
