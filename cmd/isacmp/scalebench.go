package main

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"isacmp/internal/ir"
	"isacmp/internal/prof"
	"isacmp/internal/report"
	"isacmp/internal/workloads"
)

// scalingSchema identifies the scaling-report document layout.
const scalingSchema = "isacmp/scaling-report/v2"

// scaleOverheadReps is how many profiler-on/profiler-off pairs the
// overhead measurement times, interleaved with alternating order like
// bench-obs, with the median per-pair difference reported.
const scaleOverheadReps = 3

// scaleNilHookIters sizes the nil-hook micro-measurement that backs
// the profiler-off overhead estimate.
const scaleNilHookIters = 1_000_000

// scalePoint is one worker count in the sweep. WallSeconds is
// measured with the profiler live (its cost is bounded separately by
// ProfilerOnOverheadPercent), so all points carry the same
// instrumentation and compare cleanly.
type scalePoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	// Speedup is T(1)/T(w); Efficiency divides it by w.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// BlockedSeconds is the pool-wide queue-wait total: workers sitting
	// on the task channel because the coordinator could not feed them.
	BlockedSeconds float64 `json:"blocked_seconds"`
	// Identical records byte-identity of this point's canonicalized
	// manifest against the workers=1 run.
	Identical    bool               `json:"identical"`
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	Occupancy    []prof.Occupancy   `json:"occupancy,omitempty"`
}

// scaleAttribution is one cause of lost parallelism, in seconds of
// wall time at the deepest point of the sweep.
type scaleAttribution struct {
	Cause   string  `json:"cause"`
	Seconds float64 `json:"seconds"`
	Detail  string  `json:"detail"`
}

// scalingDoc is the record `isacmp scalebench` writes
// (BENCH_PR6.json): the full matrix swept over worker counts with the
// span profiler live, per-stage breakdowns and worker occupancy per
// point, an Amdahl serial-fraction fit, and a ranked attribution of
// where the parallelism went.
type scalingDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the deepest worker count swept — the provenance field
	// the bench-watch rule demands be > 1.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	Points []scalePoint `json:"points"`

	// BestWallSeconds is the fastest wall time across the sweep — the
	// watched wall-time metric.
	BestWallSeconds float64 `json:"best_wall_seconds"`
	// EfficiencyAt4 is T(1)/(4*T(4)) when the sweep has a 4-worker
	// point; on a single-CPU host it is bounded near 1/NumCPU/... by
	// hardware, which the attribution below names explicitly.
	EfficiencyAt4 float64 `json:"efficiency_at_4,omitempty"`
	// AmdahlSerialFraction is the least-squares serial fraction fitted
	// to the sweep (-1 when the sweep was degenerate).
	AmdahlSerialFraction float64 `json:"amdahl_serial_fraction"`

	// Attribution ranks the causes of lost parallelism at the deepest
	// point (top three); DominantBottleneck names the first.
	Attribution        []scaleAttribution `json:"attribution"`
	DominantBottleneck string             `json:"dominant_bottleneck"`

	// ProfilerOnOverheadPercent is the measured median wall-time cost
	// of running with -profile versus without (budget 3%).
	// ProfilerOffOverheadPercent is the estimated cost of the disabled
	// hooks themselves: the measured nil-hook pair cost times the
	// number of hook pairs a run executes, as a percentage of the
	// profiler-off wall time (must stay under 1%).
	ProfilerOnOverheadPercent  float64 `json:"profiler_on_overhead_percent"`
	ProfilerOffOverheadPercent float64 `json:"profiler_off_overhead_percent"`
	BudgetPercent              float64 `json:"budget_percent"`
	WithinBudget               bool    `json:"within_budget"`

	// Identical records that every sweep point and both overhead legs
	// produced byte-identical canonicalized manifests — profiling and
	// worker count change no output byte.
	Identical bool `json:"identical"`

	benchProvenance
}

// scaleWorkerSweep is the worker counts scalebench visits:
// {1, 2, 4, 8, GOMAXPROCS}, deduplicated and sorted.
func scaleWorkerSweep() []int {
	set := map[int]bool{1: true, 2: true, 4: true, 8: true, runtime.GOMAXPROCS(0): true}
	ws := make([]int, 0, len(set))
	for w := range set {
		if w >= 1 {
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	return ws
}

// nilHookPairSeconds measures the cost of one disabled
// (nil-profiler) Start/End pair — the entire per-hook price a
// profiler-off run pays.
func nilHookPairSeconds() float64 {
	var p *prof.Profiler
	start := time.Now()
	for i := 0; i < scaleNilHookIters; i++ {
		sp := p.Start(0, prof.StageSimulate, "", "")
		sp.End()
	}
	return time.Since(start).Seconds() / scaleNilHookIters
}

// scaleBench sweeps the matrix over worker counts with the span
// profiler live, measures the profiler's own on/off cost, fits the
// serial fraction, attributes the lost parallelism, and writes the
// scalingDoc JSON to out. When guardPath names a committed
// scaling-report doc, the fresh doc is judged through bench-watch.
func scaleBench(progs []*ir.Program, scale workloads.Scale, out, guardPath string, text bool) error {
	base := report.Experiment{PathLength: true, CritPath: true, Scaled: true, Windowed: true}
	sweep := scaleWorkerSweep()
	maxW := sweep[len(sweep)-1]

	doc := scalingDoc{
		Schema:        scalingSchema,
		Scale:         scale.String(),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       maxW,
		BudgetPercent: 3,
		Identical:     true,
	}

	// Phase 1: the sweep. Every point runs with a fresh profiler so
	// its stage totals describe exactly that worker count.
	walls := make(map[int]float64, len(sweep))
	stageAt := make(map[int]map[string]float64, len(sweep))
	blockedAt := make(map[int]float64, len(sweep))
	var refJSON []byte // canonical manifest of the workers=1 point
	var hookPairs int64
	for _, w := range sweep {
		ex := base
		ex.Parallel = w
		ex.Prof = prof.New(w, 0)
		runtime.GC()
		start := time.Now()
		rows, st, err := report.RunSuite(progs, ex)
		if err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		rowsJSON, err := canonicalRowsJSON(progs, scale, rows)
		if err != nil {
			return err
		}
		if w == 1 {
			refJSON = rowsJSON
			doc.Cells = st.Cells
			for _, t := range ex.Prof.StageTotals() {
				hookPairs += t.Spans
			}
		}
		pt := scalePoint{
			Workers:        w,
			WallSeconds:    wall,
			BlockedSeconds: st.BlockedSeconds,
			Identical:      bytes.Equal(refJSON, rowsJSON),
			StageSeconds:   ex.Prof.StageSeconds(),
			Occupancy:      prof.OccupancyFromSched(*st),
		}
		doc.Identical = doc.Identical && pt.Identical
		walls[w] = wall
		stageAt[w] = pt.StageSeconds
		blockedAt[w] = st.BlockedSeconds
		doc.Points = append(doc.Points, pt)
		if text {
			fmt.Printf("scalebench: workers=%d wall %.3fs blocked %.3fs identical=%v\n", w, wall, st.BlockedSeconds, pt.Identical)
		}
	}
	t1 := walls[1]
	for i := range doc.Points {
		pt := &doc.Points[i]
		if pt.WallSeconds > 0 {
			pt.Speedup = t1 / pt.WallSeconds
		}
		pt.Efficiency = prof.Efficiency(t1, pt.WallSeconds, pt.Workers)
	}
	doc.BestWallSeconds = walls[sweep[0]]
	for _, w := range sweep {
		if walls[w] < doc.BestWallSeconds {
			doc.BestWallSeconds = walls[w]
		}
	}
	if t4, ok := walls[4]; ok {
		doc.EfficiencyAt4 = prof.Efficiency(t1, t4, 4)
	}
	doc.AmdahlSerialFraction = prof.AmdahlSerialFraction(walls)

	// Phase 2: profiler cost, at min(4, maxW) workers — interleaved
	// on/off pairs, alternating order, median per-pair difference.
	wOv := 4
	if wOv > maxW {
		wOv = maxW
	}
	offEx := base
	offEx.Parallel = wOv
	var onRows, offRows [][]report.Row
	onWalls := make([]float64, scaleOverheadReps)
	offWalls := make([]float64, scaleOverheadReps)
	timeOn := func(i int) error {
		ex := base
		ex.Parallel = wOv
		ex.Prof = prof.New(wOv, 0)
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, ex)
		if err != nil {
			return err
		}
		onWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			onRows = rows
		}
		return nil
	}
	timeOff := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, offEx)
		if err != nil {
			return err
		}
		offWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			offRows = rows
		}
		return nil
	}
	for i := 0; i < scaleOverheadReps; i++ {
		first, second := timeOn, timeOff
		if i%2 == 1 {
			first, second = timeOff, timeOn
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	pairOverheads := make([]float64, scaleOverheadReps)
	for i := range pairOverheads {
		pairOverheads[i] = (onWalls[i] - offWalls[i]) / offWalls[i] * 100
	}
	doc.ProfilerOnOverheadPercent = medianFloat(pairOverheads)
	doc.WithinBudget = doc.ProfilerOnOverheadPercent <= doc.BudgetPercent
	onJSON, err := canonicalRowsJSON(progs, scale, onRows)
	if err != nil {
		return err
	}
	offJSON, err := canonicalRowsJSON(progs, scale, offRows)
	if err != nil {
		return err
	}
	profIdentical := bytes.Equal(onJSON, offJSON) && bytes.Equal(refJSON, offJSON)
	doc.Identical = doc.Identical && profIdentical
	if offWall := minFloat(offWalls); offWall > 0 {
		doc.ProfilerOffOverheadPercent = nilHookPairSeconds() * float64(hookPairs) / offWall * 100
	}
	if !doc.Identical {
		return fmt.Errorf("scalebench: results differ across worker counts or profiler state (determinism violation)")
	}

	// Phase 3: attribution. At the deepest point, the wall time lost
	// versus the ideal T(1)/w split into named causes.
	doc.Attribution = attributeLostParallelism(maxW, doc.NumCPU, walls, stageAt, blockedAt)
	if len(doc.Attribution) > 3 {
		doc.Attribution = doc.Attribution[:3]
	}
	if len(doc.Attribution) > 0 {
		doc.DominantBottleneck = doc.Attribution[0].Cause
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("scalebench: %d cells, sweep to %d workers on %d CPU(s): best %.3fs, serial fraction %.2f, bottleneck %s, profiler on %.2f%%/off %.3f%% (budget %.0f%%), identical=%v -> %s\n",
			doc.Cells, maxW, doc.NumCPU, doc.BestWallSeconds, doc.AmdahlSerialFraction,
			doc.DominantBottleneck, doc.ProfilerOnOverheadPercent, doc.ProfilerOffOverheadPercent,
			doc.BudgetPercent, doc.Identical, out)
		for _, a := range doc.Attribution {
			fmt.Printf("scalebench:   %-22s %7.3fs  %s\n", a.Cause, a.Seconds, a.Detail)
		}
	}
	if guardPath != "" {
		return benchWatch(guardPath, out, text)
	}
	return nil
}

// attributeLostParallelism splits the wall time lost at w workers —
// T(w) minus the ideal T(1)/w — into named causes, sorted largest
// first:
//
//   - hardware-cpu-limit: only min(w, NumCPU) cores exist, so even a
//     perfectly parallel program cannot beat T(1)/NumCPU.
//   - queue-starvation: workers blocked on the task channel because
//     the coordinator could not feed them (pool BlockedSeconds / w).
//   - stage-inflation:<stage>: a stage's summed span time grew versus
//     the workers=1 run (contention, cache pressure), amortized over w.
//   - unattributed-serial: the remainder — coordinator-side work and
//     anything the spans do not cover.
//
// The raw estimates overlap: spans measure wall time, so a worker
// preempted because the cores are oversubscribed inflates its stage
// spans with the very seconds the cpu-limit bucket already claims.
// The loss is therefore allocated greedily — hardware first, then
// queue waits, then span inflation, each capped by what remains — so
// the reported seconds sum to the true loss and the dominant cause is
// not double-counted. Each Detail keeps the uncapped measurement.
func attributeLostParallelism(w, numCPU int, walls map[int]float64, stageAt map[int]map[string]float64, blockedAt map[int]float64) []scaleAttribution {
	t1, tw := walls[1], walls[w]
	lost := tw - t1/float64(w)
	if lost <= 0 {
		return []scaleAttribution{{
			Cause:   "none",
			Seconds: 0,
			Detail:  fmt.Sprintf("wall at %d workers (%.3fs) already matches the ideal %.3fs", w, tw, t1/float64(w)),
		}}
	}
	var out []scaleAttribution
	remaining := lost
	take := func(estimate float64) float64 {
		if estimate > remaining {
			estimate = remaining
		}
		if estimate < 0 {
			estimate = 0
		}
		remaining -= estimate
		return estimate
	}
	if numCPU < w {
		// The share of the loss explained purely by the core count:
		// ideal-on-numCPU-cores minus ideal-on-w-cores.
		hw := t1/float64(numCPU) - t1/float64(w)
		if got := take(hw); got > 0 {
			out = append(out, scaleAttribution{
				Cause:   "hardware-cpu-limit",
				Seconds: got,
				Detail:  fmt.Sprintf("%d workers share %d CPU(s); best possible wall is T1/%d = %.3fs, not T1/%d = %.3fs", w, numCPU, numCPU, t1/float64(numCPU), w, t1/float64(w)),
			})
		}
	}
	if got := take(blockedAt[w] / float64(w)); got > 0 {
		out = append(out, scaleAttribution{
			Cause:   "queue-starvation",
			Seconds: got,
			Detail:  fmt.Sprintf("workers spent %.3fs total waiting on the task queue (%.3fs averaged over %d workers)", blockedAt[w], blockedAt[w]/float64(w), w),
		})
	}
	s1, sw := stageAt[1], stageAt[w]
	for _, stage := range sortedKeys(sw) {
		inflation := (sw[stage] - s1[stage]) / float64(w)
		if got := take(inflation); got > 0 {
			out = append(out, scaleAttribution{
				Cause:   "stage-inflation:" + stage,
				Seconds: got,
				Detail:  fmt.Sprintf("%s span time grew %.3fs -> %.3fs at %d workers (contention), %.3fs of wall amortized", stage, s1[stage], sw[stage], w, inflation),
			})
		}
	}
	if remaining > 0.001 {
		out = append(out, scaleAttribution{
			Cause:   "unattributed-serial",
			Seconds: remaining,
			Detail:  fmt.Sprintf("%.3fs of the %.3fs lost wall not covered by spans or queue waits (coordinator-side work)", remaining, lost),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
