// Command isacmp regenerates every table and figure of the paper from
// one binary:
//
//	isacmp pathlen  [-scale small] [-bench stream]   Figure 1
//	isacmp critpath [-scale small] [-bench stream]   Table 1
//	isacmp scaledcp [-scale small] [-bench stream]   Table 2
//	isacmp windowcp [-scale small] [-bench stream]   Figure 2
//	isacmp all      [-scale small]                   everything
//	isacmp run      [-workload stream] [-core ooo] [-metrics-json out.json]
//	isacmp disasm   [-bench stream] [-kernel copy] [-target aarch64-gcc12]
//	isacmp verify   [-scale tiny]                    simulated vs host reference
//
// -scale is tiny, small or paper. With no -bench, every benchmark
// runs.
//
// Observability flags (every subcommand): -json writes a run manifest
// (schema isacmp/run-manifest/v2); -progress prints a retire-rate
// heartbeat to stderr; -cpuprofile/-memprofile write pprof profiles;
// -serve ADDR exposes /metrics (Prometheus text), /statusz (live
// matrix state), /events (SSE lifecycle stream), /healthz, /readyz
// and /debug/pprof for the duration of the command; -log-level and
// -log-format control the structured stderr log; -flight-dir arms the
// per-cell flight recorder (post-mortem JSON on cell death, ring size
// -flight-events); -profile records per-stage span timelines on
// per-worker lanes (served on /profilez, summarized on /statusz,
// exported as Chrome-trace JSON via -profile-trace or
// /profilez?format=chrome). The run subcommand adds -core
// emulation|inorder|ooo, -cache, -metrics-json (alias of -json),
// -trace (Chrome-trace JSON of pipeline timing, loadable in
// chrome://tracing), -trace-format chrome|jsonl, -trace-cap and
// -trace-sample.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"isacmp"

	"isacmp/internal/a64"
	"isacmp/internal/benchdb"
	"isacmp/internal/core"
	"isacmp/internal/elfio"
	"isacmp/internal/fusion"
	"isacmp/internal/ir"
	"isacmp/internal/obs"
	"isacmp/internal/obs/slogx"
	"isacmp/internal/prof"
	"isacmp/internal/report"
	"isacmp/internal/rv64"
	"isacmp/internal/sched"
	"isacmp/internal/simeng"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scaleFlag := fs.String("scale", "small", "problem size: tiny, small or paper")
	benchFlag := fs.String("bench", "", "run a single benchmark (stream, cloverleaf, minibude, lbm, minisweep)")
	workloadFlag := fs.String("workload", "", "alias of -bench")
	kernelFlag := fs.String("kernel", "", "kernel to disassemble (disasm)")
	targetFlag := fs.String("target", "aarch64-gcc12", "target: {aarch64,rv64}-{gcc9,gcc12}, or \"all\" (run)")
	dirFlag := fs.String("dir", "results", "output directory (artifacts)")
	outFlag := fs.String("o", "BENCH_PR2.json", "output file (bench-matrix)")
	latencyFlag := fs.String("latency-file", "", "latency config file overriding the TX2 model (scaledcp)")
	countFlag := fs.Int("n", 32, "instructions to print (trace)")
	strideFlag := fs.Int("stride", 0, "window stride in instructions (windowcp; 0 = size/2)")
	fusionFlag := fs.String("fusion", "off", "macro-op fusion: off, rv64, a64 or both, optionally :rule,rule,... (rules: loadpair, storepair, addld, addst, slliadd, luiaddi, cmpbranch)")
	jsonFlag := fs.String("json", "", "write a run manifest to this file (\"-\" for stdout)")
	metricsJSONFlag := fs.String("metrics-json", "", "alias of -json")
	coreFlag := fs.String("core", "emulation", "core model for run: emulation, inorder or ooo")
	cacheFlag := fs.Bool("cache", false, "attach an L1D cache model to the inorder/ooo core (run)")
	traceFlag := fs.String("trace", "", "write a pipeline trace to this file (run)")
	traceFormatFlag := fs.String("trace-format", "chrome", "pipeline trace format: chrome or jsonl")
	traceCapFlag := fs.Int("trace-cap", 4096, "pipeline trace ring-buffer capacity in spans")
	traceSampleFlag := fs.Uint64("trace-sample", 1, "record every Nth instruction in the pipeline trace")
	parallelFlag := fs.Int("parallel", 0, "analysis workers (0 = all CPUs, 1 = sequential); results are identical for every value")
	progressFlag := fs.Bool("progress", false, "print a retire-rate heartbeat to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile to this file")
	cellTimeoutFlag := fs.Duration("cell-timeout", 0, "per-cell wall-clock deadline; an overrunning or hung cell becomes a FAILED row (0 disables)")
	retriesFlag := fs.Int("retries", 0, "re-attempts per failed cell before marking it FAILED")
	retryBackoffFlag := fs.Duration("retry-backoff", 100*time.Millisecond, "sleep before the first retry, doubling each further retry")
	failFastFlag := fs.Bool("fail-fast", false, "cancel the whole matrix on the first cell failure instead of continuing")
	maxInstFlag := fs.Uint64("max-instructions", 0, "per-cell instruction budget; exceeding it is a FAILED(budget) row (0 disables)")
	pr2Flag := fs.String("pr2-baseline", "BENCH_PR2.json", "committed bench-matrix doc to compute the hot-path speedup against (bench-hotpath; \"\" skips)")
	guardFlag := fs.String("guard", "", "committed bench doc to judge the fresh doc against via the bench-watch rules (bench-hotpath)")
	serveFlag := fs.String("serve", "", "serve the observability endpoints (/metrics, /statusz, /events, /healthz, /debug/pprof) on this address for the duration of the command (e.g. :8080, or :0 for an ephemeral port)")
	logLevelFlag := fs.String("log-level", "info", "structured log threshold: debug, info, warn or error")
	logFormatFlag := fs.String("log-format", "text", "structured log encoding on stderr: text or json (JSONL)")
	flightDirFlag := fs.String("flight-dir", "", "dump a flight-recorder post-mortem JSON into this directory when a cell fails")
	flightEventsFlag := fs.Int("flight-events", 0, "flight-recorder ring capacity in retired events (0 = default)")
	profileFlag := fs.Bool("profile", false, "record per-stage spans (setup/simulate/deliver/sink/retry-backoff/manifest-write) on per-worker timelines; served on /profilez and summarized on /statusz")
	profileTraceFlag := fs.String("profile-trace", "", "write the -profile span timelines as Chrome-trace JSON to this file at exit (implies -profile)")
	durableDirFlag := fs.String("durable-dir", "", "arm crash-safe running: a write-ahead cell journal plus content-addressed result cache in this directory")
	resumeFlag := fs.String("resume", "", "resume an interrupted run from this durability directory: replay the journal, verify hashes, recompute only unfinished cells")
	benchdbFlag := fs.String("benchdb", benchdb.DefaultLedgerPath, "append every finished bench document to this benchdb performance ledger (\"none\" disables)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(report.ExitUsage)
	}
	if *workloadFlag != "" {
		*benchFlag = *workloadFlag
	}
	if *metricsJSONFlag != "" {
		*jsonFlag = *metricsJSONFlag
	}
	benchLedgerPath = *benchdbFlag
	if benchLedgerPath == "none" {
		benchLedgerPath = ""
	}

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		usageFatal(err)
	}
	fusionCfg, err := fusion.ParseSpec(*fusionFlag)
	if err != nil {
		usageFatal(err)
	}
	progs, err := selectBenchmarks(*benchFlag, scale)
	if err != nil {
		usageFatal(err)
	}

	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer stopCPU()
	reg := telemetry.NewRegistry()
	manifest := telemetry.NewManifest(cmd, scale.String())
	startTime := time.Now()

	// Control plane: structured logger, run identity, live status
	// board, and (on -serve) the embedded HTTP server — all following
	// one context so -fail-fast/interrupt tears the server down too.
	runID := obs.NewRunID()
	log, err := slogx.New(os.Stderr, *logLevelFlag, *logFormatFlag)
	if err != nil {
		usageFatal(err)
	}
	log = log.With(slogx.KeyRunID, runID)
	board := obs.NewBoard(runID, reg)
	manifest.Obs = &telemetry.ObsConfig{
		RunID:     runID,
		LogLevel:  *logLevelFlag,
		LogFormat: *logFormatFlag,
	}
	if *flightDirFlag != "" {
		events := *flightEventsFlag
		if events <= 0 {
			events = obs.DefaultFlightEvents
		}
		manifest.Obs.FlightRecorder = &telemetry.FlightRecorderConfig{
			Dir:    *flightDirFlag,
			Events: events,
		}
	}
	// The span profiler gets one lane per analysis worker plus a
	// coordinator lane for out-of-pool work (manifest writes). nil
	// when -profile is off: every hook site then costs one nil check.
	var profiler *prof.Profiler
	if *profileFlag || *profileTraceFlag != "" {
		profiler = prof.New(sched.DefaultWorkers(*parallelFlag), 0)
	}
	obsCtx, obsCancel := context.WithCancel(context.Background())
	defer obsCancel()
	if *serveFlag != "" {
		srv, err := obs.StartServer(obsCtx, obs.ServerConfig{
			Addr: *serveFlag, Registry: reg, Board: board, Profiler: profiler, Log: log,
			Bench: &obs.BenchSource{Dir: ".", LedgerPath: benchLedgerPath, Registry: reg},
		})
		if err != nil {
			fatal(err)
		}
		srv.SetReady(true)
		defer srv.Close()
		manifest.Obs.ServeAddr = srv.Addr()
		log.Info("observability server listening", "addr", srv.Addr())
	}

	// Crash-safety layer: -durable-dir arms a fresh journal (the
	// content cache persists across runs), -resume replays an existing
	// one so already-retired cells are served instead of recomputed.
	drun, err := report.ArmDurability(*durableDirFlag, *resumeFlag, log)
	if err != nil {
		fatal(err)
	}
	if drun != nil {
		defer drun.Close()
	}

	// Two-stage interrupt contract for long matrix runs: the first
	// SIGINT/SIGTERM drains (no new cells start; in-flight cells
	// finish and journal; a valid partial manifest is written; exit
	// 3), the second hard-cancels in-flight cells, a third falls back
	// to the default signal disposition. Non-matrix subcommands keep
	// the default disposition throughout.
	var hardCtx, drainCtx context.Context
	switch cmd {
	case "pathlen", "critpath", "scaledcp", "windowcp", "mix", "all", "run":
		hardCtx, drainCtx = report.InstallDrainHandler(log)
	}

	baseEx := report.Experiment{
		Metrics:         reg,
		Fusion:          fusionCfg,
		Parallel:        *parallelFlag,
		CellTimeout:     *cellTimeoutFlag,
		MaxInstructions: *maxInstFlag,
		Retries:         *retriesFlag,
		RetryBackoff:    *retryBackoffFlag,
		FailFast:        *failFastFlag,
		Log:             log,
		RunID:           runID,
		Status:          board,
		FlightDir:       *flightDirFlag,
		FlightEvents:    *flightEventsFlag,
		Prof:            profiler,
		Ctx:             hardCtx,
		Drain:           drainCtx,
		Durable:         drun,
	}
	if *progressFlag {
		baseEx.Progress = os.Stderr
		baseEx.ProgressFinalOnly = !slogx.IsTerminal(os.Stderr)
	}
	if *strideFlag != 0 {
		baseEx.WindowStride = *strideFlag
	}
	if err := baseEx.Validate(); err != nil {
		usageFatal(err)
	}
	// failedCells accumulates FAILED rows across the subcommand; a
	// partial matrix exits with report.ExitPartial after the manifest
	// is written.
	failedCells := 0

	text := *jsonFlag != "-"
	switch cmd {
	case "pathlen":
		ex := baseEx
		ex.PathLength = true
		var summaries []report.Summary
		failedCells += runExperiment(progs, scale, ex, manifest, text, func(p *ir.Program, rows []report.Row) {
			if text {
				report.WritePathLengths(os.Stdout, p.Name, rows)
				report.WriteFusion(os.Stdout, p.Name, rows)
			}
			summaries = append(summaries, report.Summarise(p.Name, rows)...)
		})
		if text {
			report.WriteSummaries(os.Stdout, summaries)
		}
	case "critpath":
		ex := baseEx
		ex.CritPath = true
		failedCells += runExperiment(progs, scale, ex, manifest, text, func(p *ir.Program, rows []report.Row) {
			if text {
				report.WriteCritPaths(os.Stdout, p.Name, rows, false)
				report.WriteFusion(os.Stdout, p.Name, rows)
			}
		})
	case "scaledcp":
		ex := baseEx
		ex.Scaled = true
		if *latencyFlag != "" {
			f, err := os.Open(*latencyFlag)
			if err != nil {
				fatal(err)
			}
			lat, err := simeng.ParseLatencyConfig(f, nil)
			f.Close()
			if err != nil {
				fatal(err)
			}
			ex.Latencies = lat
		}
		failedCells += runExperiment(progs, scale, ex, manifest, text, func(p *ir.Program, rows []report.Row) {
			if text {
				report.WriteCritPaths(os.Stdout, p.Name, rows, true)
			}
		})
	case "windowcp":
		ex := baseEx
		ex.Windowed, ex.GCC12Only, ex.WindowStride = true, true, *strideFlag
		failedCells += runExperiment(progs, scale, ex, manifest, text, func(p *ir.Program, rows []report.Row) {
			if text {
				report.WriteWindowed(os.Stdout, p.Name, rows)
			}
		})
	case "mix":
		ex := baseEx
		ex.Mix = true
		failedCells += runExperiment(progs, scale, ex, manifest, text, func(p *ir.Program, rows []report.Row) {
			if text {
				report.WriteMix(os.Stdout, p.Name, rows)
			}
		})
	case "all":
		if text {
			report.Banner(os.Stdout, "isacmp: full reproduction", scale.String())
		}
		var summaries []report.Summary
		ex := baseEx
		ex.PathLength, ex.CritPath, ex.Scaled, ex.Windowed = true, true, true, true
		all, st, err := report.RunSuite(progs, ex)
		if err != nil {
			fatal(err)
		}
		manifest.Sched = st
		failedCells += report.CountFailures(all)
		for i, p := range progs {
			rows := all[i]
			report.AppendRows(manifest, p.Name, rows)
			if text {
				report.WritePathLengths(os.Stdout, p.Name, rows)
				report.WriteCritPaths(os.Stdout, p.Name, rows, false)
				report.WriteCritPaths(os.Stdout, p.Name, rows, true)
				report.WriteFusion(os.Stdout, p.Name, rows)
			}
			gcc12 := rows[:0:0]
			for _, r := range rows {
				if r.Target.Flavor == isacmp.GCC12 {
					gcc12 = append(gcc12, r)
				}
			}
			if text {
				report.WriteWindowed(os.Stdout, p.Name, gcc12)
			}
			summaries = append(summaries, report.Summarise(p.Name, rows)...)
		}
		if text {
			report.WriteSummaries(os.Stdout, summaries)
		}
	case "run":
		cfg := runCmdConfig{
			core:         *coreFlag,
			cache:        *cacheFlag,
			fusion:       fusionCfg,
			target:       *targetFlag,
			trace:        *traceFlag,
			traceFormat:  *traceFormatFlag,
			traceCap:     *traceCapFlag,
			traceSample:  *traceSampleFlag,
			parallel:     *parallelFlag,
			progress:     *progressFlag,
			text:         text,
			cellTimeout:  *cellTimeoutFlag,
			maxInst:      *maxInstFlag,
			retries:      *retriesFlag,
			backoff:      *retryBackoffFlag,
			failFast:     *failFastFlag,
			log:          log,
			runID:        runID,
			board:        board,
			flightDir:    *flightDirFlag,
			flightEvents: *flightEventsFlag,
			ctx:          hardCtx,
			drain:        drainCtx,
			durable:      drun,
		}
		n, err := runInstrumented(progs, cfg, reg, manifest)
		if err != nil {
			fatal(err)
		}
		failedCells += n
	case "bench-matrix":
		if err := benchMatrix(progs, scale, *outFlag, *parallelFlag, text); err != nil {
			fatal(err)
		}
	case "bench-resilience":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR3.json"
		}
		if err := benchResilience(progs, scale, out, *parallelFlag, text); err != nil {
			fatal(err)
		}
	case "bench-hotpath":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR4.json"
		}
		if err := benchHotpath(progs, scale, out, *pr2Flag, *guardFlag, text); err != nil {
			fatal(err)
		}
	case "bench-obs":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR5.json"
		}
		if err := benchObs(progs, scale, out, *parallelFlag, text); err != nil {
			fatal(err)
		}
	case "bench-fusion":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR7.json"
		}
		if err := benchFusion(progs, scale, out, *guardFlag, text); err != nil {
			fatal(err)
		}
	case "scalebench":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR6.json"
		}
		if err := scaleBench(progs, scale, out, *guardFlag, text); err != nil {
			fatal(err)
		}
	case "bench-durable":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR8.json"
		}
		if err := benchDurable(progs, scale, out, *parallelFlag, text); err != nil {
			fatal(err)
		}
	case "bench-benchdb":
		out := *outFlag
		if out == "BENCH_PR2.json" { // flag default belongs to bench-matrix
			out = "BENCH_PR10.json"
		}
		if err := benchBenchdb(progs, scale, out, *parallelFlag, text); err != nil {
			fatal(err)
		}
	case "bench-watch":
		args := fs.Args()
		if len(args) != 2 {
			usageFatal(fmt.Errorf("bench-watch wants exactly two arguments: <committed.json> <fresh.json>"))
		}
		if err := benchWatch(args[0], args[1], text); err != nil {
			fatal(err)
		}
	case "artifacts":
		if err := report.WriteArtifacts(*dirFlag, progs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote kernelCounts.txt, basicCPResult.txt, scaledCPResult.txt, windowAverages.txt to %s/\n", *dirFlag)
	case "disasm":
		if err := disasm(progs, *kernelFlag, *targetFlag); err != nil {
			fatal(err)
		}
	case "trace":
		if err := trace(progs, *kernelFlag, *targetFlag, *countFlag); err != nil {
			fatal(err)
		}
	case "blocks":
		if err := hotBlocks(progs, *targetFlag, *countFlag); err != nil {
			fatal(err)
		}
	case "verify":
		for _, p := range progs {
			for _, tgt := range isacmp.Targets() {
				bin, err := isacmp.Compile(p, tgt)
				if err != nil {
					fatal(err)
				}
				if err := bin.Verify(); err != nil {
					fatal(err)
				}
				fmt.Printf("%-12s %-18s OK\n", p.Name, tgt)
			}
		}
	default:
		usage()
		os.Exit(2)
	}

	if drun != nil {
		st := drun.Stats()
		manifest.Durable = &st
	}
	manifest.Finish(startTime, reg)
	if *jsonFlag != "" {
		sp := profiler.Start(profiler.CoordinatorLane(), prof.StageManifestWrite, "", "")
		err := manifest.WriteFile(*jsonFlag)
		sp.End()
		if err != nil {
			fatal(err)
		}
	}
	if *profileTraceFlag != "" {
		f, err := os.Create(*profileTraceFlag)
		if err != nil {
			fatal(err)
		}
		if err := profiler.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if err := telemetry.WriteMemProfile(*memProfile); err != nil {
		fatal(err)
	}
	if failedCells > 0 {
		fmt.Fprintf(os.Stderr, "isacmp: %d matrix cell(s) FAILED; see the FAILED table rows and the manifest failures block\n", failedCells)
		os.Exit(report.ExitPartial)
	}
}

// runExperiment fans the whole (workload, target) matrix over the
// experiment's worker pool, then appends and prints the rows in the
// fixed workload/target order — output is deterministic regardless of
// completion order or -parallel value. It returns the number of
// FAILED cells (continue-on-error mode leaves them as FAILED rows).
func runExperiment(progs []*ir.Program, scale workloads.Scale, ex report.Experiment, manifest *telemetry.Manifest, text bool, write func(*ir.Program, []report.Row)) int {
	if text {
		report.Banner(os.Stdout, "isacmp", scale.String())
	}
	all, st, err := report.RunSuite(progs, ex)
	if err != nil {
		fatal(err)
	}
	manifest.Sched = st
	for i, p := range progs {
		report.AppendRows(manifest, p.Name, all[i])
		write(p, all[i])
	}
	return report.CountFailures(all)
}

// runCmdConfig carries the `run` subcommand's knobs.
type runCmdConfig struct {
	core        string
	cache       bool
	fusion      fusion.Config
	target      string
	trace       string
	traceFormat string
	traceCap    int
	traceSample uint64
	parallel    int
	progress    bool
	text        bool
	cellTimeout time.Duration
	maxInst     uint64
	retries     int
	backoff     time.Duration
	failFast    bool

	log          *slog.Logger
	runID        string
	board        *obs.Board
	flightDir    string
	flightEvents int

	// Durability and interrupt wiring (see installDrainHandler): ctx
	// hard-cancels in-flight cells, drain stops new work gracefully,
	// durable is the shared crash-safety handle.
	ctx     context.Context
	drain   context.Context
	durable *isacmp.DurableRun
}

// instrCell is one (workload, target) slot of the run subcommand.
type instrCell struct {
	prog    *ir.Program
	tgt     isacmp.Target
	rec     isacmp.RunRecord
	tracer  *isacmp.PipelineTrace
	failure *telemetry.FailureRecord
	// served marks a cell replayed from the durability journal or
	// content cache instead of computed (nil-Result contract of
	// RunInstrumented); the status board already saw its terminal
	// transition.
	served bool
}

// runInstrumented is the `run` subcommand: execute each selected
// benchmark on the chosen core model with full telemetry — whole-run
// metrics, per-sink overhead, optional pipeline trace — and append
// one record per run to the manifest. The (workload, target) cells fan
// out over the -parallel worker pool; records are collected into
// per-cell slots and printed in the fixed loop order afterwards, so
// the table and manifest are deterministic for every worker count.
// With a single cell the parallelism budget moves inside the run (the
// fan-out analysis engine) instead.
//
// Cells run under the same resilience policy as the matrix engine:
// guarded, retried, deadline-reaped; failed cells print FAILED rows
// and land in the manifest failures block. The FAILED-cell count is
// returned so main can exit with the partial code.
func runInstrumented(progs []*ir.Program, cfg runCmdConfig, reg *telemetry.Registry, manifest *telemetry.Manifest) (int, error) {
	var targets []isacmp.Target
	if cfg.target == "all" {
		targets = isacmp.Targets()
	} else {
		tgt, err := parseTarget(cfg.target)
		if err != nil {
			return 0, err
		}
		targets = []isacmp.Target{tgt}
	}

	var cells []*instrCell
	for _, p := range progs {
		for _, tgt := range targets {
			cells = append(cells, &instrCell{prog: p, tgt: tgt})
			cfg.board.Register(p.Name, tgt.String())
		}
	}
	inner := 1
	if len(cells) == 1 {
		inner = cfg.parallel
	}
	cfg.board.SetWorkers(sched.DefaultWorkers(cfg.parallel))

	root := cfg.ctx
	if root == nil {
		root = context.Background()
	}
	ctx, cancel := context.WithCancel(root)
	defer cancel()
	var firstFail atomic.Value
	pool := sched.NewPool(cfg.parallel, reg)
	pool.Log = cfg.log
	for _, c := range cells {
		c := c
		pool.Go(func() {
			c.failure = runInstrumentedCell(ctx, c, cfg, reg, inner)
			if c.failure != nil && cfg.failFast {
				firstFail.CompareAndSwap(nil, c.failure)
				cancel()
			}
		})
	}
	pool.Close()
	st := pool.Stats()
	manifest.Sched = &st
	if n, first := pool.Panics(); n > 0 {
		return 0, fmt.Errorf("%d run cell(s) panicked past every guard; first: %s", n, first)
	}
	if f, ok := firstFail.Load().(*telemetry.FailureRecord); ok {
		return 0, fmt.Errorf("%s/%s failed (%s): %s", f.Workload, f.Target, f.Reason, f.Message)
	}

	failed := 0
	if cfg.text {
		fmt.Printf("%-12s %-18s %-10s %14s %14s %8s %10s %10s\n",
			"workload", "target", "core", "instructions", "cycles", "IPC", "Minst/s", "wall")
	}
	for _, c := range cells {
		if f := c.failure; f != nil {
			failed++
			manifest.Failures = append(manifest.Failures, *f)
			if cfg.text {
				fmt.Printf("%-12s %-18s FAILED(%s) after %d attempt(s)\n",
					c.prog.Name, c.tgt, f.Reason, f.Attempts)
			}
			continue
		}
		manifest.Runs = append(manifest.Runs, c.rec)
		if cfg.text {
			fmt.Printf("%-12s %-18s %-10s %14d %14d %8.2f %10.1f %9.3fs\n",
				c.prog.Name, c.tgt, c.rec.Core.Model, c.rec.Core.Instructions, c.rec.Core.Cycles,
				c.rec.Core.IPC(), c.rec.MIPS, c.rec.WallSeconds)
		}
		if c.tracer != nil {
			path := tracePath(cfg.trace, c.prog.Name, c.tgt, len(cells))
			if err := writeTrace(c.tracer, path, cfg.traceFormat); err != nil {
				return failed, err
			}
			if cfg.text {
				fmt.Printf("  pipeline trace: %s (%d spans, %d overwritten)\n",
					path, len(c.tracer.Spans()), c.tracer.Dropped())
			}
		}
	}
	return failed, nil
}

// runInstrumentedCell runs one cell with retries; it returns nil on
// success (filling c.rec/c.tracer) or the cell's failure record.
func runInstrumentedCell(ctx context.Context, c *instrCell, cfg runCmdConfig, reg *telemetry.Registry, inner int) *telemetry.FailureRecord {
	workload, target := c.prog.Name, c.tgt.String()
	clog := slogx.OrNop(cfg.log).With(slogx.KeyWorkload, workload, slogx.KeyTarget, target)
	attempts := cfg.retries + 1
	var history []telemetry.AttemptRecord
	var last *simeng.SimError
	postmortem := ""
	var drainCh <-chan struct{}
	if cfg.drain != nil {
		drainCh = cfg.drain.Done()
	}
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 && cfg.backoff > 0 {
			// Context-aware backoff: a pending sleep never delays
			// cancellation or a graceful drain.
			select {
			case <-time.After(cfg.backoff << (attempt - 2)):
			case <-ctx.Done():
			case <-drainCh:
			}
		}
		if cause := ctx.Err(); cause != nil || (cfg.drain != nil && cfg.drain.Err() != nil) {
			if cause == nil {
				cause = cfg.drain.Err()
			}
			last = simeng.WithCell(&simeng.SimError{Kind: simeng.ErrDeadline, Err: cause},
				workload, target)
			history = append(history, telemetry.AttemptRecord{
				Attempt: attempt, Reason: simeng.Reason(last), Message: last.Error(),
			})
			break
		}
		cfg.board.Running(workload, target, attempt)
		err := runInstrumentedAttempt(ctx, c, cfg, reg, inner, attempt)
		if err == nil {
			if attempt > 1 {
				c.rec.Retries = attempt - 1
			}
			if c.served {
				// RunInstrumented already drove the board through its
				// terminal served transition; feeding the replayed wall
				// time into the EWMAs would poison the ETA.
				clog.Debug("run cell served", slogx.KeyAttempt, attempt,
					"retired", c.rec.Core.Instructions)
				return nil
			}
			cfg.board.Done(workload, target, c.rec.WallSeconds, c.rec.Core.Instructions)
			clog.Debug("run cell done", slogx.KeyAttempt, attempt,
				"retired", c.rec.Core.Instructions, "wall_seconds", c.rec.WallSeconds)
			return nil
		}
		last = simeng.WithCell(err, workload, target)
		// RunInstrumented dumps post-mortems at deterministic paths; a
		// watchdog-abandoned attempt never dumps, so stat decides.
		if cfg.flightDir != "" {
			if p := obs.PostmortemPath(cfg.flightDir, workload, target, attempt); fileExists(p) {
				postmortem = p
			}
		}
		history = append(history, telemetry.AttemptRecord{
			Attempt: attempt, Reason: simeng.Reason(last), Message: last.Error(),
		})
		clog.Warn("run cell attempt failed", slogx.KeyAttempt, attempt,
			"reason", simeng.Reason(last), "err", last.Error())
		if errors.Is(last, simeng.ErrDeadline) && ctx.Err() != nil {
			break
		}
		if attempt < attempts {
			cfg.board.Retrying(workload, target, attempt, simeng.Reason(last))
		}
	}
	cfg.board.Failed(workload, target, len(history), simeng.Reason(last))
	clog.Error("run cell failed", "attempts", len(history), "reason", simeng.Reason(last))
	return &telemetry.FailureRecord{
		Workload:   workload,
		Target:     target,
		Reason:     simeng.Reason(last),
		Message:    last.Error(),
		PC:         last.PC,
		Retired:    last.Retired,
		Attempts:   len(history),
		History:    history,
		Postmortem: postmortem,
	}
}

// fileExists reports whether path names an existing file.
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// runInstrumentedAttempt runs one attempt under the panic guard and,
// when -cell-timeout is set, a watchdog goroutine that reaps hung
// attempts. Results travel through the buffered channel so an
// abandoned attempt never races the caller's cell slot.
func runInstrumentedAttempt(ctx context.Context, c *instrCell, cfg runCmdConfig, reg *telemetry.Registry, inner, attempt int) error {
	cellCtx := ctx
	if cfg.cellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, cfg.cellTimeout)
		defer cancel()
	}
	type attemptResult struct {
		rec    isacmp.RunRecord
		tracer *isacmp.PipelineTrace
		served bool
		err    error
	}
	run := func() attemptResult {
		var res attemptResult
		res.err = simeng.Guard(func() error {
			bin, err := isacmp.Compile(c.prog, c.tgt)
			if err != nil {
				return err
			}
			rc := isacmp.RunConfig{
				Core:            cfg.core,
				Cache:           cfg.cache,
				Fusion:          cfg.fusion,
				Analyses:        isacmp.Analyses{Mix: true, Branches: true},
				Metrics:         reg,
				Parallel:        inner,
				Ctx:             cellCtx,
				MaxInstructions: cfg.maxInst,
				Log:             cfg.log,
				RunID:           cfg.runID,
				Attempt:         attempt,
				Status:          cfg.board,
				FlightDir:       cfg.flightDir,
				FlightEvents:    cfg.flightEvents,
				Durable:         cfg.durable,
			}
			if cfg.progress {
				rc.Progress = os.Stderr
				rc.ProgressFinalOnly = !slogx.IsTerminal(os.Stderr)
			}
			if cfg.trace != "" {
				res.tracer = isacmp.NewPipelineTrace(cfg.traceCap, cfg.traceSample)
				rc.Trace = res.tracer
			}
			out, rec, err := bin.RunInstrumented(rc)
			if err != nil {
				return err
			}
			res.rec = rec
			res.served = out == nil // nil-Result contract: served, not computed
			return nil
		})
		return res
	}
	apply := func(res attemptResult) error {
		if res.err != nil {
			return res.err
		}
		c.rec, c.tracer, c.served = res.rec, res.tracer, res.served
		return nil
	}
	if cfg.cellTimeout <= 0 {
		return apply(run())
	}
	ch := make(chan attemptResult, 1)
	go func() { ch <- run() }()
	select {
	case res := <-ch:
		return apply(res)
	case <-cellCtx.Done():
		return &simeng.SimError{Kind: simeng.ErrDeadline, Err: cellCtx.Err()}
	}
}

// tracePath derives a per-run trace filename when several runs would
// otherwise clobber one file.
func tracePath(base, workload string, tgt isacmp.Target, nruns int) string {
	if nruns == 1 {
		return base
	}
	tag := strings.NewReplacer("/", "-", " ", "").Replace(tgt.String())
	ext := ""
	stem := base
	if i := strings.LastIndex(base, "."); i > 0 {
		stem, ext = base[:i], base[i:]
	}
	return fmt.Sprintf("%s-%s-%s%s", stem, workload, tag, ext)
}

func writeTrace(t *isacmp.PipelineTrace, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "", "chrome":
		return t.WriteChromeTrace(f)
	case "jsonl":
		return t.WriteJSONL(f)
	default:
		return fmt.Errorf("unknown trace format %q (want chrome or jsonl)", format)
	}
}

func disasm(progs []*ir.Program, kernel, target string) error {
	tgt, err := parseTarget(target)
	if err != nil {
		return err
	}
	for _, p := range progs {
		bin, err := isacmp.Compile(p, tgt)
		if err != nil {
			return err
		}
		kernels := []string{kernel}
		if kernel == "" {
			kernels = kernels[:0]
			for _, k := range p.Kernels {
				kernels = append(kernels, k.Name)
			}
		}
		for _, k := range kernels {
			fmt.Printf("-- %s: %s (%s) --\n", p.Name, k, tgt)
			if err := bin.Disassemble(k, os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

// trace runs each benchmark and prints the first n retired
// instructions (optionally only those inside one kernel region) with
// their disassembly and memory effects — a SimEng-style execution
// trace.
func trace(progs []*ir.Program, kernel, target string, n int) error {
	tgt, err := parseTarget(target)
	if err != nil {
		return err
	}
	for _, p := range progs {
		bin, err := isacmp.Compile(p, tgt)
		if err != nil {
			return err
		}
		var lo, hi uint64
		if kernel != "" {
			for _, s := range bin.Symbols() {
				if s.Name == kernel {
					lo, hi = s.Value, s.Value+s.Size
				}
			}
			if hi == 0 {
				return fmt.Errorf("no kernel %q in %s", kernel, p.Name)
			}
		}
		fmt.Printf("-- trace: %s (%s)%s --\n", p.Name, tgt, kernelSuffix(kernel))
		printed := 0
		_, err = bin.Run(isacmp.SinkFunc(func(ev *isacmp.Event) {
			if printed >= n {
				return
			}
			if hi != 0 && (ev.PC < lo || ev.PC >= hi) {
				return
			}
			line := disasmWord(tgt, ev.Word)
			mem := ""
			if ev.LoadSize != 0 {
				mem += fmt.Sprintf("  [load %#x/%d]", ev.LoadAddr, ev.LoadSize)
			}
			if ev.StoreSize != 0 {
				mem += fmt.Sprintf("  [store %#x/%d]", ev.StoreAddr, ev.StoreSize)
			}
			if ev.Branch {
				taken := "not-taken"
				if ev.Taken {
					taken = "taken"
				}
				mem += "  [" + taken + "]"
			}
			fmt.Printf("%#08x: %-40s%s\n", ev.PC, line, mem)
			printed++
		}))
		if err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// hotBlocks prints the hottest dynamically discovered basic blocks of
// each benchmark — the paper's "basic code block" attribution — with a
// disassembly of the hottest one.
func hotBlocks(progs []*ir.Program, target string, n int) error {
	tgt, err := parseTarget(target)
	if err != nil {
		return err
	}
	for _, p := range progs {
		bin, err := isacmp.Compile(p, tgt)
		if err != nil {
			return err
		}
		prof := core.NewBlockProfile()
		if _, err := bin.Run(prof); err != nil {
			return err
		}
		fmt.Printf("-- hottest basic blocks: %s (%s) --\n", p.Name, tgt)
		blocks := prof.Hottest(n)
		syms := bin.Symbols()
		for _, blk := range blocks {
			region := ""
			for _, s := range syms {
				if blk.Start >= s.Value && blk.Start < s.Value+s.Size {
					region = s.Name
				}
			}
			fmt.Printf("%#08x..%#08x  %10d execs %12d insts (%5.1f%%)  %s\n",
				blk.Start, blk.End, blk.Execs, blk.Instructions, blk.Fraction*100, region)
		}
		if len(blocks) > 0 {
			fmt.Println("\nhottest block disassembly:")
			if err := disasmRange(bin, tgt, blocks[0].Start, blocks[0].End); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

// disasmRange prints the instructions in [lo, hi).
func disasmRange(bin *isacmp.Binary, tgt isacmp.Target, lo, hi uint64) error {
	words, base, err := textWords(bin)
	if err != nil {
		return err
	}
	for pc := lo; pc < hi; pc += 4 {
		idx := (pc - base) / 4
		if idx >= uint64(len(words)) {
			break
		}
		fmt.Printf("%#08x: %s\n", pc, disasmWord(tgt, words[idx]))
	}
	return nil
}

// textWords extracts the executable segment of the binary as words.
func textWords(bin *isacmp.Binary) ([]uint32, uint64, error) {
	img := bin.ELF()
	f, err := elfio.Read(img)
	if err != nil {
		return nil, 0, err
	}
	for _, seg := range f.Segments {
		if seg.Flags&elfio.PFX != 0 {
			words := make([]uint32, len(seg.Data)/4)
			for i := range words {
				words[i] = uint32(seg.Data[i*4]) | uint32(seg.Data[i*4+1])<<8 |
					uint32(seg.Data[i*4+2])<<16 | uint32(seg.Data[i*4+3])<<24
			}
			return words, seg.Vaddr, nil
		}
	}
	return nil, 0, fmt.Errorf("no text segment")
}

func kernelSuffix(kernel string) string {
	if kernel == "" {
		return ""
	}
	return ", kernel " + kernel
}

func disasmWord(tgt isacmp.Target, word uint32) string {
	if tgt.Arch == isacmp.AArch64 {
		inst, err := a64.Decode(word)
		if err != nil {
			return fmt.Sprintf(".word %#08x", word)
		}
		return inst.String()
	}
	inst, err := rv64.Decode(word)
	if err != nil {
		return fmt.Sprintf(".word %#08x", word)
	}
	return inst.String()
}

func parseScale(s string) (workloads.Scale, error) { return report.ParseScale(s) }

func parseTarget(s string) (isacmp.Target, error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return isacmp.Target{}, usageError{fmt.Errorf("bad target %q (want e.g. aarch64-gcc12)", s)}
	}
	var t isacmp.Target
	switch parts[0] {
	case "aarch64", "arm":
		t.Arch = isacmp.AArch64
	case "rv64", "riscv":
		t.Arch = isacmp.RV64
	default:
		return t, usageError{fmt.Errorf("unknown architecture %q (want aarch64 or rv64)", parts[0])}
	}
	switch parts[1] {
	case "gcc9":
		t.Flavor = isacmp.GCC9
	case "gcc12":
		t.Flavor = isacmp.GCC12
	default:
		return t, usageError{fmt.Errorf("unknown compiler %q (want gcc9 or gcc12)", parts[1])}
	}
	return t, nil
}

func selectBenchmarks(name string, s workloads.Scale) ([]*ir.Program, error) {
	return report.SelectBenchmarks(name, s)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: isacmp <command> [flags]

commands:
  pathlen    per-kernel dynamic instruction counts    (Figure 1)
  critpath   critical path, ILP, ideal 2 GHz runtime  (Table 1)
  scaledcp   latency-scaled critical path             (Table 2)
  windowcp   mean ILP per ROB-sized window            (Figure 2)
  mix        instruction mix and branch density       (section 3.3)
  run        instrumented run: core stats, metrics, pipeline trace
  bench-matrix  time the full matrix sequential vs parallel (-o, -parallel)
  bench-resilience  measure the armed-watchdog overhead vs baseline (-o)
  bench-hotpath  time the batched hot path vs the per-Step loop (-o,
                 -pr2-baseline, -guard: judge via the bench-watch rules)
  bench-obs  measure the serve-mode overhead vs baseline (-o)
  bench-fusion  measure the fusion-off scan overhead vs the <= 1% budget
             and the fusion-on effective-path-length ratios (-o, -guard)
  scalebench sweep the matrix over worker counts with the span profiler
             live: per-stage breakdown, occupancy, Amdahl fit and a
             ranked attribution of lost parallelism (-o, -guard)
  bench-durable  measure the write-ahead-journal overhead vs the <= 2%
             budget, journal-off byte-identity and warm-cache
             zero-recompute (-o)
  bench-benchdb  measure the benchdb observatory's own cost — noise
             probe + fsynced ledger append — vs the <= 1% budget,
             with bare/armed byte-identity (-o)
  bench-watch <committed.json> <fresh.json>  fail on regression against
             the committed benchmark trajectory with noise-aware
             tolerances; exit 0 pass, 1 regression, 2 usage/parse,
             3 host drift (fingerprint or noise-probe mismatch —
             re-baseline, don't debug)
  artifacts  write the four result files of the paper's artifact (A.6)
  trace      print a disassembled execution trace (-n, -kernel, -target)
  blocks     hottest dynamically-discovered basic blocks (-n, -target)
  all        everything above plus the ratio summary
  disasm     disassemble benchmark kernels
  verify     check simulated results against the host reference

flags: -scale tiny|small|paper   -bench <name>   -parallel <n> (0 = all CPUs)
  -fusion off|rv64|a64|both[:rule,...] (macro-op fusion pass; rules:
    loadpair storepair addld addst slliadd luiaddi cmpbranch)
  (disasm) -kernel <k> -target <a>-<c>

resilience: -cell-timeout <d>  -max-instructions <n>  -retries <n>
  -retry-backoff <d>  -fail-fast
  exit codes: 0 ok, 1 fatal, 2 usage, 3 partial (FAILED cells)

durability: -durable-dir <dir> (write-ahead cell journal + content-
  addressed result cache; SIGINT/SIGTERM drains gracefully, a second
  aborts)  -resume <dir> (replay the journal, verify hashes, recompute
  only unfinished cells; the manifest is byte-identical after
  canonicalization to an uninterrupted run)

observability: -json <f> (run manifest; "-" = stdout)  -progress
  -cpuprofile <f>  -memprofile <f>
  -serve <addr> (live /metrics /statusz /profilez /benchz /events
    /healthz /debug/pprof)
  -benchdb <f> (bench-document append ledger; default BENCHDB.jsonl,
    "none" disables; served on /benchz with the committed BENCH_*.json)
  -log-level debug|info|warn|error  -log-format text|json
  -flight-dir <dir>  -flight-events <n> (post-mortem ring on cell death)
  -profile (per-stage span timelines; /profilez, /statusz stage_seconds)
  -profile-trace <f> (Chrome-trace JSON of the span timelines at exit)
run: -workload <name> -target <t>|all -core emulation|inorder|ooo -cache
  -metrics-json <f>  -trace <f> -trace-format chrome|jsonl
  -trace-cap <n> -trace-sample <n>`)
}

// usageError marks bad user input (unknown names, invalid flag
// values); fatal maps it to the usage exit code.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// fatal prints the error and exits per the documented contract:
// ExitUsage (2) for bad user input, ExitPartial (3) for a bench-watch
// comparison refused because the host drifted (the measurement is
// invalid, not the code — re-baseline rather than debug), ExitFatal
// (1) for everything else including a genuine gate regression.
func fatal(err error) {
	var ue usageError
	if errors.As(err, &ue) {
		usageFatal(err)
	}
	fmt.Fprintln(os.Stderr, "isacmp:", err)
	if errors.Is(err, obs.ErrHostDrift) {
		os.Exit(report.ExitPartial)
	}
	os.Exit(report.ExitFatal)
}

// usageFatal prints a one-line error plus a usage hint and exits with
// the usage code.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "isacmp:", err)
	fmt.Fprintln(os.Stderr, "run `isacmp` without arguments for usage")
	os.Exit(report.ExitUsage)
}
