package main

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"time"

	"isacmp/internal/durable"
	"isacmp/internal/ir"
	"isacmp/internal/report"
	"isacmp/internal/sched"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// benchDurableSchema identifies the bench-durable document layout.
const benchDurableSchema = "isacmp/bench-durable/v2"

// durableDoc is the record `isacmp bench-durable` writes
// (BENCH_PR8.json): the full matrix timed once bare and once with the
// write-ahead cell journal armed (fsync per record, cold cache every
// rep), with the journal-off byte-identity checked, the overhead
// recorded against the <= 2% budget, and a warm-cache second run
// verified to recompute zero cells.
type durableDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Cells      int    `json:"cells"`

	BaselineSeconds float64 `json:"baseline_seconds"`
	JournalSeconds  float64 `json:"journal_seconds"`
	// OverheadPercent is the median over the interleaved bare/journal
	// pairs of (journal - bare) / bare * 100; the durability layer's
	// budget is BudgetPercent.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that arming the journal changed no output
	// byte — the journal-off byte-identity contract.
	Identical bool `json:"identical"`
	// WarmZeroRecompute records that a second run over the same
	// durability directory (fresh journal, persisted content cache)
	// simulated zero cells; WarmCachedCells is how many it served.
	WarmZeroRecompute bool `json:"warm_zero_recompute"`
	WarmCachedCells   int  `json:"warm_cached_cells"`

	benchProvenance
}

// benchDurable times the matrix bare and with the journal armed and
// writes the durableDoc JSON to out. Every journal-on rep gets a fresh
// directory, so the timing measures full compute-and-journal cost —
// never cache serving — and the legs are interleaved pair-wise with
// the median per-pair overhead reported, the same noise discipline as
// bench-obs (see benchObsReps).
func benchDurable(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	base := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	}

	var baseRows, journalRows [][]report.Row
	var st *telemetry.SchedStats
	baseWalls := make([]float64, benchObsReps)
	journalWalls := make([]float64, benchObsReps)
	var lastDir string
	defer func() {
		if lastDir != "" {
			os.RemoveAll(lastDir)
		}
	}()
	timeBase := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, base)
		if err != nil {
			return err
		}
		baseWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			baseRows = rows
		}
		return nil
	}
	timeJournal := func(i int) error {
		dir, err := os.MkdirTemp("", "isacmp-bench-durable-*")
		if err != nil {
			return err
		}
		drun, err := durable.Open(dir, nil)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		armed := base
		armed.Durable = drun
		runtime.GC()
		start := time.Now()
		rows, stats, err := report.RunSuite(progs, armed)
		drun.Close()
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		journalWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			journalRows, st = rows, stats
		}
		// Keep the last rep's directory for the warm-cache check.
		if lastDir != "" {
			os.RemoveAll(lastDir)
		}
		lastDir = dir
		return nil
	}
	for i := 0; i < benchObsReps; i++ {
		first, second := timeBase, timeJournal
		if i%2 == 1 {
			first, second = timeJournal, timeBase
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	baseWall := minFloat(baseWalls)
	journalWall := minFloat(journalWalls)
	pairOverheads := make([]float64, benchObsReps)
	for i := range pairOverheads {
		pairOverheads[i] = (journalWalls[i] - baseWalls[i]) / baseWalls[i] * 100
	}

	// Warm-cache contract: reopening the last directory (fresh journal,
	// persisted content cache) must serve every cell and simulate none.
	warm, err := durable.Open(lastDir, nil)
	if err != nil {
		return err
	}
	warmEx := base
	warmEx.Durable = warm
	warmRows, _, err := report.RunSuite(progs, warmEx)
	warm.Close()
	if err != nil {
		return err
	}
	warmStats := warm.Stats()

	baseJSON, err := canonicalRowsJSON(progs, scale, baseRows)
	if err != nil {
		return err
	}
	journalJSON, err := canonicalRowsJSON(progs, scale, journalRows)
	if err != nil {
		return err
	}
	warmJSON, err := canonicalRowsJSON(progs, scale, warmRows)
	if err != nil {
		return err
	}

	doc := durableDoc{
		Schema:            benchDurableSchema,
		Scale:             scale.String(),
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           sched.DefaultWorkers(parallel),
		Cells:             st.Cells,
		BaselineSeconds:   baseWall,
		JournalSeconds:    journalWall,
		BudgetPercent:     2,
		Identical:         bytes.Equal(baseJSON, journalJSON) && bytes.Equal(baseJSON, warmJSON),
		WarmZeroRecompute: warmStats.Computed == 0,
		WarmCachedCells:   warmStats.Cached,
	}
	doc.OverheadPercent = medianFloat(pairOverheads)
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-durable: journal-on results differ from bare run (byte-identity violation)")
	}
	if !doc.WarmZeroRecompute {
		return fmt.Errorf("bench-durable: warm-cache run recomputed %d cells, want 0", warmStats.Computed)
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-durable: %d cells, %d workers: bare %.3fs, journal %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v, warm served %d/%d -> %s\n",
			doc.Cells, doc.Workers, baseWall, journalWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, doc.WarmCachedCells, doc.Cells, out)
	}
	return nil
}
