package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"isacmp/internal/ir"
	"isacmp/internal/report"
	"isacmp/internal/sched"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// benchSchema identifies the bench-matrix document layout.
const benchSchema = "isacmp/bench-matrix/v1"

// benchDoc is the machine-readable record `isacmp bench-matrix`
// writes (BENCH_PR2.json): the full analysis matrix timed once
// sequentially and once over the worker pool, with the byte-identity
// of the two result sets checked and recorded.
type benchDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Workers is the resolved parallel worker count; Cells the number
	// of (workload, target) matrix cells.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// Speedup is sequential over parallel wall time. Near-linear
	// scaling needs Workers > 1 actual cores; on a single-CPU host it
	// hovers around 1.0.
	Speedup float64 `json:"speedup"`

	// Identical records whether the canonicalized manifests of the two
	// runs were byte-identical — the -parallel determinism contract.
	Identical bool `json:"identical"`

	Sched *telemetry.SchedStats `json:"sched,omitempty"`
}

// benchMatrix times the full paper matrix (every analysis, every
// workload, every target) sequentially and in parallel, verifies the
// two produce byte-identical canonicalized manifests, and writes the
// benchDoc JSON to out.
func benchMatrix(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	ex := report.Experiment{PathLength: true, CritPath: true, Scaled: true, Windowed: true}

	seqEx := ex
	seqEx.Parallel = 1
	start := time.Now()
	seqRows, _, err := report.RunSuite(progs, seqEx)
	if err != nil {
		return err
	}
	seqWall := time.Since(start).Seconds()

	parEx := ex
	parEx.Parallel = parallel
	start = time.Now()
	parRows, st, err := report.RunSuite(progs, parEx)
	if err != nil {
		return err
	}
	parWall := time.Since(start).Seconds()

	seqJSON, err := canonicalRowsJSON(progs, scale, seqRows)
	if err != nil {
		return err
	}
	parJSON, err := canonicalRowsJSON(progs, scale, parRows)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Schema:            benchSchema,
		Scale:             scale.String(),
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           sched.DefaultWorkers(parallel),
		Cells:             st.Cells,
		SequentialSeconds: seqWall,
		ParallelSeconds:   parWall,
		Identical:         bytes.Equal(seqJSON, parJSON),
		Sched:             st,
	}
	if parWall > 0 {
		doc.Speedup = seqWall / parWall
	}
	if !doc.Identical {
		return fmt.Errorf("bench-matrix: parallel results differ from sequential (determinism violation)")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-matrix: %d cells, %d workers (%d CPUs): sequential %.3fs, parallel %.3fs, speedup %.2fx, identical=%v -> %s\n",
			doc.Cells, doc.Workers, doc.NumCPU, seqWall, parWall, doc.Speedup, doc.Identical, out)
	}
	return nil
}

// canonicalRowsJSON renders the matrix rows as a canonicalized
// manifest — the deterministic byte form the -parallel contract is
// stated in.
func canonicalRowsJSON(progs []*ir.Program, scale workloads.Scale, rows [][]report.Row) ([]byte, error) {
	m := telemetry.NewManifest("bench-matrix", scale.String())
	for i, p := range progs {
		report.AppendRows(m, p.Name, rows[i])
	}
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
