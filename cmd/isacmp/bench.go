package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"isacmp/internal/ir"
	"isacmp/internal/report"
	"isacmp/internal/sched"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// benchSchema identifies the bench-matrix document layout.
const benchSchema = "isacmp/bench-matrix/v1"

// benchDoc is the machine-readable record `isacmp bench-matrix`
// writes (BENCH_PR2.json): the full analysis matrix timed once
// sequentially and once over the worker pool, with the byte-identity
// of the two result sets checked and recorded.
type benchDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Workers is the resolved parallel worker count; Cells the number
	// of (workload, target) matrix cells.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// Speedup is sequential over parallel wall time. Near-linear
	// scaling needs Workers > 1 actual cores; on a single-CPU host it
	// hovers around 1.0.
	Speedup float64 `json:"speedup"`

	// Identical records whether the canonicalized manifests of the two
	// runs were byte-identical — the -parallel determinism contract.
	Identical bool `json:"identical"`

	Sched *telemetry.SchedStats `json:"sched,omitempty"`
}

// benchMatrix times the full paper matrix (every analysis, every
// workload, every target) sequentially and in parallel, verifies the
// two produce byte-identical canonicalized manifests, and writes the
// benchDoc JSON to out.
func benchMatrix(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	ex := report.Experiment{PathLength: true, CritPath: true, Scaled: true, Windowed: true}

	seqEx := ex
	seqEx.Parallel = 1
	start := time.Now()
	seqRows, _, err := report.RunSuite(progs, seqEx)
	if err != nil {
		return err
	}
	seqWall := time.Since(start).Seconds()

	parEx := ex
	parEx.Parallel = parallel
	start = time.Now()
	parRows, st, err := report.RunSuite(progs, parEx)
	if err != nil {
		return err
	}
	parWall := time.Since(start).Seconds()

	seqJSON, err := canonicalRowsJSON(progs, scale, seqRows)
	if err != nil {
		return err
	}
	parJSON, err := canonicalRowsJSON(progs, scale, parRows)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Schema:            benchSchema,
		Scale:             scale.String(),
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           sched.DefaultWorkers(parallel),
		Cells:             st.Cells,
		SequentialSeconds: seqWall,
		ParallelSeconds:   parWall,
		Identical:         bytes.Equal(seqJSON, parJSON),
		Sched:             st,
	}
	if parWall > 0 {
		doc.Speedup = seqWall / parWall
	}
	if !doc.Identical {
		return fmt.Errorf("bench-matrix: parallel results differ from sequential (determinism violation)")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-matrix: %d cells, %d workers (%d CPUs): sequential %.3fs, parallel %.3fs, speedup %.2fx, identical=%v -> %s\n",
			doc.Cells, doc.Workers, doc.NumCPU, seqWall, parWall, doc.Speedup, doc.Identical, out)
	}
	return nil
}

// benchResilienceSchema identifies the bench-resilience document
// layout.
const benchResilienceSchema = "isacmp/bench-resilience/v1"

// resilienceDoc is the record `isacmp bench-resilience` writes
// (BENCH_PR3.json): the full matrix timed once with the resilience
// machinery disarmed and once armed (cell deadline, instruction
// budget, retry policy all configured, no faults injected), with the
// byte-identity of the two result sets checked and the overhead
// recorded against the <= 2% budget.
type resilienceDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Cells      int    `json:"cells"`

	BaselineSeconds float64 `json:"baseline_seconds"`
	ArmedSeconds    float64 `json:"armed_seconds"`
	// OverheadPercent is (armed - baseline) / baseline * 100; the
	// resilience layer's budget is BudgetPercent.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that arming the watchdogs changed no output
	// byte — the fault-free byte-identity contract.
	Identical bool `json:"identical"`
}

// benchResilience times the matrix with resilience disarmed and armed
// and writes the resilienceDoc JSON to out. Arming configures every
// watchdog the fault-tolerance layer has — wall-clock deadline,
// instruction budget, retries — generously enough that none fires, so
// the measurement isolates the machinery's own cost.
func benchResilience(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	base := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	}
	armed := base
	armed.CellTimeout = time.Hour
	armed.MaxInstructions = 1 << 62
	armed.Retries = 2
	armed.RetryBackoff = 100 * time.Millisecond

	start := time.Now()
	baseRows, _, err := report.RunSuite(progs, base)
	if err != nil {
		return err
	}
	baseWall := time.Since(start).Seconds()

	start = time.Now()
	armedRows, st, err := report.RunSuite(progs, armed)
	if err != nil {
		return err
	}
	armedWall := time.Since(start).Seconds()

	baseJSON, err := canonicalRowsJSON(progs, scale, baseRows)
	if err != nil {
		return err
	}
	armedJSON, err := canonicalRowsJSON(progs, scale, armedRows)
	if err != nil {
		return err
	}

	doc := resilienceDoc{
		Schema:          benchResilienceSchema,
		Scale:           scale.String(),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         sched.DefaultWorkers(parallel),
		Cells:           st.Cells,
		BaselineSeconds: baseWall,
		ArmedSeconds:    armedWall,
		BudgetPercent:   2,
		Identical:       bytes.Equal(baseJSON, armedJSON),
	}
	if baseWall > 0 {
		doc.OverheadPercent = (armedWall - baseWall) / baseWall * 100
	}
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-resilience: armed results differ from baseline (fault-free byte-identity violation)")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-resilience: %d cells, %d workers: baseline %.3fs, armed %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v -> %s\n",
			doc.Cells, doc.Workers, baseWall, armedWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, out)
	}
	return nil
}

// canonicalRowsJSON renders the matrix rows as a canonicalized
// manifest — the deterministic byte form the -parallel contract is
// stated in.
func canonicalRowsJSON(progs []*ir.Program, scale workloads.Scale, rows [][]report.Row) ([]byte, error) {
	m := telemetry.NewManifest("bench-matrix", scale.String())
	for i, p := range progs {
		report.AppendRows(m, p.Name, rows[i])
	}
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
