package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"isacmp/internal/durable"
	"isacmp/internal/ir"
	"isacmp/internal/obs"
	"isacmp/internal/report"
	"isacmp/internal/sched"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// writeDocAtomic writes a bench-trajectory document as indented JSON
// through the durability layer's atomic-write helper (tmp + fsync +
// rename): an interrupted bench run can never commit a torn
// BENCH_*.json.
func writeDocAtomic(out string, doc any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return durable.WriteFileAtomic(out, buf.Bytes(), 0o644)
}

// benchSchema identifies the bench-matrix document layout. v2 adds
// the embedded benchProvenance block (host fingerprint + noise
// probe); v1 documents stay readable by bench-watch, which keys its
// rules on the schema family.
const benchSchema = "isacmp/bench-matrix/v2"

// benchDoc is the machine-readable record `isacmp bench-matrix`
// writes (BENCH_PR2.json): the full analysis matrix timed once
// sequentially and once over the worker pool, with the byte-identity
// of the two result sets checked and recorded.
type benchDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Workers is the resolved parallel worker count; Cells the number
	// of (workload, target) matrix cells.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	// Speedup is sequential over parallel wall time. Near-linear
	// scaling needs Workers > 1 actual cores; on a single-CPU host it
	// hovers around 1.0.
	Speedup float64 `json:"speedup"`

	// Identical records whether the canonicalized manifests of the two
	// runs were byte-identical — the -parallel determinism contract.
	Identical bool `json:"identical"`

	Sched *telemetry.SchedStats `json:"sched,omitempty"`

	benchProvenance
}

// benchMatrix times the full paper matrix (every analysis, every
// workload, every target) sequentially and in parallel, verifies the
// two produce byte-identical canonicalized manifests, and writes the
// benchDoc JSON to out.
func benchMatrix(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	ex := report.Experiment{PathLength: true, CritPath: true, Scaled: true, Windowed: true}

	seqEx := ex
	seqEx.Parallel = 1
	start := time.Now()
	seqRows, _, err := report.RunSuite(progs, seqEx)
	if err != nil {
		return err
	}
	seqWall := time.Since(start).Seconds()

	parEx := ex
	parEx.Parallel = parallel
	start = time.Now()
	parRows, st, err := report.RunSuite(progs, parEx)
	if err != nil {
		return err
	}
	parWall := time.Since(start).Seconds()

	seqJSON, err := canonicalRowsJSON(progs, scale, seqRows)
	if err != nil {
		return err
	}
	parJSON, err := canonicalRowsJSON(progs, scale, parRows)
	if err != nil {
		return err
	}

	doc := benchDoc{
		Schema:            benchSchema,
		Scale:             scale.String(),
		GoVersion:         runtime.Version(),
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           sched.DefaultWorkers(parallel),
		Cells:             st.Cells,
		SequentialSeconds: seqWall,
		ParallelSeconds:   parWall,
		Identical:         bytes.Equal(seqJSON, parJSON),
		Sched:             st,
	}
	if parWall > 0 {
		doc.Speedup = seqWall / parWall
	}
	if !doc.Identical {
		return fmt.Errorf("bench-matrix: parallel results differ from sequential (determinism violation)")
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-matrix: %d cells, %d workers (%d CPUs): sequential %.3fs, parallel %.3fs, speedup %.2fx, identical=%v -> %s\n",
			doc.Cells, doc.Workers, doc.NumCPU, seqWall, parWall, doc.Speedup, doc.Identical, out)
	}
	return nil
}

// benchResilienceSchema identifies the bench-resilience document
// layout.
const benchResilienceSchema = "isacmp/bench-resilience/v2"

// resilienceDoc is the record `isacmp bench-resilience` writes
// (BENCH_PR3.json): the full matrix timed once with the resilience
// machinery disarmed and once armed (cell deadline, instruction
// budget, retry policy all configured, no faults injected), with the
// byte-identity of the two result sets checked and the overhead
// recorded against the <= 2% budget.
type resilienceDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Cells      int    `json:"cells"`

	BaselineSeconds float64 `json:"baseline_seconds"`
	ArmedSeconds    float64 `json:"armed_seconds"`
	// OverheadPercent is (armed - baseline) / baseline * 100; the
	// resilience layer's budget is BudgetPercent.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that arming the watchdogs changed no output
	// byte — the fault-free byte-identity contract.
	Identical bool `json:"identical"`

	benchProvenance
}

// benchResilience times the matrix with resilience disarmed and armed
// and writes the resilienceDoc JSON to out. Arming configures every
// watchdog the fault-tolerance layer has — wall-clock deadline,
// instruction budget, retries — generously enough that none fires, so
// the measurement isolates the machinery's own cost.
func benchResilience(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	base := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	}
	armed := base
	armed.CellTimeout = time.Hour
	armed.MaxInstructions = 1 << 62
	armed.Retries = 2
	armed.RetryBackoff = 100 * time.Millisecond

	start := time.Now()
	baseRows, _, err := report.RunSuite(progs, base)
	if err != nil {
		return err
	}
	baseWall := time.Since(start).Seconds()

	start = time.Now()
	armedRows, st, err := report.RunSuite(progs, armed)
	if err != nil {
		return err
	}
	armedWall := time.Since(start).Seconds()

	baseJSON, err := canonicalRowsJSON(progs, scale, baseRows)
	if err != nil {
		return err
	}
	armedJSON, err := canonicalRowsJSON(progs, scale, armedRows)
	if err != nil {
		return err
	}

	doc := resilienceDoc{
		Schema:          benchResilienceSchema,
		Scale:           scale.String(),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         sched.DefaultWorkers(parallel),
		Cells:           st.Cells,
		BaselineSeconds: baseWall,
		ArmedSeconds:    armedWall,
		BudgetPercent:   2,
		Identical:       bytes.Equal(baseJSON, armedJSON),
	}
	if baseWall > 0 {
		doc.OverheadPercent = (armedWall - baseWall) / baseWall * 100
	}
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-resilience: armed results differ from baseline (fault-free byte-identity violation)")
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-resilience: %d cells, %d workers: baseline %.3fs, armed %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v -> %s\n",
			doc.Cells, doc.Workers, baseWall, armedWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, out)
	}
	return nil
}

// benchHotpathSchema identifies the bench-hotpath document layout.
const benchHotpathSchema = "isacmp/bench-hotpath/v2"

// benchHotpathReps is how many step/hot pairs bench-hotpath times;
// interleaved with alternating order for the same reasons as
// benchObsReps. Fewer reps than bench-obs because each pair runs the
// matrix twice through the slow step loop.
const benchHotpathReps = 3

// hotpathDoc is the record `isacmp bench-hotpath` writes
// (BENCH_PR4.json): the full matrix timed once through the per-Step
// reference loop and once through the batched StepN hot path, with
// the byte-identity of the two result sets checked and the speedup
// against the committed PR 2 sequential baseline recorded.
type hotpathDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is always 1: both legs run single-threaded so the
	// comparison isolates the loop structure. Recorded for the uniform
	// bench-watch provenance rule.
	Workers int `json:"workers"`
	Cells   int `json:"cells"`

	// StepLoopSeconds times the matrix with Experiment.StepLoop set:
	// the original one-event-at-a-time engine loop over the same
	// machines. HotpathSeconds times the batched StepN path. Both are
	// the best wall time across the interleaved pairs.
	StepLoopSeconds float64 `json:"steploop_seconds"`
	HotpathSeconds  float64 `json:"hotpath_seconds"`
	// BatchSpeedup is the median over the interleaved step/hot pairs
	// of StepLoopSeconds over HotpathSeconds — the gain attributable
	// to batching alone, measured in one process.
	BatchSpeedup float64 `json:"batch_speedup"`
	// BatchSpeedupNote documents why BatchSpeedup hovers near 1.0 at
	// small scale (the predecode cache already amortizes dispatch, so
	// batching's remaining win is within single-shot scheduler noise);
	// the earlier single-shot measurement even dipped below 1.0. The
	// bench-watch floor rule (0.90) is what catches a genuine batching
	// regression.
	BatchSpeedupNote string `json:"batch_speedup_note"`

	// PR2BaselineSeconds is sequential_seconds from the committed
	// bench-matrix doc (BENCH_PR2.json), and PR2Speedup the
	// single-threaded gain of the hot path over that baseline — the
	// headline number (target >= 2.5x). Zero when no baseline doc was
	// supplied.
	PR2BaselineSeconds float64 `json:"pr2_baseline_seconds,omitempty"`
	PR2Speedup         float64 `json:"pr2_speedup,omitempty"`

	// Identical records whether the step-loop and hot-path runs
	// produced byte-identical canonicalized manifests — batching must
	// not change a single output byte.
	Identical bool `json:"identical"`

	benchProvenance
}

// benchHotpath times the full matrix through the per-Step reference
// loop and through the batched hot path (both single-threaded),
// verifies byte-identity, computes the speedup over the committed
// PR 2 sequential baseline in pr2Path, and writes the hotpathDoc JSON
// to out. When guardPath names a committed bench-hotpath doc, the
// fresh doc is judged against it through the uniform bench-watch
// rules (the ad-hoc hotpath guard this replaces).
func benchHotpath(progs []*ir.Program, scale workloads.Scale, out, pr2Path, guardPath string, text bool) error {
	ex := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: 1,
	}

	stepEx := ex
	stepEx.StepLoop = true

	// Interleaved pairs with alternating order and a median speedup,
	// like bench-obs: a single-shot step/hot comparison at small scale
	// is dominated by scheduler noise (it once measured batching as a
	// 0.978x slowdown — see BatchSpeedupNote).
	var stepRows, hotRows [][]report.Row
	var st *telemetry.SchedStats
	stepWalls := make([]float64, benchHotpathReps)
	hotWalls := make([]float64, benchHotpathReps)
	timeStep := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, stepEx)
		if err != nil {
			return err
		}
		stepWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			stepRows = rows
		}
		return nil
	}
	timeHot := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, stats, err := report.RunSuite(progs, ex)
		if err != nil {
			return err
		}
		hotWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			hotRows, st = rows, stats
		}
		return nil
	}
	for i := 0; i < benchHotpathReps; i++ {
		first, second := timeStep, timeHot
		if i%2 == 1 {
			first, second = timeHot, timeStep
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	stepWall := minFloat(stepWalls)
	hotWall := minFloat(hotWalls)
	pairSpeedups := make([]float64, benchHotpathReps)
	for i := range pairSpeedups {
		pairSpeedups[i] = stepWalls[i] / hotWalls[i]
	}

	stepJSON, err := canonicalRowsJSON(progs, scale, stepRows)
	if err != nil {
		return err
	}
	hotJSON, err := canonicalRowsJSON(progs, scale, hotRows)
	if err != nil {
		return err
	}

	doc := hotpathDoc{
		Schema:          benchHotpathSchema,
		Scale:           scale.String(),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         1,
		Cells:           st.Cells,
		StepLoopSeconds: stepWall,
		HotpathSeconds:  hotWall,
		BatchSpeedup:    medianFloat(pairSpeedups),
		BatchSpeedupNote: "median of " + fmt.Sprint(benchHotpathReps) + " interleaved step/hot pairs; " +
			"near 1.0 at small scale because the predecode cache already amortizes dispatch cost, " +
			"leaving batching's win within scheduler noise — a genuine regression trips the 0.90 bench-watch floor",
		Identical: bytes.Equal(stepJSON, hotJSON),
	}
	if !doc.Identical {
		return fmt.Errorf("bench-hotpath: batched results differ from step-loop (byte-identity violation)")
	}

	if pr2Path != "" {
		var base benchDoc
		if err := readJSONDoc(pr2Path, &base); err != nil {
			return fmt.Errorf("bench-hotpath: PR 2 baseline: %w", err)
		}
		doc.PR2BaselineSeconds = base.SequentialSeconds
		if hotWall > 0 && base.SequentialSeconds > 0 {
			doc.PR2Speedup = base.SequentialSeconds / hotWall
		}
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-hotpath: %d cells: step-loop %.3fs, hot path %.3fs (%.2fx), vs PR2 baseline %.3fs (%.2fx), identical=%v -> %s\n",
			doc.Cells, stepWall, hotWall, doc.BatchSpeedup, doc.PR2BaselineSeconds, doc.PR2Speedup, doc.Identical, out)
	}
	if guardPath != "" {
		return benchWatch(guardPath, out, text)
	}
	return nil
}

// benchObsSchema identifies the bench-obs document layout.
const benchObsSchema = "isacmp/bench-obs/v2"

// obsDoc is the record `isacmp bench-obs` writes (BENCH_PR5.json):
// the full matrix timed once bare and once with the whole control
// plane live — metrics registry, status board with per-cell meters,
// structured logging swallowed by a no-op-level handler check, and
// the HTTP server actually serving on loopback — with byte-identity
// checked and the serve-mode overhead recorded against the <= 2%
// budget.
type obsDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`
	Cells      int    `json:"cells"`

	// BaselineSeconds is the best bare wall time across the timed
	// pairs; ServedSeconds the best wall time with the observability
	// server live on a loopback port, the board metered on the hot
	// path and the registry counting — the full -serve configuration.
	BaselineSeconds float64 `json:"baseline_seconds"`
	ServedSeconds   float64 `json:"served_seconds"`
	// OverheadPercent is the median over the interleaved bare/served
	// pairs of (served - bare) / bare * 100; the control plane's
	// budget is BudgetPercent.
	OverheadPercent float64 `json:"overhead_percent"`
	BudgetPercent   float64 `json:"budget_percent"`
	WithinBudget    bool    `json:"within_budget"`

	// Identical records that serving changed no output byte — the
	// pass-through observer contract.
	Identical bool `json:"identical"`

	benchProvenance
}

// benchObsReps is how many bare/served pairs the bench-obs comparison
// times. A single-shot comparison at small scale is noisy enough
// (scheduler jitter of a few percent on a ~5s run) to trip the 2%
// budget gate spuriously, and running the legs in separate blocks
// lets slow machine-state drift (frequency scaling, page cache) bias
// the difference — so the legs are interleaved pair-wise (drift hits
// both legs of a pair equally) and the reported overhead is the
// median of the per-pair relative differences, which discards
// whole-pair outliers.
const benchObsReps = 7

// benchObs times the matrix bare and under a live observability
// server and writes the obsDoc JSON to out.
func benchObs(progs []*ir.Program, scale workloads.Scale, out string, parallel int, text bool) error {
	base := report.Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	}

	reg := telemetry.NewRegistry()
	runID := obs.NewRunID()
	board := obs.NewBoard(runID, reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: "127.0.0.1:0", Registry: reg, Board: board})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.SetReady(true)

	served := base
	served.Metrics = reg
	served.RunID = runID
	served.Status = board

	var baseRows, servedRows [][]report.Row
	var st *telemetry.SchedStats
	baseWalls := make([]float64, benchObsReps)
	servedWalls := make([]float64, benchObsReps)
	timeBase := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, _, err := report.RunSuite(progs, base)
		if err != nil {
			return err
		}
		baseWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			baseRows = rows
		}
		return nil
	}
	timeServed := func(i int) error {
		runtime.GC()
		start := time.Now()
		rows, stats, err := report.RunSuite(progs, served)
		if err != nil {
			return err
		}
		servedWalls[i] = time.Since(start).Seconds()
		if i == 0 {
			servedRows, st = rows, stats
		}
		return nil
	}
	for i := 0; i < benchObsReps; i++ {
		// Alternate which leg runs first: on a busy host the first run
		// of a pair systematically absorbs more interference, and a
		// fixed order would bias every pair the same way.
		first, second := timeBase, timeServed
		if i%2 == 1 {
			first, second = timeServed, timeBase
		}
		if err := first(i); err != nil {
			return err
		}
		if err := second(i); err != nil {
			return err
		}
	}
	srv.Close()
	baseWall := minFloat(baseWalls)
	servedWall := minFloat(servedWalls)
	pairOverheads := make([]float64, benchObsReps)
	for i := range pairOverheads {
		pairOverheads[i] = (servedWalls[i] - baseWalls[i]) / baseWalls[i] * 100
	}

	baseJSON, err := canonicalRowsJSON(progs, scale, baseRows)
	if err != nil {
		return err
	}
	servedJSON, err := canonicalRowsJSON(progs, scale, servedRows)
	if err != nil {
		return err
	}

	doc := obsDoc{
		Schema:          benchObsSchema,
		Scale:           scale.String(),
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         sched.DefaultWorkers(parallel),
		Cells:           st.Cells,
		BaselineSeconds: baseWall,
		ServedSeconds:   servedWall,
		BudgetPercent:   2,
		Identical:       bytes.Equal(baseJSON, servedJSON),
	}
	doc.OverheadPercent = medianFloat(pairOverheads)
	doc.WithinBudget = doc.OverheadPercent <= doc.BudgetPercent
	if !doc.Identical {
		return fmt.Errorf("bench-obs: served results differ from baseline (pass-through observer violation)")
	}

	doc.benchProvenance = collectProvenance()
	if err := writeBenchDoc(out, doc); err != nil {
		return err
	}
	if text {
		fmt.Printf("bench-obs: %d cells, %d workers: baseline %.3fs, served %.3fs, overhead %.2f%% (budget %.0f%%), identical=%v -> %s\n",
			doc.Cells, doc.Workers, baseWall, servedWall, doc.OverheadPercent, doc.BudgetPercent, doc.Identical, out)
	}
	return nil
}

// benchWatch judges a fresh benchmark document against its committed
// baseline through the uniform per-schema regression rules and prints
// one line per watched metric. A regression is a fatal error so
// `make check` can gate on it.
func benchWatch(baselinePath, freshPath string, text bool) error {
	// Exit taxonomy (report.Exit*): unreadable or unparseable documents
	// and incomparable schemas are usage errors (2); a refused
	// host-drift comparison keeps its sentinel so fatal maps it to
	// partial (3); a gate regression is the plain fatal path (1).
	baseline, _, err := obs.LoadDoc(baselinePath)
	if err != nil {
		return usageError{err}
	}
	fresh, _, err := obs.LoadDoc(freshPath)
	if err != nil {
		return usageError{err}
	}
	findings, err := obs.Watch(baseline, fresh)
	if err != nil {
		if errors.Is(err, obs.ErrHostDrift) {
			return err
		}
		return usageError{err}
	}
	for _, f := range findings {
		switch {
		case f.Warning:
			fmt.Printf("bench-watch: warning: %s: %s\n", f.Schema, f.Message)
		case text || f.Regression:
			fmt.Printf("bench-watch: %s: %s\n", f.Schema, f.Message)
		}
	}
	if obs.HasRegression(findings) {
		return fmt.Errorf("bench-watch: %s regressed against committed %s", freshPath, baselinePath)
	}
	if text {
		fmt.Printf("bench-watch: %s holds the committed trajectory of %s\n", freshPath, baselinePath)
	}
	return nil
}

func minFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func medianFloat(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// readJSONDoc loads a committed benchmark document.
func readJSONDoc(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// canonicalRowsJSON renders the matrix rows as a canonicalized
// manifest — the deterministic byte form the -parallel contract is
// stated in.
func canonicalRowsJSON(progs []*ir.Program, scale workloads.Scale, rows [][]report.Row) ([]byte, error) {
	m := telemetry.NewManifest("bench-matrix", scale.String())
	for i, p := range progs {
		report.AppendRows(m, p.Name, rows[i])
	}
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
