package isacmp

import (
	"bytes"
	"testing"

	"isacmp/internal/fusion"
	"isacmp/internal/isa"
)

// eventCollector records every retired event by value — the pointed-to
// Event a sink receives is only valid for the duration of the call.
type eventCollector struct{ evs []isa.Event }

func (c *eventCollector) Event(ev *isa.Event) { c.evs = append(c.evs, *ev) }

// memBytes builds the multiset of (address, count) touched bytes for
// one side of the memory traffic — the architectural footprint a
// stream rewrite must preserve exactly.
func memBytes(evs []isa.Event, stores bool) map[uint64]int {
	m := make(map[uint64]int)
	add := func(addr uint64, size uint8) {
		for i := uint64(0); i < uint64(size); i++ {
			m[addr+i]++
		}
	}
	for _, ev := range evs {
		if stores {
			add(ev.StoreAddr, ev.StoreSize)
		} else {
			add(ev.LoadAddr, ev.LoadSize)
			add(ev.Load2Addr, ev.Load2Size)
		}
	}
	return m
}

func equalMemBytes(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestFusionDifferentialEquivalence runs every workload x target cell
// at tiny scale, rewrites the recorded retirement stream through the
// fusion pass with every rule live, and checks the rewrite changed
// nothing architectural: expanding each fused pair back to (PC, PC+4)
// reproduces the original retirement-order PC sequence exactly, and
// the load/store byte footprints are identical multisets. It also
// pins the headline claim: on STREAM and LBM the RV64 load-pair and
// slli+add rules both fire and the effective path length drops.
func TestFusionDifferentialEquivalence(t *testing.T) {
	cfg := fusion.Config{RV64: true, A64: true, Rules: fusion.AllRules}
	rv64Hits := map[string]*fusion.Stats{}
	for _, prog := range Suite(Tiny) {
		for _, tgt := range Targets() {
			bin, err := Compile(prog, tgt)
			if err != nil {
				t.Fatal(err)
			}
			base := &eventCollector{}
			stats, err := bin.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			fused := &eventCollector{}
			pass := fusion.NewPass(cfg, tgt.Arch, fused)
			// Deliver in fixed-size batches so the cross-batch carry is
			// exercised on real streams, not just hand-built ones.
			const batch = 1024
			for i := 0; i < len(base.evs); i += batch {
				end := i + batch
				if end > len(base.evs) {
					end = len(base.evs)
				}
				pass.Events(base.evs[i:end])
			}
			pass.Flush()
			st := pass.Stats()
			cell := prog.Name + "/" + tgt.String()

			if st.EventsIn != uint64(len(base.evs)) || st.EventsIn != stats.Instructions {
				t.Fatalf("%s: events in %d, baseline events %d, retired %d",
					cell, st.EventsIn, len(base.evs), stats.Instructions)
			}
			if st.EventsOut != uint64(len(fused.evs)) {
				t.Fatalf("%s: stats claim %d events out, sink saw %d", cell, st.EventsOut, len(fused.evs))
			}
			if got, want := uint64(len(base.evs)-len(fused.evs)), st.Pairs(); got != want {
				t.Fatalf("%s: stream shrank by %d but %d pairs fused", cell, got, want)
			}

			// Retirement-order PCs modulo fused pairs.
			var pcs []uint64
			for _, ev := range fused.evs {
				pcs = append(pcs, ev.PC)
				if ev.Fused == 2 {
					pcs = append(pcs, ev.PC+4)
				}
			}
			if len(pcs) != len(base.evs) {
				t.Fatalf("%s: expanded stream has %d PCs, baseline %d", cell, len(pcs), len(base.evs))
			}
			for i, pc := range pcs {
				if pc != base.evs[i].PC {
					t.Fatalf("%s: PC sequence diverges at %d: fused %#x, baseline %#x", cell, i, pc, base.evs[i].PC)
				}
			}

			// Architectural memory side effects.
			if !equalMemBytes(memBytes(base.evs, true), memBytes(fused.evs, true)) {
				t.Fatalf("%s: store byte footprint changed", cell)
			}
			if !equalMemBytes(memBytes(base.evs, false), memBytes(fused.evs, false)) {
				t.Fatalf("%s: load byte footprint changed", cell)
			}

			if tgt.Arch == RV64 {
				cur := rv64Hits[prog.Name]
				if cur == nil {
					cur = &fusion.Stats{}
					rv64Hits[prog.Name] = cur
				}
				cur.EventsIn += st.EventsIn
				cur.EventsOut += st.EventsOut
				for r := range st.Hits {
					cur.Hits[r] += st.Hits[r]
				}
			}
		}
	}

	for _, name := range []string{"stream", "lbm"} {
		st := rv64Hits[name]
		if st == nil {
			t.Fatalf("no RV64 cells ran for %s", name)
		}
		if st.Hits[fusion.RuleLoadPair] == 0 {
			t.Errorf("%s/RV64: load-pair rule never fired", name)
		}
		if st.Hits[fusion.RuleSlliAdd] == 0 {
			t.Errorf("%s/RV64: slli+add rule never fired", name)
		}
		if st.EventsOut >= st.EventsIn {
			t.Errorf("%s/RV64: effective path length did not drop (%d -> %d)", name, st.EventsIn, st.EventsOut)
		}
	}
}

// TestFusionInstrumentedWiring ties the RunConfig.Fusion plumbing to
// the standalone stream rewrite: the manifest fusion block of an
// instrumented run must report exactly the event counts the pass
// produces on the recorded stream, the architectural path length must
// be unchanged by fusion, and the off-record must carry no fusion
// block at all.
func TestFusionInstrumentedWiring(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	cfg := FusionConfig{RV64: true, Rules: fusion.AllRules}

	base := &eventCollector{}
	if _, err := bin.Run(base); err != nil {
		t.Fatal(err)
	}
	fused := &eventCollector{}
	pass := fusion.NewPass(cfg, RV64, fused)
	pass.Events(base.evs)
	pass.Flush()
	want := pass.Stats()

	sel := Analyses{PathLength: true, CritPath: true}
	for _, parallel := range []int{1, 4} {
		_, offRec, err := bin.RunInstrumented(RunConfig{Analyses: sel, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if offRec.Fusion != nil {
			t.Fatalf("parallel=%d: fusion-off record carries a fusion block: %+v", parallel, offRec.Fusion)
		}
		_, onRec, err := bin.RunInstrumented(RunConfig{Analyses: sel, Fusion: cfg, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if onRec.Fusion == nil {
			t.Fatalf("parallel=%d: fusion-on record missing its fusion block", parallel)
		}
		if onRec.Fusion.EventsIn != want.EventsIn || onRec.Fusion.EventsOut != want.EventsOut {
			t.Fatalf("parallel=%d: wired pass saw %d -> %d events, standalone rewrite %d -> %d",
				parallel, onRec.Fusion.EventsIn, onRec.Fusion.EventsOut, want.EventsIn, want.EventsOut)
		}
		if onRec.Fusion.Spec != cfg.Spec() {
			t.Fatalf("parallel=%d: fusion spec %q, want %q", parallel, onRec.Fusion.Spec, cfg.Spec())
		}
		// Fusion rewrites the analysis stream, not the architecture: the
		// reported path length stays the architectural count.
		if offRec.Results.PathLen != onRec.Results.PathLen {
			t.Fatalf("parallel=%d: fusion changed the architectural path length: %d vs %d",
				parallel, offRec.Results.PathLen, onRec.Results.PathLen)
		}
		for _, r := range onRec.Fusion.Rules {
			var ruleHits uint64
			for rr := fusion.Rule(0); rr < fusion.NumRules; rr++ {
				if rr.String() == r.Rule {
					ruleHits = want.Hits[rr]
				}
			}
			if r.Hits != ruleHits {
				t.Fatalf("parallel=%d: rule %s reported %d hits, standalone rewrite %d", parallel, r.Rule, r.Hits, ruleHits)
			}
		}
	}
}

// TestFusionStepLoopByteIdentical: the batched StepN delivery and the
// per-Step reference loop must produce byte-identical reports and
// manifests with fusion live — the cross-batch carry makes the rewrite
// batching-invariant on the real matrix, not just in unit tests.
func TestFusionStepLoopByteIdentical(t *testing.T) {
	ex := MatrixExperiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Fusion: fusion.Config{RV64: true, A64: true, Rules: fusion.AllRules},
	}
	hotText, hotManifest := matrixArtifactsEx(t, ex)
	step := ex
	step.StepLoop = true
	stepText, stepManifest := matrixArtifactsEx(t, step)
	if !bytes.Equal(hotText, stepText) {
		t.Fatal("fusion on: step-loop report text differs from batched")
	}
	if !bytes.Equal(hotManifest, stepManifest) {
		t.Fatal("fusion on: step-loop canonicalized manifest differs from batched")
	}
}

// TestFusionParallelByteIdentical extends the -parallel determinism
// contract to fusion-on runs: the rewritten stream must feed the
// fan-out and the sharded windowed CP exactly as it feeds the
// sequential tee.
func TestFusionParallelByteIdentical(t *testing.T) {
	ex := MatrixExperiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Fusion:   fusion.Config{RV64: true, A64: true, Rules: fusion.AllRules},
		Parallel: 1,
	}
	seqText, seqManifest := matrixArtifactsEx(t, ex)
	for _, workers := range []int{2, 5} {
		par := ex
		par.Parallel = workers
		parText, parManifest := matrixArtifactsEx(t, par)
		if !bytes.Equal(seqText, parText) {
			t.Fatalf("fusion on, parallel=%d: report text differs from sequential", workers)
		}
		if !bytes.Equal(seqManifest, parManifest) {
			t.Fatalf("fusion on, parallel=%d: canonicalized manifest differs from sequential", workers)
		}
	}
}
