package isacmp

import (
	"fmt"
	"hash/fnv"
	"testing"

	"isacmp/internal/ir"
	"isacmp/internal/simeng"
)

// traceDigest hashes the architectural content of an event stream:
// program counter, instruction word, register reads/writes, memory
// accesses and branch outcomes. Two runs retiring the same
// architectural trace produce the same digest.
type traceDigest struct {
	h uint64
	n uint64
}

func newTraceDigest() *traceDigest { return &traceDigest{h: fnv.New64a().Sum64()} }

func (d *traceDigest) mix(v uint64) {
	// FNV-1a over the 8 bytes of v.
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		d.h ^= (v >> (8 * i)) & 0xff
		d.h *= prime
	}
}

func (d *traceDigest) Event(ev *Event) {
	d.n++
	d.mix(ev.PC)
	d.mix(uint64(ev.Word))
	for i := uint8(0); i < ev.NSrcs; i++ {
		d.mix(uint64(ev.Srcs[i]))
	}
	for i := uint8(0); i < ev.NDsts; i++ {
		d.mix(uint64(ev.Dsts[i]))
	}
	d.mix(ev.LoadAddr)
	d.mix(uint64(ev.LoadSize))
	d.mix(ev.StoreAddr)
	d.mix(uint64(ev.StoreSize))
	b := uint64(0)
	if ev.Branch {
		b = 1
		if ev.Taken {
			b = 3
		}
	}
	d.mix(b)
}

// finalArrays reads back every program array from the machine's memory
// after a run.
func finalArrays(t *testing.T, bin *Binary, prog *Program, extraSinks ...Sink) (map[string][]uint64, *traceDigest, Stats) {
	t.Helper()
	mach, m, err := bin.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	dig := newTraceDigest()
	sinks := append([]Sink{dig}, extraSinks...)
	var sink Sink = SinkFunc(func(ev *Event) {
		for _, s := range sinks {
			s.Event(ev)
		}
	})
	stats, err := (&simeng.EmulationCore{}).Run(mach, sink)
	if err != nil {
		t.Fatal(err)
	}
	arrays := make(map[string][]uint64, len(prog.Arrays))
	for _, arr := range prog.Arrays {
		base := bin.ArrayBase(arr.Name)
		vals := make([]uint64, arr.Len)
		for i := 0; i < arr.Len; i++ {
			bits, err := m.Read64(base + uint64(i)*8)
			if err != nil {
				t.Fatal(err)
			}
			vals[i] = bits
		}
		arrays[arr.Name] = vals
	}
	return arrays, dig, stats
}

// TestDifferentialCores is the cross-core differential harness: for
// every workload and target, the emulation run, the run observed by
// the in-order timing model and the run observed by the out-of-order
// model must retire the identical architectural trace (same digest,
// same instruction count) and leave identical final array memory —
// the timing models are trace-driven sinks and must never perturb
// architectural state.
func TestDifferentialCores(t *testing.T) {
	for _, name := range Workloads() {
		prog := Workload(name, Tiny)
		for _, tgt := range Targets() {
			t.Run(fmt.Sprintf("%s/%s", name, tgt), func(t *testing.T) {
				bin, err := Compile(prog, tgt)
				if err != nil {
					t.Fatal(err)
				}

				emuArr, emuDig, emuStats := finalArrays(t, bin, prog)

				inModel := NewInOrderModel()
				inArr, inDig, inStats := finalArrays(t, bin, prog, inModel)

				oooModel := NewOoOModel()
				oooArr, oooDig, oooStats := finalArrays(t, bin, prog, oooModel)

				if emuDig.h != inDig.h || emuDig.h != oooDig.h {
					t.Fatalf("trace digests differ: emu %#x, inorder %#x, ooo %#x",
						emuDig.h, inDig.h, oooDig.h)
				}
				if emuDig.n != inDig.n || emuDig.n != oooDig.n {
					t.Fatalf("trace lengths differ: emu %d, inorder %d, ooo %d",
						emuDig.n, inDig.n, oooDig.n)
				}
				if emuStats.Instructions != inStats.Instructions || emuStats.Instructions != oooStats.Instructions {
					t.Fatalf("instruction counts differ: emu %d, inorder %d, ooo %d",
						emuStats.Instructions, inStats.Instructions, oooStats.Instructions)
				}
				for arr := range emuArr {
					for i := range emuArr[arr] {
						if emuArr[arr][i] != inArr[arr][i] || emuArr[arr][i] != oooArr[arr][i] {
							t.Fatalf("%s[%d] differs across cores", arr, i)
						}
					}
				}
				// The timing models consumed the trace: they must account
				// every retired instruction.
				if inModel.Stats().Instructions != emuStats.Instructions {
					t.Fatalf("inorder model counted %d instructions, trace retired %d",
						inModel.Stats().Instructions, emuStats.Instructions)
				}
				if oooModel.Stats().Instructions != emuStats.Instructions {
					t.Fatalf("ooo model counted %d instructions, trace retired %d",
						oooModel.Stats().Instructions, emuStats.Instructions)
				}
			})
		}
	}
}

// TestDifferentialISAs: both instruction sets, both compiler flavours,
// must compute the same results — every final array bit-identical
// across all four targets (each already verified against the host
// reference interpreter, which pins the expected values).
func TestDifferentialISAs(t *testing.T) {
	for _, name := range Workloads() {
		prog := Workload(name, Tiny)
		t.Run(name, func(t *testing.T) {
			ref := ir.NewInterp(prog)
			if err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			var first map[string][]uint64
			var firstTgt Target
			for _, tgt := range Targets() {
				bin, err := Compile(prog, tgt)
				if err != nil {
					t.Fatal(err)
				}
				if err := bin.Verify(); err != nil {
					t.Fatal(err)
				}
				arrays, _, _ := finalArrays(t, bin, prog)
				if first == nil {
					first, firstTgt = arrays, tgt
					continue
				}
				for arr := range first {
					for i := range first[arr] {
						if first[arr][i] != arrays[arr][i] {
							t.Fatalf("%s[%d]: %s and %s disagree", arr, i, firstTgt, tgt)
						}
					}
				}
			}
		})
	}
}
