module isacmp

go 1.22
