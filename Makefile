GO ?= go

.PHONY: check fmt vet build test race bench clean

# check is the full pre-merge gate: formatting, static checks, build,
# the race-enabled test suite, and a short instrumented benchmark run
# that exercises the manifest path end to end (BENCH_PR1.json).
check: fmt vet build race bench

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes a run manifest for the benchmark trajectory: one
# instrumented run per workload at small scale, plus the telemetry
# overhead micro-benchmark printed for eyeballing.
bench:
	$(GO) run ./cmd/isacmp run -scale tiny -target all -metrics-json BENCH_PR1.json
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead -benchtime 1s .

clean:
	rm -f BENCH_PR1.json
