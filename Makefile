GO ?= go

.PHONY: check fmt vet build test race differential golden check-faults check-obs check-prof check-fusion check-durable check-benchdb fuzz-smoke bench bench-matrix bench-hotpath bench-obs bench-scaling bench-fusion bench-durable bench-benchdb bench-watch clean

# check is the full pre-merge gate: formatting, static checks, build,
# the race-enabled test suite (including the differential, golden,
# fault-injection, observability, profiler, fusion and durability
# suites, run explicitly so a -run filter can never silently drop
# them), a short instrumented benchmark run that exercises the
# manifest path end to end (BENCH_PR1.json), and the uniform
# bench-watch regression gate over the committed BENCH_*.json
# trajectory.
check: fmt vet build race differential golden check-faults check-obs check-prof check-fusion check-durable check-benchdb bench bench-watch

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# differential runs the cross-core / cross-ISA trace-equivalence
# harness and the -parallel determinism tests under the race detector.
differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestParallel|TestRunInstrumentedParallel' .

# golden checks the pinned paper artifacts (Table 1/2, Figure 1/2,
# canonical manifest) under the race detector. Regenerate after an
# intentional output change with:
#	$(GO) test ./internal/report -run TestGolden -update
golden:
	$(GO) test -race -count=1 -run TestGolden ./internal/report

# check-faults runs the fault-injection and shutdown-path suites under
# the race detector: matrix survival with injected decode/memory/panic
# faults, retry and watchdog behaviour, pool drain on cancel, and the
# hardened ELF reader's malformed-input tests.
check-faults:
	$(GO) test -race -count=1 ./internal/faultinject
	$(GO) test -race -count=1 -run 'TestMatrixSurvives|TestRetry|TestHungCell|TestSlowCell|TestBudget|TestFailFast|TestValidate|TestFailedRow' ./internal/report
	$(GO) test -race -count=1 -run 'TestPool|TestFanout' ./internal/sched
	$(GO) test -race -count=1 -run 'TestReject|TestTruncated' ./internal/elfio

# check-obs runs the observability suites under the race detector:
# Prometheus exposition goldens, status board and SSE semantics, the
# live-matrix HTTP round trip with injected faults, the flight
# recorder, bench-watch rules, structured logging, manifest v1
# compatibility — and the goroutine-leak shutdown contract
# (TestObsShutdown: the server follows experiment-context
# cancellation and Close leaves nothing behind).
check-obs:
	$(GO) test -race -count=1 ./internal/obs/...
	$(GO) test -race -count=1 -run 'TestReadManifest|TestCanonicalize' ./internal/telemetry

# check-prof runs the span-profiler suites under the race detector:
# the prof package itself (ring/totals semantics, occupancy, Amdahl
# fit, zero-allocation and nil-hook cost pins), worker-lane and
# queue-wait accounting in the pool, timed fan-out, the concurrent
# sharded-windowed-CP cells, and the matrix-level contracts — profile
# on/off byte-identity and the <= 1% disabled-profiler overhead gate.
check-prof:
	$(GO) test -race -count=1 ./internal/prof
	$(GO) test -race -count=1 -run 'TestPoolGoW|TestPoolStatsBlocked|TestFanoutTimed' ./internal/sched
	$(GO) test -race -count=1 -run 'TestShardedConcurrentCells' ./internal/core
	$(GO) test -race -count=1 -run 'TestProfiledByteIdentical|TestProfilerOffOverheadBudget' .

# check-fusion runs the macro-op fusion suites under the race
# detector: the rule/merge/batch-seam unit tests, the report-level
# fusion wiring tests, and the matrix-level contracts — fusion-off
# byte-identity, fusion-on differential equivalence and StepN-vs-Step
# identity under fusion.
check-fusion:
	$(GO) test -race -count=1 ./internal/fusion
	$(GO) test -race -count=1 -run 'TestFusion|TestGoldenFusion' ./internal/report
	$(GO) test -race -count=1 -run 'TestFusion' .

# check-durable runs the crash-safety suites under the race detector:
# the durable package itself (journal append/replay, torn-tail and
# corruption semantics, content cache, atomic writes), the disk-fault
# injection tests, and the report-level contracts — resume after a
# truncated journal, warm-cache zero-recompute, hash-mismatch re-run,
# failure replay, drain journaling rules, backoff interruption, and
# the SIGKILL chaos test (kill a live matrix at a randomized point,
# resume, diff byte-for-byte against the uninterrupted run).
check-durable:
	$(GO) test -race -count=1 ./internal/durable
	$(GO) test -race -count=1 -run 'TestDiskFault|TestTearJournalTail|TestOpenFaultFile' ./internal/faultinject
	$(GO) test -race -count=1 -run 'TestDurable|TestDrainInterruptsRetryBackoff|TestChaos' ./internal/report

# check-benchdb runs the benchmark-observatory suites under the race
# detector: the benchdb package itself (ledger append/replay with
# torn-tail and corruption semantics, host fingerprinting, the noise
# probe, robust statistics, drift detection), and the obs-level
# contracts — noise-aware bench-watch gating, the host-drift refusal,
# v1/v2 schema-family compatibility, the /benchz endpoint (golden text
# table, JSON round trip) and its Prometheus gauges, including the
# concurrent live-ledger scrape test.
check-benchdb:
	$(GO) test -race -count=1 ./internal/benchdb
	$(GO) test -race -count=1 -run 'TestWatch|TestBenchz|TestNaturalLess|TestServedCells' ./internal/obs

# fuzz-smoke runs each native fuzz target briefly. Longer campaigns:
#	$(GO) test -fuzz FuzzDecodeA64 -fuzztime 5m ./internal/a64
fuzz-smoke:
	$(GO) test -fuzz FuzzDecodeA64 -fuzztime 5s ./internal/a64
	$(GO) test -fuzz FuzzDecodeRV64 -fuzztime 5s ./internal/rv64
	$(GO) test -fuzz FuzzELF -fuzztime 5s ./internal/elfio
	$(GO) test -fuzz FuzzFusionStream -fuzztime 5s ./internal/fusion
	$(GO) test -fuzz FuzzJournalReplay -fuzztime 5s ./internal/durable
	$(GO) test -fuzz FuzzBenchLedgerReplay -fuzztime 5s ./internal/benchdb

# bench writes a run manifest for the benchmark trajectory: one
# instrumented run per workload at small scale, plus the telemetry
# overhead micro-benchmark printed for eyeballing.
bench:
	$(GO) run ./cmd/isacmp run -scale tiny -target all -metrics-json BENCH_PR1.json
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead -benchtime 1s .

# bench-matrix times the full analysis matrix sequentially and with
# the worker pool, verifies the outputs are byte-identical, and writes
# the comparison (speedup, worker utilization) to BENCH_PR2.json; it
# then times the matrix with the resilience watchdogs disarmed vs
# armed (deadline, budget, retries — none firing) and writes the
# overhead comparison against the <= 2% budget to BENCH_PR3.json.
bench-matrix:
	$(GO) run ./cmd/isacmp bench-matrix -scale small -o BENCH_PR2.json
	$(GO) run ./cmd/isacmp bench-resilience -scale small -o BENCH_PR3.json

# bench-hotpath times the full matrix through the per-Step reference
# loop and through the batched StepN hot path (both single-threaded),
# verifies the two are byte-identical, and writes the comparison plus
# the speedup over the committed PR 2 sequential baseline to
# BENCH_PR4.json. Regenerate (and commit) after an intentional
# hot-path change.
bench-hotpath:
	$(GO) run ./cmd/isacmp bench-hotpath -scale small -o BENCH_PR4.json

# bench-obs times the matrix bare and with the whole control plane
# live (registry, status board metered on the hot path, HTTP server on
# loopback), verifies byte-identity and writes the serve-mode overhead
# against the <= 2% budget to BENCH_PR5.json. Regenerate (and commit)
# after an intentional control-plane change.
bench-obs:
	$(GO) run ./cmd/isacmp bench-obs -scale small -o BENCH_PR5.json

# bench-scaling sweeps the full matrix over worker counts with the
# span profiler live: per-point stage breakdown and occupancy, an
# Amdahl serial-fraction fit, the profiler's own measured on-cost
# against the <= 3% budget, the estimated off-cost, and a ranked
# attribution of lost parallelism naming the dominant bottleneck.
# Writes BENCH_PR6.json; regenerate (and commit) after an intentional
# execution-path change.
bench-scaling:
	$(GO) run ./cmd/isacmp scalebench -scale small -o BENCH_PR6.json

# bench-fusion times the full matrix with fusion off (adapter elided)
# and with an attached-but-inert scan-only pass, verifies the two are
# byte-identical and the scan overhead stays under the <= 1% budget,
# then runs the matrix once with every RV64 rule live and records the
# per-kernel effective path lengths and per-rule hit totals to
# BENCH_PR7.json. Regenerate (and commit) after an intentional fusion
# or hot-path change.
bench-fusion:
	$(GO) run ./cmd/isacmp bench-fusion -scale small -o BENCH_PR7.json

# bench-durable times the full matrix bare and with the write-ahead
# cell journal armed (fsync per record, cold cache every rep),
# verifies journal-on output is byte-identical to bare, checks the
# journal overhead against the <= 2% budget, and verifies a warm-cache
# second run recomputes zero cells. Writes BENCH_PR8.json; regenerate
# (and commit) after an intentional durability-layer change.
bench-durable:
	$(GO) run ./cmd/isacmp bench-durable -scale small -o BENCH_PR8.json

# bench-benchdb measures the benchdb observatory's own cost: the full
# matrix timed bare and with the per-bench instrumentation armed (host
# fingerprint + noise probe + one fsynced ledger append, replay-
# verified each rep), with bare/armed byte-identity checked and the
# overhead pinned against the <= 1% budget. Writes BENCH_PR10.json;
# regenerate (and commit) after an intentional observatory change.
bench-benchdb:
	$(GO) run ./cmd/isacmp bench-benchdb -scale small -o BENCH_PR10.json

# bench-watch is the uniform regression gate over the committed
# benchmark trajectory (replacing the retired ad-hoc hotpath-guard):
# each watched BENCH_*.json is re-measured into a scratch doc and
# judged through the per-schema rules — wall-time ratios against the
# committed baseline, budget fields against the budget recorded in the
# fresh doc, and the byte-identity flags. Scratch docs are removed so
# committed baselines are never overwritten by a gate run.
bench-watch:
	$(GO) run ./cmd/isacmp bench-hotpath -scale small -o BENCH_PR4.check.json -guard BENCH_PR4.json
	$(GO) run ./cmd/isacmp bench-obs -scale small -o BENCH_PR5.check.json
	$(GO) run ./cmd/isacmp bench-watch BENCH_PR5.json BENCH_PR5.check.json
	$(GO) run ./cmd/isacmp scalebench -scale small -o BENCH_PR6.check.json -guard BENCH_PR6.json
	$(GO) run ./cmd/isacmp bench-fusion -scale small -o BENCH_PR7.check.json -guard BENCH_PR7.json
	$(GO) run ./cmd/isacmp bench-durable -scale small -o BENCH_PR8.check.json
	$(GO) run ./cmd/isacmp bench-watch BENCH_PR8.json BENCH_PR8.check.json
	$(GO) run ./cmd/isacmp bench-benchdb -scale small -o BENCH_PR10.check.json
	$(GO) run ./cmd/isacmp bench-watch BENCH_PR10.json BENCH_PR10.check.json
	rm -f BENCH_PR4.check.json BENCH_PR5.check.json BENCH_PR6.check.json BENCH_PR7.check.json BENCH_PR8.check.json BENCH_PR10.check.json

clean:
	rm -f BENCH_PR1.json BENCH_PR2.json BENCH_PR3.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR10.json BENCH_PR4.check.json BENCH_PR5.check.json BENCH_PR6.check.json BENCH_PR7.check.json BENCH_PR8.check.json BENCH_PR10.check.json BENCHDB.jsonl
