GO ?= go

.PHONY: check fmt vet build test race differential golden bench bench-matrix clean

# check is the full pre-merge gate: formatting, static checks, build,
# the race-enabled test suite (including the differential and golden
# suites, run explicitly so a -run filter can never silently drop
# them), and a short instrumented benchmark run that exercises the
# manifest path end to end (BENCH_PR1.json).
check: fmt vet build race differential golden bench

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# differential runs the cross-core / cross-ISA trace-equivalence
# harness and the -parallel determinism tests under the race detector.
differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestParallel|TestRunInstrumentedParallel' .

# golden checks the pinned paper artifacts (Table 1/2, Figure 1/2,
# canonical manifest) under the race detector. Regenerate after an
# intentional output change with:
#	$(GO) test ./internal/report -run TestGolden -update
golden:
	$(GO) test -race -count=1 -run TestGolden ./internal/report

# bench writes a run manifest for the benchmark trajectory: one
# instrumented run per workload at small scale, plus the telemetry
# overhead micro-benchmark printed for eyeballing.
bench:
	$(GO) run ./cmd/isacmp run -scale tiny -target all -metrics-json BENCH_PR1.json
	$(GO) test -run xxx -bench BenchmarkTelemetryOverhead -benchtime 1s .

# bench-matrix times the full analysis matrix sequentially and with
# the worker pool, verifies the outputs are byte-identical, and writes
# the comparison (speedup, worker utilization) to BENCH_PR2.json.
bench-matrix:
	$(GO) run ./cmd/isacmp bench-matrix -scale small -o BENCH_PR2.json

clean:
	rm -f BENCH_PR1.json BENCH_PR2.json
