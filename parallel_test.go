package isacmp

import (
	"bytes"
	"reflect"
	"testing"

	"isacmp/internal/prof"
	"isacmp/internal/report"
	"isacmp/internal/telemetry"
)

// matrixArtifacts runs the full tiny matrix at the given worker count
// and renders the two deterministic artifact forms: the text reports
// exactly as the CLIs print them, and the canonicalized run manifest
// JSON.
func matrixArtifacts(t *testing.T, parallel int) (text, manifest []byte) {
	t.Helper()
	return matrixArtifactsEx(t, MatrixExperiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: parallel,
	})
}

// matrixArtifactsEx is matrixArtifacts over an arbitrary experiment —
// the fusion suites reuse it with Fusion, StepLoop and Parallel set.
func matrixArtifactsEx(t *testing.T, ex MatrixExperiment) (text, manifest []byte) {
	t.Helper()
	progs := Suite(Tiny)
	rows, _, err := RunMatrix(progs, ex)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	m := telemetry.NewManifest("parallel-test", "tiny")
	for i, p := range progs {
		report.WritePathLengths(&buf, p.Name, rows[i])
		report.WriteCritPaths(&buf, p.Name, rows[i], false)
		report.WriteCritPaths(&buf, p.Name, rows[i], true)
		report.WriteWindowed(&buf, p.Name, rows[i])
		report.WriteFusion(&buf, p.Name, rows[i])
		report.AppendRows(m, p.Name, rows[i])
	}
	m.Canonicalize()
	var mbuf bytes.Buffer
	if err := m.Encode(&mbuf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), mbuf.Bytes()
}

// TestParallelByteIdentical enforces the -parallel determinism
// contract: the full analysis matrix run sequentially and run over a
// multi-worker pool (with per-cell trace fan-out and sharded windowed
// CP) must produce byte-identical report text and byte-identical
// canonicalized manifests.
func TestParallelByteIdentical(t *testing.T) {
	seqText, seqManifest := matrixArtifacts(t, 1)
	for _, workers := range []int{2, 5} {
		parText, parManifest := matrixArtifacts(t, workers)
		if !bytes.Equal(seqText, parText) {
			t.Fatalf("parallel=%d: report text differs from sequential", workers)
		}
		if !bytes.Equal(seqManifest, parManifest) {
			t.Fatalf("parallel=%d: canonicalized manifest differs from sequential", workers)
		}
	}
}

// TestRunInstrumentedParallelIdentical: the instrumented single-run
// path (RunConfig.Parallel) must also be invariant — same Result, and
// byte-identical canonicalized manifest — whether the sinks run
// inline behind the tee or concurrently behind the fan-out.
func TestRunInstrumentedParallelIdentical(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: RV64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	sel := Analyses{
		PathLength: true, CritPath: true, ScaledCritPath: true,
		Windowed: true, Mix: true, Branches: true,
	}

	run := func(parallel int) (*Result, []byte) {
		res, rec, err := bin.RunInstrumented(RunConfig{Analyses: sel, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		m := NewRunManifest("test", "tiny")
		m.Runs = append(m.Runs, rec)
		m.Canonicalize()
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	seqRes, seqManifest := run(1)
	parRes, parManifest := run(4)
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Fatalf("results differ:\nsequential %+v\nparallel   %+v", seqRes, parRes)
	}
	if !bytes.Equal(seqManifest, parManifest) {
		t.Fatalf("canonicalized manifests differ:\n%s\nvs\n%s", seqManifest, parManifest)
	}
}

// TestRunInstrumentedParallelWithModel: the fan-out path must feed
// trace-driven timing models the complete stream — cycle counts match
// the sequential tee run exactly.
func TestRunInstrumentedParallelWithModel(t *testing.T) {
	prog := Workload("stream", Tiny)
	bin, err := Compile(prog, Target{Arch: AArch64, Flavor: GCC12})
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range []string{"inorder", "ooo"} {
		_, seqRec, err := bin.RunInstrumented(RunConfig{Core: core, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, parRec, err := bin.RunInstrumented(RunConfig{Core: core, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seqRec.Core.Instructions != parRec.Core.Instructions || seqRec.Core.Cycles != parRec.Core.Cycles {
			t.Fatalf("%s: sequential %d insts/%d cycles, parallel %d insts/%d cycles",
				core, seqRec.Core.Instructions, seqRec.Core.Cycles,
				parRec.Core.Instructions, parRec.Core.Cycles)
		}
	}
}

// TestProfiledByteIdentical enforces the -profile pass-through
// contract: running the matrix with the span profiler live — at one
// worker and at several — must change no report byte and no
// canonicalized manifest byte, while the profiler itself captures a
// plausible timeline (spans for every stage on valid lanes).
func TestProfiledByteIdentical(t *testing.T) {
	progs := Suite(Tiny)
	run := func(parallel int, p *prof.Profiler) (text, manifest []byte) {
		ex := MatrixExperiment{
			PathLength: true, CritPath: true, Scaled: true, Windowed: true,
			Parallel: parallel, Prof: p,
		}
		rows, _, err := RunMatrix(progs, ex)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		m := telemetry.NewManifest("parallel-test", "tiny")
		for i, pr := range progs {
			report.WritePathLengths(&buf, pr.Name, rows[i])
			report.WriteCritPaths(&buf, pr.Name, rows[i], false)
			report.WriteCritPaths(&buf, pr.Name, rows[i], true)
			report.WriteWindowed(&buf, pr.Name, rows[i])
			report.AppendRows(m, pr.Name, rows[i])
		}
		m.Canonicalize()
		var mbuf bytes.Buffer
		if err := m.Encode(&mbuf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), mbuf.Bytes()
	}

	baseText, baseManifest := run(1, nil)
	for _, workers := range []int{1, 3} {
		p := prof.New(workers, 0)
		text, manifest := run(workers, p)
		if !bytes.Equal(baseText, text) {
			t.Fatalf("profile on, parallel=%d: report text differs from unprofiled", workers)
		}
		if !bytes.Equal(baseManifest, manifest) {
			t.Fatalf("profile on, parallel=%d: canonicalized manifest differs from unprofiled", workers)
		}
		spans := p.Spans()
		if len(spans) == 0 {
			t.Fatalf("parallel=%d: profiler captured no spans", workers)
		}
		stages := map[string]bool{}
		for _, s := range spans {
			if s.Lane < 0 || s.Lane >= p.Lanes() {
				t.Fatalf("span %+v on invalid lane (lanes=%d)", s, p.Lanes())
			}
			if s.Cell == "" {
				t.Fatalf("span %+v missing its cell", s)
			}
			stages[s.Name] = true
		}
		for _, want := range []string{"setup", "simulate", "deliver", "sink:pathlen", "sink:windowcp"} {
			if !stages[want] {
				t.Errorf("parallel=%d: no %q spans captured (got %v)", workers, want, stages)
			}
		}
	}
}
