package faultinject

import (
	"errors"
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/simeng"
)

// nopMachine retires nothing and never errors; the wrappers' own
// behaviour is what these tests observe.
type nopMachine struct{ pc uint64 }

func (m *nopMachine) Step(ev *isa.Event) (bool, error) { m.pc += 4; return false, nil }
func (m *nopMachine) PC() uint64                       { return m.pc }
func (m *nopMachine) Arch() isa.Arch                   { return isa.RV64 }

func stepN(t *testing.T, m simeng.Machine, n int) error {
	t.Helper()
	var ev isa.Event
	for i := 0; i < n; i++ {
		if _, err := m.Step(&ev); err != nil {
			return err
		}
	}
	return nil
}

// TestWrapIsSelective: cells and attempts outside a plan's match get
// the machine back untouched.
func TestWrapIsSelective(t *testing.T) {
	inj := New(7, Plan{Workload: "stream", Target: "RISC-V/GCC 9.2", Kind: Decode, At: 3, FirstAttempts: 2})
	defer inj.Close()
	m := &nopMachine{}
	if got := inj.WrapMachine("lbm", "RISC-V/GCC 9.2", 1, m); got != simeng.Machine(m) {
		t.Error("wrong workload must not be wrapped")
	}
	if got := inj.WrapMachine("stream", "AArch64/GCC 9.2", 1, m); got != simeng.Machine(m) {
		t.Error("wrong target must not be wrapped")
	}
	if got := inj.WrapMachine("stream", "RISC-V/GCC 9.2", 3, m); got != simeng.Machine(m) {
		t.Error("attempt past FirstAttempts must not be wrapped")
	}
	if got := inj.WrapMachine("stream", "RISC-V/GCC 9.2", 2, m); got == simeng.Machine(m) {
		t.Error("matching cell+attempt must be wrapped")
	}
	if got := inj.WrapSink("stream", "RISC-V/GCC 9.2", 1, nil); got != nil {
		t.Error("machine-layer plan must not wrap the sink")
	}
}

// TestDecodeFiresAtChosenRetirement: the fault fires exactly at At and
// classifies as a decode failure.
func TestDecodeFiresAtChosenRetirement(t *testing.T) {
	inj := New(7, Plan{Kind: Decode, At: 3})
	defer inj.Close()
	m := inj.WrapMachine("w", "t", 1, &nopMachine{})
	var ev isa.Event
	for i := 1; i <= 2; i++ {
		if _, err := m.Step(&ev); err != nil {
			t.Fatalf("step %d: unexpected %v", i, err)
		}
	}
	_, err := m.Step(&ev)
	if err == nil {
		t.Fatal("step 3 must fault")
	}
	if got := simeng.Classify(err); !errors.Is(got, simeng.ErrDecode) {
		t.Fatalf("classified as %v, want ErrDecode", got)
	}
}

// TestMemFaultClassifies: the injected access error rides the same
// classification path as a real one.
func TestMemFaultClassifies(t *testing.T) {
	inj := New(7, Plan{Kind: MemFault, At: 1})
	defer inj.Close()
	m := inj.WrapMachine("w", "t", 1, &nopMachine{})
	err := stepN(t, m, 1)
	if err == nil || !errors.Is(simeng.Classify(err), simeng.ErrMemFault) {
		t.Fatalf("err = %v, want mem-fault classification", err)
	}
}

// TestSeededFiringPointIsDeterministic: with At unset the firing point
// is drawn from (seed, cell) and must be identical across injectors
// with the same seed and differ across cells.
func TestSeededFiringPointIsDeterministic(t *testing.T) {
	fire := func(seed uint64, workload, target string) uint64 {
		inj := New(seed, Plan{Kind: Decode})
		defer inj.Close()
		m := inj.WrapMachine(workload, target, 1, &nopMachine{})
		n := uint64(0)
		var ev isa.Event
		for {
			n++
			if _, err := m.Step(&ev); err != nil {
				return n
			}
			if n > 1<<20 {
				t.Fatal("fault never fired")
			}
		}
	}
	a := fire(42, "stream", "RISC-V/GCC 9.2")
	b := fire(42, "stream", "RISC-V/GCC 9.2")
	if a != b {
		t.Fatalf("same seed+cell fired at %d then %d", a, b)
	}
	if a < 1 || a > 4096 {
		t.Fatalf("firing point %d outside [1,4096]", a)
	}
	if c := fire(42, "lbm", "RISC-V/GCC 9.2"); c == a {
		t.Logf("note: distinct cells collided at %d (allowed, just unlikely)", c)
	}
	if d := fire(43, "stream", "RISC-V/GCC 9.2"); d == a {
		t.Logf("note: distinct seeds collided at %d (allowed, just unlikely)", d)
	}
}

// TestSinkPanicFiresAtEvent: the wrapped sink panics at the chosen
// event count and forwards everything before it.
func TestSinkPanicFiresAtEvent(t *testing.T) {
	inj := New(7, Plan{Kind: SinkPanic, At: 5})
	defer inj.Close()
	seen := 0
	s := inj.WrapSink("w", "t", 1, isa.SinkFunc(func(*isa.Event) { seen++ }))
	err := simeng.Guard(func() error {
		var ev isa.Event
		for i := 0; i < 10; i++ {
			s.Event(&ev)
		}
		return nil
	})
	if !errors.Is(simeng.Classify(err), simeng.ErrPanic) {
		t.Fatalf("err = %v, want panic classification", err)
	}
	if seen != 4 {
		t.Fatalf("inner sink saw %d events, want 4", seen)
	}
}

// TestHangReleasedByClose: a hung Step unblocks when the injector is
// closed, so harness teardown never leaks the abandoned goroutine.
func TestHangReleasedByClose(t *testing.T) {
	inj := New(7, Plan{Kind: Hang, At: 1})
	m := inj.WrapMachine("w", "t", 1, &nopMachine{})
	done := make(chan error, 1)
	go func() {
		var ev isa.Event
		_, err := m.Step(&ev)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	default:
	}
	inj.Close()
	if err := <-done; err == nil {
		t.Fatal("released hang must report an error")
	}
}

// TestKindString pins the tags tests and messages use.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Decode: "decode", MemFault: "mem-fault", Panic: "panic",
		SinkPanic: "sink-panic", Slow: "slow", Hang: "hang",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %s, want %s", int(k), k.String(), s)
		}
	}
}
