package faultinject

import (
	"errors"
	"testing"

	"isacmp/internal/durable"
	"isacmp/internal/simeng"
)

func TestDiskFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	j, err := durable.OpenJournal(dir, 0, &durable.Options{OpenFile: OpenFaultFile(ShortWrite, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(durable.Record{Type: durable.RecFinished, Workload: "lbm", Target: "rv64", Hash: "h1"}); err != nil {
		t.Fatalf("pre-fault append: %v", err)
	}
	err = j.Append(durable.Record{Type: durable.RecFinished, Workload: "lbm", Target: "a64", Hash: "h2"})
	if !errors.Is(err, simeng.ErrIO) {
		t.Fatalf("want ErrIO, got %v", err)
	}
	if simeng.Reason(err) != "io" {
		t.Fatalf("reason = %q", simeng.Reason(err))
	}
	// The torn half-record must replay as a tolerated tail; the
	// pre-fault record survives.
	rp, err := durable.ReplayJournal(dir)
	if err != nil {
		t.Fatalf("replay after short write: %v", err)
	}
	if !rp.TornTail || rp.Records != 1 || rp.Lookup("lbm", "rv64") == nil {
		t.Fatalf("replay = %+v", rp)
	}
}

func TestDiskFaultENOSPC(t *testing.T) {
	dir := t.TempDir()
	j, err := durable.OpenJournal(dir, 0, &durable.Options{OpenFile: OpenFaultFile(NoSpace, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append(durable.Record{Type: durable.RecStarted, Workload: "lbm", Target: "rv64"})
	if !errors.Is(err, simeng.ErrIO) {
		t.Fatalf("want ErrIO, got %v", err)
	}
	// A full disk leaves a clean (empty) journal, not a torn one.
	rp, err := durable.ReplayJournal(dir)
	if err != nil || rp.Records != 0 || rp.TornTail {
		t.Fatalf("replay = %+v, %v", rp, err)
	}
}

func TestDiskFaultSyncError(t *testing.T) {
	dir := t.TempDir()
	j, err := durable.OpenJournal(dir, 0, &durable.Options{OpenFile: OpenFaultFile(SyncError, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append(durable.Record{Type: durable.RecStarted, Workload: "lbm", Target: "rv64"})
	if !errors.Is(err, simeng.ErrIO) {
		t.Fatalf("want ErrIO, got %v", err)
	}
}

func TestTearJournalTailResumes(t *testing.T) {
	dir := t.TempDir()
	r, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.CellFinished("lbm", "rv64", "h1", []byte(`{"a":1}`), false)
	r.CellFinished("lbm", "a64", "h2", []byte(`{"a":2}`), false)
	r.Close()
	if err := TearJournalTail(dir, 10); err != nil {
		t.Fatal(err)
	}
	res, err := durable.Resume(dir, nil)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	defer res.Close()
	st := res.Stats()
	if !st.TornTail || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if hit := res.Lookup("lbm", "rv64", "h1"); hit == nil || hit.Source != "journal" {
		t.Fatalf("intact cell: %+v", hit)
	}
	// The torn cell's journal record is gone — but its cache entry,
	// written atomically alongside, still serves it.
	if hit := res.Lookup("lbm", "a64", "h2"); hit == nil || hit.Source != "cache" {
		t.Fatalf("torn cell: %+v", hit)
	}
}
