// Package faultinject is the deterministic fault-injection harness for
// the resilience layer: a seeded injector that wraps a cell's machine
// or event sink and fires a chosen fault — decode error, memory fault,
// panic, sink panic, artificial slowness or an outright hang — at a
// chosen retirement count. It plugs into report.Experiment via the
// WrapMachine/WrapSink hooks, so the engine under test is exactly the
// production engine; nothing in the simulator knows it is being
// injected.
//
// Determinism contract: with the same seed and plans, every fault
// fires at the same retirement count on every run, so failure-path
// tests are as reproducible as the golden tests. A plan whose At is
// zero draws its firing point from the seed and the cell identity
// (splitmix64), which is how "seeded" randomised campaigns stay
// replayable.
package faultinject

import (
	"fmt"
	"log/slog"
	"time"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/simeng"
)

// Kind selects which fault a plan injects.
type Kind int

const (
	// Decode returns a decode-classified error from Step.
	Decode Kind = iota
	// MemFault returns a *mem.AccessError from Step.
	MemFault
	// Panic panics inside Step (exec-layer panic).
	Panic
	// SinkPanic panics inside the event sink (analysis-layer panic).
	SinkPanic
	// Slow sleeps SlowFor before every Step from the firing point on —
	// a cell that still retires but blows its wall-clock deadline.
	Slow
	// Hang blocks Step until the injector is Closed — a cell the
	// in-core context poll can never reach, only the scheduler's
	// watchdog.
	Hang
)

// String returns the plan-kind tag used in test names and messages.
func (k Kind) String() string {
	switch k {
	case Decode:
		return "decode"
	case MemFault:
		return "mem-fault"
	case Panic:
		return "panic"
	case SinkPanic:
		return "sink-panic"
	case Slow:
		return "slow"
	case Hang:
		return "hang"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan describes one fault to inject.
type Plan struct {
	// Workload and Target select the matrix cell; an empty string
	// matches every value (so {Kind: Panic} faults the whole matrix).
	Workload string
	Target   string
	// Kind is the fault to fire.
	Kind Kind
	// At is the 1-based retirement count (event count for SinkPanic)
	// at which the fault fires. 0 draws a deterministic point in
	// [1, 4096] from the injector seed and the cell identity.
	At uint64
	// FirstAttempts, when positive, arms the fault only for attempts
	// 1..FirstAttempts — the retry-success scenario: attempt
	// FirstAttempts+1 runs clean. 0 arms every attempt.
	FirstAttempts int
	// SlowFor is the per-instruction sleep of a Slow plan.
	SlowFor time.Duration
}

// Injector holds a seed and a set of plans and implements the
// report.Experiment WrapMachine/WrapSink hook signatures.
type Injector struct {
	seed  uint64
	plans []Plan
	stop  chan struct{}

	// Log, when set, records each armed wrap and each fault firing, so
	// an injected campaign's log stream shows exactly which cell was
	// sabotaged where. Set before handing the injector to an
	// experiment.
	Log *slog.Logger
}

// New builds an injector. Close it when done if any plan is a Hang.
func New(seed uint64, plans ...Plan) *Injector {
	return &Injector{seed: seed, plans: plans, stop: make(chan struct{})}
}

// Close releases every hung Step so abandoned watchdog goroutines can
// exit; harnesses call it at teardown (goroutine-leak checks depend on
// it).
func (in *Injector) Close() { close(in.stop) }

// match finds the first armed plan of the given kinds for a cell.
func (in *Injector) match(workload, target string, attempt int, kinds ...Kind) (Plan, bool) {
	for _, p := range in.plans {
		if p.Workload != "" && p.Workload != workload {
			continue
		}
		if p.Target != "" && p.Target != target {
			continue
		}
		if p.FirstAttempts > 0 && attempt > p.FirstAttempts {
			continue
		}
		for _, k := range kinds {
			if p.Kind == k {
				return p, true
			}
		}
	}
	return Plan{}, false
}

// firingPoint resolves a plan's At, drawing from the seed when unset.
func (in *Injector) firingPoint(p Plan, workload, target string) uint64 {
	if p.At > 0 {
		return p.At
	}
	h := in.seed
	for _, s := range []string{workload, target} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	return splitmix64(h)%4096 + 1
}

// splitmix64 is the standard 64-bit finalizer; good enough to spread
// cell identities over firing points and fully deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WrapMachine implements the report.Experiment hook: it wraps m when a
// machine-layer plan (Decode, MemFault, Panic, Slow, Hang) is armed
// for this cell and attempt, and returns m unchanged otherwise.
func (in *Injector) WrapMachine(workload, target string, attempt int, m simeng.Machine) simeng.Machine {
	p, ok := in.match(workload, target, attempt, Decode, MemFault, Panic, Slow, Hang)
	if !ok {
		return m
	}
	at := in.firingPoint(p, workload, target)
	if in.Log != nil {
		in.Log.Debug("faultinject: machine fault armed",
			"workload", workload, "target", target, "attempt", attempt,
			"kind", p.Kind.String(), "at", at)
	}
	return &faultMachine{
		Machine: m,
		plan:    p,
		at:      at,
		stop:    in.stop,
		log:     in.Log,
	}
}

// WrapSink implements the report.Experiment hook: it wraps s when a
// SinkPanic plan is armed for this cell and attempt. The inner sink
// may be nil (a run without analyses still counts events).
func (in *Injector) WrapSink(workload, target string, attempt int, s isa.Sink) isa.Sink {
	p, ok := in.match(workload, target, attempt, SinkPanic)
	if !ok {
		return s
	}
	at := in.firingPoint(p, workload, target)
	if in.Log != nil {
		in.Log.Debug("faultinject: sink fault armed",
			"workload", workload, "target", target, "attempt", attempt,
			"kind", p.Kind.String(), "at", at)
	}
	return &faultSink{inner: s, at: at}
}

// DecodeError is the injected stand-in for the architectures' decode
// errors; the DecodeFault marker makes simeng classify it as
// ErrDecode, exactly like a real unallocated encoding.
type DecodeError struct {
	PC uint64
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("faultinject: injected decode fault at pc=%#x", e.PC)
}

// DecodeFault marks the error as a decode failure for simeng.Classify.
func (e *DecodeError) DecodeFault() {}

// faultMachine interposes on Step and fires its plan at the chosen
// retirement count. Everything before (and, for non-fatal kinds,
// after) the firing point is delegated untouched.
type faultMachine struct {
	simeng.Machine
	plan    Plan
	at      uint64
	stop    chan struct{}
	log     *slog.Logger
	retired uint64
}

// fired logs the moment a fatal fault fires; Slow plans fire on every
// Step from the firing point on, so only the first is logged.
func (f *faultMachine) fired() {
	if f.log != nil && f.retired == f.at {
		f.log.Debug("faultinject: fault firing",
			"kind", f.plan.Kind.String(), "retired", f.retired)
	}
}

func (f *faultMachine) Step(ev *isa.Event) (bool, error) {
	f.retired++
	if f.retired >= f.at {
		f.fired()
		switch f.plan.Kind {
		case Decode:
			return false, &DecodeError{PC: f.PC()}
		case MemFault:
			return false, &mem.AccessError{Addr: f.PC(), Size: 8, Op: "injected read"}
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic at retirement %d", f.retired))
		case Slow:
			if f.plan.SlowFor > 0 {
				time.Sleep(f.plan.SlowFor)
			}
		case Hang:
			<-f.stop
			return false, fmt.Errorf("faultinject: hang released at retirement %d", f.retired)
		}
	}
	return f.Machine.Step(ev)
}

// StepN implements simeng.BatchMachine by looping the interposed
// Step, so injected faults fire at exactly the same retirement counts
// through the batched run loop as through the stepwise one — the
// property the fault-surfacing equivalence tests pin.
func (f *faultMachine) StepN(evs []isa.Event) (n int, done bool, err error) {
	for n < len(evs) {
		done, err = f.Step(&evs[n])
		if done || err != nil {
			return n, done, err
		}
		n++
	}
	return n, false, nil
}

// faultSink interposes on the event stream and panics at the chosen
// event count.
type faultSink struct {
	inner isa.Sink
	at    uint64
	n     uint64
}

func (f *faultSink) Event(ev *isa.Event) {
	f.n++
	if f.n == f.at {
		panic(fmt.Sprintf("faultinject: injected sink panic at event %d", f.n))
	}
	if f.inner != nil {
		f.inner.Event(ev)
	}
}
