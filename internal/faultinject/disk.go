package faultinject

import (
	"fmt"
	"os"
	"syscall"

	"isacmp/internal/durable"
	"isacmp/internal/simeng"
)

// Disk-fault injection for the durability layer. These wrappers
// implement durable.File and are plugged in through
// durable.Options.OpenFile, so the journal under test is exactly the
// production journal; the fault model covers the three ways a disk
// betrays a write-ahead log — a short write, ENOSPC, and a torn final
// record left by a crash.

// DiskFaultKind selects which disk fault a FaultFile fires.
type DiskFaultKind int

const (
	// ShortWrite makes the write succeed for only half the buffer.
	ShortWrite DiskFaultKind = iota
	// NoSpace fails the write with ENOSPC.
	NoSpace
	// SyncError fails the post-write fsync.
	SyncError
)

// String returns the disk-fault tag used in test names.
func (k DiskFaultKind) String() string {
	switch k {
	case ShortWrite:
		return "short-write"
	case NoSpace:
		return "enospc"
	case SyncError:
		return "sync-error"
	}
	return fmt.Sprintf("disk-fault(%d)", int(k))
}

// FaultFile wraps a real journal file and fires a disk fault on the
// Nth write (0-based). Writes before the firing point pass through,
// so the journal holds valid records up to the fault — the shape a
// real ENOSPC or short write leaves behind.
type FaultFile struct {
	f     durable.File
	kind  DiskFaultKind
	at    int
	count int
}

// OpenFaultFile returns a durable.Options.OpenFile hook that arms a
// FaultFile over the real journal file, firing kind on write number
// at.
func OpenFaultFile(kind DiskFaultKind, at int) func(path string) (durable.File, error) {
	return func(path string) (durable.File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &FaultFile{f: f, kind: kind, at: at}, nil
	}
}

// Write passes through until the firing point, then fires the fault.
// ShortWrite and NoSpace keep firing once armed: a full disk does not
// heal between records.
func (ff *FaultFile) Write(p []byte) (int, error) {
	n := ff.count
	ff.count++
	if n < ff.at || ff.kind == SyncError {
		return ff.f.Write(p)
	}
	switch ff.kind {
	case ShortWrite:
		half := len(p) / 2
		if _, err := ff.f.Write(p[:half]); err != nil {
			return 0, err
		}
		return half, nil
	case NoSpace:
		return 0, &os.PathError{Op: "write", Path: "journal", Err: syscall.ENOSPC}
	}
	return ff.f.Write(p)
}

// Sync fires SyncError once armed, otherwise passes through.
func (ff *FaultFile) Sync() error {
	if ff.kind == SyncError && ff.count > ff.at {
		return &os.PathError{Op: "fsync", Path: "journal", Err: syscall.EIO}
	}
	return ff.f.Sync()
}

// Close closes the underlying file.
func (ff *FaultFile) Close() error { return ff.f.Close() }

// TearJournalTail truncates the last n bytes off a run directory's
// journal, simulating the torn final record a SIGKILL mid-append
// leaves behind. It refuses to tear more than the file holds.
func TearJournalTail(dir string, n int) error {
	path := durable.JournalPath(dir)
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%w: tear journal: %v", simeng.ErrIO, err)
	}
	if int64(n) > st.Size() {
		n = int(st.Size())
	}
	return os.Truncate(path, st.Size()-int64(n))
}
