package a64

import (
	"fmt"
	"io"

	"isacmp/internal/elfio"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

// Machine is the architectural state of a single AArch64 core together
// with its predecoded program. It mirrors the rv64.Machine interface.
type Machine struct {
	// X is the integer register file; X[31] stores SP. The zero
	// register is materialised by the read helpers.
	X [32]uint64
	// F is the floating-point register file (raw bits; single-
	// precision values occupy the low 32 bits, upper bits zero).
	F [32]uint64
	// NZCV condition flags.
	N, Z, C, V bool
	// PCReg is the program counter.
	PCReg uint64

	// Mem is the memory image.
	Mem *mem.Memory

	prog     []Inst
	words    []uint32
	groups   []isa.Group
	textBase uint64

	// badErrs records text words that failed to predecode, keyed by
	// PC. The slot's Inst stays OpInvalid, so Step faults with the
	// stored decode error only if the word is actually executed. nil
	// when the whole text predecoded cleanly (the normal case).
	badErrs map[uint64]error
	// fallbacks counts fetches the predecode cache could not serve.
	fallbacks uint64

	exited   bool
	exitCode int64

	// Stdout receives bytes written through the write system call.
	Stdout io.Writer

	steps uint64
}

// AArch64 Linux syscall ABI registers.
const (
	regX0 = 0
	regX1 = 1
	regX2 = 2
	regX8 = 8
	regSP = 31
)

// Linux generic syscall numbers (shared with riscv64).
const (
	sysWrite = 64
	sysExit  = 93
	sysBrk   = 214
)

// NewMachine loads the ELF file into memory and predecodes the text
// segment.
func NewMachine(f *elfio.File, m *mem.Memory) (*Machine, error) {
	if f.Machine != elfio.EMAarch64 {
		return nil, fmt.Errorf("a64: ELF machine %d is not AArch64", f.Machine)
	}
	mach := &Machine{Mem: m, PCReg: f.Entry, Stdout: io.Discard}
	var text *elfio.Segment
	maxEnd := m.Base()
	for i := range f.Segments {
		s := &f.Segments[i]
		if err := m.WriteBytes(s.Vaddr, s.Data); err != nil {
			return nil, fmt.Errorf("a64: loading segment at %#x: %w", s.Vaddr, err)
		}
		if end := s.Vaddr + uint64(len(s.Data)); end > maxEnd {
			maxEnd = end
		}
		if s.Flags&elfio.PFX != 0 {
			if text != nil {
				return nil, fmt.Errorf("a64: multiple executable segments")
			}
			text = s
		}
	}
	if text == nil {
		return nil, fmt.Errorf("a64: no executable segment")
	}
	m.SetBrk((maxEnd + 15) &^ 15)
	mach.textBase = text.Vaddr
	n := len(text.Data) / 4
	mach.prog = make([]Inst, n)
	mach.words = make([]uint32, n)
	mach.groups = make([]isa.Group, n)
	for i := 0; i < n; i++ {
		w := uint32(text.Data[i*4]) | uint32(text.Data[i*4+1])<<8 |
			uint32(text.Data[i*4+2])<<16 | uint32(text.Data[i*4+3])<<24
		mach.words[i] = w
		inst, err := Decode(w)
		if err != nil {
			// Tolerant predecode: data or padding islands inside the
			// text segment must not fail construction. The slot keeps
			// OpInvalid and the error surfaces from Step only if the
			// program actually jumps here.
			if mach.badErrs == nil {
				mach.badErrs = make(map[uint64]error)
			}
			mach.badErrs[text.Vaddr+uint64(i*4)] = err
			continue
		}
		mach.prog[i] = inst
		mach.groups[i] = OpGroup(&inst)
	}
	mach.X[regSP] = m.StackTop()
	return mach, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.PCReg }

// Exited reports whether the program has invoked exit.
func (m *Machine) Exited() bool { return m.exited }

// ExitCode returns the status passed to exit.
func (m *Machine) ExitCode() int64 { return m.exitCode }

// Steps returns the number of retired instructions.
func (m *Machine) Steps() uint64 { return m.steps }

// Arch returns isa.AArch64.
func (m *Machine) Arch() isa.Arch { return isa.AArch64 }

// InstAt returns the predecoded instruction at pc, for disassembly.
func (m *Machine) InstAt(pc uint64) (Inst, bool) {
	idx := (pc - m.textBase) / 4
	if pc < m.textBase || idx >= uint64(len(m.prog)) || pc%4 != 0 {
		return Inst{}, false
	}
	return m.prog[idx], true
}

// PredecodeStats reports predecode-cache coverage and the fetches the
// cache could not serve.
func (m *Machine) PredecodeStats() isa.PredecodeStats {
	return isa.PredecodeStats{
		TextWords: uint64(len(m.prog)),
		BadWords:  uint64(len(m.badErrs)),
		Fallbacks: m.fallbacks,
	}
}

type fetchErr struct{ pc uint64 }

func (e *fetchErr) Error() string {
	return fmt.Sprintf("a64: PC %#x outside text segment", e.pc)
}

// xr reads register r in a zero-register context.
func (m *Machine) xr(r uint8) uint64 {
	if r == ZR {
		return 0
	}
	return m.X[r]
}

// setX writes register r in a zero-register context.
func (m *Machine) setX(r uint8, v uint64, sf bool) {
	if r == ZR {
		return
	}
	if !sf {
		v = uint64(uint32(v))
	}
	m.X[r] = v
}

// flags packs NZCV into the conventional nibble (N=8, Z=4, C=2, V=1).
func (m *Machine) flags() uint8 {
	var f uint8
	if m.N {
		f |= 8
	}
	if m.Z {
		f |= 4
	}
	if m.C {
		f |= 2
	}
	if m.V {
		f |= 1
	}
	return f
}

// setFlags unpacks the NZCV nibble.
func (m *Machine) setFlags(f uint8) {
	m.N, m.Z, m.C, m.V = f&8 != 0, f&4 != 0, f&2 != 0, f&1 != 0
}

// condHolds evaluates a condition code against the current flags.
func (m *Machine) condHolds(c Cond) bool {
	var r bool
	switch c &^ 1 {
	case EQ:
		r = m.Z
	case CS:
		r = m.C
	case MI:
		r = m.N
	case VS:
		r = m.V
	case HI:
		r = m.C && !m.Z
	case GE:
		r = m.N == m.V
	case GT:
		r = !m.Z && m.N == m.V
	case AL:
		return true // AL and NV both execute unconditionally
	}
	if c&1 == 1 {
		return !r
	}
	return r
}

// gpr-source helpers for event recording: the zero register is never
// reported, matching the paper's chain-breaking rule.
func addSrc(ev *isa.Event, r uint8) {
	if r != ZR {
		ev.AddSrc(isa.IntReg(r))
	}
}

func addDst(ev *isa.Event, r uint8) {
	if r != ZR {
		ev.AddDst(isa.IntReg(r))
	}
}

// addSPSrc records r as a source in an SP context (SP is a real
// dependency, unlike the zero register).
func addSPSrc(ev *isa.Event, r uint8) { ev.AddSrc(isa.IntReg(r)) }

func addSPDst(ev *isa.Event, r uint8) { ev.AddDst(isa.IntReg(r)) }

func addFSrc(ev *isa.Event, r uint8) { ev.AddSrc(isa.FPReg(r)) }
func addFDst(ev *isa.Event, r uint8) { ev.AddDst(isa.FPReg(r)) }
