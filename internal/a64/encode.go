package a64

import (
	"fmt"
	"math"
)

// EncodeError reports an instruction that cannot be encoded.
type EncodeError struct {
	Inst Inst
	Why  string
}

// Error implements the error interface.
func (e *EncodeError) Error() string {
	return fmt.Sprintf("a64: cannot encode %s: %s", e.Inst.Op.Name(), e.Why)
}

func encErr(i Inst, why string) error { return &EncodeError{Inst: i, Why: why} }

func sfBit(sf bool) uint32 {
	if sf {
		return 1 << 31
	}
	return 0
}

func ftype(dbl bool) uint32 {
	if dbl {
		return 1 << 22
	}
	return 0
}

func checkRegs(i Inst) error {
	if i.Rd > 31 || i.Rn > 31 || i.Rm > 31 || i.Ra > 31 || i.Rt2 > 31 {
		return encErr(i, "register out of range")
	}
	return nil
}

// log2Size maps an access width in bytes to the size2 field.
func log2Size(size uint8) (uint32, bool) {
	switch size {
	case 1:
		return 0, true
	case 2:
		return 1, true
	case 4:
		return 2, true
	case 8:
		return 3, true
	}
	return 0, false
}

// Encode produces the 32-bit word for a decoded instruction. It is the
// exact inverse of Decode for every representable instruction.
func Encode(i Inst) (uint32, error) {
	if err := checkRegs(i); err != nil {
		return 0, err
	}
	rd, rn, rm, ra := uint32(i.Rd), uint32(i.Rn), uint32(i.Rm), uint32(i.Ra)
	switch i.Op {
	case ADDi, ADDSi, SUBi, SUBSi:
		if i.Imm < 0 || i.Imm > 4095 {
			return 0, encErr(i, "imm12 out of range")
		}
		var opS uint32
		switch i.Op {
		case ADDSi:
			opS = 1 << 29
		case SUBi:
			opS = 1 << 30
		case SUBSi:
			opS = 1<<30 | 1<<29
		}
		var sh uint32
		if i.ShiftHi {
			sh = 1 << 22
		}
		return sfBit(i.Sf) | opS | 0x11000000 | sh | uint32(i.Imm)<<10 | rn<<5 | rd, nil

	case ANDi, ORRi, EORi, ANDSi:
		n, immr, imms, ok := EncodeBitmask(uint64(i.Imm), i.Sf)
		if !ok {
			return 0, encErr(i, fmt.Sprintf("%#x is not a bitmask immediate", uint64(i.Imm)))
		}
		var opc uint32
		switch i.Op {
		case ORRi:
			opc = 1 << 29
		case EORi:
			opc = 2 << 29
		case ANDSi:
			opc = 3 << 29
		}
		return sfBit(i.Sf) | opc | 0x12000000 | uint32(n)<<22 | uint32(immr)<<16 | uint32(imms)<<10 | rn<<5 | rd, nil

	case MOVZ, MOVN, MOVK:
		if i.Imm < 0 || i.Imm > 0xffff {
			return 0, encErr(i, "imm16 out of range")
		}
		maxHw := uint8(1)
		if i.Sf {
			maxHw = 3
		}
		if i.Hw > maxHw {
			return 0, encErr(i, "hw out of range")
		}
		var opc uint32
		switch i.Op {
		case MOVZ:
			opc = 2 << 29
		case MOVK:
			opc = 3 << 29
		}
		return sfBit(i.Sf) | opc | 0x12800000 | uint32(i.Hw)<<21 | uint32(i.Imm)<<5 | rd, nil

	case SBFM, UBFM:
		lim := uint8(31)
		var n uint32
		if i.Sf {
			lim = 63
			n = 1 << 22
		}
		if i.ImmR > lim || i.ImmS > lim {
			return 0, encErr(i, "bitfield position out of range")
		}
		var opc uint32
		if i.Op == UBFM {
			opc = 2 << 29
		}
		return sfBit(i.Sf) | opc | 0x13000000 | n | uint32(i.ImmR)<<16 | uint32(i.ImmS)<<10 | rn<<5 | rd, nil

	case ADDr, ADDSr, SUBr, SUBSr:
		lim := uint8(31)
		if i.Sf {
			lim = 63
		}
		if i.ShiftAmt > lim || i.ShiftKind > ASR {
			return 0, encErr(i, "shift out of range")
		}
		var opS uint32
		switch i.Op {
		case ADDSr:
			opS = 1 << 29
		case SUBr:
			opS = 1 << 30
		case SUBSr:
			opS = 1<<30 | 1<<29
		}
		return sfBit(i.Sf) | opS | 0x0B000000 | uint32(i.ShiftKind)<<22 | rm<<16 | uint32(i.ShiftAmt)<<10 | rn<<5 | rd, nil

	case ANDr, ORRr, EORr, ANDSr, BICr:
		lim := uint8(31)
		if i.Sf {
			lim = 63
		}
		if i.ShiftAmt > lim {
			return 0, encErr(i, "shift out of range")
		}
		var opcN uint32
		switch i.Op {
		case ORRr:
			opcN = 1 << 29
		case EORr:
			opcN = 2 << 29
		case ANDSr:
			opcN = 3 << 29
		case BICr:
			opcN = 1 << 21
		}
		return sfBit(i.Sf) | opcN | 0x0A000000 | uint32(i.ShiftKind)<<22 | rm<<16 | uint32(i.ShiftAmt)<<10 | rn<<5 | rd, nil

	case MADD, MSUB:
		var o0 uint32
		if i.Op == MSUB {
			o0 = 1 << 15
		}
		return sfBit(i.Sf) | 0x1B000000 | rm<<16 | o0 | ra<<10 | rn<<5 | rd, nil

	case UDIV, SDIV, LSLV, LSRV, ASRV:
		var opc uint32
		switch i.Op {
		case UDIV:
			opc = 0x02
		case SDIV:
			opc = 0x03
		case LSLV:
			opc = 0x08
		case LSRV:
			opc = 0x09
		case ASRV:
			opc = 0x0A
		}
		return sfBit(i.Sf) | 0x1AC00000 | rm<<16 | opc<<10 | rn<<5 | rd, nil

	case CSEL, CSINC, CSINV, CSNEG:
		var opO2 uint32
		switch i.Op {
		case CSINC:
			opO2 = 1 << 10
		case CSINV:
			opO2 = 1 << 30
		case CSNEG:
			opO2 = 1<<30 | 1<<10
		}
		return sfBit(i.Sf) | opO2 | 0x1A800000 | rm<<16 | uint32(i.Cond)<<12 | rn<<5 | rd, nil

	case B, BL:
		if i.Imm%4 != 0 || i.Imm < -(1<<27) || i.Imm >= 1<<27 {
			return 0, encErr(i, "branch offset out of range")
		}
		w := uint32(0x14000000) | uint32(i.Imm>>2)&0x03ffffff
		if i.Op == BL {
			w |= 1 << 31
		}
		return w, nil

	case Bcond:
		if i.Imm%4 != 0 || i.Imm < -(1<<20) || i.Imm >= 1<<20 {
			return 0, encErr(i, "branch offset out of range")
		}
		return 0x54000000 | uint32(i.Imm>>2)&0x7ffff<<5 | uint32(i.Cond), nil

	case CBZ, CBNZ:
		if i.Imm%4 != 0 || i.Imm < -(1<<20) || i.Imm >= 1<<20 {
			return 0, encErr(i, "branch offset out of range")
		}
		w := sfBit(i.Sf) | 0x34000000 | uint32(i.Imm>>2)&0x7ffff<<5 | rd
		if i.Op == CBNZ {
			w |= 1 << 24
		}
		return w, nil

	case BR:
		return 0xD61F0000 | rn<<5, nil
	case BLR:
		return 0xD63F0000 | rn<<5, nil
	case RET:
		return 0xD65F0000 | rn<<5, nil
	case SVC:
		if i.Imm < 0 || i.Imm > 0xffff {
			return 0, encErr(i, "svc imm16 out of range")
		}
		return 0xD4000001 | uint32(i.Imm)<<5, nil
	case NOP:
		return 0xD503201F, nil

	case LDR, STR, LDRSW:
		return encodeLoadStore(i)

	case LDP, STP:
		return encodeLoadStorePair(i)

	case FADD, FSUB, FMUL, FDIV, FNMUL, FMAX, FMIN:
		var opc uint32
		switch i.Op {
		case FMUL:
			opc = 0
		case FDIV:
			opc = 1
		case FADD:
			opc = 2
		case FSUB:
			opc = 3
		case FMAX:
			opc = 4
		case FMIN:
			opc = 5
		case FNMUL:
			opc = 8
		}
		return 0x1E200800 | ftype(i.Dbl) | rm<<16 | opc<<12 | rn<<5 | rd, nil

	case FMOVr, FABS, FNEG, FSQRT, FCVTsd, FCVTds:
		var opc uint32
		switch i.Op {
		case FMOVr:
			opc = 0
		case FABS:
			opc = 1
		case FNEG:
			opc = 2
		case FSQRT:
			opc = 3
		case FCVTsd: // double source -> single dest; ftype describes source
			if !i.Dbl {
				return 0, encErr(i, "fcvt to single requires double source")
			}
			opc = 4
		case FCVTds:
			if i.Dbl {
				return 0, encErr(i, "fcvt to double requires single source")
			}
			opc = 5
		}
		return 0x1E204000 | ftype(i.Dbl) | opc<<15 | rn<<5 | rd, nil

	case FCMP, FCMPE:
		var op2 uint32
		if i.Op == FCMPE {
			op2 = 0x10
		}
		return 0x1E202000 | ftype(i.Dbl) | rm<<16 | rn<<5 | op2, nil

	case FCSEL:
		return 0x1E200C00 | ftype(i.Dbl) | rm<<16 | uint32(i.Cond)<<12 | rn<<5 | rd, nil

	case SCVTF, UCVTF, FCVTZS, FCVTZU, FMOVxf, FMOVfx:
		var rmode, opc uint32
		switch i.Op {
		case SCVTF:
			rmode, opc = 0, 2
		case UCVTF:
			rmode, opc = 0, 3
		case FCVTZS:
			rmode, opc = 3, 0
		case FCVTZU:
			rmode, opc = 3, 1
		case FMOVxf:
			rmode, opc = 0, 6
			if i.Sf != i.Dbl {
				return 0, encErr(i, "fmov between mismatched widths")
			}
		case FMOVfx:
			rmode, opc = 0, 7
			if i.Sf != i.Dbl {
				return 0, encErr(i, "fmov between mismatched widths")
			}
		}
		return sfBit(i.Sf) | 0x1E200000 | ftype(i.Dbl) | rmode<<19 | opc<<16 | rn<<5 | rd, nil

	case FMOVi:
		imm8, ok := encodeFPImm8(math.Float64frombits(uint64(i.Imm)), i.Dbl)
		if !ok {
			return 0, encErr(i, "value not representable as fmov immediate")
		}
		return 0x1E201000 | ftype(i.Dbl) | uint32(imm8)<<13 | rd, nil

	case FMADD, FMSUB, FNMADD, FNMSUB:
		var o1, o0 uint32
		switch i.Op {
		case FMSUB:
			o0 = 1 << 15
		case FNMADD:
			o1 = 1 << 21
		case FNMSUB:
			o1, o0 = 1<<21, 1<<15
		}
		return 0x1F000000 | ftype(i.Dbl) | o1 | rm<<16 | o0 | ra<<10 | rn<<5 | rd, nil
	}
	return 0, encErr(i, "unknown op")
}

func encodeLoadStore(i Inst) (uint32, error) {
	size2, ok := log2Size(i.Size)
	if !ok {
		return 0, encErr(i, "bad access size")
	}
	rn, rt, rm := uint32(i.Rn), uint32(i.Rd), uint32(i.Rm)
	var v uint32
	if i.FP {
		if i.Size != 4 && i.Size != 8 {
			return 0, encErr(i, "FP access must be 4 or 8 bytes")
		}
		v = 1 << 26
	}
	var opc uint32
	switch {
	case i.Op == STR:
		opc = 0
	case i.Op == LDR:
		opc = 1
	case i.Op == LDRSW:
		if i.FP || i.Size != 4 {
			return 0, encErr(i, "ldrsw is a 4-byte integer load")
		}
		opc = 2
	}
	base := size2<<30 | 0x38000000 | v | opc<<22
	switch i.Mode {
	case ModeUImm:
		if i.Imm < 0 || i.Imm%int64(i.Size) != 0 || i.Imm/int64(i.Size) > 4095 {
			return 0, encErr(i, fmt.Sprintf("unsigned offset %d unencodable", i.Imm))
		}
		return base | 1<<24 | uint32(i.Imm/int64(i.Size))<<10 | rn<<5 | rt, nil
	case ModePost, ModePre:
		if i.Imm < -256 || i.Imm > 255 {
			return 0, encErr(i, "pre/post offset out of range")
		}
		mode := uint32(1) << 10 // post
		if i.Mode == ModePre {
			mode = 3 << 10
		}
		return base | uint32(i.Imm)&0x1ff<<12 | mode | rn<<5 | rt, nil
	case ModeReg:
		var s uint32
		switch i.ShiftAmt {
		case 0:
			// no shift
		case uint8(size2):
			s = 1 << 12
		default:
			return 0, encErr(i, "register-offset shift must be 0 or log2(size)")
		}
		// option = LSL (UXTX) = 011
		return base | 1<<21 | rm<<16 | 3<<13 | s | 2<<10 | rn<<5 | rt, nil
	}
	return 0, encErr(i, "bad addressing mode")
}

func encodeLoadStorePair(i Inst) (uint32, error) {
	rn, rt, rt2 := uint32(i.Rn), uint32(i.Rd), uint32(i.Rt2)
	var base uint32
	switch {
	case i.FP && i.Size == 8:
		base = 1<<30 | 1<<26
	case !i.FP && i.Size == 8:
		base = 2 << 30
	case !i.FP && i.Size == 4:
		base = 0
	default:
		return 0, encErr(i, "unsupported pair width")
	}
	base |= 0x28000000
	if i.Op == LDP {
		base |= 1 << 22
	}
	var mode uint32
	switch i.Mode {
	case ModeUImm:
		mode = 2 << 23
	case ModePost:
		mode = 1 << 23
	case ModePre:
		mode = 3 << 23
	default:
		return 0, encErr(i, "pair cannot use register offset")
	}
	scale := int64(i.Size)
	if i.Imm%scale != 0 || i.Imm/scale < -64 || i.Imm/scale > 63 {
		return 0, encErr(i, fmt.Sprintf("pair offset %d unencodable", i.Imm))
	}
	return base | mode | uint32(i.Imm/scale)&0x7f<<15 | rt2<<10 | rn<<5 | rt, nil
}

// MustEncode encodes i, panicking on error.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// encodeFPImm8 converts a float into the 8-bit FMOV immediate encoding
// (sign, 3-bit exponent, 4-bit mantissa), if representable.
func encodeFPImm8(v float64, dbl bool) (uint8, bool) {
	if !dbl {
		v = float64(float32(v))
	}
	bits := math.Float64bits(v)
	sign := uint8(bits >> 63)
	exp := int(bits>>52&0x7ff) - 1023
	frac := bits & (1<<52 - 1)
	if exp < -3 || exp > 4 {
		return 0, false
	}
	if frac&(1<<48-1) != 0 {
		return 0, false // more than 4 mantissa bits
	}
	mant := uint8(frac >> 48)
	// exponent field: NOT(b) b b (for 64-bit: replicated) -> 3-bit biased
	// field e where exp = e - 3 with e in [0,7] excluding representations
	// handled by the NOT(b) scheme; the canonical mapping:
	e := uint8(exp + 3) // 0..7
	b := ^e >> 2 & 1    // top bit of field is NOT(exp sign-ish bit)
	return sign<<7 | b<<6 | (e&3)<<4 | mant, true
}

// decodeFPImm8 expands the 8-bit immediate into a float (VFPExpandImm).
func decodeFPImm8(imm8 uint8, dbl bool) float64 {
	sign := uint64(imm8 >> 7)
	b6 := uint64(imm8 >> 6 & 1)
	exp2 := uint64(imm8 >> 4 & 3)
	mant := uint64(imm8 & 0xf)
	// 64-bit: exp = NOT(b6) : replicate(b6, 8) : exp2 (11 bits)
	var exp uint64
	if b6 == 1 {
		exp = 0<<10 | 0xff<<2 | exp2
	} else {
		exp = 1<<10 | 0x00<<2 | exp2
	}
	bits := sign<<63 | exp<<52 | mant<<48
	v := math.Float64frombits(bits)
	if !dbl {
		return float64(float32(v))
	}
	return v
}
