package a64

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Golden encodings cross-checked against GNU as/objdump output.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		inst Inst
		want uint32
	}{
		// add x0, x0, #1
		{Inst{Op: ADDi, Sf: true, Rd: 0, Rn: 0, Imm: 1}, 0x91000400},
		// sub x1, x0, #2441, lsl #12  (the paper's GCC 9.2 STREAM idiom)
		{Inst{Op: SUBi, Sf: true, Rd: 1, Rn: 0, Imm: 2441, ShiftHi: true}, 0xD1662401},
		// subs x1, x1, #1664 (other half of the idiom)
		{Inst{Op: SUBSi, Sf: true, Rd: 1, Rn: 1, Imm: 1664}, 0xF11A0021},
		// cmp x0, x20 (the GCC 12.2 replacement)
		{Inst{Op: SUBSr, Sf: true, Rd: ZR, Rn: 0, Rm: 20}, 0xEB14001F},
		// ldr d1, [x22, x0, lsl #3] (paper Listing 1)
		{Inst{Op: LDR, Size: 8, FP: true, Rd: 1, Rn: 22, Rm: 0, Mode: ModeReg, ShiftAmt: 3}, 0xFC607AC1},
		// str d1, [x19, x0, lsl #3]
		{Inst{Op: STR, Size: 8, FP: true, Rd: 1, Rn: 19, Rm: 0, Mode: ModeReg, ShiftAmt: 3}, 0xFC207A61},
		// ldr x1, [sp, #8]
		{Inst{Op: LDR, Size: 8, Rd: 1, Rn: 31, Imm: 8}, 0xF94007E1},
		// str w2, [x3]
		{Inst{Op: STR, Size: 4, Rd: 2, Rn: 3}, 0xB9000062},
		// ldr d0, [x1], #8 (post-index)
		{Inst{Op: LDR, Size: 8, FP: true, Rd: 0, Rn: 1, Imm: 8, Mode: ModePost}, 0xFC408420},
		// stp x29, x30, [sp, #-16]!
		{Inst{Op: STP, Size: 8, Rd: 29, Rt2: 30, Rn: 31, Imm: -16, Mode: ModePre}, 0xA9BF7BFD},
		// ldp x29, x30, [sp], #16
		{Inst{Op: LDP, Size: 8, Rd: 29, Rt2: 30, Rn: 31, Imm: 16, Mode: ModePost}, 0xA8C17BFD},
		// mov x0, #42 (movz)
		{Inst{Op: MOVZ, Sf: true, Rd: 0, Imm: 42}, 0xD2800540},
		// movk x0, #1, lsl #16
		{Inst{Op: MOVK, Sf: true, Rd: 0, Imm: 1, Hw: 1}, 0xF2A00020},
		// b.ne -20
		{Inst{Op: Bcond, Cond: NE, Imm: -20}, 0x54FFFF61},
		// b +8
		{Inst{Op: B, Imm: 8}, 0x14000002},
		// cbnz x5, -8
		{Inst{Op: CBNZ, Sf: true, Rd: 5, Imm: -8}, 0xB5FFFFC5},
		// ret
		{Inst{Op: RET, Rn: 30}, 0xD65F03C0},
		// svc #0
		{Inst{Op: SVC}, 0xD4000001},
		// nop
		{Inst{Op: NOP}, 0xD503201F},
		// fadd d0, d1, d2
		{Inst{Op: FADD, Dbl: true, Rd: 0, Rn: 1, Rm: 2}, 0x1E622820},
		// fmul d3, d4, d5
		{Inst{Op: FMUL, Dbl: true, Rd: 3, Rn: 4, Rm: 5}, 0x1E650883},
		// fmadd d0, d1, d2, d3
		{Inst{Op: FMADD, Dbl: true, Rd: 0, Rn: 1, Rm: 2, Ra: 3}, 0x1F420C20},
		// fsqrt d0, d1
		{Inst{Op: FSQRT, Dbl: true, Rd: 0, Rn: 1}, 0x1E61C020},
		// fcmp d0, d1
		{Inst{Op: FCMP, Dbl: true, Rn: 0, Rm: 1}, 0x1E612000},
		// scvtf d0, x1
		{Inst{Op: SCVTF, Sf: true, Dbl: true, Rd: 0, Rn: 1}, 0x9E620020},
		// fcvtzs x0, d1
		{Inst{Op: FCVTZS, Sf: true, Dbl: true, Rd: 0, Rn: 1}, 0x9E780020},
		// fmov x0, d1
		{Inst{Op: FMOVxf, Sf: true, Dbl: true, Rd: 0, Rn: 1}, 0x9E660020},
		// mul x0, x1, x2 (madd with xzr)
		{Inst{Op: MADD, Sf: true, Rd: 0, Rn: 1, Rm: 2, Ra: ZR}, 0x9B027C20},
		// sdiv x0, x1, x2
		{Inst{Op: SDIV, Sf: true, Rd: 0, Rn: 1, Rm: 2}, 0x9AC20C20},
		// csel x0, x1, x2, eq
		{Inst{Op: CSEL, Sf: true, Rd: 0, Rn: 1, Rm: 2, Cond: EQ}, 0x9A820020},
		// and x0, x1, #0xff
		{Inst{Op: ANDi, Sf: true, Rd: 0, Rn: 1, Imm: 0xff}, 0x92401C20},
		// orr x0, xzr, x1 (mov x0, x1)
		{Inst{Op: ORRr, Sf: true, Rd: 0, Rn: ZR, Rm: 1}, 0xAA0103E0},
		// lsl x0, x1, #3 (ubfm x0, x1, #61, #60)
		{Inst{Op: UBFM, Sf: true, Rd: 0, Rn: 1, ImmR: 61, ImmS: 60}, 0xD37DF020},
		// add x0, x1, x2, lsl #3
		{Inst{Op: ADDr, Sf: true, Rd: 0, Rn: 1, Rm: 2, ShiftAmt: 3}, 0x8B020C20},
	}
	for _, c := range cases {
		got, err := Encode(c.inst)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.inst, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%s) = %#08x, want %#08x", c.inst, got, c.want)
		}
		back, err := Decode(c.want)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", c.want, err)
			continue
		}
		if back != c.inst {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, back, c.inst)
		}
	}
}

func TestBitmaskRoundTrip(t *testing.T) {
	// Exhaustive over all valid field combinations: decode then
	// re-encode must reproduce a pattern that decodes identically.
	for n := uint8(0); n <= 1; n++ {
		for immr := uint8(0); immr < 64; immr++ {
			for imms := uint8(0); imms < 64; imms++ {
				v, ok := DecodeBitmask(n, immr, imms, true)
				if !ok {
					continue
				}
				n2, immr2, imms2, ok := EncodeBitmask(v, true)
				if !ok {
					t.Fatalf("EncodeBitmask(%#x) failed (from n=%d immr=%d imms=%d)", v, n, immr, imms)
				}
				v2, ok := DecodeBitmask(n2, immr2, imms2, true)
				if !ok || v2 != v {
					t.Fatalf("bitmask not canonical: %#x -> (%d,%d,%d) -> %#x", v, n2, immr2, imms2, v2)
				}
			}
		}
	}
}

func TestBitmaskKnownValues(t *testing.T) {
	cases := []struct {
		v    uint64
		is64 bool
		ok   bool
	}{
		{0xff, true, true},
		{0xf0f0f0f0f0f0f0f0, true, true},
		{0x5555555555555555, true, true},
		{0x0000ffff0000ffff, true, true},
		{0x7, true, true},
		{0, true, false},
		{^uint64(0), true, false},
		{0x123456789abcdef0, true, false},
		{0xff, false, true},
		{0x100000001, false, false}, // >32 bits in 32-bit mode
	}
	for _, c := range cases {
		n, immr, imms, ok := EncodeBitmask(c.v, c.is64)
		if ok != c.ok {
			t.Errorf("EncodeBitmask(%#x, %v) ok = %v, want %v", c.v, c.is64, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		got, ok := DecodeBitmask(n, immr, imms, c.is64)
		if !ok || got != c.v {
			t.Errorf("DecodeBitmask(EncodeBitmask(%#x)) = %#x", c.v, got)
		}
	}
}

// randInst builds random valid instructions covering every op.
func randInst(r *rand.Rand) Inst {
	reg := func() uint8 { return uint8(r.Intn(32)) }
	cond := func() Cond { return Cond(r.Intn(16)) }
	for {
		op := Op(1 + r.Intn(int(numOps)-1))
		i := Inst{Op: op}
		switch op {
		case ADDi, ADDSi, SUBi, SUBSi:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn = reg(), reg()
			i.Imm = int64(r.Intn(4096))
			i.ShiftHi = r.Intn(2) == 0
		case ANDi, ORRi, EORi, ANDSi:
			i.Sf = true
			i.Rd, i.Rn = reg(), reg()
			// Build a guaranteed-valid bitmask immediate from fields.
			for {
				v, ok := DecodeBitmask(uint8(r.Intn(2)), uint8(r.Intn(64)), uint8(r.Intn(64)), true)
				if ok {
					i.Imm = int64(v)
					break
				}
			}
		case MOVZ, MOVN, MOVK:
			i.Sf = r.Intn(2) == 0
			i.Rd = reg()
			i.Imm = int64(r.Intn(0x10000))
			if i.Sf {
				i.Hw = uint8(r.Intn(4))
			} else {
				i.Hw = uint8(r.Intn(2))
			}
		case SBFM, UBFM:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn = reg(), reg()
			lim := 32
			if i.Sf {
				lim = 64
			}
			i.ImmR, i.ImmS = uint8(r.Intn(lim)), uint8(r.Intn(lim))
		case ADDr, ADDSr, SUBr, SUBSr:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
			i.ShiftKind = Shift(r.Intn(3))
			lim := 32
			if i.Sf {
				lim = 64
			}
			i.ShiftAmt = uint8(r.Intn(lim))
		case ANDr, ORRr, EORr, ANDSr, BICr:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
			i.ShiftKind = Shift(r.Intn(4))
			lim := 32
			if i.Sf {
				lim = 64
			}
			i.ShiftAmt = uint8(r.Intn(lim))
		case MADD, MSUB:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm, i.Ra = reg(), reg(), reg(), reg()
		case SDIV, UDIV, LSLV, LSRV, ASRV:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
		case CSEL, CSINC, CSINV, CSNEG:
			i.Sf = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm, i.Cond = reg(), reg(), reg(), cond()
		case B, BL:
			i.Imm = int64(r.Intn(1<<26)-1<<25) * 4
		case Bcond:
			i.Cond = cond()
			i.Imm = int64(r.Intn(1<<19)-1<<18) * 4
		case CBZ, CBNZ:
			i.Sf = r.Intn(2) == 0
			i.Rd = reg()
			i.Imm = int64(r.Intn(1<<19)-1<<18) * 4
		case BR, BLR, RET:
			i.Rn = reg()
		case SVC:
			i.Imm = int64(r.Intn(0x10000))
		case NOP:
		case LDR, STR, LDRSW:
			i.Rd, i.Rn = reg(), reg()
			if op == LDRSW {
				i.Size = 4
			} else {
				i.FP = r.Intn(2) == 0
				if i.FP {
					i.Size = []uint8{4, 8}[r.Intn(2)]
				} else {
					i.Size = []uint8{1, 2, 4, 8}[r.Intn(4)]
				}
			}
			switch AddrMode(r.Intn(4)) {
			case ModeUImm:
				i.Mode = ModeUImm
				i.Imm = int64(r.Intn(4096)) * int64(i.Size)
			case ModePost:
				i.Mode = ModePost
				i.Imm = int64(r.Intn(512) - 256)
			case ModePre:
				i.Mode = ModePre
				i.Imm = int64(r.Intn(512) - 256)
			case ModeReg:
				i.Mode = ModeReg
				i.Rm = reg()
				if r.Intn(2) == 0 {
					switch i.Size {
					case 2:
						i.ShiftAmt = 1
					case 4:
						i.ShiftAmt = 2
					case 8:
						i.ShiftAmt = 3
					}
				}
			}
		case LDP, STP:
			i.Rd, i.Rt2, i.Rn = reg(), reg(), reg()
			if r.Intn(2) == 0 {
				i.FP = true
				i.Size = 8
			} else {
				i.Size = []uint8{4, 8}[r.Intn(2)]
			}
			i.Mode = []AddrMode{ModeUImm, ModePost, ModePre}[r.Intn(3)]
			i.Imm = int64(r.Intn(128)-64) * int64(i.Size)
		case FADD, FSUB, FMUL, FDIV, FNMUL, FMAX, FMIN:
			i.Dbl = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm = reg(), reg(), reg()
		case FMOVr, FABS, FNEG, FSQRT:
			i.Dbl = r.Intn(2) == 0
			i.Rd, i.Rn = reg(), reg()
		case FCVTsd:
			i.Dbl = true
			i.Rd, i.Rn = reg(), reg()
		case FCVTds:
			i.Dbl = false
			i.Rd, i.Rn = reg(), reg()
		case FCMP, FCMPE:
			i.Dbl = r.Intn(2) == 0
			i.Rn, i.Rm = reg(), reg()
		case FCSEL:
			i.Dbl = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm, i.Cond = reg(), reg(), reg(), cond()
		case SCVTF, UCVTF, FCVTZS, FCVTZU:
			i.Sf = r.Intn(2) == 0
			i.Dbl = r.Intn(2) == 0
			i.Rd, i.Rn = reg(), reg()
		case FMOVxf, FMOVfx:
			i.Sf = r.Intn(2) == 0
			i.Dbl = i.Sf
			i.Rd, i.Rn = reg(), reg()
		case FMOVi:
			i.Dbl = r.Intn(2) == 0
			i.Rd = reg()
			mant := r.Intn(16)
			exp := r.Intn(8) - 3
			sign := float64(1 - 2*r.Intn(2))
			v := sign * (1 + float64(mant)/16) * math.Pow(2, float64(exp))
			i.Imm = int64(math.Float64bits(v))
		case FMADD, FMSUB, FNMADD, FNMSUB:
			i.Dbl = r.Intn(2) == 0
			i.Rd, i.Rn, i.Rm, i.Ra = reg(), reg(), reg(), reg()
		default:
			continue
		}
		return i
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 0; n < 20000; n++ {
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %s %+v: %v", w, in.Op.Name(), in, err)
		}
		if out != in {
			t.Fatalf("round trip %s: %+v -> %#08x -> %+v", in.Op.Name(), in, w, out)
		}
	}
}

func TestEveryOpRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	covered := map[Op]bool{}
	for n := 0; n < 200000 && len(covered) < int(numOps)-1; n++ {
		in := randInst(r)
		covered[in.Op] = true
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil || out != in {
			t.Fatalf("round trip failed for %s: %+v -> %+v (%v)", in.Op.Name(), in, out, err)
		}
	}
	for op := Op(1); op < numOps; op++ {
		if !covered[op] {
			t.Errorf("op %s never exercised", op.Name())
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: ADDi, Imm: 4096},
		{Op: ADDi, Imm: -1},
		{Op: ANDi, Imm: 0}, // 0 is not a bitmask immediate
		{Op: MOVZ, Imm: 0x10000},
		{Op: MOVZ, Sf: false, Hw: 2, Imm: 1},
		{Op: B, Imm: 2},
		{Op: Bcond, Imm: 1 << 21},
		{Op: LDR, Size: 3},
		{Op: LDR, Size: 8, Mode: ModeUImm, Imm: 12}, // not 8-aligned
		{Op: LDR, Size: 8, Mode: ModePost, Imm: 300},
		{Op: LDR, Size: 8, Mode: ModeReg, ShiftAmt: 2},
		{Op: LDP, Size: 8, Mode: ModeReg},
		{Op: LDP, Size: 8, Imm: 4},
		{Op: SBFM, Sf: false, ImmR: 40},
		{Op: FMOVi, Imm: int64(math.Float64bits(0.1))},
		{Op: FMOVxf, Sf: true, Dbl: false},
		{Op: ADDr, ShiftKind: ROR, ShiftAmt: 1}, // ROR invalid for add/sub
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%+v) unexpectedly succeeded", c)
		}
	}
}

func TestFPImm8(t *testing.T) {
	representable := []float64{1.0, 2.0, 0.5, -1.0, 3.0, 0.125, 31.0, -0.5, 1.9375, 10.0}
	for _, v := range representable {
		imm8, ok := encodeFPImm8(v, true)
		if !ok {
			t.Errorf("encodeFPImm8(%v) failed", v)
			continue
		}
		if got := decodeFPImm8(imm8, true); got != v {
			t.Errorf("fpimm8 round trip %v -> %#x -> %v", v, imm8, got)
		}
	}
	for _, v := range []float64{0, 0.1, 33.0, 1e10, math.NaN(), math.Inf(1), 0.0625} {
		if _, ok := encodeFPImm8(v, true); ok {
			t.Errorf("encodeFPImm8(%v) should fail", v)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: LDR, Size: 8, FP: true, Rd: 1, Rn: 22, Rm: 0, Mode: ModeReg, ShiftAmt: 3}, "ldr d1, [x22, x0, lsl #3]"},
		{Inst{Op: STR, Size: 8, FP: true, Rd: 1, Rn: 19, Rm: 0, Mode: ModeReg, ShiftAmt: 3}, "str d1, [x19, x0, lsl #3]"},
		{Inst{Op: ADDi, Sf: true, Rd: 0, Rn: 0, Imm: 1}, "add x0, x0, #1"},
		{Inst{Op: SUBSr, Sf: true, Rd: ZR, Rn: 0, Rm: 20}, "cmp x0, x20"},
		{Inst{Op: Bcond, Cond: NE, Imm: -20}, "b.ne -20"},
		{Inst{Op: SUBi, Sf: true, Rd: 1, Rn: 0, Imm: 2441, ShiftHi: true}, "sub x1, x0, #2441, lsl #12"},
		{Inst{Op: SUBSi, Sf: true, Rd: 1, Rn: 1, Imm: 1664}, "subs x1, x1, #1664"},
		{Inst{Op: MADD, Sf: true, Rd: 0, Rn: 1, Rm: 2, Ra: ZR}, "mul x0, x1, x2"},
		{Inst{Op: MOVZ, Sf: true, Rd: 3, Imm: 7}, "mov x3, #7"},
		{Inst{Op: ORRr, Sf: true, Rd: 0, Rn: ZR, Rm: 1}, "mov x0, x1"},
		{Inst{Op: UBFM, Sf: true, Rd: 0, Rn: 1, ImmR: 61, ImmS: 60}, "lsl x0, x1, #3"},
		{Inst{Op: UBFM, Sf: true, Rd: 0, Rn: 1, ImmR: 3, ImmS: 63}, "lsr x0, x1, #3"},
		{Inst{Op: CSINC, Sf: true, Rd: 0, Rn: ZR, Rm: ZR, Cond: NE}, "cset x0, eq"},
		{Inst{Op: FMADD, Dbl: true, Rd: 0, Rn: 1, Rm: 2, Ra: 3}, "fmadd d0, d1, d2, d3"},
		{Inst{Op: LDP, Size: 8, Rd: 29, Rt2: 30, Rn: 31, Imm: 16, Mode: ModePost}, "ldp x29, x30, [sp], #16"},
		{Inst{Op: STR, Size: 8, FP: true, Rd: 0, Rn: 1, Imm: 8, Mode: ModePre}, "str d0, [x1, #8]!"},
		{Inst{Op: RET, Rn: 30}, "ret"},
		{Inst{Op: FMOVi, Dbl: true, Rd: 1, Imm: int64(math.Float64bits(1.0))}, "fmov d1, #1.0"},
		{Inst{Op: LDR, Size: 1, Rd: 2, Rn: 3}, "ldrb w2, [x3]"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.inst, got, c.want)
		}
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	for _, w := range []uint32{0, 0xffffffff, 0x00000013} {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) accepted", w)
		}
	}
}

func TestQuickBitmaskAgainstDecode(t *testing.T) {
	// Property: every value EncodeBitmask accepts decodes back to
	// itself.
	f := func(v uint64) bool {
		n, immr, imms, ok := EncodeBitmask(v, true)
		if !ok {
			return true // not representable: fine
		}
		got, ok := DecodeBitmask(n, immr, imms, true)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
