package a64

import (
	"fmt"
	"math"

	"isacmp/internal/isa"
)

// Step retires one instruction, updating architectural state and
// filling ev with the execution record. It returns done=true once the
// program has exited.
func (m *Machine) Step(ev *isa.Event) (done bool, err error) {
	if m.exited {
		return true, nil
	}
	idx := (m.PCReg - m.textBase) / 4
	if m.PCReg < m.textBase || idx >= uint64(len(m.prog)) || m.PCReg%4 != 0 {
		m.fallbacks++
		return false, &fetchErr{pc: m.PCReg}
	}
	i := m.prog[idx]
	if i.Op == OpInvalid {
		// A text word that failed tolerant predecode; it faults only
		// here, when execution actually reaches it.
		m.fallbacks++
		return false, fmt.Errorf("a64: decode at %#x: %w", m.PCReg, m.badErrs[m.PCReg])
	}

	ev.Reset()
	ev.PC = m.PCReg
	ev.Word = m.words[idx]
	ev.Group = m.groups[idx]

	nextPC := m.PCReg + 4

	switch i.Op {
	case ADDi, SUBi:
		// SP-context for both Rn and Rd (this form moves to/from SP).
		addSPSrc(ev, i.Rn)
		imm := uint64(i.Imm)
		if i.ShiftHi {
			imm <<= 12
		}
		v := m.X[i.Rn] + imm
		if i.Op == SUBi {
			v = m.X[i.Rn] - imm
		}
		if !i.Sf {
			v = uint64(uint32(v))
		}
		m.X[i.Rd] = v
		addSPDst(ev, i.Rd)

	case ADDSi, SUBSi:
		addSPSrc(ev, i.Rn)
		imm := uint64(i.Imm)
		if i.ShiftHi {
			imm <<= 12
		}
		a := m.X[i.Rn]
		var v uint64
		if i.Op == ADDSi {
			v = m.addWithFlags(a, imm, 0, i.Sf)
		} else {
			v = m.addWithFlags(a, ^imm, 1, i.Sf)
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)
		ev.AddDst(isa.RegNZCV)

	case ANDi, ORRi, EORi, ANDSi:
		addSrc(ev, i.Rn)
		a := m.xr(i.Rn)
		b := uint64(i.Imm)
		var v uint64
		switch i.Op {
		case ANDi, ANDSi:
			v = a & b
		case ORRi:
			v = a | b
		case EORi:
			v = a ^ b
		}
		if !i.Sf {
			v = uint64(uint32(v))
		}
		if i.Op == ANDSi {
			m.logicFlags(v, i.Sf)
			ev.AddDst(isa.RegNZCV)
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case MOVZ:
		m.setX(i.Rd, uint64(i.Imm)<<(16*uint(i.Hw)), i.Sf)
		addDst(ev, i.Rd)
	case MOVN:
		m.setX(i.Rd, ^(uint64(i.Imm) << (16 * uint(i.Hw))), i.Sf)
		addDst(ev, i.Rd)
	case MOVK:
		addSrc(ev, i.Rd) // movk merges into the destination
		sh := 16 * uint(i.Hw)
		v := m.xr(i.Rd)&^(0xffff<<sh) | uint64(i.Imm)<<sh
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case SBFM, UBFM:
		addSrc(ev, i.Rn)
		regsize := uint(32)
		if i.Sf {
			regsize = 64
		}
		m.setX(i.Rd, bfm(m.xr(i.Rn), i.ImmR, i.ImmS, regsize, i.Op == SBFM), i.Sf)
		addDst(ev, i.Rd)

	case ADDr, SUBr:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		b := shiftedOperand(m.xr(i.Rm), i.ShiftKind, i.ShiftAmt, i.Sf)
		v := m.xr(i.Rn) + b
		if i.Op == SUBr {
			v = m.xr(i.Rn) - b
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case ADDSr, SUBSr:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		b := shiftedOperand(m.xr(i.Rm), i.ShiftKind, i.ShiftAmt, i.Sf)
		var v uint64
		if i.Op == ADDSr {
			v = m.addWithFlags(m.xr(i.Rn), b, 0, i.Sf)
		} else {
			v = m.addWithFlags(m.xr(i.Rn), ^b, 1, i.Sf)
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)
		ev.AddDst(isa.RegNZCV)

	case ANDr, ORRr, EORr, ANDSr, BICr:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		b := shiftedOperand(m.xr(i.Rm), i.ShiftKind, i.ShiftAmt, i.Sf)
		a := m.xr(i.Rn)
		var v uint64
		switch i.Op {
		case ANDr, ANDSr:
			v = a & b
		case ORRr:
			v = a | b
		case EORr:
			v = a ^ b
		case BICr:
			v = a &^ b
		}
		if !i.Sf {
			v = uint64(uint32(v))
		}
		if i.Op == ANDSr {
			m.logicFlags(v, i.Sf)
			ev.AddDst(isa.RegNZCV)
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case MADD, MSUB:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		addSrc(ev, i.Ra)
		p := m.xr(i.Rn) * m.xr(i.Rm)
		var v uint64
		if i.Op == MADD {
			v = m.xr(i.Ra) + p
		} else {
			v = m.xr(i.Ra) - p
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case SDIV, UDIV:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		m.setX(i.Rd, divide(i.Op == SDIV, m.xr(i.Rn), m.xr(i.Rm), i.Sf), i.Sf)
		addDst(ev, i.Rd)

	case LSLV, LSRV, ASRV:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		bits := uint64(63)
		if !i.Sf {
			bits = 31
		}
		amt := uint(m.xr(i.Rm) & bits)
		var v uint64
		switch i.Op {
		case LSLV:
			v = m.xr(i.Rn) << amt
		case LSRV:
			a := m.xr(i.Rn)
			if !i.Sf {
				a = uint64(uint32(a))
			}
			v = a >> amt
		case ASRV:
			if i.Sf {
				v = uint64(int64(m.xr(i.Rn)) >> amt)
			} else {
				v = uint64(uint32(int32(uint32(m.xr(i.Rn))) >> amt))
			}
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case CSEL, CSINC, CSINV, CSNEG:
		addSrc(ev, i.Rn)
		addSrc(ev, i.Rm)
		ev.AddSrc(isa.RegNZCV)
		var v uint64
		if m.condHolds(i.Cond) {
			v = m.xr(i.Rn)
		} else {
			b := m.xr(i.Rm)
			switch i.Op {
			case CSEL:
				v = b
			case CSINC:
				v = b + 1
			case CSINV:
				v = ^b
			case CSNEG:
				v = -b
			}
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)

	case B:
		ev.Branch, ev.Taken = true, true
		nextPC = m.PCReg + uint64(i.Imm)
	case BL:
		ev.Branch, ev.Taken = true, true
		m.X[30] = m.PCReg + 4
		ev.AddDst(isa.IntReg(30))
		nextPC = m.PCReg + uint64(i.Imm)
	case Bcond:
		ev.Branch = true
		ev.AddSrc(isa.RegNZCV)
		if m.condHolds(i.Cond) {
			ev.Taken = true
			nextPC = m.PCReg + uint64(i.Imm)
		}
	case CBZ, CBNZ:
		ev.Branch = true
		addSrc(ev, i.Rd)
		v := m.xr(i.Rd)
		if !i.Sf {
			v = uint64(uint32(v))
		}
		if (v == 0) == (i.Op == CBZ) {
			ev.Taken = true
			nextPC = m.PCReg + uint64(i.Imm)
		}
	case BR, RET:
		ev.Branch, ev.Taken = true, true
		addSrc(ev, i.Rn)
		nextPC = m.xr(i.Rn)
	case BLR:
		ev.Branch, ev.Taken = true, true
		addSrc(ev, i.Rn)
		m.X[30] = m.PCReg + 4
		ev.AddDst(isa.IntReg(30))
		nextPC = m.xr(i.Rn)
	case SVC:
		done, err = m.svc()
		if err != nil {
			return false, err
		}
		if done {
			return true, nil
		}
	case NOP:
		// nothing

	case LDR, STR, LDRSW:
		if err := m.loadStore(&i, ev); err != nil {
			return false, err
		}
	case LDP, STP:
		if err := m.loadStorePair(&i, ev); err != nil {
			return false, err
		}

	case FADD, FSUB, FMUL, FDIV, FNMUL, FMAX, FMIN:
		addFSrc(ev, i.Rn)
		addFSrc(ev, i.Rm)
		m.fpBin(&i)
		addFDst(ev, i.Rd)
	case FMOVr, FABS, FNEG, FSQRT, FCVTsd, FCVTds:
		addFSrc(ev, i.Rn)
		m.fpUn(&i)
		addFDst(ev, i.Rd)
	case FCMP, FCMPE:
		addFSrc(ev, i.Rn)
		addFSrc(ev, i.Rm)
		a, b := m.fr(i.Rn, i.Dbl), m.fr(i.Rm, i.Dbl)
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			m.setFlags(0b0011)
		case a == b:
			m.setFlags(0b0110)
		case a < b:
			m.setFlags(0b1000)
		default:
			m.setFlags(0b0010)
		}
		ev.AddDst(isa.RegNZCV)
	case FCSEL:
		addFSrc(ev, i.Rn)
		addFSrc(ev, i.Rm)
		ev.AddSrc(isa.RegNZCV)
		if m.condHolds(i.Cond) {
			m.F[i.Rd] = m.F[i.Rn]
		} else {
			m.F[i.Rd] = m.F[i.Rm]
		}
		if !i.Dbl {
			m.F[i.Rd] = uint64(uint32(m.F[i.Rd]))
		}
		addFDst(ev, i.Rd)
	case SCVTF, UCVTF:
		addSrc(ev, i.Rn)
		v := m.xr(i.Rn)
		var f float64
		if i.Op == SCVTF {
			if i.Sf {
				f = float64(int64(v))
			} else {
				f = float64(int32(uint32(v)))
			}
		} else {
			if i.Sf {
				f = float64(v)
			} else {
				f = float64(uint32(v))
			}
		}
		m.setF(i.Rd, f, i.Dbl)
		addFDst(ev, i.Rd)
	case FCVTZS, FCVTZU:
		addFSrc(ev, i.Rn)
		f := math.Trunc(m.fr(i.Rn, i.Dbl))
		var v uint64
		if i.Op == FCVTZS {
			if i.Sf {
				v = uint64(satS64(f))
			} else {
				v = uint64(uint32(satS32(f)))
			}
		} else {
			if i.Sf {
				v = satU64(f)
			} else {
				v = uint64(satU32(f))
			}
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)
	case FMOVxf:
		addFSrc(ev, i.Rn)
		v := m.F[i.Rn]
		if !i.Sf {
			v = uint64(uint32(v))
		}
		m.setX(i.Rd, v, i.Sf)
		addDst(ev, i.Rd)
	case FMOVfx:
		addSrc(ev, i.Rn)
		v := m.xr(i.Rn)
		if !i.Dbl {
			v = uint64(uint32(v))
		}
		m.F[i.Rd] = v
		addFDst(ev, i.Rd)
	case FMOVi:
		m.setF(i.Rd, math.Float64frombits(uint64(i.Imm)), i.Dbl)
		addFDst(ev, i.Rd)
	case FMADD, FMSUB, FNMADD, FNMSUB:
		addFSrc(ev, i.Rn)
		addFSrc(ev, i.Rm)
		addFSrc(ev, i.Ra)
		a, b, c := m.fr(i.Rn, i.Dbl), m.fr(i.Rm, i.Dbl), m.fr(i.Ra, i.Dbl)
		var r float64
		switch i.Op {
		case FMADD:
			r = math.FMA(a, b, c)
		case FMSUB:
			r = math.FMA(-a, b, c)
		case FNMADD:
			r = math.FMA(-a, b, -c)
		case FNMSUB:
			r = math.FMA(a, b, -c)
		}
		m.setF(i.Rd, r, i.Dbl)
		addFDst(ev, i.Rd)

	default:
		return false, fmt.Errorf("a64: unimplemented op %s at %#x", i.Op.Name(), m.PCReg)
	}

	m.PCReg = nextPC
	m.steps++
	return false, nil
}

// StepN retires up to len(evs) instructions, filling evs[:n] in
// retirement order — the batched fast path of simeng.BatchMachine.
// done and err describe the machine state after the n filled events;
// on an error the first n events are still valid and must be
// delivered before the error is surfaced.
func (m *Machine) StepN(evs []isa.Event) (n int, done bool, err error) {
	for n < len(evs) {
		done, err = m.Step(&evs[n])
		if done || err != nil {
			return n, done, err
		}
		n++
	}
	return n, false, nil
}

// addWithFlags computes a + b + carry, setting NZCV.
func (m *Machine) addWithFlags(a, b uint64, carry uint64, sf bool) uint64 {
	if !sf {
		a32, b32 := uint32(a), uint32(b)
		r := uint64(a32) + uint64(b32) + carry
		v := uint32(r)
		m.N = int32(v) < 0
		m.Z = v == 0
		m.C = r>>32 != 0
		m.V = (^(a32 ^ b32) & (a32 ^ v) >> 31) != 0
		return uint64(v)
	}
	r := a + b + carry
	m.N = int64(r) < 0
	m.Z = r == 0
	// Carry out of unsigned 64-bit addition.
	m.C = r < a || (carry == 1 && r == a)
	m.V = (^(a ^ b) & (a ^ r) >> 63) != 0
	return r
}

// logicFlags sets flags for ANDS/TST: N and Z from the result, C=V=0.
func (m *Machine) logicFlags(v uint64, sf bool) {
	if sf {
		m.N = int64(v) < 0
	} else {
		m.N = int32(uint32(v)) < 0
	}
	m.Z = v == 0
	m.C, m.V = false, false
}

// shiftedOperand applies the shift of a shifted-register operand.
func shiftedOperand(v uint64, kind Shift, amt uint8, sf bool) uint64 {
	if !sf {
		v = uint64(uint32(v))
	}
	if amt == 0 && kind == LSL {
		return v
	}
	width := uint(64)
	if !sf {
		width = 32
	}
	a := uint(amt) % width
	var r uint64
	switch kind {
	case LSL:
		r = v << a
	case LSR:
		r = v >> a
	case ASR:
		if sf {
			r = uint64(int64(v) >> a)
		} else {
			r = uint64(uint32(int32(uint32(v)) >> a))
		}
	case ROR:
		r = v>>a | v<<(width-a)
	}
	if !sf {
		r = uint64(uint32(r))
	}
	return r
}

// bfm implements the SBFM/UBFM bitfield move.
func bfm(src uint64, immr, imms uint8, regsize uint, signed bool) uint64 {
	mask := func(w uint) uint64 {
		if w >= 64 {
			return ^uint64(0)
		}
		return uint64(1)<<w - 1
	}
	var v uint64
	if imms >= immr {
		width := uint(imms-immr) + 1
		v = src >> immr & mask(width)
		if signed && v>>(width-1)&1 == 1 {
			v |= ^mask(width)
		}
	} else {
		width := uint(imms) + 1
		pos := regsize - uint(immr)
		v = (src & mask(width)) << pos
		if signed && src>>imms&1 == 1 {
			v |= ^mask(pos + width)
		}
	}
	if regsize == 32 {
		v = uint64(uint32(v))
	}
	return v
}

func divide(signed bool, a, b uint64, sf bool) uint64 {
	if !sf {
		a, b = uint64(uint32(a)), uint64(uint32(b))
		if signed {
			x, y := int32(uint32(a)), int32(uint32(b))
			if y == 0 {
				return 0
			}
			if x == math.MinInt32 && y == -1 {
				return uint64(uint32(x))
			}
			return uint64(uint32(x / y))
		}
		if b == 0 {
			return 0
		}
		return a / b
	}
	if signed {
		x, y := int64(a), int64(b)
		if y == 0 {
			return 0
		}
		if x == math.MinInt64 && y == -1 {
			return a
		}
		return uint64(x / y)
	}
	if b == 0 {
		return 0
	}
	return a / b
}

// fr reads an FP register at the instruction's precision as float64.
func (m *Machine) fr(r uint8, dbl bool) float64 {
	if dbl {
		return math.Float64frombits(m.F[r])
	}
	return float64(math.Float32frombits(uint32(m.F[r])))
}

// setF writes an FP register at the instruction's precision.
func (m *Machine) setF(r uint8, v float64, dbl bool) {
	if dbl {
		m.F[r] = math.Float64bits(v)
	} else {
		m.F[r] = uint64(math.Float32bits(float32(v)))
	}
}

func (m *Machine) fpBin(i *Inst) {
	a, b := m.fr(i.Rn, i.Dbl), m.fr(i.Rm, i.Dbl)
	var r float64
	switch i.Op {
	case FADD:
		r = a + b
	case FSUB:
		r = a - b
	case FMUL:
		r = a * b
	case FDIV:
		r = a / b
	case FNMUL:
		r = -(a * b)
	case FMAX:
		r = fmax64(a, b)
	case FMIN:
		r = fmin64(a, b)
	}
	if !i.Dbl {
		r = float64(float32(r))
	}
	m.setF(i.Rd, r, i.Dbl)
}

func (m *Machine) fpUn(i *Inst) {
	switch i.Op {
	case FMOVr:
		if i.Dbl {
			m.F[i.Rd] = m.F[i.Rn]
		} else {
			m.F[i.Rd] = uint64(uint32(m.F[i.Rn]))
		}
		return
	case FCVTsd: // double -> single
		m.setF(i.Rd, m.fr(i.Rn, true), false)
		return
	case FCVTds: // single -> double
		m.setF(i.Rd, m.fr(i.Rn, false), true)
		return
	}
	v := m.fr(i.Rn, i.Dbl)
	switch i.Op {
	case FABS:
		v = math.Abs(v)
	case FNEG:
		v = -v
	case FSQRT:
		v = math.Sqrt(v)
	}
	m.setF(i.Rd, v, i.Dbl)
}

func fmin64(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a < b || (a == 0 && b == 0 && math.Signbit(a)):
		return a
	default:
		return b
	}
}

func fmax64(a, b float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return math.NaN()
	case a > b || (a == 0 && b == 0 && !math.Signbit(a)):
		return a
	default:
		return b
	}
}

func satS32(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

func satU32(v float64) uint32 {
	switch {
	case math.IsNaN(v), v <= 0:
		return 0
	case v >= math.MaxUint32:
		return math.MaxUint32
	default:
		return uint32(v)
	}
}

func satS64(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(v)
	}
}

func satU64(v float64) uint64 {
	switch {
	case math.IsNaN(v), v <= 0:
		return 0
	case v >= math.MaxUint64:
		return math.MaxUint64
	default:
		return uint64(v)
	}
}

// loadStore executes single-register loads and stores in every
// addressing mode.
func (m *Machine) loadStore(i *Inst, ev *isa.Event) error {
	var addr uint64
	addSPSrc(ev, i.Rn)
	switch i.Mode {
	case ModeUImm:
		addr = m.X[i.Rn] + uint64(i.Imm)
	case ModePost:
		addr = m.X[i.Rn]
		m.X[i.Rn] += uint64(i.Imm)
		addSPDst(ev, i.Rn)
	case ModePre:
		addr = m.X[i.Rn] + uint64(i.Imm)
		m.X[i.Rn] = addr
		addSPDst(ev, i.Rn)
	case ModeReg:
		addSrc(ev, i.Rm)
		addr = m.X[i.Rn] + m.xr(i.Rm)<<i.ShiftAmt
	}

	if i.Op == STR {
		ev.StoreAddr, ev.StoreSize = addr, i.Size
		if i.FP {
			addFSrc(ev, i.Rd)
			if i.Size == 8 {
				return m.Mem.Write64(addr, m.F[i.Rd])
			}
			return m.Mem.Write32(addr, uint32(m.F[i.Rd]))
		}
		addSrc(ev, i.Rd)
		v := m.xr(i.Rd)
		switch i.Size {
		case 1:
			return m.Mem.Write8(addr, uint8(v))
		case 2:
			return m.Mem.Write16(addr, uint16(v))
		case 4:
			return m.Mem.Write32(addr, uint32(v))
		default:
			return m.Mem.Write64(addr, v)
		}
	}

	ev.LoadAddr, ev.LoadSize = addr, i.Size
	if i.FP {
		if i.Size == 8 {
			v, err := m.Mem.Read64(addr)
			if err != nil {
				return err
			}
			m.F[i.Rd] = v
		} else {
			v, err := m.Mem.Read32(addr)
			if err != nil {
				return err
			}
			m.F[i.Rd] = uint64(v)
		}
		addFDst(ev, i.Rd)
		return nil
	}
	var v uint64
	var err error
	switch i.Size {
	case 1:
		var b uint8
		b, err = m.Mem.Read8(addr)
		v = uint64(b)
	case 2:
		var h uint16
		h, err = m.Mem.Read16(addr)
		v = uint64(h)
	case 4:
		var w uint32
		w, err = m.Mem.Read32(addr)
		if i.Op == LDRSW {
			v = uint64(int64(int32(w)))
		} else {
			v = uint64(w)
		}
	default:
		v, err = m.Mem.Read64(addr)
	}
	if err != nil {
		return err
	}
	if i.Rd != ZR {
		m.X[i.Rd] = v
	}
	addDst(ev, i.Rd)
	return nil
}

// loadStorePair executes LDP/STP. The event reports the full two-
// register span as a single access.
func (m *Machine) loadStorePair(i *Inst, ev *isa.Event) error {
	var addr uint64
	addSPSrc(ev, i.Rn)
	switch i.Mode {
	case ModeUImm:
		addr = m.X[i.Rn] + uint64(i.Imm)
	case ModePost:
		addr = m.X[i.Rn]
		m.X[i.Rn] += uint64(i.Imm)
		addSPDst(ev, i.Rn)
	case ModePre:
		addr = m.X[i.Rn] + uint64(i.Imm)
		m.X[i.Rn] = addr
		addSPDst(ev, i.Rn)
	default:
		return fmt.Errorf("a64: pair with register offset")
	}
	sz := uint64(i.Size)
	if i.Op == STP {
		ev.StoreAddr, ev.StoreSize = addr, i.Size*2
		write := func(off uint64, r uint8) error {
			if i.FP {
				addFSrc(ev, r)
				if i.Size == 8 {
					return m.Mem.Write64(addr+off, m.F[r])
				}
				return m.Mem.Write32(addr+off, uint32(m.F[r]))
			}
			addSrc(ev, r)
			if i.Size == 8 {
				return m.Mem.Write64(addr+off, m.xr(r))
			}
			return m.Mem.Write32(addr+off, uint32(m.xr(r)))
		}
		if err := write(0, i.Rd); err != nil {
			return err
		}
		return write(sz, i.Rt2)
	}
	ev.LoadAddr, ev.LoadSize = addr, i.Size*2
	read := func(off uint64, r uint8) error {
		if i.FP {
			if i.Size == 8 {
				v, err := m.Mem.Read64(addr + off)
				if err != nil {
					return err
				}
				m.F[r] = v
			} else {
				v, err := m.Mem.Read32(addr + off)
				if err != nil {
					return err
				}
				m.F[r] = uint64(v)
			}
			addFDst(ev, r)
			return nil
		}
		if i.Size == 8 {
			v, err := m.Mem.Read64(addr + off)
			if err != nil {
				return err
			}
			if r != ZR {
				m.X[r] = v
			}
		} else {
			v, err := m.Mem.Read32(addr + off)
			if err != nil {
				return err
			}
			if r != ZR {
				m.X[r] = uint64(v)
			}
		}
		addDst(ev, r)
		return nil
	}
	if err := read(0, i.Rd); err != nil {
		return err
	}
	return read(sz, i.Rt2)
}

// svc dispatches the Linux system calls via x8.
func (m *Machine) svc() (done bool, err error) {
	switch m.X[regX8] {
	case sysExit:
		m.exited = true
		m.exitCode = int64(m.X[regX0])
		m.steps++
		return true, nil
	case sysWrite:
		buf, rerr := m.Mem.ReadBytes(m.X[regX1], int(m.X[regX2]))
		if rerr != nil {
			return false, rerr
		}
		n, werr := m.Stdout.Write(buf)
		if werr != nil {
			return false, werr
		}
		m.X[regX0] = uint64(n)
		return false, nil
	case sysBrk:
		req := m.X[regX0]
		if req != 0 && req >= m.Mem.Base() && req < m.Mem.Base()+m.Mem.Size() {
			m.Mem.SetBrk(req)
		}
		m.X[regX0] = m.Mem.Brk()
		return false, nil
	default:
		return false, fmt.Errorf("a64: unsupported syscall %d at %#x", m.X[regX8], m.PCReg)
	}
}

// OpGroup returns the latency class of an instruction.
func OpGroup(i *Inst) isa.Group {
	switch i.Op {
	case LDR, LDRSW, LDP:
		return isa.GroupLoad
	case STR, STP:
		return isa.GroupStore
	case B, BL, Bcond, CBZ, CBNZ, BR, BLR, RET:
		return isa.GroupBranch
	case MADD, MSUB:
		return isa.GroupIntMul
	case SDIV, UDIV:
		return isa.GroupIntDiv
	case FADD, FSUB:
		return isa.GroupFPAdd
	case FMUL, FNMUL:
		return isa.GroupFPMul
	case FMADD, FMSUB, FNMADD, FNMSUB:
		return isa.GroupFPFMA
	case FDIV:
		return isa.GroupFPDiv
	case FSQRT:
		return isa.GroupFPSqrt
	case FMOVr, FABS, FNEG, FMAX, FMIN, FCMP, FCMPE, FCSEL, FMOVi:
		return isa.GroupFPSimple
	case FCVTsd, FCVTds, SCVTF, UCVTF, FCVTZS, FCVTZU, FMOVxf, FMOVfx:
		return isa.GroupFPCvt
	case SVC, NOP:
		return isa.GroupSystem
	default:
		return isa.GroupIntSimple
	}
}
