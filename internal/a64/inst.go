// Package a64 implements the scalar subset of the Armv8-a AArch64
// instruction set that the paper studies (-march=armv8-a+nosimd): an
// assembler/encoder, a decoder, a disassembler and an architectural
// executor with full NZCV flag semantics and the addressing modes the
// paper's analysis turns on (register-offset with shift, pre/post
// indexing, register pairs).
package a64

import "fmt"

// Op enumerates the supported operations. Integer operations carry a
// separate Sf (64-bit) flag in Inst; FP operations carry Dbl.
type Op uint16

// Operations.
const (
	OpInvalid Op = iota

	// Data processing, immediate.
	ADDi  // add  Rd, Rn, #imm{, lsl #12}
	ADDSi // adds Rd, Rn, #imm (cmn alias when Rd=zr)
	SUBi  // sub  Rd, Rn, #imm
	SUBSi // subs Rd, Rn, #imm (cmp alias when Rd=zr)
	ANDi  // and  Rd, Rn, #bimm
	ORRi  // orr  Rd, Rn, #bimm
	EORi  // eor  Rd, Rn, #bimm
	ANDSi // ands Rd, Rn, #bimm (tst alias)
	MOVZ  // movz Rd, #imm16, lsl #(hw*16)
	MOVN  // movn Rd, #imm16, lsl #(hw*16)
	MOVK  // movk Rd, #imm16, lsl #(hw*16)
	SBFM  // sbfm Rd, Rn, #immr, #imms (asr/sxtw aliases)
	UBFM  // ubfm Rd, Rn, #immr, #imms (lsl/lsr aliases)

	// Data processing, register.
	ADDr  // add  Rd, Rn, Rm{, shift #amt}
	ADDSr // adds
	SUBr  // sub
	SUBSr // subs (cmp alias when Rd=zr)
	ANDr  // and
	ORRr  // orr (mov alias when Rn=zr)
	EORr  // eor
	ANDSr // ands
	BICr  // bic
	MADD  // madd Rd, Rn, Rm, Ra (mul alias when Ra=zr)
	MSUB  // msub (mneg alias)
	SDIV
	UDIV
	LSLV
	LSRV
	ASRV
	CSEL  // csel Rd, Rn, Rm, cond
	CSINC // csinc (cset/cinc aliases)
	CSINV
	CSNEG

	// Branches and system.
	B     // b label
	BL    // bl label
	Bcond // b.cond label
	CBZ
	CBNZ
	BR
	BLR
	RET
	SVC
	NOP

	// Loads and stores (integer or FP selected by Inst.FP; width by
	// Inst.Size; addressing mode by Inst.Mode).
	LDR // also ldrb/ldrh/ldr w via Size
	STR
	LDRSW // ldrsw Xt, [..] (32-bit load, sign-extended)
	LDP
	STP

	// Floating point (scalar; Inst.Dbl selects S/D).
	FADD
	FSUB
	FMUL
	FDIV
	FNMUL
	FMAX
	FMIN
	FMOVr // fmov Fd, Fn
	FABS
	FNEG
	FSQRT
	FCVTds // fcvt Dd, Sn (single to double)
	FCVTsd // fcvt Sd, Dn (double to single)
	FCMP
	FCMPE
	FCSEL
	SCVTF // scvtf Fd, Xn
	UCVTF
	FCVTZS // fcvtzs Xd, Fn
	FCVTZU
	FMOVxf // fmov Xd, Dn / Wd, Sn (FP to int bits)
	FMOVfx // fmov Dd, Xn / Sd, Wn
	FMOVi  // fmov Fd, #imm8
	FMADD  // fmadd Fd, Fn, Fm, Fa
	FMSUB
	FNMADD
	FNMSUB

	numOps
)

// Cond is an AArch64 condition code.
type Cond uint8

// Condition codes.
const (
	EQ Cond = iota
	NE
	CS
	CC
	MI
	PL
	VS
	VC
	HI
	LS
	GE
	LT
	GT
	LE
	AL
	NV
)

var condNames = [16]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

// String returns the mnemonic suffix for the condition.
func (c Cond) String() string { return condNames[c&15] }

// Invert returns the opposite condition.
func (c Cond) Invert() Cond { return c ^ 1 }

// Shift identifies the shift type of a shifted-register operand.
type Shift uint8

// Shift kinds for shifted-register forms.
const (
	LSL Shift = iota
	LSR
	ASR
	ROR // logical ops only
)

var shiftNames = [4]string{"lsl", "lsr", "asr", "ror"}

// String returns the shift mnemonic.
func (s Shift) String() string { return shiftNames[s&3] }

// AddrMode selects the addressing mode of a load or store.
type AddrMode uint8

// Addressing modes.
const (
	// ModeUImm is base plus scaled unsigned immediate: [Xn, #imm].
	ModeUImm AddrMode = iota
	// ModePost is post-index: [Xn], #imm.
	ModePost
	// ModePre is pre-index: [Xn, #imm]!.
	ModePre
	// ModeReg is register offset: [Xn, Xm{, lsl #amt}].
	ModeReg
)

// Inst is a decoded AArch64 instruction.
type Inst struct {
	Op Op

	// Rd, Rn, Rm, Ra are register fields; meaning 31 depends on
	// context (SP for addressing and add/sub immediate, otherwise the
	// zero register).
	Rd, Rn, Rm, Ra uint8
	// Rt2 is the second register of LDP/STP.
	Rt2 uint8

	// Sf selects 64-bit (true) or 32-bit (false) integer operation.
	Sf bool
	// Dbl selects double (true) or single (false) precision FP.
	Dbl bool
	// FP marks a load/store touching the FP register file.
	FP bool
	// Size is the access width in bytes for loads/stores (1, 2, 4, 8).
	Size uint8
	// Mode is the addressing mode for loads/stores.
	Mode AddrMode

	// Imm carries the immediate: add/sub value, move-wide imm16,
	// branch byte offset, load/store offset, shift amount for
	// shifted-register forms, or the raw bitmask-immediate value for
	// logical immediates.
	Imm int64
	// ShiftHi marks the 'lsl #12' form of add/sub immediate.
	ShiftHi bool
	// Hw is the half-word index of move-wide immediates.
	Hw uint8
	// ImmR, ImmS are the bitfield positions of SBFM/UBFM.
	ImmR, ImmS uint8
	// ShiftKind and ShiftAmt describe shifted-register operands; for
	// ModeReg loads/stores ShiftAmt is the index shift (0 or log2 size).
	ShiftKind Shift
	ShiftAmt  uint8
	// Cond is the condition for Bcond, CSEL-family and FCSEL.
	Cond Cond
}

// Name returns the base mnemonic of the operation.
func (op Op) Name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

// String implements fmt.Stringer.
func (op Op) String() string { return op.Name() }

var opNames = [numOps]string{
	ADDi: "add", ADDSi: "adds", SUBi: "sub", SUBSi: "subs",
	ANDi: "and", ORRi: "orr", EORi: "eor", ANDSi: "ands",
	MOVZ: "movz", MOVN: "movn", MOVK: "movk",
	SBFM: "sbfm", UBFM: "ubfm",
	ADDr: "add", ADDSr: "adds", SUBr: "sub", SUBSr: "subs",
	ANDr: "and", ORRr: "orr", EORr: "eor", ANDSr: "ands", BICr: "bic",
	MADD: "madd", MSUB: "msub", SDIV: "sdiv", UDIV: "udiv",
	LSLV: "lsl", LSRV: "lsr", ASRV: "asr",
	CSEL: "csel", CSINC: "csinc", CSINV: "csinv", CSNEG: "csneg",
	B: "b", BL: "bl", Bcond: "b.", CBZ: "cbz", CBNZ: "cbnz",
	BR: "br", BLR: "blr", RET: "ret", SVC: "svc", NOP: "nop",
	LDR: "ldr", STR: "str", LDRSW: "ldrsw", LDP: "ldp", STP: "stp",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FNMUL: "fnmul", FMAX: "fmax", FMIN: "fmin",
	FMOVr: "fmov", FABS: "fabs", FNEG: "fneg", FSQRT: "fsqrt",
	FCVTds: "fcvt", FCVTsd: "fcvt", FCMP: "fcmp", FCMPE: "fcmpe",
	FCSEL: "fcsel", SCVTF: "scvtf", UCVTF: "ucvtf",
	FCVTZS: "fcvtzs", FCVTZU: "fcvtzu",
	FMOVxf: "fmov", FMOVfx: "fmov", FMOVi: "fmov",
	FMADD: "fmadd", FMSUB: "fmsub", FNMADD: "fnmadd", FNMSUB: "fnmsub",
}

// ZR is the encoding of the zero register (and of SP in addressing
// contexts).
const ZR = 31
