package a64

import "math/bits"

// AArch64 logical-immediate ("bitmask immediate") encoding. A bitmask
// immediate is a pattern of identical elements of size 2, 4, 8, 16, 32
// or 64 bits, each element containing a contiguous run of ones,
// rotated. This file converts between the (N, immr, imms) fields and
// the 64-bit value they denote.

// DecodeBitmask expands (n, immr, imms) into the immediate value for
// the given register width. ok is false for reserved encodings.
func DecodeBitmask(n, immr, imms uint8, is64 bool) (uint64, bool) {
	// Element size: highest set bit of {N, NOT(imms)} picks the length.
	combined := uint32(n)<<6 | uint32(^imms&0x3f)
	if combined == 0 {
		return 0, false
	}
	len := 31 - bits.LeadingZeros32(combined)
	if len < 1 {
		return 0, false
	}
	esize := uint(1) << uint(len)
	if !is64 && esize == 64 {
		return 0, false
	}
	levels := uint8(esize - 1)
	s := imms & levels
	r := immr & levels
	if s == levels {
		return 0, false // all-ones element is reserved
	}
	// Element: (s+1) ones, rotated right by r.
	welem := uint64(1)<<(s+1) - 1
	if r != 0 {
		welem = welem>>r | welem<<(esize-uint(r))
		if esize < 64 {
			welem &= uint64(1)<<esize - 1
		}
	}
	// Replicate to 64 bits.
	out := welem
	for sz := esize; sz < 64; sz *= 2 {
		out |= out << sz
	}
	if !is64 {
		out &= 0xffffffff
	}
	return out, true
}

// EncodeBitmask finds the (n, immr, imms) fields encoding v for the
// given register width, or ok=false if v is not a bitmask immediate.
func EncodeBitmask(v uint64, is64 bool) (n, immr, imms uint8, ok bool) {
	if !is64 {
		if v>>32 != 0 {
			return 0, 0, 0, false
		}
		v |= v << 32 // replicate so the 64-bit search applies
	}
	if v == 0 || v == ^uint64(0) {
		return 0, 0, 0, false
	}
	// Find the smallest element size whose replication yields v.
	for esize := uint(2); esize <= 64; esize *= 2 {
		if esize == 64 && !is64 {
			break
		}
		mask := uint64(1)<<esize - 1
		if esize == 64 {
			mask = ^uint64(0)
		}
		elem := v & mask
		// Check replication.
		repl := elem
		for sz := esize; sz < 64; sz *= 2 {
			repl |= repl << sz
		}
		if repl != v {
			continue
		}
		// elem must be a rotated run of ones.
		ones := uint8(bits.OnesCount64(elem))
		if ones == 0 || uint(ones) == esize {
			continue
		}
		// Rotate left until the run is right-aligned: elem ror r ==
		// (ones low bits). Find rotation r such that rotr(run, r) == elem,
		// i.e. rotl(elem, r) == run.
		run := uint64(1)<<ones - 1
		for r := uint(0); r < esize; r++ {
			rot := elem
			if r != 0 {
				rot = (elem<<r | elem>>(esize-r)) & mask
				if esize == 64 {
					rot = elem<<r | elem>>(64-r)
				}
			}
			if rot == run {
				immsVal := uint8(ones-1) | immsHiBits(esize)
				nVal := uint8(0)
				if esize == 64 {
					nVal = 1
				}
				return nVal, uint8(r), immsVal, true
			}
		}
	}
	return 0, 0, 0, false
}

// immsHiBits returns the fixed high bits of the imms field that encode
// the element size.
func immsHiBits(esize uint) uint8 {
	switch esize {
	case 2:
		return 0x3c // 1111 0x
	case 4:
		return 0x38 // 1110 xx
	case 8:
		return 0x30 // 110x xx
	case 16:
		return 0x20 // 10xx xx
	case 32:
		return 0x00 // 0xxx xx
	default: // 64
		return 0x00
	}
}
