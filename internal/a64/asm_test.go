package a64

import (
	"math/rand"
	"strings"
	"testing"
)

func TestUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.B("nowhere")
	if _, err := a.Assemble(0x10000); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabel(t *testing.T) {
	a := NewAsm()
	a.Label("x")
	a.NOP()
	a.Label("x")
	if _, err := a.Assemble(0x10000); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestBranchOffsets(t *testing.T) {
	a := NewAsm()
	a.Label("top")
	a.Bc(EQ, "bottom")
	a.NOP()
	a.CBNZx(1, "top")
	a.Label("bottom")
	a.NOP()
	words, err := a.Assemble(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Decode(words[0])
	if err != nil || bc.Imm != 12 {
		t.Fatalf("b.eq imm = %d (%v)", bc.Imm, err)
	}
	cb, err := Decode(words[2])
	if err != nil || cb.Imm != -8 {
		t.Fatalf("cbnz imm = %d (%v)", cb.Imm, err)
	}
}

func TestSymbolSizes(t *testing.T) {
	a := NewAsm()
	a.Symbol("first")
	a.NOP()
	a.NOP()
	a.Symbol("second")
	a.NOP()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Symbols) != 2 || f.Symbols[0].Size != 8 || f.Symbols[1].Value != 0x10008 {
		t.Fatalf("symbols: %+v", f.Symbols)
	}
}

// TestDisassemblySmoke: every encodable instruction must disassemble
// without panicking or leaking formatting errors.
func TestDisassemblySmoke(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		inst := randInst(r)
		s := inst.String()
		if s == "" || strings.Contains(s, "%!") {
			t.Fatalf("bad disassembly for %s %+v: %q", inst.Op.Name(), inst, s)
		}
	}
}

// TestDisassemblyDecodedSmoke: the decode side of every encoding must
// also print cleanly (covers alias selection paths).
func TestDisassemblyDecodedSmoke(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 5000; i++ {
		inst := randInst(r)
		w, err := Encode(inst)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if s := dec.String(); s == "" || strings.Contains(s, "%!") {
			t.Fatalf("bad disassembly: %q", s)
		}
	}
}

func TestMOV64InstructionCounts(t *testing.T) {
	cases := []struct {
		v   int64
		max int
	}{
		{0, 1},
		{42, 1},
		{-1, 1},      // movn
		{0xffff, 1},  // movz
		{0x10000, 1}, // movz lsl 16
		{0x12345, 2}, // movz+movk
		{-42, 1},     // movn
		{1 << 40, 1}, // movz lsl (40 rounds to hw 2: 1<<40 has hw2=0x100: movz #256, lsl #32)
		{0x123456789A, 3},
	}
	for _, c := range cases {
		a := NewAsm()
		a.MOV64(5, c.v)
		if a.Len() > c.max {
			t.Errorf("MOV64(%#x) used %d instructions, want <= %d", c.v, a.Len(), c.max)
		}
	}
}

func TestCondInvert(t *testing.T) {
	pairs := map[Cond]Cond{EQ: NE, CS: CC, MI: PL, VS: VC, HI: LS, GE: LT, GT: LE}
	for c, inv := range pairs {
		if c.Invert() != inv {
			t.Errorf("%v.Invert() = %v, want %v", c, c.Invert(), inv)
		}
		if inv.Invert() != c {
			t.Errorf("%v.Invert() = %v, want %v", inv, inv.Invert(), c)
		}
	}
}

func TestShiftNames(t *testing.T) {
	if LSL.String() != "lsl" || ASR.String() != "asr" || ROR.String() != "ror" {
		t.Fatal("shift names wrong")
	}
}

func TestFMOVimmFallback(t *testing.T) {
	a := NewAsm()
	if a.FMOVimm(0, 0.1) {
		t.Fatal("0.1 should not be fmov-encodable")
	}
	if a.Len() != 0 {
		t.Fatal("failed FMOVimm emitted instructions")
	}
	if !a.FMOVimm(0, 2.0) {
		t.Fatal("2.0 should be fmov-encodable")
	}
	if a.Len() != 1 {
		t.Fatal("FMOVimm should emit exactly one instruction")
	}
}
