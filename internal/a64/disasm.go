package a64

import (
	"fmt"
	"math"
	"strings"
)

// xName names a 64-bit integer register in a zero-register context.
func xName(r uint8, sf bool) string {
	c := "x"
	if !sf {
		c = "w"
	}
	if r == ZR {
		return c + "zr"
	}
	return fmt.Sprintf("%s%d", c, r)
}

// spName names a register in an SP context.
func spName(r uint8) string {
	if r == ZR {
		return "sp"
	}
	return fmt.Sprintf("x%d", r)
}

// fName names an FP register of the instruction's precision.
func fName(r uint8, dbl bool) string {
	c := "s"
	if dbl {
		c = "d"
	}
	return fmt.Sprintf("%s%d", c, r)
}

// memOperand renders the addressing-mode operand of a load or store.
func (i Inst) memOperand() string {
	switch i.Mode {
	case ModeUImm:
		if i.Imm == 0 {
			return fmt.Sprintf("[%s]", spName(i.Rn))
		}
		return fmt.Sprintf("[%s, #%d]", spName(i.Rn), i.Imm)
	case ModePost:
		return fmt.Sprintf("[%s], #%d", spName(i.Rn), i.Imm)
	case ModePre:
		return fmt.Sprintf("[%s, #%d]!", spName(i.Rn), i.Imm)
	case ModeReg:
		if i.ShiftAmt != 0 {
			return fmt.Sprintf("[%s, %s, lsl #%d]", spName(i.Rn), xName(i.Rm, true), i.ShiftAmt)
		}
		return fmt.Sprintf("[%s, %s]", spName(i.Rn), xName(i.Rm, true))
	}
	return "[?]"
}

// ldrMnemonic picks the width-qualified mnemonic for integer accesses.
func (i Inst) ldrMnemonic() string {
	base := i.Op.Name()
	if i.FP || i.Op == LDRSW || i.Op == LDP || i.Op == STP {
		return base
	}
	switch i.Size {
	case 1:
		return base + "b"
	case 2:
		return base + "h"
	}
	return base
}

// targetReg renders the transferred register of a load/store.
func (i Inst) targetReg(r uint8) string {
	if i.FP {
		return fName(r, i.Size == 8)
	}
	return xName(r, i.Size == 8)
}

// String disassembles the instruction in conventional syntax, using
// aliases (cmp, mov, lsl, mul, cset) where GNU tools would.
func (i Inst) String() string {
	shiftSuffix := func() string {
		if i.ShiftAmt == 0 {
			return ""
		}
		return fmt.Sprintf(", %s #%d", i.ShiftKind, i.ShiftAmt)
	}
	switch i.Op {
	case ADDi, SUBi:
		n := i.Op.Name()
		sh := ""
		if i.ShiftHi {
			sh = ", lsl #12"
		}
		if i.Imm == 0 && !i.ShiftHi && (i.Rd == ZR || i.Rn == ZR) {
			return fmt.Sprintf("mov %s, %s", spName(i.Rd), spName(i.Rn))
		}
		return fmt.Sprintf("%s %s, %s, #%d%s", n, spName(i.Rd), spName(i.Rn), i.Imm, sh)
	case ADDSi, SUBSi:
		sh := ""
		if i.ShiftHi {
			sh = ", lsl #12"
		}
		if i.Rd == ZR {
			alias := "cmp"
			if i.Op == ADDSi {
				alias = "cmn"
			}
			return fmt.Sprintf("%s %s, #%d%s", alias, xName(i.Rn, i.Sf), i.Imm, sh)
		}
		return fmt.Sprintf("%s %s, %s, #%d%s", i.Op.Name(), xName(i.Rd, i.Sf), spName(i.Rn), i.Imm, sh)
	case ANDi, ORRi, EORi, ANDSi:
		if i.Op == ANDSi && i.Rd == ZR {
			return fmt.Sprintf("tst %s, #%#x", xName(i.Rn, i.Sf), uint64(i.Imm))
		}
		return fmt.Sprintf("%s %s, %s, #%#x", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), uint64(i.Imm))
	case MOVZ:
		if i.Hw == 0 {
			return fmt.Sprintf("mov %s, #%d", xName(i.Rd, i.Sf), i.Imm)
		}
		return fmt.Sprintf("movz %s, #%d, lsl #%d", xName(i.Rd, i.Sf), i.Imm, int(i.Hw)*16)
	case MOVN:
		return fmt.Sprintf("movn %s, #%d, lsl #%d", xName(i.Rd, i.Sf), i.Imm, int(i.Hw)*16)
	case MOVK:
		return fmt.Sprintf("movk %s, #%d, lsl #%d", xName(i.Rd, i.Sf), i.Imm, int(i.Hw)*16)
	case SBFM, UBFM:
		lim := uint8(31)
		if i.Sf {
			lim = 63
		}
		// Common aliases.
		if i.Op == UBFM && i.ImmS == lim {
			return fmt.Sprintf("lsr %s, %s, #%d", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), i.ImmR)
		}
		if i.Op == UBFM && i.ImmS+1 == i.ImmR {
			return fmt.Sprintf("lsl %s, %s, #%d", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), lim-i.ImmS)
		}
		if i.Op == SBFM && i.ImmS == lim {
			return fmt.Sprintf("asr %s, %s, #%d", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), i.ImmR)
		}
		if i.Op == SBFM && i.Sf && i.ImmR == 0 && i.ImmS == 31 {
			return fmt.Sprintf("sxtw %s, w%d", xName(i.Rd, true), i.Rn)
		}
		return fmt.Sprintf("%s %s, %s, #%d, #%d", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), i.ImmR, i.ImmS)
	case ADDr, SUBr, ANDr, EORr, ANDSr, BICr:
		return fmt.Sprintf("%s %s, %s, %s%s", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), shiftSuffix())
	case ORRr:
		if i.Rn == ZR && i.ShiftAmt == 0 {
			return fmt.Sprintf("mov %s, %s", xName(i.Rd, i.Sf), xName(i.Rm, i.Sf))
		}
		return fmt.Sprintf("orr %s, %s, %s%s", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), shiftSuffix())
	case ADDSr, SUBSr:
		if i.Rd == ZR {
			alias := "cmp"
			if i.Op == ADDSr {
				alias = "cmn"
			}
			return fmt.Sprintf("%s %s, %s%s", alias, xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), shiftSuffix())
		}
		return fmt.Sprintf("%s %s, %s, %s%s", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), shiftSuffix())
	case MADD:
		if i.Ra == ZR {
			return fmt.Sprintf("mul %s, %s, %s", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf))
		}
		return fmt.Sprintf("madd %s, %s, %s, %s", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), xName(i.Ra, i.Sf))
	case MSUB:
		return fmt.Sprintf("msub %s, %s, %s, %s", xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), xName(i.Ra, i.Sf))
	case SDIV, UDIV, LSLV, LSRV, ASRV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf))
	case CSEL, CSINC, CSINV, CSNEG:
		if i.Op == CSINC && i.Rn == ZR && i.Rm == ZR {
			return fmt.Sprintf("cset %s, %s", xName(i.Rd, i.Sf), i.Cond.Invert())
		}
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op.Name(), xName(i.Rd, i.Sf), xName(i.Rn, i.Sf), xName(i.Rm, i.Sf), i.Cond)
	case B, BL:
		return fmt.Sprintf("%s %+d", i.Op.Name(), i.Imm)
	case Bcond:
		return fmt.Sprintf("b.%s %+d", i.Cond, i.Imm)
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, %+d", i.Op.Name(), xName(i.Rd, i.Sf), i.Imm)
	case BR, BLR, RET:
		if i.Op == RET && i.Rn == 30 {
			return "ret"
		}
		return fmt.Sprintf("%s %s", i.Op.Name(), xName(i.Rn, true))
	case SVC:
		return fmt.Sprintf("svc #%d", i.Imm)
	case NOP:
		return "nop"
	case LDR, STR, LDRSW:
		return fmt.Sprintf("%s %s, %s", i.ldrMnemonic(), i.targetReg(i.Rd), i.memOperand())
	case LDP, STP:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), i.targetReg(i.Rd), i.targetReg(i.Rt2), i.memOperand())
	case FADD, FSUB, FMUL, FDIV, FNMUL, FMAX, FMIN:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), fName(i.Rd, i.Dbl), fName(i.Rn, i.Dbl), fName(i.Rm, i.Dbl))
	case FMOVr, FABS, FNEG, FSQRT:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), fName(i.Rd, i.Dbl), fName(i.Rn, i.Dbl))
	case FCVTsd:
		return fmt.Sprintf("fcvt %s, %s", fName(i.Rd, false), fName(i.Rn, true))
	case FCVTds:
		return fmt.Sprintf("fcvt %s, %s", fName(i.Rd, true), fName(i.Rn, false))
	case FCMP, FCMPE:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), fName(i.Rn, i.Dbl), fName(i.Rm, i.Dbl))
	case FCSEL:
		return fmt.Sprintf("fcsel %s, %s, %s, %s", fName(i.Rd, i.Dbl), fName(i.Rn, i.Dbl), fName(i.Rm, i.Dbl), i.Cond)
	case SCVTF, UCVTF:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), fName(i.Rd, i.Dbl), xName(i.Rn, i.Sf))
	case FCVTZS, FCVTZU:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), xName(i.Rd, i.Sf), fName(i.Rn, i.Dbl))
	case FMOVxf:
		return fmt.Sprintf("fmov %s, %s", xName(i.Rd, i.Sf), fName(i.Rn, i.Dbl))
	case FMOVfx:
		return fmt.Sprintf("fmov %s, %s", fName(i.Rd, i.Dbl), xName(i.Rn, i.Sf))
	case FMOVi:
		return fmt.Sprintf("fmov %s, #%s", fName(i.Rd, i.Dbl), trimFloat(math.Float64frombits(uint64(i.Imm))))
	case FMADD, FMSUB, FNMADD, FNMSUB:
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op.Name(), fName(i.Rd, i.Dbl), fName(i.Rn, i.Dbl), fName(i.Rm, i.Dbl), fName(i.Ra, i.Dbl))
	}
	return i.Op.Name()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s
}
