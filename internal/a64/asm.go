package a64

import (
	"fmt"
	"math"

	"isacmp/internal/elfio"
)

// Asm builds an AArch64 text section with label resolution and emits
// statically linked ELF executables; it is the compiler's back end and
// a tiny assembler for tests and examples.
type Asm struct {
	insts  []Inst
	fixups []fixup
	labels map[string]int
	syms   []symMark
	errs   []error
}

type fixup struct {
	index int
	label string
}

type symMark struct {
	name  string
	index int
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.insts) }

// Emit appends a raw instruction.
func (a *Asm) Emit(i Inst) { a.insts = append(a.insts, i) }

// Label defines name at the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("a64: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.insts)
}

// Symbol marks the current position as the start of a named region.
func (a *Asm) Symbol(name string) {
	a.syms = append(a.syms, symMark{name: name, index: len(a.insts)})
}

// Integer ALU helpers (64-bit forms; use Emit for 32-bit variants).

// ADD emits add xd, xn, xm.
func (a *Asm) ADD(rd, rn, rm uint8) { a.Emit(Inst{Op: ADDr, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// ADDshift emits add xd, xn, xm, <kind> #amt.
func (a *Asm) ADDshift(rd, rn, rm uint8, kind Shift, amt uint8) {
	a.Emit(Inst{Op: ADDr, Sf: true, Rd: rd, Rn: rn, Rm: rm, ShiftKind: kind, ShiftAmt: amt})
}

// SUB emits sub xd, xn, xm.
func (a *Asm) SUB(rd, rn, rm uint8) { a.Emit(Inst{Op: SUBr, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// ADDi emits add xd, xn, #imm.
func (a *Asm) ADDi(rd, rn uint8, imm int64) {
	a.Emit(Inst{Op: ADDi, Sf: true, Rd: rd, Rn: rn, Imm: imm})
}

// SUBi emits sub xd, xn, #imm.
func (a *Asm) SUBi(rd, rn uint8, imm int64) {
	a.Emit(Inst{Op: SUBi, Sf: true, Rd: rd, Rn: rn, Imm: imm})
}

// SUBiHi emits sub xd, xn, #imm, lsl #12.
func (a *Asm) SUBiHi(rd, rn uint8, imm int64) {
	a.Emit(Inst{Op: SUBi, Sf: true, Rd: rd, Rn: rn, Imm: imm, ShiftHi: true})
}

// SUBSi emits subs xd, xn, #imm.
func (a *Asm) SUBSi(rd, rn uint8, imm int64) {
	a.Emit(Inst{Op: SUBSi, Sf: true, Rd: rd, Rn: rn, Imm: imm})
}

// CMPi emits cmp xn, #imm (subs xzr, xn, #imm).
func (a *Asm) CMPi(rn uint8, imm int64) {
	a.Emit(Inst{Op: SUBSi, Sf: true, Rd: ZR, Rn: rn, Imm: imm})
}

// CMP emits cmp xn, xm.
func (a *Asm) CMP(rn, rm uint8) {
	a.Emit(Inst{Op: SUBSr, Sf: true, Rd: ZR, Rn: rn, Rm: rm})
}

// MUL emits mul xd, xn, xm (madd with xzr).
func (a *Asm) MUL(rd, rn, rm uint8) {
	a.Emit(Inst{Op: MADD, Sf: true, Rd: rd, Rn: rn, Rm: rm, Ra: ZR})
}

// MADD emits madd xd, xn, xm, xa.
func (a *Asm) MADD(rd, rn, rm, ra uint8) {
	a.Emit(Inst{Op: MADD, Sf: true, Rd: rd, Rn: rn, Rm: rm, Ra: ra})
}

// MSUB emits msub xd, xn, xm, xa.
func (a *Asm) MSUB(rd, rn, rm, ra uint8) {
	a.Emit(Inst{Op: MSUB, Sf: true, Rd: rd, Rn: rn, Rm: rm, Ra: ra})
}

// SDIV emits sdiv xd, xn, xm.
func (a *Asm) SDIV(rd, rn, rm uint8) { a.Emit(Inst{Op: SDIV, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// AND emits and xd, xn, xm.
func (a *Asm) AND(rd, rn, rm uint8) { a.Emit(Inst{Op: ANDr, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// ORR emits orr xd, xn, xm.
func (a *Asm) ORR(rd, rn, rm uint8) { a.Emit(Inst{Op: ORRr, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// EOR emits eor xd, xn, xm.
func (a *Asm) EOR(rd, rn, rm uint8) { a.Emit(Inst{Op: EORr, Sf: true, Rd: rd, Rn: rn, Rm: rm}) }

// ANDi emits and xd, xn, #bimm.
func (a *Asm) ANDi(rd, rn uint8, imm uint64) {
	a.Emit(Inst{Op: ANDi, Sf: true, Rd: rd, Rn: rn, Imm: int64(imm)})
}

// MOV emits mov xd, xm (orr xd, xzr, xm).
func (a *Asm) MOV(rd, rm uint8) { a.Emit(Inst{Op: ORRr, Sf: true, Rd: rd, Rn: ZR, Rm: rm}) }

// MOVSP emits mov xd, sp / mov sp, xn (add #0).
func (a *Asm) MOVSP(rd, rn uint8) { a.Emit(Inst{Op: ADDi, Sf: true, Rd: rd, Rn: rn}) }

// LSLi emits lsl xd, xn, #sh (ubfm alias).
func (a *Asm) LSLi(rd, rn uint8, sh uint8) {
	a.Emit(Inst{Op: UBFM, Sf: true, Rd: rd, Rn: rn, ImmR: (64 - sh) & 63, ImmS: 63 - sh})
}

// LSRi emits lsr xd, xn, #sh.
func (a *Asm) LSRi(rd, rn uint8, sh uint8) {
	a.Emit(Inst{Op: UBFM, Sf: true, Rd: rd, Rn: rn, ImmR: sh, ImmS: 63})
}

// ASRi emits asr xd, xn, #sh.
func (a *Asm) ASRi(rd, rn uint8, sh uint8) {
	a.Emit(Inst{Op: SBFM, Sf: true, Rd: rd, Rn: rn, ImmR: sh, ImmS: 63})
}

// CSET emits cset xd, cond (csinc xd, xzr, xzr, !cond).
func (a *Asm) CSET(rd uint8, c Cond) {
	a.Emit(Inst{Op: CSINC, Sf: true, Rd: rd, Rn: ZR, Rm: ZR, Cond: c.Invert()})
}

// CSEL emits csel xd, xn, xm, cond.
func (a *Asm) CSEL(rd, rn, rm uint8, c Cond) {
	a.Emit(Inst{Op: CSEL, Sf: true, Rd: rd, Rn: rn, Rm: rm, Cond: c})
}

// Loads and stores. Rt is the transferred register.

// LDRx emits ldr xt, [xn, #imm].
func (a *Asm) LDRx(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: LDR, Size: 8, Rd: rt, Rn: rn, Imm: imm})
}

// STRx emits str xt, [xn, #imm].
func (a *Asm) STRx(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: STR, Size: 8, Rd: rt, Rn: rn, Imm: imm})
}

// LDRro emits ldr xt, [xn, xm, lsl #3].
func (a *Asm) LDRro(rt, rn, rm uint8, shift uint8) {
	a.Emit(Inst{Op: LDR, Size: 8, Rd: rt, Rn: rn, Rm: rm, Mode: ModeReg, ShiftAmt: shift})
}

// LDRD emits ldr dt, [xn, #imm].
func (a *Asm) LDRD(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: LDR, Size: 8, FP: true, Rd: rt, Rn: rn, Imm: imm})
}

// STRD emits str dt, [xn, #imm].
func (a *Asm) STRD(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: STR, Size: 8, FP: true, Rd: rt, Rn: rn, Imm: imm})
}

// LDRDro emits ldr dt, [xn, xm, lsl #3].
func (a *Asm) LDRDro(rt, rn, rm uint8, shift uint8) {
	a.Emit(Inst{Op: LDR, Size: 8, FP: true, Rd: rt, Rn: rn, Rm: rm, Mode: ModeReg, ShiftAmt: shift})
}

// STRDro emits str dt, [xn, xm, lsl #3].
func (a *Asm) STRDro(rt, rn, rm uint8, shift uint8) {
	a.Emit(Inst{Op: STR, Size: 8, FP: true, Rd: rt, Rn: rn, Rm: rm, Mode: ModeReg, ShiftAmt: shift})
}

// LDRDpost emits ldr dt, [xn], #imm.
func (a *Asm) LDRDpost(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: LDR, Size: 8, FP: true, Rd: rt, Rn: rn, Imm: imm, Mode: ModePost})
}

// STRDpost emits str dt, [xn], #imm.
func (a *Asm) STRDpost(rt, rn uint8, imm int64) {
	a.Emit(Inst{Op: STR, Size: 8, FP: true, Rd: rt, Rn: rn, Imm: imm, Mode: ModePost})
}

// LDPx emits ldp xt, xt2, [xn, #imm].
func (a *Asm) LDPx(rt, rt2, rn uint8, imm int64) {
	a.Emit(Inst{Op: LDP, Size: 8, Rd: rt, Rt2: rt2, Rn: rn, Imm: imm})
}

// STPx emits stp xt, xt2, [xn, #imm].
func (a *Asm) STPx(rt, rt2, rn uint8, imm int64) {
	a.Emit(Inst{Op: STP, Size: 8, Rd: rt, Rt2: rt2, Rn: rn, Imm: imm})
}

// FP arithmetic (double precision).

// FADD emits fadd dd, dn, dm.
func (a *Asm) FADD(rd, rn, rm uint8) { a.Emit(Inst{Op: FADD, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FSUB emits fsub dd, dn, dm.
func (a *Asm) FSUB(rd, rn, rm uint8) { a.Emit(Inst{Op: FSUB, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FMUL emits fmul dd, dn, dm.
func (a *Asm) FMUL(rd, rn, rm uint8) { a.Emit(Inst{Op: FMUL, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FDIV emits fdiv dd, dn, dm.
func (a *Asm) FDIV(rd, rn, rm uint8) { a.Emit(Inst{Op: FDIV, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FSQRT emits fsqrt dd, dn.
func (a *Asm) FSQRT(rd, rn uint8) { a.Emit(Inst{Op: FSQRT, Dbl: true, Rd: rd, Rn: rn}) }

// FNEG emits fneg dd, dn.
func (a *Asm) FNEG(rd, rn uint8) { a.Emit(Inst{Op: FNEG, Dbl: true, Rd: rd, Rn: rn}) }

// FABS emits fabs dd, dn.
func (a *Asm) FABS(rd, rn uint8) { a.Emit(Inst{Op: FABS, Dbl: true, Rd: rd, Rn: rn}) }

// FMOV emits fmov dd, dn.
func (a *Asm) FMOV(rd, rn uint8) { a.Emit(Inst{Op: FMOVr, Dbl: true, Rd: rd, Rn: rn}) }

// FMIN emits fmin dd, dn, dm.
func (a *Asm) FMIN(rd, rn, rm uint8) { a.Emit(Inst{Op: FMIN, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FMAX emits fmax dd, dn, dm.
func (a *Asm) FMAX(rd, rn, rm uint8) { a.Emit(Inst{Op: FMAX, Dbl: true, Rd: rd, Rn: rn, Rm: rm}) }

// FMADD emits fmadd dd, dn, dm, da (dd = dn*dm + da).
func (a *Asm) FMADD(rd, rn, rm, ra uint8) {
	a.Emit(Inst{Op: FMADD, Dbl: true, Rd: rd, Rn: rn, Rm: rm, Ra: ra})
}

// FMSUB emits fmsub dd, dn, dm, da (dd = da - dn*dm).
func (a *Asm) FMSUB(rd, rn, rm, ra uint8) {
	a.Emit(Inst{Op: FMSUB, Dbl: true, Rd: rd, Rn: rn, Rm: rm, Ra: ra})
}

// FCMP emits fcmp dn, dm.
func (a *Asm) FCMP(rn, rm uint8) { a.Emit(Inst{Op: FCMP, Dbl: true, Rn: rn, Rm: rm}) }

// SCVTF emits scvtf dd, xn.
func (a *Asm) SCVTF(rd, rn uint8) { a.Emit(Inst{Op: SCVTF, Sf: true, Dbl: true, Rd: rd, Rn: rn}) }

// FCVTZS emits fcvtzs xd, dn.
func (a *Asm) FCVTZS(rd, rn uint8) { a.Emit(Inst{Op: FCVTZS, Sf: true, Dbl: true, Rd: rd, Rn: rn}) }

// FMOVDX emits fmov dd, xn.
func (a *Asm) FMOVDX(rd, rn uint8) { a.Emit(Inst{Op: FMOVfx, Sf: true, Dbl: true, Rd: rd, Rn: rn}) }

// FMOVXD emits fmov xd, dn.
func (a *Asm) FMOVXD(rd, rn uint8) { a.Emit(Inst{Op: FMOVxf, Sf: true, Dbl: true, Rd: rd, Rn: rn}) }

// Control flow.

// B emits an unconditional branch to a label.
func (a *Asm) B(label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label})
	a.Emit(Inst{Op: B})
}

// BL emits a branch-and-link to a label.
func (a *Asm) BL(label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label})
	a.Emit(Inst{Op: BL})
}

// Bc emits b.cond to a label.
func (a *Asm) Bc(c Cond, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label})
	a.Emit(Inst{Op: Bcond, Cond: c})
}

// CBZx emits cbz xt, label.
func (a *Asm) CBZx(rt uint8, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label})
	a.Emit(Inst{Op: CBZ, Sf: true, Rd: rt})
}

// CBNZx emits cbnz xt, label.
func (a *Asm) CBNZx(rt uint8, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label})
	a.Emit(Inst{Op: CBNZ, Sf: true, Rd: rt})
}

// RET emits ret (x30).
func (a *Asm) RET() { a.Emit(Inst{Op: RET, Rn: 30}) }

// SVC emits svc #0.
func (a *Asm) SVC() { a.Emit(Inst{Op: SVC}) }

// NOP emits nop.
func (a *Asm) NOP() { a.Emit(Inst{Op: NOP}) }

// MOV64 materialises a 64-bit constant with movz/movn + movk, like GNU
// as does for 'ldr xd, =imm' on small constants.
func (a *Asm) MOV64(rd uint8, v int64) {
	u := uint64(v)
	if u == 0 {
		a.Emit(Inst{Op: MOVZ, Sf: true, Rd: rd})
		return
	}
	// Count halfwords that differ from all-zero and all-one patterns.
	zeros, ones := 0, 0
	for hw := 0; hw < 4; hw++ {
		h := u >> (16 * hw) & 0xffff
		if h == 0 {
			zeros++
		}
		if h == 0xffff {
			ones++
		}
	}
	if ones > zeros {
		// Start from movn.
		started := false
		for hw := 0; hw < 4; hw++ {
			h := u >> (16 * hw) & 0xffff
			if !started {
				if h != 0xffff || hw == 3 {
					a.Emit(Inst{Op: MOVN, Sf: true, Rd: rd, Imm: int64(^h & 0xffff), Hw: uint8(hw)})
					started = true
				}
				continue
			}
			if h != 0xffff {
				a.Emit(Inst{Op: MOVK, Sf: true, Rd: rd, Imm: int64(h), Hw: uint8(hw)})
			}
		}
		return
	}
	started := false
	for hw := 0; hw < 4; hw++ {
		h := u >> (16 * hw) & 0xffff
		if h == 0 && !(hw == 3 && !started) {
			continue
		}
		if !started {
			a.Emit(Inst{Op: MOVZ, Sf: true, Rd: rd, Imm: int64(h), Hw: uint8(hw)})
			started = true
		} else {
			a.Emit(Inst{Op: MOVK, Sf: true, Rd: rd, Imm: int64(h), Hw: uint8(hw)})
		}
	}
}

// FMOVimm emits fmov dd, #v when v is representable, or returns false.
func (a *Asm) FMOVimm(rd uint8, v float64) bool {
	if _, ok := encodeFPImm8(v, true); !ok {
		return false
	}
	a.Emit(Inst{Op: FMOVi, Dbl: true, Rd: rd, Imm: int64(math.Float64bits(v))})
	return true
}

// Assemble resolves labels against the text base and encodes.
func (a *Asm) Assemble(base uint64) ([]uint32, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	insts := make([]Inst, len(a.insts))
	copy(insts, a.insts)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("a64: undefined label %q", f.label)
		}
		insts[f.index].Imm = int64(target-f.index) * 4
	}
	words := make([]uint32, len(insts))
	for i, inst := range insts {
		w, err := Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("a64: at %#x: %w", base+uint64(i*4), err)
		}
		words[i] = w
	}
	return words, nil
}

// Program bundles assembled text with a data image.
type Program struct {
	TextBase uint64
	DataBase uint64
	Data     []byte
}

// Build assembles the text and produces the ELF file.
func (a *Asm) Build(p Program) (*elfio.File, error) {
	words, err := a.Assemble(p.TextBase)
	if err != nil {
		return nil, err
	}
	text := make([]byte, len(words)*4)
	for i, w := range words {
		text[i*4] = byte(w)
		text[i*4+1] = byte(w >> 8)
		text[i*4+2] = byte(w >> 16)
		text[i*4+3] = byte(w >> 24)
	}
	f := &elfio.File{
		Machine: elfio.EMAarch64,
		Entry:   p.TextBase,
		Segments: []elfio.Segment{
			{Vaddr: p.TextBase, Data: text, Flags: elfio.PFR | elfio.PFX, Name: ".text"},
		},
	}
	if len(p.Data) > 0 {
		f.Segments = append(f.Segments, elfio.Segment{
			Vaddr: p.DataBase, Data: p.Data, Flags: elfio.PFR | elfio.PFW, Name: ".data",
		})
	}
	for i, s := range a.syms {
		end := len(a.insts)
		if i+1 < len(a.syms) {
			end = a.syms[i+1].index
		}
		f.Symbols = append(f.Symbols, elfio.Symbol{
			Name:  s.name,
			Value: p.TextBase + uint64(s.index*4),
			Size:  uint64((end - s.index) * 4),
		})
	}
	return f, nil
}
