package a64

import (
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

// run32 executes a hand-assembled sequence exercising 32-bit operand
// forms and returns the machine.
func run32(t *testing.T, build func(a *Asm)) *Machine {
	t.Helper()
	a := NewAsm()
	build(a)
	a.MOV64(0, 0)
	a.MOV64(8, sysExit)
	a.SVC()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 100000; i++ {
		done, err := m.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return m
		}
	}
	t.Fatal("no exit")
	return nil
}

func TestW32Arithmetic(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0xFFFFFFFF) // max uint32
		a.MOV64(2, 1)
		// add w3, w1, w2 -> wraps to 0, upper bits cleared
		a.Emit(Inst{Op: ADDr, Sf: false, Rd: 3, Rn: 1, Rm: 2})
		// sub w4, w2, w1 -> 2 in 32-bit arithmetic
		a.Emit(Inst{Op: SUBr, Sf: false, Rd: 4, Rn: 2, Rm: 1})
		// adds w5, w1, w2: carry out set
		a.Emit(Inst{Op: ADDSr, Sf: false, Rd: 5, Rn: 1, Rm: 2})
		a.CSET(6, CS)
	})
	if m.X[3] != 0 {
		t.Errorf("32-bit add wrap: %#x", m.X[3])
	}
	if m.X[4] != 2 {
		t.Errorf("32-bit sub: %#x", m.X[4])
	}
	if m.X[6] != 1 {
		t.Errorf("32-bit carry not set: cset=%d", m.X[6])
	}
}

func TestW32Flags(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0x7FFFFFFF) // MaxInt32
		a.MOV64(2, 1)
		// adds w3, w1, w2: signed overflow in 32 bits
		a.Emit(Inst{Op: ADDSr, Sf: false, Rd: 3, Rn: 1, Rm: 2})
		a.CSET(4, VS) // overflow
		a.CSET(5, MI) // negative (0x80000000)
		// The same addition in 64 bits overflows nothing.
		a.Emit(Inst{Op: ADDSr, Sf: true, Rd: 6, Rn: 1, Rm: 2})
		a.CSET(7, VS)
	})
	if m.X[4] != 1 {
		t.Error("32-bit signed overflow flag not set")
	}
	if m.X[5] != 1 {
		t.Error("32-bit negative flag not set")
	}
	if m.X[7] != 0 {
		t.Error("64-bit add wrongly flagged overflow")
	}
}

func TestW32Shifts(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0x80000000)
		a.MOV64(2, 31)
		// asrv w3, w1, w2: arithmetic shift of negative 32-bit value
		a.Emit(Inst{Op: ASRV, Sf: false, Rd: 3, Rn: 1, Rm: 2})
		// lsrv w4, w1, w2: logical
		a.Emit(Inst{Op: LSRV, Sf: false, Rd: 4, Rn: 1, Rm: 2})
		// lslv w5, w1, w2 with amount masked to 31
		a.MOV64(6, 1)
		a.Emit(Inst{Op: LSLV, Sf: false, Rd: 5, Rn: 6, Rm: 2})
	})
	if m.X[3] != 0xFFFFFFFF {
		t.Errorf("asr w: %#x (32-bit sign extension within W, zero upper)", m.X[3])
	}
	if m.X[4] != 1 {
		t.Errorf("lsr w: %#x", m.X[4])
	}
	if m.X[5] != 0x80000000 {
		t.Errorf("lsl w: %#x", m.X[5])
	}
}

func TestW32Divide(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0xFFFFFFFF) // -1 as int32
		a.MOV64(2, 2)
		// sdiv w3, w1, w2 = -1/2 = 0
		a.Emit(Inst{Op: SDIV, Sf: false, Rd: 3, Rn: 1, Rm: 2})
		// udiv w4, w1, w2 = 0x7FFFFFFF
		a.Emit(Inst{Op: UDIV, Sf: false, Rd: 4, Rn: 1, Rm: 2})
		// sdiv w5, w1, wzr = 0 (AArch64 division by zero)
		a.Emit(Inst{Op: SDIV, Sf: false, Rd: 5, Rn: 1, Rm: ZR})
	})
	if m.X[3] != 0 {
		t.Errorf("sdiv w -1/2: %#x", m.X[3])
	}
	if m.X[4] != 0x7FFFFFFF {
		t.Errorf("udiv w: %#x", m.X[4])
	}
	if m.X[5] != 0 {
		t.Errorf("sdiv w /0: %#x", m.X[5])
	}
}

func TestW32LoadsStores(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0x80000) // scratch inside memory image
		a.MOV64(2, 0xDEADBEEF)
		a.Emit(Inst{Op: STR, Size: 4, Rd: 2, Rn: 1})          // str w2, [x1]
		a.Emit(Inst{Op: LDR, Size: 4, Rd: 3, Rn: 1})          // ldr w3 (zero-extend)
		a.Emit(Inst{Op: LDRSW, Size: 4, Rd: 4, Rn: 1})        // ldrsw x4 (sign-extend)
		a.Emit(Inst{Op: STR, Size: 2, Rd: 2, Rn: 1, Imm: 8})  // strh
		a.Emit(Inst{Op: LDR, Size: 2, Rd: 5, Rn: 1, Imm: 8})  // ldrh
		a.Emit(Inst{Op: STR, Size: 1, Rd: 2, Rn: 1, Imm: 12}) // strb
		a.Emit(Inst{Op: LDR, Size: 1, Rd: 6, Rn: 1, Imm: 12}) // ldrb
	})
	if m.X[3] != 0xDEADBEEF {
		t.Errorf("ldr w: %#x", m.X[3])
	}
	if m.X[4] != 0xFFFFFFFFDEADBEEF {
		t.Errorf("ldrsw: %#x", m.X[4])
	}
	if m.X[5] != 0xBEEF {
		t.Errorf("ldrh: %#x", m.X[5])
	}
	if m.X[6] != 0xEF {
		t.Errorf("ldrb: %#x", m.X[6])
	}
}

func TestW32Bitfield(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0x80000000)
		// asr w2, w1, #4 (sbfm 32-bit)
		a.Emit(Inst{Op: SBFM, Sf: false, Rd: 2, Rn: 1, ImmR: 4, ImmS: 31})
		// lsr w3, w1, #4 (ubfm 32-bit)
		a.Emit(Inst{Op: UBFM, Sf: false, Rd: 3, Rn: 1, ImmR: 4, ImmS: 31})
	})
	if m.X[2] != 0xF8000000 {
		t.Errorf("asr w #4: %#x", m.X[2])
	}
	if m.X[3] != 0x08000000 {
		t.Errorf("lsr w #4: %#x", m.X[3])
	}
}

func TestW32CBZ(t *testing.T) {
	// cbz w: only the low 32 bits decide.
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 0x100000000) // non-zero in 64, zero in 32
		a.MOV64(2, 0)
		a.Emit(Inst{Op: CBZ, Sf: false, Rd: 1, Imm: 8}) // taken: w1 == 0
		a.MOV64(2, 99)                                  // skipped
		a.NOP()
	})
	if m.X[2] != 0 {
		t.Errorf("cbz w did not take: x2=%d", m.X[2])
	}
}

func TestSingle32FP(t *testing.T) {
	m := run32(t, func(a *Asm) {
		a.MOV64(1, 3)
		// scvtf s0, w1 (single precision from 32-bit int)
		a.Emit(Inst{Op: SCVTF, Sf: false, Dbl: false, Rd: 0, Rn: 1})
		// fadd s1, s0, s0 = 6.0f
		a.Emit(Inst{Op: FADD, Dbl: false, Rd: 1, Rn: 0, Rm: 0})
		// fcvt d2, s1
		a.Emit(Inst{Op: FCVTds, Dbl: false, Rd: 2, Rn: 1})
		// fcvtzs x3, d2
		a.FCVTZS(3, 2)
	})
	if m.X[3] != 6 {
		t.Errorf("single-precision chain = %d, want 6", m.X[3])
	}
}
