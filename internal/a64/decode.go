package a64

import (
	"fmt"
	"math"
)

// DecodeError reports a word that is not a supported AArch64
// instruction.
type DecodeError struct {
	Word uint32
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("a64: cannot decode %#08x", e.Word)
}

// DecodeFault marks the error for the engine's failure taxonomy
// (simeng classifies it as ErrDecode without importing this package).
func (e *DecodeError) DecodeFault() {}

func bitfield(w uint32, hi, lo uint) uint32 { return w >> lo & (1<<(hi-lo+1) - 1) }

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode parses a 32-bit word into an Inst. It is the inverse of
// Encode over the supported subset.
func Decode(w uint32) (Inst, error) {
	sf := w>>31 == 1

	switch {
	case w == 0xD503201F:
		return Inst{Op: NOP}, nil
	case w&0xFFE0001F == 0xD4000001:
		return Inst{Op: SVC, Imm: int64(bitfield(w, 20, 5))}, nil
	case w&0xFFFFFC1F == 0xD61F0000:
		return Inst{Op: BR, Rn: uint8(bitfield(w, 9, 5))}, nil
	case w&0xFFFFFC1F == 0xD63F0000:
		return Inst{Op: BLR, Rn: uint8(bitfield(w, 9, 5))}, nil
	case w&0xFFFFFC1F == 0xD65F0000:
		return Inst{Op: RET, Rn: uint8(bitfield(w, 9, 5))}, nil
	case w&0x7C000000 == 0x14000000:
		op := B
		if w>>31 == 1 {
			op = BL
		}
		return Inst{Op: op, Imm: signExtend(w&0x03ffffff, 26) * 4}, nil
	case w&0xFF000010 == 0x54000000:
		return Inst{Op: Bcond, Cond: Cond(w & 0xf), Imm: signExtend(bitfield(w, 23, 5), 19) * 4}, nil
	case w&0x7E000000 == 0x34000000:
		op := CBZ
		if w>>24&1 == 1 {
			op = CBNZ
		}
		return Inst{Op: op, Sf: sf, Rd: uint8(w & 0x1f), Imm: signExtend(bitfield(w, 23, 5), 19) * 4}, nil
	}

	switch {
	case w&0x1F800000 == 0x11000000: // add/sub immediate
		ops := [4]Op{ADDi, ADDSi, SUBi, SUBSi}
		return Inst{
			Op: ops[bitfield(w, 30, 29)], Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)),
			Imm: int64(bitfield(w, 21, 10)), ShiftHi: w>>22&1 == 1,
		}, nil
	case w&0x1F800000 == 0x12000000: // logical immediate
		ops := [4]Op{ANDi, ORRi, EORi, ANDSi}
		v, ok := DecodeBitmask(uint8(w>>22&1), uint8(bitfield(w, 21, 16)), uint8(bitfield(w, 15, 10)), sf)
		if !ok {
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{
			Op: ops[bitfield(w, 30, 29)], Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Imm: int64(v),
		}, nil
	case w&0x1F800000 == 0x12800000: // move wide
		var op Op
		switch bitfield(w, 30, 29) {
		case 0:
			op = MOVN
		case 2:
			op = MOVZ
		case 3:
			op = MOVK
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		hw := uint8(bitfield(w, 22, 21))
		if !sf && hw > 1 {
			return Inst{}, &DecodeError{Word: w} // 32-bit form only shifts 0 or 16
		}
		return Inst{
			Op: op, Sf: sf, Rd: uint8(w & 0x1f),
			Imm: int64(bitfield(w, 20, 5)), Hw: hw,
		}, nil
	case w&0x1F800000 == 0x13000000: // bitfield
		var op Op
		switch bitfield(w, 30, 29) {
		case 0:
			op = SBFM
		case 2:
			op = UBFM
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		immr, imms := uint8(bitfield(w, 21, 16)), uint8(bitfield(w, 15, 10))
		if (w>>22&1 == 1) != sf || (!sf && (immr > 31 || imms > 31)) {
			return Inst{}, &DecodeError{Word: w} // N must equal sf; positions bounded by width
		}
		return Inst{
			Op: op, Sf: sf, Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)),
			ImmR: immr, ImmS: imms,
		}, nil
	case w&0x1F200000 == 0x0B000000: // add/sub shifted register
		ops := [4]Op{ADDr, ADDSr, SUBr, SUBSr}
		kind, amt := Shift(bitfield(w, 23, 22)), uint8(bitfield(w, 15, 10))
		if kind > ASR || (!sf && amt > 31) {
			return Inst{}, &DecodeError{Word: w} // ROR reserved; shift bounded by width
		}
		return Inst{
			Op: ops[bitfield(w, 30, 29)], Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Rm: uint8(bitfield(w, 20, 16)),
			ShiftKind: kind, ShiftAmt: amt,
		}, nil
	case w&0x1F000000 == 0x0A000000: // logical shifted register
		var op Op
		opc, n := bitfield(w, 30, 29), w>>21&1
		switch {
		case opc == 0 && n == 0:
			op = ANDr
		case opc == 0 && n == 1:
			op = BICr
		case opc == 1 && n == 0:
			op = ORRr
		case opc == 2 && n == 0:
			op = EORr
		case opc == 3 && n == 0:
			op = ANDSr
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		amt := uint8(bitfield(w, 15, 10))
		if !sf && amt > 31 {
			return Inst{}, &DecodeError{Word: w} // shift bounded by width
		}
		return Inst{
			Op: op, Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Rm: uint8(bitfield(w, 20, 16)),
			ShiftKind: Shift(bitfield(w, 23, 22)), ShiftAmt: amt,
		}, nil
	case w&0x7FE00000 == 0x1B000000: // madd/msub
		op := MADD
		if w>>15&1 == 1 {
			op = MSUB
		}
		return Inst{
			Op: op, Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)),
			Rm: uint8(bitfield(w, 20, 16)), Ra: uint8(bitfield(w, 14, 10)),
		}, nil
	case w&0x7FE00000 == 0x1AC00000: // 2-source data processing
		var op Op
		switch bitfield(w, 15, 10) {
		case 0x02:
			op = UDIV
		case 0x03:
			op = SDIV
		case 0x08:
			op = LSLV
		case 0x09:
			op = LSRV
		case 0x0A:
			op = ASRV
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{
			Op: op, Sf: sf,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Rm: uint8(bitfield(w, 20, 16)),
		}, nil
	case w&0x3FE00800 == 0x1A800000: // conditional select
		var op Op
		hi := w >> 30 & 1
		o2 := w >> 10 & 1
		switch {
		case hi == 0 && o2 == 0:
			op = CSEL
		case hi == 0 && o2 == 1:
			op = CSINC
		case hi == 1 && o2 == 0:
			op = CSINV
		default:
			op = CSNEG
		}
		return Inst{
			Op: op, Sf: sf, Cond: Cond(bitfield(w, 15, 12)),
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Rm: uint8(bitfield(w, 20, 16)),
		}, nil
	}

	// Loads and stores: pairs have bits 29..27 = 101, single registers
	// have bits 29..27 = 111.
	if w&0x38000000 == 0x28000000 {
		return decodePair(w)
	}
	if w&0x38000000 == 0x38000000 {
		return decodeLoadStore(w)
	}

	// Floating point.
	if w&0x7F200000 == 0x1E200000 {
		return decodeFP(w)
	}
	if w&0xFF000000 == 0x1F000000 { // fmadd family
		dbl := w>>22&1 == 1
		o1, o0 := w>>21&1, w>>15&1
		var op Op
		switch {
		case o1 == 0 && o0 == 0:
			op = FMADD
		case o1 == 0 && o0 == 1:
			op = FMSUB
		case o1 == 1 && o0 == 0:
			op = FNMADD
		default:
			op = FNMSUB
		}
		return Inst{
			Op: op, Dbl: dbl,
			Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)),
			Rm: uint8(bitfield(w, 20, 16)), Ra: uint8(bitfield(w, 14, 10)),
		}, nil
	}

	return Inst{}, &DecodeError{Word: w}
}

func decodeLoadStore(w uint32) (Inst, error) {
	size2 := bitfield(w, 31, 30)
	v := w>>26&1 == 1
	opc := bitfield(w, 23, 22)
	size := uint8(1) << size2
	if v && size < 4 {
		return Inst{}, &DecodeError{Word: w} // B/H register forms unsupported
	}
	i := Inst{FP: v, Size: size, Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5))}
	switch {
	case opc == 0:
		i.Op = STR
	case opc == 1:
		i.Op = LDR
	case opc == 2 && !v && size2 == 2:
		i.Op = LDRSW
	default:
		return Inst{}, &DecodeError{Word: w}
	}
	switch bitfield(w, 25, 24) {
	case 1: // unsigned immediate
		i.Mode = ModeUImm
		i.Imm = int64(bitfield(w, 21, 10)) * int64(size)
		return i, nil
	case 0:
		if w>>21&1 == 1 { // register offset
			if bitfield(w, 11, 10) != 2 || bitfield(w, 15, 13) != 3 {
				return Inst{}, &DecodeError{Word: w}
			}
			i.Mode = ModeReg
			i.Rm = uint8(bitfield(w, 20, 16))
			if w>>12&1 == 1 {
				i.ShiftAmt = uint8(size2)
			}
			return i, nil
		}
		switch bitfield(w, 11, 10) {
		case 1:
			i.Mode = ModePost
		case 3:
			i.Mode = ModePre
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		i.Imm = signExtend(bitfield(w, 20, 12), 9)
		return i, nil
	}
	return Inst{}, &DecodeError{Word: w}
}

func decodePair(w uint32) (Inst, error) {
	opc2 := bitfield(w, 31, 30)
	v := w>>26&1 == 1
	i := Inst{
		FP: v,
		Rd: uint8(w & 0x1f), Rn: uint8(bitfield(w, 9, 5)), Rt2: uint8(bitfield(w, 14, 10)),
	}
	switch {
	case v && opc2 == 1:
		i.Size = 8
	case !v && opc2 == 2:
		i.Size = 8
	case !v && opc2 == 0:
		i.Size = 4
	default:
		return Inst{}, &DecodeError{Word: w}
	}
	if w>>22&1 == 1 {
		i.Op = LDP
	} else {
		i.Op = STP
	}
	switch bitfield(w, 25, 23) {
	case 2:
		i.Mode = ModeUImm
	case 1:
		i.Mode = ModePost
	case 3:
		i.Mode = ModePre
	default:
		return Inst{}, &DecodeError{Word: w}
	}
	i.Imm = signExtend(bitfield(w, 21, 15), 7) * int64(i.Size)
	return i, nil
}

func decodeFP(w uint32) (Inst, error) {
	dbl := w>>22&1 == 1
	ft := bitfield(w, 23, 22)
	if ft > 1 {
		return Inst{}, &DecodeError{Word: w}
	}
	sf := w>>31 == 1
	rd := uint8(w & 0x1f)
	rn := uint8(bitfield(w, 9, 5))
	rm := uint8(bitfield(w, 20, 16))

	switch {
	case bitfield(w, 15, 10) == 0: // FP <-> integer
		rmode, opc := bitfield(w, 20, 19), bitfield(w, 18, 16)
		var op Op
		switch {
		case rmode == 0 && opc == 2:
			op = SCVTF
		case rmode == 0 && opc == 3:
			op = UCVTF
		case rmode == 3 && opc == 0:
			op = FCVTZS
		case rmode == 3 && opc == 1:
			op = FCVTZU
		case rmode == 0 && opc == 6:
			op = FMOVxf
		case rmode == 0 && opc == 7:
			op = FMOVfx
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{Op: op, Sf: sf, Dbl: dbl, Rd: rd, Rn: rn}, nil

	case bitfield(w, 15, 10) == 0x08: // FP compare; opcode2 in bits 4..0
		if sf {
			return Inst{}, &DecodeError{Word: w}
		}
		var op Op
		switch w & 0x1f {
		case 0:
			op = FCMP
		case 0x10:
			op = FCMPE
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{Op: op, Dbl: dbl, Rn: rn, Rm: rm}, nil

	case bitfield(w, 14, 10) == 0x10: // 1-source
		if sf {
			return Inst{}, &DecodeError{Word: w}
		}
		var op Op
		switch bitfield(w, 20, 15) {
		case 0:
			op = FMOVr
		case 1:
			op = FABS
		case 2:
			op = FNEG
		case 3:
			op = FSQRT
		case 4:
			op = FCVTsd
		case 5:
			op = FCVTds
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{Op: op, Dbl: dbl, Rd: rd, Rn: rn}, nil

	case bitfield(w, 11, 10) == 3: // fcsel
		if sf {
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{Op: FCSEL, Dbl: dbl, Rd: rd, Rn: rn, Rm: rm, Cond: Cond(bitfield(w, 15, 12))}, nil

	case bitfield(w, 12, 10) == 4 && bitfield(w, 9, 5) == 0: // fmov immediate
		if sf {
			return Inst{}, &DecodeError{Word: w}
		}
		v := decodeFPImm8(uint8(bitfield(w, 20, 13)), dbl)
		return Inst{Op: FMOVi, Dbl: dbl, Rd: rd, Imm: int64(math.Float64bits(v))}, nil

	case bitfield(w, 11, 10) == 2: // 2-source
		if sf {
			return Inst{}, &DecodeError{Word: w}
		}
		var op Op
		switch bitfield(w, 15, 12) {
		case 0:
			op = FMUL
		case 1:
			op = FDIV
		case 2:
			op = FADD
		case 3:
			op = FSUB
		case 4:
			op = FMAX
		case 5:
			op = FMIN
		case 8:
			op = FNMUL
		default:
			return Inst{}, &DecodeError{Word: w}
		}
		return Inst{Op: op, Dbl: dbl, Rd: rd, Rn: rn, Rm: rm}, nil
	}
	return Inst{}, &DecodeError{Word: w}
}
