package a64

import "testing"

// FuzzDecodeA64 throws arbitrary 32-bit words at the decoder. The
// invariants: Decode never panics, and when a decoded instruction
// re-encodes, decoding the re-encoded word reproduces the same Inst
// (decode∘encode is idempotent on the decodable subset).
func FuzzDecodeA64(f *testing.F) {
	seeds := []uint32{
		0xD503201F, // nop
		0xD65F03C0, // ret
		0xD4000001, // svc #0
		0x14000000, // b .
		0x91000420, // add x0, x1, #1
		0xF9400021, // ldr x1, [x1]
		0xA9BF7BFD, // stp x29, x30, [sp, #-16]!
		MustEncode(Inst{Op: MOVZ, Rd: 3, Sf: true, Imm: 0x1234}),
		0xFFFFFFFF, 0x00000000, 0x8B0A0149,
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(inst)
		if err != nil {
			// Some decodable forms have no canonical encoding in the
			// supported subset; that is not a fuzz failure.
			return
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word %#08x of %#08x does not decode: %v", w2, w, err)
		}
		if inst2 != inst {
			t.Fatalf("decode(%#08x) = %+v but decode(encode) = %+v", w, inst, inst2)
		}
	})
}
