package a64

import (
	"bytes"
	"math"
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

func run(t *testing.T, build func(a *Asm), data []byte) *Machine {
	t.Helper()
	a := NewAsm()
	build(a)
	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 1_000_000; i++ {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatalf("step %d at pc %#x: %v", i, mach.PC(), err)
		}
		if done {
			return mach
		}
	}
	t.Fatal("program did not exit")
	return nil
}

func exit(a *Asm, code int64) {
	a.MOV64(0, code)
	a.MOV64(8, sysExit)
	a.SVC()
}

func TestArithmeticEndToEnd(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 20)
		a.MOV64(2, 22)
		a.ADD(3, 1, 2) // 42
		a.MOV64(4, 7)
		a.MUL(5, 3, 4)  // 294
		a.SDIV(6, 5, 4) // 42
		a.SUB(7, 6, 3)  // 0
		a.MOV(0, 5)
		a.MOV64(8, sysExit)
		a.SVC()
	}, nil)
	if m.ExitCode() != 294 {
		t.Fatalf("exit code = %d, want 294", m.ExitCode())
	}
	if m.X[7] != 0 {
		t.Fatalf("x7 = %d", m.X[7])
	}
}

func TestPaperCopyKernel(t *testing.T) {
	// The exact inner loop of the paper's Listing 1, copying 8 doubles.
	const n = 8
	data := make([]byte, 16*n)
	for i := 0; i < n; i++ {
		bits := math.Float64bits(float64(i) + 0.5)
		for b := 0; b < 8; b++ {
			data[i*8+b] = byte(bits >> (8 * b))
		}
	}
	m := run(t, func(a *Asm) {
		a.MOV64(22, 0x20000)     // src base
		a.MOV64(19, 0x20000+8*n) // dst base
		a.MOV64(0, 0)            // index
		a.MOV64(20, n)           // bound
		a.Label("loop")
		a.LDRDro(1, 22, 0, 3) // ldr d1, [x22, x0, lsl #3]
		a.STRDro(1, 19, 0, 3) // str d1, [x19, x0, lsl #3]
		a.ADDi(0, 0, 1)       // add x0, x0, #1
		a.CMP(0, 20)          // cmp x0, x20
		a.Bc(NE, "loop")      // b.ne loop
		exit(a, 0)
	}, data)
	for i := 0; i < n; i++ {
		bits, err := m.Mem.Read64(0x20000 + 8*uint64(n+i))
		if err != nil {
			t.Fatal(err)
		}
		if got := math.Float64frombits(bits); got != float64(i)+0.5 {
			t.Fatalf("dst[%d] = %v", i, got)
		}
	}
}

func TestFlagsAndConditions(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 5)
		a.MOV64(2, 5)
		a.CMP(1, 2)   // equal -> Z
		a.CSET(3, EQ) // 1
		a.CSET(4, NE) // 0
		a.CSET(5, GE) // 1
		a.CSET(6, LT) // 0
		a.MOV64(7, 3)
		a.CMPi(7, 10) // 3-10 -> negative
		a.CSET(9, LT) // 1
		a.CSET(10, GT)
		a.CSET(11, CC) // borrow -> C clear -> cc holds
		exit(a, 0)
	}, nil)
	want := map[int]uint64{3: 1, 4: 0, 5: 1, 6: 0, 9: 1, 10: 0, 11: 1}
	for r, v := range want {
		if m.X[r] != v {
			t.Errorf("x%d = %d, want %d", r, m.X[r], v)
		}
	}
}

func TestGCC9LoopIdiom(t *testing.T) {
	// The paper's GCC 9.2 loop-exit sequence: sub x1, x0, #2441, lsl
	// #12; subs x1, x1, #1664 computes x0 - 10,000,000 and sets flags.
	m := run(t, func(a *Asm) {
		a.MOV64(0, 10_000_000)
		a.SUBiHi(1, 0, 2441) // x1 = x0 - 2441*4096 = x0 - 9,998,336
		a.SUBSi(1, 1, 1664)  // x1 = x1 - 1664 -> 0, Z set
		a.CSET(2, EQ)
		exit(a, 0)
	}, nil)
	if m.X[1] != 0 || m.X[2] != 1 {
		t.Fatalf("x1=%d x2=%d, want 0 1", m.X[1], m.X[2])
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 9)
		a.SCVTF(0, 1) // d0 = 9.0
		a.FSQRT(1, 0) // d1 = 3.0
		a.MOV64(2, 4)
		a.SCVTF(2, 2)       // d2 = 4.0
		a.FMUL(3, 1, 2)     // 12
		a.FADD(4, 3, 1)     // 15
		a.FSUB(5, 4, 2)     // 11
		a.FMADD(6, 1, 2, 4) // 3*4+15 = 27
		a.FCVTZS(0, 6)
		a.MOV64(8, sysExit)
		a.SVC()
	}, nil)
	if m.ExitCode() != 27 {
		t.Fatalf("exit = %d, want 27", m.ExitCode())
	}
}

func TestFCMPAndFCSEL(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 2)
		a.SCVTF(1, 1) // d1 = 2
		a.MOV64(2, 3)
		a.SCVTF(2, 2) // d2 = 3
		a.FCMP(1, 2)  // 2 < 3 -> N
		a.CSET(3, MI)
		a.Emit(Inst{Op: FCSEL, Dbl: true, Rd: 4, Rn: 1, Rm: 2, Cond: MI}) // d4 = d1
		a.FCVTZS(5, 4)
		exit(a, 0)
	}, nil)
	if m.X[3] != 1 {
		t.Fatalf("fcmp less: cset mi = %d", m.X[3])
	}
	if m.X[5] != 2 {
		t.Fatalf("fcsel = %d, want 2", m.X[5])
	}
}

func TestZeroRegister(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 99)
		a.Emit(Inst{Op: ADDr, Sf: true, Rd: ZR, Rn: 1, Rm: 1})  // discarded
		a.Emit(Inst{Op: ORRr, Sf: true, Rd: 2, Rn: ZR, Rm: ZR}) // x2 = 0
		a.MOV(0, 2)
		a.MOV64(8, sysExit)
		a.SVC()
	}, nil)
	if m.ExitCode() != 0 {
		t.Fatalf("exit = %d", m.ExitCode())
	}
}

func TestAddressingModes(t *testing.T) {
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	m := run(t, func(a *Asm) {
		a.MOV64(1, 0x20000)
		a.LDRx(2, 1, 8) // unsigned imm
		a.MOV64(3, 2)
		a.LDRro(4, 1, 3, 3)                                                  // [x1, x3, lsl #3] -> offset 16
		a.Emit(Inst{Op: LDR, Size: 8, Rd: 5, Rn: 1, Imm: 8, Mode: ModePost}) // addr 0x20000, x1 += 8
		a.Emit(Inst{Op: LDR, Size: 8, Rd: 6, Rn: 1, Imm: 8, Mode: ModePre})  // addr 0x20010, x1 = 0x20010
		exit(a, 0)
	}, data)
	word := func(off int) uint64 {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(data[off+b]) << (8 * b)
		}
		return v
	}
	if m.X[2] != word(8) {
		t.Errorf("uimm load = %#x", m.X[2])
	}
	if m.X[4] != word(16) {
		t.Errorf("register-offset load = %#x", m.X[4])
	}
	if m.X[5] != word(0) {
		t.Errorf("post-index load = %#x", m.X[5])
	}
	if m.X[6] != word(16) {
		t.Errorf("pre-index load = %#x", m.X[6])
	}
	if m.X[1] != 0x20010 {
		t.Errorf("writeback base = %#x", m.X[1])
	}
}

func TestLoadStorePair(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 0x20000)
		a.MOV64(2, 111)
		a.MOV64(3, 222)
		a.STPx(2, 3, 1, 16)
		a.LDPx(4, 5, 1, 16)
		exit(a, 0)
	}, make([]byte, 64))
	if m.X[4] != 111 || m.X[5] != 222 {
		t.Fatalf("ldp = %d, %d", m.X[4], m.X[5])
	}
}

func TestStackPush(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(29, 0xAAAA)
		a.MOV64(30, 0xBBBB)
		a.Emit(Inst{Op: STP, Size: 8, Rd: 29, Rt2: 30, Rn: 31, Imm: -16, Mode: ModePre})
		a.MOV64(29, 0)
		a.MOV64(30, 0)
		a.Emit(Inst{Op: LDP, Size: 8, Rd: 29, Rt2: 30, Rn: 31, Imm: 16, Mode: ModePost})
		exit(a, 0)
	}, nil)
	if m.X[29] != 0xAAAA || m.X[30] != 0xBBBB {
		t.Fatalf("stack round trip: x29=%#x x30=%#x", m.X[29], m.X[30])
	}
	if m.X[regSP] != m.Mem.StackTop() {
		t.Fatalf("sp not restored: %#x != %#x", m.X[regSP], m.Mem.StackTop())
	}
}

func TestWriteSyscall(t *testing.T) {
	a := NewAsm()
	msg := []byte("hello, a64\n")
	a.MOV64(0, 1)
	a.MOV64(1, 0x20000)
	a.MOV64(2, int64(len(msg)))
	a.MOV64(8, sysWrite)
	a.SVC()
	exit(a, 0)
	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: msg})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	mach.Stdout = &out
	var ev isa.Event
	for {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if out.String() != string(msg) {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestEventNZCVFlow(t *testing.T) {
	a := NewAsm()
	a.MOV64(1, 1)
	a.CMP(1, 1)
	a.Bc(EQ, "done")
	a.Label("done")
	exit(a, 0)
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var cmpEv, brEv isa.Event
	var ev isa.Event
	for {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Group == isa.GroupBranch && ev.NSrcs > 0 {
			brEv = ev
		}
		for k := uint8(0); k < ev.NDsts; k++ {
			if ev.Dsts[k] == isa.RegNZCV {
				cmpEv = ev
			}
		}
		if done {
			break
		}
	}
	if cmpEv.NDsts == 0 {
		t.Fatal("no instruction wrote NZCV")
	}
	found := false
	for k := uint8(0); k < brEv.NSrcs; k++ {
		if brEv.Srcs[k] == isa.RegNZCV {
			found = true
		}
	}
	if !found {
		t.Fatalf("b.eq did not read NZCV: %+v", brEv)
	}
	if !brEv.Taken {
		t.Fatal("b.eq after equal cmp not taken")
	}
}

func TestMOV64Variants(t *testing.T) {
	values := []int64{0, 1, -1, 42, 0x10000, -42, 0x123456789abcdef0 - 0x123456789abcdef0 + 77,
		1 << 40, -(1 << 33), 0x00ff00ff00ff00ff - 0x00ff00ff00ff00ff + 0x7fffffffffffffff}
	for _, v := range values {
		m := run(t, func(a *Asm) {
			a.MOV64(5, v)
			exit(a, 0)
		}, nil)
		if m.X[5] != uint64(v) {
			t.Errorf("MOV64(%#x) produced %#x", v, m.X[5])
		}
	}
}

func TestBitfieldAliases(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.MOV64(1, 0xff00)
		a.LSLi(2, 1, 8) // 0xff0000
		a.LSRi(3, 1, 8) // 0xff
		a.MOV64(4, -256)
		a.ASRi(5, 4, 4) // -16
		exit(a, 0)
	}, nil)
	if m.X[2] != 0xff0000 {
		t.Errorf("lsl: %#x", m.X[2])
	}
	if m.X[3] != 0xff {
		t.Errorf("lsr: %#x", m.X[3])
	}
	if int64(m.X[5]) != -16 {
		t.Errorf("asr: %d", int64(m.X[5]))
	}
}

func TestDivideEdgeCases(t *testing.T) {
	if divide(true, 10, 0, true) != 0 {
		t.Error("sdiv by zero should be 0 on AArch64")
	}
	if divide(false, 10, 0, true) != 0 {
		t.Error("udiv by zero should be 0")
	}
	if divide(true, 1<<63, ^uint64(0), true) != 1<<63 {
		t.Error("sdiv overflow should wrap")
	}
}

func TestBfm(t *testing.T) {
	// lsr x, #3: immr=3, imms=63
	if got := bfm(0xff00, 3, 63, 64, false); got != 0x1fe0 {
		t.Errorf("lsr via ubfm = %#x", got)
	}
	// lsl #8: immr=56, imms=55
	if got := bfm(0xff, 56, 55, 64, false); got != 0xff00 {
		t.Errorf("lsl via ubfm = %#x", got)
	}
	// sxtw: sbfm immr=0 imms=31
	if got := bfm(0x80000000, 0, 31, 64, true); got != 0xffffffff80000000 {
		t.Errorf("sxtw = %#x", got)
	}
	// ubfx bits [15:8]
	if got := bfm(0xabcd, 8, 15, 64, false); got != 0xab {
		t.Errorf("ubfx = %#x", got)
	}
}
