package isa

import (
	"testing"
	"testing/quick"
)

func TestRegSpaces(t *testing.T) {
	for i := uint8(0); i < 32; i++ {
		r := IntReg(i)
		if !r.IsInt() || r.IsFP() {
			t.Fatalf("IntReg(%d) misclassified", i)
		}
		if r.Index() != i {
			t.Fatalf("IntReg(%d).Index() = %d", i, r.Index())
		}
	}
	for i := uint8(0); i < 32; i++ {
		r := FPReg(i)
		if r.IsInt() || !r.IsFP() {
			t.Fatalf("FPReg(%d) misclassified", i)
		}
		if r.Index() != i {
			t.Fatalf("FPReg(%d).Index() = %d", i, r.Index())
		}
	}
	if RegNZCV.IsInt() || RegNZCV.IsFP() {
		t.Fatalf("NZCV misclassified")
	}
	if int(RegNZCV) >= NumRegs {
		t.Fatalf("NZCV outside register space")
	}
}

func TestRegStrings(t *testing.T) {
	cases := map[Reg]string{
		IntReg(0):  "x0",
		IntReg(31): "x31",
		FPReg(0):   "f0",
		FPReg(12):  "f12",
		RegNZCV:    "nzcv",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
}

func TestRegIndexRoundTrip(t *testing.T) {
	f := func(i uint8, fp bool) bool {
		i %= 32
		var r Reg
		if fp {
			r = FPReg(i)
		} else {
			r = IntReg(i)
		}
		return r.Index() == i && r.IsFP() == fp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupNames(t *testing.T) {
	seen := map[string]bool{}
	for g := Group(0); g < NumGroups; g++ {
		name := g.String()
		if name == "" {
			t.Fatalf("group %d has empty name", g)
		}
		if seen[name] {
			t.Fatalf("duplicate group name %q", name)
		}
		seen[name] = true
	}
}

func TestArchString(t *testing.T) {
	if AArch64.String() != "AArch64" || RV64.String() != "RISC-V" {
		t.Fatalf("unexpected arch names: %v %v", AArch64, RV64)
	}
}

func TestEventSrcDst(t *testing.T) {
	var e Event
	e.AddSrc(IntReg(1))
	e.AddSrc(FPReg(2))
	e.AddDst(IntReg(3))
	if e.NSrcs != 2 || e.NDsts != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", e.NSrcs, e.NDsts)
	}
	if e.Srcs[0] != IntReg(1) || e.Srcs[1] != FPReg(2) || e.Dsts[0] != IntReg(3) {
		t.Fatalf("wrong registers recorded: %v %v", e.Srcs, e.Dsts)
	}
	e.Reset()
	if e.NSrcs != 0 || e.NDsts != 0 || e.Branch || e.LoadSize != 0 || e.StoreSize != 0 {
		t.Fatalf("Reset left state behind: %+v", e)
	}
}

func TestEventOverflowIgnored(t *testing.T) {
	var e Event
	for i := 0; i < 10; i++ {
		e.AddSrc(IntReg(uint8(i)))
	}
	if e.NSrcs != uint8(len(e.Srcs)) {
		t.Fatalf("NSrcs = %d, want %d", e.NSrcs, len(e.Srcs))
	}
	for i := 0; i < 10; i++ {
		e.AddDst(IntReg(uint8(i)))
	}
	if e.NDsts != uint8(len(e.Dsts)) {
		t.Fatalf("NDsts = %d, want %d", e.NDsts, len(e.Dsts))
	}
}

func TestMultiSinkOrder(t *testing.T) {
	var order []int
	mk := func(id int) Sink {
		return SinkFunc(func(*Event) { order = append(order, id) })
	}
	ms := MultiSink{mk(1), mk(2), mk(3)}
	ms.Event(&Event{})
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("sink order = %v", order)
	}
}
