// Package isa defines the architecture-neutral vocabulary shared by the
// AArch64 and RV64G front ends and by every analysis: register
// identifiers, instruction groups (latency classes) and the per-retired
// instruction execution record that cores stream to analyses.
//
// Both ISAs map their architectural registers into one flat register
// space so that analyses such as the critical-path tracker can index a
// single dense array:
//
//	[0,32)   integer registers x0..x31 (AArch64: X0..X30 + SP/XZR slot)
//	[32,64)  floating-point registers f0..f31 / d0..d31
//	64       the AArch64 NZCV flags pseudo-register
//
// The RISC-V zero register and the AArch64 zero register are never
// reported in an Event's source or destination lists: reads from them
// break dependency chains and writes to them are discarded, exactly as
// in the paper's critical-path method (section 4.1).
package isa

import "fmt"

// Arch identifies one of the two instruction sets under study.
type Arch uint8

// The two architectures compared by the paper.
const (
	AArch64 Arch = iota
	RV64
)

// String returns the conventional name of the architecture.
func (a Arch) String() string {
	switch a {
	case AArch64:
		return "AArch64"
	case RV64:
		return "RISC-V"
	default:
		return fmt.Sprintf("Arch(%d)", uint8(a))
	}
}

// Reg is a flat register identifier covering both register files plus
// the flags pseudo-register. See the package comment for the layout.
type Reg uint8

// NumRegs is the size of the flat register space; dependence trackers
// can use it to size dense arrays indexed by Reg.
const NumRegs = 65

// RegNZCV is the AArch64 condition-flags pseudo-register. Instructions
// that set flags (SUBS, CMP, FCMP, ...) list it as a destination;
// conditionally executing instructions (B.cond, CSEL, FCSEL) list it as
// a source. RV64G has no flags register.
const RegNZCV Reg = 64

// IntReg returns the flat identifier of integer register i (0..31).
func IntReg(i uint8) Reg { return Reg(i) }

// FPReg returns the flat identifier of floating-point register i (0..31).
func FPReg(i uint8) Reg { return Reg(32 + i) }

// IsInt reports whether r names an integer register.
func (r Reg) IsInt() bool { return r < 32 }

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// Index returns the architectural index of the register within its file.
func (r Reg) Index() uint8 {
	if r.IsFP() {
		return uint8(r - 32)
	}
	return uint8(r)
}

// String renders the flat register in a neutral syntax (x5, f12, nzcv).
func (r Reg) String() string {
	switch {
	case r.IsInt():
		return fmt.Sprintf("x%d", r.Index())
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	case r == RegNZCV:
		return "nzcv"
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// Group is an instruction latency class, mirroring the instruction
// grouping SimEng performs at decode to assign execution latencies from
// a core-description file. The scaled critical-path analysis (paper
// section 5) weights each instruction by its group's latency.
type Group uint8

// Instruction groups. The division is the minimum needed to express a
// ThunderX2-style latency table for the scalar subsets under study.
const (
	// GroupIntSimple covers single-cycle integer ALU work: add, sub,
	// logical ops, shifts, compares, register moves, address generation.
	GroupIntSimple Group = iota
	// GroupIntMul covers integer multiplication (MUL, MADD, MULW...).
	GroupIntMul
	// GroupIntDiv covers integer division and remainder.
	GroupIntDiv
	// GroupLoad covers all memory reads, integer and FP.
	GroupLoad
	// GroupStore covers all memory writes, integer and FP.
	GroupStore
	// GroupBranch covers direct and indirect branches, taken or not.
	GroupBranch
	// GroupFPSimple covers FP moves, sign manipulation, min/max and
	// compares.
	GroupFPSimple
	// GroupFPAdd covers FP addition and subtraction.
	GroupFPAdd
	// GroupFPMul covers FP multiplication.
	GroupFPMul
	// GroupFPFMA covers fused multiply-add families.
	GroupFPFMA
	// GroupFPDiv covers FP division.
	GroupFPDiv
	// GroupFPSqrt covers FP square root.
	GroupFPSqrt
	// GroupFPCvt covers conversions between FP formats and between FP
	// and integer registers.
	GroupFPCvt
	// GroupSystem covers system calls and hints.
	GroupSystem

	// NumGroups is the number of instruction groups.
	NumGroups
)

var groupNames = [NumGroups]string{
	"int-simple", "int-mul", "int-div", "load", "store", "branch",
	"fp-simple", "fp-add", "fp-mul", "fp-fma", "fp-div", "fp-sqrt",
	"fp-cvt", "system",
}

// String returns a short lower-case name for the group.
func (g Group) String() string {
	if int(g) < len(groupNames) {
		return groupNames[g]
	}
	return fmt.Sprintf("group(%d)", uint8(g))
}

// Event is the execution record emitted for every retired instruction.
// It carries exactly the information the paper's analyses consume: the
// PC (for region attribution), the register sources and destinations
// (for register RAW chains), the memory addresses touched (for memory
// RAW chains) and the latency group. Events are reused by cores;
// consumers must not retain pointers beyond the callback.
type Event struct {
	// PC is the address of the retired instruction.
	PC uint64
	// Word is the raw 32-bit encoding, useful for disassembly in
	// diagnostics.
	Word uint32
	// Group is the latency class assigned at decode.
	Group Group

	// Srcs lists the architectural register sources (zero registers
	// excluded); only the first NSrcs entries are valid.
	Srcs [4]Reg
	// Dsts lists the architectural register destinations (zero
	// registers excluded); only the first NDsts entries are valid.
	Dsts [2]Reg
	// NSrcs and NDsts give the number of valid entries in Srcs/Dsts.
	NSrcs, NDsts uint8

	// LoadAddr/LoadSize describe a memory read performed by the
	// instruction (LoadSize==0 means no read). Pair loads report the
	// full byte span.
	LoadAddr uint64
	// Load2Addr/Load2Size describe a second, possibly discontiguous
	// memory read. Cores never emit one; the macro-op fusion pass
	// (internal/fusion) uses the slot when it merges two loads into one
	// fused event, so memory RAW chains through both accesses survive
	// the merge. The field order here keeps the struct at 56 bytes —
	// the three addresses group ahead of the byte-wide fields so no
	// padding is added.
	Load2Addr uint64
	// StoreAddr/StoreSize describe a memory write, as above.
	StoreAddr uint64
	LoadSize  uint8
	Load2Size uint8
	StoreSize uint8

	// Branch reports whether the instruction is a control-flow
	// instruction, and Taken whether it redirected the PC.
	Branch bool
	Taken  bool

	// Fused is the number of architectural instructions this event
	// stands for beyond the usual one: 0 on every core-emitted event,
	// 2 on an event the fusion pass merged from an adjacent pair (the
	// second instruction retired at PC+4).
	Fused uint8
}

// Reset clears the per-instruction fields that executors fill in
// conditionally, so cores can reuse one Event allocation.
func (e *Event) Reset() {
	e.NSrcs, e.NDsts = 0, 0
	e.LoadSize, e.Load2Size, e.StoreSize = 0, 0, 0
	e.Branch, e.Taken = false, false
	e.Fused = 0
}

// AddSrc appends a register source unless it is outside the register
// space. Callers pass only non-zero-register sources.
func (e *Event) AddSrc(r Reg) {
	if e.NSrcs < uint8(len(e.Srcs)) {
		e.Srcs[e.NSrcs] = r
		e.NSrcs++
	}
}

// AddDst appends a register destination.
func (e *Event) AddDst(r Reg) {
	if e.NDsts < uint8(len(e.Dsts)) {
		e.Dsts[e.NDsts] = r
		e.NDsts++
	}
}

// Sink consumes the per-instruction event stream produced by a core.
// Analyses, timing models and tracers implement Sink.
//
// Event lifetime contract: cores reuse one Event allocation (or one
// batch buffer) across the whole run, so the pointed-to Event is
// invalid the moment Event returns — the next retirement overwrites
// it. A sink that needs the record later must copy the struct (it is
// a plain value; assignment suffices). Retaining the pointer is a
// bug even on the single-goroutine path, and under the fan-out
// engine it is additionally a data race.
type Sink interface {
	// Event observes one retired instruction. The pointed-to Event is
	// only valid for the duration of the call.
	Event(ev *Event)
}

// BatchSink is the batched fast path of Sink: a consumer that also
// implements BatchSink receives whole batches of retirements in one
// call, amortizing the per-event dynamic dispatch. The slice and its
// events obey the Sink lifetime contract — valid only for the
// duration of the call, shared read-only with other consumers, never
// to be mutated or retained. Events(evs) must be observably
// equivalent to calling Event(&evs[i]) for each i in order.
type BatchSink interface {
	Sink
	// Events observes a batch of retired instructions in retirement
	// order.
	Events(evs []Event)
}

// DeliverBatch hands a batch to s, using the batched path when s
// implements BatchSink and per-event delivery otherwise. A nil s is
// a no-op.
func DeliverBatch(s Sink, evs []Event) {
	if s == nil {
		return
	}
	if bs, ok := s.(BatchSink); ok {
		bs.Events(evs)
		return
	}
	for i := range evs {
		s.Event(&evs[i])
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ev *Event)

// Event calls f(ev).
func (f SinkFunc) Event(ev *Event) { f(ev) }

// MultiSink fans one event stream out to several sinks in order.
type MultiSink []Sink

// Event forwards ev to every sink in the slice.
func (m MultiSink) Event(ev *Event) {
	for _, s := range m {
		s.Event(ev)
	}
}

// Events forwards the batch to every sink in the slice, using each
// sink's batched path when it has one.
func (m MultiSink) Events(evs []Event) {
	for _, s := range m {
		DeliverBatch(s, evs)
	}
}

// PredecodeStats describes the predecode cache of a machine: the
// static text segment is decoded once at construction, so the
// steady-state fetch path is an array index. Coverage is
// TextWords-BadWords out of TextWords; Fallbacks counts the fetches
// the cache could not serve.
type PredecodeStats struct {
	// TextWords is the number of 32-bit words in the predecoded text
	// segment.
	TextWords uint64
	// BadWords is the number of text words that failed to predecode
	// (data or padding islands inside the text segment). They fault
	// only if executed.
	BadWords uint64
	// Fallbacks counts fetches the predecode cache could not serve: a
	// PC outside the text segment or a bad word reached by execution.
	// Both surface as errors from Step — nothing executes undecoded.
	Fallbacks uint64
}

// PredecodeStatsSource is implemented by machines that predecode
// their text segment.
type PredecodeStatsSource interface {
	PredecodeStats() PredecodeStats
}
