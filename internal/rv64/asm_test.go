package rv64

import (
	"math/rand"
	"strings"
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

func TestUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.BNE(1, 2, "nowhere")
	if _, err := a.Assemble(0x10000); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabel(t *testing.T) {
	a := NewAsm()
	a.Label("x")
	a.NOP()
	a.Label("x")
	if _, err := a.Assemble(0x10000); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestForwardAndBackwardLabels(t *testing.T) {
	a := NewAsm()
	a.Label("top")
	a.BEQ(0, 0, "bottom") // forward
	a.NOP()
	a.BNE(1, 0, "top") // backward
	a.Label("bottom")
	a.NOP()
	words, err := a.Assemble(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 {
		t.Fatalf("words = %d", len(words))
	}
	// Decode and check offsets.
	beq, err := Decode(words[0])
	if err != nil || beq.Imm != 12 {
		t.Fatalf("forward branch imm = %d (%v)", beq.Imm, err)
	}
	bne, err := Decode(words[2])
	if err != nil || bne.Imm != -8 {
		t.Fatalf("backward branch imm = %d (%v)", bne.Imm, err)
	}
}

func TestSymbolSizes(t *testing.T) {
	a := NewAsm()
	a.Symbol("first")
	a.NOP()
	a.NOP()
	a.Symbol("second")
	a.NOP()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Symbols) != 2 {
		t.Fatalf("symbols = %d", len(f.Symbols))
	}
	if f.Symbols[0].Name != "first" || f.Symbols[0].Size != 8 {
		t.Fatalf("first: %+v", f.Symbols[0])
	}
	if f.Symbols[1].Value != 0x10008 || f.Symbols[1].Size != 4 {
		t.Fatalf("second: %+v", f.Symbols[1])
	}
}

// TestDisassemblySmoke: every encodable instruction must disassemble
// to non-empty text without panicking.
func TestDisassemblySmoke(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		inst := randInst(r)
		s := inst.String()
		if s == "" || strings.Contains(s, "%!") {
			t.Fatalf("bad disassembly for %+v: %q", inst, s)
		}
	}
}

// TestDisassemblyHasMnemonic: the first token must be the op name.
func TestDisassemblyHasMnemonic(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		inst := randInst(r)
		s := inst.String()
		if !strings.HasPrefix(s, inst.Op.Name()) {
			t.Fatalf("%q does not start with %q", s, inst.Op.Name())
		}
	}
}

func TestLIInstructionCounts(t *testing.T) {
	cases := []struct {
		v   int64
		max int
	}{
		{0, 1},
		{1, 1},
		{-1, 1},
		{2047, 1},
		{-2048, 1},
		{2048, 2},
		{1 << 20, 1}, // lui only
		{(1 << 20) + 5, 2},
		{1 << 40, 4},
	}
	for _, c := range cases {
		a := NewAsm()
		a.LI(5, c.v)
		if a.Len() > c.max {
			t.Errorf("LI(%d) used %d instructions, want <= %d", c.v, a.Len(), c.max)
		}
	}
}

func TestRegNames(t *testing.T) {
	if IntRegName(0) != "zero" || IntRegName(2) != "sp" || IntRegName(10) != "a0" {
		t.Fatal("int reg names wrong")
	}
	if FPRegName(10) != "fa0" || FPRegName(8) != "fs0" {
		t.Fatal("fp reg names wrong")
	}
}

// TestBuilderMethodSweep exercises every assembler convenience method
// in one executable program and checks the architectural results.
func TestBuilderMethodSweep(t *testing.T) {
	a := NewAsm()
	a.LI(5, 12)
	a.LI(6, 5)
	a.REM(7, 5, 6)  // 2
	a.AND(28, 5, 6) // 4
	a.OR(29, 5, 6)  // 13
	a.XOR(30, 5, 6) // 9
	a.SLT(31, 6, 5) // 1
	a.SLTU(8, 5, 6) // 0
	a.LI(9, 1)
	a.SLL(18, 9, 6)  // 32
	a.SRL(19, 18, 9) // 16
	a.LI(20, -32)
	a.SRA(21, 20, 9)  // -16
	a.ANDI(22, 5, 6)  // 4
	a.ORI(23, 5, 1)   // 13
	a.XORI(24, 5, 1)  // 13
	a.SRLI(25, 18, 4) // 2
	a.SRAI(26, 20, 4) // -2
	a.SLTIU(27, 5, 100)

	// Memory ops.
	a.LI(10, 0x20000)
	a.SW(5, 10, 0)
	a.LW(11, 10, 0)

	// FP method sweep.
	a.FCVTDL(0, 5)       // 12.0
	a.FCVTDL(1, 6)       // 5.0
	a.FMSUBD(2, 0, 1, 1) // 12*5-5 = 55
	a.FMVD(3, 2)
	a.FNEGD(4, 3)    // -55
	a.FABSD(5, 4)    // 55
	a.FMIND(6, 4, 5) // -55
	a.FMAXD(7, 4, 5) // 55
	a.FLTD(12, 4, 5) // 1
	a.FLED(13, 5, 5) // 1
	a.FEQD(14, 4, 5) // 0
	a.FMVXD(15, 7)
	a.FMVDX(8, 15)
	a.FCVTLD(16, 7) // 55

	// Branch method sweep: fall-through checks.
	a.BLT(6, 5, "L1") // 5<12 taken
	a.LI(16, 0)
	a.Label("L1")
	a.BGE(5, 6, "L2") // 12>=5 taken
	a.LI(16, 0)
	a.Label("L2")
	a.BLTU(6, 5, "L3")
	a.LI(16, 0)
	a.Label("L3")
	a.BGEU(5, 6, "L4")
	a.LI(16, 0)
	a.Label("L4")
	a.MV(10, 16)
	a.LI(17, 93)
	a.ECALL()

	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 1000; i++ {
		done, err := m.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if m.ExitCode() != 55 {
		t.Fatalf("exit = %d, want 55 (branches or fcvt broken)", m.ExitCode())
	}
	wantX := map[int]int64{7: 2, 28: 4, 29: 13, 30: 9, 31: 1, 8: 0, 18: 32, 19: 16,
		21: -16, 22: 4, 23: 13, 24: 13, 25: 2, 26: -2, 27: 1, 11: 12, 12: 1, 13: 1, 14: 0}
	for r, v := range wantX {
		if int64(m.X[r]) != v {
			t.Errorf("x%d = %d, want %d", r, int64(m.X[r]), v)
		}
	}
}
