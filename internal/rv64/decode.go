package rv64

import "fmt"

// DecodeError reports a word that is not a recognised RV64G
// instruction.
type DecodeError struct {
	Word uint32
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("rv64: cannot decode %#08x", e.Word)
}

// DecodeFault marks the error for the engine's failure taxonomy
// (simeng classifies it as ErrDecode without importing this package).
func (e *DecodeError) DecodeFault() {}

// Decode lookup tables, built once from the encoder's spec table so the
// two directions can never disagree.
var (
	decSys map[uint32]Op // fixed whole words
	decI   map[uint32]Op // opcode | f3<<12
	decIS  map[uint32]Op // opcode | f3<<12 | funct6<<26
	decISW map[uint32]Op // opcode | f3<<12 | f7<<25
	decSB  map[uint32]Op // opcode | f3<<12 (stores and branches)
	decU   map[uint32]Op // opcode
	decR   map[uint32]Op // opcode | f3<<12 | f7<<25
	decR4  map[uint32]Op // opcode | fmt2<<25
	decRF  map[uint32]Op // opcode | f7<<25
	decR2  map[uint32]Op // opcode | f7<<25 | rs2<<20
	decR2F map[uint32]Op // opcode | f7<<25 | rs2<<20 | f3<<12
	decAMO map[uint32]Op // opcode | f3<<12 | funct5<<27
)

func init() {
	decSys = map[uint32]Op{}
	decI = map[uint32]Op{}
	decIS = map[uint32]Op{}
	decISW = map[uint32]Op{}
	decSB = map[uint32]Op{}
	decU = map[uint32]Op{}
	decR = map[uint32]Op{}
	decR4 = map[uint32]Op{}
	decRF = map[uint32]Op{}
	decR2 = map[uint32]Op{}
	decR2F = map[uint32]Op{}
	decAMO = map[uint32]Op{}
	put := func(m map[uint32]Op, key uint32, op Op) {
		if prev, dup := m[key]; dup {
			panic(fmt.Sprintf("rv64: decode key collision: %s vs %s", prev.Name(), op.Name()))
		}
		m[key] = op
	}
	for op := Op(1); op < numOps; op++ {
		s := specs[op]
		if s.name == "" {
			continue
		}
		switch s.fmt {
		case fmtSYS:
			put(decSys, s.fixed, op)
		case fmtI:
			put(decI, s.opcode|s.f3<<12, op)
		case fmtIS:
			put(decIS, s.opcode|s.f3<<12|(s.f7>>1)<<26, op)
		case fmtISW:
			put(decISW, s.opcode|s.f3<<12|s.f7<<25, op)
		case fmtS, fmtB:
			put(decSB, s.opcode|s.f3<<12, op)
		case fmtU, fmtJ:
			put(decU, s.opcode, op)
		case fmtR:
			put(decR, s.opcode|s.f3<<12|s.f7<<25, op)
		case fmtR4:
			put(decR4, s.opcode|(s.f7&3)<<25, op)
		case fmtRF:
			put(decRF, s.opcode|s.f7<<25, op)
		case fmtR2:
			put(decR2, s.opcode|s.f7<<25|s.rs2fix<<20, op)
		case fmtR2F:
			put(decR2F, s.opcode|s.f7<<25|s.rs2fix<<20|s.f3<<12, op)
		case fmtAMO:
			put(decAMO, s.opcode|s.f3<<12|(s.f7>>2)<<27, op)
		}
	}
}

// field extractors
func fRd(w uint32) uint8  { return uint8(w >> 7 & 0x1f) }
func fRs1(w uint32) uint8 { return uint8(w >> 15 & 0x1f) }
func fRs2(w uint32) uint8 { return uint8(w >> 20 & 0x1f) }
func fRs3(w uint32) uint8 { return uint8(w >> 27 & 0x1f) }
func fF3(w uint32) uint32 { return w >> 12 & 7 }
func fF7(w uint32) uint32 { return w >> 25 }

func immI(w uint32) int64 { return int64(int32(w) >> 20) }
func immS(w uint32) int64 {
	v := (w>>25)<<5 | (w >> 7 & 0x1f)
	return int64(int32(v<<20) >> 20)
}
func immB(w uint32) int64 {
	v := (w>>31)<<12 | (w >> 7 & 1 << 11) | (w >> 25 & 0x3f << 5) | (w >> 8 & 0xf << 1)
	return int64(int32(v<<19) >> 19)
}
func immU(w uint32) int64 { return int64(int32(w & 0xfffff000)) }
func immJ(w uint32) int64 {
	v := (w>>31)<<20 | (w >> 12 & 0xff << 12) | (w >> 20 & 1 << 11) | (w >> 21 & 0x3ff << 1)
	return int64(int32(v<<11) >> 11)
}

// Decode parses a 32-bit word into an Inst. It is the inverse of
// Encode.
func Decode(w uint32) (Inst, error) {
	if op, ok := decSys[w]; ok {
		return Inst{Op: op}, nil
	}
	opcode := w & 0x7f
	f3 := fF3(w)
	switch opcode {
	case opMISCMEM:
		if f3 == 0 {
			return Inst{Op: FENCE}, nil // accept any fence operand sets
		}
	case opLUI, opAUIPC:
		if op, ok := decU[opcode]; ok {
			return Inst{Op: op, Rd: fRd(w), Imm: immU(w)}, nil
		}
	case opJAL:
		if op, ok := decU[opcode]; ok {
			return Inst{Op: op, Rd: fRd(w), Imm: immJ(w)}, nil
		}
	case opJALR, opLOAD, opLOADFP:
		if op, ok := decI[opcode|f3<<12]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Imm: immI(w)}, nil
		}
	case opOPIMM:
		if f3 == 1 || f3 == 5 {
			key := opcode | f3<<12 | (w >> 26 << 26)
			if op, ok := decIS[key]; ok {
				return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Imm: int64(w >> 20 & 0x3f)}, nil
			}
		} else if op, ok := decI[opcode|f3<<12]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Imm: immI(w)}, nil
		}
	case opOPIMM32:
		if f3 == 1 || f3 == 5 {
			key := opcode | f3<<12 | fF7(w)<<25
			if op, ok := decISW[key]; ok {
				return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Imm: int64(w >> 20 & 0x1f)}, nil
			}
		} else if op, ok := decI[opcode|f3<<12]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Imm: immI(w)}, nil
		}
	case opSTORE, opSTOREFP:
		if op, ok := decSB[opcode|f3<<12]; ok {
			return Inst{Op: op, Rs1: fRs1(w), Rs2: fRs2(w), Imm: immS(w)}, nil
		}
	case opBRANCH:
		if op, ok := decSB[opcode|f3<<12]; ok {
			return Inst{Op: op, Rs1: fRs1(w), Rs2: fRs2(w), Imm: immB(w)}, nil
		}
	case opOP, opOP32:
		if op, ok := decR[opcode|f3<<12|fF7(w)<<25]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Rs2: fRs2(w)}, nil
		}
	case opMADD, opMSUB, opNMSUB, opNMADD:
		if op, ok := decR4[opcode|(w>>25&3)<<25]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Rs2: fRs2(w), Rs3: fRs3(w), RM: uint8(f3)}, nil
		}
	case opOPFP:
		f7 := fF7(w)
		base := opcode | f7<<25
		if op, ok := decR2F[base|uint32(fRs2(w))<<20|f3<<12]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w)}, nil
		}
		if op, ok := decR2[base|uint32(fRs2(w))<<20]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), RM: uint8(f3)}, nil
		}
		if op, ok := decRF[base]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Rs2: fRs2(w), RM: uint8(f3)}, nil
		}
		if op, ok := decR[opcode|f3<<12|f7<<25]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Rs2: fRs2(w)}, nil
		}
	case opAMO:
		key := opcode | f3<<12 | (w >> 27 << 27)
		if op, ok := decAMO[key]; ok {
			return Inst{Op: op, Rd: fRd(w), Rs1: fRs1(w), Rs2: fRs2(w)}, nil
		}
	}
	return Inst{}, &DecodeError{Word: w}
}

// intRegNames are the ABI names used by the disassembler, matching the
// paper's listings (a5, s0, ...).
var intRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fpRegNames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// IntRegName returns the ABI name of integer register r.
func IntRegName(r uint8) string { return intRegNames[r&31] }

// FPRegName returns the ABI name of FP register r.
func FPRegName(r uint8) string { return fpRegNames[r&31] }

// isIntRdFP reports whether an FP-family op writes an integer
// destination register, for disassembly register naming.
func isIntRdFP(op Op) bool {
	switch op {
	case FCVTWS, FCVTWUS, FCVTLS, FCVTLUS, FMVXW, FEQS, FLTS, FLES, FCLASSS,
		FCVTWD, FCVTWUD, FCVTLD, FCVTLUD, FMVXD, FEQD, FLTD, FLED, FCLASSD:
		return true
	}
	return false
}

// String disassembles the instruction in conventional GNU syntax.
func (i Inst) String() string {
	s := specs[i.Op]
	name := i.Op.Name()
	switch s.fmt {
	case fmtSYS:
		return name
	case fmtU, fmtJ:
		if s.fmt == fmtJ {
			return fmt.Sprintf("%s %s, %d", name, IntRegName(i.Rd), i.Imm)
		}
		return fmt.Sprintf("%s %s, %#x", name, IntRegName(i.Rd), uint32(i.Imm)>>12)
	case fmtI:
		switch i.Op {
		case FLW, FLD:
			return fmt.Sprintf("%s %s, %d(%s)", name, FPRegName(i.Rd), i.Imm, IntRegName(i.Rs1))
		case LB, LH, LW, LD, LBU, LHU, LWU, JALR:
			return fmt.Sprintf("%s %s, %d(%s)", name, IntRegName(i.Rd), i.Imm, IntRegName(i.Rs1))
		}
		return fmt.Sprintf("%s %s, %s, %d", name, IntRegName(i.Rd), IntRegName(i.Rs1), i.Imm)
	case fmtIS, fmtISW:
		return fmt.Sprintf("%s %s, %s, %d", name, IntRegName(i.Rd), IntRegName(i.Rs1), i.Imm)
	case fmtS:
		if i.Op == FSW || i.Op == FSD {
			return fmt.Sprintf("%s %s, %d(%s)", name, FPRegName(i.Rs2), i.Imm, IntRegName(i.Rs1))
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, IntRegName(i.Rs2), i.Imm, IntRegName(i.Rs1))
	case fmtB:
		return fmt.Sprintf("%s %s, %s, %d", name, IntRegName(i.Rs1), IntRegName(i.Rs2), i.Imm)
	case fmtR4:
		return fmt.Sprintf("%s %s, %s, %s, %s", name, FPRegName(i.Rd), FPRegName(i.Rs1), FPRegName(i.Rs2), FPRegName(i.Rs3))
	case fmtRF:
		return fmt.Sprintf("%s %s, %s, %s", name, FPRegName(i.Rd), FPRegName(i.Rs1), FPRegName(i.Rs2))
	case fmtR2, fmtR2F:
		rdName, rs1Name := FPRegName(i.Rd), FPRegName(i.Rs1)
		if isIntRdFP(i.Op) {
			rdName = IntRegName(i.Rd)
		}
		switch i.Op {
		case FMVWX, FMVDX, FCVTSW, FCVTSWU, FCVTSL, FCVTSLU, FCVTDW, FCVTDWU, FCVTDL, FCVTDLU:
			rs1Name = IntRegName(i.Rs1)
		}
		return fmt.Sprintf("%s %s, %s", name, rdName, rs1Name)
	case fmtAMO:
		return fmt.Sprintf("%s %s, %s, (%s)", name, IntRegName(i.Rd), IntRegName(i.Rs2), IntRegName(i.Rs1))
	case fmtR:
		if i.Op >= FSGNJS && int(i.Op) < len(specs) && specs[i.Op].opcode == opOPFP {
			rd := FPRegName(i.Rd)
			if isIntRdFP(i.Op) {
				rd = IntRegName(i.Rd)
			}
			return fmt.Sprintf("%s %s, %s, %s", name, rd, FPRegName(i.Rs1), FPRegName(i.Rs2))
		}
		return fmt.Sprintf("%s %s, %s, %s", name, IntRegName(i.Rd), IntRegName(i.Rs1), IntRegName(i.Rs2))
	}
	return name
}
