package rv64

import "testing"

// FuzzDecodeRV64 throws arbitrary 32-bit words at the decoder. The
// invariants: Decode never panics, and when a decoded instruction
// re-encodes, decoding the re-encoded word reproduces the same Inst.
func FuzzDecodeRV64(f *testing.F) {
	seeds := []uint32{
		0x00000013, // addi x0, x0, 0 (canonical nop)
		0x00000073, // ecall
		0x00008067, // jalr x0, 0(x1) (ret)
		0x0000006F, // jal x0, .
		0x00B50533, // add a0, a0, a1
		0x0005B503, // ld a0, 0(a1)
		0x00A5B023, // sd a0, 0(a1)
		MustEncode(Inst{Op: LUI, Rd: 5, Imm: 0x12345 << 12}),
		0xFFFFFFFF, 0x00000000, 0x0000100F,
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(inst)
		if err != nil {
			// Decodable forms without a canonical re-encoding (e.g.
			// fence operand sets) are not fuzz failures.
			return
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded word %#08x of %#08x does not decode: %v", w2, w, err)
		}
		if inst2 != inst {
			t.Fatalf("decode(%#08x) = %+v but decode(encode) = %+v", w, inst, inst2)
		}
	})
}
