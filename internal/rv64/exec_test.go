package rv64

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

// run assembles the program, loads it into a fresh machine and executes
// until exit, returning the machine.
func run(t *testing.T, build func(a *Asm), data []byte) *Machine {
	t.Helper()
	a := NewAsm()
	build(a)
	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 1_000_000; i++ {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatalf("step %d at pc %#x: %v", i, mach.PC(), err)
		}
		if done {
			return mach
		}
	}
	t.Fatal("program did not exit")
	return nil
}

// exit emits the exit(code) sequence.
func exit(a *Asm, code int64) {
	a.LI(10, code)
	a.LI(17, sysExit)
	a.ECALL()
}

func TestArithmeticEndToEnd(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.LI(5, 20)
		a.LI(6, 22)
		a.ADD(7, 5, 6) // 42
		a.LI(28, 7)
		a.MUL(29, 7, 28)  // 294
		a.DIV(30, 29, 28) // 42
		a.SUB(31, 30, 7)  // 0
		a.MV(10, 29)
		a.LI(17, sysExit)
		a.ECALL()
	}, nil)
	if m.ExitCode() != 294 {
		t.Fatalf("exit code = %d, want 294", m.ExitCode())
	}
	if m.X[31] != 0 {
		t.Fatalf("x31 = %d, want 0", m.X[31])
	}
}

func TestLoadStoreWidths(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.LI(5, 0x20000)
		a.LI(6, -2) // 0xfffffffffffffffe
		a.SD(6, 5, 0)
		a.LW(7, 5, 0) // sign-extended -2
		a.Emit(Inst{Op: LWU, Rd: 28, Rs1: 5, Imm: 0})
		a.Emit(Inst{Op: LB, Rd: 29, Rs1: 5, Imm: 0})
		a.Emit(Inst{Op: LBU, Rd: 30, Rs1: 5, Imm: 0})
		a.Emit(Inst{Op: LHU, Rd: 31, Rs1: 5, Imm: 0})
		exit(a, 0)
	}, make([]byte, 64))
	if int64(m.X[7]) != -2 {
		t.Errorf("lw = %d, want -2", int64(m.X[7]))
	}
	if m.X[28] != 0xfffffffe {
		t.Errorf("lwu = %#x", m.X[28])
	}
	if int64(m.X[29]) != -2 {
		t.Errorf("lb = %d", int64(m.X[29]))
	}
	if m.X[30] != 0xfe {
		t.Errorf("lbu = %#x", m.X[30])
	}
	if m.X[31] != 0xfffe {
		t.Errorf("lhu = %#x", m.X[31])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a bne loop.
	m := run(t, func(a *Asm) {
		a.LI(5, 0)  // sum
		a.LI(6, 1)  // i
		a.LI(7, 11) // bound
		a.Label("loop")
		a.ADD(5, 5, 6)
		a.ADDI(6, 6, 1)
		a.BNE(6, 7, "loop")
		a.MV(10, 5)
		a.LI(17, sysExit)
		a.ECALL()
	}, nil)
	if m.ExitCode() != 55 {
		t.Fatalf("sum = %d, want 55", m.ExitCode())
	}
}

func TestFloatingPoint(t *testing.T) {
	data := make([]byte, 64)
	m := run(t, func(a *Asm) {
		a.LI(5, 0x20000)
		a.LI(6, 9)
		a.FCVTDL(0, 6) // 9.0
		a.FSQRTD(1, 0) // 3.0
		a.LI(6, 4)
		a.FCVTDL(2, 6)       // 4.0
		a.FMULD(3, 1, 2)     // 12.0
		a.FADDD(4, 3, 1)     // 15.0
		a.FSUBD(5, 4, 2)     // 11.0
		a.FDIVD(6, 5, 1)     // 11/3
		a.FMADDD(7, 1, 2, 4) // 3*4+15 = 27
		a.FSD(7, 5, 0)
		a.FCVTLD(10, 7)
		a.LI(17, sysExit)
		a.ECALL()
	}, data)
	if m.ExitCode() != 27 {
		t.Fatalf("fcvt.l.d result = %d, want 27", m.ExitCode())
	}
	bits, err := m.Mem.Read64(0x20000)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(bits); got != 27.0 {
		t.Fatalf("stored double = %v, want 27", got)
	}
	if got := math.Float64frombits(m.F[6]); math.Abs(got-11.0/3.0) > 1e-15 {
		t.Fatalf("fdiv = %v", got)
	}
}

func TestZeroRegisterInvariant(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.LI(5, 99)
		a.ADD(0, 5, 5) // write to x0 discarded
		a.ADDI(0, 0, 123)
		a.MV(10, 0) // x0 reads zero
		a.LI(17, sysExit)
		a.ECALL()
	}, nil)
	if m.ExitCode() != 0 {
		t.Fatalf("x0 leaked a value: exit=%d", m.ExitCode())
	}
	if m.X[0] != 0 {
		t.Fatalf("x0 = %d", m.X[0])
	}
}

func TestWriteSyscall(t *testing.T) {
	a := NewAsm()
	msg := []byte("hello, rv64\n")
	a.LI(10, 1) // fd
	a.LI(11, 0x20000)
	a.LI(12, int64(len(msg)))
	a.LI(17, sysWrite)
	a.ECALL()
	exit(a, 0)
	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: msg})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	mach.Stdout = &out
	var ev isa.Event
	for {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if out.String() != string(msg) {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestEventRecords(t *testing.T) {
	a := NewAsm()
	a.LI(5, 0x20000) // 1 inst (li small)... may expand; use events by op
	a.FLD(15, 5, 0)  // load event
	a.FSD(15, 5, 8)  // store event
	a.ADDI(5, 5, 8)  // int op
	a.BNE(5, 6, "end")
	a.Label("end")
	exit(a, 0)
	f, err := a.Build(Program{TextBase: 0x10000, DataBase: 0x20000, Data: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var events []isa.Event
	var ev isa.Event
	for {
		done, err := mach.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if done {
			break
		}
	}
	// Find the fld event.
	var fld, fsd, bne *isa.Event
	for i := range events {
		switch events[i].Group {
		case isa.GroupLoad:
			fld = &events[i]
		case isa.GroupStore:
			fsd = &events[i]
		case isa.GroupBranch:
			bne = &events[i]
		}
	}
	if fld == nil || fld.LoadAddr != 0x20000 || fld.LoadSize != 8 {
		t.Fatalf("fld event wrong: %+v", fld)
	}
	if fld.NDsts != 1 || !fld.Dsts[0].IsFP() {
		t.Fatalf("fld dsts: %+v", fld)
	}
	if fsd == nil || fsd.StoreAddr != 0x20008 || fsd.StoreSize != 8 {
		t.Fatalf("fsd event wrong: %+v", fsd)
	}
	if fsd.NSrcs != 2 {
		t.Fatalf("fsd srcs: %+v", fsd)
	}
	// bne x5,x6 with x5=0x20008, x6=0 -> taken.
	if bne == nil || !bne.Branch || !bne.Taken {
		t.Fatalf("bne event wrong: %+v", bne)
	}
}

func TestLIQuickProperty(t *testing.T) {
	f := func(v int64) bool {
		a := NewAsm()
		a.LI(5, v)
		a.MV(10, 5)
		a.LI(17, sysExit)
		a.ECALL()
		file, err := a.Build(Program{TextBase: 0x10000})
		if err != nil {
			return false
		}
		m := mem.New(0x10000, 1<<20)
		mach, err := NewMachine(file, m)
		if err != nil {
			return false
		}
		var ev isa.Event
		for i := 0; i < 1000; i++ {
			done, err := mach.Step(&ev)
			if err != nil {
				return false
			}
			if done {
				return mach.X[5] == uint64(v)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{ADD, 1, 2, 3},
		{SUB, 1, 2, ^uint64(0)},
		{SLL, 1, 63, 1 << 63},
		{SLT, ^uint64(0), 0, 1}, // -1 < 0 signed
		{SLTU, ^uint64(0), 0, 0},
		{SRA, 1 << 63, 63, ^uint64(0)},
		{SRL, 1 << 63, 63, 1},
		{ADDW, 0x7fffffff, 1, 0xffffffff80000000},
		{SUBW, 0, 1, ^uint64(0)},
		{MUL, 1 << 32, 1 << 32, 0},
		{MULHU, 1 << 32, 1 << 32, 1},
		{MULH, ^uint64(0), ^uint64(0), 0}, // -1 * -1 = 1, high = 0
		{DIV, 7, 0, ^uint64(0)},           // div by zero -> -1
		{REM, 7, 0, 7},
		{DIV, 1 << 63, ^uint64(0), 1 << 63}, // MinInt64 / -1 overflow
		{REM, 1 << 63, ^uint64(0), 0},
		{DIVU, 7, 0, ^uint64(0)},
		{REMU, 7, 0, 7},
		{DIVW, 7, 2, 3},
		{REMW, 7, 2, 1},
		{MULW, 0x100000000 + 3, 4, 12},
	}
	for _, c := range cases {
		if got := intOp(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op.Name(), c.a, c.b, got, c.want)
		}
	}
}

func TestMulh128Property(t *testing.T) {
	// Verify mulhu64 against big-integer arithmetic via math/bits-free
	// 32-bit decomposition cross-check.
	f := func(a, b uint64) bool {
		hi := mulhu64(a, b)
		// Recompute differently: split into 32-bit limbs.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		lo := a0 * b0
		m1 := a1*b0 + lo>>32
		m2 := a0*b1 + m1&0xffffffff
		want := a1*b1 + m1>>32 + m2>>32
		return hi == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNaNBoxing(t *testing.T) {
	m := &Machine{}
	// Improperly boxed single reads as canonical NaN.
	m.F[1] = math.Float64bits(1.5) // not NaN-boxed
	if v := m.getS(1); !isNaN32(v) {
		t.Fatalf("unboxed single read as %v, want NaN", v)
	}
	m.F[2] = nanBox(math.Float32bits(2.5))
	if v := m.getS(2); v != 2.5 {
		t.Fatalf("boxed single = %v, want 2.5", v)
	}
}

func TestFPSaturation(t *testing.T) {
	m := &Machine{}
	m.F[1] = math.Float64bits(math.NaN())
	if got := m.fpToInt(Inst{Op: FCVTWD, Rs1: 1}); int32(got) != math.MaxInt32 {
		t.Errorf("fcvt.w.d(NaN) = %d", int32(got))
	}
	m.F[1] = math.Float64bits(1e300)
	if got := m.fpToInt(Inst{Op: FCVTLD, Rs1: 1}); int64(got) != math.MaxInt64 {
		t.Errorf("fcvt.l.d(1e300) = %d", int64(got))
	}
	m.F[1] = math.Float64bits(-1e300)
	if got := m.fpToInt(Inst{Op: FCVTLUD, Rs1: 1}); got != 0 {
		t.Errorf("fcvt.lu.d(-1e300) = %d", got)
	}
}

func TestAMO(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.LI(5, 0x20000)
		a.LI(6, 5)
		a.SD(6, 5, 0)
		a.LI(7, 37)
		a.Emit(Inst{Op: AMOADDD, Rd: 28, Rs1: 5, Rs2: 7}) // mem=42, x28=5
		a.Emit(Inst{Op: LRD, Rd: 29, Rs1: 5})             // x29=42
		a.LI(7, 100)
		a.Emit(Inst{Op: SCD, Rd: 30, Rs1: 5, Rs2: 7}) // mem=100, x30=0
		a.Emit(Inst{Op: AMOMAXD, Rd: 31, Rs1: 5, Rs2: 6})
		exit(a, 0)
	}, make([]byte, 64))
	if m.X[28] != 5 || m.X[29] != 42 || m.X[30] != 0 || m.X[31] != 100 {
		t.Fatalf("amo results: x28=%d x29=%d x30=%d x31=%d", m.X[28], m.X[29], m.X[30], m.X[31])
	}
	v, _ := m.Mem.Read64(0x20000)
	if v != 100 {
		t.Fatalf("final mem = %d", v)
	}
}

func TestFetchOutsideText(t *testing.T) {
	a := NewAsm()
	a.Emit(Inst{Op: JALR, Rd: 0, Rs1: 0, Imm: 0}) // jump to 0
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New(0x10000, 1<<20)
	mach, err := NewMachine(f, m)
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	if _, err := mach.Step(&ev); err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Step(&ev); err == nil {
		t.Fatal("expected fetch error after jump to 0")
	}
}

func TestStepsCounter(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.NOP()
		a.NOP()
		a.NOP()
		exit(a, 0)
	}, nil)
	// 3 nops + LI(a0,0)=1 + LI(a7,93)=1 + ecall = 6.
	if m.Steps() != 6 {
		t.Fatalf("steps = %d, want 6", m.Steps())
	}
}

func TestWordOpsEndToEnd(t *testing.T) {
	m := run(t, func(a *Asm) {
		a.LI(5, 0x7FFFFFFF)
		a.LI(6, 1)
		a.Emit(Inst{Op: ADDW, Rd: 7, Rs1: 5, Rs2: 6})   // wraps to MinInt32, sign-extended
		a.Emit(Inst{Op: SUBW, Rd: 28, Rs1: 6, Rs2: 5})  // 1 - MaxInt32
		a.Emit(Inst{Op: SLLW, Rd: 29, Rs1: 6, Rs2: 5})  // 1 << 31 -> negative
		a.Emit(Inst{Op: ADDIW, Rd: 30, Rs1: 5, Imm: 1}) // same wrap via immediate
		a.Emit(Inst{Op: SRAIW, Rd: 31, Rs1: 7, Imm: 31})
		exit(a, 0)
	}, nil)
	if int64(m.X[7]) != -2147483648 {
		t.Errorf("addw wrap: %d", int64(m.X[7]))
	}
	if int64(m.X[28]) != -2147483646 {
		t.Errorf("subw: %d", int64(m.X[28]))
	}
	if int64(m.X[29]) != -2147483648 {
		t.Errorf("sllw: %d", int64(m.X[29]))
	}
	if m.X[30] != m.X[7] {
		t.Errorf("addiw %d != addw %d", int64(m.X[30]), int64(m.X[7]))
	}
	if int64(m.X[31]) != -1 {
		t.Errorf("sraiw: %d", int64(m.X[31]))
	}
}

func TestMemoryFaultSurfaces(t *testing.T) {
	a := NewAsm()
	a.LI(5, 0xFF000000) // way outside the image
	a.LD(6, 5, 0)
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 10; i++ {
		if _, err := m.Step(&ev); err != nil {
			return // fault reported, good
		}
	}
	t.Fatal("out-of-range load did not fault")
}

func TestUnsupportedSyscall(t *testing.T) {
	a := NewAsm()
	a.LI(17, 9999)
	a.ECALL()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 10; i++ {
		if _, err := m.Step(&ev); err != nil {
			return
		}
	}
	t.Fatal("unknown syscall did not error")
}
