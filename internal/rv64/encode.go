package rv64

import "fmt"

// EncodeError reports an instruction that cannot be encoded.
type EncodeError struct {
	Inst Inst
	Why  string
}

// Error implements the error interface.
func (e *EncodeError) Error() string {
	return fmt.Sprintf("rv64: cannot encode %s: %s", e.Inst.Op.Name(), e.Why)
}

func encErr(i Inst, why string) error { return &EncodeError{Inst: i, Why: why} }

// fitsSigned reports whether v fits in a signed immediate of the given
// bit width.
func fitsSigned(v int64, bits uint) bool {
	min := int64(-1) << (bits - 1)
	max := int64(1)<<(bits-1) - 1
	return v >= min && v <= max
}

// Encode produces the 32-bit word for a decoded instruction. It is the
// exact inverse of Decode for every representable instruction.
func Encode(i Inst) (uint32, error) {
	if int(i.Op) >= len(specs) || specs[i.Op].name == "" {
		return 0, encErr(i, "unknown op")
	}
	s := specs[i.Op]
	if i.Rd > 31 || i.Rs1 > 31 || i.Rs2 > 31 || i.Rs3 > 31 {
		return 0, encErr(i, "register out of range")
	}
	if i.RM > 7 {
		return 0, encErr(i, "rounding mode out of range")
	}
	rd, rs1, rs2, rs3 := uint32(i.Rd), uint32(i.Rs1), uint32(i.Rs2), uint32(i.Rs3)
	rm := uint32(i.RM)
	switch s.fmt {
	case fmtR, fmtAMO:
		return s.f7<<25 | rs2<<20 | rs1<<15 | s.f3<<12 | rd<<7 | s.opcode, nil
	case fmtR4:
		return rs3<<27 | (s.f7&3)<<25 | rs2<<20 | rs1<<15 | rm<<12 | rd<<7 | s.opcode, nil
	case fmtRF:
		return s.f7<<25 | rs2<<20 | rs1<<15 | rm<<12 | rd<<7 | s.opcode, nil
	case fmtR2:
		return s.f7<<25 | s.rs2fix<<20 | rs1<<15 | rm<<12 | rd<<7 | s.opcode, nil
	case fmtR2F:
		return s.f7<<25 | s.rs2fix<<20 | rs1<<15 | s.f3<<12 | rd<<7 | s.opcode, nil
	case fmtI:
		if !fitsSigned(i.Imm, 12) {
			return 0, encErr(i, fmt.Sprintf("immediate %d exceeds 12 bits", i.Imm))
		}
		return uint32(i.Imm&0xfff)<<20 | rs1<<15 | s.f3<<12 | rd<<7 | s.opcode, nil
	case fmtIS:
		if i.Imm < 0 || i.Imm > 63 {
			return 0, encErr(i, "shift amount out of range")
		}
		return (s.f7>>1)<<26 | uint32(i.Imm)<<20 | rs1<<15 | s.f3<<12 | rd<<7 | s.opcode, nil
	case fmtISW:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, encErr(i, "shift amount out of range")
		}
		return s.f7<<25 | uint32(i.Imm)<<20 | rs1<<15 | s.f3<<12 | rd<<7 | s.opcode, nil
	case fmtS:
		if !fitsSigned(i.Imm, 12) {
			return 0, encErr(i, fmt.Sprintf("immediate %d exceeds 12 bits", i.Imm))
		}
		imm := uint32(i.Imm & 0xfff)
		return (imm>>5)<<25 | rs2<<20 | rs1<<15 | s.f3<<12 | (imm&0x1f)<<7 | s.opcode, nil
	case fmtB:
		if !fitsSigned(i.Imm, 13) || i.Imm&1 != 0 {
			return 0, encErr(i, fmt.Sprintf("branch offset %d invalid", i.Imm))
		}
		imm := uint32(i.Imm & 0x1fff)
		return (imm>>12)<<31 | ((imm>>5)&0x3f)<<25 | rs2<<20 | rs1<<15 | s.f3<<12 |
			((imm>>1)&0xf)<<8 | ((imm>>11)&1)<<7 | s.opcode, nil
	case fmtU:
		if i.Imm&0xfff != 0 {
			return 0, encErr(i, "U-type immediate must be a multiple of 4096")
		}
		if !fitsSigned(i.Imm, 32) {
			return 0, encErr(i, "U-type immediate exceeds 32 bits")
		}
		return uint32(i.Imm) | rd<<7 | s.opcode, nil
	case fmtJ:
		if !fitsSigned(i.Imm, 21) || i.Imm&1 != 0 {
			return 0, encErr(i, fmt.Sprintf("jump offset %d invalid", i.Imm))
		}
		imm := uint32(i.Imm & 0x1fffff)
		return (imm>>20)<<31 | ((imm>>1)&0x3ff)<<21 | ((imm>>11)&1)<<20 |
			((imm>>12)&0xff)<<12 | rd<<7 | s.opcode, nil
	case fmtSYS:
		return s.fixed, nil
	}
	return 0, encErr(i, "unhandled format")
}

// MustEncode encodes i, panicking on error; intended for compiler
// back ends whose output is validated by construction.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
