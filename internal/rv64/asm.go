package rv64

import (
	"fmt"

	"isacmp/internal/elfio"
)

// Asm builds an RV64G text section instruction by instruction,
// resolving labels to branch offsets, and emits a statically linked
// ELF executable. It is the back end the compiler targets, and doubles
// as a tiny assembler for tests and examples.
type Asm struct {
	insts  []Inst
	fixups []fixup
	labels map[string]int // label name -> instruction index
	syms   []symMark
	errs   []error
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // B-format PC-relative
	fixJAL                     // J-format PC-relative
)

type fixup struct {
	index int
	label string
	kind  fixupKind
}

type symMark struct {
	name  string
	index int
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (a *Asm) Len() int { return len(a.insts) }

// Emit appends a raw instruction.
func (a *Asm) Emit(i Inst) { a.insts = append(a.insts, i) }

// Label defines name at the current position. Branches may reference
// labels before or after their definition.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("rv64: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.insts)
}

// Symbol marks the current position as the start of a named region
// (e.g. a benchmark kernel); the region extends to the next symbol or
// the end of text. Symbols become ELF symbols.
func (a *Asm) Symbol(name string) {
	a.syms = append(a.syms, symMark{name: name, index: len(a.insts)})
}

// Integer register-register operations.

// ADD emits add rd, rs1, rs2.
func (a *Asm) ADD(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: ADD, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SUB emits sub rd, rs1, rs2.
func (a *Asm) SUB(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SUB, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// MUL emits mul rd, rs1, rs2.
func (a *Asm) MUL(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: MUL, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// DIV emits div rd, rs1, rs2.
func (a *Asm) DIV(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: DIV, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// REM emits rem rd, rs1, rs2.
func (a *Asm) REM(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: REM, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// AND emits and rd, rs1, rs2.
func (a *Asm) AND(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: AND, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// OR emits or rd, rs1, rs2.
func (a *Asm) OR(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: OR, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// XOR emits xor rd, rs1, rs2.
func (a *Asm) XOR(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: XOR, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SLT emits slt rd, rs1, rs2.
func (a *Asm) SLT(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SLT, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SLTU emits sltu rd, rs1, rs2.
func (a *Asm) SLTU(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SLTU, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SLL emits sll rd, rs1, rs2.
func (a *Asm) SLL(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SLL, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SRL emits srl rd, rs1, rs2.
func (a *Asm) SRL(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SRL, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// SRA emits sra rd, rs1, rs2.
func (a *Asm) SRA(rd, rs1, rs2 uint8) { a.Emit(Inst{Op: SRA, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Immediate forms.

// ADDI emits addi rd, rs1, imm.
func (a *Asm) ADDI(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm}) }

// ANDI emits andi rd, rs1, imm.
func (a *Asm) ANDI(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm}) }

// ORI emits ori rd, rs1, imm.
func (a *Asm) ORI(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm}) }

// XORI emits xori rd, rs1, imm.
func (a *Asm) XORI(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm}) }

// SLLI emits slli rd, rs1, shamt.
func (a *Asm) SLLI(rd, rs1 uint8, sh int64) { a.Emit(Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: sh}) }

// SRLI emits srli rd, rs1, shamt.
func (a *Asm) SRLI(rd, rs1 uint8, sh int64) { a.Emit(Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: sh}) }

// SRAI emits srai rd, rs1, shamt.
func (a *Asm) SRAI(rd, rs1 uint8, sh int64) { a.Emit(Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: sh}) }

// SLTIU emits sltiu rd, rs1, imm.
func (a *Asm) SLTIU(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: imm}) }

// MV emits the canonical register move (addi rd, rs, 0).
func (a *Asm) MV(rd, rs uint8) { a.ADDI(rd, rs, 0) }

// NOP emits addi x0, x0, 0.
func (a *Asm) NOP() { a.ADDI(0, 0, 0) }

// Loads and stores.

// LD emits ld rd, imm(rs1).
func (a *Asm) LD(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: LD, Rd: rd, Rs1: rs1, Imm: imm}) }

// LW emits lw rd, imm(rs1).
func (a *Asm) LW(rd, rs1 uint8, imm int64) { a.Emit(Inst{Op: LW, Rd: rd, Rs1: rs1, Imm: imm}) }

// SD emits sd rs2, imm(rs1).
func (a *Asm) SD(rs2, rs1 uint8, imm int64) { a.Emit(Inst{Op: SD, Rs1: rs1, Rs2: rs2, Imm: imm}) }

// SW emits sw rs2, imm(rs1).
func (a *Asm) SW(rs2, rs1 uint8, imm int64) { a.Emit(Inst{Op: SW, Rs1: rs1, Rs2: rs2, Imm: imm}) }

// FLD emits fld frd, imm(rs1).
func (a *Asm) FLD(frd, rs1 uint8, imm int64) { a.Emit(Inst{Op: FLD, Rd: frd, Rs1: rs1, Imm: imm}) }

// FSD emits fsd frs2, imm(rs1).
func (a *Asm) FSD(frs2, rs1 uint8, imm int64) {
	a.Emit(Inst{Op: FSD, Rs1: rs1, Rs2: frs2, Imm: imm})
}

// Double-precision arithmetic.

// FADDD emits fadd.d frd, frs1, frs2.
func (a *Asm) FADDD(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FADDD, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FSUBD emits fsub.d frd, frs1, frs2.
func (a *Asm) FSUBD(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FSUBD, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FMULD emits fmul.d frd, frs1, frs2.
func (a *Asm) FMULD(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FMULD, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FDIVD emits fdiv.d frd, frs1, frs2.
func (a *Asm) FDIVD(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FDIVD, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FSQRTD emits fsqrt.d frd, frs1.
func (a *Asm) FSQRTD(frd, frs1 uint8) { a.Emit(Inst{Op: FSQRTD, Rd: frd, Rs1: frs1}) }

// FMADDD emits fmadd.d frd, frs1, frs2, frs3 (frd = frs1*frs2 + frs3).
func (a *Asm) FMADDD(frd, frs1, frs2, frs3 uint8) {
	a.Emit(Inst{Op: FMADDD, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: frs3})
}

// FMSUBD emits fmsub.d frd, frs1, frs2, frs3 (frd = frs1*frs2 - frs3).
func (a *Asm) FMSUBD(frd, frs1, frs2, frs3 uint8) {
	a.Emit(Inst{Op: FMSUBD, Rd: frd, Rs1: frs1, Rs2: frs2, Rs3: frs3})
}

// FMVD emits the canonical FP move fsgnj.d frd, frs, frs.
func (a *Asm) FMVD(frd, frs uint8) { a.Emit(Inst{Op: FSGNJD, Rd: frd, Rs1: frs, Rs2: frs}) }

// FNEGD emits fsgnjn.d frd, frs, frs.
func (a *Asm) FNEGD(frd, frs uint8) { a.Emit(Inst{Op: FSGNJND, Rd: frd, Rs1: frs, Rs2: frs}) }

// FABSD emits fsgnjx.d frd, frs, frs.
func (a *Asm) FABSD(frd, frs uint8) { a.Emit(Inst{Op: FSGNJXD, Rd: frd, Rs1: frs, Rs2: frs}) }

// FMIND emits fmin.d frd, frs1, frs2.
func (a *Asm) FMIND(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FMIND, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FMAXD emits fmax.d frd, frs1, frs2.
func (a *Asm) FMAXD(frd, frs1, frs2 uint8) { a.Emit(Inst{Op: FMAXD, Rd: frd, Rs1: frs1, Rs2: frs2}) }

// FCVTDL emits fcvt.d.l frd, rs1 (signed 64-bit int to double).
func (a *Asm) FCVTDL(frd, rs1 uint8) { a.Emit(Inst{Op: FCVTDL, Rd: frd, Rs1: rs1}) }

// FCVTLD emits fcvt.l.d rd, frs1, rtz (double to signed 64-bit int,
// truncating, as C casts compile to).
func (a *Asm) FCVTLD(rd, frs1 uint8) { a.Emit(Inst{Op: FCVTLD, Rd: rd, Rs1: frs1, RM: 1}) }

// FMVDX emits fmv.d.x frd, rs1 (move raw bits).
func (a *Asm) FMVDX(frd, rs1 uint8) { a.Emit(Inst{Op: FMVDX, Rd: frd, Rs1: rs1}) }

// FMVXD emits fmv.x.d rd, frs1.
func (a *Asm) FMVXD(rd, frs1 uint8) { a.Emit(Inst{Op: FMVXD, Rd: rd, Rs1: frs1}) }

// FLTD emits flt.d rd, frs1, frs2.
func (a *Asm) FLTD(rd, frs1, frs2 uint8) { a.Emit(Inst{Op: FLTD, Rd: rd, Rs1: frs1, Rs2: frs2}) }

// FLED emits fle.d rd, frs1, frs2.
func (a *Asm) FLED(rd, frs1, frs2 uint8) { a.Emit(Inst{Op: FLED, Rd: rd, Rs1: frs1, Rs2: frs2}) }

// FEQD emits feq.d rd, frs1, frs2.
func (a *Asm) FEQD(rd, frs1, frs2 uint8) { a.Emit(Inst{Op: FEQD, Rd: rd, Rs1: frs1, Rs2: frs2}) }

// Control flow. Branch targets are labels.

func (a *Asm) branch(op Op, rs1, rs2 uint8, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label, kind: fixBranch})
	a.Emit(Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// BEQ emits beq rs1, rs2, label.
func (a *Asm) BEQ(rs1, rs2 uint8, label string) { a.branch(BEQ, rs1, rs2, label) }

// BNE emits bne rs1, rs2, label.
func (a *Asm) BNE(rs1, rs2 uint8, label string) { a.branch(BNE, rs1, rs2, label) }

// BLT emits blt rs1, rs2, label.
func (a *Asm) BLT(rs1, rs2 uint8, label string) { a.branch(BLT, rs1, rs2, label) }

// BGE emits bge rs1, rs2, label.
func (a *Asm) BGE(rs1, rs2 uint8, label string) { a.branch(BGE, rs1, rs2, label) }

// BLTU emits bltu rs1, rs2, label.
func (a *Asm) BLTU(rs1, rs2 uint8, label string) { a.branch(BLTU, rs1, rs2, label) }

// BGEU emits bgeu rs1, rs2, label.
func (a *Asm) BGEU(rs1, rs2 uint8, label string) { a.branch(BGEU, rs1, rs2, label) }

// J emits an unconditional jump (jal x0, label).
func (a *Asm) J(label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label, kind: fixJAL})
	a.Emit(Inst{Op: JAL, Rd: 0})
}

// CALL emits jal ra, label.
func (a *Asm) CALL(label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.insts), label: label, kind: fixJAL})
	a.Emit(Inst{Op: JAL, Rd: 1})
}

// RET emits jalr x0, 0(ra).
func (a *Asm) RET() { a.Emit(Inst{Op: JALR, Rd: 0, Rs1: 1}) }

// ECALL emits the system-call instruction.
func (a *Asm) ECALL() { a.Emit(Inst{Op: ECALL}) }

// LI loads a 64-bit constant into rd using the standard lui/addiw/
// slli/addi expansion. The number of instructions emitted depends on
// the constant.
func (a *Asm) LI(rd uint8, v int64) {
	if v >= -2048 && v < 2048 {
		a.ADDI(rd, 0, v)
		return
	}
	if v == int64(int32(v)) {
		// lui + addiw. lui sets bits [31:12]; addiw adds the sign-
		// extended low 12 bits, so round the upper part to compensate.
		lo := v << 52 >> 52 // sign-extended low 12 bits
		hi := (v - lo) & 0xffffffff
		if hi == 0 { // value like 0x800..0xfff with negative lo
			a.ADDI(rd, 0, lo) // unreachable for |v|>=2048, kept for safety
			return
		}
		// lui immediate is the sign-extended hi value.
		a.Emit(Inst{Op: LUI, Rd: rd, Imm: int64(int32(uint32(hi)))})
		if lo != 0 {
			a.Emit(Inst{Op: ADDIW, Rd: rd, Rs1: rd, Imm: lo})
		}
		return
	}
	// General 64-bit: build upper 32 bits then shift in the lower ones
	// 12 bits at a time (the classic GAS expansion).
	lo12 := v << 52 >> 52
	rest := v - lo12
	shift := 0
	for rest != 0 && rest&0xfff == 0 {
		rest >>= 12
		shift += 12
	}
	if rest == int64(int32(rest)) {
		a.LI(rd, rest)
	} else {
		a.LI(rd, rest) // recursion terminates: rest loses ≥12 bits each round
	}
	if shift > 0 {
		a.SLLI(rd, rd, int64(shift))
	}
	if lo12 != 0 {
		a.ADDI(rd, rd, lo12)
	}
}

// invertBranch returns the opposite conditional branch.
func invertBranch(op Op) Op {
	switch op {
	case BEQ:
		return BNE
	case BNE:
		return BEQ
	case BLT:
		return BGE
	case BGE:
		return BLT
	case BLTU:
		return BGEU
	case BGEU:
		return BLTU
	}
	return op
}

// Assemble resolves labels against the given text base address and
// returns the encoded words. Conditional branches whose targets fall
// outside the ±4 KiB B-format range are relaxed into an inverted
// branch over an unconditional jump, as GNU as does.
func (a *Asm) Assemble(base uint64) ([]uint32, error) {
	words, _, err := a.assemble(base)
	return words, err
}

// assemble does the work of Assemble and additionally returns the
// post-relaxation instruction index of every Symbol mark.
func (a *Asm) assemble(base uint64) ([]uint32, []int, error) {
	if len(a.errs) > 0 {
		return nil, nil, a.errs[0]
	}
	insts := make([]Inst, len(a.insts))
	copy(insts, a.insts)
	fixups := make([]fixup, len(a.fixups))
	copy(fixups, a.fixups)
	labels := make(map[string]int, len(a.labels))
	for k, v := range a.labels {
		labels[k] = v
	}
	symIdx := make([]int, len(a.syms))
	for i, s := range a.syms {
		symIdx[i] = s.index
	}

	// Iteratively relax out-of-range conditional branches. Each pass
	// expands at most one branch into two instructions, shifting all
	// later labels and fixups; iteration stops when everything fits.
	for pass := 0; pass < len(insts)+8; pass++ {
		relaxed := false
		for fi := range fixups {
			f := &fixups[fi]
			target, ok := labels[f.label]
			if !ok {
				return nil, nil, fmt.Errorf("rv64: undefined label %q", f.label)
			}
			off := int64(target-f.index) * 4
			if f.kind != fixBranch || (off >= -4096 && off < 4096) {
				continue
			}
			// Relax: invert the condition to skip over a jal.
			br := insts[f.index]
			br.Op = invertBranch(br.Op)
			br.Imm = 8
			jal := Inst{Op: JAL, Rd: 0}
			insts = append(insts[:f.index+1], append([]Inst{jal}, insts[f.index+1:]...)...)
			insts[f.index] = br
			at := f.index
			for li, v := range labels {
				if v > at {
					labels[li] = v + 1
				}
			}
			for fj := range fixups {
				if fixups[fj].index > at {
					fixups[fj].index++
				}
			}
			for si := range symIdx {
				if symIdx[si] > at {
					symIdx[si]++
				}
			}
			// The original fixup now resolves the jal.
			f.index = at + 1
			f.kind = fixJAL
			relaxed = true
			break
		}
		if !relaxed {
			break
		}
	}

	for _, f := range fixups {
		target := labels[f.label]
		insts[f.index].Imm = int64(target-f.index) * 4
	}
	words := make([]uint32, len(insts))
	for i, inst := range insts {
		w, err := Encode(inst)
		if err != nil {
			return nil, nil, fmt.Errorf("rv64: at %#x: %w", base+uint64(i*4), err)
		}
		words[i] = w
	}
	return words, symIdx, nil
}

// Program bundles assembled text with a data image into a runnable ELF
// file.
type Program struct {
	TextBase uint64
	DataBase uint64
	Data     []byte
}

// Build assembles the text at p.TextBase and produces the ELF file,
// including one symbol per Symbol call.
func (a *Asm) Build(p Program) (*elfio.File, error) {
	words, symIdx, err := a.assemble(p.TextBase)
	if err != nil {
		return nil, err
	}
	text := make([]byte, len(words)*4)
	for i, w := range words {
		text[i*4] = byte(w)
		text[i*4+1] = byte(w >> 8)
		text[i*4+2] = byte(w >> 16)
		text[i*4+3] = byte(w >> 24)
	}
	f := &elfio.File{
		Machine: elfio.EMRiscV,
		Entry:   p.TextBase,
		Segments: []elfio.Segment{
			{Vaddr: p.TextBase, Data: text, Flags: elfio.PFR | elfio.PFX, Name: ".text"},
		},
	}
	if len(p.Data) > 0 {
		f.Segments = append(f.Segments, elfio.Segment{
			Vaddr: p.DataBase, Data: p.Data, Flags: elfio.PFR | elfio.PFW, Name: ".data",
		})
	}
	for i, s := range a.syms {
		end := len(words)
		if i+1 < len(a.syms) {
			end = symIdx[i+1]
		}
		f.Symbols = append(f.Symbols, elfio.Symbol{
			Name:  s.name,
			Value: p.TextBase + uint64(symIdx[i]*4),
			Size:  uint64((end - symIdx[i]) * 4),
		})
	}
	return f, nil
}
