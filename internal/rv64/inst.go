// Package rv64 implements the RV64G (RV64IMAFD) instruction set: an
// assembler/encoder, a decoder, a disassembler and an architectural
// executor. This is the RISC-V support the paper added to SimEng,
// rebuilt in Go. The compressed (C) extension is deliberately omitted,
// matching the paper's choice of -march=rv64g.
package rv64

import "fmt"

// Op enumerates every RV64G operation supported by this package.
type Op uint16

// RV64I base integer instructions.
const (
	OpInvalid Op = iota
	LUI
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU
	SB
	SH
	SW
	SD
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	FENCE
	ECALL
	EBREAK
	ADDIW
	SLLIW
	SRLIW
	SRAIW
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW

	// M extension.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// A extension (single-hart semantics: always succeed).
	LRW
	SCW
	AMOSWAPW
	AMOADDW
	AMOXORW
	AMOANDW
	AMOORW
	AMOMINW
	AMOMAXW
	AMOMINUW
	AMOMAXUW
	LRD
	SCD
	AMOSWAPD
	AMOADDD
	AMOXORD
	AMOANDD
	AMOORD
	AMOMIND
	AMOMAXD
	AMOMINUD
	AMOMAXUD

	// F extension (single precision, NaN-boxed in 64-bit registers).
	FLW
	FSW
	FMADDS
	FMSUBS
	FNMSUBS
	FNMADDS
	FADDS
	FSUBS
	FMULS
	FDIVS
	FSQRTS
	FSGNJS
	FSGNJNS
	FSGNJXS
	FMINS
	FMAXS
	FCVTWS
	FCVTWUS
	FCVTLS
	FCVTLUS
	FMVXW
	FEQS
	FLTS
	FLES
	FCLASSS
	FCVTSW
	FCVTSWU
	FCVTSL
	FCVTSLU
	FMVWX

	// D extension (double precision).
	FLD
	FSD
	FMADDD
	FMSUBD
	FNMSUBD
	FNMADDD
	FADDD
	FSUBD
	FMULD
	FDIVD
	FSQRTD
	FSGNJD
	FSGNJND
	FSGNJXD
	FMIND
	FMAXD
	FCVTSD
	FCVTDS
	FEQD
	FLTD
	FLED
	FCLASSD
	FCVTWD
	FCVTWUD
	FCVTLD
	FCVTLUD
	FMVXD
	FCVTDW
	FCVTDWU
	FCVTDL
	FCVTDLU
	FMVDX

	numOps
)

// Inst is a decoded RV64G instruction. Which fields are meaningful
// depends on the operation's format; unused fields are zero.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Rs3 uint8 // R4-format fused multiply-add only
	RM  uint8 // FP rounding mode field (kept for faithful round-trips)
	Imm int64 // sign-extended immediate (I/S/B/U/J formats)
}

// instFormat describes how an operation's fields map onto the 32-bit
// word.
type instFormat uint8

const (
	fmtR   instFormat = iota // rd, rs1, rs2, funct3, funct7
	fmtR4                    // rd, rs1, rs2, rs3, rm (fused multiply-add)
	fmtRF                    // FP R-type with rm in funct3
	fmtR2                    // FP unary: rs2 field fixed by spec, rm in funct3
	fmtR2F                   // FP unary with fixed funct3 (FMV/FCLASS/compare-style)
	fmtI                     // rd, rs1, imm12
	fmtIS                    // shift-immediate: imm is 6-bit shamt, funct7>>1 fixed
	fmtISW                   // 32-bit shift-immediate: 5-bit shamt
	fmtS                     // store: rs1, rs2, imm12
	fmtB                     // branch: rs1, rs2, imm13 (even)
	fmtU                     // rd, imm20<<12
	fmtJ                     // rd, imm21 (even)
	fmtAMO                   // A extension: funct5 in top bits, aq/rl zeroed
	fmtSYS                   // fixed 32-bit word (ECALL/EBREAK/FENCE)
)

type spec struct {
	fmt    instFormat
	opcode uint32 // bits [6:0]
	f3     uint32 // bits [14:12]
	f7     uint32 // bits [31:25]; for fmtAMO this is funct5<<2; for fmtR2* includes fixed rs2 via rs2fix
	rs2fix uint32 // fixed rs2 field for fmtR2/fmtR2F (e.g. FCVT source-type code)
	fixed  uint32 // whole word for fmtSYS
	name   string
}

// Major opcodes.
const (
	opLOAD    = 0x03
	opLOADFP  = 0x07
	opMISCMEM = 0x0F
	opOPIMM   = 0x13
	opAUIPC   = 0x17
	opOPIMM32 = 0x1B
	opSTORE   = 0x23
	opSTOREFP = 0x27
	opAMO     = 0x2F
	opOP      = 0x33
	opLUI     = 0x37
	opOP32    = 0x3B
	opMADD    = 0x43
	opMSUB    = 0x47
	opNMSUB   = 0x4B
	opNMADD   = 0x4F
	opOPFP    = 0x53
	opBRANCH  = 0x63
	opJALR    = 0x67
	opJAL     = 0x6F
	opSYSTEM  = 0x73
)

var specs = [numOps]spec{
	LUI:    {fmt: fmtU, opcode: opLUI, name: "lui"},
	AUIPC:  {fmt: fmtU, opcode: opAUIPC, name: "auipc"},
	JAL:    {fmt: fmtJ, opcode: opJAL, name: "jal"},
	JALR:   {fmt: fmtI, opcode: opJALR, f3: 0, name: "jalr"},
	BEQ:    {fmt: fmtB, opcode: opBRANCH, f3: 0, name: "beq"},
	BNE:    {fmt: fmtB, opcode: opBRANCH, f3: 1, name: "bne"},
	BLT:    {fmt: fmtB, opcode: opBRANCH, f3: 4, name: "blt"},
	BGE:    {fmt: fmtB, opcode: opBRANCH, f3: 5, name: "bge"},
	BLTU:   {fmt: fmtB, opcode: opBRANCH, f3: 6, name: "bltu"},
	BGEU:   {fmt: fmtB, opcode: opBRANCH, f3: 7, name: "bgeu"},
	LB:     {fmt: fmtI, opcode: opLOAD, f3: 0, name: "lb"},
	LH:     {fmt: fmtI, opcode: opLOAD, f3: 1, name: "lh"},
	LW:     {fmt: fmtI, opcode: opLOAD, f3: 2, name: "lw"},
	LD:     {fmt: fmtI, opcode: opLOAD, f3: 3, name: "ld"},
	LBU:    {fmt: fmtI, opcode: opLOAD, f3: 4, name: "lbu"},
	LHU:    {fmt: fmtI, opcode: opLOAD, f3: 5, name: "lhu"},
	LWU:    {fmt: fmtI, opcode: opLOAD, f3: 6, name: "lwu"},
	SB:     {fmt: fmtS, opcode: opSTORE, f3: 0, name: "sb"},
	SH:     {fmt: fmtS, opcode: opSTORE, f3: 1, name: "sh"},
	SW:     {fmt: fmtS, opcode: opSTORE, f3: 2, name: "sw"},
	SD:     {fmt: fmtS, opcode: opSTORE, f3: 3, name: "sd"},
	ADDI:   {fmt: fmtI, opcode: opOPIMM, f3: 0, name: "addi"},
	SLTI:   {fmt: fmtI, opcode: opOPIMM, f3: 2, name: "slti"},
	SLTIU:  {fmt: fmtI, opcode: opOPIMM, f3: 3, name: "sltiu"},
	XORI:   {fmt: fmtI, opcode: opOPIMM, f3: 4, name: "xori"},
	ORI:    {fmt: fmtI, opcode: opOPIMM, f3: 6, name: "ori"},
	ANDI:   {fmt: fmtI, opcode: opOPIMM, f3: 7, name: "andi"},
	SLLI:   {fmt: fmtIS, opcode: opOPIMM, f3: 1, f7: 0x00, name: "slli"},
	SRLI:   {fmt: fmtIS, opcode: opOPIMM, f3: 5, f7: 0x00, name: "srli"},
	SRAI:   {fmt: fmtIS, opcode: opOPIMM, f3: 5, f7: 0x20, name: "srai"},
	ADD:    {fmt: fmtR, opcode: opOP, f3: 0, f7: 0x00, name: "add"},
	SUB:    {fmt: fmtR, opcode: opOP, f3: 0, f7: 0x20, name: "sub"},
	SLL:    {fmt: fmtR, opcode: opOP, f3: 1, f7: 0x00, name: "sll"},
	SLT:    {fmt: fmtR, opcode: opOP, f3: 2, f7: 0x00, name: "slt"},
	SLTU:   {fmt: fmtR, opcode: opOP, f3: 3, f7: 0x00, name: "sltu"},
	XOR:    {fmt: fmtR, opcode: opOP, f3: 4, f7: 0x00, name: "xor"},
	SRL:    {fmt: fmtR, opcode: opOP, f3: 5, f7: 0x00, name: "srl"},
	SRA:    {fmt: fmtR, opcode: opOP, f3: 5, f7: 0x20, name: "sra"},
	OR:     {fmt: fmtR, opcode: opOP, f3: 6, f7: 0x00, name: "or"},
	AND:    {fmt: fmtR, opcode: opOP, f3: 7, f7: 0x00, name: "and"},
	FENCE:  {fmt: fmtSYS, fixed: 0x0ff0000f, name: "fence"},
	ECALL:  {fmt: fmtSYS, fixed: 0x00000073, name: "ecall"},
	EBREAK: {fmt: fmtSYS, fixed: 0x00100073, name: "ebreak"},
	ADDIW:  {fmt: fmtI, opcode: opOPIMM32, f3: 0, name: "addiw"},
	SLLIW:  {fmt: fmtISW, opcode: opOPIMM32, f3: 1, f7: 0x00, name: "slliw"},
	SRLIW:  {fmt: fmtISW, opcode: opOPIMM32, f3: 5, f7: 0x00, name: "srliw"},
	SRAIW:  {fmt: fmtISW, opcode: opOPIMM32, f3: 5, f7: 0x20, name: "sraiw"},
	ADDW:   {fmt: fmtR, opcode: opOP32, f3: 0, f7: 0x00, name: "addw"},
	SUBW:   {fmt: fmtR, opcode: opOP32, f3: 0, f7: 0x20, name: "subw"},
	SLLW:   {fmt: fmtR, opcode: opOP32, f3: 1, f7: 0x00, name: "sllw"},
	SRLW:   {fmt: fmtR, opcode: opOP32, f3: 5, f7: 0x00, name: "srlw"},
	SRAW:   {fmt: fmtR, opcode: opOP32, f3: 5, f7: 0x20, name: "sraw"},

	MUL:    {fmt: fmtR, opcode: opOP, f3: 0, f7: 0x01, name: "mul"},
	MULH:   {fmt: fmtR, opcode: opOP, f3: 1, f7: 0x01, name: "mulh"},
	MULHSU: {fmt: fmtR, opcode: opOP, f3: 2, f7: 0x01, name: "mulhsu"},
	MULHU:  {fmt: fmtR, opcode: opOP, f3: 3, f7: 0x01, name: "mulhu"},
	DIV:    {fmt: fmtR, opcode: opOP, f3: 4, f7: 0x01, name: "div"},
	DIVU:   {fmt: fmtR, opcode: opOP, f3: 5, f7: 0x01, name: "divu"},
	REM:    {fmt: fmtR, opcode: opOP, f3: 6, f7: 0x01, name: "rem"},
	REMU:   {fmt: fmtR, opcode: opOP, f3: 7, f7: 0x01, name: "remu"},
	MULW:   {fmt: fmtR, opcode: opOP32, f3: 0, f7: 0x01, name: "mulw"},
	DIVW:   {fmt: fmtR, opcode: opOP32, f3: 4, f7: 0x01, name: "divw"},
	DIVUW:  {fmt: fmtR, opcode: opOP32, f3: 5, f7: 0x01, name: "divuw"},
	REMW:   {fmt: fmtR, opcode: opOP32, f3: 6, f7: 0x01, name: "remw"},
	REMUW:  {fmt: fmtR, opcode: opOP32, f3: 7, f7: 0x01, name: "remuw"},

	LRW:      {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x02 << 2, name: "lr.w"},
	SCW:      {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x03 << 2, name: "sc.w"},
	AMOSWAPW: {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x01 << 2, name: "amoswap.w"},
	AMOADDW:  {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x00 << 2, name: "amoadd.w"},
	AMOXORW:  {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x04 << 2, name: "amoxor.w"},
	AMOANDW:  {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x0C << 2, name: "amoand.w"},
	AMOORW:   {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x08 << 2, name: "amoor.w"},
	AMOMINW:  {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x10 << 2, name: "amomin.w"},
	AMOMAXW:  {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x14 << 2, name: "amomax.w"},
	AMOMINUW: {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x18 << 2, name: "amominu.w"},
	AMOMAXUW: {fmt: fmtAMO, opcode: opAMO, f3: 2, f7: 0x1C << 2, name: "amomaxu.w"},
	LRD:      {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x02 << 2, name: "lr.d"},
	SCD:      {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x03 << 2, name: "sc.d"},
	AMOSWAPD: {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x01 << 2, name: "amoswap.d"},
	AMOADDD:  {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x00 << 2, name: "amoadd.d"},
	AMOXORD:  {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x04 << 2, name: "amoxor.d"},
	AMOANDD:  {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x0C << 2, name: "amoand.d"},
	AMOORD:   {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x08 << 2, name: "amoor.d"},
	AMOMIND:  {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x10 << 2, name: "amomin.d"},
	AMOMAXD:  {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x14 << 2, name: "amomax.d"},
	AMOMINUD: {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x18 << 2, name: "amominu.d"},
	AMOMAXUD: {fmt: fmtAMO, opcode: opAMO, f3: 3, f7: 0x1C << 2, name: "amomaxu.d"},

	FLW:     {fmt: fmtI, opcode: opLOADFP, f3: 2, name: "flw"},
	FSW:     {fmt: fmtS, opcode: opSTOREFP, f3: 2, name: "fsw"},
	FMADDS:  {fmt: fmtR4, opcode: opMADD, f7: 0x00, name: "fmadd.s"},
	FMSUBS:  {fmt: fmtR4, opcode: opMSUB, f7: 0x00, name: "fmsub.s"},
	FNMSUBS: {fmt: fmtR4, opcode: opNMSUB, f7: 0x00, name: "fnmsub.s"},
	FNMADDS: {fmt: fmtR4, opcode: opNMADD, f7: 0x00, name: "fnmadd.s"},
	FADDS:   {fmt: fmtRF, opcode: opOPFP, f7: 0x00, name: "fadd.s"},
	FSUBS:   {fmt: fmtRF, opcode: opOPFP, f7: 0x04, name: "fsub.s"},
	FMULS:   {fmt: fmtRF, opcode: opOPFP, f7: 0x08, name: "fmul.s"},
	FDIVS:   {fmt: fmtRF, opcode: opOPFP, f7: 0x0C, name: "fdiv.s"},
	FSQRTS:  {fmt: fmtR2, opcode: opOPFP, f7: 0x2C, rs2fix: 0, name: "fsqrt.s"},
	FSGNJS:  {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x10, name: "fsgnj.s"},
	FSGNJNS: {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x10, name: "fsgnjn.s"},
	FSGNJXS: {fmt: fmtR, opcode: opOPFP, f3: 2, f7: 0x10, name: "fsgnjx.s"},
	FMINS:   {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x14, name: "fmin.s"},
	FMAXS:   {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x14, name: "fmax.s"},
	FCVTWS:  {fmt: fmtR2, opcode: opOPFP, f7: 0x60, rs2fix: 0, name: "fcvt.w.s"},
	FCVTWUS: {fmt: fmtR2, opcode: opOPFP, f7: 0x60, rs2fix: 1, name: "fcvt.wu.s"},
	FCVTLS:  {fmt: fmtR2, opcode: opOPFP, f7: 0x60, rs2fix: 2, name: "fcvt.l.s"},
	FCVTLUS: {fmt: fmtR2, opcode: opOPFP, f7: 0x60, rs2fix: 3, name: "fcvt.lu.s"},
	FMVXW:   {fmt: fmtR2F, opcode: opOPFP, f3: 0, f7: 0x70, rs2fix: 0, name: "fmv.x.w"},
	FEQS:    {fmt: fmtR, opcode: opOPFP, f3: 2, f7: 0x50, name: "feq.s"},
	FLTS:    {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x50, name: "flt.s"},
	FLES:    {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x50, name: "fle.s"},
	FCLASSS: {fmt: fmtR2F, opcode: opOPFP, f3: 1, f7: 0x70, rs2fix: 0, name: "fclass.s"},
	FCVTSW:  {fmt: fmtR2, opcode: opOPFP, f7: 0x68, rs2fix: 0, name: "fcvt.s.w"},
	FCVTSWU: {fmt: fmtR2, opcode: opOPFP, f7: 0x68, rs2fix: 1, name: "fcvt.s.wu"},
	FCVTSL:  {fmt: fmtR2, opcode: opOPFP, f7: 0x68, rs2fix: 2, name: "fcvt.s.l"},
	FCVTSLU: {fmt: fmtR2, opcode: opOPFP, f7: 0x68, rs2fix: 3, name: "fcvt.s.lu"},
	FMVWX:   {fmt: fmtR2F, opcode: opOPFP, f3: 0, f7: 0x78, rs2fix: 0, name: "fmv.w.x"},

	FLD:     {fmt: fmtI, opcode: opLOADFP, f3: 3, name: "fld"},
	FSD:     {fmt: fmtS, opcode: opSTOREFP, f3: 3, name: "fsd"},
	FMADDD:  {fmt: fmtR4, opcode: opMADD, f7: 0x01, name: "fmadd.d"},
	FMSUBD:  {fmt: fmtR4, opcode: opMSUB, f7: 0x01, name: "fmsub.d"},
	FNMSUBD: {fmt: fmtR4, opcode: opNMSUB, f7: 0x01, name: "fnmsub.d"},
	FNMADDD: {fmt: fmtR4, opcode: opNMADD, f7: 0x01, name: "fnmadd.d"},
	FADDD:   {fmt: fmtRF, opcode: opOPFP, f7: 0x01, name: "fadd.d"},
	FSUBD:   {fmt: fmtRF, opcode: opOPFP, f7: 0x05, name: "fsub.d"},
	FMULD:   {fmt: fmtRF, opcode: opOPFP, f7: 0x09, name: "fmul.d"},
	FDIVD:   {fmt: fmtRF, opcode: opOPFP, f7: 0x0D, name: "fdiv.d"},
	FSQRTD:  {fmt: fmtR2, opcode: opOPFP, f7: 0x2D, rs2fix: 0, name: "fsqrt.d"},
	FSGNJD:  {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x11, name: "fsgnj.d"},
	FSGNJND: {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x11, name: "fsgnjn.d"},
	FSGNJXD: {fmt: fmtR, opcode: opOPFP, f3: 2, f7: 0x11, name: "fsgnjx.d"},
	FMIND:   {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x15, name: "fmin.d"},
	FMAXD:   {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x15, name: "fmax.d"},
	FCVTSD:  {fmt: fmtR2, opcode: opOPFP, f7: 0x20, rs2fix: 1, name: "fcvt.s.d"},
	FCVTDS:  {fmt: fmtR2, opcode: opOPFP, f7: 0x21, rs2fix: 0, name: "fcvt.d.s"},
	FEQD:    {fmt: fmtR, opcode: opOPFP, f3: 2, f7: 0x51, name: "feq.d"},
	FLTD:    {fmt: fmtR, opcode: opOPFP, f3: 1, f7: 0x51, name: "flt.d"},
	FLED:    {fmt: fmtR, opcode: opOPFP, f3: 0, f7: 0x51, name: "fle.d"},
	FCLASSD: {fmt: fmtR2F, opcode: opOPFP, f3: 1, f7: 0x71, rs2fix: 0, name: "fclass.d"},
	FCVTWD:  {fmt: fmtR2, opcode: opOPFP, f7: 0x61, rs2fix: 0, name: "fcvt.w.d"},
	FCVTWUD: {fmt: fmtR2, opcode: opOPFP, f7: 0x61, rs2fix: 1, name: "fcvt.wu.d"},
	FCVTLD:  {fmt: fmtR2, opcode: opOPFP, f7: 0x61, rs2fix: 2, name: "fcvt.l.d"},
	FCVTLUD: {fmt: fmtR2, opcode: opOPFP, f7: 0x61, rs2fix: 3, name: "fcvt.lu.d"},
	FMVXD:   {fmt: fmtR2F, opcode: opOPFP, f3: 0, f7: 0x71, rs2fix: 0, name: "fmv.x.d"},
	FCVTDW:  {fmt: fmtR2, opcode: opOPFP, f7: 0x69, rs2fix: 0, name: "fcvt.d.w"},
	FCVTDWU: {fmt: fmtR2, opcode: opOPFP, f7: 0x69, rs2fix: 1, name: "fcvt.d.wu"},
	FCVTDL:  {fmt: fmtR2, opcode: opOPFP, f7: 0x69, rs2fix: 2, name: "fcvt.d.l"},
	FCVTDLU: {fmt: fmtR2, opcode: opOPFP, f7: 0x69, rs2fix: 3, name: "fcvt.d.lu"},
	FMVDX:   {fmt: fmtR2F, opcode: opOPFP, f3: 0, f7: 0x79, rs2fix: 0, name: "fmv.d.x"},
}

// Name returns the canonical assembly mnemonic of the operation.
func (op Op) Name() string {
	if int(op) < len(specs) && specs[op].name != "" {
		return specs[op].name
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

// String implements fmt.Stringer.
func (op Op) String() string { return op.Name() }
