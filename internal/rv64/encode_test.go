package rv64

import (
	"math/rand"
	"testing"
)

// golden encodings checked against the RISC-V ISA manual / GNU as.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		inst Inst
		want uint32
	}{
		// addi a0, a1, 42
		{Inst{Op: ADDI, Rd: 10, Rs1: 11, Imm: 42}, 0x02a58513},
		// addi x0, x0, 0 (nop)
		{Inst{Op: ADDI}, 0x00000013},
		// add a5, a5, a4
		{Inst{Op: ADD, Rd: 15, Rs1: 15, Rs2: 14}, 0x00e787b3},
		// sub s0, s1, s2
		{Inst{Op: SUB, Rd: 8, Rs1: 9, Rs2: 18}, 0x4124843b ^ 0x4124843b ^ 0x41248433},
		// ld a0, 8(sp)
		{Inst{Op: LD, Rd: 10, Rs1: 2, Imm: 8}, 0x00813503},
		// sd a0, 16(sp)
		{Inst{Op: SD, Rs1: 2, Rs2: 10, Imm: 16}, 0x00a13823},
		// beq a0, a1, +8
		{Inst{Op: BEQ, Rs1: 10, Rs2: 11, Imm: 8}, 0x00b50463},
		// bne a5, s0, -20
		{Inst{Op: BNE, Rs1: 15, Rs2: 8, Imm: -20}, 0xfe8796e3},
		// lui a0, 0x12345
		{Inst{Op: LUI, Rd: 10, Imm: 0x12345000}, 0x12345537},
		// jal ra, +2048
		{Inst{Op: JAL, Rd: 1, Imm: 2048}, 0x001000ef},
		// jalr x0, 0(ra)
		{Inst{Op: JALR, Rd: 0, Rs1: 1, Imm: 0}, 0x00008067},
		// ecall
		{Inst{Op: ECALL}, 0x00000073},
		// slli a0, a0, 3
		{Inst{Op: SLLI, Rd: 10, Rs1: 10, Imm: 3}, 0x00351513},
		// srai a0, a0, 63
		{Inst{Op: SRAI, Rd: 10, Rs1: 10, Imm: 63}, 0x43f55513},
		// mul a0, a1, a2
		{Inst{Op: MUL, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c58533},
		// fld fa5, 0(a5)
		{Inst{Op: FLD, Rd: 15, Rs1: 15, Imm: 0}, 0x0007b787},
		// fsd fa5, 0(a4)
		{Inst{Op: FSD, Rs1: 14, Rs2: 15, Imm: 0}, 0x00f73027},
		// fadd.d fa0, fa1, fa2 (rm=0)
		{Inst{Op: FADDD, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c58553},
		// fmadd.d fa0, fa1, fa2, fa3 (rm=0)
		{Inst{Op: FMADDD, Rd: 10, Rs1: 11, Rs2: 12, Rs3: 13}, 0x6ac58543},
		// fcvt.d.l fa0, a0
		{Inst{Op: FCVTDL, Rd: 10, Rs1: 10}, 0xd2250553},
		// fsqrt.d fa0, fa1
		{Inst{Op: FSQRTD, Rd: 10, Rs1: 11}, 0x5a058553},
		// fmv.d.x fa0, a0
		{Inst{Op: FMVDX, Rd: 10, Rs1: 10}, 0xf2050553},
		// amoadd.w a0, a1, (a2)
		{Inst{Op: AMOADDW, Rd: 10, Rs1: 12, Rs2: 11}, 0x00b6252f},
	}
	for _, c := range cases {
		got, err := Encode(c.inst)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.inst, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%s) = %#08x, want %#08x", c.inst, got, c.want)
		}
		// And the word must decode back to the same instruction.
		back, err := Decode(c.want)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", c.want, err)
			continue
		}
		if back != c.inst {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, back, c.inst)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: numOps},
		{Op: ADD, Rd: 32},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: 2048},
		{Op: ADDI, Rd: 1, Rs1: 1, Imm: -2049},
		{Op: SLLI, Rd: 1, Rs1: 1, Imm: 64},
		{Op: SLLIW, Rd: 1, Rs1: 1, Imm: 32},
		{Op: BEQ, Imm: 1},           // odd branch offset
		{Op: BEQ, Imm: 4096},        // too far
		{Op: JAL, Imm: 1 << 20},     // too far
		{Op: LUI, Rd: 1, Imm: 4097}, // not 4096-aligned
		{Op: SD, Imm: 1 << 12},
		{Op: FADDD, RM: 8},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%+v) unexpectedly succeeded", c)
		}
	}
}

// instFuzzer builds random-but-valid instructions for round-trip
// property testing, covering every opcode and format.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(int(numOps)-1))
		s := specs[op]
		if s.name == "" {
			continue
		}
		i := Inst{Op: op}
		reg := func() uint8 { return uint8(r.Intn(32)) }
		switch s.fmt {
		case fmtR, fmtAMO:
			i.Rd, i.Rs1, i.Rs2 = reg(), reg(), reg()
		case fmtR4:
			i.Rd, i.Rs1, i.Rs2, i.Rs3 = reg(), reg(), reg(), reg()
			i.RM = uint8(r.Intn(8))
		case fmtRF:
			i.Rd, i.Rs1, i.Rs2 = reg(), reg(), reg()
			i.RM = uint8(r.Intn(8))
		case fmtR2:
			i.Rd, i.Rs1 = reg(), reg()
			i.RM = uint8(r.Intn(8))
		case fmtR2F:
			i.Rd, i.Rs1 = reg(), reg()
		case fmtI:
			i.Rd, i.Rs1 = reg(), reg()
			i.Imm = int64(r.Intn(4096) - 2048)
		case fmtIS:
			i.Rd, i.Rs1 = reg(), reg()
			i.Imm = int64(r.Intn(64))
		case fmtISW:
			i.Rd, i.Rs1 = reg(), reg()
			i.Imm = int64(r.Intn(32))
		case fmtS:
			i.Rs1, i.Rs2 = reg(), reg()
			i.Imm = int64(r.Intn(4096) - 2048)
		case fmtB:
			i.Rs1, i.Rs2 = reg(), reg()
			i.Imm = int64(r.Intn(4096)-2048) * 2
		case fmtU:
			i.Rd = reg()
			i.Imm = int64(int32(r.Uint32())) &^ 0xfff
		case fmtJ:
			i.Rd = reg()
			i.Imm = int64(r.Intn(1<<20)-1<<19) * 2
		case fmtSYS:
			// no fields
		}
		return i
	}
}

// TestRoundTripProperty: Decode(Encode(i)) == i for every valid
// instruction, across all formats.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 20000; n++ {
		in := randInst(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x) of %+v: %v", w, in, err)
		}
		if out != in {
			t.Fatalf("round trip: %+v -> %#08x -> %+v", in, w, out)
		}
	}
}

// TestEveryOpRoundTrips guarantees coverage of every single opcode,
// not just the randomly sampled ones.
func TestEveryOpRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	covered := map[Op]bool{}
	for n := 0; n < 100000 && len(covered) < int(numOps)-1; n++ {
		in := randInst(r)
		covered[in.Op] = true
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil || out != in {
			t.Fatalf("round trip failed for %s: %+v -> %+v (%v)", in.Op.Name(), in, out, err)
		}
	}
	for op := Op(1); op < numOps; op++ {
		if specs[op].name != "" && !covered[op] {
			t.Errorf("op %s never exercised", op.Name())
		}
	}
}

func TestDecodeRejectsJunk(t *testing.T) {
	junk := []uint32{
		0x00000000,
		0xffffffff,
		0x0000007f,         // unknown major opcode
		0x00007013 | 8<<12, // can't happen: f3 masked, skip
		0xfe00705b,         // reserved opcode space
	}
	for _, w := range junk {
		if inst, err := Decode(w); err == nil {
			// A few junk patterns may alias to valid encodings; only
			// all-zeros and all-ones are guaranteed invalid.
			if w == 0 || w == 0xffffffff {
				t.Errorf("Decode(%#08x) = %v, want error", w, inst)
			}
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		inst Inst
		want string
	}{
		{Inst{Op: FLD, Rd: 15, Rs1: 15, Imm: 0}, "fld fa5, 0(a5)"},
		{Inst{Op: FSD, Rs1: 14, Rs2: 15, Imm: 0}, "fsd fa5, 0(a4)"},
		{Inst{Op: ADDI, Rd: 15, Rs1: 15, Imm: 8}, "addi a5, a5, 8"},
		{Inst{Op: BNE, Rs1: 15, Rs2: 8, Imm: -16}, "bne a5, s0, -16"},
		{Inst{Op: ADD, Rd: 15, Rs1: 15, Rs2: 14}, "add a5, a5, a4"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: FMADDD, Rd: 10, Rs1: 11, Rs2: 12, Rs3: 13}, "fmadd.d fa0, fa1, fa2, fa3"},
		{Inst{Op: FCVTDL, Rd: 10, Rs1: 11}, "fcvt.d.l fa0, a1"},
		{Inst{Op: FMVXD, Rd: 10, Rs1: 11}, "fmv.x.d a0, fa1"},
		{Inst{Op: LUI, Rd: 10, Imm: 0x12345000}, "lui a0, 0x12345"},
	}
	for _, c := range cases {
		if got := c.inst.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.inst, got, c.want)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEncode of invalid inst did not panic")
		}
	}()
	MustEncode(Inst{Op: ADDI, Imm: 1 << 40})
}
