package rv64

import (
	"fmt"
	"io"

	"isacmp/internal/elfio"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

// Machine is the architectural state of a single RV64G hart together
// with its predecoded program. It implements the simulation engine's
// Machine interface: Step retires exactly one instruction and reports
// it through an isa.Event.
type Machine struct {
	// X is the integer register file; X[0] is hard-wired to zero and
	// kept zero by construction.
	X [32]uint64
	// F is the floating-point register file holding raw IEEE-754 bits;
	// single-precision values are NaN-boxed.
	F [32]uint64
	// PCReg is the current program counter.
	PCReg uint64

	// Mem is the memory image the hart executes against.
	Mem *mem.Memory

	prog     []Inst
	words    []uint32
	groups   []isa.Group
	textBase uint64

	// badErrs records text words that failed to predecode, keyed by
	// PC. The slot's Inst stays OpInvalid, so Step faults with the
	// stored decode error only if the word is actually executed. nil
	// when the whole text predecoded cleanly (the normal case).
	badErrs map[uint64]error
	// fallbacks counts fetches the predecode cache could not serve.
	fallbacks uint64

	exited   bool
	exitCode int64

	// Stdout receives bytes written through the write system call.
	Stdout io.Writer

	steps uint64
}

// Registers used by the Linux RISC-V syscall ABI.
const (
	regA0 = 10
	regA1 = 11
	regA2 = 12
	regA7 = 17
	regSP = 2
)

// Linux generic syscall numbers (shared by riscv64 and arm64).
const (
	sysWrite = 64
	sysExit  = 93
	sysBrk   = 214
)

// NewMachine predecodes the text segment of the loaded ELF file and
// prepares architectural state: PC at the entry point, SP at the top
// of the stack.
func NewMachine(f *elfio.File, m *mem.Memory) (*Machine, error) {
	if f.Machine != elfio.EMRiscV {
		return nil, fmt.Errorf("rv64: ELF machine %d is not RISC-V", f.Machine)
	}
	mach := &Machine{Mem: m, PCReg: f.Entry, Stdout: io.Discard}
	var text *elfio.Segment
	maxEnd := m.Base()
	for i := range f.Segments {
		s := &f.Segments[i]
		if err := m.WriteBytes(s.Vaddr, s.Data); err != nil {
			return nil, fmt.Errorf("rv64: loading segment at %#x: %w", s.Vaddr, err)
		}
		if end := s.Vaddr + uint64(len(s.Data)); end > maxEnd {
			maxEnd = end
		}
		if s.Flags&elfio.PFX != 0 {
			if text != nil {
				return nil, fmt.Errorf("rv64: multiple executable segments")
			}
			text = s
		}
	}
	if text == nil {
		return nil, fmt.Errorf("rv64: no executable segment")
	}
	m.SetBrk((maxEnd + 15) &^ 15)
	mach.textBase = text.Vaddr
	n := len(text.Data) / 4
	mach.prog = make([]Inst, n)
	mach.words = make([]uint32, n)
	mach.groups = make([]isa.Group, n)
	for i := 0; i < n; i++ {
		w := uint32(text.Data[i*4]) | uint32(text.Data[i*4+1])<<8 |
			uint32(text.Data[i*4+2])<<16 | uint32(text.Data[i*4+3])<<24
		mach.words[i] = w
		inst, err := Decode(w)
		if err != nil {
			// Tolerant predecode: data or padding islands inside the
			// text segment must not fail construction. The slot keeps
			// OpInvalid and the error surfaces from Step only if the
			// program actually jumps here.
			if mach.badErrs == nil {
				mach.badErrs = make(map[uint64]error)
			}
			mach.badErrs[text.Vaddr+uint64(i*4)] = err
			continue
		}
		mach.prog[i] = inst
		mach.groups[i] = OpGroup(inst.Op)
	}
	mach.X[regSP] = m.StackTop()
	return mach, nil
}

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.PCReg }

// Exited reports whether the program has invoked the exit system call.
func (m *Machine) Exited() bool { return m.exited }

// ExitCode returns the status passed to exit.
func (m *Machine) ExitCode() int64 { return m.exitCode }

// Steps returns the number of retired instructions.
func (m *Machine) Steps() uint64 { return m.steps }

// Arch returns isa.RV64.
func (m *Machine) Arch() isa.Arch { return isa.RV64 }

// InstAt returns the predecoded instruction at pc, for disassembly.
func (m *Machine) InstAt(pc uint64) (Inst, bool) {
	idx := (pc - m.textBase) / 4
	if pc < m.textBase || idx >= uint64(len(m.prog)) || pc%4 != 0 {
		return Inst{}, false
	}
	return m.prog[idx], true
}

// PredecodeStats reports predecode-cache coverage and the fetches the
// cache could not serve.
func (m *Machine) PredecodeStats() isa.PredecodeStats {
	return isa.PredecodeStats{
		TextWords: uint64(len(m.prog)),
		BadWords:  uint64(len(m.badErrs)),
		Fallbacks: m.fallbacks,
	}
}

// fetchErr describes a PC outside the text segment.
type fetchErr struct{ pc uint64 }

func (e *fetchErr) Error() string {
	return fmt.Sprintf("rv64: PC %#x outside text segment", e.pc)
}

// addSrc records a register source unless it is x0.
func addSrc(ev *isa.Event, r uint8) {
	if r != 0 {
		ev.AddSrc(isa.IntReg(r))
	}
}

// addDst records a register destination unless it is x0.
func addDst(ev *isa.Event, r uint8) {
	if r != 0 {
		ev.AddDst(isa.IntReg(r))
	}
}

func addFSrc(ev *isa.Event, r uint8) { ev.AddSrc(isa.FPReg(r)) }
func addFDst(ev *isa.Event, r uint8) { ev.AddDst(isa.FPReg(r)) }
