package rv64

import (
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/mem"
)

// TestBranchRelaxation builds a loop whose body exceeds the ±4 KiB
// B-format range and checks that the assembler relaxes the backward
// branch into an inverted branch over a jal, preserving semantics and
// symbol layout.
func TestBranchRelaxation(t *testing.T) {
	a := NewAsm()
	a.Symbol("pre")
	a.NOP()
	a.Symbol("big")
	a.LI(5, 0) // counter
	a.LI(6, 3) // bound
	a.LI(7, 0) // work accumulator
	a.Label("loop")
	// > 4 KiB of filler so the bottom bne cannot reach the label.
	for i := 0; i < 1500; i++ {
		a.ADDI(7, 7, 1)
	}
	a.ADDI(5, 5, 1)
	a.BNE(5, 6, "loop")
	a.Symbol("post")
	a.MV(10, 7)
	a.LI(17, 93)
	a.ECALL()

	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatalf("relaxation failed: %v", err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<22))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 100_000; i++ {
		done, err := m.Step(&ev)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if done {
			if m.ExitCode() != 3*1500 {
				t.Fatalf("exit = %d, want %d", m.ExitCode(), 3*1500)
			}
			// Symbols must have shifted with the inserted jal.
			bySym := map[string]uint64{}
			for _, s := range f.Symbols {
				bySym[s.Name] = s.Value
			}
			if bySym["post"] <= bySym["big"] {
				t.Fatal("symbol order corrupted by relaxation")
			}
			// The loop grew by one instruction (bne -> beq+jal), so
			// 'post' sits one word later than the unrelaxed layout.
			wantPost := bySym["big"] + uint64(3+1500+1+2)*4
			if bySym["post"] != wantPost {
				t.Fatalf("post at %#x, want %#x", bySym["post"], wantPost)
			}
			return
		}
	}
	t.Fatal("did not terminate: relaxation broke the loop")
}

// TestRelaxationForwardBranch exercises a forward out-of-range branch.
func TestRelaxationForwardBranch(t *testing.T) {
	a := NewAsm()
	a.LI(5, 1)
	a.BEQ(5, 0, "far") // never taken, but must still encode
	for i := 0; i < 1500; i++ {
		a.NOP()
	}
	a.Label("far")
	a.LI(10, 7)
	a.LI(17, 93)
	a.ECALL()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatalf("forward relaxation failed: %v", err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<22))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 10_000; i++ {
		done, err := m.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if m.ExitCode() != 7 {
				t.Fatalf("exit = %d", m.ExitCode())
			}
			return
		}
	}
	t.Fatal("did not terminate")
}

// TestRelaxationTakenPath: a relaxed branch that IS taken must reach
// its distant target through the jal.
func TestRelaxationTakenPath(t *testing.T) {
	a := NewAsm()
	a.LI(5, 1)
	a.BEQ(5, 5, "far") // always taken, out of range
	for i := 0; i < 1500; i++ {
		a.NOP()
	}
	a.LI(10, 1) // must be skipped
	a.LI(17, 93)
	a.ECALL()
	a.Label("far")
	a.LI(10, 42)
	a.LI(17, 93)
	a.ECALL()
	f, err := a.Build(Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(f, mem.New(0x10000, 1<<22))
	if err != nil {
		t.Fatal(err)
	}
	var ev isa.Event
	for i := 0; i < 10_000; i++ {
		done, err := m.Step(&ev)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if m.ExitCode() != 42 {
				t.Fatalf("exit = %d, want 42 (took wrong path)", m.ExitCode())
			}
			return
		}
	}
	t.Fatal("did not terminate")
}
