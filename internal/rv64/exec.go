package rv64

import (
	"fmt"
	"math"

	"isacmp/internal/isa"
)

// Step retires one instruction, updating architectural state and
// filling ev with the execution record. It returns done=true once the
// program has exited. ev must not be nil.
func (m *Machine) Step(ev *isa.Event) (done bool, err error) {
	if m.exited {
		return true, nil
	}
	idx := (m.PCReg - m.textBase) / 4
	if m.PCReg < m.textBase || idx >= uint64(len(m.prog)) || m.PCReg%4 != 0 {
		m.fallbacks++
		return false, &fetchErr{pc: m.PCReg}
	}
	i := m.prog[idx]
	if i.Op == OpInvalid {
		// A text word that failed tolerant predecode; it faults only
		// here, when execution actually reaches it.
		m.fallbacks++
		return false, fmt.Errorf("rv64: decode at %#x: %w", m.PCReg, m.badErrs[m.PCReg])
	}

	ev.Reset()
	ev.PC = m.PCReg
	ev.Word = m.words[idx]
	ev.Group = m.groups[idx]

	nextPC := m.PCReg + 4
	x := &m.X

	// setX writes an integer destination, honouring the zero register.
	setX := func(r uint8, v uint64) {
		if r != 0 {
			x[r] = v
		}
		addDst(ev, r)
	}

	switch i.Op {
	case LUI:
		setX(i.Rd, uint64(i.Imm))
	case AUIPC:
		setX(i.Rd, m.PCReg+uint64(i.Imm))
	case JAL:
		ev.Branch, ev.Taken = true, true
		setX(i.Rd, m.PCReg+4)
		nextPC = m.PCReg + uint64(i.Imm)
	case JALR:
		ev.Branch, ev.Taken = true, true
		addSrc(ev, i.Rs1)
		t := (x[i.Rs1] + uint64(i.Imm)) &^ 1
		setX(i.Rd, m.PCReg+4)
		nextPC = t
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		ev.Branch = true
		addSrc(ev, i.Rs1)
		addSrc(ev, i.Rs2)
		a, b := x[i.Rs1], x[i.Rs2]
		var take bool
		switch i.Op {
		case BEQ:
			take = a == b
		case BNE:
			take = a != b
		case BLT:
			take = int64(a) < int64(b)
		case BGE:
			take = int64(a) >= int64(b)
		case BLTU:
			take = a < b
		case BGEU:
			take = a >= b
		}
		if take {
			ev.Taken = true
			nextPC = m.PCReg + uint64(i.Imm)
		}

	case LB, LH, LW, LD, LBU, LHU, LWU:
		addSrc(ev, i.Rs1)
		addr := x[i.Rs1] + uint64(i.Imm)
		v, sz, lerr := m.load(i.Op, addr)
		if lerr != nil {
			return false, lerr
		}
		ev.LoadAddr, ev.LoadSize = addr, sz
		setX(i.Rd, v)
	case SB, SH, SW, SD:
		addSrc(ev, i.Rs1)
		addSrc(ev, i.Rs2)
		addr := x[i.Rs1] + uint64(i.Imm)
		sz, serr := m.store(i.Op, addr, x[i.Rs2])
		if serr != nil {
			return false, serr
		}
		ev.StoreAddr, ev.StoreSize = addr, sz

	case ADDI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]+uint64(i.Imm))
	case SLTI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, b2u(int64(x[i.Rs1]) < i.Imm))
	case SLTIU:
		addSrc(ev, i.Rs1)
		setX(i.Rd, b2u(x[i.Rs1] < uint64(i.Imm)))
	case XORI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]^uint64(i.Imm))
	case ORI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]|uint64(i.Imm))
	case ANDI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]&uint64(i.Imm))
	case SLLI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]<<uint(i.Imm))
	case SRLI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, x[i.Rs1]>>uint(i.Imm))
	case SRAI:
		addSrc(ev, i.Rs1)
		setX(i.Rd, uint64(int64(x[i.Rs1])>>uint(i.Imm)))
	case ADDIW:
		addSrc(ev, i.Rs1)
		setX(i.Rd, sext32(uint32(x[i.Rs1])+uint32(i.Imm)))
	case SLLIW:
		addSrc(ev, i.Rs1)
		setX(i.Rd, sext32(uint32(x[i.Rs1])<<uint(i.Imm)))
	case SRLIW:
		addSrc(ev, i.Rs1)
		setX(i.Rd, sext32(uint32(x[i.Rs1])>>uint(i.Imm)))
	case SRAIW:
		addSrc(ev, i.Rs1)
		setX(i.Rd, uint64(int64(int32(x[i.Rs1])>>uint(i.Imm))))

	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		ADDW, SUBW, SLLW, SRLW, SRAW,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
		MULW, DIVW, DIVUW, REMW, REMUW:
		addSrc(ev, i.Rs1)
		addSrc(ev, i.Rs2)
		setX(i.Rd, intOp(i.Op, x[i.Rs1], x[i.Rs2]))

	case ECALL:
		done, err = m.ecall()
		if err != nil {
			return false, err
		}
		if done {
			return true, nil
		}
	case EBREAK:
		return false, fmt.Errorf("rv64: ebreak at %#x", m.PCReg)
	case FENCE:
		// No-op on a single hart.

	case FLW, FLD:
		addSrc(ev, i.Rs1)
		addr := x[i.Rs1] + uint64(i.Imm)
		if i.Op == FLW {
			v, lerr := m.Mem.Read32(addr)
			if lerr != nil {
				return false, lerr
			}
			m.F[i.Rd] = nanBox(v)
			ev.LoadAddr, ev.LoadSize = addr, 4
		} else {
			v, lerr := m.Mem.Read64(addr)
			if lerr != nil {
				return false, lerr
			}
			m.F[i.Rd] = v
			ev.LoadAddr, ev.LoadSize = addr, 8
		}
		addFDst(ev, i.Rd)
	case FSW, FSD:
		addSrc(ev, i.Rs1)
		addFSrc(ev, i.Rs2)
		addr := x[i.Rs1] + uint64(i.Imm)
		if i.Op == FSW {
			if serr := m.Mem.Write32(addr, uint32(m.F[i.Rs2])); serr != nil {
				return false, serr
			}
			ev.StoreAddr, ev.StoreSize = addr, 4
		} else {
			if serr := m.Mem.Write64(addr, m.F[i.Rs2]); serr != nil {
				return false, serr
			}
			ev.StoreAddr, ev.StoreSize = addr, 8
		}

	case FMADDS, FMSUBS, FNMSUBS, FNMADDS, FMADDD, FMSUBD, FNMSUBD, FNMADDD:
		addFSrc(ev, i.Rs1)
		addFSrc(ev, i.Rs2)
		addFSrc(ev, i.Rs3)
		m.fma(i)
		addFDst(ev, i.Rd)

	case FADDS, FSUBS, FMULS, FDIVS, FSGNJS, FSGNJNS, FSGNJXS, FMINS, FMAXS,
		FADDD, FSUBD, FMULD, FDIVD, FSGNJD, FSGNJND, FSGNJXD, FMIND, FMAXD:
		addFSrc(ev, i.Rs1)
		addFSrc(ev, i.Rs2)
		m.fpBin(i)
		addFDst(ev, i.Rd)

	case FSQRTS:
		addFSrc(ev, i.Rs1)
		m.F[i.Rd] = nanBox(math.Float32bits(float32(math.Sqrt(float64(m.getS(i.Rs1))))))
		addFDst(ev, i.Rd)
	case FSQRTD:
		addFSrc(ev, i.Rs1)
		m.F[i.Rd] = math.Float64bits(math.Sqrt(m.getD(i.Rs1)))
		addFDst(ev, i.Rd)

	case FEQS, FLTS, FLES, FEQD, FLTD, FLED:
		addFSrc(ev, i.Rs1)
		addFSrc(ev, i.Rs2)
		setX(i.Rd, m.fpCmp(i))

	case FCVTWS, FCVTWUS, FCVTLS, FCVTLUS, FCVTWD, FCVTWUD, FCVTLD, FCVTLUD:
		addFSrc(ev, i.Rs1)
		setX(i.Rd, m.fpToInt(i))
	case FCVTSW, FCVTSWU, FCVTSL, FCVTSLU, FCVTDW, FCVTDWU, FCVTDL, FCVTDLU:
		addSrc(ev, i.Rs1)
		m.intToFP(i)
		addFDst(ev, i.Rd)
	case FCVTSD:
		addFSrc(ev, i.Rs1)
		m.F[i.Rd] = nanBox(math.Float32bits(float32(m.getD(i.Rs1))))
		addFDst(ev, i.Rd)
	case FCVTDS:
		addFSrc(ev, i.Rs1)
		m.F[i.Rd] = math.Float64bits(float64(m.getS(i.Rs1)))
		addFDst(ev, i.Rd)

	case FMVXW:
		addFSrc(ev, i.Rs1)
		setX(i.Rd, sext32(uint32(m.F[i.Rs1])))
	case FMVXD:
		addFSrc(ev, i.Rs1)
		setX(i.Rd, m.F[i.Rs1])
	case FMVWX:
		addSrc(ev, i.Rs1)
		m.F[i.Rd] = nanBox(uint32(x[i.Rs1]))
		addFDst(ev, i.Rd)
	case FMVDX:
		addSrc(ev, i.Rs1)
		m.F[i.Rd] = x[i.Rs1]
		addFDst(ev, i.Rd)
	case FCLASSS:
		addFSrc(ev, i.Rs1)
		setX(i.Rd, classifyS(m.getS(i.Rs1)))
	case FCLASSD:
		addFSrc(ev, i.Rs1)
		setX(i.Rd, classifyD(m.getD(i.Rs1)))

	case LRW, LRD, SCW, SCD,
		AMOSWAPW, AMOADDW, AMOXORW, AMOANDW, AMOORW, AMOMINW, AMOMAXW, AMOMINUW, AMOMAXUW,
		AMOSWAPD, AMOADDD, AMOXORD, AMOANDD, AMOORD, AMOMIND, AMOMAXD, AMOMINUD, AMOMAXUD:
		if aerr := m.amo(i, ev, setX); aerr != nil {
			return false, aerr
		}

	default:
		return false, fmt.Errorf("rv64: unimplemented op %s at %#x", i.Op.Name(), m.PCReg)
	}

	m.PCReg = nextPC
	m.steps++
	return false, nil
}

// StepN retires up to len(evs) instructions, filling evs[:n] in
// retirement order — the batched fast path of simeng.BatchMachine.
// done and err describe the machine state after the n filled events;
// on an error the first n events are still valid and must be
// delivered before the error is surfaced.
func (m *Machine) StepN(evs []isa.Event) (n int, done bool, err error) {
	for n < len(evs) {
		done, err = m.Step(&evs[n])
		if done || err != nil {
			return n, done, err
		}
		n++
	}
	return n, false, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

// nanBox embeds a single-precision value into a 64-bit FP register.
func nanBox(v uint32) uint64 { return 0xffffffff_00000000 | uint64(v) }

const canonicalNaN32 uint32 = 0x7fc00000

// getS reads a single-precision register, unboxing NaN-boxed values;
// improperly boxed values read as the canonical NaN, per the spec.
func (m *Machine) getS(r uint8) float32 {
	v := m.F[r]
	if v>>32 != 0xffffffff {
		return math.Float32frombits(canonicalNaN32)
	}
	return math.Float32frombits(uint32(v))
}

// getD reads a double-precision register.
func (m *Machine) getD(r uint8) float64 { return math.Float64frombits(m.F[r]) }

func (m *Machine) load(op Op, addr uint64) (uint64, uint8, error) {
	switch op {
	case LB:
		v, err := m.Mem.Read8(addr)
		return uint64(int64(int8(v))), 1, err
	case LBU:
		v, err := m.Mem.Read8(addr)
		return uint64(v), 1, err
	case LH:
		v, err := m.Mem.Read16(addr)
		return uint64(int64(int16(v))), 2, err
	case LHU:
		v, err := m.Mem.Read16(addr)
		return uint64(v), 2, err
	case LW:
		v, err := m.Mem.Read32(addr)
		return sext32(v), 4, err
	case LWU:
		v, err := m.Mem.Read32(addr)
		return uint64(v), 4, err
	case LD:
		v, err := m.Mem.Read64(addr)
		return v, 8, err
	}
	panic("rv64: not a load")
}

func (m *Machine) store(op Op, addr, v uint64) (uint8, error) {
	switch op {
	case SB:
		return 1, m.Mem.Write8(addr, uint8(v))
	case SH:
		return 2, m.Mem.Write16(addr, uint16(v))
	case SW:
		return 4, m.Mem.Write32(addr, uint32(v))
	case SD:
		return 8, m.Mem.Write64(addr, v)
	}
	panic("rv64: not a store")
}

// intOp evaluates a register-register integer operation.
func intOp(op Op, a, b uint64) uint64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case SLL:
		return a << (b & 63)
	case SLT:
		return b2u(int64(a) < int64(b))
	case SLTU:
		return b2u(a < b)
	case XOR:
		return a ^ b
	case SRL:
		return a >> (b & 63)
	case SRA:
		return uint64(int64(a) >> (b & 63))
	case OR:
		return a | b
	case AND:
		return a & b
	case ADDW:
		return sext32(uint32(a) + uint32(b))
	case SUBW:
		return sext32(uint32(a) - uint32(b))
	case SLLW:
		return sext32(uint32(a) << (b & 31))
	case SRLW:
		return sext32(uint32(a) >> (b & 31))
	case SRAW:
		return uint64(int64(int32(a) >> (b & 31)))
	case MUL:
		return a * b
	case MULH:
		return uint64(mulh64(int64(a), int64(b)))
	case MULHU:
		return mulhu64(a, b)
	case MULHSU:
		return mulhsu64(int64(a), b)
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return a
		}
		return uint64(int64(a) / int64(b))
	case DIVU:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case REM:
		if b == 0 {
			return a
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case REMU:
		if b == 0 {
			return a
		}
		return a % b
	case MULW:
		return sext32(uint32(a) * uint32(b))
	case DIVW:
		x, y := int32(a), int32(b)
		if y == 0 {
			return ^uint64(0)
		}
		if x == math.MinInt32 && y == -1 {
			return sext32(uint32(x))
		}
		return uint64(int64(x / y))
	case DIVUW:
		x, y := uint32(a), uint32(b)
		if y == 0 {
			return ^uint64(0)
		}
		return sext32(x / y)
	case REMW:
		x, y := int32(a), int32(b)
		if y == 0 {
			return sext32(uint32(x))
		}
		if x == math.MinInt32 && y == -1 {
			return 0
		}
		return uint64(int64(x % y))
	case REMUW:
		x, y := uint32(a), uint32(b)
		if y == 0 {
			return sext32(x)
		}
		return sext32(x % y)
	}
	panic("rv64: not an int op")
}

// mulh64 returns the high 64 bits of the signed 128-bit product.
func mulh64(a, b int64) int64 {
	h := int64(mulhu64(uint64(a), uint64(b)))
	if a < 0 {
		h -= b
	}
	if b < 0 {
		h -= a
	}
	return h
}

// mulhsu64 returns the high 64 bits of signed×unsigned.
func mulhsu64(a int64, b uint64) uint64 {
	h := mulhu64(uint64(a), b)
	if a < 0 {
		h -= b
	}
	return h
}

// mulhu64 returns the high 64 bits of the unsigned 128-bit product.
func mulhu64(a, b uint64) uint64 {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	t := aLo*bLo>>32 + aHi*bLo
	lo, hi := t&0xffffffff, t>>32
	lo += aLo * bHi
	return aHi*bHi + hi + lo>>32
}

// fma executes the four fused multiply-add variants.
func (m *Machine) fma(i Inst) {
	switch i.Op {
	case FMADDS, FMSUBS, FNMSUBS, FNMADDS:
		a, b, c := float64(m.getS(i.Rs1)), float64(m.getS(i.Rs2)), float64(m.getS(i.Rs3))
		var r float64
		switch i.Op {
		case FMADDS:
			r = math.FMA(a, b, c)
		case FMSUBS:
			r = math.FMA(a, b, -c)
		case FNMSUBS:
			r = math.FMA(-a, b, c)
		case FNMADDS:
			r = math.FMA(-a, b, -c)
		}
		m.F[i.Rd] = nanBox(math.Float32bits(float32(r)))
	default:
		a, b, c := m.getD(i.Rs1), m.getD(i.Rs2), m.getD(i.Rs3)
		var r float64
		switch i.Op {
		case FMADDD:
			r = math.FMA(a, b, c)
		case FMSUBD:
			r = math.FMA(a, b, -c)
		case FNMSUBD:
			r = math.FMA(-a, b, c)
		case FNMADDD:
			r = math.FMA(-a, b, -c)
		}
		m.F[i.Rd] = math.Float64bits(r)
	}
}

// fpBin executes two-operand FP arithmetic and sign-injection ops.
func (m *Machine) fpBin(i Inst) {
	switch i.Op {
	case FADDS, FSUBS, FMULS, FDIVS, FMINS, FMAXS:
		a, b := m.getS(i.Rs1), m.getS(i.Rs2)
		var r float32
		switch i.Op {
		case FADDS:
			r = a + b
		case FSUBS:
			r = a - b
		case FMULS:
			r = a * b
		case FDIVS:
			r = a / b
		case FMINS:
			r = fmin32(a, b)
		case FMAXS:
			r = fmax32(a, b)
		}
		m.F[i.Rd] = nanBox(math.Float32bits(r))
	case FSGNJS, FSGNJNS, FSGNJXS:
		a := uint32(m.F[i.Rs1])
		b := uint32(m.F[i.Rs2])
		m.F[i.Rd] = nanBox(signInject32(i.Op, a, b))
	case FADDD, FSUBD, FMULD, FDIVD, FMIND, FMAXD:
		a, b := m.getD(i.Rs1), m.getD(i.Rs2)
		var r float64
		switch i.Op {
		case FADDD:
			r = a + b
		case FSUBD:
			r = a - b
		case FMULD:
			r = a * b
		case FDIVD:
			r = a / b
		case FMIND:
			r = fmin64(a, b)
		case FMAXD:
			r = fmax64(a, b)
		}
		m.F[i.Rd] = math.Float64bits(r)
	case FSGNJD, FSGNJND, FSGNJXD:
		m.F[i.Rd] = signInject64(i.Op, m.F[i.Rs1], m.F[i.Rs2])
	}
}

func signInject32(op Op, a, b uint32) uint32 {
	const signBit = uint32(1) << 31
	switch op {
	case FSGNJS:
		return a&^signBit | b&signBit
	case FSGNJNS:
		return a&^signBit | ^b&signBit
	default: // FSGNJXS
		return a ^ b&signBit
	}
}

func signInject64(op Op, a, b uint64) uint64 {
	const signBit = uint64(1) << 63
	switch op {
	case FSGNJD:
		return a&^signBit | b&signBit
	case FSGNJND:
		return a&^signBit | ^b&signBit
	default: // FSGNJXD
		return a ^ b&signBit
	}
}

func fmin32(a, b float32) float32 {
	switch {
	case isNaN32(a):
		return b
	case isNaN32(b):
		return a
	case a < b || (a == 0 && b == 0 && math.Signbit(float64(a))):
		return a
	default:
		return b
	}
}

func fmax32(a, b float32) float32 {
	switch {
	case isNaN32(a):
		return b
	case isNaN32(b):
		return a
	case a > b || (a == 0 && b == 0 && !math.Signbit(float64(a))):
		return a
	default:
		return b
	}
}

func fmin64(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a < b || (a == 0 && b == 0 && math.Signbit(a)):
		return a
	default:
		return b
	}
}

func fmax64(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a > b || (a == 0 && b == 0 && !math.Signbit(a)):
		return a
	default:
		return b
	}
}

func isNaN32(f float32) bool { return f != f }

// fpCmp evaluates FEQ/FLT/FLE; comparisons with NaN yield 0.
func (m *Machine) fpCmp(i Inst) uint64 {
	switch i.Op {
	case FEQS:
		return b2u(m.getS(i.Rs1) == m.getS(i.Rs2))
	case FLTS:
		return b2u(m.getS(i.Rs1) < m.getS(i.Rs2))
	case FLES:
		return b2u(m.getS(i.Rs1) <= m.getS(i.Rs2))
	case FEQD:
		return b2u(m.getD(i.Rs1) == m.getD(i.Rs2))
	case FLTD:
		return b2u(m.getD(i.Rs1) < m.getD(i.Rs2))
	default: // FLED
		return b2u(m.getD(i.Rs1) <= m.getD(i.Rs2))
	}
}

// fpToInt implements FCVT to integer with RISC-V saturation semantics.
func (m *Machine) fpToInt(i Inst) uint64 {
	var v float64
	switch i.Op {
	case FCVTWS, FCVTWUS, FCVTLS, FCVTLUS:
		v = float64(m.getS(i.Rs1))
	default:
		v = m.getD(i.Rs1)
	}
	// Honour the static rounding mode: RTZ (1, what C casts compile
	// to) truncates; everything else is treated as the RNE default.
	if i.RM == 1 {
		v = math.Trunc(v)
	} else {
		v = math.RoundToEven(v)
	}
	switch i.Op {
	case FCVTWS, FCVTWD:
		return sext32(uint32(satS32(v)))
	case FCVTWUS, FCVTWUD:
		return sext32(satU32(v))
	case FCVTLS, FCVTLD:
		return uint64(satS64(v))
	default: // FCVTLUS, FCVTLUD
		return satU64(v)
	}
}

func satS32(v float64) int32 {
	switch {
	case math.IsNaN(v), v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	default:
		return int32(v)
	}
}

func satU32(v float64) uint32 {
	switch {
	case math.IsNaN(v), v >= math.MaxUint32:
		return math.MaxUint32
	case v <= 0:
		return 0
	default:
		return uint32(v)
	}
}

func satS64(v float64) int64 {
	switch {
	case math.IsNaN(v), v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(v)
	}
}

func satU64(v float64) uint64 {
	switch {
	case math.IsNaN(v), v >= math.MaxUint64:
		return math.MaxUint64
	case v <= 0:
		return 0
	default:
		return uint64(v)
	}
}

// intToFP implements FCVT from integer.
func (m *Machine) intToFP(i Inst) {
	v := m.X[i.Rs1]
	var f float64
	switch i.Op {
	case FCVTSW, FCVTDW:
		f = float64(int32(v))
	case FCVTSWU, FCVTDWU:
		f = float64(uint32(v))
	case FCVTSL, FCVTDL:
		f = float64(int64(v))
	case FCVTSLU, FCVTDLU:
		f = float64(v)
	}
	switch i.Op {
	case FCVTSW, FCVTSWU, FCVTSL, FCVTSLU:
		m.F[i.Rd] = nanBox(math.Float32bits(float32(f)))
	default:
		m.F[i.Rd] = math.Float64bits(f)
	}
}

// FP classification masks per the RISC-V spec.
func classifyD(v float64) uint64 {
	b := math.Float64bits(v)
	sign := b>>63 != 0
	exp := b >> 52 & 0x7ff
	frac := b & (1<<52 - 1)
	switch {
	case exp == 0x7ff && frac != 0:
		if frac>>51 == 1 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signalling NaN
	case exp == 0x7ff && sign:
		return 1 << 0 // -inf
	case exp == 0x7ff:
		return 1 << 7 // +inf
	case exp == 0 && frac == 0 && sign:
		return 1 << 3 // -0
	case exp == 0 && frac == 0:
		return 1 << 4 // +0
	case exp == 0 && sign:
		return 1 << 2 // negative subnormal
	case exp == 0:
		return 1 << 5 // positive subnormal
	case sign:
		return 1 << 1 // negative normal
	default:
		return 1 << 6 // positive normal
	}
}

func classifyS(v float32) uint64 {
	b := math.Float32bits(v)
	sign := b>>31 != 0
	exp := b >> 23 & 0xff
	frac := b & (1<<23 - 1)
	switch {
	case exp == 0xff && frac != 0:
		if frac>>22 == 1 {
			return 1 << 9
		}
		return 1 << 8
	case exp == 0xff && sign:
		return 1 << 0
	case exp == 0xff:
		return 1 << 7
	case exp == 0 && frac == 0 && sign:
		return 1 << 3
	case exp == 0 && frac == 0:
		return 1 << 4
	case exp == 0 && sign:
		return 1 << 2
	case exp == 0:
		return 1 << 5
	case sign:
		return 1 << 1
	default:
		return 1 << 6
	}
}

// amo executes the A-extension operations with single-hart semantics:
// LR always reserves, SC always succeeds.
func (m *Machine) amo(i Inst, ev *isa.Event, setX func(uint8, uint64)) error {
	addr := m.X[i.Rs1]
	addSrc(ev, i.Rs1)
	word := specs[i.Op].f3 == 2
	size := uint8(8)
	if word {
		size = 4
	}
	readMem := func() (uint64, error) {
		if word {
			v, err := m.Mem.Read32(addr)
			return sext32(v), err
		}
		return m.Mem.Read64(addr)
	}
	writeMem := func(v uint64) error {
		if word {
			return m.Mem.Write32(addr, uint32(v))
		}
		return m.Mem.Write64(addr, v)
	}

	switch i.Op {
	case LRW, LRD:
		v, err := readMem()
		if err != nil {
			return err
		}
		ev.LoadAddr, ev.LoadSize = addr, size
		setX(i.Rd, v)
		return nil
	case SCW, SCD:
		addSrc(ev, i.Rs2)
		if err := writeMem(m.X[i.Rs2]); err != nil {
			return err
		}
		ev.StoreAddr, ev.StoreSize = addr, size
		setX(i.Rd, 0) // success
		return nil
	}

	addSrc(ev, i.Rs2)
	old, err := readMem()
	if err != nil {
		return err
	}
	src := m.X[i.Rs2]
	var result uint64
	switch i.Op {
	case AMOSWAPW, AMOSWAPD:
		result = src
	case AMOADDW, AMOADDD:
		result = old + src
	case AMOXORW, AMOXORD:
		result = old ^ src
	case AMOANDW, AMOANDD:
		result = old & src
	case AMOORW, AMOORD:
		result = old | src
	case AMOMINW, AMOMIND:
		result = old
		if int64(src) < int64(old) {
			result = src
		}
	case AMOMAXW, AMOMAXD:
		result = old
		if int64(src) > int64(old) {
			result = src
		}
	case AMOMINUW, AMOMINUD:
		result = old
		if src < old {
			result = src
		}
	case AMOMAXUW, AMOMAXUD:
		result = old
		if src > old {
			result = src
		}
	}
	if word {
		result = uint64(uint32(result))
		old = sext32(uint32(old))
	}
	if err := writeMem(result); err != nil {
		return err
	}
	ev.LoadAddr, ev.LoadSize = addr, size
	ev.StoreAddr, ev.StoreSize = addr, size
	setX(i.Rd, old)
	return nil
}

// ecall dispatches the Linux system calls the simulated programs use.
func (m *Machine) ecall() (done bool, err error) {
	switch m.X[regA7] {
	case sysExit:
		m.exited = true
		m.exitCode = int64(m.X[regA0])
		m.steps++
		return true, nil
	case sysWrite:
		buf, rerr := m.Mem.ReadBytes(m.X[regA1], int(m.X[regA2]))
		if rerr != nil {
			return false, rerr
		}
		n, werr := m.Stdout.Write(buf)
		if werr != nil {
			return false, werr
		}
		m.X[regA0] = uint64(n)
		return false, nil
	case sysBrk:
		req := m.X[regA0]
		if req != 0 && req >= m.Mem.Base() && req < m.Mem.Base()+m.Mem.Size() {
			m.Mem.SetBrk(req)
		}
		m.X[regA0] = m.Mem.Brk()
		return false, nil
	default:
		return false, fmt.Errorf("rv64: unsupported syscall %d at %#x", m.X[regA7], m.PCReg)
	}
}

// OpGroup returns the latency class of an operation.
func OpGroup(op Op) isa.Group {
	switch op {
	case LB, LH, LW, LD, LBU, LHU, LWU, FLW, FLD, LRW, LRD:
		return isa.GroupLoad
	case SB, SH, SW, SD, FSW, FSD, SCW, SCD:
		return isa.GroupStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR:
		return isa.GroupBranch
	case MUL, MULH, MULHSU, MULHU, MULW:
		return isa.GroupIntMul
	case DIV, DIVU, REM, REMU, DIVW, DIVUW, REMW, REMUW:
		return isa.GroupIntDiv
	case FADDS, FSUBS, FADDD, FSUBD:
		return isa.GroupFPAdd
	case FMULS, FMULD:
		return isa.GroupFPMul
	case FMADDS, FMSUBS, FNMSUBS, FNMADDS, FMADDD, FMSUBD, FNMSUBD, FNMADDD:
		return isa.GroupFPFMA
	case FDIVS, FDIVD:
		return isa.GroupFPDiv
	case FSQRTS, FSQRTD:
		return isa.GroupFPSqrt
	case FSGNJS, FSGNJNS, FSGNJXS, FSGNJD, FSGNJND, FSGNJXD,
		FMINS, FMAXS, FMIND, FMAXD, FEQS, FLTS, FLES, FEQD, FLTD, FLED,
		FCLASSS, FCLASSD:
		return isa.GroupFPSimple
	case FCVTWS, FCVTWUS, FCVTLS, FCVTLUS, FCVTSW, FCVTSWU, FCVTSL, FCVTSLU,
		FCVTWD, FCVTWUD, FCVTLD, FCVTLUD, FCVTDW, FCVTDWU, FCVTDL, FCVTDLU,
		FCVTSD, FCVTDS, FMVXW, FMVXD, FMVWX, FMVDX:
		return isa.GroupFPCvt
	case ECALL, EBREAK, FENCE:
		return isa.GroupSystem
	case AMOSWAPW, AMOADDW, AMOXORW, AMOANDW, AMOORW, AMOMINW, AMOMAXW, AMOMINUW, AMOMAXUW,
		AMOSWAPD, AMOADDD, AMOXORD, AMOANDD, AMOORD, AMOMIND, AMOMAXD, AMOMINUD, AMOMAXUD:
		return isa.GroupLoad
	default:
		return isa.GroupIntSimple
	}
}
