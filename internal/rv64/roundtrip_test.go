package rv64

import (
	"math/rand"
	"testing"
)

// TestRoundTripRandomWords is a fuzz-style seeded sweep over the
// 32-bit encoding space: every word that decodes must survive
// encode → decode unchanged, and the re-encoded word must be a
// fixpoint (Encode is the exact inverse of Decode for canonical
// encodings). Random words exercise don't-care bits and reserved
// fields that hand-written encoder tests never reach.
func TestRoundTripRandomWords(t *testing.T) {
	r := rand.New(rand.NewSource(0xc0ffee))
	const n = 500000
	decoded := 0
	for i := 0; i < n; i++ {
		w := r.Uint32()
		inst, err := Decode(w)
		if err != nil {
			continue
		}
		decoded++
		w2, err := Encode(inst)
		if err != nil {
			t.Fatalf("word %#08x decodes to %v but Encode fails: %v", w, inst, err)
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %#08x (from %#08x) fails to decode: %v", w2, w, err)
		}
		if inst2 != inst {
			t.Fatalf("round trip drift: %#08x -> %+v -> %#08x -> %+v", w, inst, w2, inst2)
		}
		// The canonical form is a fixpoint.
		w3, err := Encode(inst2)
		if err != nil || w3 != w2 {
			t.Fatalf("canonical encoding not a fixpoint: %#08x -> %#08x (err %v)", w2, w3, err)
		}
	}
	// The generator is seeded, so the hit count is reproducible; a
	// floor guards against the test silently becoming vacuous if the
	// decoder starts rejecting everything.
	if decoded < n/100 {
		t.Fatalf("only %d/%d random words decoded — sweep is vacuous", decoded, n)
	}
	t.Logf("round-tripped %d/%d random words", decoded, n)
}

// TestRoundTripMutatedFields starts from random decodable words and
// flips individual bits, re-checking the invariant on every mutant
// that still decodes — concentrating coverage near encoding-format
// boundaries.
func TestRoundTripMutatedFields(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 20000; i++ {
		w := r.Uint32()
		if _, err := Decode(w); err != nil {
			continue
		}
		for bit := 0; bit < 32; bit++ {
			m := w ^ (1 << bit)
			inst, err := Decode(m)
			if err != nil {
				continue
			}
			checked++
			w2, err := Encode(inst)
			if err != nil {
				t.Fatalf("mutant %#08x decodes to %v but Encode fails: %v", m, inst, err)
			}
			inst2, err := Decode(w2)
			if err != nil || inst2 != inst {
				t.Fatalf("mutant round trip drift: %#08x -> %+v -> %#08x -> %+v (err %v)", m, inst, w2, inst2, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no mutants decoded — sweep is vacuous")
	}
}
