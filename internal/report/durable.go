package report

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"

	"isacmp/internal/cc"
	"isacmp/internal/durable"
	"isacmp/internal/ir"
	"isacmp/internal/telemetry"
)

// This file is the report layer's side of the durability contract:
// how a cell is content-addressed, how its canonical result payload
// (the Row, counters included) is journaled, and how a journal or
// cache hit is replayed back into a live matrix byte-identically.

// analysisSpec canonically serializes every experiment knob that can
// change a cell's result: the analysis selection, window geometry,
// latency model, retirement budget, and whether metrics counters are
// collected. Execution-strategy knobs (Parallel, StepLoop) are
// deliberately excluded — the PR 2 byte-identity contract guarantees
// they cannot change a result — as are pure observers (progress,
// status, profiler, flight recorder). Fault-injection hooks poison
// the spec so an injected run can never seed the cache for a clean
// one.
func analysisSpec(ex Experiment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis/v1 pl=%t cp=%t sc=%t win=%t mix=%t gcc12=%t",
		ex.PathLength, ex.CritPath, ex.Scaled, ex.Windowed, ex.Mix, ex.GCC12Only)
	fmt.Fprintf(&b, " sizes=%v stride=%d maxinstr=%d metrics=%t",
		ex.WindowSizes, ex.WindowStride, ex.MaxInstructions, ex.Metrics != nil)
	if ex.Latencies != nil {
		fmt.Fprintf(&b, " lat=%v", *ex.Latencies)
	}
	if ex.WrapMachine != nil || ex.WrapSink != nil {
		fmt.Fprintf(&b, " wrapped=true")
	}
	return b.String()
}

// cellHash content-addresses one (workload, target) cell: engine
// version, workload name, target, the compiled ELF bytes the machine
// actually loads, the analysis spec and the fusion spec. Compiling
// for the hash costs microseconds against the cell's simulation and
// is exactly what makes the address honest — a compiler change
// invalidates the cache with no versioning ceremony.
func cellHash(prog *ir.Program, tgt cc.Target, ex Experiment) (string, error) {
	compiled, err := cc.Compile(prog, tgt)
	if err != nil {
		return "", err
	}
	return durable.KeyInput{
		Engine:   durable.EngineVersion,
		Workload: prog.Name,
		Target:   tgt.String(),
		Code:     compiled.File.Write(),
		Analysis: analysisSpec(ex),
		Fusion:   ex.Fusion.Spec(),
	}.Hash(), nil
}

// journalFinished journals a retired cell's canonical Row (and files
// it in the content cache). Journal I/O failure is survived inside
// durable; an unmarshalable row is a programming error surfaced in
// the log.
func journalFinished(ex Experiment, workload, target, hash string, row *Row, fromCache bool, clog *slog.Logger) {
	if ex.Durable == nil || hash == "" {
		return
	}
	data, err := json.Marshal(row)
	if err != nil {
		clog.Warn("durable: row encode failed — cell not journaled", "err", err)
		return
	}
	ex.Durable.CellFinished(workload, target, hash, data, fromCache)
}

// journalFailed journals a terminal cell failure. Cancellation-caused
// failures (matrix cancelled, drain in progress) are never journaled:
// they must re-run on resume.
func journalFailed(ex Experiment, workload, target, hash string, row *Row, clog *slog.Logger) {
	if ex.Durable == nil || hash == "" {
		return
	}
	data, err := json.Marshal(row)
	if err != nil {
		clog.Warn("durable: failed-row encode failed — cell not journaled", "err", err)
		return
	}
	ex.Durable.CellFailed(workload, target, hash, data)
}

// replayRow reconstructs a cell's Row from a durable hit: the payload
// unmarshals back into the exact Row the original run computed, its
// counter delta is re-applied to the registry, the status board is
// driven through the same terminal transition, and a cache hit is
// journaled into this run's journal so a resume of *this* run replays
// it too. Returns ok=false when the payload is unusable (the cell
// then recomputes).
func replayRow(hit *durable.Hit, hash string, prog *ir.Program, tgt cc.Target, ex Experiment, clog *slog.Logger) (Row, bool) {
	var row Row
	if err := json.Unmarshal(hit.Payload, &row); err != nil {
		clog.Warn("durable: replay payload rejected — re-running cell",
			"source", hit.Source, "err", err)
		return Row{}, false
	}
	if row.Target != tgt || row.Failed() != hit.Failed {
		clog.Warn("durable: replay payload inconsistent — re-running cell",
			"source", hit.Source, "payload_target", row.Target.String())
		return Row{}, false
	}
	telemetry.ApplyCounters(ex.Metrics, row.Counters)
	if hit.Source == "cache" {
		journalFinished(ex, prog.Name, tgt.String(), hash, &row, true, clog)
	}
	if f := row.Failure; f != nil {
		ex.Status.Served(prog.Name, tgt.String(), hit.Source, true, f.Reason, 0)
		clog.Info("cell failure replayed", "source", hit.Source, "reason", f.Reason)
	} else {
		ex.Status.Served(prog.Name, tgt.String(), hit.Source, false, "", row.Core.Instructions)
		clog.Debug("cell served", "source", hit.Source, "retired", row.Core.Instructions)
	}
	return row, true
}
