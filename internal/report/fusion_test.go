package report

import (
	"bytes"
	"strings"
	"testing"

	"isacmp/internal/cc"
	"isacmp/internal/fusion"
	"isacmp/internal/isa"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// TestFusionWriterSilent: the fusion table must contribute no byte
// when no healthy row carries a fusion block — the writer can sit
// unconditionally after every table without disturbing fusion-off
// report text.
func TestFusionWriterSilent(t *testing.T) {
	rows := []Row{
		{Target: cc.Target{Arch: isa.RV64, Flavor: cc.GCC12}, PathLen: 100},
		{Target: cc.Target{Arch: isa.AArch64, Flavor: cc.GCC12}, PathLen: 90},
	}
	var buf bytes.Buffer
	WriteFusion(&buf, "stream", rows)
	if buf.Len() != 0 {
		t.Fatalf("fusion-off rows produced output:\n%s", buf.Bytes())
	}
}

// TestFusionWriterMixedRows: under -fusion=rv64 only the RV64 rows
// carry fusion blocks; the AArch64 rows must still appear, marked
// fusion-off, and rules that never fired must not clutter the hits
// column.
func TestFusionWriterMixedRows(t *testing.T) {
	rows := []Row{
		{
			Target: cc.Target{Arch: isa.RV64, Flavor: cc.GCC12},
			Fusion: &telemetry.FusionStats{
				Spec: "rv64", EventsIn: 100, EventsOut: 80,
				Rules: []telemetry.FusionRuleJSON{
					{Rule: "loadpair", Hits: 15},
					{Rule: "slliadd", Hits: 5},
					{Rule: "luiaddi", Hits: 0},
				},
			},
		},
		{Target: cc.Target{Arch: isa.AArch64, Flavor: cc.GCC12}, PathLen: 90},
	}
	var buf bytes.Buffer
	WriteFusion(&buf, "stream", rows)
	out := buf.String()
	for _, want := range []string{
		"effective path length with macro-op fusion",
		"loadpair=15 slliadd=5",
		"0.8000",
		"(fusion off)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fusion table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "luiaddi") {
		t.Errorf("zero-hit rule printed in hits column:\n%s", out)
	}
}

// TestFusionOffRecordOmitted: a fusion-off experiment must produce
// rows without fusion blocks and manifest records without a fusion
// key — the byte-identity contract's manifest half.
func TestFusionOffRecordOmitted(t *testing.T) {
	prog := workloads.ByName("stream", workloads.Tiny)
	rows, err := Run(prog, Experiment{PathLength: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fusion != nil {
			t.Fatalf("%s: fusion-off row carries a fusion block", r.Target)
		}
	}
	m := telemetry.NewManifest("test", "tiny")
	AppendRows(m, "stream", rows)
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"fusion"`)) {
		t.Fatal("fusion-off manifest contains a fusion key")
	}
}

// TestFusionExperimentRecords: a fusion-on experiment attaches the
// pass only to matching architectures and survives canonicalization —
// the fusion block is deterministic provenance, not volatile timing.
func TestFusionExperimentRecords(t *testing.T) {
	prog := workloads.ByName("stream", workloads.Tiny)
	rows, err := Run(prog, Experiment{
		PathLength: true, CritPath: true,
		Fusion:   fusion.Config{RV64: true, Rules: fusion.AllRules},
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Target.Arch {
		case isa.RV64:
			if r.Fusion == nil {
				t.Fatalf("%s: RV64 row missing its fusion block", r.Target)
			}
			if r.Fusion.Spec != "rv64" {
				t.Fatalf("%s: spec %q, want rv64", r.Target, r.Fusion.Spec)
			}
			if r.Fusion.EventsOut >= r.Fusion.EventsIn {
				t.Fatalf("%s: no pairs fused (%d -> %d)", r.Target, r.Fusion.EventsIn, r.Fusion.EventsOut)
			}
		default:
			if r.Fusion != nil {
				t.Fatalf("%s: -fusion=rv64 attached to a non-RV64 row", r.Target)
			}
		}
	}
	m := telemetry.NewManifest("test", "tiny")
	AppendRows(m, "stream", rows)
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"fusion"`)) {
		t.Fatal("canonicalization stripped the fusion block")
	}
}
