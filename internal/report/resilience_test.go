package report

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"isacmp/internal/cc"
	"isacmp/internal/faultinject"
	"isacmp/internal/ir"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// The acceptance tests for the resilience layer: with faults injected
// into k of N matrix cells, a full run must complete with exactly N-k
// healthy rows that are byte-identical to the fault-free run, k FAILED
// cells carrying the right typed reason and attempt count, and hung
// cells reaped by the timeout without stalling the pool.

func resilienceProgs(t *testing.T) []*ir.Program {
	t.Helper()
	var progs []*ir.Program
	for _, name := range []string{"stream", "lbm"} {
		p := workloads.ByName(name, workloads.Tiny)
		if p == nil {
			t.Fatalf("workload %s missing", name)
		}
		progs = append(progs, p)
	}
	return progs
}

func resilienceEx(parallel int) Experiment {
	return Experiment{PathLength: true, CritPath: true, Parallel: parallel}
}

// canonRunJSON canonicalizes the suite's manifest and returns each
// healthy cell's run record as marshalled JSON, keyed by
// workload|target — the byte-identity currency of the tests below.
func canonRunJSON(t *testing.T, progs []*ir.Program, all [][]Row) map[string]string {
	t.Helper()
	m := telemetry.NewManifest("resilience-test", "tiny")
	for i, p := range progs {
		AppendRows(m, p.Name, all[i])
	}
	m.Canonicalize()
	out := make(map[string]string, len(m.Runs))
	for _, r := range m.Runs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.Workload+"|"+r.Target] = string(b)
	}
	return out
}

// TestMatrixSurvivesFaults is the headline acceptance test: 3 of 8
// cells are faulted (a decode error, an exec-layer panic and a sink
// panic), the run completes, the 5 healthy cells are byte-identical to
// the fault-free run and the 3 failures carry the right typed reason.
func TestMatrixSurvivesFaults(t *testing.T) {
	progs := resilienceProgs(t)
	clean, _, err := RunSuite(progs, resilienceEx(2))
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON := canonRunJSON(t, progs, clean)

	inj := faultinject.New(1,
		faultinject.Plan{Workload: "stream", Target: "RISC-V/GCC 9.2", Kind: faultinject.Decode, At: 100},
		faultinject.Plan{Workload: "lbm", Target: "AArch64/GCC 12.2", Kind: faultinject.Panic, At: 50},
		faultinject.Plan{Workload: "lbm", Target: "RISC-V/GCC 12.2", Kind: faultinject.SinkPanic, At: 200},
	)
	defer inj.Close()
	ex := resilienceEx(2)
	ex.WrapMachine = inj.WrapMachine
	ex.WrapSink = inj.WrapSink
	faulted, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatalf("continue-on-error run must complete: %v", err)
	}

	if n := CountFailures(faulted); n != 3 {
		t.Fatalf("failures = %d, want 3", n)
	}
	wantReason := map[string]string{
		"stream|RISC-V/GCC 9.2": "decode",
		"lbm|AArch64/GCC 12.2":  "panic",
		"lbm|RISC-V/GCC 12.2":   "panic", // sink panic surfaces as panic kind
	}
	for _, f := range CollectFailures(faulted) {
		key := f.Workload + "|" + f.Target
		want, ok := wantReason[key]
		if !ok {
			t.Errorf("unexpected failed cell %s (reason %s)", key, f.Reason)
			continue
		}
		if f.Reason != want {
			t.Errorf("%s: reason = %s, want %s", key, f.Reason, want)
		}
		if f.Attempts != 1 {
			t.Errorf("%s: attempts = %d, want 1 (no retries configured)", key, f.Attempts)
		}
		if len(f.History) != 1 || f.History[0].Reason != want {
			t.Errorf("%s: history = %+v, want one %s attempt", key, f.History, want)
		}
	}

	faultedJSON := canonRunJSON(t, progs, faulted)
	if len(faultedJSON) != len(cleanJSON)-3 {
		t.Fatalf("healthy cells = %d, want %d", len(faultedJSON), len(cleanJSON)-3)
	}
	for key, got := range faultedJSON {
		if want := cleanJSON[key]; got != want {
			t.Errorf("healthy cell %s drifted under fault injection:\n got %s\nwant %s", key, got, want)
		}
	}
}

// TestRetryRecoversTransientFault: a fault armed only for the first
// two attempts is healed by the third; the row is healthy, reports its
// attempt count, and its results match the fault-free run exactly.
func TestRetryRecoversTransientFault(t *testing.T) {
	progs := resilienceProgs(t)[:1] // stream only
	clean, _, err := RunSuite(progs, resilienceEx(1))
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "AArch64/GCC 9.2",
		Kind: faultinject.MemFault, At: 64, FirstAttempts: 2,
	})
	defer inj.Close()
	ex := resilienceEx(1)
	ex.Retries = 2
	ex.RetryBackoff = time.Millisecond
	ex.WrapMachine = inj.WrapMachine
	faulted, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountFailures(faulted); n != 0 {
		t.Fatalf("failures = %d, want 0 (fault is transient)", n)
	}
	var row *Row
	for i := range faulted[0] {
		if faulted[0][i].Target.String() == "AArch64/GCC 9.2" {
			row = &faulted[0][i]
		}
	}
	if row == nil {
		t.Fatal("target row missing")
	}
	if row.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", row.Attempts)
	}

	// Result bytes must match the fault-free run; only the retries
	// counter may differ, and it must say 2.
	cleanJSON := canonRunJSON(t, progs, clean)
	faultedJSON := canonRunJSON(t, progs, faulted)
	key := "stream|AArch64/GCC 9.2"
	got := strings.Replace(faultedJSON[key], `"retries":2,`, "", 1)
	if got == faultedJSON[key] {
		t.Fatalf("record %s does not carry \"retries\":2", faultedJSON[key])
	}
	if got != cleanJSON[key] {
		t.Errorf("retried cell drifted from fault-free run:\n got %s\nwant %s", got, cleanJSON[key])
	}
}

// TestRetryExhaustion: a persistent fault burns through every attempt
// and the FAILED record carries the full history.
func TestRetryExhaustion(t *testing.T) {
	progs := resilienceProgs(t)[:1]
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "RISC-V/GCC 12.2",
		Kind: faultinject.MemFault, At: 32,
	})
	defer inj.Close()
	ex := resilienceEx(1)
	ex.Retries = 1
	ex.WrapMachine = inj.WrapMachine
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	fails := CollectFailures(all)
	if len(fails) != 1 {
		t.Fatalf("failures = %d, want 1", len(fails))
	}
	f := fails[0]
	if f.Reason != "mem-fault" {
		t.Errorf("reason = %s, want mem-fault", f.Reason)
	}
	if f.Attempts != 2 || len(f.History) != 2 {
		t.Errorf("attempts = %d, history = %d, want 2/2", f.Attempts, len(f.History))
	}
	if f.Retired == 0 || f.PC == 0 {
		t.Errorf("failure must locate the fault: pc=%#x retired=%d", f.PC, f.Retired)
	}
	for i, a := range f.History {
		if a.Attempt != i+1 || a.Reason != "mem-fault" {
			t.Errorf("history[%d] = %+v, want attempt %d mem-fault", i, a, i+1)
		}
	}
}

// TestHungCellReaped: a cell whose Step blocks forever is reaped by
// -cell-timeout while every other cell completes normally — the pool
// is not stalled behind it.
func TestHungCellReaped(t *testing.T) {
	progs := resilienceProgs(t)[:1]
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "RISC-V/GCC 12.2",
		Kind: faultinject.Hang, At: 32,
	})
	defer inj.Close() // releases the abandoned goroutine
	ex := resilienceEx(4)
	ex.CellTimeout = 100 * time.Millisecond
	ex.WrapMachine = inj.WrapMachine
	start := time.Now()
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("matrix took %v; hung cell stalled the run", d)
	}
	fails := CollectFailures(all)
	if len(fails) != 1 {
		t.Fatalf("failures = %v, want exactly the hung cell", fails)
	}
	if fails[0].Target != "RISC-V/GCC 12.2" || fails[0].Reason != "deadline" {
		t.Errorf("failure = %s/%s, want RISC-V/GCC 12.2 deadline", fails[0].Target, fails[0].Reason)
	}
	healthy := 0
	for i := range all[0] {
		if !all[0][i].Failed() {
			healthy++
		}
	}
	if healthy != 3 {
		t.Errorf("healthy rows = %d, want 3", healthy)
	}
}

// TestSlowCellDeadline: a cell that still retires but too slowly blows
// its wall-clock deadline (the in-core context poll path).
func TestSlowCellDeadline(t *testing.T) {
	progs := resilienceProgs(t)[:1]
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "AArch64/GCC 12.2",
		Kind: faultinject.Slow, At: 1, SlowFor: time.Millisecond,
	})
	defer inj.Close()
	ex := resilienceEx(1)
	ex.CellTimeout = 50 * time.Millisecond
	ex.WrapMachine = inj.WrapMachine
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	fails := CollectFailures(all)
	if len(fails) != 1 || fails[0].Reason != "deadline" {
		t.Fatalf("failures = %+v, want one deadline failure", fails)
	}
}

// TestBudgetFailure: the per-cell instruction budget marks runaway
// cells with the budget reason.
func TestBudgetFailure(t *testing.T) {
	progs := resilienceProgs(t)[:1]
	ex := resilienceEx(1)
	ex.MaxInstructions = 100 // every tiny cell retires more than this
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	fails := CollectFailures(all)
	if len(fails) != 4 {
		t.Fatalf("failures = %d, want all 4 cells over budget", len(fails))
	}
	for _, f := range fails {
		if f.Reason != "budget" || f.Retired != 100 {
			t.Errorf("%s: reason=%s retired=%d, want budget/100", f.Target, f.Reason, f.Retired)
		}
	}
}

// TestFailFastReturnsRootCause: in fail-fast mode the first failure
// aborts the matrix and RunSuite's error names the faulted cell, not a
// cancellation casualty.
func TestFailFastReturnsRootCause(t *testing.T) {
	progs := resilienceProgs(t)
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "lbm", Target: "RISC-V/GCC 9.2",
		Kind: faultinject.Decode, At: 16,
	})
	defer inj.Close()
	ex := resilienceEx(2)
	ex.FailFast = true
	ex.WrapMachine = inj.WrapMachine
	_, _, err := RunSuite(progs, ex)
	if err == nil {
		t.Fatal("fail-fast run must return the failure")
	}
	if !strings.Contains(err.Error(), "lbm/RISC-V/GCC 9.2") || !strings.Contains(err.Error(), "decode") {
		t.Errorf("error must name the root-cause cell and reason: %v", err)
	}
}

// TestValidateRejectsBadConfig: invalid knobs are rejected up front
// with a one-line error instead of panicking or silently misbehaving.
func TestValidateRejectsBadConfig(t *testing.T) {
	progs := resilienceProgs(t)[:1]
	cases := []struct {
		name string
		ex   Experiment
		frag string
	}{
		{"negative parallel", Experiment{Parallel: -2}, "-parallel"},
		{"negative stride", Experiment{Windowed: true, WindowStride: -8}, "-stride"},
		{"zero window size", Experiment{Windowed: true, WindowSizes: []int{0}}, "window size"},
		{"negative window size", Experiment{Windowed: true, WindowSizes: []int{128, -1}}, "window size"},
		{"negative timeout", Experiment{CellTimeout: -time.Second}, "-cell-timeout"},
		{"negative retries", Experiment{Retries: -1}, "-retries"},
		{"negative backoff", Experiment{RetryBackoff: -time.Second}, "-retry-backoff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ex.Validate(); err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("Validate() = %v, want error mentioning %s", err, tc.frag)
			}
			if _, _, err := RunSuite(progs, tc.ex); err == nil {
				t.Fatal("RunSuite must reject the config too")
			}
		})
	}
	if err := (Experiment{}).Validate(); err != nil {
		t.Fatalf("zero experiment must validate: %v", err)
	}
}

// TestFailedRowRendering: FAILED cells render as FAILED(<reason>) rows
// in row-major tables and as notes under column-major ones, and the
// healthy columns survive.
func TestFailedRowRendering(t *testing.T) {
	rows := []Row{
		{Target: targetByName(t, "AArch64/GCC 9.2"), PathLen: 100, CP: 10, ILP: 10},
		{
			Target:   targetByName(t, "RISC-V/GCC 9.2"),
			Attempts: 2,
			Failure: &telemetry.FailureRecord{
				Workload: "stream", Target: "RISC-V/GCC 9.2",
				Reason: "decode", Message: "x", Attempts: 2,
			},
		},
	}
	var b strings.Builder
	WriteCritPaths(&b, "stream", rows, false)
	out := b.String()
	if !strings.Contains(out, "FAILED(decode) after 2 attempt(s)") {
		t.Errorf("Table 1 must mark the failed row:\n%s", out)
	}
	if !strings.Contains(out, "AArch64/GCC 9.2") {
		t.Errorf("healthy row missing:\n%s", out)
	}

	b.Reset()
	WritePathLengths(&b, "stream", rows)
	out = b.String()
	if !strings.Contains(out, "RISC-V/GCC 9.2: FAILED(decode) after 2 attempt(s)") {
		t.Errorf("Figure 1 must note the failed cell:\n%s", out)
	}
	if strings.Contains(out, "RISC-V/GCC 9.2%") {
		t.Errorf("failed cell must not appear as a column:\n%s", out)
	}

	if s := Summarise("stream", rows); len(s) != 0 {
		t.Errorf("summary must skip pairs with a failed side, got %+v", s)
	}
}

func targetByName(t *testing.T, name string) cc.Target {
	t.Helper()
	for _, tgt := range cc.Targets() {
		if tgt.String() == name {
			return tgt
		}
	}
	t.Fatalf("no target %q", name)
	return cc.Target{}
}
