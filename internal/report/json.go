package report

import (
	"fmt"

	"isacmp/internal/ir"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// RowRecord converts one experiment row into a manifest run record —
// the single conversion point every CLI's -json mode shares, so the
// manifest schema stays uniform across subcommands.
func RowRecord(workload string, r Row) telemetry.RunRecord {
	rec := telemetry.RunRecord{
		Workload:    workload,
		Target:      r.Target.String(),
		Core:        r.Core,
		WallSeconds: r.WallSeconds,
		Sinks:       r.Sinks,
		Tracker:     r.Tracker,
		Fusion:      r.Fusion,
	}
	if r.WallSeconds > 0 {
		rec.MIPS = float64(r.Core.Instructions) / r.WallSeconds / 1e6
	}
	if r.Attempts > 1 {
		// Retries (attempts beyond the first) rather than attempts, so
		// the zero value is omitted and fault-free manifests stay
		// byte-identical.
		rec.Retries = r.Attempts - 1
	}
	res := &telemetry.ResultTable{
		PathLen:         r.PathLen,
		Other:           r.Other,
		CP:              r.CP,
		ILP:             r.ILP,
		RuntimeMS:       r.Runtime * 1e3,
		ScaledCP:        r.ScaledCP,
		ScaledILP:       r.ScaledILP,
		ScaledRuntimeMS: r.ScaledRuntime * 1e3,
		BranchDensity:   r.BranchDensity,
		BranchTaken:     r.BranchTaken,
	}
	for _, rc := range r.Regions {
		res.Regions = append(res.Regions, telemetry.RegionJSON{Kernel: rc.Name, Count: rc.Count})
	}
	for _, w := range r.Windows {
		res.Windows = append(res.Windows, telemetry.WindowJSON{
			Size: w.Size, Windows: w.Windows, MeanCP: w.MeanCP, MeanILP: w.MeanILP,
		})
	}
	for _, gc := range r.MixCounts {
		if gc.Count == 0 {
			continue
		}
		res.Mix = append(res.Mix, telemetry.MixJSON{
			Group: gc.Group.String(), Count: gc.Count, Fraction: gc.Fraction,
		})
	}
	rec.Results = res
	return rec
}

// AppendRows adds one record per healthy row to the manifest; FAILED
// rows go to the manifest `failures` block instead of `runs`.
func AppendRows(m *telemetry.Manifest, workload string, rows []Row) {
	for _, r := range rows {
		if r.Failed() {
			m.Failures = append(m.Failures, *r.Failure)
			continue
		}
		m.Runs = append(m.Runs, RowRecord(workload, r))
	}
}

// ParseScale maps the -scale flag values to workload scales.
func ParseScale(s string) (workloads.Scale, error) {
	switch s {
	case "tiny":
		return workloads.Tiny, nil
	case "small":
		return workloads.Small, nil
	case "paper":
		return workloads.Paper, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want tiny, small or paper)", s)
}

// SelectBenchmarks resolves the -bench flag: empty selects the whole
// suite at the given scale.
func SelectBenchmarks(name string, s workloads.Scale) ([]*ir.Program, error) {
	if name == "" {
		return workloads.Suite(s), nil
	}
	p := workloads.ByName(name, s)
	if p == nil {
		return nil, fmt.Errorf("unknown benchmark %q (want one of %v)", name, workloads.Names())
	}
	return []*ir.Program{p}, nil
}
