package report

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"isacmp/internal/durable"
	"isacmp/internal/faultinject"
	"isacmp/internal/ir"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// The acceptance tests for the durability layer: a run interrupted at
// any point — a truncated journal, a SIGKILLed process — must resume
// to a manifest and report text byte-identical to the uninterrupted
// run, a warm cache must recompute zero cells, and the drain signal
// must interrupt a pending retry backoff immediately.

// durableEx is the reference experiment for the identity tests:
// sequential (so registry counter creation order is deterministic and
// whole-manifest byte comparison is meaningful) with a metrics
// registry attached, exercising the transactional counter replay.
func durableEx() Experiment {
	return Experiment{
		PathLength: true, CritPath: true, Scaled: true,
		Parallel: 1, Metrics: telemetry.NewRegistry(),
	}
}

// canonManifest renders the suite result as a canonicalized manifest
// plus the text report — the two byte-identity currencies of the
// resume contract.
func canonManifest(t *testing.T, progs []*ir.Program, all [][]Row) (string, string) {
	t.Helper()
	m := telemetry.NewManifest("durable-test", "tiny")
	var text bytes.Buffer
	for i, p := range progs {
		WritePathLengths(&text, p.Name, all[i])
		WriteCritPaths(&text, p.Name, all[i], false)
		AppendRows(m, p.Name, all[i])
	}
	m.Failures = CollectFailures(all)
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), text.String()
}

// runDurable runs the suite with a durable handle attached and returns
// the canonical manifest, report text and durability stats.
func runDurable(t *testing.T, progs []*ir.Program, ex Experiment, drun *durable.Run) (string, string, durable.Stats) {
	t.Helper()
	ex.Durable = drun
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	manifest, text := canonManifest(t, progs, all)
	return manifest, text, drun.Stats()
}

// TestDurableResumeAfterTruncatedJournal simulates a crash by chopping
// the journal mid-file and deleting the cache, then resumes: the
// replayed-plus-recomputed run must be byte-identical to the
// uninterrupted one, manifest and report text both.
func TestDurableResumeAfterTruncatedJournal(t *testing.T) {
	progs := resilienceProgs(t)
	clean, _, err := RunSuite(progs, durableEx())
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, wantText := canonManifest(t, progs, clean)

	dir := t.TempDir()
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, st := runDurable(t, progs, durableEx(), drun); st.Computed != 8 {
		t.Fatalf("first run computed %d cells, want 8", st.Computed)
	}
	if err := drun.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: keep roughly half the journal (cutting at a record
	// boundary) and wipe the cache so the lost cells must recompute
	// rather than come back as cache hits.
	data, err := os.ReadFile(durable.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if err := os.WriteFile(durable.JournalPath(dir), bytes.Join(lines[:len(lines)/2], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(durable.CachePath(dir)); err != nil {
		t.Fatal(err)
	}

	res, err := durable.Resume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if !res.Resumed() {
		t.Fatal("Resume handle must report Resumed")
	}
	gotManifest, gotText, st := runDurable(t, progs, durableEx(), res)
	if st.Resumed == 0 || st.Computed == 0 {
		t.Fatalf("stats = %+v, want both replayed and recomputed cells after truncation", st)
	}
	if st.Resumed+st.Computed != 8 {
		t.Fatalf("stats = %+v, want resumed+computed == 8", st)
	}
	if gotManifest != wantManifest {
		t.Errorf("resumed manifest drifted from uninterrupted run:\n got %s\nwant %s", gotManifest, wantManifest)
	}
	if gotText != wantText {
		t.Errorf("resumed report text drifted from uninterrupted run:\n got %s\nwant %s", gotText, wantText)
	}
}

// TestDurableWarmCacheZeroRecompute pins the content-cache contract: a
// second Open of the same directory (fresh journal, persisted cache)
// serves every cell from cache, recomputes zero, and still produces
// byte-identical output.
func TestDurableWarmCacheZeroRecompute(t *testing.T) {
	progs := resilienceProgs(t)
	dir := t.TempDir()
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, wantText, _ := runDurable(t, progs, durableEx(), drun)
	drun.Close()

	warm, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	gotManifest, gotText, st := runDurable(t, progs, durableEx(), warm)
	if st.Computed != 0 {
		t.Errorf("warm-cache run computed %d cells, want 0", st.Computed)
	}
	if st.Cached != 8 {
		t.Errorf("warm-cache run served %d cells from cache, want 8", st.Cached)
	}
	if gotManifest != wantManifest || gotText != wantText {
		t.Error("warm-cache run output drifted from computed run")
	}
}

// TestDurableOffIdentity pins that arming durability changes no output
// byte relative to a plain run — the journal-off byte-identity
// contract bench-durable enforces at scale.
func TestDurableOffIdentity(t *testing.T) {
	progs := resilienceProgs(t)
	plain, _, err := RunSuite(progs, durableEx())
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, wantText := canonManifest(t, progs, plain)

	drun, err := durable.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer drun.Close()
	gotManifest, gotText, _ := runDurable(t, progs, durableEx(), drun)
	if gotManifest != wantManifest || gotText != wantText {
		t.Error("durable run output drifted from plain run")
	}
}

// TestDurableHashMismatchReruns changes the analysis spec between run
// and resume: every journal record's content hash goes stale, the run
// warns and recomputes every cell, and the stats record the
// mismatches.
func TestDurableHashMismatchReruns(t *testing.T) {
	progs := resilienceProgs(t)
	dir := t.TempDir()
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	runDurable(t, progs, durableEx(), drun)
	drun.Close()

	res, err := durable.Resume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var warnings []string
	res.Warn = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	ex := durableEx()
	ex.Windowed = true // spec change: journal hashes no longer match
	_, _, st := runDurable(t, progs, ex, res)
	if st.HashMismatches != 8 {
		t.Errorf("hash mismatches = %d, want 8", st.HashMismatches)
	}
	if st.Resumed != 0 || st.Computed != 8 {
		t.Errorf("stats = %+v, want every cell recomputed", st)
	}
	if len(warnings) != 8 || !strings.Contains(warnings[0], "does not match inputs") {
		t.Errorf("warnings = %v, want 8 hash-mismatch warnings", warnings)
	}
}

// TestDurableFailureReplay pins that a journaled terminal failure is
// replayed verbatim on resume — a cell that deterministically dies is
// not re-run, and its FAILED row keeps the original reason and attempt
// history.
func TestDurableFailureReplay(t *testing.T) {
	progs := resilienceProgs(t)
	inj := faultinject.New(1,
		faultinject.Plan{Workload: "stream", Target: "RISC-V/GCC 9.2", Kind: faultinject.Decode, At: 100})
	defer inj.Close()
	ex := durableEx()
	ex.WrapMachine = inj.WrapMachine
	ex.WrapSink = inj.WrapSink

	dir := t.TempDir()
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, wantText, st := runDurable(t, progs, ex, drun)
	drun.Close()
	if st.Computed != 8 {
		t.Fatalf("first run computed %d cells (failures count as computed), want 8", st.Computed)
	}

	res, err := durable.Resume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	gotManifest, gotText, st := runDurable(t, progs, ex, res)
	if st.Resumed != 8 || st.Computed != 0 {
		t.Errorf("stats = %+v, want every cell (the failure included) replayed", st)
	}
	if st.FailedReplayed != 1 {
		t.Errorf("failed replayed = %d, want 1", st.FailedReplayed)
	}
	if gotManifest != wantManifest || gotText != wantText {
		t.Error("failure-replay output drifted from original run")
	}
}

// TestDurableDrainedCellsRerun pins the drain journaling rule: cells
// that never started because the matrix was draining are not
// journaled, so a resume recomputes exactly those cells.
func TestDurableDrainedCellsRerun(t *testing.T) {
	progs := resilienceProgs(t)
	dir := t.TempDir()
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	drain, cancel := context.WithCancel(context.Background())
	cancel() // draining before the first cell starts
	ex := durableEx()
	ex.Drain = drain
	ex.Durable = drun
	all, _, err := RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	drun.Close()
	if n := CountFailures(all); n != 8 {
		t.Fatalf("drained run failures = %d, want all 8 cells", n)
	}
	for _, f := range CollectFailures(all) {
		if f.Reason != "deadline" {
			t.Errorf("%s/%s: drained reason = %s, want deadline", f.Workload, f.Target, f.Reason)
		}
	}

	res, err := durable.Resume(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	_, _, st := runDurable(t, progs, durableEx(), res)
	if st.Resumed != 0 || st.Computed != 8 {
		t.Errorf("stats after drained run = %+v, want every cell recomputed (drained cells must not be journaled)", st)
	}
}

// TestDrainInterruptsRetryBackoff is the context-aware backoff test: a
// cell that fails every attempt with a long retry backoff must abandon
// the pending sleep the moment the drain signal fires, so SIGTERM (or
// -fail-fast) is never delayed by a backoff timer.
func TestDrainInterruptsRetryBackoff(t *testing.T) {
	prog := workloads.ByName("stream", workloads.Tiny)
	if prog == nil {
		t.Fatal("stream workload missing")
	}
	inj := faultinject.New(1, faultinject.Plan{Kind: faultinject.Decode, At: 10})
	defer inj.Close()
	drain, cancel := context.WithCancel(context.Background())
	ex := Experiment{
		PathLength: true, Parallel: 1,
		Retries: 3, RetryBackoff: time.Hour,
		Drain:       drain,
		WrapMachine: inj.WrapMachine,
		WrapSink:    inj.WrapSink,
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	all, _, err := RunSuite([]*ir.Program{prog}, ex)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drained run took %v: the pending retry backoff was not interrupted", elapsed)
	}
	if n := CountFailures(all); n != 4 {
		t.Errorf("failures = %d, want all 4 cells", n)
	}
}

// TestChaosKillResume is the crash-safety acceptance test: a child
// process running the matrix with a journal armed is SIGKILLed at a
// randomized point, the parent resumes the directory, and the combined
// replayed-plus-recomputed output must be byte-identical to an
// uninterrupted run — manifest and report text both. Whatever the kill
// hits (before the first record, mid-journal, after completion), the
// contract is the same.
func TestChaosKillResume(t *testing.T) {
	progs := resilienceProgs(t)
	clean, _, err := RunSuite(progs, durableEx())
	if err != nil {
		t.Fatal(err)
	}
	wantManifest, wantText := canonManifest(t, progs, clean)

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestChaosChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "ISACMP_CHAOS_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	delay := time.Duration(rand.Int63n(int64(150 * time.Millisecond)))
	time.Sleep(delay)
	cmd.Process.Kill() // SIGKILL: no deferred cleanup, no journal close
	cmd.Wait()
	t.Logf("killed chaos child after %v", delay)

	res, err := durable.Resume(dir, nil)
	if err != nil {
		// Killed before the child even created the journal: resume has
		// nothing to replay and the run starts fresh — still a valid
		// crash point.
		if res, err = durable.Open(dir, nil); err != nil {
			t.Fatal(err)
		}
	}
	defer res.Close()
	gotManifest, gotText, st := runDurable(t, progs, durableEx(), res)
	t.Logf("resume stats: %+v", st)
	if st.Resumed+st.Cached+st.Computed != 8 {
		t.Errorf("stats = %+v, want resumed+cached+computed == 8", st)
	}
	if gotManifest != wantManifest {
		t.Errorf("post-kill resumed manifest drifted from uninterrupted run:\n got %s\nwant %s", gotManifest, wantManifest)
	}
	if gotText != wantText {
		t.Errorf("post-kill resumed report text drifted from uninterrupted run:\n got %s\nwant %s", gotText, wantText)
	}
}

// TestChaosChildProcess is the helper body TestChaosKillResume
// re-executes and SIGKILLs; it runs the reference matrix with a
// journal armed and is skipped in a normal test run.
func TestChaosChildProcess(t *testing.T) {
	dir := os.Getenv("ISACMP_CHAOS_DIR")
	if dir == "" {
		t.Skip("chaos child helper; spawned by TestChaosKillResume")
	}
	drun, err := durable.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := durableEx()
	ex.Durable = drun
	if _, _, err := RunSuite(resilienceProgs(t), ex); err != nil {
		t.Fatal(err)
	}
	drun.Close()
}
