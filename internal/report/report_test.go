package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isacmp/internal/cc"
	"isacmp/internal/ir"
	"isacmp/internal/workloads"
)

func tinyProgram() *ir.Program {
	p := ir.NewProgram("tinytest")
	a := p.Array("a", ir.F64, 8)
	b := p.Array("b", ir.F64, 8)
	for i := 0; i < 8; i++ {
		a.InitF = append(a.InitF, float64(i))
	}
	i := ir.NewVar("i", ir.I64)
	p.Kernel("copy").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(8),
		Body: []ir.Stmt{&ir.Store{Arr: b, Index: ir.V(i), Val: ir.Ld(a, ir.V(i))}},
	})
	return p
}

func TestRunAllAnalyses(t *testing.T) {
	rows, err := Run(tinyProgram(), Experiment{
		PathLength: true, CritPath: true, Scaled: true,
		Windowed: true, WindowSizes: []int{4}, Mix: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PathLen == 0 || r.CP == 0 || r.ScaledCP == 0 {
			t.Fatalf("%s: incomplete row %+v", r.Target, r)
		}
		if len(r.Windows) != 1 || len(r.MixCounts) == 0 {
			t.Fatalf("%s: missing windows or mix", r.Target)
		}
		if r.BranchDensity <= 0 || r.BranchDensity >= 1 {
			t.Fatalf("%s: branch density %v", r.Target, r.BranchDensity)
		}
	}
}

func TestRunGCC12Only(t *testing.T) {
	rows, err := Run(tinyProgram(), Experiment{CritPath: true, GCC12Only: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Target.Flavor != cc.GCC12 {
			t.Fatalf("non-GCC12 row: %s", r.Target)
		}
	}
}

func TestWriters(t *testing.T) {
	rows, err := Run(tinyProgram(), Experiment{
		PathLength: true, CritPath: true, Scaled: true,
		Windowed: true, WindowSizes: []int{4, 16}, Mix: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WritePathLengths(&sb, "tinytest", rows)
	out := sb.String()
	for _, want := range []string{"copy", "total", "normalised", "AArch64/GCC 9.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("path-length table missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	WriteCritPaths(&sb, "tinytest", rows, false)
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("missing Table 1 label")
	}
	sb.Reset()
	WriteCritPaths(&sb, "tinytest", rows, true)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Error("missing Table 2 label")
	}

	sb.Reset()
	WriteWindowed(&sb, "tinytest", rows)
	if !strings.Contains(sb.String(), "16") {
		t.Error("windowed table missing size 16")
	}

	sb.Reset()
	WriteMix(&sb, "tinytest", rows)
	if !strings.Contains(sb.String(), "branch dens.") {
		t.Error("mix table missing branch density")
	}

	sb.Reset()
	Banner(&sb, "x", "tiny")
	if !strings.Contains(sb.String(), "tiny") {
		t.Error("banner missing scale")
	}
}

func TestSummarise(t *testing.T) {
	rows, err := Run(tinyProgram(), Experiment{PathLength: true})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarise("tinytest", rows)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	for _, s := range sums {
		if s.RVOverArm <= 0 {
			t.Fatalf("ratio %v", s.RVOverArm)
		}
	}
	var sb strings.Builder
	WriteSummaries(&sb, sums)
	if !strings.Contains(sb.String(), "mean") {
		t.Error("summary missing mean row")
	}
	// Empty input must not panic.
	sb.Reset()
	WriteSummaries(&sb, nil)
}

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	progs := []*ir.Program{workloads.STREAM(16, 2)}
	if err := WriteArtifacts(dir, progs); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"kernelCounts.txt", "basicCPResult.txt", "scaledCPResult.txt", "windowAverages.txt",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	counts, _ := os.ReadFile(filepath.Join(dir, "kernelCounts.txt"))
	if !strings.Contains(string(counts), "'copy'") {
		t.Errorf("kernelCounts.txt missing copy kernel:\n%s", counts)
	}
	wa, _ := os.ReadFile(filepath.Join(dir, "windowAverages.txt"))
	// GCC 12.2 rows only, one per arch.
	lines := strings.Split(strings.TrimSpace(string(wa)), "\n")
	if len(lines) != 2 {
		t.Errorf("windowAverages.txt rows = %d:\n%s", len(lines), wa)
	}
	for _, l := range lines {
		if !strings.Contains(l, "GCC 12.2") {
			t.Errorf("non-GCC12 row in windowAverages: %s", l)
		}
	}
}
