package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"isacmp/internal/cc"
	"isacmp/internal/durable"
	"isacmp/internal/fusion"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// -update regenerates the golden files from the current output:
//
//	go test ./internal/report -run TestGolden -update
//
// Inspect the diff before committing — the goldens pin the paper
// artifacts (Table 1, Table 2, Figure 1, Figure 2) and the manifest
// byte format for a small deterministic workload.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenRows runs the stream benchmark at tiny scale with every
// analysis — the smallest fully deterministic configuration that
// exercises all four paper artifacts.
func goldenRows(t *testing.T) []Row {
	t.Helper()
	prog := workloads.ByName("stream", workloads.Tiny)
	if prog == nil {
		t.Fatal("stream workload missing")
	}
	rows, err := Run(prog, Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := durable.WriteFileAtomic(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run TestGolden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output.\n-- got --\n%s\n-- want --\n%s", name, got, want)
	}
}

// TestGoldenFigure1 pins the per-kernel path-length table and the
// cross-target ratio summary.
func TestGoldenFigure1(t *testing.T) {
	rows := goldenRows(t)
	var buf bytes.Buffer
	WritePathLengths(&buf, "stream", rows)
	WriteSummaries(&buf, Summarise("stream", rows))
	checkGolden(t, "figure1_stream_tiny.txt", buf.Bytes())
}

// TestGoldenTable1 pins the critical path / ILP / ideal-runtime table.
func TestGoldenTable1(t *testing.T) {
	rows := goldenRows(t)
	var buf bytes.Buffer
	WriteCritPaths(&buf, "stream", rows, false)
	checkGolden(t, "table1_stream_tiny.txt", buf.Bytes())
}

// TestGoldenTable2 pins the latency-scaled variant.
func TestGoldenTable2(t *testing.T) {
	rows := goldenRows(t)
	var buf bytes.Buffer
	WriteCritPaths(&buf, "stream", rows, true)
	checkGolden(t, "table2_stream_tiny.txt", buf.Bytes())
}

// TestGoldenFigure2 pins the windowed-CP series (GCC 12.2 rows, as
// the paper plots it).
func TestGoldenFigure2(t *testing.T) {
	rows := goldenRows(t)
	gcc12 := rows[:0:0]
	for _, r := range rows {
		if r.Target.Flavor == cc.GCC12 {
			gcc12 = append(gcc12, r)
		}
	}
	var buf bytes.Buffer
	WriteWindowed(&buf, "stream", gcc12)
	checkGolden(t, "figure2_stream_tiny.txt", buf.Bytes())
}

// goldenFusionRows is goldenRows with every fusion rule live on both
// architectures — the configuration behind the fusion goldens.
func goldenFusionRows(t *testing.T) []Row {
	t.Helper()
	prog := workloads.ByName("stream", workloads.Tiny)
	if prog == nil {
		t.Fatal("stream workload missing")
	}
	rows, err := Run(prog, Experiment{
		PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		Fusion:   fusion.Config{RV64: true, A64: true, Rules: fusion.AllRules},
		Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestGoldenFusionTable pins the fusion-on Table 1 numbers (the fused
// machine's critical paths) together with the effective-path-length
// table and its per-rule hit counts.
func TestGoldenFusionTable(t *testing.T) {
	rows := goldenFusionRows(t)
	var buf bytes.Buffer
	WriteCritPaths(&buf, "stream", rows, false)
	WriteFusion(&buf, "stream", rows)
	checkGolden(t, "table1_fusion_stream_tiny.txt", buf.Bytes())
}

// TestGoldenFusionManifest pins the canonicalized manifest with the
// per-run fusion blocks — spec, event counts and per-rule hits are
// deterministic, so they survive canonicalization.
func TestGoldenFusionManifest(t *testing.T) {
	rows := goldenFusionRows(t)
	m := telemetry.NewManifest("golden", "tiny")
	AppendRows(m, "stream", rows)
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "manifest_fusion_stream_tiny.json", buf.Bytes())
}

// TestGoldenManifest pins the canonicalized -json manifest document —
// the machine-readable byte format downstream tooling diffes. Every
// volatile field (timings, host, scheduler block) is canonicalized
// away; what remains must be stable across machines, Go versions and
// -parallel values.
func TestGoldenManifest(t *testing.T) {
	rows := goldenRows(t)
	m := telemetry.NewManifest("golden", "tiny")
	AppendRows(m, "stream", rows)
	m.Canonicalize()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "manifest_stream_tiny.json", buf.Bytes())
}
