package report

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"isacmp/internal/durable"
)

// CLI-side durability and interrupt plumbing shared by every command
// binary (cmd/isacmp, cmd/pathlen, cmd/critpath, cmd/windowcp).

// ArmDurability opens the crash-safety handle that a CLI's
// -durable-dir / -resume flags ask for. A non-empty resumeDir wins
// and replays (then compacts) the journal there, so already-retired
// cells are served instead of recomputed; otherwise durableDir starts
// a fresh journal — the content cache in the directory persists
// either way and still serves identical cells. Returns nil when
// neither is set. The handle's warnings are routed through log.
func ArmDurability(durableDir, resumeDir string, log *slog.Logger) (*durable.Run, error) {
	dir, resume := durableDir, false
	if resumeDir != "" {
		dir, resume = resumeDir, true
	}
	if dir == "" {
		return nil, nil
	}
	var (
		run *durable.Run
		err error
	)
	if resume {
		run, err = durable.Resume(dir, nil)
	} else {
		run, err = durable.Open(dir, nil)
	}
	if err != nil {
		return nil, err
	}
	if log != nil {
		run.Warn = func(format string, args ...any) {
			log.Warn("durable: " + fmt.Sprintf(format, args...))
		}
		if resume {
			st := run.Stats()
			log.Info("resuming from journal", "dir", dir,
				"journal_records", st.Records, "torn_tail", st.TornTail)
		}
	}
	return run, nil
}

// InstallDrainHandler arms the two-stage interrupt contract for a
// matrix run. The returned contexts are cancelled in order: drain on
// the first SIGINT/SIGTERM (no new cells start; in-flight cells
// finish and journal; drained cells become FAILED(deadline) rows, so
// the process writes a valid partial manifest and exits ExitPartial),
// hard on the second (in-flight cells are reaped). After the second
// signal the handler detaches, so a third signal kills the process
// with the default disposition. Wire the results to Experiment.Ctx
// and Experiment.Drain.
func InstallDrainHandler(log *slog.Logger) (hard, drain context.Context) {
	hardCtx, hardCancel := context.WithCancel(context.Background())
	drainCtx, drainCancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		if log != nil {
			log.Warn("signal: draining — in-flight cells finish and journal; interrupt again to abort them",
				"signal", s.String())
		}
		drainCancel()
		s = <-ch
		if log != nil {
			log.Warn("signal: aborting in-flight cells", "signal", s.String())
		}
		hardCancel()
		signal.Stop(ch)
	}()
	return hardCtx, drainCtx
}
