// Package report drives the paper's experiments end to end and
// renders their tables and figure series as text: Figure 1 (per-kernel
// path lengths), Table 1 (critical paths), Table 2 (scaled critical
// paths) and Figure 2 (mean ILP per window). The cmd/ tools and the
// benchmark harness are thin wrappers around this package.
package report

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"isacmp/internal/a64"
	"isacmp/internal/cc"
	"isacmp/internal/core"
	"isacmp/internal/durable"
	"isacmp/internal/fusion"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/obs"
	"isacmp/internal/obs/slogx"
	"isacmp/internal/prof"
	"isacmp/internal/rv64"
	"isacmp/internal/sched"
	"isacmp/internal/simeng"
	"isacmp/internal/telemetry"
)

// Row is one (target, analysis results) pair for a benchmark.
type Row struct {
	Target        cc.Target
	PathLen       uint64
	Regions       []core.RegionCount
	Other         uint64
	CP            uint64
	ILP           float64
	Runtime       float64 // seconds at 2 GHz
	ScaledCP      uint64
	ScaledILP     float64
	ScaledRuntime float64
	Windows       []core.WindowResult
	MixCounts     []core.GroupCount
	BranchDensity float64
	BranchTaken   float64

	// Core is the uniform per-core stat block of the run.
	Core simeng.PipelineStats
	// WallSeconds is the wall time of this run; Sinks the tee's
	// per-analysis overhead accounting.
	WallSeconds float64
	Sinks       []telemetry.SinkStats
	// Tracker reports the critical-path tracker's footprint when the
	// run carried one.
	Tracker *telemetry.TrackerStats
	// Fusion reports what the macro-op fusion pass did when one was
	// interposed (nil on fusion-off runs). EventsOut is the fused
	// machine's effective path length; PathLen stays architectural.
	Fusion *telemetry.FusionStats
	// Counters is the cell's transactional metrics delta (run.*,
	// predecode.*, fusion.* counters), accumulated locally during the
	// run and applied to the registry only when the cell retires.
	// Journaled with the row, so a resumed or cache-served cell
	// re-applies exactly the delta the original computation produced —
	// the property that keeps canonical metrics byte-identical across
	// a kill. Nil when the experiment carries no registry.
	Counters map[string]uint64

	// Attempts is how many attempts this cell took (1 = first try).
	Attempts int
	// Failure is set when the cell produced no result: every attempt
	// failed (or the cell was reaped by its deadline). A failed row
	// carries no analysis data; the rest of the matrix is unaffected.
	Failure *telemetry.FailureRecord
}

// Failed reports whether the row is a FAILED placeholder rather than
// a result.
func (r *Row) Failed() bool { return r.Failure != nil }

// Experiment selects which analyses Run attaches.
type Experiment struct {
	PathLength bool
	CritPath   bool
	Scaled     bool
	Windowed   bool
	Mix        bool
	// GCC12Only restricts targets to the GCC 12.2 pair (Figure 2).
	GCC12Only bool
	// WindowSizes overrides the paper's window sizes.
	WindowSizes []int
	// WindowStride overrides the paper's size/2 window stride (0
	// keeps it).
	WindowStride int
	// Latencies overrides the TX2 latency model.
	Latencies *simeng.LatencyModel
	// Metrics, when non-nil, receives the standard whole-run counters
	// (retired, branches, loads, stores) from every run. The registry
	// is safe for the concurrent per-target runs.
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives per-run heartbeat lines
	// (typically os.Stderr on -progress). When Log is also set the
	// heartbeat is routed through the logger as info-level records
	// instead, so -log-level=error silences it.
	Progress io.Writer
	// ProgressFinalOnly suppresses the periodic heartbeat lines and
	// keeps only the final per-run summary — the CLIs set it when
	// stderr is not a terminal so piped output is not spammed.
	ProgressFinalOnly bool
	// Parallel is the worker count of the analysis engine: (workload,
	// target) cells are fanned out over this many pool workers, each
	// cell's trace is simulated once and replayed into its analyses
	// concurrently, and the windowed-CP computation is sharded. 1 runs
	// everything strictly sequentially; 0 selects GOMAXPROCS.
	// Negative values are rejected by Validate. Results are
	// byte-identical for every value (see the README's determinism
	// contract).
	Parallel int
	// StepLoop forces the core's per-Step reference loop instead of
	// the batched StepN fast path. Results are byte-identical either
	// way (pinned by tests); bench-hotpath uses it to measure the
	// batching win.
	StepLoop bool
	// Fusion configures the macro-op fusion pass (internal/fusion):
	// a stream rewrite interposed between the core and the analyses
	// so path length, CP, windowed CP and ILP describe the fused
	// machine. The zero value is fusion off, in which case no adapter
	// is constructed at all and output is byte-identical to a build
	// without the feature.
	Fusion fusion.Config

	// Resilience knobs (see the README's failure-semantics section).
	// All default to off, which keeps fault-free runs byte-identical
	// to the pre-resilience engine.

	// CellTimeout is the per-cell wall-clock deadline: a cell still
	// running (or hung) after this long is reaped with an ErrDeadline
	// failure while the rest of the matrix keeps going. 0 disables
	// the watchdog.
	CellTimeout time.Duration
	// MaxInstructions is the per-cell retirement budget; a run that
	// exceeds it fails with ErrBudget. 0 disables the budget.
	MaxInstructions uint64
	// Retries is how many times a failed cell is re-attempted from
	// scratch (fresh machine and analyses) before its row is marked
	// FAILED. 0 means one attempt only.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling on
	// each further retry. 0 retries immediately.
	RetryBackoff time.Duration
	// FailFast selects first-error-cancel mode: the first failed cell
	// cancels the remaining matrix and RunSuite returns its error.
	// The default (continue-on-error) completes every other cell and
	// reports failures as FAILED rows instead.
	FailFast bool

	// Durability knobs (see internal/durable and DESIGN.md §6).

	// Ctx, when non-nil, is the matrix's root context: cancelling it
	// cancels the whole run hard — in-flight cells are reaped at their
	// next retirement poll, pending retry backoffs are interrupted —
	// exactly like a FailFast failure. Nil means context.Background().
	Ctx context.Context
	// Drain, when non-nil, is the graceful-shutdown signal: once
	// cancelled, no new cell or attempt starts, but in-flight attempts
	// run to completion and are journaled, so a SIGINT'd run keeps
	// every result it paid for. Drained (never-started) cells come
	// back as FAILED(deadline) rows and are not journaled — they
	// re-run on resume — and the caller still gets a valid partial
	// manifest and the partial-failure exit code.
	Drain context.Context
	// Durable, when non-nil, is the crash-safety layer: every cell is
	// content-addressed and looked up in the write-ahead journal
	// (resume) and result cache before simulating, and journaled as it
	// retires. See durable.Open / durable.Resume.
	Durable *durable.Run

	// WrapMachine, when non-nil, wraps each cell's machine before the
	// run — the fault-injection hook. It must return m unchanged for
	// cells it does not target.
	WrapMachine func(workload, target string, attempt int, m simeng.Machine) simeng.Machine
	// WrapSink, when non-nil, wraps the event sink handed to the
	// core — the sink-fault injection hook. The inner sink may be nil
	// (a run with no analyses attached).
	WrapSink func(workload, target string, attempt int, s isa.Sink) isa.Sink

	// Observability (see internal/obs). All default to off; none of
	// them can change a result byte — the board and flight recorder
	// are pass-through observers and everything they record is
	// stripped by manifest canonicalization.

	// Log, when non-nil, receives structured lifecycle lines for
	// every cell (start, attempt failures, retries, completion) with
	// workload/target/attempt attrs. The CLI attaches the run ID.
	Log *slog.Logger
	// RunID tags flight-recorder artifacts; usually obs.NewRunID().
	RunID string
	// Status, when non-nil, is driven through per-cell lifecycle
	// transitions and live retired counts — the /statusz and /events
	// source.
	Status *obs.Board
	// FlightDir, when non-empty, arms the flight recorder: every cell
	// attempt records its last FlightEvents retired events, and an
	// attempt that dies with a SimError dumps a post-mortem JSON
	// artifact into this directory (linked from the manifest failures
	// block). Cells reaped by the CellTimeout watchdog get no dump:
	// the recorder lives on the abandoned attempt goroutine, and
	// crossing goroutines for a dump would race the still-running
	// simulation.
	FlightDir string
	// FlightEvents is the recorder ring capacity (0 selects
	// obs.DefaultFlightEvents).
	FlightEvents int
	// Prof, when non-nil, records per-stage spans (setup, simulate,
	// deliver, per-sink, retry-backoff) for every cell on the worker
	// lane the cell ran on — the -profile span profiler. nil (the
	// default) costs one nil check per hook site. Like the other
	// observers it is a pure pass-through: it cannot change a result
	// byte.
	Prof *prof.Profiler
}

// Validate rejects experiment configurations that would otherwise
// panic or silently misbehave: negative worker counts, negative
// window strides (which previously wrapped around to huge unsigned
// strides), non-positive window sizes, and negative resilience knobs.
func (ex Experiment) Validate() error {
	if ex.Parallel < 0 {
		return fmt.Errorf("report: -parallel %d is negative (0 selects all CPUs, 1 is sequential)", ex.Parallel)
	}
	if ex.WindowStride < 0 {
		return fmt.Errorf("report: -stride %d is negative (0 selects the paper's size/2)", ex.WindowStride)
	}
	for _, s := range ex.WindowSizes {
		if s <= 0 {
			return fmt.Errorf("report: window size %d is not positive", s)
		}
	}
	if ex.CellTimeout < 0 {
		return fmt.Errorf("report: -cell-timeout %v is negative (0 disables the watchdog)", ex.CellTimeout)
	}
	if ex.Retries < 0 {
		return fmt.Errorf("report: -retries %d is negative (0 means one attempt)", ex.Retries)
	}
	if ex.RetryBackoff < 0 {
		return fmt.Errorf("report: -retry-backoff %v is negative", ex.RetryBackoff)
	}
	if ex.FlightEvents < 0 {
		return fmt.Errorf("report: -flight-events %d is negative (0 selects the default ring of %d)",
			ex.FlightEvents, obs.DefaultFlightEvents)
	}
	return nil
}

// Targets resolves the target columns an experiment covers.
func (ex Experiment) Targets() []cc.Target {
	var targets []cc.Target
	for _, tgt := range cc.Targets() {
		if ex.GCC12Only && tgt.Flavor != cc.GCC12 {
			continue
		}
		targets = append(targets, tgt)
	}
	return targets
}

// Run compiles and executes prog for every target and collects the
// selected analyses. Targets are fully independent (each gets its own
// machine and memory image), so they run on the parallel engine; see
// RunSuite for the full-matrix form.
func Run(prog *ir.Program, ex Experiment) ([]Row, error) {
	rows, _, err := RunSuite([]*ir.Program{prog}, ex)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// CountFailures reports how many rows across the suite are FAILED
// placeholders; CLIs use it to pick the partial-failure exit code.
func CountFailures(all [][]Row) int {
	n := 0
	for _, rows := range all {
		for i := range rows {
			if rows[i].Failed() {
				n++
			}
		}
	}
	return n
}

// CollectFailures flattens the suite's FAILED rows into manifest
// failure records, in deterministic workload/target order.
func CollectFailures(all [][]Row) []telemetry.FailureRecord {
	var out []telemetry.FailureRecord
	for _, rows := range all {
		for i := range rows {
			if rows[i].Failed() {
				out = append(out, *rows[i].Failure)
			}
		}
	}
	return out
}

// RunSuite fans the full analysis matrix — every (workload, target)
// cell of every selected analysis — out over a sched.Pool with
// ex.Parallel workers and returns the rows as rows[workload][target],
// in the deterministic input/Targets order regardless of completion
// order. The returned SchedStats describes the pool for the run
// manifest.
//
// Every cell runs under the resilience policy: panics are converted to
// typed errors, a cell is retried ex.Retries times with exponential
// backoff, and a cell still failing (or reaped by ex.CellTimeout) is
// returned as a FAILED placeholder row while the rest of the matrix
// completes. RunSuite itself returns a non-nil error only for invalid
// configuration, a panic that escaped every guard, or — in FailFast
// mode — the first cell failure, which also cancels the remaining
// cells.
func RunSuite(progs []*ir.Program, ex Experiment) ([][]Row, *telemetry.SchedStats, error) {
	if err := ex.Validate(); err != nil {
		return nil, nil, err
	}
	targets := ex.Targets()
	all := make([][]Row, len(progs))
	root := ex.Ctx
	if root == nil {
		root = context.Background()
	}
	ctx, cancel := context.WithCancel(root)
	defer cancel()
	// Seed the status board with the whole matrix up front, so
	// /statusz shows pending cells before any has started.
	ex.Status.SetWorkers(sched.DefaultWorkers(ex.Parallel))
	for _, prog := range progs {
		for _, tgt := range targets {
			ex.Status.Register(prog.Name, tgt.String())
		}
	}
	if ex.Log != nil {
		ex.Log.Info("matrix start",
			"workloads", len(progs), "targets", len(targets),
			"workers", sched.DefaultWorkers(ex.Parallel))
	}
	// firstFail records the temporally-first failure in FailFast mode —
	// the root cause — since cells cancelled after it also come back as
	// (deadline) failures.
	var firstFail atomic.Value
	pool := sched.NewPool(ex.Parallel, ex.Metrics)
	pool.Log = ex.Log
	for pi := range progs {
		all[pi] = make([]Row, len(targets))
		prog := progs[pi]
		for ti := range targets {
			pi, ti, tgt := pi, ti, targets[ti]
			pool.GoW(func(lane int) {
				row := runCell(ctx, prog, tgt, ex, lane)
				all[pi][ti] = row
				if row.Failed() && ex.FailFast {
					firstFail.CompareAndSwap(nil, row.Failure)
					cancel()
				}
			})
		}
	}
	pool.Close()
	st := pool.Stats()
	if n, first := pool.Panics(); n > 0 {
		return nil, &st, fmt.Errorf("report: %d matrix cell(s) panicked past every guard; first: %s", n, first)
	}
	if f, ok := firstFail.Load().(*telemetry.FailureRecord); ok {
		return nil, &st, fmt.Errorf("report: %s/%s failed (%s): %s",
			f.Workload, f.Target, f.Reason, f.Message)
	}
	if ex.Durable != nil && ctx.Err() == nil && !ex.drained() {
		// Natural end: journal run-complete so a resume of this
		// directory replays every cell and recomputes nothing.
		ex.Durable.RunComplete()
	}
	return all, &st, nil
}

// drained reports whether the graceful-shutdown signal has fired.
func (ex *Experiment) drained() bool {
	return ex.Drain != nil && ex.Drain.Err() != nil
}

// runCell executes one (workload, target) cell under the full retry
// policy. It never returns an error: a cell whose every attempt failed
// comes back as a FAILED placeholder row carrying the typed failure
// record and attempt history.
func runCell(ctx context.Context, prog *ir.Program, tgt cc.Target, ex Experiment, lane int) Row {
	attempts := ex.Retries + 1
	cell := prog.Name + "/" + tgt.String()
	clog := slogx.OrNop(ex.Log).With(
		slogx.KeyWorkload, prog.Name, slogx.KeyTarget, tgt.String())
	// Durability: content-address the cell and try to serve it without
	// simulating — from the replayed journal on a resume, or from the
	// content cache on any run. A computed cell journals cell-started
	// here and its terminal record as it retires.
	var dhash string
	if ex.Durable != nil && ctx.Err() == nil && !ex.drained() {
		if h, err := cellHash(prog, tgt, ex); err == nil {
			dhash = h
			if hit := ex.Durable.Lookup(prog.Name, tgt.String(), dhash); hit != nil {
				if row, ok := replayRow(hit, dhash, prog, tgt, ex, clog); ok {
					return row
				}
			}
			ex.Durable.CellStarted(prog.Name, tgt.String(), dhash)
		}
		// A cell whose compile fails gets no hash and no durability:
		// the attempt loop below reproduces the failure as ErrSetup.
	}
	var drainCh <-chan struct{}
	if ex.Drain != nil {
		drainCh = ex.Drain.Done()
	}
	var history []telemetry.AttemptRecord
	var last *simeng.SimError
	var postmortem string
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 && ex.RetryBackoff > 0 {
			backoff := ex.RetryBackoff << (attempt - 2)
			sp := ex.Prof.Start(lane, prof.StageRetryBackoff, "", cell)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			case <-drainCh:
			}
			sp.End()
		}
		if ctx.Err() != nil || ex.drained() {
			// The matrix was cancelled (FailFast) or is draining
			// (SIGINT/SIGTERM) before this attempt started; record the
			// cancellation rather than running.
			cause := ctx.Err()
			if cause == nil {
				cause = ex.Drain.Err()
			}
			last = simeng.WithCell(&simeng.SimError{Kind: simeng.ErrDeadline, Err: cause},
				prog.Name, tgt.String())
			history = append(history, telemetry.AttemptRecord{
				Attempt: attempt, Reason: simeng.Reason(last), Message: last.Error(),
			})
			break
		}
		ex.Status.Running(prog.Name, tgt.String(), attempt)
		clog.Debug("cell attempt start", slogx.KeyAttempt, attempt)
		row, pm, err := runAttempt(ctx, prog, tgt, ex, attempt, lane)
		if err == nil {
			row.Attempts = attempt
			journalFinished(ex, prog.Name, tgt.String(), dhash, &row, false, clog)
			ex.Status.Done(prog.Name, tgt.String(), row.WallSeconds, row.Core.Instructions)
			clog.Debug("cell done", slogx.KeyAttempt, attempt,
				"retired", row.Core.Instructions, "wall_seconds", row.WallSeconds)
			return row
		}
		last = simeng.WithCell(err, prog.Name, tgt.String())
		if pm != "" {
			postmortem = pm
		}
		history = append(history, telemetry.AttemptRecord{
			Attempt: attempt, Reason: simeng.Reason(last), Message: last.Error(),
		})
		clog.Warn("cell attempt failed", slogx.KeyAttempt, attempt,
			"reason", simeng.Reason(last), "pc", last.PC, "retired", last.Retired)
		if errors.Is(last, simeng.ErrDeadline) && ctx.Err() != nil {
			// Cancelled from above, not a per-cell timeout: retrying
			// would only re-observe the dead context.
			break
		}
		if attempt < attempts {
			ex.Status.Retrying(prog.Name, tgt.String(), attempt, simeng.Reason(last))
		}
	}
	ex.Status.Failed(prog.Name, tgt.String(), len(history), simeng.Reason(last))
	clog.Error("cell failed", "reason", simeng.Reason(last),
		"attempts", len(history), "postmortem", postmortem)
	failed := Row{
		Target:   tgt,
		Attempts: len(history),
		Failure: &telemetry.FailureRecord{
			Workload:   prog.Name,
			Target:     tgt.String(),
			Reason:     simeng.Reason(last),
			Message:    last.Error(),
			PC:         last.PC,
			Retired:    last.Retired,
			Attempts:   len(history),
			History:    history,
			Postmortem: postmortem,
		},
	}
	// Journal the terminal failure with its attempt history — but only
	// when it is the cell's own fault: a failure observed while the
	// matrix is cancelled or draining must re-run on resume.
	if ctx.Err() == nil && !ex.drained() {
		journalFailed(ex, prog.Name, tgt.String(), dhash, &failed, clog)
	}
	return failed
}

// runAttempt executes one attempt of a cell under the panic guard and,
// when CellTimeout is set, a watchdog: the attempt runs on its own
// goroutine and a select on the deadline reaps a cell whose Step has
// genuinely hung (the in-core context poll only catches slow-but-
// retiring cells). The reaped goroutine is abandoned with a buffered
// result channel; cancelling its context makes it exit at the next
// retirement poll if it is still making progress.
//
// When the flight recorder is armed (ex.FlightDir), a failing attempt
// dumps its post-mortem and the path comes back as the middle return.
// The dump happens inside run(), on the same goroutine that fed the
// recorder, after simulation has stopped — the only point where the
// ring is safe to read. A watchdog-reaped attempt is abandoned before
// that point, so reaped cells report no post-mortem.
func runAttempt(ctx context.Context, prog *ir.Program, tgt cc.Target, ex Experiment, attempt, lane int) (Row, string, error) {
	cellCtx := ctx
	if ex.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, ex.CellTimeout)
		defer cancel()
	}
	run := func() (Row, string, error) {
		var rec *obs.Recorder
		if ex.FlightDir != "" {
			rec = obs.NewRecorder(ex.FlightEvents, ex.RunID, prog.Name, tgt.String(), attempt, ex.Metrics)
		}
		var row Row
		err := simeng.Guard(func() error {
			var runErr error
			row, runErr = runOne(cellCtx, prog, tgt, ex, attempt, lane, rec)
			return runErr
		})
		if err == nil || rec == nil {
			return row, "", err
		}
		se := simeng.WithCell(err, prog.Name, tgt.String())
		pm := rec.Dump(ex.FlightDir, se,
			slogx.WithCell(ex.Log, prog.Name, tgt.String(), attempt))
		return row, pm, err
	}
	if ex.CellTimeout <= 0 {
		return run()
	}
	type result struct {
		row Row
		pm  string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		row, pm, err := run()
		ch <- result{row, pm, err}
	}()
	select {
	case res := <-ch:
		return res.row, res.pm, res.err
	case <-cellCtx.Done():
		return Row{Target: tgt}, "", &simeng.SimError{Kind: simeng.ErrDeadline, Err: cellCtx.Err()}
	}
}

func runOne(ctx context.Context, prog *ir.Program, tgt cc.Target, ex Experiment, attempt, lane int, rec *obs.Recorder) (Row, error) {
	row := Row{Target: tgt}
	cell := prog.Name + "/" + tgt.String()
	setup := ex.Prof.Start(lane, prof.StageSetup, "", cell)
	compiled, err := cc.Compile(prog, tgt)
	if err != nil {
		return row, err
	}
	m := mem.New(cc.TextBase, compiled.MemSize)
	var mach simeng.Machine
	if tgt.Arch == isa.AArch64 {
		mach, err = a64.NewMachine(compiled.File, m)
	} else {
		mach, err = rv64.NewMachine(compiled.File, m)
	}
	if err != nil {
		return row, err
	}
	if ex.WrapMachine != nil {
		mach = ex.WrapMachine(prog.Name, tgt.String(), attempt, mach)
	}

	// parallel > 1 selects the fan-out engine: the cell's trace is
	// simulated once and replayed into every analysis concurrently,
	// with the windowed-CP computation itself sharded. parallel == 1
	// is the strictly sequential reference path (one goroutine, the
	// instrumented tee); both produce identical analysis results.
	parallel := sched.DefaultWorkers(ex.Parallel)

	var names []string
	var sinks []isa.Sink
	add := func(name string, s isa.Sink) {
		names = append(names, name)
		sinks = append(sinks, s)
	}
	var pl *core.PathLength
	if ex.PathLength {
		pl = core.NewPathLength(compiled.File.Symbols)
		add("pathlen", pl)
	}
	var cp, scp *core.CritPath
	if ex.CritPath {
		cp = core.NewCritPath()
		cp.SetDenseRange(cc.TextBase, compiled.MemSize)
		add("critpath", cp)
	}
	if ex.Scaled {
		lat := ex.Latencies
		if lat == nil {
			lat = simeng.TX2Latencies()
		}
		scp = core.NewScaledCritPath(lat)
		scp.SetDenseRange(cc.TextBase, compiled.MemSize)
		add("scaledcp", scp)
	}
	var win core.WindowAnalyzer
	if ex.Windowed {
		sizes := ex.WindowSizes
		if sizes == nil {
			sizes = core.PaperWindowSizes()
		}
		if parallel > 1 {
			win = core.NewShardedWindowedCP(sizes, ex.WindowStride, parallel)
		} else {
			win = core.NewWindowedCritPathStride(sizes, ex.WindowStride)
		}
		add("windowcp", win)
	}

	var mix *core.Mix
	var br *core.BranchProfile
	if ex.Mix {
		mix = core.NewMix()
		br = core.NewBranchProfile(nil)
		add("mix", mix)
		add("branch", br)
	}

	var rm *telemetry.RunMetrics
	if ex.Metrics != nil {
		// Transactional cell mode: counts accumulate locally and reach
		// the registry only in the applyCounters call below, once the
		// attempt has succeeded — so a failed or abandoned attempt
		// contributes exactly zero and a journal replay re-applies the
		// same delta the original computation did.
		rm = telemetry.NewCellMetrics()
	}
	var pg *telemetry.Progress
	if ex.Progress != nil {
		pg = telemetry.NewProgress(ex.Progress, prog.Name+" "+tgt.String(), 0)
		if ex.Log != nil {
			pg.Log = slogx.WithCell(ex.Log, prog.Name, tgt.String(), attempt)
		}
		pg.FinalOnly = ex.ProgressFinalOnly
		add("progress", pg)
	}

	emu := &simeng.EmulationCore{
		MaxInstructions: ex.MaxInstructions, Ctx: ctx, StepLoop: ex.StepLoop,
		ProfileStages: ex.Prof.Enabled(),
	}
	if ex.Log != nil {
		emu.Log = slogx.WithCell(ex.Log, prog.Name, tgt.String(), attempt)
	}
	// observe interposes the pass-through observers on the cell's
	// outermost sink: the flight recorder (so the ring holds exactly
	// what the sinks saw, including the event a faulty sink died on)
	// and the status-board meter. Applied after WrapSink so injected
	// sink faults are themselves recorded.
	observe := func(s isa.Sink) (isa.Sink, *obs.Meter) {
		if rec != nil {
			s = rec.Wrap(s)
		}
		meter := obs.NewMeter(ex.Status, prog.Name, tgt.String(), s)
		if meter != nil {
			s = meter
		}
		return s, meter
	}
	var stats simeng.Stats
	var fus *fusion.Pass
	setup.End()
	runStart := ex.Prof.Now()
	start := time.Now()
	if parallel > 1 {
		consumers := append([]isa.Sink(nil), sinks...)
		consumerNames := names
		if rm != nil {
			consumers = append(consumers, rm)
			consumerNames = append(append([]string(nil), names...), "runmetrics")
		}
		var fs *sched.FanoutStats
		if ex.Prof.Enabled() {
			fs = &sched.FanoutStats{}
		}
		n, err := sched.FanoutTimed(func(s isa.Sink) error {
			// The fusion pass wraps the broadcast sink, so every consumer
			// sees the same rewritten stream and the returned n counts
			// fused events — the effective path length, matching the
			// sequential tee's count.
			if ex.Fusion.Active(tgt.Arch) {
				fus = fusion.NewPass(ex.Fusion, tgt.Arch, s)
				s = fus
			}
			if ex.WrapSink != nil {
				s = ex.WrapSink(prog.Name, tgt.String(), attempt, s)
			}
			s, meter := observe(s)
			defer meter.Flush()
			var runErr error
			stats, runErr = emu.Run(mach, s)
			if runErr == nil && fus != nil {
				// Deliver the carried trailing event while the broadcast
				// is still open.
				fus.Flush()
			}
			return runErr
		}, fs, consumers...)
		if err != nil {
			return row, err
		}
		for _, name := range names {
			row.Sinks = append(row.Sinks, telemetry.SinkStats{Name: name, Events: n})
		}
		if fs != nil {
			// Sink busy times run concurrently in reality; they are laid
			// out sequentially after simulate/deliver on the cell's lane
			// so the timeline renders without overlap — the durations,
			// which is what attribution sums, stay exact.
			cursor := recordStageSpans(ex.Prof, lane, cell, runStart, emu.Stages)
			for i, busy := range fs.SinkBusyNs {
				ex.Prof.Record(lane, prof.StageSink, consumerNames[i], cell, cursor, cursor+busy)
				cursor += busy
			}
		}
	} else {
		tee := telemetry.NewTee()
		for i := range sinks {
			tee.Add(names[i], sinks[i])
		}
		if rm != nil {
			tee.CountRunMetrics(rm)
		}
		var sink isa.Sink
		if len(sinks) > 0 || rm != nil {
			sink = tee
		}
		if sink != nil && ex.Fusion.Active(tgt.Arch) {
			fus = fusion.NewPass(ex.Fusion, tgt.Arch, sink)
			sink = fus
		}
		if ex.WrapSink != nil {
			sink = ex.WrapSink(prog.Name, tgt.String(), attempt, sink)
		}
		sink, meter := observe(sink)
		stats, err = emu.Run(mach, sink)
		meter.Flush()
		if err != nil {
			return row, err
		}
		if fus != nil {
			fus.Flush() // before reading tee stats or analysis results
		}
		if len(sinks) > 0 {
			row.Sinks = tee.Stats()
		}
		if ex.Prof.Enabled() {
			// On the sequential path per-sink cost comes from the tee's
			// sampled estimate (EstOverheadNs), laid out after
			// simulate/deliver like the fan-out path.
			cursor := recordStageSpans(ex.Prof, lane, cell, runStart, emu.Stages)
			for _, ss := range tee.Stats() {
				est := int64(ss.EstOverheadNs)
				ex.Prof.Record(lane, prof.StageSink, ss.Name, cell, cursor, cursor+est)
				cursor += est
			}
		}
	}
	row.WallSeconds = time.Since(start).Seconds()
	row.Core = emu.PipelineStats()
	if rm != nil {
		row.Counters = rm.Counters()
		if src, ok := mach.(isa.PredecodeStatsSource); ok {
			telemetry.AddPredecodeCounters(row.Counters, src.PredecodeStats())
		}
	}
	if fus != nil {
		row.Fusion = fusionRecord(ex.Fusion, tgt.Arch, fus.Stats())
		if rm != nil {
			telemetry.AddFusionCounters(row.Counters, row.Fusion)
		}
	}
	telemetry.ApplyCounters(ex.Metrics, row.Counters)
	if pg != nil {
		pg.Finish()
	}
	if cp != nil {
		ts := cp.TrackerStats()
		row.Tracker = &telemetry.TrackerStats{MapEntries: ts.MapEntries, DenseWords: ts.DenseWords}
	} else if scp != nil {
		ts := scp.TrackerStats()
		row.Tracker = &telemetry.TrackerStats{MapEntries: ts.MapEntries, DenseWords: ts.DenseWords}
	}
	row.PathLen = stats.Instructions
	if pl != nil {
		row.Regions = pl.Counts()
		row.Other = pl.Other()
	}
	if cp != nil {
		row.CP, row.ILP, row.Runtime = cp.CP(), cp.ILP(), cp.RuntimeSeconds()
	}
	if scp != nil {
		row.ScaledCP, row.ScaledILP, row.ScaledRuntime = scp.CP(), scp.ILP(), scp.RuntimeSeconds()
	}
	if win != nil {
		row.Windows = win.Results()
	}
	if mix != nil {
		row.MixCounts = mix.Counts()
		row.BranchDensity = br.Density()
		row.BranchTaken = br.TakenRate()
	}
	return row, nil
}

// recordStageSpans lays the core's simulate/deliver split onto the
// cell's lane starting at runStart and returns the cursor after the
// last span — the anchor for the per-sink spans that follow.
func recordStageSpans(p *prof.Profiler, lane int, cell string, runStart int64, st simeng.StageNs) int64 {
	cursor := runStart
	p.Record(lane, prof.StageSimulate, "", cell, cursor, cursor+st.SimulateNs)
	cursor += st.SimulateNs
	p.Record(lane, prof.StageDeliver, "", cell, cursor, cursor+st.DeliverNs)
	cursor += st.DeliverNs
	return cursor
}

// fusionRecord converts the pass counters into the manifest fusion
// block. Every rule enabled for the run's architecture is listed, hit
// or not, so a rule that silently stopped firing shows up in a diff.
func fusionRecord(cfg fusion.Config, arch isa.Arch, st fusion.Stats) *telemetry.FusionStats {
	fs := &telemetry.FusionStats{Spec: cfg.Spec(), EventsIn: st.EventsIn, EventsOut: st.EventsOut}
	rules := cfg.RulesFor(arch)
	for r := fusion.Rule(0); r < fusion.NumRules; r++ {
		if rules.Has(r) {
			fs.Rules = append(fs.Rules, telemetry.FusionRuleJSON{Rule: r.String(), Hits: st.Hits[r]})
		}
	}
	return fs
}

// healthy filters FAILED placeholder rows out of a column-major
// table's rows. With no failures it returns rows unchanged, so
// fault-free output stays byte-identical.
func healthy(rows []Row) []Row {
	ok := true
	for i := range rows {
		if rows[i].Failed() {
			ok = false
			break
		}
	}
	if ok {
		return rows
	}
	out := make([]Row, 0, len(rows))
	for i := range rows {
		if !rows[i].Failed() {
			out = append(out, rows[i])
		}
	}
	return out
}

// writeFailedNotes appends one line per FAILED row of a column-major
// table, since failed cells cannot appear as columns. No-op (zero
// bytes) when every row is healthy.
func writeFailedNotes(w io.Writer, rows []Row) {
	for i := range rows {
		if f := rows[i].Failure; f != nil {
			fmt.Fprintf(w, "%s: FAILED(%s) after %d attempt(s)\n",
				rows[i].Target.String(), f.Reason, f.Attempts)
		}
	}
}

// WriteMix renders the per-group instruction histogram for every
// target side by side, plus the branch summary. FAILED cells are
// dropped from the columns and noted below the table.
func WriteMix(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: instruction mix ==\n", name)
	all := rows
	rows = healthy(rows)
	if len(rows) == 0 || len(rows[0].MixCounts) == 0 {
		writeFailedNotes(w, all)
		return
	}
	fmt.Fprintf(w, "%-14s", "group")
	for _, r := range rows {
		fmt.Fprintf(w, "%24s", r.Target.String())
	}
	fmt.Fprintln(w)
	for gi := range rows[0].MixCounts {
		nonzero := false
		for _, r := range rows {
			if r.MixCounts[gi].Count > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		fmt.Fprintf(w, "%-14s", rows[0].MixCounts[gi].Group.String())
		for _, r := range rows {
			gc := r.MixCounts[gi]
			fmt.Fprintf(w, "%16d (%4.1f%%)", gc.Count, gc.Fraction*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "branch dens.")
	for _, r := range rows {
		fmt.Fprintf(w, "%23.1f%%", r.BranchDensity*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "taken rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%23.1f%%", r.BranchTaken*100)
	}
	fmt.Fprintln(w)
	writeFailedNotes(w, all)
	fmt.Fprintln(w)
}

// WritePathLengths renders the Figure 1 data: per-kernel dynamic
// counts for each target, normalised to the GCC 9.2 / AArch64 total.
// FAILED cells are dropped from the columns and noted below the table.
func WritePathLengths(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: path length per kernel (Figure 1) ==\n", name)
	all := rows
	rows = healthy(rows)
	var baseline float64
	for _, r := range rows {
		if r.Target.Flavor == cc.GCC9 && r.Target.Arch == isa.AArch64 {
			baseline = float64(r.PathLen)
		}
	}
	// Collect kernel names in region order from the first row.
	if len(rows) == 0 {
		writeFailedNotes(w, all)
		return
	}
	var kernels []string
	for _, rc := range rows[0].Regions {
		kernels = append(kernels, rc.Name)
	}
	fmt.Fprintf(w, "%-22s", "kernel")
	for _, r := range rows {
		fmt.Fprintf(w, "%24s", r.Target.String())
	}
	fmt.Fprintln(w)
	for _, k := range kernels {
		fmt.Fprintf(w, "%-22s", k)
		for _, r := range rows {
			var c uint64
			for _, rc := range r.Regions {
				if rc.Name == k {
					c = rc.Count
				}
			}
			fmt.Fprintf(w, "%24d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%24d", r.PathLen)
	}
	fmt.Fprintln(w)
	if baseline > 0 {
		fmt.Fprintf(w, "%-22s", "normalised")
		for _, r := range rows {
			fmt.Fprintf(w, "%24.4f", float64(r.PathLen)/baseline)
		}
		fmt.Fprintln(w)
	}
	writeFailedNotes(w, all)
	fmt.Fprintln(w)
}

// WriteCritPaths renders the Table 1 (and, when scaled data is
// present, Table 2) rows for one benchmark.
func WriteCritPaths(w io.Writer, name string, rows []Row, scaled bool) {
	label := "critical path (Table 1)"
	if scaled {
		label = "scaled critical path (Table 2)"
	}
	fmt.Fprintf(w, "== %s: %s ==\n", name, label)
	fmt.Fprintf(w, "%-18s%18s%14s%10s%16s\n", "target", "path length", "CP", "ILP", "2GHz time (ms)")
	for _, r := range rows {
		if f := r.Failure; f != nil {
			fmt.Fprintf(w, "%-18sFAILED(%s) after %d attempt(s)\n",
				r.Target.String(), f.Reason, f.Attempts)
			continue
		}
		cp, ilp, rt := r.CP, r.ILP, r.Runtime
		if scaled {
			cp, ilp, rt = r.ScaledCP, r.ScaledILP, r.ScaledRuntime
		}
		fmt.Fprintf(w, "%-18s%18d%14d%10.1f%16.4f\n",
			r.Target.String(), r.PathLen, cp, ilp, rt*1e3)
	}
	fmt.Fprintln(w)
}

// WriteWindowed renders the Figure 2 series: mean ILP per window size
// for the GCC 12.2 binaries. FAILED cells are dropped from the columns
// and noted below the table.
func WriteWindowed(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: mean ILP per window (Figure 2) ==\n", name)
	all := rows
	rows = healthy(rows)
	if len(rows) == 0 {
		writeFailedNotes(w, all)
		return
	}
	fmt.Fprintf(w, "%-14s", "window")
	for _, r := range rows {
		fmt.Fprintf(w, "%20s", r.Target.String())
	}
	fmt.Fprintln(w)
	for i := range rows[0].Windows {
		fmt.Fprintf(w, "%-14d", rows[0].Windows[i].Size)
		for _, r := range rows {
			fmt.Fprintf(w, "%20.3f", r.Windows[i].MeanILP)
		}
		fmt.Fprintln(w)
	}
	writeFailedNotes(w, all)
	fmt.Fprintln(w)
}

// Summary compares the two ISAs at one compiler version, mirroring the
// sentences of the paper's section 3.2 ("for 6 out of 10
// mini-app+compiler pairs, Arm has a shorter path length...").
type Summary struct {
	Benchmark string
	Flavor    cc.Flavor
	// RVOverArm is RISC-V path length / AArch64 path length.
	RVOverArm float64
}

// Summarise derives the per-pair path-length ratios from rows. FAILED
// cells contribute nothing, so a pair with a failed side is skipped.
func Summarise(name string, rows []Row) []Summary {
	byKey := map[cc.Target]uint64{}
	for _, r := range rows {
		if r.Failed() {
			continue
		}
		byKey[r.Target] = r.PathLen
	}
	var out []Summary
	for _, fl := range []cc.Flavor{cc.GCC9, cc.GCC12} {
		arm := byKey[cc.Target{Arch: isa.AArch64, Flavor: fl}]
		rv := byKey[cc.Target{Arch: isa.RV64, Flavor: fl}]
		if arm == 0 || rv == 0 {
			continue
		}
		out = append(out, Summary{
			Benchmark: name,
			Flavor:    fl,
			RVOverArm: float64(rv) / float64(arm),
		})
	}
	return out
}

// WriteSummaries prints the cross-benchmark ratio table and the
// overall mean, the paper's headline "2.3% longer for RISC-V" metric.
func WriteSummaries(w io.Writer, all []Summary) {
	fmt.Fprintln(w, "== path-length ratios (RISC-V / AArch64) ==")
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Benchmark != all[j].Benchmark {
			return all[i].Benchmark < all[j].Benchmark
		}
		return all[i].Flavor < all[j].Flavor
	})
	var sum float64
	armShorter := 0
	for _, s := range all {
		fmt.Fprintf(w, "%-14s %-9s %8.4f (%+.1f%%)\n",
			s.Benchmark, s.Flavor.String(), s.RVOverArm, (s.RVOverArm-1)*100)
		sum += s.RVOverArm
		if s.RVOverArm > 1 {
			armShorter++
		}
	}
	if len(all) > 0 {
		mean := sum / float64(len(all))
		fmt.Fprintf(w, "%-14s %-9s %8.4f (%+.1f%%)\n", "mean", "", mean, (mean-1)*100)
		fmt.Fprintf(w, "AArch64 shorter for %d of %d benchmark+compiler pairs\n",
			armShorter, len(all))
	}
	fmt.Fprintln(w)
}

// WriteFusion renders the Celio-style effective-path-length table for
// one benchmark: architectural path length vs fused event count per
// target, with the per-rule hit counters. It writes nothing when no
// row carried a fusion pass, so fusion-off output stays byte-identical.
func WriteFusion(w io.Writer, name string, rows []Row) {
	rows = healthy(rows)
	any := false
	for i := range rows {
		if rows[i].Fusion != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "== %s: effective path length with macro-op fusion ==\n", name)
	fmt.Fprintf(w, "%-22s %14s %14s %8s  %s\n",
		"target", "path len", "fused len", "ratio", "rule hits")
	for i := range rows {
		r := &rows[i]
		if r.Fusion == nil {
			fmt.Fprintf(w, "%-22s %14d %14s %8s  %s\n",
				r.Target.String(), r.PathLen, "-", "-", "(fusion off)")
			continue
		}
		ratio := 0.0
		if r.Fusion.EventsIn > 0 {
			ratio = float64(r.Fusion.EventsOut) / float64(r.Fusion.EventsIn)
		}
		var hits []string
		for _, rl := range r.Fusion.Rules {
			if rl.Hits > 0 {
				hits = append(hits, fmt.Sprintf("%s=%d", rl.Rule, rl.Hits))
			}
		}
		desc := strings.Join(hits, " ")
		if desc == "" {
			desc = "(none fired)"
		}
		fmt.Fprintf(w, "%-22s %14d %14d %8.4f  %s\n",
			r.Target.String(), r.Fusion.EventsIn, r.Fusion.EventsOut, ratio, desc)
	}
	fmt.Fprintln(w)
}

// Banner writes a run header.
func Banner(w io.Writer, what, scale string) {
	line := strings.Repeat("-", 72)
	fmt.Fprintf(w, "%s\n%s (scale: %s)\n%s\n", line, what, scale, line)
}
