// Package report drives the paper's experiments end to end and
// renders their tables and figure series as text: Figure 1 (per-kernel
// path lengths), Table 1 (critical paths), Table 2 (scaled critical
// paths) and Figure 2 (mean ILP per window). The cmd/ tools and the
// benchmark harness are thin wrappers around this package.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"isacmp/internal/a64"
	"isacmp/internal/cc"
	"isacmp/internal/core"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/rv64"
	"isacmp/internal/sched"
	"isacmp/internal/simeng"
	"isacmp/internal/telemetry"
)

// Row is one (target, analysis results) pair for a benchmark.
type Row struct {
	Target        cc.Target
	PathLen       uint64
	Regions       []core.RegionCount
	Other         uint64
	CP            uint64
	ILP           float64
	Runtime       float64 // seconds at 2 GHz
	ScaledCP      uint64
	ScaledILP     float64
	ScaledRuntime float64
	Windows       []core.WindowResult
	MixCounts     []core.GroupCount
	BranchDensity float64
	BranchTaken   float64

	// Core is the uniform per-core stat block of the run.
	Core simeng.PipelineStats
	// WallSeconds is the wall time of this run; Sinks the tee's
	// per-analysis overhead accounting.
	WallSeconds float64
	Sinks       []telemetry.SinkStats
	// Tracker reports the critical-path tracker's footprint when the
	// run carried one.
	Tracker *telemetry.TrackerStats
}

// Experiment selects which analyses Run attaches.
type Experiment struct {
	PathLength bool
	CritPath   bool
	Scaled     bool
	Windowed   bool
	Mix        bool
	// GCC12Only restricts targets to the GCC 12.2 pair (Figure 2).
	GCC12Only bool
	// WindowSizes overrides the paper's window sizes.
	WindowSizes []int
	// WindowStride overrides the paper's size/2 window stride (0
	// keeps it).
	WindowStride int
	// Latencies overrides the TX2 latency model.
	Latencies *simeng.LatencyModel
	// Metrics, when non-nil, receives the standard whole-run counters
	// (retired, branches, loads, stores) from every run. The registry
	// is safe for the concurrent per-target runs.
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives per-run heartbeat lines
	// (typically os.Stderr on -progress).
	Progress io.Writer
	// Parallel is the worker count of the analysis engine: (workload,
	// target) cells are fanned out over this many pool workers, each
	// cell's trace is simulated once and replayed into its analyses
	// concurrently, and the windowed-CP computation is sharded. 1 runs
	// everything strictly sequentially; <=0 selects GOMAXPROCS.
	// Results are byte-identical for every value (see the README's
	// determinism contract).
	Parallel int
}

// Targets resolves the target columns an experiment covers.
func (ex Experiment) Targets() []cc.Target {
	var targets []cc.Target
	for _, tgt := range cc.Targets() {
		if ex.GCC12Only && tgt.Flavor != cc.GCC12 {
			continue
		}
		targets = append(targets, tgt)
	}
	return targets
}

// Run compiles and executes prog for every target and collects the
// selected analyses. Targets are fully independent (each gets its own
// machine and memory image), so they run on the parallel engine; see
// RunSuite for the full-matrix form.
func Run(prog *ir.Program, ex Experiment) ([]Row, error) {
	rows, _, err := RunSuite([]*ir.Program{prog}, ex)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// RunSuite fans the full analysis matrix — every (workload, target)
// cell of every selected analysis — out over a sched.Pool with
// ex.Parallel workers and returns the rows as rows[workload][target],
// in the deterministic input/Targets order regardless of completion
// order. The returned SchedStats describes the pool for the run
// manifest.
func RunSuite(progs []*ir.Program, ex Experiment) ([][]Row, *telemetry.SchedStats, error) {
	targets := ex.Targets()
	all := make([][]Row, len(progs))
	errs := make([][]error, len(progs))
	pool := sched.NewPool(ex.Parallel, ex.Metrics)
	for pi := range progs {
		all[pi] = make([]Row, len(targets))
		errs[pi] = make([]error, len(targets))
		prog := progs[pi]
		for ti := range targets {
			pi, ti, tgt := pi, ti, targets[ti]
			pool.Go(func() {
				row, err := runOne(prog, tgt, ex)
				if err != nil {
					errs[pi][ti] = fmt.Errorf("report: %s: %s: %w", prog.Name, tgt, err)
					return
				}
				all[pi][ti] = row
			})
		}
	}
	pool.Close()
	st := pool.Stats()
	for pi := range errs {
		for _, err := range errs[pi] {
			if err != nil {
				return nil, &st, err
			}
		}
	}
	return all, &st, nil
}

func runOne(prog *ir.Program, tgt cc.Target, ex Experiment) (Row, error) {
	row := Row{Target: tgt}
	compiled, err := cc.Compile(prog, tgt)
	if err != nil {
		return row, err
	}
	m := mem.New(cc.TextBase, compiled.MemSize)
	var mach simeng.Machine
	if tgt.Arch == isa.AArch64 {
		mach, err = a64.NewMachine(compiled.File, m)
	} else {
		mach, err = rv64.NewMachine(compiled.File, m)
	}
	if err != nil {
		return row, err
	}

	// parallel > 1 selects the fan-out engine: the cell's trace is
	// simulated once and replayed into every analysis concurrently,
	// with the windowed-CP computation itself sharded. parallel == 1
	// is the strictly sequential reference path (one goroutine, the
	// instrumented tee); both produce identical analysis results.
	parallel := sched.DefaultWorkers(ex.Parallel)

	var names []string
	var sinks []isa.Sink
	add := func(name string, s isa.Sink) {
		names = append(names, name)
		sinks = append(sinks, s)
	}
	var pl *core.PathLength
	if ex.PathLength {
		pl = core.NewPathLength(compiled.File.Symbols)
		add("pathlen", pl)
	}
	var cp, scp *core.CritPath
	if ex.CritPath {
		cp = core.NewCritPath()
		cp.SetDenseRange(cc.TextBase, compiled.MemSize)
		add("critpath", cp)
	}
	if ex.Scaled {
		lat := ex.Latencies
		if lat == nil {
			lat = simeng.TX2Latencies()
		}
		scp = core.NewScaledCritPath(lat)
		scp.SetDenseRange(cc.TextBase, compiled.MemSize)
		add("scaledcp", scp)
	}
	var win core.WindowAnalyzer
	if ex.Windowed {
		sizes := ex.WindowSizes
		if sizes == nil {
			sizes = core.PaperWindowSizes()
		}
		if parallel > 1 {
			win = core.NewShardedWindowedCP(sizes, ex.WindowStride, parallel)
		} else {
			win = core.NewWindowedCritPathStride(sizes, ex.WindowStride)
		}
		add("windowcp", win)
	}

	var mix *core.Mix
	var br *core.BranchProfile
	if ex.Mix {
		mix = core.NewMix()
		br = core.NewBranchProfile(nil)
		add("mix", mix)
		add("branch", br)
	}

	var rm *telemetry.RunMetrics
	if ex.Metrics != nil {
		rm = telemetry.NewRunMetrics(ex.Metrics)
	}
	var pg *telemetry.Progress
	if ex.Progress != nil {
		pg = telemetry.NewProgress(ex.Progress, prog.Name+" "+tgt.String(), 0)
		add("progress", pg)
	}

	emu := &simeng.EmulationCore{}
	var stats simeng.Stats
	start := time.Now()
	if parallel > 1 {
		consumers := append([]isa.Sink(nil), sinks...)
		if rm != nil {
			consumers = append(consumers, rm)
		}
		n, err := sched.Fanout(func(s isa.Sink) error {
			var runErr error
			stats, runErr = emu.Run(mach, s)
			return runErr
		}, consumers...)
		if err != nil {
			return row, err
		}
		for _, name := range names {
			row.Sinks = append(row.Sinks, telemetry.SinkStats{Name: name, Events: n})
		}
	} else {
		tee := telemetry.NewTee()
		for i := range sinks {
			tee.Add(names[i], sinks[i])
		}
		if rm != nil {
			tee.CountRunMetrics(rm)
		}
		var sink isa.Sink
		if len(sinks) > 0 || rm != nil {
			sink = tee
		}
		stats, err = emu.Run(mach, sink)
		if err != nil {
			return row, err
		}
		if len(sinks) > 0 {
			row.Sinks = tee.Stats()
		}
	}
	row.WallSeconds = time.Since(start).Seconds()
	row.Core = emu.PipelineStats()
	if rm != nil {
		rm.Flush()
	}
	if pg != nil {
		pg.Finish()
	}
	if cp != nil {
		ts := cp.TrackerStats()
		row.Tracker = &telemetry.TrackerStats{MapEntries: ts.MapEntries, DenseWords: ts.DenseWords}
	} else if scp != nil {
		ts := scp.TrackerStats()
		row.Tracker = &telemetry.TrackerStats{MapEntries: ts.MapEntries, DenseWords: ts.DenseWords}
	}
	row.PathLen = stats.Instructions
	if pl != nil {
		row.Regions = pl.Counts()
		row.Other = pl.Other()
	}
	if cp != nil {
		row.CP, row.ILP, row.Runtime = cp.CP(), cp.ILP(), cp.RuntimeSeconds()
	}
	if scp != nil {
		row.ScaledCP, row.ScaledILP, row.ScaledRuntime = scp.CP(), scp.ILP(), scp.RuntimeSeconds()
	}
	if win != nil {
		row.Windows = win.Results()
	}
	if mix != nil {
		row.MixCounts = mix.Counts()
		row.BranchDensity = br.Density()
		row.BranchTaken = br.TakenRate()
	}
	return row, nil
}

// WriteMix renders the per-group instruction histogram for every
// target side by side, plus the branch summary.
func WriteMix(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: instruction mix ==\n", name)
	if len(rows) == 0 || len(rows[0].MixCounts) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s", "group")
	for _, r := range rows {
		fmt.Fprintf(w, "%24s", r.Target.String())
	}
	fmt.Fprintln(w)
	for gi := range rows[0].MixCounts {
		nonzero := false
		for _, r := range rows {
			if r.MixCounts[gi].Count > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		fmt.Fprintf(w, "%-14s", rows[0].MixCounts[gi].Group.String())
		for _, r := range rows {
			gc := r.MixCounts[gi]
			fmt.Fprintf(w, "%16d (%4.1f%%)", gc.Count, gc.Fraction*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "branch dens.")
	for _, r := range rows {
		fmt.Fprintf(w, "%23.1f%%", r.BranchDensity*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s", "taken rate")
	for _, r := range rows {
		fmt.Fprintf(w, "%23.1f%%", r.BranchTaken*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// WritePathLengths renders the Figure 1 data: per-kernel dynamic
// counts for each target, normalised to the GCC 9.2 / AArch64 total.
func WritePathLengths(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: path length per kernel (Figure 1) ==\n", name)
	var baseline float64
	for _, r := range rows {
		if r.Target.Flavor == cc.GCC9 && r.Target.Arch == isa.AArch64 {
			baseline = float64(r.PathLen)
		}
	}
	// Collect kernel names in region order from the first row.
	if len(rows) == 0 {
		return
	}
	var kernels []string
	for _, rc := range rows[0].Regions {
		kernels = append(kernels, rc.Name)
	}
	fmt.Fprintf(w, "%-22s", "kernel")
	for _, r := range rows {
		fmt.Fprintf(w, "%24s", r.Target.String())
	}
	fmt.Fprintln(w)
	for _, k := range kernels {
		fmt.Fprintf(w, "%-22s", k)
		for _, r := range rows {
			var c uint64
			for _, rc := range r.Regions {
				if rc.Name == k {
					c = rc.Count
				}
			}
			fmt.Fprintf(w, "%24d", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "%24d", r.PathLen)
	}
	fmt.Fprintln(w)
	if baseline > 0 {
		fmt.Fprintf(w, "%-22s", "normalised")
		for _, r := range rows {
			fmt.Fprintf(w, "%24.4f", float64(r.PathLen)/baseline)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteCritPaths renders the Table 1 (and, when scaled data is
// present, Table 2) rows for one benchmark.
func WriteCritPaths(w io.Writer, name string, rows []Row, scaled bool) {
	label := "critical path (Table 1)"
	if scaled {
		label = "scaled critical path (Table 2)"
	}
	fmt.Fprintf(w, "== %s: %s ==\n", name, label)
	fmt.Fprintf(w, "%-18s%18s%14s%10s%16s\n", "target", "path length", "CP", "ILP", "2GHz time (ms)")
	for _, r := range rows {
		cp, ilp, rt := r.CP, r.ILP, r.Runtime
		if scaled {
			cp, ilp, rt = r.ScaledCP, r.ScaledILP, r.ScaledRuntime
		}
		fmt.Fprintf(w, "%-18s%18d%14d%10.1f%16.4f\n",
			r.Target.String(), r.PathLen, cp, ilp, rt*1e3)
	}
	fmt.Fprintln(w)
}

// WriteWindowed renders the Figure 2 series: mean ILP per window size
// for the GCC 12.2 binaries.
func WriteWindowed(w io.Writer, name string, rows []Row) {
	fmt.Fprintf(w, "== %s: mean ILP per window (Figure 2) ==\n", name)
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-14s", "window")
	for _, r := range rows {
		fmt.Fprintf(w, "%20s", r.Target.String())
	}
	fmt.Fprintln(w)
	for i := range rows[0].Windows {
		fmt.Fprintf(w, "%-14d", rows[0].Windows[i].Size)
		for _, r := range rows {
			fmt.Fprintf(w, "%20.3f", r.Windows[i].MeanILP)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Summary compares the two ISAs at one compiler version, mirroring the
// sentences of the paper's section 3.2 ("for 6 out of 10
// mini-app+compiler pairs, Arm has a shorter path length...").
type Summary struct {
	Benchmark string
	Flavor    cc.Flavor
	// RVOverArm is RISC-V path length / AArch64 path length.
	RVOverArm float64
}

// Summarise derives the per-pair path-length ratios from rows.
func Summarise(name string, rows []Row) []Summary {
	byKey := map[cc.Target]uint64{}
	for _, r := range rows {
		byKey[r.Target] = r.PathLen
	}
	var out []Summary
	for _, fl := range []cc.Flavor{cc.GCC9, cc.GCC12} {
		arm := byKey[cc.Target{Arch: isa.AArch64, Flavor: fl}]
		rv := byKey[cc.Target{Arch: isa.RV64, Flavor: fl}]
		if arm == 0 || rv == 0 {
			continue
		}
		out = append(out, Summary{
			Benchmark: name,
			Flavor:    fl,
			RVOverArm: float64(rv) / float64(arm),
		})
	}
	return out
}

// WriteSummaries prints the cross-benchmark ratio table and the
// overall mean, the paper's headline "2.3% longer for RISC-V" metric.
func WriteSummaries(w io.Writer, all []Summary) {
	fmt.Fprintln(w, "== path-length ratios (RISC-V / AArch64) ==")
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Benchmark != all[j].Benchmark {
			return all[i].Benchmark < all[j].Benchmark
		}
		return all[i].Flavor < all[j].Flavor
	})
	var sum float64
	armShorter := 0
	for _, s := range all {
		fmt.Fprintf(w, "%-14s %-9s %8.4f (%+.1f%%)\n",
			s.Benchmark, s.Flavor.String(), s.RVOverArm, (s.RVOverArm-1)*100)
		sum += s.RVOverArm
		if s.RVOverArm > 1 {
			armShorter++
		}
	}
	if len(all) > 0 {
		mean := sum / float64(len(all))
		fmt.Fprintf(w, "%-14s %-9s %8.4f (%+.1f%%)\n", "mean", "", mean, (mean-1)*100)
		fmt.Fprintf(w, "AArch64 shorter for %d of %d benchmark+compiler pairs\n",
			armShorter, len(all))
	}
	fmt.Fprintln(w)
}

// Banner writes a run header.
func Banner(w io.Writer, what, scale string) {
	line := strings.Repeat("-", 72)
	fmt.Fprintf(w, "%s\n%s (scale: %s)\n%s\n", line, what, scale, line)
}
