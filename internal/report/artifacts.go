package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"isacmp/internal/cc"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
)

// WriteArtifacts reproduces the output layout of the paper's artifact
// (appendix A.6): a results directory containing kernelCounts.txt
// (cumulative instruction count per source section), basicCPResult.txt
// and scaledCPResult.txt (critical-path data and ILP per benchmark)
// and windowAverages.txt (comma-separated mean CP length per window
// size, ascending, one line per benchmark+target).
func WriteArtifacts(dir string, progs []*ir.Program) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var kernelCounts, basicCP, scaledCP, windowAvg strings.Builder

	for _, p := range progs {
		rows, err := Run(p, Experiment{
			PathLength: true, CritPath: true, Scaled: true, Windowed: true,
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(&kernelCounts, "# %s\n", p.Name)
		for _, r := range rows {
			fmt.Fprintf(&kernelCounts, "%s: {", r.Target)
			for i, rc := range r.Regions {
				if i > 0 {
					kernelCounts.WriteString(", ")
				}
				fmt.Fprintf(&kernelCounts, "'%s': %d", rc.Name, rc.Count)
			}
			fmt.Fprintf(&kernelCounts, "}\n")
		}
		var baseline float64
		for _, r := range rows {
			if r.Target.Flavor == cc.GCC9 && r.Target.Arch == isa.AArch64 {
				baseline = float64(r.PathLen)
			}
		}
		if baseline > 0 {
			fmt.Fprintf(&kernelCounts, "normalised:")
			for _, r := range rows {
				fmt.Fprintf(&kernelCounts, " %.4f", float64(r.PathLen)/baseline)
			}
			fmt.Fprintln(&kernelCounts)
		}
		fmt.Fprintln(&kernelCounts)

		fmt.Fprintf(&basicCP, "# %s\n", p.Name)
		for _, r := range rows {
			fmt.Fprintf(&basicCP, "%s: path=%d cp=%d ilp=%.2f runtime_ms=%.6f\n",
				r.Target, r.PathLen, r.CP, r.ILP, r.Runtime*1e3)
		}
		fmt.Fprintln(&basicCP)

		fmt.Fprintf(&scaledCP, "# %s\n", p.Name)
		for _, r := range rows {
			fmt.Fprintf(&scaledCP, "%s: path=%d cp=%d ilp=%.2f runtime_ms=%.6f\n",
				r.Target, r.PathLen, r.ScaledCP, r.ScaledILP, r.ScaledRuntime*1e3)
		}
		fmt.Fprintln(&scaledCP)

		for _, r := range rows {
			if r.Target.Flavor != cc.GCC12 {
				continue
			}
			vals := make([]string, 0, len(r.Windows))
			for _, w := range r.Windows {
				vals = append(vals, fmt.Sprintf("%.3f", w.MeanCP))
			}
			fmt.Fprintf(&windowAvg, "%s/%s,%s\n", p.Name, r.Target, strings.Join(vals, ","))
		}
	}

	files := map[string]string{
		"kernelCounts.txt":   kernelCounts.String(),
		"basicCPResult.txt":  basicCP.String(),
		"scaledCPResult.txt": scaledCP.String(),
		"windowAverages.txt": windowAvg.String(),
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
