package report

// The exit-code contract every cmd/ binary follows (documented in the
// README's failure-semantics section):
//
//	0  every requested cell produced a result
//	1  fatal error: bad input files, setup failure outside the matrix,
//	   FailFast abort, or a panic that escaped every guard
//	2  usage error: unknown flag values rejected by validation
//	3  partial failure: the matrix completed but one or more cells are
//	   FAILED rows (continue-on-error mode)
//
// bench-watch reuses the same four codes with gate-specific meanings:
//
//	0  every rule passed against the committed baseline
//	1  a genuine gate regression (a ratio, floor, budget, pin or flag
//	   rule fired beyond its noise-aware tolerance)
//	2  usage or parse failure: missing documents, malformed JSON, a
//	   schema with no registered rule family
//	3  comparison refused on host drift: the two documents carry
//	   mismatched host fingerprints or noise-probe medians, so any
//	   ratio between them measures the host, not the code — the fix
//	   is re-baselining, never debugging (obs.ErrHostDrift)
const (
	ExitOK      = 0
	ExitFatal   = 1
	ExitUsage   = 2
	ExitPartial = 3
)
