package report

// The exit-code contract every cmd/ binary follows (documented in the
// README's failure-semantics section):
//
//	0  every requested cell produced a result
//	1  fatal error: bad input files, setup failure outside the matrix,
//	   FailFast abort, or a panic that escaped every guard
//	2  usage error: unknown flag values rejected by validation
//	3  partial failure: the matrix completed but one or more cells are
//	   FAILED rows (continue-on-error mode)
const (
	ExitOK      = 0
	ExitFatal   = 1
	ExitUsage   = 2
	ExitPartial = 3
)
