package obs

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"

	"isacmp/internal/benchdb"
	"isacmp/internal/telemetry"
)

// /benchz is the benchmark observatory endpoint: the longitudinal
// view of every committed BENCH_*.json document plus the local
// benchdb ledger, grouped into per-(schema family, metric) series
// with median, robust CV and trend. JSON by default; ?format=text
// renders the ASCII trend table for a terminal.

// BenchzSchema identifies the /benchz document format.
const BenchzSchema = "isacmp/benchz/v1"

// BenchSource is where /benchz finds benchmark history. Load reads at
// call time, so a scrape during a live matrix run sees the history as
// of that moment — the endpoint never caches.
type BenchSource struct {
	// Dir is scanned for committed BENCH_*.json documents (the curated
	// trajectory). "" disables the scan.
	Dir string
	// LedgerPath is the benchdb append ledger ("" = none). A missing
	// file is fine — the ledger only exists once a bench has run.
	LedgerPath string
	// Registry, when set, receives the benchdb.* gauges on every Load:
	// benchdb.docs, benchdb.ledger_entries, benchdb.series,
	// benchdb.ledger_torn and benchdb.noise_cv (the most recent
	// recorded probe dispersion).
	Registry *telemetry.Registry
}

// BenchzDoc is the /benchz JSON document.
type BenchzDoc struct {
	Schema string `json:"schema"`
	// Docs is how many committed BENCH_*.json documents were read and
	// LedgerEntries how many valid ledger entries; TornTail reports a
	// tolerated torn final ledger line.
	Docs          int  `json:"docs"`
	LedgerEntries int  `json:"ledger_entries"`
	TornTail      bool `json:"torn_tail,omitempty"`
	// Host is the fingerprint of the machine serving the request —
	// compare it against a series' recorded fingerprints before
	// trusting a trend across it.
	Host *benchdb.Fingerprint `json:"host,omitempty"`
	// Series is the per-(schema family, metric) history, ordered by
	// schema then metric.
	Series []benchdb.Series `json:"series"`
}

// Load gathers the current history: committed documents in trajectory
// order (numeric-aware name sort, so BENCH_PR10 follows BENCH_PR8),
// then the ledger. Unreadable or schema-less committed documents are
// skipped rather than failing the endpoint — one bad file must not
// take down the observatory.
func (b *BenchSource) Load() (BenchzDoc, error) {
	doc := BenchzDoc{Schema: BenchzSchema, Host: benchdb.Collect()}
	var entries []benchdb.Entry
	if b.Dir != "" {
		paths, err := filepath.Glob(filepath.Join(b.Dir, "BENCH_*.json"))
		if err != nil {
			return doc, fmt.Errorf("benchz: scan %s: %w", b.Dir, err)
		}
		sort.Slice(paths, func(i, j int) bool { return naturalLess(paths[i], paths[j]) })
		for _, p := range paths {
			d, _, err := LoadDoc(p)
			if err != nil {
				continue
			}
			entries = append(entries, benchdb.EntryFromDoc(d, filepath.Base(p)))
			doc.Docs++
		}
	}
	if b.LedgerPath != "" {
		ledger, torn, err := benchdb.Replay(b.LedgerPath)
		if err != nil {
			return doc, err
		}
		doc.TornTail = torn
		doc.LedgerEntries = len(ledger)
		entries = append(entries, ledger...)
	}
	doc.Series = benchdb.BuildSeries(entries)
	if b.Registry != nil {
		b.Registry.Gauge("benchdb.docs").Set(float64(doc.Docs))
		b.Registry.Gauge("benchdb.ledger_entries").Set(float64(doc.LedgerEntries))
		b.Registry.Gauge("benchdb.series").Set(float64(len(doc.Series)))
		torn := 0.0
		if doc.TornTail {
			torn = 1.0
		}
		b.Registry.Gauge("benchdb.ledger_torn").Set(torn)
		for i := len(entries) - 1; i >= 0; i-- {
			if entries[i].Noise != nil {
				b.Registry.Gauge("benchdb.noise_cv").Set(entries[i].Noise.CV)
				break
			}
		}
	}
	return doc, nil
}

// naturalLess orders names with embedded integers numerically:
// BENCH_PR8.json < BENCH_PR10.json, where a plain byte compare would
// interleave them and scramble the trajectory's trend.
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		da, db := digitPrefix(a), digitPrefix(b)
		if da > 0 && db > 0 {
			na, nb := atoiPrefix(a[:da]), atoiPrefix(b[:db])
			if na != nb {
				return na < nb
			}
			a, b = a[da:], b[db:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return a == "" && b != ""
}

func digitPrefix(s string) int {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return i
}

func atoiPrefix(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// WriteBenchzTable renders the ASCII trend table: one row per
// (schema, metric) series. Trend is latest/median; a trend beyond the
// series' own dispersion is where to look first.
func WriteBenchzTable(w io.Writer, doc BenchzDoc) error {
	if _, err := fmt.Fprintf(w, "benchdb observatory — %d committed docs, %d ledger entries\n",
		doc.Docs, doc.LedgerEntries); err != nil {
		return err
	}
	if doc.TornTail {
		if _, err := fmt.Fprintln(w, "warning: ledger ends in a tolerated torn tail"); err != nil {
			return err
		}
	}
	schemaW, metricW := len("SCHEMA"), len("METRIC")
	for _, s := range doc.Series {
		if len(s.Schema) > schemaW {
			schemaW = len(s.Schema)
		}
		if len(s.Metric) > metricW {
			metricW = len(s.Metric)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %3s  %10s  %7s  %10s  %6s\n",
		schemaW, "SCHEMA", metricW, "METRIC", "N", "MEDIAN", "CV", "LATEST", "TREND"); err != nil {
		return err
	}
	for _, s := range doc.Series {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %3d  %10.4f  %6.1f%%  %10.4f  x%5.2f\n",
			schemaW, s.Schema, metricW, s.Metric, len(s.Values), s.Median, s.CV*100, s.Latest, s.Trend); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) handleBenchz(w http.ResponseWriter, r *http.Request) {
	if s.bench == nil {
		http.Error(w, "no bench source", http.StatusNotFound)
		return
	}
	doc, err := s.bench.Load()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if strings.EqualFold(r.URL.Query().Get("format"), "text") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := WriteBenchzTable(w, doc); err != nil {
			s.log.Warn("benchz table write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := writeIndentedJSON(w, doc); err != nil {
		s.log.Warn("benchz write failed", "err", err)
	}
}
