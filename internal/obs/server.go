package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"isacmp/internal/obs/slogx"
	"isacmp/internal/prof"
	"isacmp/internal/telemetry"
)

// ServerConfig configures the embedded observability server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":8080" or "127.0.0.1:0"
	// (":0" picks a free port; read it back from Server.Addr).
	Addr string
	// Registry backs /metrics and the /statusz queue-depth view.
	Registry *telemetry.Registry
	// Board backs /statusz and /events. May be nil; both endpoints
	// then serve an empty matrix.
	Board *Board
	// Profiler backs /profilez and the /statusz stage breakdown. May
	// be nil (-profile off); /profilez then reports the profiler as
	// disabled and /statusz omits stage_seconds.
	Profiler *prof.Profiler
	// Bench backs /benchz: the committed BENCH_*.json trajectory plus
	// the benchdb ledger. May be nil; /benchz then returns 404.
	Bench *BenchSource
	// Log receives server lifecycle lines. Nil means silent.
	Log *slog.Logger
}

// shutdownGrace is how long Close waits for in-flight requests before
// force-closing connections. SSE and pprof handlers watch the
// shutdown channel and return well within it.
const shutdownGrace = 2 * time.Second

// Server is the embedded observability HTTP server. It lives for the
// duration of an experiment: StartServer binds and serves immediately
// (readiness gated separately via SetReady), and it shuts down when
// the experiment context is cancelled — including -cell-timeout and
// -fail-fast cancellation — or when Close is called, whichever comes
// first.
type Server struct {
	srv      *http.Server
	ln       net.Listener
	board    *Board
	reg      *telemetry.Registry
	profiler *prof.Profiler
	bench    *BenchSource
	log      *slog.Logger
	ready    atomic.Bool
	shutdown chan struct{} // closed exactly once, by Close
	served   chan struct{} // closed when the serve goroutine exits
	watched  chan struct{} // closed when the ctx watcher exits
	once     sync.Once
}

// StartServer binds cfg.Addr and serves in the background. The server
// closes itself when ctx is cancelled; call Close for an orderly
// earlier stop (both are safe, in any order, any number of times).
func StartServer(ctx context.Context, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		ln:       ln,
		board:    cfg.Board,
		reg:      cfg.Registry,
		profiler: cfg.Profiler,
		bench:    cfg.Bench,
		log:      slogx.OrNop(cfg.Log),
		shutdown: make(chan struct{}),
		served:   make(chan struct{}),
		watched:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/profilez", s.handleProfilez)
	mux.HandleFunc("/benchz", s.handleBenchz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.served)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("obs server exited", "err", err)
		}
	}()
	go func() {
		// The watcher initiates shutdown but must not join on the
		// goroutine channels (it would wait on its own exit); Close
		// does the joining for callers.
		defer close(s.watched)
		select {
		case <-ctx.Done():
			s.doClose()
		case <-s.shutdown:
		}
	}()
	s.log.Info("obs server listening", "addr", s.Addr())
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SetReady flips the /readyz state. The runner marks the server ready
// once the matrix is set up and not-ready again while draining.
func (s *Server) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.ready.Store(ready)
}

// Close shuts the server down: long-lived handlers (SSE, pprof) are
// told to return via the shutdown channel, in-flight requests get a
// short grace period, then remaining connections are force-closed.
// Close blocks until the serve and watcher goroutines have exited, so
// a Close-then-return leaves no server goroutines behind. Safe to call
// multiple times and concurrently with context cancellation.
func (s *Server) Close() {
	if s == nil {
		return
	}
	s.doClose()
	<-s.served
	<-s.watched
}

// doClose performs the once-guarded shutdown without joining the
// server goroutines, so the ctx watcher can run it without deadlocking
// on its own exit.
func (s *Server) doClose() {
	s.once.Do(func() {
		s.ready.Store(false)
		close(s.shutdown)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		if err := s.srv.Shutdown(ctx); err != nil {
			s.srv.Close()
		}
		cancel()
		s.log.Info("obs server stopped", "addr", s.Addr())
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if s.reg != nil {
		snap = s.reg.Snapshot()
	}
	w.Header().Set("Content-Type", PromContentType)
	if err := WritePrometheus(w, snap); err != nil {
		s.log.Warn("metrics write failed", "err", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	doc := s.board.Status()
	if s.profiler.Enabled() {
		doc.StageSeconds = s.profiler.StageSeconds()
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := writeIndentedJSON(w, doc); err != nil {
		s.log.Warn("statusz write failed", "err", err)
	}
}

// writeIndentedJSON is the shared two-space-indented document
// encoding of the JSON endpoints.
func writeIndentedJSON(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// profileDoc is the /profilez JSON document: the live span profiler's
// per-stage totals, span accounting and configuration. `?format=chrome`
// streams the span timelines as a Chrome trace instead.
type profileDoc struct {
	Schema  string            `json:"schema"`
	Enabled bool              `json:"enabled"`
	Lanes   int               `json:"lanes,omitempty"`
	Spans   int               `json:"spans,omitempty"`
	Dropped int64             `json:"dropped,omitempty"`
	Stages  []prof.StageTotal `json:"stages,omitempty"`
}

// ProfileSchema identifies the /profilez document format.
const ProfileSchema = "isacmp/profilez/v1"

func (s *Server) handleProfilez(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", "attachment; filename=\"profile-trace.json\"")
		if err := s.profiler.WriteChromeTrace(w); err != nil {
			s.log.Warn("profilez trace write failed", "err", err)
		}
		return
	}
	doc := profileDoc{
		Schema:  ProfileSchema,
		Enabled: s.profiler.Enabled(),
		Lanes:   s.profiler.Lanes(),
		Spans:   len(s.profiler.Spans()),
		Dropped: s.profiler.Dropped(),
		Stages:  s.profiler.StageTotals(),
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		s.log.Warn("profilez write failed", "err", err)
	}
}

// handleEvents streams cell lifecycle transitions as server-sent
// events: one `data: {json}` frame per transition. The handler
// returns when the client disconnects or the server shuts down, so
// open streams never block Close.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := s.board.Subscribe()
	if ch == nil {
		http.Error(w, "no status board", http.StatusNotFound)
		return
	}
	defer s.board.Unsubscribe(ch)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		case ev := <-ch:
			payload, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
