package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isacmp/internal/benchdb"
)

func hotpathDoc(seconds float64, identical bool) map[string]any {
	return map[string]any{
		"schema":          "isacmp/bench-hotpath/v1",
		"hotpath_seconds": seconds,
		"identical":       identical,
	}
}

// TestWatchRatioRule: a watched wall-time metric may drift up to the
// tolerance over the committed baseline; past it the finding is a
// regression naming both values.
func TestWatchRatioRule(t *testing.T) {
	base := hotpathDoc(10.0, true)

	ok, err := Watch(base, hotpathDoc(10.9, true)) // within the 10%
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(ok) {
		t.Errorf("10.9 vs 10.0 flagged: %+v", ok)
	}

	bad, err := Watch(base, hotpathDoc(11.1, true))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(bad) {
		t.Fatalf("11.1 vs 10.0 must regress: %+v", bad)
	}
	var f Finding
	for _, x := range bad {
		if x.Regression {
			f = x
		}
	}
	if f.Metric != "hotpath_seconds" || f.Baseline != 10.0 || f.Fresh != 11.1 {
		t.Errorf("regression finding = %+v", f)
	}
	if f.Limit != 10.0*WatchTolerance {
		t.Errorf("limit = %v, want %v", f.Limit, 10.0*WatchTolerance)
	}
}

// TestWatchFlagRule: a false (or missing) invariant flag is a
// regression regardless of timings — byte-identity failures can never
// pass the gate on speed alone.
func TestWatchFlagRule(t *testing.T) {
	base := hotpathDoc(10.0, true)
	fs, err := Watch(base, hotpathDoc(5.0, false))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatal("identical=false must regress")
	}
	fresh := hotpathDoc(5.0, true)
	delete(fresh, "identical")
	fs, err = Watch(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatal("missing identical flag must regress")
	}
}

// TestWatchBudgetRule: a re-measured overhead is judged against the
// budget recorded in the fresh document scaled by the measurement
// headroom, while the committed document's within_budget flag is
// pinned exactly.
func TestWatchBudgetRule(t *testing.T) {
	doc := func(overhead float64) map[string]any {
		return map[string]any{
			"schema":           "isacmp/bench-obs/v1",
			"served_seconds":   1.0,
			"overhead_percent": overhead,
			"budget_percent":   2.0,
			"within_budget":    overhead <= 2.0,
			"identical":        true,
		}
	}
	base := doc(1.0)
	if fs, err := Watch(base, doc(1.9)); err != nil || HasRegression(fs) {
		t.Fatalf("1.9%% within 2%% budget: err=%v findings=%+v", err, fs)
	}
	// A fresh re-measure grazing past the budget is noise, not a
	// regression, as long as it stays within the headroom.
	if fs, err := Watch(base, doc(2.5)); err != nil || HasRegression(fs) {
		t.Fatalf("2.5%% within headroom of 2%% budget: err=%v findings=%+v", err, fs)
	}
	fs, err := Watch(base, doc(2.0*WatchBudgetHeadroom+0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("%.1f%% past the headroom limit must regress: %+v", 2.0*WatchBudgetHeadroom+0.5, fs)
	}

	// A committed doc that does not itself honor the budget fails the
	// pin rule no matter how the re-measure landed.
	fs, err = Watch(doc(2.5), doc(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatal("committed within_budget=false must regress")
	}
}

// TestWatchSchemaErrors: mismatched schemas and schemas without watch
// rules are hard errors — a new BENCH document cannot silently bypass
// the gate.
func TestWatchSchemaErrors(t *testing.T) {
	if _, err := Watch(hotpathDoc(1, true), map[string]any{"schema": "isacmp/bench-obs/v1"}); err == nil || !strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("schema mismatch: err = %v", err)
	}
	unknown := map[string]any{"schema": "isacmp/bench-new/v9"}
	if _, err := Watch(unknown, unknown); err == nil || !strings.Contains(err.Error(), "no watch rules") {
		t.Errorf("unknown schema: err = %v", err)
	}
}

// TestWatchFiles: the file-level entry point round-trips through JSON
// on disk and rejects documents without a schema field.
func TestWatchFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc map[string]any) string {
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", hotpathDoc(10, true))
	fresh := write("fresh.json", hotpathDoc(50, true))
	fs, err := WatchFiles(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Error("5x slowdown must regress")
	}

	noSchema := write("bad.json", map[string]any{"hotpath_seconds": 1.0})
	if _, err := WatchFiles(base, noSchema); err == nil || !strings.Contains(err.Error(), "missing schema") {
		t.Errorf("schema-less doc: err = %v", err)
	}
	if _, err := WatchFiles(filepath.Join(dir, "absent.json"), fresh); err == nil {
		t.Error("missing baseline file must error")
	}
}

// TestWatchRulesCoverCommittedDocs: every BENCH_*.json schema this
// repo commits — legacy v1 and fingerprinted v2 alike — resolves to a
// watch contract through its schema family, so `make check`'s
// bench-watch step can never skip one.
func TestWatchRulesCoverCommittedDocs(t *testing.T) {
	for _, schema := range []string{
		"isacmp/bench-matrix/v1",
		"isacmp/bench-matrix/v2",
		"isacmp/bench-resilience/v1",
		"isacmp/bench-resilience/v2",
		"isacmp/bench-hotpath/v1",
		"isacmp/bench-hotpath/v2",
		"isacmp/bench-obs/v1",
		"isacmp/bench-obs/v2",
		"isacmp/bench-fusion/v2",
		"isacmp/bench-durable/v2",
		"isacmp/scaling-report/v1",
		"isacmp/scaling-report/v2",
		"isacmp/bench-benchdb/v1",
	} {
		if _, ok := watchRules[benchdb.SchemaFamily(schema)]; !ok {
			t.Errorf("no watch rules for committed schema %q", schema)
		}
	}
}

// TestWatchFloorRule: a speedup ratio shrinking below its floor is a
// regression — documented measurement noise near 1.0 cannot hide a
// structural slowdown.
func TestWatchFloorRule(t *testing.T) {
	doc := func(speedup float64) map[string]any {
		d := hotpathDoc(10.0, true)
		d["batch_speedup"] = speedup
		return d
	}
	if fs, err := Watch(doc(1.1), doc(0.95)); err != nil || HasRegression(fs) {
		t.Fatalf("0.95 above the 0.90 floor: err=%v findings=%+v", err, fs)
	}
	fs, err := Watch(doc(1.1), doc(0.85))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("0.85 below the 0.90 floor must regress: %+v", fs)
	}
	var f Finding
	for _, x := range fs {
		if x.Regression {
			f = x
		}
	}
	if f.Metric != "batch_speedup" || f.Fresh != 0.85 || f.Limit != 0.90 {
		t.Errorf("floor finding = %+v", f)
	}
}

// TestWatchProvenanceRule: legacy schemas measured at workers: 1 (or
// with no workers field at all) get an advisory warning that never
// fails the gate; the scaling-report schema demands real multicore
// provenance and fails hard.
func TestWatchProvenanceRule(t *testing.T) {
	legacy := hotpathDoc(10.0, true)
	legacy["workers"] = 1.0
	fs, err := Watch(legacy, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(fs) {
		t.Fatalf("legacy workers:1 doc must not fail the gate: %+v", fs)
	}
	var warned bool
	for _, f := range fs {
		if f.Metric == "workers" && f.Warning {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("legacy workers:1 doc must carry a warning finding: %+v", fs)
	}

	// A legacy doc measured multicore gets neither warning nor
	// regression.
	multicore := hotpathDoc(10.0, true)
	multicore["workers"] = 4.0
	fs, err = Watch(multicore, multicore)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Metric == "workers" && (f.Warning || f.Regression) {
			t.Errorf("workers:4 doc flagged: %+v", f)
		}
	}

	scaling := func(workers float64) map[string]any {
		return map[string]any{
			"schema":                       "isacmp/scaling-report/v1",
			"best_wall_seconds":            1.0,
			"identical":                    true,
			"within_budget":                true,
			"profiler_on_overhead_percent": 1.0,
			"budget_percent":               3.0,
			"workers":                      workers,
		}
	}
	if fs, err := Watch(scaling(8), scaling(8)); err != nil || HasRegression(fs) {
		t.Fatalf("workers:8 scaling report: err=%v findings=%+v", err, fs)
	}
	fs, err = Watch(scaling(1), scaling(1))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("workers:1 scaling report must fail hard (no legacy escape hatch): %+v", fs)
	}
}

// TestWatchLegacyWarningsDoNotGate: the committed BENCH_PR1–PR5 era
// documents predate the workers provenance field entirely; judging one
// against itself stays green.
func TestWatchLegacyWarningsDoNotGate(t *testing.T) {
	doc := map[string]any{
		"schema":             "isacmp/bench-matrix/v1",
		"sequential_seconds": 10.0,
		"parallel_seconds":   10.0,
		"identical":          true,
	}
	fs, err := Watch(doc, doc)
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(fs) {
		t.Fatalf("schema with no workers field must warn, not fail: %+v", fs)
	}
}

// watchFingerprint builds the JSON-generic form of a fingerprint as a
// v2 document would carry it.
func watchFingerprint(t *testing.T, fp *benchdb.Fingerprint) map[string]any {
	t.Helper()
	data, err := json.Marshal(fp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func v2HotpathDoc(t *testing.T, seconds float64, fp *benchdb.Fingerprint, cv float64) map[string]any {
	d := map[string]any{
		"schema":          "isacmp/bench-hotpath/v2",
		"hotpath_seconds": seconds,
		"identical":       true,
		"fingerprint":     watchFingerprint(t, fp),
		"noise": map[string]any{
			"reps": 7.0, "median_seconds": 0.002, "min_seconds": 0.0019, "cv": cv,
		},
	}
	return d
}

// TestWatchCrossVersion: a legacy v1 baseline is readable against a
// fingerprinted v2 fresh document — the family rules apply and a
// warning finding records that drift cannot be ruled out.
func TestWatchCrossVersion(t *testing.T) {
	fp := &benchdb.Fingerprint{CPUModel: "m", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22", OS: "linux", Arch: "amd64"}
	base := hotpathDoc(10.0, true) // v1: no fingerprint
	fresh := v2HotpathDoc(t, 10.5, fp, 0.01)
	fs, err := Watch(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(fs) {
		t.Fatalf("v1 baseline vs v2 fresh within tolerance flagged: %+v", fs)
	}
	var warned bool
	for _, f := range fs {
		if f.Metric == "fingerprint" && f.Warning {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("v1 baseline must carry a fingerprint warning: %+v", fs)
	}

	// And a genuine regression still fails across versions.
	fs, err = Watch(base, v2HotpathDoc(t, 12.0, fp, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("20%% slowdown must regress across schema versions: %+v", fs)
	}
}

// TestWatchHostDriftRefused is the chaos test of the acceptance
// criteria: feed the gate a fingerprint-mismatched baseline whose
// metrics drifted ~15% — exactly the BENCH_PR7 incident — and it must
// refuse the comparison with a "host drift, not regression" diagnosis
// instead of reporting a phantom regression.
func TestWatchHostDriftRefused(t *testing.T) {
	oldHost := &benchdb.Fingerprint{CPUModel: "old-box", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22", OS: "linux", Arch: "amd64", Governor: "performance"}
	newHost := &benchdb.Fingerprint{CPUModel: "new-box", NumCPU: 16, GOMAXPROCS: 16, GoVersion: "go1.22", OS: "linux", Arch: "amd64", Governor: "schedutil"}
	base := v2HotpathDoc(t, 10.0, oldHost, 0.01)
	fresh := v2HotpathDoc(t, 11.5, newHost, 0.01) // synthetic 15% drift

	fs, err := Watch(base, fresh)
	if err == nil {
		t.Fatalf("cross-fingerprint comparison must be refused, got findings: %+v", fs)
	}
	if !errors.Is(err, ErrHostDrift) {
		t.Fatalf("want ErrHostDrift, got %v", err)
	}
	if !strings.Contains(err.Error(), "host drift, not regression") {
		t.Errorf("diagnosis must say 'host drift, not regression': %v", err)
	}
	if !strings.Contains(err.Error(), "re-baseline") {
		t.Errorf("diagnosis should point at re-baselining: %v", err)
	}

	// Same fingerprint but a shifted noise-probe median is host drift
	// too: the probe workload is identical across runs.
	shifted := v2HotpathDoc(t, 11.5, oldHost, 0.01)
	shifted["noise"].(map[string]any)["median_seconds"] = 0.0026 // +30%
	if _, err := Watch(base, shifted); !errors.Is(err, ErrHostDrift) {
		t.Fatalf("probe-median shift must be ErrHostDrift, got %v", err)
	}
}

// TestWatchNoiseAwareTolerance: on a host whose probe recorded real
// dispersion the ratio limit widens with it, so noise is not judged
// at the quiet-host tolerance; on a quiet host the classic 10% floor
// still binds.
func TestWatchNoiseAwareTolerance(t *testing.T) {
	fp := &benchdb.Fingerprint{CPUModel: "m", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22", OS: "linux", Arch: "amd64"}
	base := v2HotpathDoc(t, 10.0, fp, 0.01)

	// 11.5s is past the 10% floor — a regression on a quiet host...
	quiet := v2HotpathDoc(t, 11.5, fp, 0.01)
	fs, err := Watch(base, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("15%% slowdown on a quiet host must regress: %+v", fs)
	}

	// ...but within the widened limit when the fresh probe recorded 5%
	// CV (limit = 1 + 6·0.05 = 1.30).
	noisy := v2HotpathDoc(t, 11.5, fp, 0.05)
	fs, err = Watch(base, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(fs) {
		t.Fatalf("15%% delta under 5%% recorded noise must not regress: %+v", fs)
	}
	// A gross slowdown still fails even on the noisy host.
	gross := v2HotpathDoc(t, 14.0, fp, 0.05)
	fs, err = Watch(base, gross)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(fs) {
		t.Fatalf("40%% slowdown must regress at any recorded noise: %+v", fs)
	}
}
