package obs

import (
	"strings"
	"testing"

	"isacmp/internal/telemetry"
)

// TestWritePrometheusGolden pins the exposition text byte-for-byte for
// a registry holding one of each metric kind: HELP carries the dotted
// registry name, TYPE matches the kind, histogram buckets are emitted
// cumulatively with the overflow folded into +Inf, followed by _sum
// and _count. Scrapers parse this format strictly, so any drift is a
// bug even if it "looks" equivalent.
func TestWritePrometheusGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.retired.total").Add(42)
	reg.Counter("sched.panics").Add(0)
	reg.Gauge("sched.q0.depth").Set(3)
	h := reg.Histogram("cell.seconds", []float64{0.25, 1})
	for _, v := range []float64{0.25, 0.5, 0.5, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP isacmp_sim_retired_total isacmp counter sim.retired.total
# TYPE isacmp_sim_retired_total counter
isacmp_sim_retired_total 42
# HELP isacmp_sched_panics isacmp counter sched.panics
# TYPE isacmp_sched_panics counter
isacmp_sched_panics 0
# HELP isacmp_sched_q0_depth isacmp gauge sched.q0.depth
# TYPE isacmp_sched_q0_depth gauge
isacmp_sched_q0_depth 3
# HELP isacmp_cell_seconds isacmp histogram cell.seconds
# TYPE isacmp_cell_seconds histogram
isacmp_cell_seconds_bucket{le="0.25"} 1
isacmp_cell_seconds_bucket{le="1"} 3
isacmp_cell_seconds_bucket{le="+Inf"} 4
isacmp_cell_seconds_sum 6.25
isacmp_cell_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestPromNameSanitisation: every character outside [a-zA-Z0-9_:] in
// the dotted registry name becomes an underscore under the isacmp_
// namespace prefix, and the HELP line escapes backslash and newline so
// the original name survives the round trip.
func TestPromNameSanitisation(t *testing.T) {
	snap := telemetry.Snapshot{
		Counters: []telemetry.CounterPoint{
			{Name: `weird-metric/pa\th`, Value: 7},
		},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "isacmp_weird_metric_pa_th 7\n") {
		t.Errorf("sample line not sanitised:\n%s", out)
	}
	if !strings.Contains(out, `# HELP isacmp_weird_metric_pa_th isacmp counter weird-metric/pa\\th`) {
		t.Errorf("HELP must carry the escaped original name:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE isacmp_weird_metric_pa_th counter\n") {
		t.Errorf("TYPE line missing:\n%s", out)
	}
}

// TestPromHistogramOverflowOnly: a histogram whose every observation
// lands in the overflow bucket still reports a consistent cumulative
// +Inf count equal to _count.
func TestPromHistogramOverflowOnly(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", []float64{1})
	h.Observe(10)
	h.Observe(20)
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"isacmp_lat_bucket{le=\"1\"} 0\n",
		"isacmp_lat_bucket{le=\"+Inf\"} 2\n",
		"isacmp_lat_count 2\n",
		"isacmp_lat_sum 30\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
