package obs

import (
	"strings"
	"sync"
	"time"

	"isacmp/internal/isa"
	"isacmp/internal/telemetry"
)

// CellState is the lifecycle state of one matrix cell as shown on
// /statusz and streamed on /events.
type CellState string

const (
	CellPending  CellState = "pending"
	CellRunning  CellState = "running"
	CellRetrying CellState = "retrying"
	CellFailed   CellState = "failed"
	CellDone     CellState = "done"
)

// Event is one cell lifecycle transition, streamed on /events as a
// JSON SSE payload. Seq is a per-run monotonic sequence number so a
// client can detect drops (slow subscribers lose events rather than
// stalling the matrix).
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	RunID    string    `json:"run_id"`
	Workload string    `json:"workload"`
	Target   string    `json:"target"`
	State    CellState `json:"state"`
	Attempt  int       `json:"attempt,omitempty"`
	Retired  uint64    `json:"retired,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	// Source marks a cell served without simulation: "journal" (resume
	// replay) or "cache" (content-cache hit). Empty for computed cells.
	Source string `json:"source,omitempty"`
}

// CellStatus is the /statusz view of one matrix cell.
type CellStatus struct {
	Workload string    `json:"workload"`
	Target   string    `json:"target"`
	State    CellState `json:"state"`
	Attempt  int       `json:"attempt,omitempty"`
	Retired  uint64    `json:"retired,omitempty"`
	Seconds  float64   `json:"seconds,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	// Source marks a served cell's origin ("journal" or "cache").
	Source string `json:"source,omitempty"`
}

// StatusDoc is the JSON document /statusz serves: the whole matrix at
// a point in time plus derived scheduling signals (queue depths from
// the registry, throughput EWMA, ETA).
type StatusDoc struct {
	Schema        string         `json:"schema"`
	RunID         string         `json:"run_id"`
	Time          time.Time      `json:"time"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers,omitempty"`
	States        map[string]int `json:"states"`
	// Served counts terminal cells by durability source ("journal",
	// "cache") — the resumed-vs-computed split; computed cells are the
	// done/failed counts in States minus these.
	Served map[string]int `json:"served,omitempty"`
	// ServedPerSecond is the resume throughput: served cells per second
	// of uptime. It is reported separately from the EWMAs on purpose —
	// a replayed cell costs microseconds, so folding it into the
	// throughput estimator would make the ETA wildly optimistic for the
	// cells that still have to be computed.
	ServedPerSecond float64            `json:"served_per_second,omitempty"`
	Cells           []CellStatus       `json:"cells"`
	QueueDepths     map[string]float64 `json:"queue_depths,omitempty"`
	EWMACellSeconds float64            `json:"ewma_cell_seconds,omitempty"`
	EWMAMIPS        float64            `json:"ewma_mips,omitempty"`
	ETASeconds      float64            `json:"eta_seconds,omitempty"`
	// EventsSent / EventsDropped count /events SSE deliveries and the
	// broadcasts lost to slow subscribers (drop-not-stall contract).
	EventsSent    uint64 `json:"events_sent,omitempty"`
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// StageSeconds is the span profiler's per-stage time breakdown,
	// present only when the run was started with -profile. Filled by
	// the obs server, not the board.
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
}

// StatusSchema identifies the /statusz document format.
const StatusSchema = "isacmp/statusz/v1"

// ewmaAlpha is the smoothing factor for the cell-seconds and MIPS
// EWMAs: recent cells dominate, but one outlier cannot swing the ETA.
const ewmaAlpha = 0.3

type cell struct {
	workload string
	target   string
	state    CellState
	attempt  int
	retired  uint64
	seconds  float64
	reason   string
	source   string
}

// Board tracks live per-cell matrix state for /statusz and fans cell
// lifecycle transitions out to /events subscribers. All methods are
// safe on a nil receiver (no-ops), so the report runner drives it
// unconditionally whether or not -serve is set.
type Board struct {
	runID string
	reg   *telemetry.Registry

	mu       sync.Mutex
	started  time.Time
	workers  int
	cells    []*cell
	index    map[string]*cell
	seq      uint64
	subs     map[chan Event]struct{}
	ewmaSecs float64
	ewmaMIPS float64
	// SSE delivery accounting (under mu); mirrored to the registry
	// counters obs.events.sent / obs.events.dropped when reg is set.
	evSent    uint64
	evDropped uint64
}

// NewBoard returns a board for one run. reg may be nil; when set,
// /statusz folds the registry's sched.* queue-depth gauges into the
// document.
func NewBoard(runID string, reg *telemetry.Registry) *Board {
	return &Board{
		runID:   runID,
		reg:     reg,
		started: time.Now(),
		index:   map[string]*cell{},
		subs:    map[chan Event]struct{}{},
	}
}

// RunID returns the run identifier the board was built with ("" on a
// nil board).
func (b *Board) RunID() string {
	if b == nil {
		return ""
	}
	return b.runID
}

func cellKey(workload, target string) string { return workload + "\x00" + target }

// SetWorkers records the pool width used for the ETA estimate.
func (b *Board) SetWorkers(n int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.workers = n
	b.mu.Unlock()
}

// Register adds a cell in the pending state. Cells appear on /statusz
// in registration order — the same order the report tables use.
func (b *Board) Register(workload, target string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	k := cellKey(workload, target)
	if _, ok := b.index[k]; ok {
		b.mu.Unlock()
		return
	}
	c := &cell{workload: workload, target: target, state: CellPending}
	b.cells = append(b.cells, c)
	b.index[k] = c
	b.mu.Unlock()
}

// transition moves a cell to a new state and broadcasts the event.
// It creates the cell if Register was skipped, so partial wiring
// degrades to a board that only shows touched cells.
func (b *Board) transition(workload, target string, state CellState, attempt int, retired uint64, seconds float64, reason string) {
	b.mu.Lock()
	k := cellKey(workload, target)
	c, ok := b.index[k]
	if !ok {
		c = &cell{workload: workload, target: target}
		b.cells = append(b.cells, c)
		b.index[k] = c
	}
	c.state = state
	c.attempt = attempt
	if retired > 0 {
		c.retired = retired
	}
	if seconds > 0 {
		c.seconds = seconds
	}
	c.reason = reason
	if state == CellDone && seconds > 0 {
		if b.ewmaSecs == 0 {
			b.ewmaSecs = seconds
		} else {
			b.ewmaSecs = ewmaAlpha*seconds + (1-ewmaAlpha)*b.ewmaSecs
		}
		if retired > 0 {
			mips := float64(retired) / seconds / 1e6
			if b.ewmaMIPS == 0 {
				b.ewmaMIPS = mips
			} else {
				b.ewmaMIPS = ewmaAlpha*mips + (1-ewmaAlpha)*b.ewmaMIPS
			}
		}
	}
	b.seq++
	ev := Event{
		Seq:      b.seq,
		Time:     time.Now(),
		RunID:    b.runID,
		Workload: workload,
		Target:   target,
		State:    state,
		Attempt:  attempt,
		Retired:  c.retired,
		Reason:   reason,
		Source:   c.source,
	}
	var sent, dropped uint64
	for ch := range b.subs {
		select {
		case ch <- ev:
			sent++
		default: // slow subscriber: drop rather than stall the matrix
			dropped++
		}
	}
	b.evSent += sent
	b.evDropped += dropped
	reg := b.reg
	b.mu.Unlock()
	// Registry counters are updated outside the board lock; they are
	// obs.*-prefixed, so manifest canonicalization strips them and the
	// byte-identity contract holds whether or not anyone subscribes.
	if reg != nil {
		if sent > 0 {
			reg.Counter("obs.events.sent").Add(sent)
		}
		if dropped > 0 {
			reg.Counter("obs.events.dropped").Add(dropped)
		}
	}
}

// Running marks a cell as executing its attempt'th attempt.
func (b *Board) Running(workload, target string, attempt int) {
	if b == nil {
		return
	}
	b.transition(workload, target, CellRunning, attempt, 0, 0, "")
}

// Retrying marks a cell as backing off before another attempt.
func (b *Board) Retrying(workload, target string, attempt int, reason string) {
	if b == nil {
		return
	}
	b.transition(workload, target, CellRetrying, attempt, 0, 0, reason)
}

// Done marks a cell complete and feeds the throughput EWMAs.
func (b *Board) Done(workload, target string, seconds float64, retired uint64) {
	if b == nil {
		return
	}
	b.transition(workload, target, CellDone, 0, retired, seconds, "")
}

// Failed marks a cell permanently failed with its taxonomy reason.
func (b *Board) Failed(workload, target string, attempt int, reason string) {
	if b == nil {
		return
	}
	b.transition(workload, target, CellFailed, attempt, 0, 0, reason)
}

// Served marks a cell terminal without simulation: its result was
// replayed from the durability journal (source "journal") or the
// content cache (source "cache"). Served cells do not feed the
// throughput EWMAs — their original wall time says nothing about this
// run's pace — so the ETA stays honest for the cells that remain.
func (b *Board) Served(workload, target, source string, failed bool, reason string, retired uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	k := cellKey(workload, target)
	c, ok := b.index[k]
	if !ok {
		c = &cell{workload: workload, target: target}
		b.cells = append(b.cells, c)
		b.index[k] = c
	}
	c.source = source
	b.mu.Unlock()
	if failed {
		b.transition(workload, target, CellFailed, 0, 0, 0, reason)
	} else {
		b.transition(workload, target, CellDone, 0, retired, 0, "")
	}
}

// Progress updates a running cell's retired-instruction count. Called
// from the hot path via Meter in large strides; it takes the lock but
// broadcasts nothing.
func (b *Board) Progress(workload, target string, retired uint64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if c, ok := b.index[cellKey(workload, target)]; ok {
		c.retired = retired
	}
	b.mu.Unlock()
}

// Subscribe registers an /events listener. The channel is buffered;
// events overflowing a stalled listener are dropped, never blocking
// cell transitions.
func (b *Board) Subscribe() chan Event {
	if b == nil {
		return nil
	}
	ch := make(chan Event, 256)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

// Unsubscribe removes a listener registered with Subscribe.
func (b *Board) Unsubscribe(ch chan Event) {
	if b == nil || ch == nil {
		return
	}
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// Status renders the /statusz document.
func (b *Board) Status() StatusDoc {
	if b == nil {
		return StatusDoc{Schema: StatusSchema, Time: time.Now(), States: map[string]int{}}
	}
	b.mu.Lock()
	doc := StatusDoc{
		Schema:          StatusSchema,
		RunID:           b.runID,
		Time:            time.Now(),
		UptimeSeconds:   time.Since(b.started).Seconds(),
		Workers:         b.workers,
		States:          map[string]int{},
		EWMACellSeconds: b.ewmaSecs,
		EWMAMIPS:        b.ewmaMIPS,
		EventsSent:      b.evSent,
		EventsDropped:   b.evDropped,
	}
	remaining := 0
	for _, c := range b.cells {
		doc.States[string(c.state)]++
		if c.source != "" {
			if doc.Served == nil {
				doc.Served = map[string]int{}
			}
			doc.Served[c.source]++
		}
		switch c.state {
		case CellPending, CellRunning, CellRetrying:
			remaining++
		}
		doc.Cells = append(doc.Cells, CellStatus{
			Workload: c.workload,
			Target:   c.target,
			State:    c.state,
			Attempt:  c.attempt,
			Retired:  c.retired,
			Seconds:  c.seconds,
			Reason:   c.reason,
			Source:   c.source,
		})
	}
	workers := b.workers
	if workers < 1 {
		workers = 1
	}
	if b.ewmaSecs > 0 && remaining > 0 {
		doc.ETASeconds = float64(remaining) * b.ewmaSecs / float64(workers)
	}
	if doc.UptimeSeconds > 0 {
		served := 0
		for _, n := range doc.Served {
			served += n
		}
		if served > 0 {
			doc.ServedPerSecond = float64(served) / doc.UptimeSeconds
		}
	}
	reg := b.reg
	b.mu.Unlock()
	if reg != nil {
		snap := reg.Snapshot()
		for _, g := range snap.Gauges {
			if strings.HasPrefix(g.Name, "sched.") && strings.HasSuffix(g.Name, ".depth") {
				if doc.QueueDepths == nil {
					doc.QueueDepths = map[string]float64{}
				}
				doc.QueueDepths[g.Name] = g.Value
			}
		}
	}
	return doc
}

// meterStride is how many retired events a Meter accumulates locally
// before taking the board lock. 1<<16 keeps the hot-path cost of live
// progress reporting to one mutex acquisition per ~65k instructions.
const meterStride = 1 << 16

// Meter wraps an analysis sink so the board sees a cell's retired
// count advance while it runs. It forwards the batched path when the
// inner sink supports it and obeys the event lifetime contract. A
// pure pass-through otherwise: it must never change what the inner
// sink observes (the byte-identity contract).
type Meter struct {
	board    *Board
	workload string
	target   string
	inner    isa.Sink
	batch    isa.BatchSink // non-nil when inner is batched
	local    uint64        // events since last flush
	total    uint64
}

// NewMeter builds a meter feeding b for the given cell, wrapping
// inner (which may be nil — a run with no analyses still meters). A
// nil board returns nil so unserved runs pay nothing; callers only
// interpose the meter when it is non-nil.
func NewMeter(b *Board, workload, target string, inner isa.Sink) *Meter {
	if b == nil {
		return nil
	}
	m := &Meter{board: b, workload: workload, target: target, inner: inner}
	if bs, ok := inner.(isa.BatchSink); ok {
		m.batch = bs
	}
	return m
}

// Event observes one retired instruction.
func (m *Meter) Event(ev *isa.Event) {
	if m.inner != nil {
		m.inner.Event(ev)
	}
	m.local++
	if m.local >= meterStride {
		m.flush()
	}
}

// Events observes a batch of retired instructions.
func (m *Meter) Events(evs []isa.Event) {
	switch {
	case m.batch != nil:
		m.batch.Events(evs)
	case m.inner != nil:
		for i := range evs {
			m.inner.Event(&evs[i])
		}
	}
	m.local += uint64(len(evs))
	if m.local >= meterStride {
		m.flush()
	}
}

func (m *Meter) flush() {
	m.total += m.local
	m.local = 0
	m.board.Progress(m.workload, m.target, m.total)
}

// Flush pushes any buffered count to the board; the runner calls it
// once when the cell finishes so the final retired count is exact.
// Safe on a nil meter.
func (m *Meter) Flush() {
	if m == nil {
		return
	}
	if m.local > 0 {
		m.flush()
	}
}
