// Package slogx builds the structured loggers of the observability
// layer on the stdlib log/slog backend: a -log-level / -log-format
// flag vocabulary shared by every CLI, a JSONL handler for machine
// consumption, a no-op logger so library code never nil-checks, and
// the cell-attribute convention (run_id, workload, target, attempt)
// that makes every log line of a matrix run joinable against the
// manifest and the /statusz view.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Attribute keys every cell-scoped log line carries. They match the
// manifest `failures` block fields so logs, post-mortems and manifests
// join on the same vocabulary.
const (
	KeyRunID    = "run_id"
	KeyWorkload = "workload"
	KeyTarget   = "target"
	KeyAttempt  = "attempt"
)

// ParseLevel maps the -log-level flag vocabulary onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("slogx: unknown log level %q (want debug, info, warn or error)", s)
}

// New builds a leveled logger writing to w. format is "text" (human
// terminal lines) or "json" (one JSON object per line — JSONL, the
// structured form log shippers ingest). Unknown levels and formats are
// usage errors so the CLIs can exit with their usage code.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json", "jsonl":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("slogx: unknown log format %q (want text or json)", format)
}

// nopHandler discards every record. Implemented here rather than via
// slog.DiscardHandler to stay within the module's language version.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nop = slog.New(nopHandler{})

// Nop returns a logger that discards everything. Library code uses it
// as the nil-default so hot paths never nil-check a logger.
func Nop() *slog.Logger { return nop }

// OrNop returns l, or the no-op logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nop
	}
	return l
}

// WithCell scopes a logger to one matrix cell: every line it emits
// carries the workload, target and attempt attributes (run_id is
// attached once at logger construction by the CLI).
func WithCell(l *slog.Logger, workload, target string, attempt int) *slog.Logger {
	return OrNop(l).With(KeyWorkload, workload, KeyTarget, target, KeyAttempt, attempt)
}

// IsTerminal reports whether f is attached to a terminal. The progress
// heartbeat uses it to stop spamming periodic lines into piped or
// redirected output (satellite of the heartbeat fix: respect non-TTY
// stderr).
func IsTerminal(f *os.File) bool {
	if f == nil {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}
