package slogx

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"":      slog.LevelInfo,
		"info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level must error")
	}
}

// TestNewLeveledJSON: the json format emits one JSON object per line
// (JSONL) and the level threshold filters below it.
func TestNewLeveledJSON(t *testing.T) {
	var b strings.Builder
	l, err := New(&b, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "cell", "stream")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (info filtered):\n%s", len(lines), b.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if rec["msg"] != "kept" || rec["level"] != "WARN" || rec["cell"] != "stream" {
		t.Errorf("record = %v", rec)
	}

	if _, err := New(&b, "info", "xml"); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := New(&b, "loud", "json"); err == nil {
		t.Error("unknown level must error")
	}
}

// TestWithCell: cell-scoped loggers carry the joinable identity attrs,
// and a nil logger degrades to the no-op instead of panicking.
func TestWithCell(t *testing.T) {
	var b strings.Builder
	l, err := New(&b, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	WithCell(l, "stream", "RISC-V/GCC 9.2", 2).Info("x")
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &rec); err != nil {
		t.Fatal(err)
	}
	if rec[KeyWorkload] != "stream" || rec[KeyTarget] != "RISC-V/GCC 9.2" || rec[KeyAttempt] != 2.0 {
		t.Errorf("record = %v", rec)
	}

	WithCell(nil, "w", "t", 1).Error("discarded") // must not panic
}

// TestNop: the no-op logger is enabled at no level and OrNop maps nil
// onto it.
func TestNop(t *testing.T) {
	if Nop().Enabled(nil, slog.LevelError) {
		t.Error("nop logger must be disabled at every level")
	}
	if OrNop(nil) != Nop() {
		t.Error("OrNop(nil) must return the nop logger")
	}
	l := Nop().With("k", "v")
	l.Error("discarded")
	if OrNop(l) != l {
		t.Error("OrNop must pass a non-nil logger through")
	}
}
