package obs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isacmp/internal/isa"
	"isacmp/internal/simeng"
	"isacmp/internal/telemetry"
)

// feed pushes n events with distinguishable PCs through the recorder.
func feed(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		ev := isa.Event{PC: uint64(0x1000 + 4*i), Branch: i%4 == 0, Taken: i%8 == 0}
		if i%3 == 0 {
			ev.LoadSize = 8
		}
		if i%5 == 0 {
			ev.StoreSize = 8
		}
		r.Event(&ev)
	}
}

// TestRecorderRing: the ring keeps exactly the last N events in
// retirement order once it wraps, and the architectural tallies count
// the whole attempt, not just the ring window.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4, "run", "w", "t", 1, nil)
	feed(r, 10)
	evs := r.lastEvents()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d (oldest-first)", i, ev.Seq, want)
		}
		if want := uint64(0x1000 + 4*(6+i)); ev.PC != want {
			t.Errorf("ring[%d].PC = %#x, want %#x", i, ev.PC, want)
		}
	}

	// Before wrapping, the ring returns just what was recorded.
	r2 := NewRecorder(8, "run", "w", "t", 1, nil)
	feed(r2, 3)
	if evs := r2.lastEvents(); len(evs) != 3 || evs[0].Seq != 0 {
		t.Errorf("short ring = %+v, want 3 events from seq 0", evs)
	}
}

// TestRecorderWrapPassThrough: interposing the recorder must not
// change what the inner sink observes, on both delivery paths.
func TestRecorderWrapPassThrough(t *testing.T) {
	inner := &batchSink{}
	r := NewRecorder(4, "run", "w", "t", 1, nil)
	sink := r.Wrap(inner)
	var ev isa.Event
	sink.Event(&ev)
	r.Events(make([]isa.Event, 5))
	if inner.n != 6 || inner.batches != 1 {
		t.Errorf("inner saw %d events / %d batches, want 6/1", inner.n, inner.batches)
	}
	if r.total != 6 {
		t.Errorf("recorder total = %d, want 6", r.total)
	}
}

// TestRecorderDump: the post-mortem artifact lands at the
// deterministic PostmortemPath, carries the classified reason, the
// ring contents and the counter deltas accumulated during the attempt
// (but not counts from before it started).
func TestRecorderDump(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.retired").Add(1000) // pre-attempt noise
	r := NewRecorder(4, "run-d", "stream", "RISC-V/GCC 9.2", 2, reg)
	reg.Counter("sim.retired").Add(64)
	reg.Counter("sim.branches").Add(8)
	feed(r, 10)

	dir := t.TempDir()
	se := &simeng.SimError{
		Kind:    simeng.ErrMemFault,
		PC:      0x4242,
		Retired: 10,
		Err:     errors.New("injected fault"),
	}
	path := r.Dump(dir, se, nil)
	if want := PostmortemPath(dir, "stream", "RISC-V/GCC 9.2", 2); path != want {
		t.Fatalf("dump path = %q, want deterministic %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var pm Postmortem
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatal(err)
	}
	if pm.Schema != PostmortemSchema {
		t.Errorf("schema = %q, want %q", pm.Schema, PostmortemSchema)
	}
	if pm.RunID != "run-d" || pm.Workload != "stream" || pm.Target != "RISC-V/GCC 9.2" || pm.Attempt != 2 {
		t.Errorf("identity = %s/%s/%s a%d", pm.RunID, pm.Workload, pm.Target, pm.Attempt)
	}
	if pm.Reason != "mem-fault" || pm.PC != 0x4242 || pm.Retired != 10 {
		t.Errorf("failure = %s pc=%#x retired=%d, want mem-fault/0x4242/10", pm.Reason, pm.PC, pm.Retired)
	}
	if pm.RingCap != 4 || len(pm.LastEvents) != 4 || pm.LastEvents[0].Seq != 6 {
		t.Errorf("ring = cap %d, %d events from seq %d", pm.RingCap, len(pm.LastEvents), pm.LastEvents[0].Seq)
	}
	deltas := map[string]uint64{}
	for _, c := range pm.Counters {
		deltas[c.Name] = c.Delta
	}
	if deltas["sim.retired"] != 64 || deltas["sim.branches"] != 8 {
		t.Errorf("counter deltas = %+v, want sim.retired=64 sim.branches=8", deltas)
	}
}

// TestPostmortemPathSanitised: cell identity strings with separators
// map onto one flat, safe file name inside dir.
func TestPostmortemPathSanitised(t *testing.T) {
	p := PostmortemPath("/tmp/fl", "str eam", "RISC-V/GCC 9.2", 1)
	base := filepath.Base(p)
	if filepath.Dir(p) != "/tmp/fl" {
		t.Errorf("dir = %q", filepath.Dir(p))
	}
	if base != "postmortem-str-eam-RISC-V-GCC-9.2-a1.json" {
		t.Errorf("file name = %q", base)
	}
	if strings.ContainsAny(base, "/ ") {
		t.Errorf("unsafe characters survived: %q", base)
	}
}

// TestDumpUnwritableDir: a failed dump logs and returns "" instead of
// panicking — a broken flight-recorder path must never turn a
// classified failure into a crash.
func TestDumpUnwritableDir(t *testing.T) {
	r := NewRecorder(4, "run", "w", "t", 1, nil)
	feed(r, 1)
	se := &simeng.SimError{Kind: simeng.ErrPanic, Err: errors.New("x")}
	dir := filepath.Join(t.TempDir(), "file-not-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if path := r.Dump(dir, se, nil); path != "" {
		t.Errorf("dump into non-directory returned %q, want \"\"", path)
	}
}
