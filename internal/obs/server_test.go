package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"isacmp/internal/prof"
	"isacmp/internal/telemetry"
)

// testClient is an http client that keeps no idle connections, so the
// goroutine-leak accounting below only sees server-side goroutines.
func testClient() *http.Client {
	return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
}

func get(t *testing.T, c *http.Client, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServerEndpoints round-trips every endpoint of a live server:
// liveness always up, readiness gated by SetReady, /metrics serving
// exposition text with the right content type, /statusz serving the
// board document and /debug/pprof responding.
func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.retired").Add(5)
	board := NewBoard("run-s", reg)
	board.Register("stream", "rv64")
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr: "127.0.0.1:0", Registry: reg, Board: board,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	c := testClient()

	if code, body, _ := get(t, c, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, _, _ := get(t, c, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before SetReady = %d, want 503", code)
	}
	srv.SetReady(true)
	if code, body, _ := get(t, c, base+"/readyz"); code != 200 || body != "ready\n" {
		t.Errorf("readyz after SetReady = %d %q", code, body)
	}

	code, body, hdr := get(t, c, base+"/metrics")
	if code != 200 || hdr.Get("Content-Type") != PromContentType {
		t.Errorf("metrics = %d, content-type %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "isacmp_sim_retired 5\n") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	code, body, hdr = get(t, c, base+"/statusz")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Errorf("statusz = %d, content-type %q", code, hdr.Get("Content-Type"))
	}
	var doc StatusDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if doc.Schema != StatusSchema || doc.RunID != "run-s" || len(doc.Cells) != 1 {
		t.Errorf("statusz doc = %+v", doc)
	}

	if code, _, _ := get(t, c, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline = %d", code)
	}
}

// TestServerEventsStream: a /events subscriber sees board transitions
// as data: frames, and the stream ends when the server shuts down
// rather than holding Close open.
func TestServerEventsStream(t *testing.T) {
	board := NewBoard("run-e", nil)
	srv, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Board: board})
	if err != nil {
		t.Fatal(err)
	}
	c := testClient()
	resp, err := c.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// The subscription happens inside the handler; poll until it is
	// registered before transitioning, so the event cannot be missed.
	waitFor(t, func() bool {
		board.mu.Lock()
		defer board.mu.Unlock()
		return len(board.subs) == 1
	}, "events subscriber registered")
	board.Running("stream", "rv64", 1)

	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("read SSE frame: %v", err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("frame = %q, want data: prefix", line)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
		t.Fatalf("frame payload: %v", err)
	}
	if ev.Workload != "stream" || ev.State != CellRunning {
		t.Errorf("event = %+v", ev)
	}

	// Close must tear the stream down promptly, not wait for the
	// client to go away.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after Close")
	}
}

// TestObsShutdown is the clean-shutdown contract: cancelling the
// experiment context (what -cell-timeout and -fail-fast do) stops the
// server, ends open SSE streams, and leaves no server goroutines
// behind — Close afterwards is a safe no-op.
func TestObsShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	board := NewBoard("run-x", nil)
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := StartServer(ctx, ServerConfig{Addr: "127.0.0.1:0", Board: board})
	if err != nil {
		cancel()
		t.Fatal(err)
	}

	// Hold an SSE stream open across the cancellation.
	c := testClient()
	resp, err := c.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		io.Copy(io.Discard, resp.Body)
	}()

	cancel()
	// The ctx watcher runs Close; racing our own Close against it is
	// part of the contract.
	srv.Close()
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream survived context cancellation")
	}
	resp.Body.Close()

	// New connections must be refused once the listener is down.
	if _, err := c.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}

	// Every server goroutine (serve loop, ctx watcher, handlers) must
	// have exited. The count can transiently exceed the baseline while
	// the http internals unwind, so poll.
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	}, fmt.Sprintf("goroutines back to baseline %d", before))
}

// waitFor polls cond for up to 5 seconds and fails the test if it
// never becomes true.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProfilezEndpoint: /profilez serves the span profiler's stage
// totals as JSON, streams a Chrome trace under ?format=chrome, and
// degrades to an enabled=false document when the run has no profiler.
func TestProfilezEndpoint(t *testing.T) {
	p := prof.New(2, 16)
	p.Record(0, prof.StageSimulate, "", "stream/rv64-gcc12", 0, 1000)
	p.Record(1, prof.StageSink, "pathlen", "stream/rv64-gcc12", 1000, 1500)
	srv, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	c := testClient()

	code, body, hdr := get(t, c, base+"/profilez")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("profilez = %d, content-type %q", code, hdr.Get("Content-Type"))
	}
	var doc struct {
		Schema  string            `json:"schema"`
		Enabled bool              `json:"enabled"`
		Lanes   int               `json:"lanes"`
		Spans   int               `json:"spans"`
		Stages  []prof.StageTotal `json:"stages"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("profilez is not JSON: %v\n%s", err, body)
	}
	if doc.Schema != ProfileSchema || !doc.Enabled || doc.Lanes != 3 || doc.Spans != 2 {
		t.Errorf("profilez doc = %+v", doc)
	}
	if len(doc.Stages) != 2 || doc.Stages[0].Stage != "simulate" || doc.Stages[1].Stage != "sink:pathlen" {
		t.Errorf("profilez stages = %+v", doc.Stages)
	}

	code, body, _ = get(t, c, base+"/profilez?format=chrome")
	if code != 200 {
		t.Fatalf("profilez chrome = %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, body)
	}
	if len(trace.TraceEvents) != 2 {
		t.Errorf("chrome trace has %d events, want 2", len(trace.TraceEvents))
	}

	// statusz folds the same stage totals in when a profiler is live.
	_, body, _ = get(t, c, base+"/statusz")
	var status StatusDoc
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.StageSeconds["simulate"] != 1e-6 {
		t.Errorf("statusz stage_seconds = %+v", status.StageSeconds)
	}
}

// TestProfilezDisabled: without -profile the endpoint stays up and
// reports the profiler as disabled; statusz omits stage_seconds.
func TestProfilezDisabled(t *testing.T) {
	board := NewBoard("run-noprof", nil)
	srv, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0", Board: board})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := testClient()
	code, body, _ := get(t, c, "http://"+srv.Addr()+"/profilez")
	if code != 200 {
		t.Fatalf("profilez = %d", code)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Enabled {
		t.Error("profilez must report enabled=false without a profiler")
	}
	_, body, _ = get(t, c, "http://"+srv.Addr()+"/statusz")
	if strings.Contains(body, "stage_seconds") {
		t.Errorf("statusz must omit stage_seconds without a profiler:\n%s", body)
	}
}
