package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchwatch compares a fresh benchmark document against the
// committed BENCH_*.json trajectory and reports per-metric
// regressions. It replaces the ad-hoc hotpath-guard comparison with
// one uniform gate: every bench schema declares which wall-time
// metrics may not regress beyond a tolerance, which percentages must
// stay within their recorded budget, and which invariant flags must
// hold.

// WatchTolerance is how much a watched wall-time metric may exceed
// its committed baseline before it counts as a regression — the same
// 10% the retired hotpath-guard used, now applied uniformly.
const WatchTolerance = 1.10

// WatchBudgetHeadroom is how far a re-measured overhead percentage
// may exceed its recorded budget before it counts as a regression.
// An overhead percentage is the difference of two same-length wall
// times, so its run-to-run noise in percentage points is comparable
// to the budget itself; judging a re-measure at exactly the design
// budget would flag noise. The committed document still has to honor
// the budget exactly (its within_budget flag is pinned by a pinRule),
// and a genuine per-event cost regression lands far beyond the
// headroom.
const WatchBudgetHeadroom = 2.0

// ruleKind says how a watched metric is judged.
type ruleKind int

const (
	// ratioRule: fresh value must be <= baseline value * tolerance.
	ratioRule ruleKind = iota
	// budgetRule: the fresh value must be <= the budget recorded in
	// the fresh document itself (field named by budgetField), scaled
	// by WatchBudgetHeadroom for re-measure noise.
	budgetRule
	// flagRule: the fresh boolean must be true.
	flagRule
	// pinRule: the committed (baseline) boolean must be true — the
	// design claim carried by the committed artifact.
	pinRule
	// floorRule: the fresh value must be >= the floor — for speedup
	// ratios where *shrinking* is the regression (e.g. batch_speedup:
	// a genuine batching regression cannot hide behind measurement
	// noise documented in the schema).
	floorRule
	// provenanceRule: the committed document must record a multicore
	// measurement (workers > 1) before its speedup-bearing numbers are
	// treated as multicore claims. Schemas measured at workers: 1 (or
	// predating the workers field) get a warning for legacy documents
	// and a hard regression where the schema demands real provenance.
	provenanceRule
)

type watchRule struct {
	metric      string
	kind        ruleKind
	tolerance   float64 // ratioRule
	budgetField string  // budgetRule
	floor       float64 // floorRule
	// warnOnly downgrades a provenanceRule failure to a warning — the
	// legacy BENCH_PR1–PR5 escape hatch.
	warnOnly bool
}

// watchRules is the per-schema regression contract over the committed
// benchmark trajectory.
var watchRules = map[string][]watchRule{
	"isacmp/bench-matrix/v1": {
		{metric: "sequential_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "parallel_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-resilience/v1": {
		{metric: "armed_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-hotpath/v1": {
		{metric: "hotpath_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		// A genuine batching regression must not hide behind the
		// documented near-1.0 noise at small scale (see
		// batch_speedup_note in the schema): the median-of-reps
		// measurement may dip below 1.0 on a loaded host, but a real
		// regression (batched path structurally slower) lands well
		// under the floor.
		{metric: "batch_speedup", kind: floorRule, floor: 0.90},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-obs/v1": {
		{metric: "served_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-fusion/v1": {
		{metric: "off_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-durable/v1": {
		{metric: "journal_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		// The journal must change no output byte, and a warm second run
		// over the same directory must recompute zero cells.
		{metric: "identical", kind: flagRule},
		{metric: "warm_zero_recompute", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/scaling-report/v1": {
		{metric: "best_wall_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		{metric: "within_budget", kind: pinRule},
		{metric: "profiler_on_overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		// The scaling report exists to prove multicore claims, so it
		// does not get the legacy escape hatch: a committed report
		// measured at workers <= 1 is a hard regression.
		{metric: "workers", kind: provenanceRule},
	},
}

// Finding is one watched metric's verdict.
type Finding struct {
	Schema     string  `json:"schema"`
	Metric     string  `json:"metric"`
	Baseline   float64 `json:"baseline,omitempty"`
	Fresh      float64 `json:"fresh,omitempty"`
	Limit      float64 `json:"limit,omitempty"`
	Regression bool    `json:"regression"`
	// Warning marks an advisory finding that does not fail the gate —
	// e.g. a legacy document whose speedups were measured at
	// workers: 1 and therefore carry no multicore evidence.
	Warning bool   `json:"warning,omitempty"`
	Message string `json:"message"`
}

// LoadDoc reads a benchmark JSON document and returns its generic
// form plus the schema string.
func LoadDoc(path string) (map[string]any, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("benchwatch: %s: %w", path, err)
	}
	schema, _ := doc["schema"].(string)
	if schema == "" {
		return nil, "", fmt.Errorf("benchwatch: %s: missing schema field", path)
	}
	return doc, schema, nil
}

func num(doc map[string]any, key string) (float64, bool) {
	v, ok := doc[key].(float64)
	return v, ok
}

// Watch judges a fresh benchmark document against its committed
// baseline. Both must carry the same schema; unknown schemas are an
// error so a new BENCH document cannot silently escape the gate.
func Watch(baseline, fresh map[string]any) ([]Finding, error) {
	bs, _ := baseline["schema"].(string)
	fs, _ := fresh["schema"].(string)
	if bs != fs {
		return nil, fmt.Errorf("benchwatch: schema mismatch: baseline %q vs fresh %q", bs, fs)
	}
	rules, ok := watchRules[fs]
	if !ok {
		return nil, fmt.Errorf("benchwatch: no watch rules for schema %q", fs)
	}
	var out []Finding
	for _, r := range rules {
		f := Finding{Schema: fs, Metric: r.metric}
		switch r.kind {
		case ratioRule:
			base, bok := num(baseline, r.metric)
			cur, cok := num(fresh, r.metric)
			if !bok || !cok || base <= 0 {
				f.Message = fmt.Sprintf("%s: not comparable (baseline %v, fresh %v)", r.metric, baseline[r.metric], fresh[r.metric])
				out = append(out, f)
				continue
			}
			f.Baseline, f.Fresh, f.Limit = base, cur, base*r.tolerance
			f.Regression = cur > f.Limit
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.3f regressed >%.0f%% over committed %.3f (limit %.3f)",
					r.metric, cur, (r.tolerance-1)*100, base, f.Limit)
			} else {
				f.Message = fmt.Sprintf("%s: %.3f vs committed %.3f (limit %.3f) ok", r.metric, cur, base, f.Limit)
			}
		case budgetRule:
			cur, cok := num(fresh, r.metric)
			budget, bok := num(fresh, r.budgetField)
			if !cok || !bok {
				f.Message = fmt.Sprintf("%s: not comparable (fresh %v, %s %v)", r.metric, fresh[r.metric], r.budgetField, fresh[r.budgetField])
				out = append(out, f)
				continue
			}
			f.Fresh, f.Limit = cur, budget*WatchBudgetHeadroom
			f.Regression = cur > f.Limit
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.2f exceeds budget %.2f with headroom (limit %.2f)", r.metric, cur, budget, f.Limit)
			} else {
				f.Message = fmt.Sprintf("%s: %.2f within budget %.2f (+headroom, limit %.2f) ok", r.metric, cur, budget, f.Limit)
			}
		case flagRule:
			v, ok := fresh[r.metric].(bool)
			f.Regression = !ok || !v
			if f.Regression {
				f.Message = fmt.Sprintf("%s: expected true, got %v", r.metric, fresh[r.metric])
			} else {
				f.Message = fmt.Sprintf("%s: true ok", r.metric)
			}
		case pinRule:
			v, ok := baseline[r.metric].(bool)
			f.Regression = !ok || !v
			if f.Regression {
				f.Message = fmt.Sprintf("%s: committed doc must pin true, got %v", r.metric, baseline[r.metric])
			} else {
				f.Message = fmt.Sprintf("%s: pinned true in committed doc ok", r.metric)
			}
		case floorRule:
			cur, cok := num(fresh, r.metric)
			if !cok {
				f.Message = fmt.Sprintf("%s: not comparable (fresh %v)", r.metric, fresh[r.metric])
				out = append(out, f)
				continue
			}
			f.Fresh, f.Limit = cur, r.floor
			f.Regression = cur < r.floor
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.3f below floor %.3f — genuine regression, not measurement noise", r.metric, cur, r.floor)
			} else {
				f.Message = fmt.Sprintf("%s: %.3f above floor %.3f ok", r.metric, cur, r.floor)
			}
		case provenanceRule:
			w, ok := num(baseline, r.metric)
			f.Baseline = w
			multicore := ok && w > 1
			if !multicore {
				if r.warnOnly {
					f.Warning = true
					f.Message = fmt.Sprintf("%s: committed doc measured at workers %v — its speedups are not multicore evidence (legacy, warning only)", r.metric, baseline[r.metric])
				} else {
					f.Regression = true
					f.Message = fmt.Sprintf("%s: committed doc measured at workers %v — schema requires a multicore run", r.metric, baseline[r.metric])
				}
			} else {
				f.Message = fmt.Sprintf("%s: committed doc measured at workers %.0f ok", r.metric, w)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// WatchFiles is Watch over two document paths.
func WatchFiles(baselinePath, freshPath string) ([]Finding, error) {
	baseline, _, err := LoadDoc(baselinePath)
	if err != nil {
		return nil, err
	}
	fresh, _, err := LoadDoc(freshPath)
	if err != nil {
		return nil, err
	}
	return Watch(baseline, fresh)
}

// HasRegression reports whether any finding is a regression.
func HasRegression(fs []Finding) bool {
	for _, f := range fs {
		if f.Regression {
			return true
		}
	}
	return false
}
