package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"isacmp/internal/benchdb"
)

// benchwatch compares a fresh benchmark document against the
// committed BENCH_*.json trajectory and reports per-metric
// regressions. It replaces the ad-hoc hotpath-guard comparison with
// one uniform gate: every bench schema declares which wall-time
// metrics may not regress beyond a tolerance, which percentages must
// stay within their recorded budget, and which invariant flags must
// hold.
//
// Since the benchdb ledger landed, the gate is noise-aware and
// provenance-aware: wall-time ratio limits widen with the measurement
// noise the documents' probes recorded, and two documents measured on
// different hosts (fingerprint mismatch, or a shifted noise-probe
// median on the same fingerprint) are refused outright with
// ErrHostDrift — comparing them would report host drift as a code
// regression, which is exactly the failure mode that forced the
// BENCH_PR7 re-baseline.

// WatchTolerance is how much a watched wall-time metric may exceed
// its committed baseline before it counts as a regression — the same
// 10% the retired hotpath-guard used, now the *floor* of a
// noise-aware limit.
const WatchTolerance = 1.10

// WatchNoiseSigma scales the documents' recorded noise (robust CV of
// the calibrated probe) into extra ratio headroom: the effective
// tolerance is max(WatchTolerance, 1 + WatchNoiseSigma·CV). On a
// quiet host (probe CV well under 2%) the classic 10% floor
// dominates; on a host whose own probe scattered, the gate widens
// instead of crying regression at noise.
const WatchNoiseSigma = 6.0

// WatchBudgetHeadroom is how far a re-measured overhead percentage
// may exceed its recorded budget before it counts as a regression.
// An overhead percentage is the difference of two same-length wall
// times, so its run-to-run noise in percentage points is comparable
// to the budget itself; judging a re-measure at exactly the design
// budget would flag noise. The committed document still has to honor
// the budget exactly (its within_budget flag is pinned by a pinRule),
// and a genuine per-event cost regression lands far beyond the
// headroom.
const WatchBudgetHeadroom = 2.0

// ErrHostDrift marks a refused comparison: the two documents were not
// measured on the same effective host, so a metric delta between them
// is host drift, not code regression. Callers map it to the partial
// exit code (3) rather than the gate-failure exit code (1).
var ErrHostDrift = errors.New("benchwatch: host drift, not regression")

// ruleKind says how a watched metric is judged.
type ruleKind int

const (
	// ratioRule: fresh value must be <= baseline value * the
	// noise-aware tolerance.
	ratioRule ruleKind = iota
	// budgetRule: the fresh value must be <= the budget recorded in
	// the fresh document itself (field named by budgetField), scaled
	// by WatchBudgetHeadroom for re-measure noise.
	budgetRule
	// flagRule: the fresh boolean must be true.
	flagRule
	// pinRule: the committed (baseline) boolean must be true — the
	// design claim carried by the committed artifact.
	pinRule
	// floorRule: the fresh value must be >= the floor — for speedup
	// ratios where *shrinking* is the regression (e.g. batch_speedup:
	// a genuine batching regression cannot hide behind measurement
	// noise documented in the schema).
	floorRule
	// provenanceRule: the committed document must record a multicore
	// measurement (workers > 1) before its speedup-bearing numbers are
	// treated as multicore claims. Schemas measured at workers: 1 (or
	// predating the workers field) get a warning for legacy documents
	// and a hard regression where the schema demands real provenance.
	provenanceRule
)

type watchRule struct {
	metric      string
	kind        ruleKind
	tolerance   float64 // ratioRule
	budgetField string  // budgetRule
	floor       float64 // floorRule
	// warnOnly downgrades a provenanceRule failure to a warning — the
	// legacy BENCH_PR1–PR5 escape hatch.
	warnOnly bool
}

// watchRules is the per-schema regression contract over the committed
// benchmark trajectory, keyed by schema *family* (the schema string
// with its /vN version suffix stripped): a v1 document written before
// host fingerprints existed is judged by the same rules as its v2
// successor, so a version bump neither severs the gate nor lets a
// document escape it.
var watchRules = map[string][]watchRule{
	"isacmp/bench-matrix": {
		{metric: "sequential_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "parallel_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-resilience": {
		{metric: "armed_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-hotpath": {
		{metric: "hotpath_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		// A genuine batching regression must not hide behind the
		// documented near-1.0 noise at small scale (see
		// batch_speedup_note in the schema): the median-of-reps
		// measurement may dip below 1.0 on a loaded host, but a real
		// regression (batched path structurally slower) lands well
		// under the floor.
		{metric: "batch_speedup", kind: floorRule, floor: 0.90},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-obs": {
		{metric: "served_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-fusion": {
		{metric: "off_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/bench-durable": {
		{metric: "journal_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		// The journal must change no output byte, and a warm second run
		// over the same directory must recompute zero cells.
		{metric: "identical", kind: flagRule},
		{metric: "warm_zero_recompute", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
	"isacmp/scaling-report": {
		{metric: "best_wall_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "identical", kind: flagRule},
		{metric: "within_budget", kind: pinRule},
		{metric: "profiler_on_overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		// The scaling report exists to prove multicore claims, so it
		// does not get the legacy escape hatch: a committed report
		// measured at workers <= 1 is a hard regression.
		{metric: "workers", kind: provenanceRule},
	},
	"isacmp/bench-benchdb": {
		{metric: "bare_seconds", kind: ratioRule, tolerance: WatchTolerance},
		{metric: "within_budget", kind: pinRule},
		{metric: "overhead_percent", kind: budgetRule, budgetField: "budget_percent"},
		// Ledger appends and the noise probe must change no output byte.
		{metric: "identical", kind: flagRule},
		{metric: "workers", kind: provenanceRule, warnOnly: true},
	},
}

// Finding is one watched metric's verdict.
type Finding struct {
	Schema     string  `json:"schema"`
	Metric     string  `json:"metric"`
	Baseline   float64 `json:"baseline,omitempty"`
	Fresh      float64 `json:"fresh,omitempty"`
	Limit      float64 `json:"limit,omitempty"`
	Regression bool    `json:"regression"`
	// Warning marks an advisory finding that does not fail the gate —
	// e.g. a legacy document whose speedups were measured at
	// workers: 1 and therefore carry no multicore evidence.
	Warning bool   `json:"warning,omitempty"`
	Message string `json:"message"`
}

// LoadDoc reads a benchmark JSON document and returns its generic
// form plus the schema string.
func LoadDoc(path string) (map[string]any, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("benchwatch: %s: %w", path, err)
	}
	schema, _ := doc["schema"].(string)
	if schema == "" {
		return nil, "", fmt.Errorf("benchwatch: %s: missing schema field", path)
	}
	return doc, schema, nil
}

func num(doc map[string]any, key string) (float64, bool) {
	v, ok := doc[key].(float64)
	return v, ok
}

// provenance decodes the fingerprint and noise blocks a v2 document
// carries (nils for a legacy v1 document).
func provenance(doc map[string]any) (*benchdb.Fingerprint, *benchdb.Probe) {
	e := benchdb.EntryFromDoc(doc, "")
	return e.Fingerprint, e.Noise
}

// noiseTolerance is the noise-aware ratio tolerance for a pair of
// documents: the classic floor widened by the worst recorded probe
// dispersion of either side.
func noiseTolerance(floor float64, baseNoise, freshNoise *benchdb.Probe) float64 {
	cv := 0.0
	if baseNoise != nil && baseNoise.CV > cv {
		cv = baseNoise.CV
	}
	if freshNoise != nil && freshNoise.CV > cv {
		cv = freshNoise.CV
	}
	if t := 1 + WatchNoiseSigma*cv; t > floor {
		return t
	}
	return floor
}

// Watch judges a fresh benchmark document against its committed
// baseline. Both must belong to the same schema family (version
// suffixes may differ — a v1 baseline is readable against a v2
// fresh document); unknown families are an error so a new BENCH
// document cannot silently escape the gate.
//
// Before any metric is compared, the documents' measurement
// provenance is reconciled: if both carry host fingerprints and they
// disagree — or the fingerprints agree but the calibrated noise-probe
// median shifted beyond benchdb.NoiseDriftTolerance — Watch refuses
// the comparison with ErrHostDrift. When only one side carries
// provenance (a legacy v1 baseline), the comparison proceeds with a
// warning finding: drift cannot be ruled out.
func Watch(baseline, fresh map[string]any) ([]Finding, error) {
	bs, _ := baseline["schema"].(string)
	fs, _ := fresh["schema"].(string)
	family := benchdb.SchemaFamily(fs)
	if benchdb.SchemaFamily(bs) != family {
		return nil, fmt.Errorf("benchwatch: schema mismatch: baseline %q vs fresh %q", bs, fs)
	}
	rules, ok := watchRules[family]
	if !ok {
		return nil, fmt.Errorf("benchwatch: no watch rules for schema %q", fs)
	}
	baseFP, baseNoise := provenance(baseline)
	freshFP, freshNoise := provenance(fresh)
	drift := benchdb.DetectDrift(baseFP, freshFP, baseNoise, freshNoise)
	if drift.HostDrifted() {
		return nil, fmt.Errorf("%w: %s — re-baseline the committed document on this host instead of chasing a phantom regression", ErrHostDrift, drift.Detail)
	}
	var out []Finding
	if drift.Kind == "unknown" {
		out = append(out, Finding{
			Schema:  fs,
			Metric:  "fingerprint",
			Warning: true,
			Message: fmt.Sprintf("fingerprint: %s (comparison proceeds; a wall-time miss here may be host drift)", drift.Detail),
		})
	} else {
		out = append(out, Finding{
			Schema:  fs,
			Metric:  "fingerprint",
			Message: fmt.Sprintf("fingerprint: %s ok", drift.Detail),
		})
	}
	for _, r := range rules {
		f := Finding{Schema: fs, Metric: r.metric}
		switch r.kind {
		case ratioRule:
			base, bok := num(baseline, r.metric)
			cur, cok := num(fresh, r.metric)
			if !bok || !cok || base <= 0 {
				f.Message = fmt.Sprintf("%s: not comparable (baseline %v, fresh %v)", r.metric, baseline[r.metric], fresh[r.metric])
				out = append(out, f)
				continue
			}
			tol := noiseTolerance(r.tolerance, baseNoise, freshNoise)
			f.Baseline, f.Fresh, f.Limit = base, cur, base*tol
			f.Regression = cur > f.Limit
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.3f regressed >%.0f%% over committed %.3f (noise-aware limit %.3f)",
					r.metric, cur, (tol-1)*100, base, f.Limit)
			} else {
				f.Message = fmt.Sprintf("%s: %.3f vs committed %.3f (noise-aware limit %.3f) ok", r.metric, cur, base, f.Limit)
			}
		case budgetRule:
			cur, cok := num(fresh, r.metric)
			budget, bok := num(fresh, r.budgetField)
			if !cok || !bok {
				f.Message = fmt.Sprintf("%s: not comparable (fresh %v, %s %v)", r.metric, fresh[r.metric], r.budgetField, fresh[r.budgetField])
				out = append(out, f)
				continue
			}
			f.Fresh, f.Limit = cur, budget*WatchBudgetHeadroom
			f.Regression = cur > f.Limit
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.2f exceeds budget %.2f with headroom (limit %.2f)", r.metric, cur, budget, f.Limit)
			} else {
				f.Message = fmt.Sprintf("%s: %.2f within budget %.2f (+headroom, limit %.2f) ok", r.metric, cur, budget, f.Limit)
			}
		case flagRule:
			v, ok := fresh[r.metric].(bool)
			f.Regression = !ok || !v
			if f.Regression {
				f.Message = fmt.Sprintf("%s: expected true, got %v", r.metric, fresh[r.metric])
			} else {
				f.Message = fmt.Sprintf("%s: true ok", r.metric)
			}
		case pinRule:
			v, ok := baseline[r.metric].(bool)
			f.Regression = !ok || !v
			if f.Regression {
				f.Message = fmt.Sprintf("%s: committed doc must pin true, got %v", r.metric, baseline[r.metric])
			} else {
				f.Message = fmt.Sprintf("%s: pinned true in committed doc ok", r.metric)
			}
		case floorRule:
			cur, cok := num(fresh, r.metric)
			if !cok {
				f.Message = fmt.Sprintf("%s: not comparable (fresh %v)", r.metric, fresh[r.metric])
				out = append(out, f)
				continue
			}
			f.Fresh, f.Limit = cur, r.floor
			f.Regression = cur < r.floor
			if f.Regression {
				f.Message = fmt.Sprintf("%s: %.3f below floor %.3f — genuine regression, not measurement noise", r.metric, cur, r.floor)
			} else {
				f.Message = fmt.Sprintf("%s: %.3f above floor %.3f ok", r.metric, cur, r.floor)
			}
		case provenanceRule:
			w, ok := num(baseline, r.metric)
			f.Baseline = w
			multicore := ok && w > 1
			if !multicore {
				if r.warnOnly {
					f.Warning = true
					f.Message = fmt.Sprintf("%s: committed doc measured at workers %v — its speedups are not multicore evidence (legacy, warning only)", r.metric, baseline[r.metric])
				} else {
					f.Regression = true
					f.Message = fmt.Sprintf("%s: committed doc measured at workers %v — schema requires a multicore run", r.metric, baseline[r.metric])
				}
			} else {
				f.Message = fmt.Sprintf("%s: committed doc measured at workers %.0f ok", r.metric, w)
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// WatchFiles is Watch over two document paths.
func WatchFiles(baselinePath, freshPath string) ([]Finding, error) {
	baseline, _, err := LoadDoc(baselinePath)
	if err != nil {
		return nil, err
	}
	fresh, _, err := LoadDoc(freshPath)
	if err != nil {
		return nil, err
	}
	return Watch(baseline, fresh)
}

// HasRegression reports whether any finding is a regression.
func HasRegression(fs []Finding) bool {
	for _, f := range fs {
		if f.Regression {
			return true
		}
	}
	return false
}
