package obs

import (
	"testing"
	"time"

	"isacmp/internal/isa"
	"isacmp/internal/telemetry"
)

// TestBoardLifecycle drives two cells through the full state machine
// and checks the /statusz document: per-state tallies, registration
// order, the throughput EWMAs and a positive ETA while work remains.
func TestBoardLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("sched.q0.depth").Set(2)
	b := NewBoard("run-1", reg)
	b.SetWorkers(2)
	b.Register("stream", "rv64")
	b.Register("stream", "a64")
	b.Register("lbm", "rv64")

	doc := b.Status()
	if doc.Schema != StatusSchema || doc.RunID != "run-1" {
		t.Fatalf("schema/run_id = %s/%s", doc.Schema, doc.RunID)
	}
	if doc.States["pending"] != 3 || len(doc.Cells) != 3 {
		t.Fatalf("want 3 pending cells, got %+v", doc.States)
	}
	if doc.Cells[0].Workload != "stream" || doc.Cells[2].Workload != "lbm" {
		t.Errorf("cells must keep registration order: %+v", doc.Cells)
	}
	if doc.QueueDepths["sched.q0.depth"] != 2 {
		t.Errorf("queue depths = %+v, want sched.q0.depth=2", doc.QueueDepths)
	}

	b.Running("stream", "rv64", 1)
	b.Done("stream", "rv64", 2.0, 4_000_000)
	b.Running("stream", "a64", 1)
	b.Retrying("stream", "a64", 1, "mem-fault")
	b.Running("stream", "a64", 2)
	b.Failed("stream", "a64", 2, "mem-fault")

	doc = b.Status()
	if doc.States["done"] != 1 || doc.States["failed"] != 1 || doc.States["pending"] != 1 {
		t.Fatalf("states = %+v, want one each of done/failed/pending", doc.States)
	}
	if doc.EWMACellSeconds != 2.0 {
		t.Errorf("ewma seconds = %v, want 2 after a single sample", doc.EWMACellSeconds)
	}
	if doc.EWMAMIPS != 2.0 { // 4M retired / 2s / 1e6
		t.Errorf("ewma mips = %v, want 2", doc.EWMAMIPS)
	}
	// one pending cell, EWMA 2s, 2 workers => ETA 1s.
	if doc.ETASeconds != 1.0 {
		t.Errorf("eta = %v, want 1", doc.ETASeconds)
	}
	for _, c := range doc.Cells {
		if c.Workload == "stream" && c.Target == "a64" {
			if c.State != CellFailed || c.Reason != "mem-fault" || c.Attempt != 2 {
				t.Errorf("failed cell = %+v", c)
			}
		}
	}

	// A second Done folds into the EWMA rather than replacing it.
	b.Running("lbm", "rv64", 1)
	b.Done("lbm", "rv64", 4.0, 4_000_000)
	doc = b.Status()
	want := ewmaAlpha*4.0 + (1-ewmaAlpha)*2.0
	if d := doc.EWMACellSeconds - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("ewma seconds = %v, want ~%v", doc.EWMACellSeconds, want)
	}
	if doc.ETASeconds != 0 {
		t.Errorf("eta = %v, want 0 once no cell remains", doc.ETASeconds)
	}
}

// TestBoardEvents: every transition reaches a subscriber with a
// strictly increasing sequence number, and a full subscriber buffer
// drops events instead of blocking the matrix.
func TestBoardEvents(t *testing.T) {
	b := NewBoard("run-ev", nil)
	ch := b.Subscribe()
	defer b.Unsubscribe(ch)

	b.Running("stream", "rv64", 1)
	b.Done("stream", "rv64", 1.0, 100)

	ev1, ev2 := <-ch, <-ch
	if ev1.State != CellRunning || ev2.State != CellDone {
		t.Fatalf("events = %v then %v, want running then done", ev1.State, ev2.State)
	}
	if ev1.RunID != "run-ev" || ev1.Workload != "stream" || ev1.Target != "rv64" {
		t.Errorf("event identity = %+v", ev1)
	}
	if ev2.Seq <= ev1.Seq {
		t.Errorf("seq must increase: %d then %d", ev1.Seq, ev2.Seq)
	}

	// Fill the buffer past capacity without reading: transitions must
	// not block (this would deadlock the test if they did) and the
	// overflow is dropped, visible as a sequence gap after draining.
	for i := 0; i < cap(ch)+64; i++ {
		b.Running("stream", "rv64", i)
	}
	drained := 0
	for len(ch) > 0 {
		<-ch
		drained++
	}
	if drained != cap(ch) {
		t.Errorf("drained %d events, want exactly the buffer cap %d", drained, cap(ch))
	}
}

// TestServedCellsExcludedFromETA pins the -resume ETA contract: cells
// served from the journal or content cache never feed the throughput
// EWMAs (their replay takes microseconds and says nothing about how
// fast the remaining cells will compute), and they surface instead as
// the separate served counts + served_per_second resumed rate.
func TestServedCellsExcludedFromETA(t *testing.T) {
	b := NewBoard("run-resume", nil)
	b.SetWorkers(1)
	b.Register("stream", "rv64")
	b.Register("stream", "a64")
	b.Register("lbm", "rv64")
	b.Register("lbm", "a64")

	// Two cells replay instantly from the durability layer...
	b.Served("stream", "rv64", "journal", false, "", 1_000_000)
	b.Served("stream", "a64", "cache", false, "", 1_000_000)
	doc := b.Status()
	if doc.EWMACellSeconds != 0 || doc.EWMAMIPS != 0 {
		t.Fatalf("served cells fed the EWMAs: secs=%v mips=%v", doc.EWMACellSeconds, doc.EWMAMIPS)
	}
	if doc.ETASeconds != 0 {
		t.Fatalf("ETA from served cells alone = %v, want 0 (no throughput evidence yet)", doc.ETASeconds)
	}
	if doc.Served["journal"] != 1 || doc.Served["cache"] != 1 {
		t.Fatalf("served split = %+v", doc.Served)
	}
	if doc.ServedPerSecond <= 0 {
		t.Fatalf("served_per_second = %v, want > 0 once cells were replayed", doc.ServedPerSecond)
	}

	// ...then one real cell computes in 4s: the ETA for the last
	// pending cell must come from the computed pace alone. Had the two
	// served cells fed the EWMA, it would read ~a third of this.
	b.Running("lbm", "rv64", 1)
	b.Done("lbm", "rv64", 4.0, 4_000_000)
	doc = b.Status()
	if doc.EWMACellSeconds != 4.0 {
		t.Fatalf("ewma seconds = %v, want 4.0 from the computed cell only", doc.EWMACellSeconds)
	}
	if doc.ETASeconds != 4.0 {
		t.Fatalf("eta = %v, want 4.0 (1 remaining cell / 1 worker at computed pace)", doc.ETASeconds)
	}

	// A board with no served cells reports no resumed rate at all.
	fresh := NewBoard("run-fresh", nil)
	fresh.Register("w", "t")
	if doc := fresh.Status(); doc.ServedPerSecond != 0 {
		t.Fatalf("fresh run served_per_second = %v, want 0", doc.ServedPerSecond)
	}
}

// TestNilBoard: every method is a no-op on a nil board so unserved
// runs can drive the calls unconditionally, and NewMeter returns a nil
// meter (whose Flush is also safe).
func TestNilBoard(t *testing.T) {
	var b *Board
	b.SetWorkers(4)
	b.Register("w", "t")
	b.Running("w", "t", 1)
	b.Retrying("w", "t", 1, "x")
	b.Done("w", "t", 1, 1)
	b.Failed("w", "t", 1, "x")
	b.Progress("w", "t", 10)
	b.Unsubscribe(b.Subscribe())
	if b.RunID() != "" {
		t.Error("nil board must have empty run ID")
	}
	doc := b.Status()
	if doc.Schema != StatusSchema || len(doc.Cells) != 0 {
		t.Errorf("nil board status = %+v", doc)
	}
	m := NewMeter(nil, "w", "t", nil)
	if m != nil {
		t.Fatal("NewMeter(nil board) must return nil")
	}
	m.Flush() // must not panic
}

// countSink counts events through the single-event interface.
type countSink struct{ n int }

func (s *countSink) Event(*isa.Event) { s.n++ }

// batchSink additionally counts batched deliveries.
type batchSink struct {
	countSink
	batches int
}

func (s *batchSink) Events(evs []isa.Event) {
	s.batches++
	s.n += len(evs)
}

// TestMeterPassThrough: the meter forwards every event to the inner
// sink (preserving the batched path when available) and reports the
// exact retired count to the board after Flush.
func TestMeterPassThrough(t *testing.T) {
	b := NewBoard("run-m", nil)
	b.Register("w", "t")

	inner := &batchSink{}
	m := NewMeter(b, "w", "t", inner)
	var ev isa.Event
	m.Event(&ev)
	m.Events(make([]isa.Event, 7))
	m.Flush()

	if inner.n != 8 {
		t.Errorf("inner sink saw %d events, want 8", inner.n)
	}
	if inner.batches != 1 {
		t.Errorf("batched path not preserved: %d batch calls, want 1", inner.batches)
	}
	doc := b.Status()
	if doc.Cells[0].Retired != 8 {
		t.Errorf("board retired = %d, want 8", doc.Cells[0].Retired)
	}

	// An un-batched inner sink gets per-event delivery for batches.
	plain := &countSink{}
	m2 := NewMeter(b, "w", "t", plain)
	m2.Events(make([]isa.Event, 3))
	if plain.n != 3 {
		t.Errorf("plain sink saw %d events, want 3", plain.n)
	}

	// The stride flush happens without an explicit Flush once enough
	// events pass.
	m3 := NewMeter(b, "w", "t", nil)
	m3.Events(make([]isa.Event, meterStride))
	if got := b.Status().Cells[0].Retired; got != meterStride {
		t.Errorf("stride flush: retired = %d, want %d", got, meterStride)
	}
}

// TestSlowSubscriberDropsCounted pins the drop-not-stall contract of
// the /events fan-out: a subscriber that never drains loses events
// past its buffer, the board counts every delivery and every drop on
// /statusz and in the obs.* registry counters, and the transitions
// themselves never block.
func TestSlowSubscriberDropsCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := NewBoard("run-drop", reg)
	slow := b.Subscribe() // never drained: fills its 256 buffer, then drops
	defer b.Unsubscribe(slow)

	const transitions = 400 // > the subscriber buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < transitions; i++ {
			b.Running("w", "t", 1)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("transitions stalled behind a slow subscriber")
	}

	doc := b.Status()
	wantSent := uint64(cap(slow))
	wantDropped := uint64(transitions) - wantSent
	if doc.EventsSent != wantSent || doc.EventsDropped != wantDropped {
		t.Errorf("statusz events sent/dropped = %d/%d, want %d/%d",
			doc.EventsSent, doc.EventsDropped, wantSent, wantDropped)
	}
	snap := reg.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["obs.events.sent"] != wantSent || counters["obs.events.dropped"] != wantDropped {
		t.Errorf("registry counters sent/dropped = %d/%d, want %d/%d",
			counters["obs.events.sent"], counters["obs.events.dropped"], wantSent, wantDropped)
	}

	// A draining subscriber on a fresh board records sends only.
	b2 := NewBoard("run-ok", nil)
	ch := b2.Subscribe()
	defer b2.Unsubscribe(ch)
	b2.Running("w", "t", 1)
	<-ch
	if doc := b2.Status(); doc.EventsSent != 1 || doc.EventsDropped != 0 {
		t.Errorf("drained subscriber: sent/dropped = %d/%d, want 1/0", doc.EventsSent, doc.EventsDropped)
	}
}
