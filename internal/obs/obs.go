// Package obs is the live control plane layered over the passive
// telemetry package: an embedded HTTP server exposing the metrics
// registry as Prometheus text (/metrics), liveness and readiness
// probes (/healthz, /readyz), a live matrix status view (/statusz), a
// server-sent-event stream of cell lifecycle transitions (/events)
// and the stdlib pprof handlers (/debug/pprof); a status Board that
// the report runner drives through cell transitions; a bounded
// flight recorder producing post-mortem JSON artifacts for cells that
// die with a SimError; and the bench-watch regression comparator over
// the committed BENCH_*.json trajectory.
//
// Layering: telemetry stays passive (counters you read after the run);
// obs makes the same registry queryable while the matrix is running.
// obs imports telemetry, isa and simeng only — report imports obs,
// never the reverse.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// NewRunID returns a fresh run identifier: UTC timestamp for humans
// plus random bytes for uniqueness, e.g. "20260805T120301Z-9f2c4a81".
// Every log line, status document and post-mortem artifact of a run
// carries it, so artifacts from concurrent or repeated runs never
// collide and always join.
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively impossible; fall back to
		// the clock alone rather than failing the run over an ID.
		return time.Now().UTC().Format("20060102T150405Z")
	}
	return fmt.Sprintf("%s-%s", time.Now().UTC().Format("20060102T150405Z"), hex.EncodeToString(b[:]))
}
