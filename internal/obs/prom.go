package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"isacmp/internal/telemetry"
)

// PromContentType is the Prometheus text exposition content type the
// /metrics handler serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a dotted registry metric name ("sched.queue.depth")
// onto a valid Prometheus metric name: the isacmp_ namespace prefix
// plus the name with every character outside [a-zA-Z0-9_:] replaced by
// an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("isacmp_") + len(name))
	b.WriteString("isacmp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promHelp escapes a HELP string per the exposition format: backslash
// and newline are the only characters that need escaping.
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// promFloat renders a float64 sample value. strconv's shortest 'g'
// form is valid exposition syntax, and it spells infinities
// "+Inf"/"-Inf" and NaN "NaN" exactly as the format requires.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format v0.0.4. Metrics keep registry creation order;
// histogram buckets are emitted cumulatively with a trailing +Inf
// bucket, _sum and _count, as scrapers require. The HELP line carries
// the original dotted registry name so a scrape can be joined back
// against the manifest's metrics block.
func WritePrometheus(w io.Writer, s telemetry.Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s isacmp counter %s\n# TYPE %s counter\n%s %d\n",
			name, promHelp(c.Name), name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s isacmp gauge %s\n# TYPE %s gauge\n%s %s\n",
			name, promHelp(g.Name), name, name, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s isacmp histogram %s\n# TYPE %s histogram\n",
			name, promHelp(h.Name), name); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if len(h.Buckets) > len(h.Bounds) {
			cum += h.Buckets[len(h.Bounds)] // overflow bucket
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
