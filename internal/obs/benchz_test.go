package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"isacmp/internal/benchdb"
	"isacmp/internal/telemetry"
)

// benchzFixture writes a small committed trajectory plus a ledger
// with fingerprinted entries, and returns the configured source.
func benchzFixture(t *testing.T, reg *telemetry.Registry) *BenchSource {
	t.Helper()
	dir := t.TempDir()
	writeDoc := func(name string, doc map[string]any) {
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeDoc("BENCH_PR2.json", map[string]any{
		"schema":             "isacmp/bench-matrix/v1",
		"sequential_seconds": 10.0,
		"parallel_seconds":   4.0,
		"identical":          true,
	})
	writeDoc("BENCH_PR10.json", map[string]any{
		"schema":       "isacmp/bench-benchdb/v1",
		"bare_seconds": 2.0,
		"identical":    true,
	})
	// A non-BENCH json and a broken BENCH doc must both be ignored.
	writeDoc("OTHER.json", map[string]any{"schema": "isacmp/bench-matrix/v1"})
	if err := os.WriteFile(filepath.Join(dir, "BENCH_BROKEN.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	ledgerPath := filepath.Join(dir, "BENCHDB.jsonl")
	l, _, err := benchdb.Open(ledgerPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(benchdb.Entry{
		Schema:  "isacmp/bench-matrix/v2",
		Doc:     "BENCH_PR2.json",
		Metrics: map[string]float64{"sequential_seconds": 12.0},
		Noise:   &benchdb.Probe{Reps: 7, MedianSeconds: 0.002, MinSeconds: 0.0019, CV: 0.021},
	}); err != nil {
		t.Fatal(err)
	}
	return &BenchSource{Dir: dir, LedgerPath: ledgerPath, Registry: reg}
}

// TestBenchzLoad: committed docs and ledger entries merge into family
// series, the broken doc is skipped, and the benchdb.* gauges land in
// the registry.
func TestBenchzLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := benchzFixture(t, reg)
	doc, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != BenchzSchema {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Docs != 2 {
		t.Errorf("docs = %d, want 2 (broken one skipped)", doc.Docs)
	}
	if doc.LedgerEntries != 1 || doc.TornTail {
		t.Errorf("ledger: %d torn=%v", doc.LedgerEntries, doc.TornTail)
	}
	if doc.Host == nil || doc.Host.NumCPU <= 0 {
		t.Errorf("host fingerprint missing: %+v", doc.Host)
	}
	var seq *benchdb.Series
	for i := range doc.Series {
		if doc.Series[i].Schema == "isacmp/bench-matrix" && doc.Series[i].Metric == "sequential_seconds" {
			seq = &doc.Series[i]
		}
	}
	if seq == nil {
		t.Fatalf("no sequential_seconds series: %+v", doc.Series)
	}
	// Committed v1 doc then the v2 ledger entry: one family series.
	if len(seq.Values) != 2 || seq.Values[0] != 10 || seq.Values[1] != 12 || seq.Latest != 12 {
		t.Fatalf("series: %+v", seq)
	}

	snap := reg.Snapshot()
	checks := map[string]float64{
		"benchdb.docs":           2,
		"benchdb.ledger_entries": 1,
		"benchdb.ledger_torn":    0,
		"benchdb.noise_cv":       0.021,
	}
	for name, want := range checks {
		if got := snap.Gauge(name); got != want {
			t.Errorf("gauge %s = %v, want %v", name, got, want)
		}
	}
	if got := snap.Gauge("benchdb.series"); got != float64(len(doc.Series)) {
		t.Errorf("benchdb.series gauge = %v, want %d", got, len(doc.Series))
	}
}

// TestBenchzPrometheusExposition: the benchdb gauges flow through the
// /metrics text exposition under the isacmp_ namespace.
func TestBenchzPrometheusExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := benchzFixture(t, reg)
	if _, err := src.Load(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE isacmp_benchdb_docs gauge",
		"isacmp_benchdb_docs 2",
		"isacmp_benchdb_ledger_entries 1",
		"isacmp_benchdb_series ",
		"isacmp_benchdb_noise_cv 0.021",
		"isacmp_benchdb_ledger_torn 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestBenchzGoldenTable pins the ASCII trend table format.
func TestBenchzGoldenTable(t *testing.T) {
	doc := BenchzDoc{
		Schema:        BenchzSchema,
		Docs:          2,
		LedgerEntries: 1,
		Series: []benchdb.Series{
			{Schema: "isacmp/bench-matrix", Metric: "sequential_seconds",
				Values: []float64{10, 12}, Median: 11, CV: 0.1348, Latest: 12, Trend: 12.0 / 11.0},
			{Schema: "isacmp/bench-obs", Metric: "overhead_percent",
				Values: []float64{0.5}, Median: 0.5, CV: 0, Latest: 0.5, Trend: 1},
		},
	}
	var b strings.Builder
	if err := WriteBenchzTable(&b, doc); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"benchdb observatory — 2 committed docs, 1 ledger entries",
		"SCHEMA               METRIC                N      MEDIAN       CV      LATEST   TREND",
		"isacmp/bench-matrix  sequential_seconds    2     11.0000    13.5%     12.0000  x 1.09",
		"isacmp/bench-obs     overhead_percent      1      0.5000     0.0%      0.5000  x 1.00",
		"",
	}, "\n")
	if b.String() != want {
		t.Errorf("table mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}

	// The torn-tail warning line appears when the ledger tore.
	doc.TornTail = true
	b.Reset()
	if err := WriteBenchzTable(&b, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torn tail") {
		t.Errorf("torn-tail warning missing:\n%s", b.String())
	}
}

// TestBenchzEndpoint round-trips /benchz over HTTP: the JSON document
// decodes back to the same series, and ?format=text serves the table.
func TestBenchzEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := benchzFixture(t, reg)
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr: "127.0.0.1:0", Registry: reg, Bench: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	c := testClient()

	code, body, hdr := get(t, c, base+"/benchz")
	if code != 200 {
		t.Fatalf("benchz = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var doc BenchzDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("benchz JSON: %v", err)
	}
	if doc.Schema != BenchzSchema || doc.Docs != 2 || doc.LedgerEntries != 1 {
		t.Errorf("doc = %+v", doc)
	}
	ref, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref.Series)
	gotJSON, _ := json.Marshal(doc.Series)
	if string(refJSON) != string(gotJSON) {
		t.Errorf("series did not round-trip:\n%s\nvs\n%s", gotJSON, refJSON)
	}

	code, body, hdr = get(t, c, base+"/benchz?format=text")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("benchz text = %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "benchdb observatory") || !strings.Contains(body, "sequential_seconds") {
		t.Errorf("text table:\n%s", body)
	}

	// A server without a bench source 404s instead of crashing.
	bare, err := StartServer(context.Background(), ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if code, _, _ := get(t, c, "http://"+bare.Addr()+"/benchz"); code != 404 {
		t.Errorf("benchz without source = %d, want 404", code)
	}
}

// TestBenchzConcurrentScrape hammers /benchz and /metrics from many
// goroutines while a writer appends to the live ledger — the race
// detector owns the verdict, and every response must be complete.
func TestBenchzConcurrentScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	src := benchzFixture(t, reg)
	srv, err := StartServer(context.Background(), ServerConfig{
		Addr: "127.0.0.1:0", Registry: reg, Bench: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	l, _, err := benchdb.Open(src.LedgerPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Append(benchdb.Entry{
				Schema:  "isacmp/bench-matrix/v2",
				Metrics: map[string]float64{"sequential_seconds": 10 + float64(i)},
				Noise:   &benchdb.Probe{Reps: 3, MedianSeconds: 0.002, CV: 0.01},
			}); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	const scrapers = 8
	var scrapeWG sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		scrapeWG.Add(1)
		go func(i int) {
			defer scrapeWG.Done()
			c := testClient()
			for j := 0; j < 5; j++ {
				url := base + "/benchz"
				if i%2 == 1 {
					url = base + "/metrics"
				}
				code, body, _ := get(t, c, url)
				if code != 200 {
					t.Errorf("scrape %s = %d: %s", url, code, body)
					return
				}
				if i%2 == 0 {
					var doc BenchzDoc
					if err := json.Unmarshal([]byte(body), &doc); err != nil {
						t.Errorf("mid-append benchz JSON: %v", err)
						return
					}
				}
			}
		}(i)
	}
	scrapeWG.Wait()
	close(stop)
	wg.Wait()
}

// TestNaturalLess pins the trajectory ordering: BENCH_PR10 sorts
// after BENCH_PR8, not between PR1 and PR2.
func TestNaturalLess(t *testing.T) {
	names := []string{"BENCH_PR10.json", "BENCH_PR2.json", "BENCH_PR1.json", "BENCH_PR8.json"}
	sort.Slice(names, func(i, j int) bool { return naturalLess(names[i], names[j]) })
	want := fmt.Sprint([]string{"BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR8.json", "BENCH_PR10.json"})
	if got := fmt.Sprint(names); got != want {
		t.Errorf("order = %s, want %s", got, want)
	}
	if naturalLess("a", "a") {
		t.Error("equal strings are not less")
	}
	if !naturalLess("a", "ab") {
		t.Error("prefix sorts first")
	}
}
