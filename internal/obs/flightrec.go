package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"isacmp/internal/durable"
	"isacmp/internal/isa"
	"isacmp/internal/obs/slogx"
	"isacmp/internal/simeng"
	"isacmp/internal/telemetry"
)

// PostmortemSchema identifies the flight-recorder dump format.
const PostmortemSchema = "isacmp/postmortem/v1"

// DefaultFlightEvents is the ring capacity used when -flight-events is
// not given: deep enough to see the lead-up to a crash, shallow enough
// that a dump stays a few hundred KB.
const DefaultFlightEvents = 256

// FlightEvent is one retired instruction in the recorder ring, the
// JSON-friendly projection of isa.Event.
type FlightEvent struct {
	Seq       uint64 `json:"seq"` // retirement index within the attempt
	PC        uint64 `json:"pc"`
	Word      uint32 `json:"word"`
	Group     string `json:"group"`
	LoadAddr  uint64 `json:"load_addr,omitempty"`
	LoadSize  uint8  `json:"load_size,omitempty"`
	StoreAddr uint64 `json:"store_addr,omitempty"`
	StoreSize uint8  `json:"store_size,omitempty"`
	Branch    bool   `json:"branch,omitempty"`
	Taken     bool   `json:"taken,omitempty"`
}

// CounterDelta is a registry counter's change over the attempt.
type CounterDelta struct {
	Name  string `json:"name"`
	Delta uint64 `json:"delta"`
}

// Postmortem is the crash-dump artifact written when a cell dies with
// a SimError: the cell identity, the classified failure, the last N
// retired events leading up to it, and what the telemetry counters did
// during the attempt.
type Postmortem struct {
	Schema     string         `json:"schema"`
	RunID      string         `json:"run_id,omitempty"`
	Workload   string         `json:"workload"`
	Target     string         `json:"target"`
	Attempt    int            `json:"attempt"`
	Time       time.Time      `json:"time"`
	Reason     string         `json:"reason"`
	Message    string         `json:"message"`
	PC         uint64         `json:"pc"`
	Retired    uint64         `json:"retired"`
	Loads      uint64         `json:"loads"`
	Stores     uint64         `json:"stores"`
	Branches   uint64         `json:"branches"`
	Taken      uint64         `json:"taken"`
	RingCap    int            `json:"ring_cap"`
	LastEvents []FlightEvent  `json:"last_events"`
	Counters   []CounterDelta `json:"counter_deltas,omitempty"`
}

// Recorder is a per-cell flight recorder: a bounded ring of the last N
// retired events plus running architectural tallies, wrapped around
// the cell's analysis sink. It is written and dumped by the one
// goroutine that runs the attempt — never shared — so it needs no
// locking and adds only a few stores per event to the hot path.
type Recorder struct {
	ring     []FlightEvent
	next     int
	total    uint64
	loads    uint64
	stores   uint64
	branches uint64
	taken    uint64

	runID    string
	workload string
	target   string
	attempt  int
	reg      *telemetry.Registry
	start    telemetry.Snapshot

	inner isa.Sink
	batch isa.BatchSink
}

// NewRecorder builds a recorder for one attempt of one cell. n is the
// ring capacity (<=0 selects DefaultFlightEvents). reg may be nil;
// when set, Dump reports counter deltas against the snapshot taken
// here.
func NewRecorder(n int, runID, workload, target string, attempt int, reg *telemetry.Registry) *Recorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	r := &Recorder{
		ring:     make([]FlightEvent, 0, n),
		runID:    runID,
		workload: workload,
		target:   target,
		attempt:  attempt,
		reg:      reg,
	}
	if reg != nil {
		r.start = reg.Snapshot()
	}
	return r
}

// Wrap interposes the recorder in front of inner and returns the
// combined sink. The batched path is preserved.
func (r *Recorder) Wrap(inner isa.Sink) isa.Sink {
	r.inner = inner
	if bs, ok := inner.(isa.BatchSink); ok {
		r.batch = bs
	}
	return r
}

func (r *Recorder) record(ev *isa.Event) {
	fe := FlightEvent{
		Seq:       r.total,
		PC:        ev.PC,
		Word:      ev.Word,
		Group:     ev.Group.String(),
		LoadAddr:  ev.LoadAddr,
		LoadSize:  ev.LoadSize,
		StoreAddr: ev.StoreAddr,
		StoreSize: ev.StoreSize,
		Branch:    ev.Branch,
		Taken:     ev.Taken,
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, fe)
	} else {
		r.ring[r.next] = fe
	}
	r.next++
	if r.next == cap(r.ring) {
		r.next = 0
	}
	r.total++
	if ev.LoadSize > 0 {
		r.loads++
	}
	if ev.StoreSize > 0 {
		r.stores++
	}
	if ev.Branch {
		r.branches++
		if ev.Taken {
			r.taken++
		}
	}
}

// Event observes one retired instruction.
func (r *Recorder) Event(ev *isa.Event) {
	r.record(ev)
	if r.inner != nil {
		r.inner.Event(ev)
	}
}

// Events observes a batch of retired instructions.
func (r *Recorder) Events(evs []isa.Event) {
	for i := range evs {
		r.record(&evs[i])
	}
	if r.batch != nil {
		r.batch.Events(evs)
	} else if r.inner != nil {
		for i := range evs {
			r.inner.Event(&evs[i])
		}
	}
}

// lastEvents returns the ring contents oldest-first.
func (r *Recorder) lastEvents() []FlightEvent {
	if len(r.ring) < cap(r.ring) {
		return append([]FlightEvent(nil), r.ring...)
	}
	out := make([]FlightEvent, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// sanitizeFile maps a cell-identity string onto a safe filename
// component (targets contain '/', e.g. "rv64/gcc12/pathlen").
func sanitizeFile(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// PostmortemPath is the deterministic artifact path Dump writes for a
// given cell attempt, so callers that only know the cell identity can
// find (or predict) the dump without threading the path around.
func PostmortemPath(dir, workload, target string, attempt int) string {
	name := fmt.Sprintf("postmortem-%s-%s-a%d.json",
		sanitizeFile(workload), sanitizeFile(target), attempt)
	return filepath.Join(dir, name)
}

// Dump writes the post-mortem artifact for a failed attempt into dir
// and returns its path. It must be called from the goroutine that fed
// the recorder (the attempt goroutine itself), after simulation has
// stopped. Errors are logged, not fatal: a failed dump never turns a
// classified cell failure into a crash.
func (r *Recorder) Dump(dir string, se *simeng.SimError, log *slog.Logger) string {
	log = slogx.OrNop(log)
	pm := Postmortem{
		Schema:     PostmortemSchema,
		RunID:      r.runID,
		Workload:   r.workload,
		Target:     r.target,
		Attempt:    r.attempt,
		Time:       time.Now().UTC(),
		Reason:     simeng.Reason(se.Kind),
		Message:    se.Error(),
		PC:         se.PC,
		Retired:    r.total,
		Loads:      r.loads,
		Stores:     r.stores,
		Branches:   r.branches,
		Taken:      r.taken,
		RingCap:    cap(r.ring),
		LastEvents: r.lastEvents(),
	}
	if se.Retired > 0 {
		pm.Retired = se.Retired
	}
	if r.reg != nil {
		end := r.reg.Snapshot()
		for _, c := range end.Counters {
			if d := c.Value - r.start.Counter(c.Name); d > 0 {
				pm.Counters = append(pm.Counters, CounterDelta{Name: c.Name, Delta: d})
			}
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Error("flight recorder: mkdir failed", "dir", dir, "err", err)
		return ""
	}
	path := PostmortemPath(dir, r.workload, r.target, r.attempt)
	data, err := json.MarshalIndent(pm, "", "  ")
	if err != nil {
		log.Error("flight recorder: marshal failed", "err", err)
		return ""
	}
	data = append(data, '\n')
	if err := durable.WriteFileAtomic(path, data, 0o644); err != nil {
		log.Error("flight recorder: write failed", "path", path, "err", err)
		return ""
	}
	log.Info("flight recorder: post-mortem written",
		"path", path, "reason", pm.Reason, "retired", pm.Retired)
	return path
}
