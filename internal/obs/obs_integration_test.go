package obs_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"isacmp/internal/faultinject"
	"isacmp/internal/ir"
	"isacmp/internal/obs"
	"isacmp/internal/report"
	"isacmp/internal/telemetry"
	"isacmp/internal/workloads"
)

// These tests exercise the whole control plane end to end: a real
// matrix run (report.RunSuite) with injected faults, observed from the
// outside through a live obs server exactly as an operator would —
// /statusz polled mid-run, /events streamed, /metrics scraped, and
// post-mortems linked from the manifest.

func tinyStream(t *testing.T) []*ir.Program {
	t.Helper()
	p := workloads.ByName("stream", workloads.Tiny)
	if p == nil {
		t.Fatal("stream workload missing")
	}
	return []*ir.Program{p}
}

// TestLiveMatrixObserved runs a 4-cell matrix in which one cell is
// made pathologically slow (and reaped by the cell timeout) while a
// client watches. The /statusz document must show cells running while
// the matrix is live and the final mix of done and failed cells
// afterwards; the /events stream must carry the transitions; /metrics
// must serve exposition text for the run's registry.
func TestLiveMatrixObserved(t *testing.T) {
	progs := tinyStream(t)
	reg := telemetry.NewRegistry()
	runID := obs.NewRunID()
	board := obs.NewBoard(runID, reg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := obs.StartServer(ctx, obs.ServerConfig{Addr: "127.0.0.1:0", Registry: reg, Board: board})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetReady(true)
	base := "http://" + srv.Addr()

	// Open the event stream before the matrix starts so no transition
	// can be missed.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := make(chan obs.Event, 512)
	go func() {
		defer close(events)
		r := bufio.NewReader(resp.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev obs.Event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
	}()

	// One cell steps at a crawl from its first instruction; the cell
	// timeout reaps it while the other three complete normally. That
	// guarantees a window in which the matrix is observably live.
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "AArch64/GCC 9.2",
		Kind: faultinject.Slow, At: 1, SlowFor: time.Millisecond,
	})
	defer inj.Close()
	ex := report.Experiment{
		PathLength: true, Parallel: 2, Metrics: reg,
		RunID: runID, Status: board,
		CellTimeout: 500 * time.Millisecond,
		WrapMachine: inj.WrapMachine,
	}

	suiteDone := make(chan error, 1)
	var all [][]report.Row
	go func() {
		var err error
		all, _, err = report.RunSuite(progs, ex)
		suiteDone <- err
	}()

	statusz := func() obs.StatusDoc {
		r, err := http.Get(base + "/statusz")
		if err != nil {
			t.Fatalf("statusz: %v", err)
		}
		defer r.Body.Close()
		var doc obs.StatusDoc
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			t.Fatalf("statusz decode: %v", err)
		}
		return doc
	}

	// Mid-run: at least one cell must be visibly running (the slow one
	// stays in that state for the whole timeout window).
	sawRunning := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawRunning && time.Now().Before(deadline) {
		select {
		case err := <-suiteDone:
			suiteDone <- err
			deadline = time.Now() // matrix over; stop polling
		default:
		}
		if statusz().States["running"] > 0 {
			sawRunning = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawRunning {
		t.Error("statusz never showed a running cell during the live matrix")
	}

	select {
	case err := <-suiteDone:
		if err != nil {
			t.Fatalf("RunSuite: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("matrix did not finish")
	}

	// Final state: 3 done, the slow cell failed with the deadline
	// reason, on the board exactly as in the suite rows.
	doc := statusz()
	if doc.States["done"] != 3 || doc.States["failed"] != 1 {
		t.Errorf("final states = %+v, want 3 done / 1 failed", doc.States)
	}
	for _, c := range doc.Cells {
		if c.Target == "AArch64/GCC 9.2" {
			if c.State != obs.CellFailed || c.Reason != "deadline" {
				t.Errorf("slow cell = %+v, want failed/deadline", c)
			}
		} else if c.State != obs.CellDone {
			t.Errorf("cell %s/%s = %s, want done", c.Workload, c.Target, c.State)
		}
	}
	if fails := report.CollectFailures(all); len(fails) != 1 || fails[0].Reason != "deadline" {
		t.Errorf("suite failures = %+v, want one deadline failure", fails)
	}

	// The event stream carried the lifecycle: running transitions for
	// all 4 cells and done transitions for the healthy 3. The frames
	// may still be in flight right after RunSuite returns, so consume
	// with a deadline rather than closing the stream first.
	running, done := map[string]bool{}, map[string]bool{}
	timeout := time.After(10 * time.Second)
	for len(running) < 4 || len(done) < 3 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("event stream ended early: running=%v done=%v", running, done)
			}
			if ev.RunID != runID {
				t.Errorf("event with foreign run ID %q", ev.RunID)
			}
			switch ev.State {
			case obs.CellRunning:
				running[ev.Target] = true
			case obs.CellDone:
				done[ev.Target] = true
			}
		case <-timeout:
			t.Fatalf("event stream incomplete: running=%v done=%v", running, done)
		}
	}

	// The registry is scrapeable as Prometheus text. (The server was
	// just closed; render directly — the HTTP round trip is covered by
	// the in-package server tests.)
	var b strings.Builder
	if err := obs.WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "isacmp_") {
		t.Errorf("no isacmp_ series in exposition:\n%s", b.String())
	}
}

// TestPanickingCellPostmortem is the flight-recorder acceptance path:
// a cell that panics mid-run dumps a post-mortem JSON whose path is
// carried on the FailureRecord into the manifest failures block — and
// canonicalization strips it again, so golden manifests stay stable.
func TestPanickingCellPostmortem(t *testing.T) {
	progs := tinyStream(t)
	dir := t.TempDir()
	// A sink panic: the recorder is interposed outside the injected
	// sink, so the ring holds the retirements that flowed into the
	// analysis right up to the crash.
	inj := faultinject.New(1, faultinject.Plan{
		Workload: "stream", Target: "RISC-V/GCC 12.2",
		Kind: faultinject.SinkPanic, At: 200,
	})
	defer inj.Close()
	ex := report.Experiment{
		PathLength: true, Parallel: 1,
		RunID: "run-pm", FlightDir: dir, FlightEvents: 32,
		WrapSink: inj.WrapSink,
	}
	all, _, err := report.RunSuite(progs, ex)
	if err != nil {
		t.Fatal(err)
	}
	fails := report.CollectFailures(all)
	if len(fails) != 1 {
		t.Fatalf("failures = %+v, want exactly the panicked cell", fails)
	}
	f := fails[0]
	if f.Reason != "panic" {
		t.Errorf("reason = %s, want panic", f.Reason)
	}
	if f.Postmortem == "" {
		t.Fatal("failure record must carry the post-mortem path")
	}
	if want := obs.PostmortemPath(dir, "stream", "RISC-V/GCC 12.2", 1); f.Postmortem != want {
		t.Errorf("postmortem path = %q, want %q", f.Postmortem, want)
	}
	data, err := os.ReadFile(f.Postmortem)
	if err != nil {
		t.Fatalf("post-mortem artifact: %v", err)
	}
	var pm obs.Postmortem
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatal(err)
	}
	if pm.Schema != obs.PostmortemSchema || pm.RunID != "run-pm" {
		t.Errorf("postmortem header = %s/%s", pm.Schema, pm.RunID)
	}
	if pm.Workload != "stream" || pm.Target != "RISC-V/GCC 12.2" || pm.Reason != "panic" {
		t.Errorf("postmortem identity = %s/%s reason %s", pm.Workload, pm.Target, pm.Reason)
	}
	if pm.RingCap != 32 || len(pm.LastEvents) == 0 || len(pm.LastEvents) > 32 {
		t.Errorf("ring cap %d with %d events, want 32 with a non-empty bounded lead-up", pm.RingCap, len(pm.LastEvents))
	}
	if pm.Retired == 0 {
		t.Error("postmortem must carry the retirement count at death")
	}

	// Manifest linkage and canonicalization.
	m := telemetry.NewManifest("obs-test", "tiny")
	report.AppendRows(m, "stream", all[0])
	if len(m.Failures) != 1 || m.Failures[0].Postmortem != f.Postmortem {
		t.Fatalf("manifest failures = %+v, want the post-mortem link", m.Failures)
	}
	m.Canonicalize()
	if m.Failures[0].Postmortem != "" {
		t.Error("canonicalization must strip the post-mortem path")
	}
}

// TestObsByteIdentity: the full control plane (board, meter, flight
// recorder) interposed on a fault-free run must not change a single
// result byte relative to a bare run — the observability layer is a
// pure observer.
func TestObsByteIdentity(t *testing.T) {
	progs := tinyStream(t)
	canon := func(ex report.Experiment) string {
		all, _, err := report.RunSuite(progs, ex)
		if err != nil {
			t.Fatal(err)
		}
		m := telemetry.NewManifest("obs-test", "tiny")
		report.AppendRows(m, "stream", all[0])
		m.Canonicalize()
		data, err := json.Marshal(m.Runs)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	bare := canon(report.Experiment{PathLength: true, CritPath: true, Parallel: 2})

	reg := telemetry.NewRegistry()
	board := obs.NewBoard("run-id", reg)
	observed := canon(report.Experiment{
		PathLength: true, CritPath: true, Parallel: 2,
		Metrics: reg, RunID: "run-id", Status: board,
		FlightDir: t.TempDir(), FlightEvents: 64,
	})
	if observed != bare {
		t.Errorf("observed run drifted from bare run:\n got %s\nwant %s", observed, bare)
	}

	// And the board saw every cell complete.
	doc := board.Status()
	if doc.States["done"] != 4 {
		t.Errorf("board states = %+v, want 4 done", doc.States)
	}
	for _, c := range doc.Cells {
		if c.Retired == 0 {
			t.Errorf("cell %s/%s retired count never reached the board", c.Workload, c.Target)
		}
	}
}
