package cc

import (
	"math"
	"testing"

	"isacmp/internal/a64"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/rv64"
	"isacmp/internal/simeng"
)

// runCompiled executes a compiled program to completion and returns
// the memory image and instruction count.
func runCompiled(t *testing.T, c *Compiled) (*mem.Memory, simeng.Stats) {
	t.Helper()
	m := mem.New(TextBase, c.MemSize)
	var mach simeng.Machine
	var err error
	if c.Target.Arch == isa.AArch64 {
		mach, err = a64.NewMachine(c.File, m)
	} else {
		mach, err = rv64.NewMachine(c.File, m)
	}
	if err != nil {
		t.Fatal(err)
	}
	stats, err := (&simeng.EmulationCore{MaxInstructions: 100_000_000}).Run(mach, nil)
	if err != nil {
		t.Fatalf("%s: %v", c.Target, err)
	}
	return m, stats
}

// readF64 reads array contents from simulated memory.
func readF64(t *testing.T, m *mem.Memory, c *Compiled, name string, n int) []float64 {
	t.Helper()
	base := c.ArrayBase[name]
	out := make([]float64, n)
	for i := range out {
		bits, err := m.Read64(base + uint64(i)*8)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = math.Float64frombits(bits)
	}
	return out
}

func readI64(t *testing.T, m *mem.Memory, c *Compiled, name string, n int) []int64 {
	t.Helper()
	base := c.ArrayBase[name]
	out := make([]int64, n)
	for i := range out {
		bits, err := m.Read64(base + uint64(i)*8)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = int64(bits)
	}
	return out
}

// verifyAll compiles p for every target, runs it, and checks every
// array against the host interpreter bit for bit.
func verifyAll(t *testing.T, p *ir.Program) map[Target]simeng.Stats {
	t.Helper()
	ref := ir.NewInterp(p)
	if err := ref.Run(); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	stats := map[Target]simeng.Stats{}
	for _, tgt := range Targets() {
		c, err := Compile(p, tgt)
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		m, st := runCompiled(t, c)
		stats[tgt] = st
		for _, arr := range p.Arrays {
			if arr.Elem == ir.F64 {
				got := readF64(t, m, c, arr.Name, arr.Len)
				want := ref.ArrF[arr.Name]
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s: %s[%d] = %v, want %v", tgt, arr.Name, i, got[i], want[i])
					}
				}
			} else {
				got := readI64(t, m, c, arr.Name, arr.Len)
				want := ref.ArrI[arr.Name]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: %s[%d] = %d, want %d", tgt, arr.Name, i, got[i], want[i])
					}
				}
			}
		}
	}
	return stats
}

func streamCopy(n int) *ir.Program {
	p := ir.NewProgram("copytest")
	a := p.Array("a", ir.F64, n)
	c := p.Array("c", ir.F64, n)
	for i := 0; i < n; i++ {
		a.InitF = append(a.InitF, float64(i)*1.5+0.25)
	}
	i := ir.NewVar("i", ir.I64)
	p.Kernel("copy").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(int64(n)),
		Body: []ir.Stmt{
			&ir.Store{Arr: c, Index: ir.V(i), Val: ir.Ld(a, ir.V(i))},
		},
	})
	return p
}

func TestCopyAllTargets(t *testing.T) {
	verifyAll(t, streamCopy(64))
}

func TestCopyKernelShape(t *testing.T) {
	// The generated inner loops must match the paper's listings: 5
	// instructions per element on both ISAs, with the documented
	// idioms.
	p := streamCopy(100000) // large bound: triggers the GCC9 sub/subs idiom
	type want struct {
		perIter int
	}
	for _, tgt := range Targets() {
		c, err := Compile(p, tgt)
		if err != nil {
			t.Fatal(err)
		}
		m, st := runCompiled(t, c)
		_ = m
		// Instructions per loop iteration, ignoring setup (~10 insts).
		perIter := float64(st.Instructions) / 100000
		var wantIter float64
		switch {
		case tgt.Arch == isa.RV64:
			wantIter = 5 // fld, fsd, add, add, bne
		case tgt.Flavor == GCC12:
			wantIter = 5 // ldr, str, add, cmp, b.ne
		default:
			wantIter = 6 // ldr, str, add, sub, subs, b.ne
		}
		if perIter < wantIter-0.01 || perIter > wantIter+0.01 {
			t.Errorf("%s: %.4f instructions/iteration, want %v", tgt, perIter, wantIter)
		}
	}
}

func TestTriadFMA(t *testing.T) {
	const n = 32
	p := ir.NewProgram("triad")
	a := p.Array("a", ir.F64, n)
	b := p.Array("b", ir.F64, n)
	c := p.Array("c", ir.F64, n)
	for i := 0; i < n; i++ {
		b.InitF = append(b.InitF, float64(i)+0.5)
		c.InitF = append(c.InitF, 2.0-float64(i)/7)
	}
	i := ir.NewVar("i", ir.I64)
	// a[i] = b[i] + scalar*c[i]: must contract to one fmadd and match
	// the interpreter exactly.
	p.Kernel("triad").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.Store{Arr: a, Index: ir.V(i),
				Val: ir.AddE(ir.Ld(b, ir.V(i)), ir.MulE(ir.CF(3.0), ir.Ld(c, ir.V(i))))},
		},
	})
	verifyAll(t, p)
}

func TestNestedLoopsAndScalars(t *testing.T) {
	const nx, ny = 8, 6
	p := ir.NewProgram("nested")
	grid := p.Array("grid", ir.F64, nx*ny)
	out := p.Array("out", ir.F64, nx*ny)
	for i := 0; i < nx*ny; i++ {
		grid.InitF = append(grid.InitF, float64(i%7)+0.125)
	}
	jj := ir.NewVar("jj", ir.I64)
	ii := ir.NewVar("ii", ir.I64)
	row := ir.NewVar("row", ir.I64)
	v := ir.NewVar("v", ir.F64)
	p.Kernel("smooth").Add(&ir.Loop{
		Var: jj, Start: ir.CI(0), End: ir.CI(ny),
		Body: []ir.Stmt{
			&ir.Assign{Var: row, Val: ir.MulE(ir.V(jj), ir.CI(nx))},
			&ir.Loop{
				Var: ii, Start: ir.CI(0), End: ir.CI(nx),
				Body: []ir.Stmt{
					&ir.Assign{Var: v, Val: ir.MulE(ir.Ld(grid, ir.AddE(ir.V(row), ir.V(ii))), ir.CF(0.5))},
					&ir.Store{Arr: out, Index: ir.AddE(ir.V(row), ir.V(ii)), Val: ir.V(v)},
				},
			},
		},
	})
	verifyAll(t, p)
}

func TestConditionals(t *testing.T) {
	const n = 40
	p := ir.NewProgram("cond")
	a := p.Array("a", ir.F64, n)
	b := p.Array("b", ir.F64, n)
	for i := 0; i < n; i++ {
		a.InitF = append(a.InitF, float64(i)-20.0)
	}
	i := ir.NewVar("i", ir.I64)
	p.Kernel("clamp").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.If{
				Cond: ir.B2(ir.Lt, ir.Ld(a, ir.V(i)), ir.CF(0)),
				Then: []ir.Stmt{&ir.Store{Arr: b, Index: ir.V(i), Val: ir.CF(0)}},
				Else: []ir.Stmt{&ir.Store{Arr: b, Index: ir.V(i), Val: ir.Ld(a, ir.V(i))}},
			},
			// Integer condition too (fused branch on RISC-V).
			&ir.If{
				Cond: ir.B2(ir.Eq, ir.B2(ir.Rem, ir.V(i), ir.CI(3)), ir.CI(0)),
				Then: []ir.Stmt{&ir.Store{Arr: b, Index: ir.V(i), Val: ir.CF(7)}},
			},
		},
	})
	verifyAll(t, p)
}

func TestSqrtDivMinMax(t *testing.T) {
	const n = 16
	p := ir.NewProgram("mathops")
	x := p.Array("x", ir.F64, n)
	y := p.Array("y", ir.F64, n)
	for i := 0; i < n; i++ {
		x.InitF = append(x.InitF, float64(i)+1)
	}
	i := ir.NewVar("i", ir.I64)
	p.Kernel("mathops").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.Store{Arr: y, Index: ir.V(i),
				Val: ir.B2(ir.Max,
					ir.B2(ir.Min, ir.DivE(ir.CF(10), ir.SqrtE(ir.Ld(x, ir.V(i)))), ir.CF(5)),
					ir.CF(1))},
		},
	})
	verifyAll(t, p)
}

func TestIntArraysAndConversions(t *testing.T) {
	const n = 24
	p := ir.NewProgram("ints")
	idx := p.Array("idx", ir.I64, n)
	val := p.Array("val", ir.F64, n)
	out := p.Array("out", ir.F64, n)
	for i := 0; i < n; i++ {
		idx.InitI = append(idx.InitI, int64((i*7)%n))
		val.InitF = append(val.InitF, float64(i)*1.25)
	}
	i := ir.NewVar("i", ir.I64)
	j := ir.NewVar("j", ir.I64)
	// Indirect access: out[i] = val[idx[i]] + float(i).
	p.Kernel("gather").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.Assign{Var: j, Val: ir.Ld(idx, ir.V(i))},
			&ir.Store{Arr: out, Index: ir.V(i),
				Val: ir.AddE(ir.Ld(val, ir.V(j)), ir.I2F(ir.V(i)))},
		},
	})
	verifyAll(t, p)
}

func TestRepeat(t *testing.T) {
	const n = 10
	p := ir.NewProgram("repeat")
	p.Repeat = 4
	acc := p.Array("acc", ir.F64, n)
	i := ir.NewVar("i", ir.I64)
	p.Kernel("inc").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.Store{Arr: acc, Index: ir.V(i), Val: ir.AddE(ir.Ld(acc, ir.V(i)), ir.CF(1))},
		},
	})
	ref := ir.NewInterp(p)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range ref.ArrF["acc"] {
		if v != 4 {
			t.Fatalf("interp repeat: %v", v)
		}
	}
	verifyAll(t, p)
}

func TestVariableBounds(t *testing.T) {
	const n = 12
	p := ir.NewProgram("varbounds")
	lenA := p.Array("len", ir.I64, 1)
	lenA.InitI = []int64{n - 2}
	out := p.Array("out", ir.F64, n)
	i := ir.NewVar("i", ir.I64)
	m := ir.NewVar("m", ir.I64)
	p.Kernel("fill").Add(
		&ir.Assign{Var: m, Val: ir.Ld(lenA, ir.CI(0))},
		&ir.Loop{
			Var: i, Start: ir.CI(2), End: ir.V(m),
			Body: []ir.Stmt{
				&ir.Store{Arr: out, Index: ir.V(i), Val: ir.I2F(ir.V(i))},
			},
		},
	)
	verifyAll(t, p)
}

func TestEmptyLoopGuard(t *testing.T) {
	p := ir.NewProgram("empty")
	lenA := p.Array("len", ir.I64, 1)
	lenA.InitI = []int64{0}
	out := p.Array("out", ir.F64, 4)
	i := ir.NewVar("i", ir.I64)
	m := ir.NewVar("m", ir.I64)
	p.Kernel("noop").Add(
		&ir.Assign{Var: m, Val: ir.Ld(lenA, ir.CI(0))},
		&ir.Loop{
			Var: i, Start: ir.CI(0), End: ir.V(m),
			Body: []ir.Stmt{
				&ir.Store{Arr: out, Index: ir.V(i), Val: ir.CF(99)},
			},
		},
	)
	verifyAll(t, p) // out must stay zero everywhere
}

func TestOffsetStreams(t *testing.T) {
	// Accesses at arr[off + i] must strength-reduce on RISC-V and stay
	// correct everywhere.
	const n = 20
	p := ir.NewProgram("offset")
	a := p.Array("a", ir.F64, 2*n)
	b := p.Array("b", ir.F64, 2*n)
	for i := 0; i < 2*n; i++ {
		a.InitF = append(a.InitF, float64(i)/3)
	}
	i := ir.NewVar("i", ir.I64)
	off := ir.NewVar("off", ir.I64)
	p.Kernel("shift").Add(
		&ir.Assign{Var: off, Val: ir.CI(n)},
		&ir.Loop{
			Var: i, Start: ir.CI(0), End: ir.CI(n),
			Body: []ir.Stmt{
				// constant offset stream and variable offset stream
				&ir.Store{Arr: b, Index: ir.AddE(ir.CI(3), ir.V(i)),
					Val: ir.Ld(a, ir.AddE(ir.V(off), ir.V(i)))},
			},
		},
	)
	verifyAll(t, p)
}

func TestBackendDifferencesExist(t *testing.T) {
	// The four targets must not produce identical binaries: the a64
	// GCC9/GCC12 pair differs (loop exit idiom), and the ISAs differ.
	p := streamCopy(100000)
	words := map[Target]int{}
	for _, tgt := range Targets() {
		c, err := Compile(p, tgt)
		if err != nil {
			t.Fatal(err)
		}
		words[tgt] = len(c.File.Segments[0].Data)
	}
	if words[Target{isa.AArch64, GCC9}] == words[Target{isa.AArch64, GCC12}] {
		t.Error("a64 GCC9 and GCC12 binaries have identical text size")
	}
}

func TestCompileErrors(t *testing.T) {
	// Unvalidatable program.
	p := ir.NewProgram("bad")
	p.Repeat = 0
	if _, err := Compile(p, Target{isa.AArch64, GCC12}); err == nil {
		t.Error("invalid program accepted")
	}

	// Read-before-assign.
	p2 := ir.NewProgram("rba")
	out := p2.Array("out", ir.F64, 1)
	v := ir.NewVar("v", ir.F64)
	p2.Kernel("k").Add(&ir.Store{Arr: out, Index: ir.CI(0), Val: ir.V(v)})
	for _, tgt := range Targets() {
		if _, err := Compile(p2, tgt); err == nil {
			t.Errorf("%s: read-before-assign accepted", tgt)
		}
	}
}
