package cc

import (
	"fmt"
	"math"

	"isacmp/internal/elfio"
	"isacmp/internal/ir"
	"isacmp/internal/rv64"
)

// maxPointerStreams caps how many unit-stride access streams a loop
// may strength-reduce into pointer walks before register pressure
// forces computed addressing, mirroring GCC's induction-variable
// selection under pressure.
const maxPointerStreams = 6

// noReg marks "no destination register requested".
const noReg = 0xff

// rvGen holds the state of one RV64G compilation.
type rvGen struct {
	asm    *rv64.Asm
	flavor Flavor
	lay    *dataLayout
	opts   Options

	intPool *regPool
	fpPool  *regPool

	vars    map[*ir.Var]uint8
	arrBase map[*ir.Array]uint8
	constFP map[float64]uint8

	loops  []*rvLoopCtx
	labelN int
	err    error
}

type rvLoopCtx struct {
	lv   *ir.Var
	ptrs map[stream]uint8
	// scaledIdx, when not noReg, holds lv*8 as an extra induction
	// variable shared by computed accesses (GCC materialises the same
	// thing when several arrays are indexed by one variable).
	scaledIdx uint8
}

// compileRV64 lowers the program for RV64G. GCC 9.2 and 12.2 generate
// the same inner-loop code on RISC-V (the paper found the main kernels
// identical between the two); the flavour only changes the prologue,
// where GCC 9.2 re-zeroes the argument registers redundantly.
func compileRV64(p *ir.Program, flavor Flavor, lay *dataLayout, opts Options) (*elfio.File, error) {
	g := &rvGen{
		asm:    rv64.NewAsm(),
		flavor: flavor,
		lay:    lay,
		opts:   opts,
		// Temporaries first, then saved registers. x2/x3/x4 are
		// sp/gp/tp; everything else is fair game — the generated code
		// is one leaf function, so ra (x1) and the syscall argument
		// registers (a0/a1/a7) are free until the exit sequence
		// overwrites them, exactly as GCC allocates in leaf code.
		intPool: newRegPool("integer", []uint8{
			5, 6, 7, 28, 29, 30, 31, 12, 13, 14, 15, 16,
			8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27,
			10, 11, 17, 1,
		}),
		fpPool: newRegPool("floating-point", []uint8{
			0, 1, 2, 3, 4, 5, 6, 7, 28, 29, 30, 31,
			10, 11, 12, 13, 14, 15, 16, 17,
			8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27,
		}),
		vars:    map[*ir.Var]uint8{},
		arrBase: map[*ir.Array]uint8{},
		constFP: map[float64]uint8{},
	}

	// Prologue. GCC 9.2's crt0-level code is a touch more verdant;
	// model the paper's small whole-binary deltas with a few extra
	// register-clearing instructions.
	g.asm.Symbol("_start")
	if flavor == GCC9 {
		for _, r := range []uint8{10, 11, 12} {
			g.asm.MV(r, 0)
		}
	}

	for _, k := range p.Setup {
		if err := g.kernel(k); err != nil {
			return nil, fmt.Errorf("setup kernel %q: %w", k.Name, err)
		}
	}

	repeatReg := uint8(noReg)
	if p.Repeat > 1 {
		r, err := g.intPool.alloc()
		if err != nil {
			return nil, err
		}
		repeatReg = r
		g.asm.LI(repeatReg, int64(p.Repeat))
		g.asm.Label("repeat")
	}

	for _, k := range p.Kernels {
		if err := g.kernel(k); err != nil {
			return nil, fmt.Errorf("kernel %q: %w", k.Name, err)
		}
	}

	if p.Repeat > 1 {
		g.asm.Symbol("_loop_overhead")
		g.asm.ADDI(repeatReg, repeatReg, -1)
		g.asm.BNE(repeatReg, 0, "repeat")
	}

	// Exit.
	g.asm.Symbol("_exit")
	g.asm.LI(10, 0)
	g.asm.LI(17, 93)
	g.asm.ECALL()

	if g.err != nil {
		return nil, g.err
	}
	return g.asm.Build(rv64.Program{
		TextBase: TextBase,
		DataBase: DataBase,
		Data:     lay.data,
	})
}

func (g *rvGen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

// kernel emits one kernel: array bases and FP constants are hoisted
// into registers, then the body is generated; all kernel-scoped
// registers are released afterwards.
func (g *rvGen) kernel(k *ir.Kernel) error {
	g.asm.Symbol(k.Name)
	var scoped []func()

	for _, arr := range collectArrays(k.Body) {
		r, err := g.intPool.alloc()
		if err != nil {
			return err
		}
		g.asm.LI(r, int64(g.lay.base[arr.Name]))
		g.arrBase[arr] = r
		arr := arr
		scoped = append(scoped, func() { delete(g.arrBase, arr); g.intPool.free(r) })
	}
	consts := collectFPConsts(k.Body)
	if len(consts) > 10 {
		consts = consts[:10] // the rest materialise inline at each use
	}
	for _, c := range consts {
		fr, err := g.fpPool.alloc()
		if err != nil {
			return err
		}
		g.materialiseF(c, fr)
		g.constFP[c] = fr
		c := c
		scoped = append(scoped, func() { delete(g.constFP, c); g.fpPool.free(fr) })
	}

	if err := g.stmts(k.Body); err != nil {
		return err
	}

	// Release variable registers bound during this kernel.
	for vr, r := range g.vars {
		if vr.Type == ir.F64 {
			g.fpPool.free(r)
		} else {
			g.intPool.free(r)
		}
		delete(g.vars, vr)
	}
	for i := len(scoped) - 1; i >= 0; i-- {
		scoped[i]()
	}
	return nil
}

// materialiseF loads an FP constant into fr.
func (g *rvGen) materialiseF(c float64, fr uint8) {
	bits := int64(f64bitsOf(c))
	if bits == 0 {
		g.asm.FMVDX(fr, 0)
		return
	}
	t, err := g.intPool.alloc()
	if err != nil {
		g.fail(err)
		return
	}
	g.asm.LI(t, bits)
	g.asm.FMVDX(fr, t)
	g.intPool.free(t)
}

func (g *rvGen) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

func (g *rvGen) stmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return g.err
}

func (g *rvGen) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.Loop:
		return g.loop(st)
	case *ir.Assign:
		return g.assign(st)
	case *ir.Store:
		return g.store(st)
	case *ir.If:
		return g.ifStmt(st)
	}
	return fmt.Errorf("rv64gen: unknown statement %T", s)
}

// varReg returns (allocating on demand) the register pinned to v.
func (g *rvGen) varReg(v *ir.Var) (uint8, error) {
	if r, ok := g.vars[v]; ok {
		return r, nil
	}
	var r uint8
	var err error
	if v.Type == ir.F64 {
		r, err = g.fpPool.alloc()
	} else {
		r, err = g.intPool.alloc()
	}
	if err != nil {
		return 0, fmt.Errorf("variable %q: %w", v.Name, err)
	}
	g.vars[v] = r
	return r, nil
}

func (g *rvGen) assign(st *ir.Assign) error {
	r, err := g.varReg(st.Var)
	if err != nil {
		return err
	}
	if st.Var.Type == ir.F64 {
		got, owned, err := g.evalF(st.Val, r)
		if err != nil {
			return err
		}
		if got != r {
			g.asm.FMVD(r, got)
			if owned {
				g.fpPool.free(got)
			}
		}
		return nil
	}
	got, owned, err := g.evalI(st.Val, r)
	if err != nil {
		return err
	}
	if got != r {
		g.asm.MV(r, got)
		if owned {
			g.intPool.free(got)
		}
	}
	return nil
}

// addr prepares the (base register, immediate) pair for an array
// access, using a loop pointer when the index matches a strength-
// reduced stream, a folded immediate when the index is constant, and
// computed addressing otherwise. The returned release function frees
// any temporary.
func (g *rvGen) addr(arr *ir.Array, idx ir.Expr) (base uint8, off int64, release func(), err error) {
	nop := func() {}
	// Innermost matching pointer stream, or the shared scaled index.
	for i := len(g.loops) - 1; i >= 0; i-- {
		ctx := g.loops[i]
		if s, ok := matchStream(arr, idx, ctx.lv); ok {
			if ptr, ok := ctx.ptrs[s]; ok {
				return ptr, 0, nop, nil
			}
			if ctx.scaledIdx != noReg && s.invVar == nil {
				byteOff := s.invConst * 8
				if byteOff >= -2048 && byteOff < 2048 {
					t, err := g.intPool.alloc()
					if err != nil {
						break
					}
					g.asm.ADD(t, g.arrBase[arr], ctx.scaledIdx)
					return t, byteOff, func() { g.intPool.free(t) }, nil
				}
			}
			break
		}
	}
	// Constant index with a reachable immediate.
	if c, ok := constFold(idx); ok {
		byteOff := c * 8
		if byteOff >= -2048 && byteOff < 2048 {
			return g.arrBase[arr], byteOff, nop, nil
		}
	}
	// Computed: slli t, idx, 3; add t, t, base.
	r, owned, err := g.evalI(idx, noReg)
	if err != nil {
		return 0, 0, nop, err
	}
	t, err := g.intPool.alloc()
	if err != nil {
		return 0, 0, nop, err
	}
	g.asm.SLLI(t, r, 3)
	if owned {
		g.intPool.free(r)
	}
	g.asm.ADD(t, t, g.arrBase[arr])
	return t, 0, func() { g.intPool.free(t) }, nil
}

func (g *rvGen) store(st *ir.Store) error {
	if st.Arr.Elem == ir.F64 {
		v, owned, err := g.evalF(st.Val, noReg)
		if err != nil {
			return err
		}
		base, off, release, err := g.addr(st.Arr, st.Index)
		if err != nil {
			return err
		}
		g.asm.FSD(v, base, off)
		release()
		if owned {
			g.fpPool.free(v)
		}
		return nil
	}
	v, owned, err := g.evalI(st.Val, noReg)
	if err != nil {
		return err
	}
	base, off, release, err := g.addr(st.Arr, st.Index)
	if err != nil {
		return err
	}
	g.asm.SD(v, base, off)
	release()
	if owned {
		g.intPool.free(v)
	}
	return nil
}

// loop generates a counted loop, choosing pointer mode when the loop
// variable is used only through unit-stride accesses (the paper's
// Listing 2 shape) and index mode otherwise.
func (g *rvGen) loop(l *ir.Loop) error {
	startC, startConst := constFold(l.Start)
	endC, endConst := constFold(l.End)
	if startConst && endConst && endC <= startC {
		return nil // statically empty
	}

	info := analyseLoop(l.Body, l.Var)
	// Strength-reduce only innermost loops: outer loops run rarely and
	// their pointers would starve the inner loops of registers (GCC's
	// induction-variable optimisation makes the same trade).
	if hasInnerLoop(l.Body) || g.opts.NoStrengthReduction {
		info.streams = nil
		info.otherUses = true
	}
	// Validate stream invariants and apply the pointer cap.
	var streams []stream
	needIndex := info.otherUses
	for _, s := range info.streams {
		if s.invVar != nil && assignedIn(l.Body, s.invVar) {
			needIndex = true // access must be computed, uses the index
			continue
		}
		if len(streams) == maxPointerStreams {
			needIndex = true
			continue
		}
		streams = append(streams, s)
	}
	if len(streams) == 0 {
		needIndex = true
	}

	// Evaluate bounds.
	var startReg uint8
	startOwned := false
	if !startConst {
		r, owned, err := g.evalI(l.Start, noReg)
		if err != nil {
			return err
		}
		startReg, startOwned = r, owned
	}
	endReg, endOwned, err := g.evalI(l.End, noReg)
	if err != nil {
		return err
	}

	// Guard for possibly-empty loops.
	doneL := g.label("done")
	loopL := g.label("loop")
	if !(startConst && endConst) {
		if startConst {
			t, err := g.intPool.alloc()
			if err != nil {
				return err
			}
			g.asm.LI(t, startC)
			g.asm.BGE(t, endReg, doneL)
			g.intPool.free(t)
		} else {
			g.asm.BGE(startReg, endReg, doneL)
		}
	}

	// Bind every variable the body assigns (and the loop variable when
	// an index is needed) before taking pointer registers, so the
	// spare-register margin below only has to cover expression
	// temporaries.
	if err := g.prebindVars(l.Body); err != nil {
		return err
	}
	if needIndex {
		if _, err := g.varReg(l.Var); err != nil {
			return err
		}
	}

	// Pointer setup: best-effort under register pressure. A stream
	// that cannot get a pointer register falls back to computed
	// addressing, which requires the index register — mirroring GCC's
	// induction-variable selection giving up under pressure. Keep
	// registers spare for expression temporaries.
	ctx := &rvLoopCtx{lv: l.Var, ptrs: map[stream]uint8{}, scaledIdx: noReg}
	ptrOrder := make([]uint8, 0, len(streams))
	kept := streams[:0]
	for _, s := range streams {
		if len(g.intPool.order)-g.intPool.inUse() <= 3 {
			needIndex = true
			break
		}
		ptr, err := g.intPool.alloc()
		if err != nil {
			needIndex = true
			break
		}
		g.leaStream(ptr, s, startReg, startC, startConst)
		ctx.ptrs[s] = ptr
		ptrOrder = append(ptrOrder, ptr)
		kept = append(kept, s)
	}
	streams = kept
	if len(streams) == 0 {
		needIndex = true
	}

	// Termination: either an index register or an end pointer.
	var idxReg, endPtr uint8 = noReg, noReg
	if needIndex {
		r, err := g.varReg(l.Var)
		if err != nil {
			return err
		}
		idxReg = r
		if startConst {
			g.asm.LI(idxReg, startC)
		} else {
			g.asm.MV(idxReg, startReg)
		}
		// If plain unit-stride accesses were left without pointers,
		// share one scaled-index induction variable among them.
		plainLeftover := false
		for _, s := range info.streams {
			if s.invVar == nil {
				if _, got := ctx.ptrs[s]; !got {
					plainLeftover = true
					break
				}
			}
		}
		if plainLeftover && !g.opts.NoStrengthReduction && len(g.intPool.order)-g.intPool.inUse() > 2 {
			if si, err := g.intPool.alloc(); err == nil {
				ctx.scaledIdx = si
				g.asm.SLLI(si, idxReg, 3)
			}
		}
	} else {
		endPtr, err = g.intPool.alloc()
		if err != nil {
			return err
		}
		g.leaStream(endPtr, streams[0], endReg, endC, false)
	}
	if startOwned {
		g.intPool.free(startReg)
	}

	g.asm.Label(loopL)
	g.loops = append(g.loops, ctx)
	if err := g.stmts(l.Body); err != nil {
		return err
	}
	g.loops = g.loops[:len(g.loops)-1]

	// Increment and branch: fused compare-and-branch, the RISC-V
	// advantage the paper highlights.
	for _, ptr := range ptrOrder {
		g.asm.ADDI(ptr, ptr, 8)
	}
	if ctx.scaledIdx != noReg {
		g.asm.ADDI(ctx.scaledIdx, ctx.scaledIdx, 8)
	}
	if needIndex {
		g.asm.ADDI(idxReg, idxReg, 1)
		g.asm.BNE(idxReg, endReg, loopL)
	} else {
		g.asm.BNE(ctx.ptrs[streams[0]], endPtr, loopL)
	}
	g.asm.Label(doneL)

	if ctx.scaledIdx != noReg {
		g.intPool.free(ctx.scaledIdx)
	}
	for _, ptr := range ptrOrder {
		g.intPool.free(ptr)
	}
	if endPtr != noReg {
		g.intPool.free(endPtr)
	}
	if endOwned {
		g.intPool.free(endReg)
	}
	// The loop variable register (if bound) stays allocated: it is a
	// kernel-scoped variable and may be read after the loop.
	return g.err
}

// prebindVars allocates registers for every variable assigned in the
// statement list (recursively), so later pointer allocation sees the
// true residual pressure.
func (g *rvGen) prebindVars(stmts []ir.Stmt) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			if _, err := g.varReg(st.Var); err != nil {
				return err
			}
		case *ir.Loop:
			if err := g.prebindVars(st.Body); err != nil {
				return err
			}
		case *ir.If:
			if err := g.prebindVars(st.Then); err != nil {
				return err
			}
			if err := g.prebindVars(st.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

// leaStream computes ptr = arrayBase + (bound + inv)*8, where bound is
// either a constant (boundConst true) or a register.
func (g *rvGen) leaStream(ptr uint8, s stream, boundReg uint8, boundC int64, boundConst bool) {
	base := g.arrBase[s.arr]
	switch {
	case s.invVar == nil && boundConst:
		total := (boundC + s.invConst) * 8
		if total == 0 {
			g.asm.MV(ptr, base)
		} else if total >= -2048 && total < 2048 {
			g.asm.ADDI(ptr, base, total)
		} else {
			g.asm.LI(ptr, total)
			g.asm.ADD(ptr, ptr, base)
		}
	case s.invVar == nil:
		g.asm.SLLI(ptr, boundReg, 3)
		g.asm.ADD(ptr, ptr, base)
		if s.invConst != 0 {
			off := s.invConst * 8
			if off >= -2048 && off < 2048 {
				g.asm.ADDI(ptr, ptr, off)
			} else {
				t, err := g.intPool.alloc()
				if err != nil {
					g.fail(err)
					return
				}
				g.asm.LI(t, off)
				g.asm.ADD(ptr, ptr, t)
				g.intPool.free(t)
			}
		}
	default:
		inv := g.vars[s.invVar]
		if boundConst {
			if boundC >= -2048 && boundC < 2048 {
				g.asm.ADDI(ptr, inv, boundC)
			} else {
				g.asm.LI(ptr, boundC)
				g.asm.ADD(ptr, ptr, inv)
			}
		} else {
			g.asm.ADD(ptr, inv, boundReg)
		}
		g.asm.SLLI(ptr, ptr, 3)
		g.asm.ADD(ptr, ptr, base)
	}
}

func f64bitsOf(v float64) uint64 { return math.Float64bits(v) }
