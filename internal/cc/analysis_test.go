package cc

import (
	"testing"

	"isacmp/internal/ir"
)

func TestMatchStream(t *testing.T) {
	arr := &ir.Array{Name: "a", Elem: ir.F64, Len: 8}
	lv := ir.NewVar("i", ir.I64)
	inv := ir.NewVar("row", ir.I64)
	other := ir.NewVar("j", ir.I64)

	cases := []struct {
		idx     ir.Expr
		ok      bool
		invVar  *ir.Var
		invCons int64
	}{
		{ir.V(lv), true, nil, 0},
		{ir.AddE(ir.CI(3), ir.V(lv)), true, nil, 3},
		{ir.AddE(ir.V(lv), ir.CI(-2)), true, nil, -2},
		{ir.AddE(ir.V(inv), ir.V(lv)), true, inv, 0},
		{ir.AddE(ir.V(lv), ir.V(inv)), true, inv, 0},
		{ir.V(other), false, nil, 0},
		{ir.AddE(ir.V(lv), ir.V(lv)), false, nil, 0}, // 2*i is not unit stride
		{ir.SubE(ir.V(lv), ir.CI(1)), false, nil, 0}, // Sub form not recognised
		{ir.MulE(ir.V(lv), ir.CI(2)), false, nil, 0},
		{ir.AddE(ir.AddE(ir.V(inv), ir.V(other)), ir.V(lv)), false, nil, 0}, // nested inv
		{ir.CI(7), false, nil, 0},
	}
	for i, c := range cases {
		s, ok := matchStream(arr, c.idx, lv)
		if ok != c.ok {
			t.Errorf("case %d: ok = %v, want %v", i, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if s.invVar != c.invVar || s.invConst != c.invCons {
			t.Errorf("case %d: stream %+v, want inv=%v const=%d", i, s, c.invVar, c.invCons)
		}
	}
}

func TestAnalyseLoop(t *testing.T) {
	arr := &ir.Array{Name: "a", Elem: ir.F64, Len: 8}
	brr := &ir.Array{Name: "b", Elem: ir.F64, Len: 8}
	lv := ir.NewVar("i", ir.I64)

	// Pure stream accesses: no other uses.
	info := analyseLoop([]ir.Stmt{
		&ir.Store{Arr: arr, Index: ir.V(lv), Val: ir.Ld(brr, ir.V(lv))},
	}, lv)
	if info.otherUses {
		t.Error("pure stream loop flagged otherUses")
	}
	if len(info.streams) != 2 {
		t.Errorf("streams = %d, want 2", len(info.streams))
	}

	// Arithmetic use of the loop variable.
	v := ir.NewVar("x", ir.F64)
	info = analyseLoop([]ir.Stmt{
		&ir.Assign{Var: v, Val: ir.I2F(ir.V(lv))},
	}, lv)
	if !info.otherUses {
		t.Error("arithmetic use not flagged")
	}

	// Non-stream index shape uses the variable.
	info = analyseLoop([]ir.Stmt{
		&ir.Store{Arr: arr, Index: ir.MulE(ir.V(lv), ir.CI(2)), Val: ir.CF(0)},
	}, lv)
	if !info.otherUses {
		t.Error("strided index not flagged as other use")
	}

	// Duplicate streams are deduplicated (load + store of same shape).
	info = analyseLoop([]ir.Stmt{
		&ir.Store{Arr: arr, Index: ir.V(lv), Val: ir.Ld(arr, ir.V(lv))},
	}, lv)
	if len(info.streams) != 1 {
		t.Errorf("dedup failed: %d streams", len(info.streams))
	}

	// Inner-loop bounds that read lv count as uses.
	inner := ir.NewVar("j", ir.I64)
	info = analyseLoop([]ir.Stmt{
		&ir.Loop{Var: inner, Start: ir.CI(0), End: ir.V(lv)},
	}, lv)
	if !info.otherUses {
		t.Error("inner-loop bound use not flagged")
	}
}

func TestAssignedIn(t *testing.T) {
	v := ir.NewVar("v", ir.I64)
	w := ir.NewVar("w", ir.I64)
	stmts := []ir.Stmt{
		&ir.If{Cond: ir.CI(1), Then: []ir.Stmt{&ir.Assign{Var: v, Val: ir.CI(0)}}},
	}
	if !assignedIn(stmts, v) {
		t.Error("assignment inside If not found")
	}
	if assignedIn(stmts, w) {
		t.Error("false positive")
	}
	loopStmts := []ir.Stmt{&ir.Loop{Var: w, Start: ir.CI(0), End: ir.CI(1)}}
	if !assignedIn(loopStmts, w) {
		t.Error("loop variable counts as assigned")
	}
}

func TestHasInnerLoop(t *testing.T) {
	i := ir.NewVar("i", ir.I64)
	if hasInnerLoop([]ir.Stmt{&ir.Assign{Var: i, Val: ir.CI(0)}}) {
		t.Error("false positive")
	}
	if !hasInnerLoop([]ir.Stmt{&ir.Loop{Var: i, Start: ir.CI(0), End: ir.CI(1)}}) {
		t.Error("direct loop missed")
	}
	if !hasInnerLoop([]ir.Stmt{
		&ir.If{Cond: ir.CI(1), Else: []ir.Stmt{&ir.Loop{Var: i, Start: ir.CI(0), End: ir.CI(1)}}},
	}) {
		t.Error("loop inside else missed")
	}
}

func TestCollectFPConsts(t *testing.T) {
	arr := &ir.Array{Name: "a", Elem: ir.F64, Len: 4}
	consts := collectFPConsts([]ir.Stmt{
		&ir.Store{Arr: arr, Index: ir.CI(0),
			Val: ir.AddE(ir.CF(1.5), ir.MulE(ir.CF(2.5), ir.CF(1.5)))},
	})
	if len(consts) != 2 || consts[0] != 1.5 || consts[1] != 2.5 {
		t.Fatalf("consts = %v", consts)
	}
}

func TestRegPool(t *testing.T) {
	p := newRegPool("test", []uint8{3, 7, 9})
	a, err := p.alloc()
	if err != nil || a != 3 {
		t.Fatalf("first alloc = %d, %v", a, err)
	}
	b, _ := p.alloc()
	c, _ := p.alloc()
	if b != 7 || c != 9 {
		t.Fatalf("allocs: %d %d", b, c)
	}
	if _, err := p.alloc(); err == nil {
		t.Fatal("exhausted pool allocated")
	}
	p.free(b)
	if p.inUse() != 2 {
		t.Fatalf("inUse = %d", p.inUse())
	}
	d, _ := p.alloc()
	if d != 7 {
		t.Fatalf("freed register not reused: %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.free(3)
	p.free(3)
}

func TestTargetsOrder(t *testing.T) {
	ts := Targets()
	if len(ts) != 4 {
		t.Fatalf("targets = %d", len(ts))
	}
	if ts[0].String() != "AArch64/GCC 9.2" || ts[3].String() != "RISC-V/GCC 12.2" {
		t.Fatalf("order: %v", ts)
	}
}
