package cc

import (
	"fmt"

	"isacmp/internal/a64"
	"isacmp/internal/elfio"
	"isacmp/internal/ir"
)

// a64Gen holds the state of one AArch64 compilation.
type a64Gen struct {
	asm    *a64.Asm
	flavor Flavor
	lay    *dataLayout
	opts   Options

	intPool *regPool
	fpPool  *regPool

	vars    map[*ir.Var]uint8
	arrBase map[*ir.Array]uint8
	constFP map[float64]uint8

	loops  []*a64LoopCtx
	labelN int
	err    error
}

type a64LoopCtx struct {
	lv  *ir.Var
	reg uint8
	// bases holds hoisted per-stream base registers: for an access
	// arr[inv + lv], the register holds &arr[inv] so the access itself
	// is a single register-offset load/store — GCC's loop-invariant
	// address hoisting.
	bases map[stream]uint8
}

// compileA64 lowers the program for the scalar AArch64 subset. Loops
// keep an element-index register and use register-offset addressing
// ("ldr d1, [x22, x0, lsl #3]"); the flavour decides how loop-exit
// comparisons against large constant bounds are generated (see the
// package comment).
func compileA64(p *ir.Program, flavor Flavor, lay *dataLayout, opts Options) (*elfio.File, error) {
	g := &a64Gen{
		asm:    a64.NewAsm(),
		flavor: flavor,
		lay:    lay,
		opts:   opts,
		// x8 is the syscall number register; x16-x18 are reserved by
		// the platform ABI. The generated code is one leaf function
		// with no frame, so x29/x30 join the pool as GCC's
		// -fomit-frame-pointer leaf allocation would use them.
		intPool: newRegPool("integer", []uint8{
			9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7,
			19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30,
		}),
		fpPool: newRegPool("floating-point", []uint8{
			0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23,
			8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 26, 27, 28, 29, 30, 31,
		}),
		vars:    map[*ir.Var]uint8{},
		arrBase: map[*ir.Array]uint8{},
		constFP: map[float64]uint8{},
	}

	g.asm.Symbol("_start")
	if flavor == GCC9 {
		// Model GCC 9.2's slightly chattier startup (the statically
		// linked binaries the paper measures differ mainly here, plus
		// the NEON register zeroing it could not eliminate).
		for _, r := range []uint8{0, 1, 2} {
			g.asm.MOV64(r, 0)
		}
	}

	for _, k := range p.Setup {
		if err := g.kernel(k); err != nil {
			return nil, fmt.Errorf("setup kernel %q: %w", k.Name, err)
		}
	}

	repeatReg := uint8(noReg)
	if p.Repeat > 1 {
		r, err := g.intPool.alloc()
		if err != nil {
			return nil, err
		}
		repeatReg = r
		g.asm.MOV64(repeatReg, int64(p.Repeat))
		g.asm.Label("repeat")
	}

	for _, k := range p.Kernels {
		if err := g.kernel(k); err != nil {
			return nil, fmt.Errorf("kernel %q: %w", k.Name, err)
		}
	}

	if p.Repeat > 1 {
		g.asm.Symbol("_loop_overhead")
		g.asm.SUBSi(repeatReg, repeatReg, 1)
		g.asm.Bc(a64.NE, "repeat")
	}

	g.asm.Symbol("_exit")
	g.asm.MOV64(0, 0)
	g.asm.MOV64(8, 93)
	g.asm.SVC()

	if g.err != nil {
		return nil, g.err
	}
	return g.asm.Build(a64.Program{
		TextBase: TextBase,
		DataBase: DataBase,
		Data:     lay.data,
	})
}

func (g *a64Gen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

func (g *a64Gen) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

func (g *a64Gen) kernel(k *ir.Kernel) error {
	g.asm.Symbol(k.Name)
	var scoped []func()

	for _, arr := range collectArrays(k.Body) {
		r, err := g.intPool.alloc()
		if err != nil {
			return err
		}
		g.asm.MOV64(r, int64(g.lay.base[arr.Name]))
		g.arrBase[arr] = r
		arr := arr
		scoped = append(scoped, func() { delete(g.arrBase, arr); g.intPool.free(r) })
	}
	consts := collectFPConsts(k.Body)
	if len(consts) > 10 {
		consts = consts[:10]
	}
	for _, c := range consts {
		fr, err := g.fpPool.alloc()
		if err != nil {
			return err
		}
		g.materialiseF(c, fr)
		g.constFP[c] = fr
		c := c
		scoped = append(scoped, func() { delete(g.constFP, c); g.fpPool.free(fr) })
	}

	if err := g.stmts(k.Body); err != nil {
		return err
	}

	for vr, r := range g.vars {
		if vr.Type == ir.F64 {
			g.fpPool.free(r)
		} else {
			g.intPool.free(r)
		}
		delete(g.vars, vr)
	}
	for i := len(scoped) - 1; i >= 0; i-- {
		scoped[i]()
	}
	return nil
}

// materialiseF loads an FP constant into fr, preferring the FMOV
// immediate form.
func (g *a64Gen) materialiseF(c float64, fr uint8) {
	if g.asm.FMOVimm(fr, c) {
		return
	}
	t, err := g.intPool.alloc()
	if err != nil {
		g.fail(err)
		return
	}
	g.asm.MOV64(t, int64(f64bitsOf(c)))
	g.asm.FMOVDX(fr, t)
	g.intPool.free(t)
}

func (g *a64Gen) stmts(body []ir.Stmt) error {
	for _, s := range body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return g.err
}

func (g *a64Gen) stmt(s ir.Stmt) error {
	switch st := s.(type) {
	case *ir.Loop:
		return g.loop(st)
	case *ir.Assign:
		return g.assign(st)
	case *ir.Store:
		return g.store(st)
	case *ir.If:
		return g.ifStmt(st)
	}
	return fmt.Errorf("a64gen: unknown statement %T", s)
}

// prebindVars allocates registers for every variable assigned in the
// statement list (recursively).
func (g *a64Gen) prebindVars(stmts []ir.Stmt) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			if _, err := g.varReg(st.Var); err != nil {
				return err
			}
		case *ir.Loop:
			if err := g.prebindVars(st.Body); err != nil {
				return err
			}
		case *ir.If:
			if err := g.prebindVars(st.Then); err != nil {
				return err
			}
			if err := g.prebindVars(st.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *a64Gen) varReg(v *ir.Var) (uint8, error) {
	if r, ok := g.vars[v]; ok {
		return r, nil
	}
	var r uint8
	var err error
	if v.Type == ir.F64 {
		r, err = g.fpPool.alloc()
	} else {
		r, err = g.intPool.alloc()
	}
	if err != nil {
		return 0, fmt.Errorf("variable %q: %w", v.Name, err)
	}
	g.vars[v] = r
	return r, nil
}

func (g *a64Gen) assign(st *ir.Assign) error {
	r, err := g.varReg(st.Var)
	if err != nil {
		return err
	}
	if st.Var.Type == ir.F64 {
		got, owned, err := g.evalF(st.Val, r)
		if err != nil {
			return err
		}
		if got != r {
			g.asm.FMOV(r, got)
			if owned {
				g.fpPool.free(got)
			}
		}
		return nil
	}
	got, owned, err := g.evalI(st.Val, r)
	if err != nil {
		return err
	}
	if got != r {
		g.asm.MOV(r, got)
		if owned {
			g.intPool.free(got)
		}
	}
	return nil
}

// access emits a load or store of arr[idx], exploiting AArch64's
// addressing modes: unsigned scaled immediates for constant indexes
// and register-offset with lsl #3 otherwise (the paper's Listing 1
// form); accesses matching a hoisted stream base use it directly.
// valReg is the data register; isLoad selects the direction.
func (g *a64Gen) access(arr *ir.Array, idx ir.Expr, valReg uint8, isLoad bool) error {
	fp := arr.Elem == ir.F64
	op := a64.STR
	if isLoad {
		op = a64.LDR
	}
	if c, ok := constFold(idx); ok {
		off := c * 8
		if off >= 0 && off <= 4095*8 {
			g.asm.Emit(a64.Inst{Op: op, Size: 8, FP: fp, Rd: valReg, Rn: g.arrBase[arr], Imm: off})
			return nil
		}
	}
	// Hoisted stream base: one register-offset access.
	for i := len(g.loops) - 1; i >= 0; i-- {
		ctx := g.loops[i]
		if s, ok := matchStream(arr, idx, ctx.lv); ok {
			if base, ok := ctx.bases[s]; ok {
				g.asm.Emit(a64.Inst{
					Op: op, Size: 8, FP: fp, Rd: valReg, Rn: base,
					Rm: g.vars[ctx.lv], Mode: a64.ModeReg, ShiftAmt: 3,
				})
				return nil
			}
			break
		}
	}
	r, owned, err := g.evalI(idx, noReg)
	if err != nil {
		return err
	}
	g.asm.Emit(a64.Inst{
		Op: op, Size: 8, FP: fp, Rd: valReg, Rn: g.arrBase[arr], Rm: r,
		Mode: a64.ModeReg, ShiftAmt: 3,
	})
	if owned {
		g.intPool.free(r)
	}
	return nil
}

func (g *a64Gen) store(st *ir.Store) error {
	if st.Arr.Elem == ir.F64 {
		v, owned, err := g.evalF(st.Val, noReg)
		if err != nil {
			return err
		}
		if err := g.access(st.Arr, st.Index, v, false); err != nil {
			return err
		}
		if owned {
			g.fpPool.free(v)
		}
		return nil
	}
	v, owned, err := g.evalI(st.Val, noReg)
	if err != nil {
		return err
	}
	if err := g.access(st.Arr, st.Index, v, false); err != nil {
		return err
	}
	if owned {
		g.intPool.free(v)
	}
	return nil
}

// loop generates a counted loop in the AArch64 style: an element index
// register incremented each iteration, with the flavour-specific exit
// comparison the paper analyses in section 3.3.
func (g *a64Gen) loop(l *ir.Loop) error {
	startC, startConst := constFold(l.Start)
	endC, endConst := constFold(l.End)
	if startConst && endConst && endC <= startC {
		return nil
	}

	idxReg, err := g.varReg(l.Var)
	if err != nil {
		return err
	}
	if startConst {
		g.asm.MOV64(idxReg, startC)
	} else {
		r, owned, err := g.evalI(l.Start, idxReg)
		if err != nil {
			return err
		}
		if r != idxReg {
			g.asm.MOV(idxReg, r)
			if owned {
				g.intPool.free(r)
			}
		}
	}

	// Decide the exit-comparison strategy.
	type exitKind uint8
	const (
		exitCmpReg  exitKind = iota // cmp xI, xEnd
		exitCmpImm                  // cmp xI, #imm
		exitSubSubs                 // sub xT, xI, #hi, lsl 12; subs xT, xT, #lo
	)
	kind := exitCmpReg
	var endReg, scratch uint8 = noReg, noReg
	endOwned := false
	var hi, lo int64
	switch {
	case endConst && endC >= 0 && endC <= 4095:
		kind = exitCmpImm
	case endConst && g.flavor == GCC9 && endC >= 0 && endC < 1<<24:
		// The GCC 9.2 idiom: recompute (i - end) each iteration.
		kind = exitSubSubs
		hi, lo = endC>>12, endC&0xfff
		scratch, err = g.intPool.alloc()
		if err != nil {
			return err
		}
	case endConst:
		// GCC 12.2 (and 9.2 for >24-bit bounds): hoist the bound.
		endReg, err = g.intPool.alloc()
		if err != nil {
			return err
		}
		endOwned = true
		g.asm.MOV64(endReg, endC)
	default:
		r, owned, err := g.evalI(l.End, noReg)
		if err != nil {
			return err
		}
		endReg, endOwned = r, owned
	}

	doneL := g.label("done")
	loopL := g.label("loop")
	if !(startConst && endConst) {
		// Guard against empty loops.
		switch kind {
		case exitCmpImm:
			g.asm.CMPi(idxReg, endC)
		case exitSubSubs:
			g.asm.SUBiHi(scratch, idxReg, hi)
			g.asm.SUBSi(scratch, scratch, lo)
		default:
			g.asm.CMP(idxReg, endReg)
		}
		g.asm.Bc(a64.GE, doneL)
	}

	// Bind every variable the body assigns before hoisting stream
	// bases, so the spare-register margin only has to cover expression
	// temporaries.
	if err := g.prebindVars(l.Body); err != nil {
		return err
	}

	// Hoist loop-invariant stream bases (&arr[inv]) so grid accesses
	// like xvel[rowN + ii] stay single register-offset instructions,
	// as GCC's invariant-address motion keeps them.
	ctx := &a64LoopCtx{lv: l.Var, reg: idxReg, bases: map[stream]uint8{}}
	var hoisted []uint8
	if !hasInnerLoop(l.Body) && !g.opts.NoHoisting {
		info := analyseLoop(l.Body, l.Var)
		for _, s := range info.streams {
			if s.invVar == nil && s.invConst == 0 {
				continue // the plain array base already serves
			}
			if s.invVar != nil {
				if _, bound := g.vars[s.invVar]; !bound || assignedIn(l.Body, s.invVar) {
					continue
				}
			}
			if len(g.intPool.order)-g.intPool.inUse() <= 3 {
				break
			}
			base, err := g.intPool.alloc()
			if err != nil {
				break
			}
			if s.invVar != nil {
				g.asm.ADDshift(base, g.arrBase[s.arr], g.vars[s.invVar], a64.LSL, 3)
			} else {
				off := s.invConst * 8
				switch {
				case off >= 0 && off <= 4095:
					g.asm.ADDi(base, g.arrBase[s.arr], off)
				case off < 0 && -off <= 4095:
					g.asm.SUBi(base, g.arrBase[s.arr], -off)
				default:
					g.asm.MOV64(base, off)
					g.asm.ADD(base, base, g.arrBase[s.arr])
				}
			}
			ctx.bases[s] = base
			hoisted = append(hoisted, base)
		}
	}

	g.asm.Label(loopL)
	g.loops = append(g.loops, ctx)
	if err := g.stmts(l.Body); err != nil {
		return err
	}
	g.loops = g.loops[:len(g.loops)-1]
	for _, r := range hoisted {
		g.intPool.free(r)
	}

	// Increment and exit test: AArch64 pays a separate NZCV-setting
	// instruction before every conditional branch.
	g.asm.ADDi(idxReg, idxReg, 1)
	switch kind {
	case exitCmpImm:
		g.asm.CMPi(idxReg, endC)
	case exitSubSubs:
		g.asm.SUBiHi(scratch, idxReg, hi)
		g.asm.SUBSi(scratch, scratch, lo)
	default:
		g.asm.CMP(idxReg, endReg)
	}
	g.asm.Bc(a64.NE, loopL)
	g.asm.Label(doneL)

	if scratch != noReg {
		g.intPool.free(scratch)
	}
	if endOwned && endReg != noReg {
		g.intPool.free(endReg)
	}
	return g.err
}
