package cc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"isacmp/internal/a64"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/rv64"
	"isacmp/internal/simeng"
)

// TestDifferentialFuzz compiles randomly generated programs for every
// target, runs them on the simulators and demands bit-identical array
// contents against the host interpreter — a whole-stack differential
// test covering the IR, both compilers, both encoders/decoders, both
// executors and the ELF round trip.
func TestDifferentialFuzz(t *testing.T) {
	iterations := 150
	if testing.Short() {
		iterations = 25
	}
	for seed := 0; seed < iterations; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		prog := ir.RandomProgram(r)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v", seed, err)
		}

		ref := ir.NewInterp(prog)
		if err := ref.Run(); err != nil {
			t.Fatalf("seed %d: interpreter: %v", seed, err)
		}

		for _, tgt := range Targets() {
			c, err := Compile(prog, tgt)
			if err != nil {
				// The compiler has no spilling; register exhaustion on
				// a pathological random program is detected and
				// reported, which is the contract. Anything else is a
				// bug.
				if strings.Contains(err.Error(), "out of") {
					continue
				}
				t.Fatalf("seed %d: %s: compile: %v", seed, tgt, err)
			}
			m := mem.New(TextBase, c.MemSize)
			var mach simeng.Machine
			if tgt.Arch == isa.AArch64 {
				mach, err = a64.NewMachine(c.File, m)
			} else {
				mach, err = rv64.NewMachine(c.File, m)
			}
			if err != nil {
				t.Fatalf("seed %d: %s: load: %v", seed, tgt, err)
			}
			if _, err := (&simeng.EmulationCore{MaxInstructions: 10_000_000}).Run(mach, nil); err != nil {
				t.Fatalf("seed %d: %s: run: %v", seed, tgt, err)
			}
			for _, arr := range prog.Arrays {
				base := c.ArrayBase[arr.Name]
				for i := 0; i < arr.Len; i++ {
					bits, err := m.Read64(base + uint64(i)*8)
					if err != nil {
						t.Fatal(err)
					}
					if arr.Elem == ir.F64 {
						want := math.Float64bits(ref.ArrF[arr.Name][i])
						if bits != want {
							t.Fatalf("seed %d: %s: %s[%d] = %v (bits %#x), want %v (bits %#x)",
								seed, tgt, arr.Name, i,
								math.Float64frombits(bits), bits,
								ref.ArrF[arr.Name][i], want)
						}
					} else if int64(bits) != ref.ArrI[arr.Name][i] {
						t.Fatalf("seed %d: %s: %s[%d] = %d, want %d",
							seed, tgt, arr.Name, i, int64(bits), ref.ArrI[arr.Name][i])
					}
				}
			}
		}
	}
}

// TestDifferentialFuzzAblations repeats a smaller fuzz run with each
// ablation knob enabled, so the degraded code paths stay correct too.
func TestDifferentialFuzzAblations(t *testing.T) {
	ablations := []struct {
		name string
		opts Options
	}{
		{"no-fma", Options{NoFMA: true}},
		{"no-strength-reduction", Options{NoStrengthReduction: true}},
		{"no-hoisting", Options{NoHoisting: true}},
		{"all-off", Options{NoFMA: true, NoStrengthReduction: true, NoHoisting: true}},
	}
	for _, ab := range ablations {
		t.Run(ab.name, func(t *testing.T) {
			for seed := 1000; seed < 1030; seed++ {
				r := rand.New(rand.NewSource(int64(seed)))
				prog := ir.RandomProgram(r)
				ref := ir.NewInterp(prog)
				ref.NoFMA = ab.opts.NoFMA
				if err := ref.Run(); err != nil {
					t.Fatalf("seed %d: interpreter: %v", seed, err)
				}
				for _, tgt := range Targets() {
					c, err := CompileOpts(prog, tgt, ab.opts)
					if err != nil {
						if strings.Contains(err.Error(), "out of") {
							continue
						}
						t.Fatalf("seed %d: %s: %v", seed, tgt, err)
					}
					m := mem.New(TextBase, c.MemSize)
					var mach simeng.Machine
					if tgt.Arch == isa.AArch64 {
						mach, err = a64.NewMachine(c.File, m)
					} else {
						mach, err = rv64.NewMachine(c.File, m)
					}
					if err != nil {
						t.Fatal(err)
					}
					if _, err := (&simeng.EmulationCore{MaxInstructions: 10_000_000}).Run(mach, nil); err != nil {
						t.Fatalf("seed %d: %s: run: %v", seed, tgt, err)
					}
					for _, arr := range prog.Arrays {
						base := c.ArrayBase[arr.Name]
						for i := 0; i < arr.Len; i++ {
							bits, _ := m.Read64(base + uint64(i)*8)
							if arr.Elem == ir.F64 {
								if want := math.Float64bits(ref.ArrF[arr.Name][i]); bits != want {
									t.Fatalf("seed %d: %s: %s[%d] mismatch under %s",
										seed, tgt, arr.Name, i, ab.name)
								}
							} else if int64(bits) != ref.ArrI[arr.Name][i] {
								t.Fatalf("seed %d: %s: %s[%d] mismatch under %s",
									seed, tgt, arr.Name, i, ab.name)
							}
						}
					}
				}
			}
		})
	}
}

// TestAblationEffects checks each knob actually changes the generated
// code in the documented direction on a STREAM-like kernel.
func TestAblationEffects(t *testing.T) {
	const n = 1000
	p := ir.NewProgram("abl")
	a := p.Array("a", ir.F64, n)
	b := p.Array("b", ir.F64, n)
	c := p.Array("c", ir.F64, n)
	for i := 0; i < n; i++ {
		b.InitF = append(b.InitF, float64(i))
		c.InitF = append(c.InitF, float64(n-i))
	}
	i := ir.NewVar("i", ir.I64)
	p.Kernel("triad").Add(&ir.Loop{
		Var: i, Start: ir.CI(0), End: ir.CI(n),
		Body: []ir.Stmt{
			&ir.Store{Arr: a, Index: ir.V(i),
				Val: ir.AddE(ir.Ld(b, ir.V(i)), ir.MulE(ir.CF(3), ir.Ld(c, ir.V(i))))},
		},
	})

	run := func(tgt Target, opts Options) uint64 {
		t.Helper()
		comp, err := CompileOpts(p, tgt, opts)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New(TextBase, comp.MemSize)
		var mach simeng.Machine
		if tgt.Arch == isa.AArch64 {
			mach, err = a64.NewMachine(comp.File, m)
		} else {
			mach, err = rv64.NewMachine(comp.File, m)
		}
		if err != nil {
			t.Fatal(err)
		}
		stats, err := (&simeng.EmulationCore{}).Run(mach, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Instructions
	}

	rv := Target{Arch: isa.RV64, Flavor: GCC12}
	arm := Target{Arch: isa.AArch64, Flavor: GCC12}

	// FMA off adds one instruction per element on both ISAs.
	base := run(rv, Options{})
	nofma := run(rv, Options{NoFMA: true})
	if nofma < base+n-10 {
		t.Errorf("rv64 NoFMA: %d -> %d, expected ~+%d", base, nofma, n)
	}
	baseA := run(arm, Options{})
	nofmaA := run(arm, Options{NoFMA: true})
	if nofmaA < baseA+n-10 {
		t.Errorf("a64 NoFMA: %d -> %d, expected ~+%d", baseA, nofmaA, n)
	}

	// Strength reduction off costs RISC-V two extra instructions per
	// access (slli+add x 3 accesses, minus the removed pointer bumps).
	nosr := run(rv, Options{NoStrengthReduction: true})
	if nosr <= base {
		t.Errorf("rv64 NoStrengthReduction: %d -> %d, expected growth", base, nosr)
	}

	// Hoisting has no effect on this kernel (indexes are plain V(i)),
	// but must not change results or counts for AArch64 either.
	noh := run(arm, Options{NoHoisting: true})
	if noh != baseA {
		t.Errorf("a64 NoHoisting changed plain-index kernel: %d -> %d", baseA, noh)
	}
}
