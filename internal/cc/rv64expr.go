package cc

import (
	"fmt"

	"isacmp/internal/ir"
	"isacmp/internal/rv64"
)

// evalI evaluates an integer expression. dest, when not noReg, is a
// register the caller owns and would like the result in; the result
// may still land elsewhere (e.g. a borrowed variable register), so
// callers check the returned register. owned reports whether the
// caller must free the returned register back to the pool.
func (g *rvGen) evalI(e ir.Expr, dest uint8) (reg uint8, owned bool, err error) {
	switch ex := e.(type) {
	case ir.ConstI:
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.LI(r, ex.V)
		return r, owned, nil

	case ir.VarRef:
		r, ok := g.vars[ex.Var]
		if !ok {
			return 0, false, fmt.Errorf("rv64gen: variable %q read before assignment", ex.Var.Name)
		}
		return r, false, nil

	case ir.LoadExpr:
		base, off, release, err := g.addr(ex.Arr, ex.Index)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.LD(r, base, off)
		release()
		return r, owned, nil

	case ir.Cvt:
		if ex.To != ir.I64 {
			return 0, false, fmt.Errorf("rv64gen: float conversion in integer context")
		}
		f, fOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.FCVTLD(r, f)
		if fOwned {
			g.fpPool.free(f)
		}
		return r, owned, nil

	case ir.Un:
		a, aOwned, err := g.evalI(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Neg:
			g.asm.SUB(r, 0, a)
		case ir.Abs:
			// srai t, a, 63; xor r, a, t; sub r, r, t
			t, err := g.intPool.alloc()
			if err != nil {
				return 0, false, err
			}
			g.asm.SRAI(t, a, 63)
			g.asm.XOR(r, a, t)
			g.asm.SUB(r, r, t)
			g.intPool.free(t)
		default:
			return 0, false, fmt.Errorf("rv64gen: unary op %d on i64", ex.Op)
		}
		if aOwned {
			g.intPool.free(a)
		}
		return r, owned, nil

	case ir.Bin:
		return g.evalBinI(ex, dest)
	}
	return 0, false, fmt.Errorf("rv64gen: expression %T in integer context", e)
}

// intoI resolves the destination register for an integer result.
func (g *rvGen) intoI(dest uint8) (uint8, bool, error) {
	if dest != noReg {
		return dest, false, nil
	}
	r, err := g.intPool.alloc()
	return r, true, err
}

func (g *rvGen) intoF(dest uint8) (uint8, bool, error) {
	if dest != noReg {
		return dest, false, nil
	}
	r, err := g.fpPool.alloc()
	return r, true, err
}

// evalBinI lowers integer binary operators, folding small immediates
// into I-type instructions.
func (g *rvGen) evalBinI(ex ir.Bin, dest uint8) (uint8, bool, error) {
	if ex.Op >= ir.Lt && ex.Op <= ir.Ge {
		return g.evalCmp(ex, dest)
	}

	// Immediate folding; commutative operators fold a constant on
	// either side.
	if c, ok := constFold(ex.A); ok {
		switch ex.Op {
		case ir.Add, ir.And, ir.Or, ir.Mul:
			ex = ir.Bin{Op: ex.Op, A: ex.B, B: ir.ConstI{V: c}}
		}
	}
	if c, ok := constFold(ex.B); ok {
		fold := false
		var imm int64
		switch ex.Op {
		case ir.Add:
			fold, imm = c >= -2048 && c < 2048, c
		case ir.Sub:
			fold, imm = -c >= -2048 && -c < 2048, -c
		case ir.And:
			fold, imm = c >= -2048 && c < 2048, c
		case ir.Or:
			fold, imm = c >= -2048 && c < 2048, c
		case ir.Shl, ir.Shr:
			fold, imm = c >= 0 && c < 64, c
		}
		if fold {
			a, aOwned, err := g.evalI(ex.A, noReg)
			if err != nil {
				return 0, false, err
			}
			r, owned, err := g.intoI(dest)
			if err != nil {
				return 0, false, err
			}
			switch ex.Op {
			case ir.Add, ir.Sub:
				g.asm.ADDI(r, a, imm)
			case ir.And:
				g.asm.ANDI(r, a, imm)
			case ir.Or:
				g.asm.ORI(r, a, imm)
			case ir.Shl:
				g.asm.SLLI(r, a, imm)
			case ir.Shr:
				g.asm.SRLI(r, a, imm)
			}
			if aOwned {
				g.intPool.free(a)
			}
			return r, owned, nil
		}
	}

	a, aOwned, err := g.evalI(ex.A, noReg)
	if err != nil {
		return 0, false, err
	}
	b, bOwned, err := g.evalI(ex.B, noReg)
	if err != nil {
		return 0, false, err
	}
	r, owned, err := g.intoI(dest)
	if err != nil {
		return 0, false, err
	}
	switch ex.Op {
	case ir.Add:
		g.asm.ADD(r, a, b)
	case ir.Sub:
		g.asm.SUB(r, a, b)
	case ir.Mul:
		g.asm.MUL(r, a, b)
	case ir.Div:
		g.asm.DIV(r, a, b)
	case ir.Rem:
		g.asm.REM(r, a, b)
	case ir.And:
		g.asm.AND(r, a, b)
	case ir.Or:
		g.asm.OR(r, a, b)
	case ir.Shl:
		g.asm.SLL(r, a, b)
	case ir.Shr:
		g.asm.SRL(r, a, b)
	default:
		return 0, false, fmt.Errorf("rv64gen: op %d invalid on i64", ex.Op)
	}
	if aOwned {
		g.intPool.free(a)
	}
	if bOwned {
		g.intPool.free(b)
	}
	return r, owned, nil
}

// evalCmp materialises a comparison as 0/1, using slt/sltu for the
// integer orders and flt/fle/feq for FP.
func (g *rvGen) evalCmp(ex ir.Bin, dest uint8) (uint8, bool, error) {
	if ex.A.Type() == ir.F64 {
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		b, bOwned, err := g.evalF(ex.B, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		negate := false
		switch ex.Op {
		case ir.Lt:
			g.asm.FLTD(r, a, b)
		case ir.Le:
			g.asm.FLED(r, a, b)
		case ir.Gt:
			g.asm.FLTD(r, b, a)
		case ir.Ge:
			g.asm.FLED(r, b, a)
		case ir.Eq:
			g.asm.FEQD(r, a, b)
		case ir.Ne:
			g.asm.FEQD(r, a, b)
			negate = true
		}
		if negate {
			g.asm.XORI(r, r, 1)
		}
		if aOwned {
			g.fpPool.free(a)
		}
		if bOwned {
			g.fpPool.free(b)
		}
		return r, owned, nil
	}

	a, aOwned, err := g.evalI(ex.A, noReg)
	if err != nil {
		return 0, false, err
	}
	b, bOwned, err := g.evalI(ex.B, noReg)
	if err != nil {
		return 0, false, err
	}
	r, owned, err := g.intoI(dest)
	if err != nil {
		return 0, false, err
	}
	switch ex.Op {
	case ir.Lt:
		g.asm.SLT(r, a, b)
	case ir.Gt:
		g.asm.SLT(r, b, a)
	case ir.Ge:
		g.asm.SLT(r, a, b)
		g.asm.XORI(r, r, 1)
	case ir.Le:
		g.asm.SLT(r, b, a)
		g.asm.XORI(r, r, 1)
	case ir.Eq:
		g.asm.XOR(r, a, b)
		g.asm.SLTIU(r, r, 1)
	case ir.Ne:
		g.asm.XOR(r, a, b)
		g.asm.SLTU(r, 0, r)
	}
	if aOwned {
		g.intPool.free(a)
	}
	if bOwned {
		g.intPool.free(b)
	}
	return r, owned, nil
}

// evalF evaluates a floating-point expression.
func (g *rvGen) evalF(e ir.Expr, dest uint8) (reg uint8, owned bool, err error) {
	// Fused multiply-add contraction.
	if a, b, c, kind := ir.MatchFMA(e); kind != ir.FMANone && !g.opts.NoFMA {
		ra, aOwned, err := g.evalF(a, noReg)
		if err != nil {
			return 0, false, err
		}
		rb, bOwned, err := g.evalF(b, noReg)
		if err != nil {
			return 0, false, err
		}
		rc, cOwned, err := g.evalF(c, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch kind {
		case ir.FMAAdd: // a*b + c
			g.asm.FMADDD(r, ra, rb, rc)
		case ir.FMASub: // a*b - c
			g.asm.FMSUBD(r, ra, rb, rc)
		default: // c - a*b
			g.asm.Emit(rv64.Inst{Op: rv64.FNMSUBD, Rd: r, Rs1: ra, Rs2: rb, Rs3: rc})
		}
		if aOwned {
			g.fpPool.free(ra)
		}
		if bOwned {
			g.fpPool.free(rb)
		}
		if cOwned {
			g.fpPool.free(rc)
		}
		return r, owned, nil
	}

	switch ex := e.(type) {
	case ir.ConstF:
		if r, ok := g.constFP[ex.V]; ok {
			return r, false, nil
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		g.materialiseF(ex.V, r)
		return r, owned, g.err

	case ir.VarRef:
		r, ok := g.vars[ex.Var]
		if !ok {
			return 0, false, fmt.Errorf("rv64gen: variable %q read before assignment", ex.Var.Name)
		}
		return r, false, nil

	case ir.LoadExpr:
		base, off, release, err := g.addr(ex.Arr, ex.Index)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.FLD(r, base, off)
		release()
		return r, owned, nil

	case ir.Cvt:
		if ex.To != ir.F64 {
			return 0, false, fmt.Errorf("rv64gen: integer conversion in float context")
		}
		a, aOwned, err := g.evalI(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.FCVTDL(r, a)
		if aOwned {
			g.intPool.free(a)
		}
		return r, owned, nil

	case ir.Un:
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Neg:
			g.asm.FNEGD(r, a)
		case ir.Sqrt:
			g.asm.FSQRTD(r, a)
		case ir.Abs:
			g.asm.FABSD(r, a)
		}
		if aOwned {
			g.fpPool.free(a)
		}
		return r, owned, nil

	case ir.Bin:
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		b, bOwned, err := g.evalF(ex.B, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Add:
			g.asm.FADDD(r, a, b)
		case ir.Sub:
			g.asm.FSUBD(r, a, b)
		case ir.Mul:
			g.asm.FMULD(r, a, b)
		case ir.Div:
			g.asm.FDIVD(r, a, b)
		case ir.Min:
			g.asm.FMIND(r, a, b)
		case ir.Max:
			g.asm.FMAXD(r, a, b)
		default:
			return 0, false, fmt.Errorf("rv64gen: op %d invalid on f64", ex.Op)
		}
		if aOwned {
			g.fpPool.free(a)
		}
		if bOwned {
			g.fpPool.free(b)
		}
		return r, owned, nil
	}
	return 0, false, fmt.Errorf("rv64gen: expression %T in float context", e)
}

// ifStmt lowers a conditional, branching directly on the fused
// compare-and-branch instructions when the condition is an integer
// comparison — the RISC-V branching advantage the paper quantifies.
func (g *rvGen) ifStmt(st *ir.If) error {
	elseL := g.label("else")
	endL := g.label("endif")
	target := elseL
	if len(st.Else) == 0 {
		target = endL
	}

	if cmp, ok := st.Cond.(ir.Bin); ok && cmp.Op >= ir.Lt && cmp.Op <= ir.Ge && cmp.A.Type() == ir.I64 {
		// Branch on the negated condition.
		a, aOwned, err := g.evalI(cmp.A, noReg)
		if err != nil {
			return err
		}
		b, bOwned, err := g.evalI(cmp.B, noReg)
		if err != nil {
			return err
		}
		switch cmp.Op {
		case ir.Lt:
			g.asm.BGE(a, b, target)
		case ir.Ge:
			g.asm.BLT(a, b, target)
		case ir.Gt:
			g.asm.BGE(b, a, target)
		case ir.Le:
			g.asm.BLT(b, a, target)
		case ir.Eq:
			g.asm.BNE(a, b, target)
		case ir.Ne:
			g.asm.BEQ(a, b, target)
		}
		if aOwned {
			g.intPool.free(a)
		}
		if bOwned {
			g.intPool.free(b)
		}
	} else {
		// Materialise the condition and branch on zero.
		c, owned, err := g.evalI(st.Cond, noReg)
		if err != nil {
			return err
		}
		g.asm.BEQ(c, 0, target)
		if owned {
			g.intPool.free(c)
		}
	}

	if err := g.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) > 0 {
		g.asm.J(endL)
		g.asm.Label(elseL)
		if err := g.stmts(st.Else); err != nil {
			return err
		}
	}
	g.asm.Label(endL)
	return g.err
}
