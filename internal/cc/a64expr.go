package cc

import (
	"fmt"

	"isacmp/internal/a64"
	"isacmp/internal/ir"
)

// condFor maps an IR comparison to the AArch64 condition that holds
// when it is true. Integer comparisons use the signed conditions; FP
// comparisons after FCMP must use MI/LS for the less-than orders so
// that unordered (NaN) operands make every order false, exactly as C
// requires and as GCC selects.
func condFor(op ir.BinOp, fp bool) a64.Cond {
	switch op {
	case ir.Lt:
		if fp {
			return a64.MI
		}
		return a64.LT
	case ir.Le:
		if fp {
			return a64.LS
		}
		return a64.LE
	case ir.Eq:
		return a64.EQ
	case ir.Ne:
		return a64.NE
	case ir.Gt:
		return a64.GT
	default: // Ge
		return a64.GE
	}
}

func (g *a64Gen) intoI(dest uint8) (uint8, bool, error) {
	if dest != noReg {
		return dest, false, nil
	}
	r, err := g.intPool.alloc()
	return r, true, err
}

func (g *a64Gen) intoF(dest uint8) (uint8, bool, error) {
	if dest != noReg {
		return dest, false, nil
	}
	r, err := g.fpPool.alloc()
	return r, true, err
}

// matchIntMAdd recognises a*b+c and c-a*b integer trees that lower to
// madd/msub, an AArch64 capability RV64G lacks.
func matchIntMAdd(e ir.Expr) (a, b, c ir.Expr, sub bool, ok bool) {
	bin, isBin := e.(ir.Bin)
	if !isBin || bin.Type() != ir.I64 {
		return nil, nil, nil, false, false
	}
	asMul := func(x ir.Expr) (ir.Expr, ir.Expr, bool) {
		m, isMul := x.(ir.Bin)
		if isMul && m.Op == ir.Mul {
			return m.A, m.B, true
		}
		return nil, nil, false
	}
	switch bin.Op {
	case ir.Add:
		if ma, mb, isMul := asMul(bin.A); isMul {
			return ma, mb, bin.B, false, true
		}
		if ma, mb, isMul := asMul(bin.B); isMul {
			return ma, mb, bin.A, false, true
		}
	case ir.Sub:
		if ma, mb, isMul := asMul(bin.B); isMul {
			return ma, mb, bin.A, true, true
		}
	}
	return nil, nil, nil, false, false
}

// evalI evaluates an integer expression; see rvGen.evalI for the
// destination-register contract.
func (g *a64Gen) evalI(e ir.Expr, dest uint8) (reg uint8, owned bool, err error) {
	// madd/msub contraction.
	if a, b, c, sub, ok := matchIntMAdd(e); ok {
		ra, aOwned, err := g.evalI(a, noReg)
		if err != nil {
			return 0, false, err
		}
		rb, bOwned, err := g.evalI(b, noReg)
		if err != nil {
			return 0, false, err
		}
		rc, cOwned, err := g.evalI(c, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		if sub {
			g.asm.MSUB(r, ra, rb, rc)
		} else {
			g.asm.MADD(r, ra, rb, rc)
		}
		if aOwned {
			g.intPool.free(ra)
		}
		if bOwned {
			g.intPool.free(rb)
		}
		if cOwned {
			g.intPool.free(rc)
		}
		return r, owned, nil
	}

	switch ex := e.(type) {
	case ir.ConstI:
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.MOV64(r, ex.V)
		return r, owned, nil

	case ir.VarRef:
		r, ok := g.vars[ex.Var]
		if !ok {
			return 0, false, fmt.Errorf("a64gen: variable %q read before assignment", ex.Var.Name)
		}
		return r, false, nil

	case ir.LoadExpr:
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		if err := g.access(ex.Arr, ex.Index, r, true); err != nil {
			return 0, false, err
		}
		return r, owned, nil

	case ir.Cvt:
		if ex.To != ir.I64 {
			return 0, false, fmt.Errorf("a64gen: float conversion in integer context")
		}
		f, fOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.FCVTZS(r, f)
		if fOwned {
			g.fpPool.free(f)
		}
		return r, owned, nil

	case ir.Un:
		a, aOwned, err := g.evalI(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Neg:
			// neg r, a == sub r, xzr, a
			g.asm.Emit(a64.Inst{Op: a64.SUBr, Sf: true, Rd: r, Rn: a64.ZR, Rm: a})
		case ir.Abs:
			// cmp a, #0; csneg r, a, a, ge
			g.asm.CMPi(a, 0)
			g.asm.Emit(a64.Inst{Op: a64.CSNEG, Sf: true, Rd: r, Rn: a, Rm: a, Cond: a64.GE})
		default:
			return 0, false, fmt.Errorf("a64gen: unary op %d on i64", ex.Op)
		}
		if aOwned {
			g.intPool.free(a)
		}
		return r, owned, nil

	case ir.Bin:
		return g.evalBinI(ex, dest)
	}
	return 0, false, fmt.Errorf("a64gen: expression %T in integer context", e)
}

func (g *a64Gen) evalBinI(ex ir.Bin, dest uint8) (uint8, bool, error) {
	if ex.Op >= ir.Lt && ex.Op <= ir.Ge {
		// Materialised comparison: cmp/fcmp + cset, the extra
		// flag-setting instruction RISC-V avoids.
		if err := g.emitCompare(ex); err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoI(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.CSET(r, condFor(ex.Op, ex.A.Type() == ir.F64))
		return r, owned, nil
	}

	// Immediate folding; commutative operators fold a constant on
	// either side.
	if c, ok := constFold(ex.A); ok {
		switch ex.Op {
		case ir.Add, ir.And, ir.Or, ir.Mul:
			ex = ir.Bin{Op: ex.Op, A: ex.B, B: ir.ConstI{V: c}}
		}
	}
	if c, ok := constFold(ex.B); ok {
		fold := false
		switch ex.Op {
		case ir.Add, ir.Sub:
			fold = c >= 0 && c <= 4095
		case ir.Shl, ir.Shr:
			fold = c >= 0 && c < 64
		case ir.And:
			_, _, _, bmOK := a64.EncodeBitmask(uint64(c), true)
			fold = bmOK
		}
		if fold {
			a, aOwned, err := g.evalI(ex.A, noReg)
			if err != nil {
				return 0, false, err
			}
			r, owned, err := g.intoI(dest)
			if err != nil {
				return 0, false, err
			}
			switch ex.Op {
			case ir.Add:
				g.asm.ADDi(r, a, c)
			case ir.Sub:
				g.asm.SUBi(r, a, c)
			case ir.Shl:
				g.asm.LSLi(r, a, uint8(c))
			case ir.Shr:
				g.asm.LSRi(r, a, uint8(c))
			case ir.And:
				g.asm.ANDi(r, a, uint64(c))
			}
			if aOwned {
				g.intPool.free(a)
			}
			return r, owned, nil
		}
	}

	a, aOwned, err := g.evalI(ex.A, noReg)
	if err != nil {
		return 0, false, err
	}
	b, bOwned, err := g.evalI(ex.B, noReg)
	if err != nil {
		return 0, false, err
	}
	r, owned, err := g.intoI(dest)
	if err != nil {
		return 0, false, err
	}
	switch ex.Op {
	case ir.Add:
		g.asm.ADD(r, a, b)
	case ir.Sub:
		g.asm.SUB(r, a, b)
	case ir.Mul:
		g.asm.MUL(r, a, b)
	case ir.Div:
		g.asm.SDIV(r, a, b)
	case ir.Rem:
		// AArch64 has no remainder: sdiv t, a, b; msub r, t, b, a.
		t, err := g.intPool.alloc()
		if err != nil {
			return 0, false, err
		}
		g.asm.SDIV(t, a, b)
		g.asm.MSUB(r, t, b, a)
		g.intPool.free(t)
	case ir.And:
		g.asm.AND(r, a, b)
	case ir.Or:
		g.asm.ORR(r, a, b)
	case ir.Shl:
		g.asm.Emit(a64.Inst{Op: a64.LSLV, Sf: true, Rd: r, Rn: a, Rm: b})
	case ir.Shr:
		g.asm.Emit(a64.Inst{Op: a64.LSRV, Sf: true, Rd: r, Rn: a, Rm: b})
	default:
		return 0, false, fmt.Errorf("a64gen: op %d invalid on i64", ex.Op)
	}
	if aOwned {
		g.intPool.free(a)
	}
	if bOwned {
		g.intPool.free(b)
	}
	return r, owned, nil
}

// emitCompare sets NZCV for a comparison expression (cmp or fcmp).
func (g *a64Gen) emitCompare(ex ir.Bin) error {
	if ex.A.Type() == ir.F64 {
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return err
		}
		b, bOwned, err := g.evalF(ex.B, noReg)
		if err != nil {
			return err
		}
		g.asm.FCMP(a, b)
		if aOwned {
			g.fpPool.free(a)
		}
		if bOwned {
			g.fpPool.free(b)
		}
		return nil
	}
	a, aOwned, err := g.evalI(ex.A, noReg)
	if err != nil {
		return err
	}
	// cmp with immediate when possible.
	if c, ok := constFold(ex.B); ok && c >= 0 && c <= 4095 {
		g.asm.CMPi(a, c)
		if aOwned {
			g.intPool.free(a)
		}
		return nil
	}
	b, bOwned, err := g.evalI(ex.B, noReg)
	if err != nil {
		return err
	}
	g.asm.CMP(a, b)
	if aOwned {
		g.intPool.free(a)
	}
	if bOwned {
		g.intPool.free(b)
	}
	return nil
}

// evalF evaluates a floating-point expression.
func (g *a64Gen) evalF(e ir.Expr, dest uint8) (reg uint8, owned bool, err error) {
	if a, b, c, kind := ir.MatchFMA(e); kind != ir.FMANone && !g.opts.NoFMA {
		ra, aOwned, err := g.evalF(a, noReg)
		if err != nil {
			return 0, false, err
		}
		rb, bOwned, err := g.evalF(b, noReg)
		if err != nil {
			return 0, false, err
		}
		rc, cOwned, err := g.evalF(c, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch kind {
		case ir.FMAAdd: // a*b + c
			g.asm.FMADD(r, ra, rb, rc)
		case ir.FMASub: // a*b - c: fnmsub r, a, b, c
			g.asm.Emit(a64.Inst{Op: a64.FNMSUB, Dbl: true, Rd: r, Rn: ra, Rm: rb, Ra: rc})
		default: // c - a*b: fmsub r, a, b, c
			g.asm.FMSUB(r, ra, rb, rc)
		}
		if aOwned {
			g.fpPool.free(ra)
		}
		if bOwned {
			g.fpPool.free(rb)
		}
		if cOwned {
			g.fpPool.free(rc)
		}
		return r, owned, nil
	}

	switch ex := e.(type) {
	case ir.ConstF:
		if r, ok := g.constFP[ex.V]; ok {
			return r, false, nil
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		g.materialiseF(ex.V, r)
		return r, owned, g.err

	case ir.VarRef:
		r, ok := g.vars[ex.Var]
		if !ok {
			return 0, false, fmt.Errorf("a64gen: variable %q read before assignment", ex.Var.Name)
		}
		return r, false, nil

	case ir.LoadExpr:
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		if err := g.access(ex.Arr, ex.Index, r, true); err != nil {
			return 0, false, err
		}
		return r, owned, nil

	case ir.Cvt:
		if ex.To != ir.F64 {
			return 0, false, fmt.Errorf("a64gen: integer conversion in float context")
		}
		a, aOwned, err := g.evalI(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		g.asm.SCVTF(r, a)
		if aOwned {
			g.intPool.free(a)
		}
		return r, owned, nil

	case ir.Un:
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Neg:
			g.asm.FNEG(r, a)
		case ir.Sqrt:
			g.asm.FSQRT(r, a)
		case ir.Abs:
			g.asm.FABS(r, a)
		}
		if aOwned {
			g.fpPool.free(a)
		}
		return r, owned, nil

	case ir.Bin:
		a, aOwned, err := g.evalF(ex.A, noReg)
		if err != nil {
			return 0, false, err
		}
		b, bOwned, err := g.evalF(ex.B, noReg)
		if err != nil {
			return 0, false, err
		}
		r, owned, err := g.intoF(dest)
		if err != nil {
			return 0, false, err
		}
		switch ex.Op {
		case ir.Add:
			g.asm.FADD(r, a, b)
		case ir.Sub:
			g.asm.FSUB(r, a, b)
		case ir.Mul:
			g.asm.FMUL(r, a, b)
		case ir.Div:
			g.asm.FDIV(r, a, b)
		case ir.Min:
			g.asm.FMIN(r, a, b)
		case ir.Max:
			g.asm.FMAX(r, a, b)
		default:
			return 0, false, fmt.Errorf("a64gen: op %d invalid on f64", ex.Op)
		}
		if aOwned {
			g.fpPool.free(a)
		}
		if bOwned {
			g.fpPool.free(b)
		}
		return r, owned, nil
	}
	return 0, false, fmt.Errorf("a64gen: expression %T in float context", e)
}

// ifStmt lowers a conditional: a comparison condition becomes cmp/fcmp
// + b.cond (two instructions — the AArch64 branching cost the paper
// measures); any other condition uses cbz.
func (g *a64Gen) ifStmt(st *ir.If) error {
	elseL := g.label("else")
	endL := g.label("endif")
	target := elseL
	if len(st.Else) == 0 {
		target = endL
	}

	if cmp, ok := st.Cond.(ir.Bin); ok && cmp.Op >= ir.Lt && cmp.Op <= ir.Ge {
		if err := g.emitCompare(cmp); err != nil {
			return err
		}
		g.asm.Bc(condFor(cmp.Op, cmp.A.Type() == ir.F64).Invert(), target)
	} else {
		c, owned, err := g.evalI(st.Cond, noReg)
		if err != nil {
			return err
		}
		g.asm.CBZx(c, target)
		if owned {
			g.intPool.free(c)
		}
	}

	if err := g.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) > 0 {
		g.asm.B(endL)
		g.asm.Label(elseL)
		if err := g.stmts(st.Else); err != nil {
			return err
		}
	}
	g.asm.Label(endL)
	return g.err
}
