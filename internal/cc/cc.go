// Package cc is the compiler: it lowers IR benchmark programs to
// AArch64 or RV64G machine code, reproducing the code-generation
// idioms the paper attributes to GCC 9.2 and GCC 12.2 (section 3.3):
//
//   - AArch64 uses register-offset addressing with an element-index
//     register ("ldr d1, [x22, x0, lsl #3]"); RV64G, whose only
//     addressing mode is base+immediate, strength-reduces unit-stride
//     accesses into pointer walks and terminates loops with its fused
//     compare-and-branch ("bne a5, s0, ...").
//   - GCC 12.2 AArch64 hoists large loop bounds into a register and
//     ends loops with "cmp x0, x20; b.ne"; GCC 9.2 instead recomputes
//     the comparison with a "sub #hi, lsl #12; subs #lo" pair each
//     iteration, the extra instruction the paper measures as a 12.5%
//     STREAM path-length reduction between compiler versions.
//   - RISC-V conditional branches fuse the comparison; AArch64 needs a
//     separate NZCV-setting instruction before every conditional
//     branch.
//   - Both back ends contract a*b±c into fused multiply-add, as GCC
//     does at -O2 with the default -ffp-contract=fast.
package cc

import (
	"fmt"

	"isacmp/internal/elfio"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
)

// Flavor selects which GCC version's idioms the back end reproduces.
type Flavor uint8

// The two compiler flavours studied by the paper.
const (
	GCC9 Flavor = iota
	GCC12
)

// String returns the compiler version string.
func (f Flavor) String() string {
	if f == GCC9 {
		return "GCC 9.2"
	}
	return "GCC 12.2"
}

// Target names an (architecture, compiler flavour) pair — one column
// of the paper's tables.
type Target struct {
	Arch   isa.Arch
	Flavor Flavor
}

// String returns e.g. "AArch64/GCC 12.2".
func (t Target) String() string { return t.Arch.String() + "/" + t.Flavor.String() }

// Targets returns all four (arch, flavour) pairs in the paper's
// column order.
func Targets() []Target {
	return []Target{
		{isa.AArch64, GCC9},
		{isa.RV64, GCC9},
		{isa.AArch64, GCC12},
		{isa.RV64, GCC12},
	}
}

// Memory layout constants for compiled programs.
const (
	// TextBase is where program text is linked.
	TextBase = 0x10000
	// DataBase is where the array data segment starts.
	DataBase = 0x400000
	// StackHeadroom is extra memory above the data segment for the
	// stack.
	StackHeadroom = 1 << 20
)

// Options disables individual optimisations for ablation studies: each
// knob removes one of the code-generation behaviours the paper's
// analysis turns on, so its contribution to path length can be
// measured in isolation.
type Options struct {
	// NoFMA disables multiply-add contraction on both ISAs (and on the
	// verification interpreter via ir.Interp — callers comparing
	// against the interpreter must disable fusion there too; see
	// ir.Interp.NoFMA).
	NoFMA bool
	// NoStrengthReduction disables RISC-V pointer walks and the shared
	// scaled index: every access computes its address with shift+add.
	NoStrengthReduction bool
	// NoHoisting disables AArch64 loop-invariant stream-base hoisting.
	NoHoisting bool
}

// Compiled is the output of Compile: a runnable statically linked ELF
// plus the array layout needed to verify results.
type Compiled struct {
	// File is the ELF executable.
	File *elfio.File
	// ArrayBase maps array names to their virtual addresses.
	ArrayBase map[string]uint64
	// MemSize is the memory image size needed to run the program
	// (from TextBase).
	MemSize uint64
	// Target records what the program was compiled for.
	Target Target
}

// Compile lowers the program for the target with default options.
func Compile(p *ir.Program, t Target) (*Compiled, error) {
	return CompileOpts(p, t, Options{})
}

// CompileOpts lowers the program for the target with explicit
// optimisation knobs (for ablation studies).
func CompileOpts(p *ir.Program, t Target, opts Options) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lay := layout(p)
	var (
		file *elfio.File
		err  error
	)
	switch t.Arch {
	case isa.AArch64:
		file, err = compileA64(p, t.Flavor, lay, opts)
	case isa.RV64:
		file, err = compileRV64(p, t.Flavor, lay, opts)
	default:
		err = fmt.Errorf("cc: unknown architecture %v", t.Arch)
	}
	if err != nil {
		return nil, fmt.Errorf("cc: %s: %s: %w", p.Name, t, err)
	}
	return &Compiled{
		File:      file,
		ArrayBase: lay.base,
		MemSize:   lay.end - TextBase + StackHeadroom,
		Target:    t,
	}, nil
}

// dataLayout assigns array addresses.
type dataLayout struct {
	base map[string]uint64
	data []byte
	end  uint64
}

func layout(p *ir.Program) *dataLayout {
	l := &dataLayout{base: map[string]uint64{}}
	addr := uint64(DataBase)
	for _, a := range p.Arrays {
		l.base[a.Name] = addr
		addr += uint64(a.Len) * 8
	}
	l.data = make([]byte, addr-DataBase)
	for _, a := range p.Arrays {
		copy(l.data[l.base[a.Name]-DataBase:], a.Bytes())
	}
	l.end = addr
	return l
}

// stream identifies a unit-stride access pattern within a loop:
// arr[i], arr[c + i] or arr[v + i] for the innermost loop variable i,
// a constant c, or a loop-invariant variable v.
type stream struct {
	arr      *ir.Array
	invVar   *ir.Var // nil when the offset is constant
	invConst int64
}

// matchStream recognises a unit-stride index expression for loop
// variable lv.
func matchStream(arr *ir.Array, idx ir.Expr, lv *ir.Var) (stream, bool) {
	if v, ok := idx.(ir.VarRef); ok && v.Var == lv {
		return stream{arr: arr}, true
	}
	b, ok := idx.(ir.Bin)
	if !ok || b.Op != ir.Add {
		return stream{}, false
	}
	inv, iv := b.A, b.B
	if v, ok := iv.(ir.VarRef); !ok || v.Var != lv {
		inv, iv = b.B, b.A
		if v, ok := iv.(ir.VarRef); !ok || v.Var != lv {
			return stream{}, false
		}
	}
	switch e := inv.(type) {
	case ir.ConstI:
		return stream{arr: arr, invConst: e.V}, true
	case ir.VarRef:
		if e.Var == lv {
			return stream{}, false
		}
		return stream{arr: arr, invVar: e.Var}, true
	}
	return stream{}, false
}

// loopInfo summarises how a loop's variable is used, deciding between
// pointer mode (RISC-V) and whether an index register is needed.
type loopInfo struct {
	streams []stream
	// otherUses is true when the loop variable appears anywhere other
	// than as a unit-stride index: arithmetic, stores of its value,
	// inner loop bounds, non-stream indexes.
	otherUses bool
}

// analyseLoop inspects the body of a loop over lv.
func analyseLoop(body []ir.Stmt, lv *ir.Var) loopInfo {
	var info loopInfo
	seen := map[stream]bool{}
	addStream := func(s stream) {
		if !seen[s] {
			seen[s] = true
			info.streams = append(info.streams, s)
		}
	}
	var visitExpr func(e ir.Expr, asIndex *ir.Array)
	visitExpr = func(e ir.Expr, asIndex *ir.Array) {
		if asIndex != nil {
			if s, ok := matchStream(asIndex, e, lv); ok {
				addStream(s)
				// The invariant part is not a "use" of lv; the stream
				// absorbs it entirely.
				return
			}
		}
		switch ex := e.(type) {
		case ir.VarRef:
			if ex.Var == lv {
				info.otherUses = true
			}
		case ir.LoadExpr:
			visitExpr(ex.Index, ex.Arr)
		case ir.Bin:
			visitExpr(ex.A, nil)
			visitExpr(ex.B, nil)
		case ir.Un:
			visitExpr(ex.A, nil)
		case ir.Cvt:
			visitExpr(ex.A, nil)
		}
	}
	var visitStmts func(stmts []ir.Stmt)
	visitStmts = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Store:
				visitExpr(st.Index, st.Arr)
				visitExpr(st.Val, nil)
			case *ir.Assign:
				visitExpr(st.Val, nil)
			case *ir.If:
				visitExpr(st.Cond, nil)
				visitStmts(st.Then)
				visitStmts(st.Else)
			case *ir.Loop:
				visitExpr(st.Start, nil)
				visitExpr(st.End, nil)
				visitStmts(st.Body)
			}
		}
	}
	visitStmts(body)
	return info
}

// hasInnerLoop reports whether stmts contain a nested loop.
func hasInnerLoop(stmts []ir.Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Loop:
			return true
		case *ir.If:
			if hasInnerLoop(st.Then) || hasInnerLoop(st.Else) {
				return true
			}
		}
	}
	return false
}

// assignedIn reports whether v is assigned anywhere in stmts (including
// as an inner loop variable).
func assignedIn(stmts []ir.Stmt, v *ir.Var) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			if st.Var == v {
				return true
			}
		case *ir.Loop:
			if st.Var == v || assignedIn(st.Body, v) {
				return true
			}
		case *ir.If:
			if assignedIn(st.Then, v) || assignedIn(st.Else, v) {
				return true
			}
		}
	}
	return false
}

// constFold extracts a compile-time integer constant.
func constFold(e ir.Expr) (int64, bool) {
	c, ok := e.(ir.ConstI)
	return c.V, ok
}

// collectFPConsts gathers distinct FP constants used in a kernel, in
// first-use order, for hoisting into registers.
func collectFPConsts(body []ir.Stmt) []float64 {
	var out []float64
	seen := map[float64]bool{}
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		switch ex := e.(type) {
		case ir.ConstF:
			if !seen[ex.V] {
				seen[ex.V] = true
				out = append(out, ex.V)
			}
		case ir.LoadExpr:
			visitExpr(ex.Index)
		case ir.Bin:
			visitExpr(ex.A)
			visitExpr(ex.B)
		case ir.Un:
			visitExpr(ex.A)
		case ir.Cvt:
			visitExpr(ex.A)
		}
	}
	var visit func(stmts []ir.Stmt)
	visit = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Store:
				visitExpr(st.Index)
				visitExpr(st.Val)
			case *ir.Assign:
				visitExpr(st.Val)
			case *ir.If:
				visitExpr(st.Cond)
				visit(st.Then)
				visit(st.Else)
			case *ir.Loop:
				visitExpr(st.Start)
				visitExpr(st.End)
				visit(st.Body)
			}
		}
	}
	visit(body)
	return out
}

// collectArrays gathers the arrays referenced by a kernel, in
// first-use order.
func collectArrays(body []ir.Stmt) []*ir.Array {
	var out []*ir.Array
	seen := map[*ir.Array]bool{}
	add := func(a *ir.Array) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		switch ex := e.(type) {
		case ir.LoadExpr:
			add(ex.Arr)
			visitExpr(ex.Index)
		case ir.Bin:
			visitExpr(ex.A)
			visitExpr(ex.B)
		case ir.Un:
			visitExpr(ex.A)
		case ir.Cvt:
			visitExpr(ex.A)
		}
	}
	var visit func(stmts []ir.Stmt)
	visit = func(stmts []ir.Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ir.Store:
				add(st.Arr)
				visitExpr(st.Index)
				visitExpr(st.Val)
			case *ir.Assign:
				visitExpr(st.Val)
			case *ir.If:
				visitExpr(st.Cond)
				visit(st.Then)
				visit(st.Else)
			case *ir.Loop:
				visitExpr(st.Start)
				visitExpr(st.End)
				visit(st.Body)
			}
		}
	}
	visit(body)
	return out
}

// regPool hands out registers from a fixed preference order.
type regPool struct {
	order []uint8
	used  map[uint8]bool
	name  string
}

func newRegPool(name string, order []uint8) *regPool {
	return &regPool{order: order, used: map[uint8]bool{}, name: name}
}

func (p *regPool) alloc() (uint8, error) {
	for _, r := range p.order {
		if !p.used[r] {
			p.used[r] = true
			return r, nil
		}
	}
	return 0, fmt.Errorf("out of %s registers", p.name)
}

func (p *regPool) free(r uint8) {
	if !p.used[r] {
		panic(fmt.Sprintf("cc: double free of %s register %d", p.name, r))
	}
	p.used[r] = false
}

func (p *regPool) inUse() int {
	n := 0
	for _, v := range p.used {
		if v {
			n++
		}
	}
	return n
}
