package cc

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"isacmp/internal/a64"
	"isacmp/internal/ir"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/rv64"
	"isacmp/internal/simeng"
)

func dumpExpr(e ir.Expr) string {
	switch ex := e.(type) {
	case ir.ConstI:
		return fmt.Sprintf("%d", ex.V)
	case ir.ConstF:
		return fmt.Sprintf("%g", ex.V)
	case ir.VarRef:
		return ex.Var.Name
	case ir.LoadExpr:
		return fmt.Sprintf("%s[%s]", ex.Arr.Name, dumpExpr(ex.Index))
	case ir.Bin:
		return fmt.Sprintf("(%s op%d %s)", dumpExpr(ex.A), ex.Op, dumpExpr(ex.B))
	case ir.Un:
		return fmt.Sprintf("un%d(%s)", ex.Op, dumpExpr(ex.A))
	case ir.Cvt:
		return fmt.Sprintf("cvt%d(%s)", ex.To, dumpExpr(ex.A))
	}
	return "?"
}

func dumpStmts(stmts []ir.Stmt, ind string, sb *strings.Builder) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Loop:
			fmt.Fprintf(sb, "%sfor %s = %s .. %s {\n", ind, st.Var.Name, dumpExpr(st.Start), dumpExpr(st.End))
			dumpStmts(st.Body, ind+"  ", sb)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *ir.Store:
			fmt.Fprintf(sb, "%s%s[%s] = %s\n", ind, st.Arr.Name, dumpExpr(st.Index), dumpExpr(st.Val))
		case *ir.Assign:
			fmt.Fprintf(sb, "%s%s = %s\n", ind, st.Var.Name, dumpExpr(st.Val))
		case *ir.If:
			fmt.Fprintf(sb, "%sif %s {\n", ind, dumpExpr(st.Cond))
			dumpStmts(st.Then, ind+"  ", sb)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				dumpStmts(st.Else, ind+"  ", sb)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		}
	}
}

// TestFuzzDebug is a diagnostic for differential-fuzz failures: run
// with FUZZDBG=<seed> to dump the generated program, per-target result
// mismatches, and a disassembly of the hottest kernel when a run
// exceeds its instruction budget.
func TestFuzzDebug(t *testing.T) {
	seedStr := os.Getenv("FUZZDBG")
	if seedStr == "" {
		t.Skip("set FUZZDBG=<seed>")
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		t.Fatalf("bad FUZZDBG value: %v", err)
	}
	r := rand.New(rand.NewSource(seed))
	prog := ir.RandomProgram(r)
	var sb strings.Builder
	for _, k := range prog.Kernels {
		fmt.Fprintf(&sb, "kernel %s:\n", k.Name)
		dumpStmts(k.Body, "  ", &sb)
	}
	t.Log("\n" + sb.String())
	ref := ir.NewInterp(prog)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range Targets() {
		c, cerr := Compile(prog, tgt)
		if cerr != nil {
			t.Logf("%s: compile: %v", tgt, cerr)
			continue
		}
		m := mem.New(TextBase, c.MemSize)
		var mach simeng.Machine
		if tgt.Arch == isa.AArch64 {
			mach, err = a64.NewMachine(c.File, m)
		} else {
			mach, err = rv64.NewMachine(c.File, m)
		}
		if err != nil {
			t.Fatal(err)
		}
		hot := map[uint64]uint64{}
		_, rerr := (&simeng.EmulationCore{MaxInstructions: 1_000_000}).Run(mach,
			isa.SinkFunc(func(ev *isa.Event) { hot[ev.PC]++ }))
		if rerr != nil {
			// Find the hottest PCs and disassemble around them.
			var maxPC, maxN uint64
			for pc, n := range hot {
				if n > maxN {
					maxPC, maxN = pc, n
				}
			}
			t.Logf("%s: hottest pc %#x (%d hits)", tgt, maxPC, maxN)
			lo, hi := maxPC-40, maxPC+160
			for _, sym := range c.File.Symbols {
				if maxPC >= sym.Value && maxPC < sym.Value+sym.Size {
					lo, hi = sym.Value, sym.Value+sym.Size
					t.Logf("(kernel %s)", sym.Name)
				}
			}
			for pc := lo; pc <= hi; pc += 4 {
				var line string
				if tgt.Arch == isa.AArch64 {
					if in, ok := mach.(*a64.Machine).InstAt(pc); ok {
						line = in.String()
					}
				} else {
					if in, ok := mach.(*rv64.Machine).InstAt(pc); ok {
						line = in.String()
					}
				}
				t.Logf("  %#x: %s", pc, line)
			}
		}
		bad := 0
		for _, arr := range prog.Arrays {
			base := c.ArrayBase[arr.Name]
			for i := 0; i < arr.Len; i++ {
				bits, _ := m.Read64(base + uint64(i)*8)
				if arr.Elem == ir.F64 {
					if bits != math.Float64bits(ref.ArrF[arr.Name][i]) {
						if bad < 5 {
							t.Logf("%s: %s[%d] got %v want %v", tgt, arr.Name, i,
								math.Float64frombits(bits), ref.ArrF[arr.Name][i])
						}
						bad++
					}
				} else if int64(bits) != ref.ArrI[arr.Name][i] {
					if bad < 5 {
						t.Logf("%s: %s[%d] got %d want %d", tgt, arr.Name, i,
							int64(bits), ref.ArrI[arr.Name][i])
					}
					bad++
				}
			}
		}
		t.Logf("%s: runErr=%v badCells=%d", tgt, rerr, bad)
	}
}
