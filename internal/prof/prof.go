// Package prof is the performance-attribution span profiler of the
// execution engine: per-worker timelines of coarse stage spans (setup,
// simulate, fan-out delivery, per-analysis sink, retry backoff,
// manifest write) recorded for every matrix cell, plus the derived
// worker-occupancy and Amdahl serial-fraction models the scalebench
// sweep reports on.
//
// Design constraints mirror internal/telemetry: the profiler is a pure
// observer (it can never change a result byte), every method is safe
// on a nil receiver so disabled profiling costs one predictable nil
// check per hook, and the record path performs no allocation — spans
// land in fixed-capacity per-lane rings guarded by one mutex per lane.
// Spans are coarse (a handful per matrix cell, not per instruction),
// so the lane mutex is uncontended in practice; the per-instruction
// hot path is never touched. Stage *totals* are accumulated separately
// from the rings, so they stay exact even after a ring wraps.
package prof

import (
	"sort"
	"sync"
	"time"
)

// Stage identifies what a span's time was spent on.
type Stage uint8

const (
	// StageSetup covers compiling the workload and building the
	// machine, memory image and analysis sinks for one cell attempt.
	StageSetup Stage = iota
	// StageSimulate is the architectural simulation itself (StepN).
	StageSimulate
	// StageDeliver is event delivery: tee/fan-out hand-off from the
	// generator to the analysis sinks.
	StageDeliver
	// StageSink is one analysis consumer's own processing time; the
	// span label names the sink ("windowcp", "critpath", ...).
	StageSink
	// StageRetryBackoff is the sleep between failed cell attempts.
	StageRetryBackoff
	// StageManifestWrite is the run-manifest serialization at the end
	// of an invocation.
	StageManifestWrite

	numStages
)

var stageNames = [numStages]string{
	"setup", "simulate", "deliver", "sink", "retry-backoff", "manifest-write",
}

// String returns the stage's schema name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageKey returns the stage-totals key for a (stage, label) pair:
// the stage name, with sink spans qualified as "sink:<label>".
func StageKey(stage Stage, label string) string {
	if stage == StageSink && label != "" {
		return "sink:" + label
	}
	return stage.String()
}

// Span is one recorded stage interval on a lane's timeline.
type Span struct {
	// Stage and Label classify the work; Cell is "workload/target".
	Stage Stage  `json:"-"`
	Name  string `json:"stage"` // StageKey form, filled on read-out
	Label string `json:"label,omitempty"`
	Cell  string `json:"cell,omitempty"`
	// Lane is the worker the span ran on (the last lane is the
	// coordinator).
	Lane int `json:"lane"`
	// Start is epoch-relative monotonic nanoseconds; Dur the span
	// length in nanoseconds.
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
}

// DefaultLaneSpans is the per-lane ring capacity when New is given 0.
const DefaultLaneSpans = 4096

// laneStat accumulates exact totals for one (stage, label) key.
type laneStat struct {
	ns    int64
	spans int64
}

// lane is one worker's span timeline: a fixed-capacity ring plus
// exact stage totals. Each lane has its own mutex so workers never
// contend with each other.
type lane struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	total   int64
	stage   [numStages]laneStat
	byLabel map[string]*laneStat // sink totals keyed by label
}

// Profiler records stage spans on per-worker lanes. The zero of the
// type is not useful — build one with New. A nil *Profiler is the
// disabled profiler: every method no-ops.
type Profiler struct {
	epoch time.Time
	lanes []lane
}

// New returns a profiler with one lane per worker plus a coordinator
// lane, each holding up to spansPerLane spans (0 selects
// DefaultLaneSpans). workers < 1 is treated as 1.
func New(workers, spansPerLane int) *Profiler {
	if workers < 1 {
		workers = 1
	}
	if spansPerLane <= 0 {
		spansPerLane = DefaultLaneSpans
	}
	p := &Profiler{epoch: time.Now(), lanes: make([]lane, workers+1)}
	for i := range p.lanes {
		p.lanes[i].ring = make([]Span, 0, spansPerLane)
		p.lanes[i].byLabel = map[string]*laneStat{}
	}
	return p
}

// Enabled reports whether the profiler records anything (false on
// nil — the -profile-off configuration).
func (p *Profiler) Enabled() bool { return p != nil }

// Lanes returns the lane count (workers + 1 coordinator); 0 on nil.
func (p *Profiler) Lanes() int {
	if p == nil {
		return 0
	}
	return len(p.lanes)
}

// CoordinatorLane returns the lane index reserved for work outside
// the worker pool (suite setup, manifest writes); 0 on nil.
func (p *Profiler) CoordinatorLane() int {
	if p == nil {
		return 0
	}
	return len(p.lanes) - 1
}

// Now returns the profiler's epoch-relative monotonic clock in
// nanoseconds (0 on nil).
func (p *Profiler) Now() int64 {
	if p == nil {
		return 0
	}
	return int64(time.Since(p.epoch))
}

// clampLane folds out-of-range lane ids onto the coordinator lane, so
// a caller wired with a stale worker count cannot panic the observer.
func (p *Profiler) clampLane(id int) *lane {
	if id < 0 || id >= len(p.lanes) {
		id = len(p.lanes) - 1
	}
	return &p.lanes[id]
}

// Record stores one completed span on a lane: [start, end) in
// epoch-relative nanoseconds (see Now). No-op on nil.
func (p *Profiler) Record(laneID int, stage Stage, label, cell string, start, end int64) {
	if p == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	ln := p.clampLane(laneID)
	span := Span{Stage: stage, Label: label, Cell: cell, Start: start, Dur: dur}
	ln.mu.Lock()
	if len(ln.ring) < cap(ln.ring) {
		ln.ring = append(ln.ring, span)
	} else {
		ln.ring[ln.next] = span
		ln.next = (ln.next + 1) % cap(ln.ring)
	}
	ln.total++
	if stage == StageSink && label != "" {
		st := ln.byLabel[label]
		if st == nil {
			st = &laneStat{}
			ln.byLabel[label] = st
		}
		st.ns += dur
		st.spans++
	} else {
		ln.stage[stage].ns += dur
		ln.stage[stage].spans++
	}
	ln.mu.Unlock()
}

// SpanHandle is an open span returned by Start; call End to record it.
// Passed by value so starting and ending a span allocates nothing.
type SpanHandle struct {
	p     *Profiler
	lane  int
	stage Stage
	label string
	cell  string
	start int64
}

// Start opens a span on the lane at the current clock. On a nil
// profiler the returned handle's End is a no-op.
func (p *Profiler) Start(lane int, stage Stage, label, cell string) SpanHandle {
	if p == nil {
		return SpanHandle{}
	}
	return SpanHandle{p: p, lane: lane, stage: stage, label: label, cell: cell, start: p.Now()}
}

// End records the span opened by Start.
func (h SpanHandle) End() {
	if h.p == nil {
		return
	}
	h.p.Record(h.lane, h.stage, h.label, h.cell, h.start, h.p.Now())
}

// Spans returns every retained span across all lanes, sorted by start
// time (nil profiler returns nil). Each span carries its lane and its
// StageKey name, ready for export.
func (p *Profiler) Spans() []Span {
	if p == nil {
		return nil
	}
	var out []Span
	for li := range p.lanes {
		ln := &p.lanes[li]
		ln.mu.Lock()
		n := len(ln.ring)
		start := 0
		if ln.total > int64(n) {
			start = ln.next
		}
		for i := 0; i < n; i++ {
			s := ln.ring[(start+i)%n]
			s.Lane = li
			s.Name = StageKey(s.Stage, s.Label)
			out = append(out, s)
		}
		ln.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped returns how many spans were overwritten after lane rings
// filled (0 on nil). Totals remain exact regardless.
func (p *Profiler) Dropped() int64 {
	if p == nil {
		return 0
	}
	var d int64
	for li := range p.lanes {
		ln := &p.lanes[li]
		ln.mu.Lock()
		if over := ln.total - int64(cap(ln.ring)); over > 0 {
			d += over
		}
		ln.mu.Unlock()
	}
	return d
}

// StageTotal is one row of the per-stage time breakdown.
type StageTotal struct {
	// Stage is the StageKey ("simulate", "sink:windowcp", ...).
	Stage string `json:"stage"`
	// Seconds is the exact summed span time across all lanes; Spans
	// the number of spans recorded.
	Seconds float64 `json:"seconds"`
	Spans   int64   `json:"spans"`
}

// StageTotals returns the exact per-stage breakdown across all lanes,
// largest first (nil profiler returns nil).
func (p *Profiler) StageTotals() []StageTotal {
	if p == nil {
		return nil
	}
	acc := map[string]*laneStat{}
	for li := range p.lanes {
		ln := &p.lanes[li]
		ln.mu.Lock()
		for s := Stage(0); s < numStages; s++ {
			if ln.stage[s].spans == 0 {
				continue
			}
			key := s.String()
			st := acc[key]
			if st == nil {
				st = &laneStat{}
				acc[key] = st
			}
			st.ns += ln.stage[s].ns
			st.spans += ln.stage[s].spans
		}
		for label, lst := range ln.byLabel {
			key := "sink:" + label
			st := acc[key]
			if st == nil {
				st = &laneStat{}
				acc[key] = st
			}
			st.ns += lst.ns
			st.spans += lst.spans
		}
		ln.mu.Unlock()
	}
	out := make([]StageTotal, 0, len(acc))
	for key, st := range acc {
		out = append(out, StageTotal{Stage: key, Seconds: float64(st.ns) / 1e9, Spans: st.spans})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// StageSeconds returns the breakdown as a map (nil profiler returns
// an empty map) — the /statusz and scaling-report form.
func (p *Profiler) StageSeconds() map[string]float64 {
	out := map[string]float64{}
	for _, t := range p.StageTotals() {
		out[t.Stage] = t.Seconds
	}
	return out
}
