package prof

import (
	"sort"

	"isacmp/internal/telemetry"
)

// Occupancy is one worker's wall-time split for a run: the fraction
// spent executing tasks (busy), waiting on the task queue (blocked),
// and everything else (idle — pool not yet started, ramp-down, or OS
// descheduling the single-CPU host cannot distinguish).
type Occupancy struct {
	Worker  int     `json:"worker"`
	Busy    float64 `json:"busy_fraction"`
	Blocked float64 `json:"blocked_fraction"`
	Idle    float64 `json:"idle_fraction"`
}

// OccupancyFromSched derives per-worker occupancy from a scheduler
// stats snapshot. SchedStats already carries busy and queue-wait
// fractions of the pool lifetime; idle is the clamped remainder.
func OccupancyFromSched(st telemetry.SchedStats) []Occupancy {
	if len(st.WorkerUtilization) == 0 {
		return nil
	}
	out := make([]Occupancy, len(st.WorkerUtilization))
	for i, busy := range st.WorkerUtilization {
		o := Occupancy{Worker: i, Busy: busy}
		if i < len(st.WorkerBlocked) {
			o.Blocked = st.WorkerBlocked[i]
		}
		o.Idle = 1 - o.Busy - o.Blocked
		if o.Idle < 0 {
			o.Idle = 0
		}
		out[i] = o
	}
	return out
}

// AmdahlSerialFraction fits Amdahl's law T(w) = T1·(s + (1-s)/w) to
// measured wall times keyed by worker count and returns the serial
// fraction s, clamped to [0, 1]. With r = T(w)/T1 and x = 1/w the
// model is r = s + (1-s)·x, i.e. r - x = s·(1 - x); the least-squares
// estimate over all points with w > 1 is
//
//	s = Σ (r-x)(1-x) / Σ (1-x)²
//
// Returns -1 when the fit is impossible (no w=1 baseline or no
// multi-worker points).
func AmdahlSerialFraction(walls map[int]float64) float64 {
	t1, ok := walls[1]
	if !ok || t1 <= 0 {
		return -1
	}
	var num, den float64
	ws := make([]int, 0, len(walls))
	for w := range walls {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	for _, w := range ws {
		if w <= 1 || walls[w] <= 0 {
			continue
		}
		x := 1 / float64(w)
		r := walls[w] / t1
		num += (r - x) * (1 - x)
		den += (1 - x) * (1 - x)
	}
	if den == 0 {
		return -1
	}
	s := num / den
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Efficiency returns the parallel efficiency T1/(w·Tw) for one point
// of a sweep, or 0 when undefined.
func Efficiency(t1, tw float64, w int) float64 {
	if t1 <= 0 || tw <= 0 || w < 1 {
		return 0
	}
	return t1 / (float64(w) * tw)
}
