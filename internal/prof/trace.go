package prof

import (
	"io"
	"strconv"

	"isacmp/internal/telemetry"
)

// WriteChromeTrace exports the retained span timelines as a Chrome
// trace-event JSON document (chrome://tracing, ui.perfetto.dev). Each
// lane becomes one thread row (tid = lane index; the highest tid is
// the coordinator lane); timestamps and durations are converted from
// nanoseconds to the format's microseconds. A nil profiler writes an
// empty, still-valid document.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	cw, err := telemetry.NewChromeTraceWriter(w)
	if err != nil {
		return err
	}
	for _, s := range p.Spans() {
		dur := uint64(s.Dur) / 1000
		if dur == 0 {
			dur = 1
		}
		args := map[string]string{}
		if s.Cell != "" {
			args["cell"] = s.Cell
		}
		if s.Label != "" {
			args["label"] = s.Label
		}
		args["lane"] = strconv.Itoa(s.Lane)
		if err := cw.Emit(telemetry.ChromeEvent{
			Name: s.Name, Cat: s.Stage.String(), Ph: "X",
			Ts: uint64(s.Start) / 1000, Dur: dur,
			Pid: 1, Tid: s.Lane, Args: args,
		}); err != nil {
			return err
		}
	}
	return cw.Close()
}
