package prof

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"isacmp/internal/telemetry"
)

func TestStageKey(t *testing.T) {
	if got := StageKey(StageSimulate, ""); got != "simulate" {
		t.Fatalf("StageKey(simulate) = %q", got)
	}
	if got := StageKey(StageSink, "windowcp"); got != "sink:windowcp" {
		t.Fatalf("StageKey(sink, windowcp) = %q", got)
	}
	if got := StageKey(StageSink, ""); got != "sink" {
		t.Fatalf("StageKey(sink, empty) = %q", got)
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Fatalf("Stage(200) = %q", got)
	}
}

func TestRecordAndSpans(t *testing.T) {
	p := New(2, 16)
	if p.Lanes() != 3 {
		t.Fatalf("Lanes() = %d, want 3 (2 workers + coordinator)", p.Lanes())
	}
	if p.CoordinatorLane() != 2 {
		t.Fatalf("CoordinatorLane() = %d, want 2", p.CoordinatorLane())
	}
	p.Record(1, StageSimulate, "", "fib/rv64", 100, 300)
	p.Record(0, StageSetup, "", "fib/rv64", 10, 50)
	p.Record(p.CoordinatorLane(), StageManifestWrite, "", "", 500, 600)
	// Out-of-range lanes fold onto the coordinator instead of panicking.
	p.Record(99, StageRetryBackoff, "", "x/y", 700, 800)

	spans := p.Spans()
	if len(spans) != 4 {
		t.Fatalf("len(Spans()) = %d, want 4", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %v", spans)
		}
	}
	if spans[0].Name != "setup" || spans[0].Lane != 0 || spans[0].Dur != 40 {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[3].Lane != p.CoordinatorLane() {
		t.Fatalf("clamped span landed on lane %d, want coordinator", spans[3].Lane)
	}
}

func TestRingWrapKeepsExactTotals(t *testing.T) {
	p := New(1, 4)
	for i := 0; i < 10; i++ {
		start := int64(i * 100)
		p.Record(0, StageSimulate, "", "c", start, start+10)
	}
	if got := len(p.Spans()); got != 4 {
		t.Fatalf("retained spans = %d, want ring cap 4", got)
	}
	if got := p.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	// The ring keeps the newest spans.
	spans := p.Spans()
	if spans[0].Start != 600 || spans[3].Start != 900 {
		t.Fatalf("ring kept wrong window: %+v", spans)
	}
	// Totals are exact despite the wrap: 10 spans × 10ns.
	totals := p.StageTotals()
	if len(totals) != 1 || totals[0].Stage != "simulate" {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Spans != 10 || math.Abs(totals[0].Seconds-100e-9) > 1e-15 {
		t.Fatalf("simulate total = %+v, want 10 spans / 100ns", totals[0])
	}
}

func TestSinkLabelTotals(t *testing.T) {
	p := New(2, 16)
	p.Record(0, StageSink, "windowcp", "c", 0, 30)
	p.Record(1, StageSink, "windowcp", "c", 0, 20)
	p.Record(1, StageSink, "mix", "c", 0, 5)
	sec := p.StageSeconds()
	if math.Abs(sec["sink:windowcp"]-50e-9) > 1e-15 {
		t.Fatalf("sink:windowcp = %v, want 50ns", sec["sink:windowcp"])
	}
	if math.Abs(sec["sink:mix"]-5e-9) > 1e-15 {
		t.Fatalf("sink:mix = %v, want 5ns", sec["sink:mix"])
	}
	totals := p.StageTotals()
	if totals[0].Stage != "sink:windowcp" {
		t.Fatalf("totals not sorted largest-first: %+v", totals)
	}
}

func TestStartEnd(t *testing.T) {
	p := New(1, 8)
	h := p.Start(0, StageDeliver, "", "a/b")
	time.Sleep(time.Millisecond)
	h.End()
	spans := p.Spans()
	if len(spans) != 1 || spans[0].Name != "deliver" || spans[0].Dur <= 0 {
		t.Fatalf("Start/End span = %+v", spans)
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler reports Enabled")
	}
	if p.Lanes() != 0 || p.CoordinatorLane() != 0 || p.Now() != 0 {
		t.Fatal("nil accessors not zero")
	}
	p.Record(0, StageSimulate, "", "", 0, 1)
	h := p.Start(0, StageSetup, "", "")
	h.End()
	if p.Spans() != nil || p.StageTotals() != nil || p.Dropped() != 0 {
		t.Fatal("nil profiler retained data")
	}
	if len(p.StageSeconds()) != 0 {
		t.Fatal("nil StageSeconds not empty")
	}
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace is invalid JSON: %v\n%s", err, buf.String())
	}
}

func TestRecordPathDoesNotAllocate(t *testing.T) {
	p := New(2, 64)
	if allocs := testing.AllocsPerRun(100, func() {
		h := p.Start(1, StageSimulate, "", "fib/rv64")
		h.End()
	}); allocs != 0 {
		t.Fatalf("Start/End allocates %v times per span", allocs)
	}
	var nilP *Profiler
	if allocs := testing.AllocsPerRun(100, func() {
		h := nilP.Start(1, StageSimulate, "", "fib/rv64")
		h.End()
	}); allocs != 0 {
		t.Fatalf("nil Start/End allocates %v times per span", allocs)
	}
}

// TestNilHookCost pins the profiler-off price of one instrumentation
// point: a Start/End pair on a nil profiler must stay in the
// nanosecond range (two nil checks), so the handful of hooks per
// matrix cell is far below 1% of any cell's wall time.
func TestNilHookCost(t *testing.T) {
	var p *Profiler
	const n = 1_000_000
	begin := time.Now()
	for i := 0; i < n; i++ {
		h := p.Start(0, StageSimulate, "", "c")
		h.End()
	}
	perPair := time.Since(begin) / n
	if perPair > 200*time.Nanosecond {
		t.Fatalf("nil Start/End pair costs %v, want nanosecond-scale", perPair)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	p := New(1, 8)
	p.Record(0, StageSimulate, "", "fib/rv64", 1000, 51000)
	p.Record(0, StageSink, "windowcp", "fib/rv64", 51000, 52000)
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []telemetry.ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("trace events = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "simulate" || ev.Ph != "X" || ev.Ts != 1 || ev.Dur != 50 {
		t.Fatalf("first event = %+v (timestamps must be µs)", ev)
	}
	if doc.TraceEvents[1].Name != "sink:windowcp" || doc.TraceEvents[1].Args["label"] != "windowcp" {
		t.Fatalf("second event = %+v", doc.TraceEvents[1])
	}
}

func TestOccupancyFromSched(t *testing.T) {
	st := telemetry.SchedStats{
		Workers:           2,
		WallSeconds:       10,
		WorkerUtilization: []float64{0.8, 0.2},
		WorkerBlocked:     []float64{0.1, 0.7},
	}
	occ := OccupancyFromSched(st)
	if len(occ) != 2 {
		t.Fatalf("occupancy rows = %d", len(occ))
	}
	if math.Abs(occ[0].Busy-0.8) > 1e-12 || math.Abs(occ[0].Blocked-0.1) > 1e-12 || math.Abs(occ[0].Idle-0.1) > 1e-12 {
		t.Fatalf("worker 0 occupancy = %+v", occ[0])
	}
	if math.Abs(occ[1].Busy-0.2) > 1e-12 || math.Abs(occ[1].Blocked-0.7) > 1e-12 {
		t.Fatalf("worker 1 occupancy = %+v", occ[1])
	}
	if OccupancyFromSched(telemetry.SchedStats{}) != nil {
		t.Fatal("empty stats should yield nil occupancy")
	}
	// Over-subscribed busy clamps idle at zero rather than going negative.
	over := OccupancyFromSched(telemetry.SchedStats{WallSeconds: 1, WorkerUtilization: []float64{1.5}})
	if over[0].Idle != 0 {
		t.Fatalf("idle not clamped: %+v", over[0])
	}
}

func TestAmdahlSerialFraction(t *testing.T) {
	// Perfect Amdahl data with s = 0.3 must be recovered exactly.
	s := 0.3
	walls := map[int]float64{}
	for _, w := range []int{1, 2, 4, 8} {
		walls[w] = 10 * (s + (1-s)/float64(w))
	}
	if got := AmdahlSerialFraction(walls); math.Abs(got-s) > 1e-9 {
		t.Fatalf("AmdahlSerialFraction = %v, want %v", got, s)
	}
	// Perfectly parallel.
	for _, w := range []int{1, 2, 4} {
		walls[w] = 10 / float64(w)
	}
	delete(walls, 8)
	if got := AmdahlSerialFraction(walls); math.Abs(got) > 1e-9 {
		t.Fatalf("parallel fit = %v, want 0", got)
	}
	// No speedup at all (single-CPU host shape): s clamps to 1.
	if got := AmdahlSerialFraction(map[int]float64{1: 10, 2: 10.5, 4: 10.4}); got != 1 {
		t.Fatalf("flat fit = %v, want clamp to 1", got)
	}
	// Degenerate inputs.
	if got := AmdahlSerialFraction(map[int]float64{2: 5}); got != -1 {
		t.Fatalf("missing baseline: %v, want -1", got)
	}
	if got := AmdahlSerialFraction(map[int]float64{1: 10}); got != -1 {
		t.Fatalf("no multi-worker points: %v, want -1", got)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(10, 5, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect scaling efficiency = %v, want 1", got)
	}
	if got := Efficiency(10, 10, 4); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("flat scaling efficiency = %v, want 0.25", got)
	}
	if Efficiency(0, 1, 1) != 0 || Efficiency(1, 0, 1) != 0 {
		t.Fatal("degenerate efficiency not 0")
	}
}

func BenchmarkStartEnd(b *testing.B) {
	p := New(4, DefaultLaneSpans)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := p.Start(i&3, StageSimulate, "", "fib/rv64")
		h.End()
	}
}

func BenchmarkNilStartEnd(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := p.Start(i&3, StageSimulate, "", "fib/rv64")
		h.End()
	}
}
