package simeng

import (
	"testing"

	"isacmp/internal/a64"
	"isacmp/internal/isa"
	"isacmp/internal/mem"
	"isacmp/internal/rv64"
)

func rvLoop(t *testing.T, n int64) Machine {
	t.Helper()
	a := rv64.NewAsm()
	a.LI(5, 0)
	a.LI(6, n)
	a.Label("loop")
	a.ADDI(5, 5, 1)
	a.BNE(5, 6, "loop")
	a.LI(10, 0)
	a.LI(17, 93)
	a.ECALL()
	f, err := a.Build(rv64.Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rv64.NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func a64Loop(t *testing.T, n int64) Machine {
	t.Helper()
	a := a64.NewAsm()
	a.MOV64(1, 0)
	a.MOV64(2, n)
	a.Label("loop")
	a.ADDi(1, 1, 1)
	a.CMP(1, 2)
	a.Bc(a64.NE, "loop")
	a.MOV64(0, 0)
	a.MOV64(8, 93)
	a.SVC()
	f, err := a.Build(a64.Program{TextBase: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := a64.NewMachine(f, mem.New(0x10000, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmulationCoreCounts(t *testing.T) {
	const n = 100
	m := rvLoop(t, n)
	var events uint64
	stats, err := (&EmulationCore{}).Run(m, isa.SinkFunc(func(*isa.Event) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	// li(2) + n*(addi+bne) + li + li + ecall; the final ecall is not
	// streamed (it retires as exit).
	if stats.Instructions != events {
		t.Fatalf("stats %d != events %d", stats.Instructions, events)
	}
	want := uint64(2 + 2*n + 2)
	if stats.Instructions != want {
		t.Fatalf("instructions = %d, want %d", stats.Instructions, want)
	}
	if stats.Cycles != stats.Instructions {
		t.Fatalf("emulation core CPI must be 1")
	}
	if stats.CPI() != 1 {
		t.Fatalf("CPI = %v", stats.CPI())
	}
}

func TestEmulationCoreLimit(t *testing.T) {
	m := rvLoop(t, 1_000_000)
	c := &EmulationCore{MaxInstructions: 100}
	if _, err := c.Run(m, nil); err == nil {
		t.Fatal("expected instruction-limit error")
	}
}

func TestInOrderSerialVsParallel(t *testing.T) {
	// Serial: chain of dependent adds -> ~1 IPC even dual issue.
	serial := NewInOrderModel()
	for i := 0; i < 1000; i++ {
		ev := &isa.Event{Group: isa.GroupIntSimple}
		ev.AddSrc(isa.IntReg(1))
		ev.AddDst(isa.IntReg(1))
		serial.Event(ev)
	}
	s := serial.Stats()
	if s.CPI() < 0.99 {
		t.Fatalf("serial CPI = %v, want >= 1", s.CPI())
	}

	// Parallel: independent adds -> ~0.5 CPI (dual issue).
	par := NewInOrderModel()
	for i := 0; i < 1000; i++ {
		ev := &isa.Event{Group: isa.GroupIntSimple}
		ev.AddDst(isa.IntReg(uint8(i%28) + 1))
		par.Event(ev)
	}
	p := par.Stats()
	if p.CPI() > 0.6 {
		t.Fatalf("parallel CPI = %v, want ~0.5", p.CPI())
	}
	if p.Cycles >= s.Cycles {
		t.Fatalf("parallel (%d cycles) should beat serial (%d)", p.Cycles, s.Cycles)
	}
}

func TestInOrderLatencyExposed(t *testing.T) {
	// A chain of dependent FP adds must pay the FP latency each step.
	m := NewInOrderModel()
	const n = 100
	for i := 0; i < n; i++ {
		ev := &isa.Event{Group: isa.GroupFPAdd}
		ev.AddSrc(isa.FPReg(1))
		ev.AddDst(isa.FPReg(1))
		m.Event(ev)
	}
	lat := uint64(m.Latencies.Latency(isa.GroupFPAdd))
	if got := m.Stats().Cycles; got < (n-1)*lat {
		t.Fatalf("cycles = %d, want >= %d", got, (n-1)*lat)
	}
}

func TestInOrderBranchPenalty(t *testing.T) {
	// Not-taken branches pay the penalty under static predict-taken.
	m := NewInOrderModel()
	const n = 100
	for i := 0; i < n; i++ {
		ev := &isa.Event{Group: isa.GroupBranch, Branch: true, Taken: false}
		m.Event(ev)
	}
	if got := m.Stats().Cycles; got < (n-1)*m.BranchPenalty {
		t.Fatalf("cycles = %d, want >= %d", got, (n-1)*m.BranchPenalty)
	}
	// Taken branches predicted correctly: near-ideal throughput.
	m2 := NewInOrderModel()
	for i := 0; i < n; i++ {
		m2.Event(&isa.Event{Group: isa.GroupBranch, Branch: true, Taken: true})
	}
	if m2.Stats().Cycles > n {
		t.Fatalf("taken branches should not pay penalties: %d cycles", m2.Stats().Cycles)
	}
}

func TestOoOWidthBound(t *testing.T) {
	// Independent stream: throughput bounded by dispatch width.
	m := NewOoOModel()
	const n = 4000
	for i := 0; i < n; i++ {
		ev := &isa.Event{Group: isa.GroupIntSimple}
		ev.AddDst(isa.IntReg(uint8(i%28) + 1))
		m.Event(ev)
	}
	got := m.Stats()
	wantMin := uint64(n / m.Width)
	if got.Cycles < wantMin || got.Cycles > wantMin+10 {
		t.Fatalf("cycles = %d, want ~%d", got.Cycles, wantMin)
	}
}

func TestOoOSerialChainBound(t *testing.T) {
	m := NewOoOModel()
	const n = 1000
	for i := 0; i < n; i++ {
		ev := &isa.Event{Group: isa.GroupIntSimple}
		ev.AddSrc(isa.IntReg(1))
		ev.AddDst(isa.IntReg(1))
		m.Event(ev)
	}
	if got := m.Stats().Cycles; got < n {
		t.Fatalf("serial chain: %d cycles, want >= %d", got, n)
	}
}

func TestOoOROBLimit(t *testing.T) {
	// One long-latency instruction at the head blocks retirement; with
	// a tiny ROB the independent instructions behind it stall.
	small := &OoOModel{Width: 4, ROBSize: 4, Latencies: TX2Latencies()}
	big := &OoOModel{Width: 4, ROBSize: 512, Latencies: TX2Latencies()}
	feed := func(m *OoOModel) {
		for i := 0; i < 100; i++ {
			div := &isa.Event{Group: isa.GroupIntDiv}
			div.AddSrc(isa.IntReg(1))
			div.AddDst(isa.IntReg(1))
			m.Event(div)
			for j := 0; j < 10; j++ {
				add := &isa.Event{Group: isa.GroupIntSimple}
				add.AddDst(isa.IntReg(uint8(j%8) + 2))
				m.Event(add)
			}
		}
	}
	feed(small)
	feed(big)
	if small.Stats().Cycles <= big.Stats().Cycles {
		t.Fatalf("ROB 4 (%d cycles) should be slower than ROB 512 (%d)",
			small.Stats().Cycles, big.Stats().Cycles)
	}
}

func TestOoOMemoryForwarding(t *testing.T) {
	m := NewOoOModel()
	// store to A (done at t1), load from A must start >= t1.
	st := &isa.Event{Group: isa.GroupStore, StoreAddr: 0x100, StoreSize: 8}
	st.AddSrc(isa.IntReg(1))
	m.Event(st)
	ld := &isa.Event{Group: isa.GroupLoad, LoadAddr: 0x100, LoadSize: 8}
	ld.AddDst(isa.IntReg(2))
	m.Event(ld)
	// load completes at store-done + load latency.
	want := uint64(m.Latencies.Latency(isa.GroupStore)) + uint64(m.Latencies.Latency(isa.GroupLoad))
	if got := m.Stats().Cycles; got != want {
		t.Fatalf("cycles = %d, want %d", got, want)
	}
}

func TestLatencyTables(t *testing.T) {
	for _, l := range []*LatencyModel{TX2Latencies(), A55Latencies(), UnitLatencies()} {
		for g := isa.Group(0); g < isa.NumGroups; g++ {
			if l.Latency(g) == 0 {
				t.Fatalf("group %v has zero latency", g)
			}
		}
	}
	tx2 := TX2Latencies()
	if tx2.Latency(isa.GroupFPDiv) <= tx2.Latency(isa.GroupFPAdd) {
		t.Fatal("FP divide should cost more than FP add")
	}
	unit := UnitLatencies()
	for g := isa.Group(0); g < isa.NumGroups; g++ {
		if unit.Latency(g) != 1 {
			t.Fatal("unit latencies must be 1")
		}
	}
}

func TestBothMachinesThroughCore(t *testing.T) {
	for _, m := range []Machine{rvLoop(t, 10), a64Loop(t, 10)} {
		stats, err := (&EmulationCore{}).Run(m, nil)
		if err != nil {
			t.Fatalf("%v: %v", m.Arch(), err)
		}
		if stats.Instructions == 0 {
			t.Fatalf("%v: no instructions", m.Arch())
		}
	}
}

// recorder captures observer callbacks for the pipeline-observer tests.
type recorder struct {
	n        int
	badOrder bool
	lastDone uint64
}

func (r *recorder) ObserveRetire(ev *isa.Event, dispatch, issue, complete uint64) {
	r.n++
	if dispatch > issue || issue > complete {
		r.badOrder = true
	}
	r.lastDone = complete
}

func TestEmulationCoreObserver(t *testing.T) {
	m := rvLoop(t, 25)
	rec := &recorder{}
	c := &EmulationCore{Observer: rec}
	stats, err := c.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(rec.n) != stats.Instructions {
		t.Fatalf("observed %d retires, want %d", rec.n, stats.Instructions)
	}
	if rec.badOrder {
		t.Fatal("observer saw dispatch/issue/complete out of order")
	}
	ps := c.PipelineStats()
	if ps.Model != "emulation" || ps.Instructions != stats.Instructions || ps.Cycles != stats.Cycles {
		t.Fatalf("pipeline stats = %+v", ps)
	}
}

func TestTimingModelTracers(t *testing.T) {
	for _, tc := range []struct {
		model string
		run   func(rec *recorder, n int) PipelineStats
	}{
		{"inorder", func(rec *recorder, n int) PipelineStats {
			m := NewInOrderModel()
			m.Tracer = rec
			for i := 0; i < n; i++ {
				ev := &isa.Event{Group: isa.GroupLoad}
				ev.AddSrc(isa.IntReg(1))
				ev.AddDst(isa.IntReg(1))
				m.Event(ev)
			}
			return m.PipelineStats()
		}},
		{"ooo", func(rec *recorder, n int) PipelineStats {
			m := NewOoOModel()
			m.Tracer = rec
			for i := 0; i < n; i++ {
				ev := &isa.Event{Group: isa.GroupLoad}
				ev.AddSrc(isa.IntReg(1))
				ev.AddDst(isa.IntReg(1))
				m.Event(ev)
			}
			return m.PipelineStats()
		}},
	} {
		rec := &recorder{}
		const n = 200
		ps := tc.run(rec, n)
		if rec.n != n {
			t.Fatalf("%s: traced %d events, want %d", tc.model, rec.n, n)
		}
		if rec.badOrder {
			t.Fatalf("%s: dispatch/issue/complete out of order", tc.model)
		}
		if ps.Model != tc.model {
			t.Fatalf("model = %q, want %q", ps.Model, tc.model)
		}
		if ps.Instructions != n {
			t.Fatalf("%s: stats instructions = %d, want %d", tc.model, ps.Instructions, n)
		}
		// A serial load chain must expose source stalls in every model.
		if ps.SrcStallCycles == 0 {
			t.Fatalf("%s: no source-stall cycles on a serial load chain", tc.model)
		}
		if ps.CPI() <= 1 {
			t.Fatalf("%s: CPI %v <= 1 on a serial load chain", tc.model, ps.CPI())
		}
	}
}
