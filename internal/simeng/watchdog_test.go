package simeng

import (
	"context"
	"errors"
	"testing"
	"time"

	"isacmp/internal/isa"
)

// TestEmulationCoreBudgetTyped: the MaxInstructions watchdog reports
// an ErrBudget-kind SimError carrying PC and retired count.
func TestEmulationCoreBudgetTyped(t *testing.T) {
	m := rvLoop(t, 1_000_000)
	c := &EmulationCore{MaxInstructions: 100}
	_, err := c.Run(m, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget kind", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err %T is not a SimError", err)
	}
	if se.Retired != 100 {
		t.Fatalf("retired = %d, want 100", se.Retired)
	}
	if se.PC == 0 {
		t.Fatal("PC must be captured")
	}
}

// TestEmulationCoreDeadline: an expired context reaps a long-running
// machine with an ErrDeadline-kind error instead of spinning forever.
func TestEmulationCoreDeadline(t *testing.T) {
	m := rvLoop(t, 1<<40) // effectively infinite at test speeds
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := &EmulationCore{Ctx: ctx}
	start := time.Now()
	_, err := c.Run(m, nil)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline kind", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("deadline reap took %v", d)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Retired == 0 {
		t.Fatalf("deadline error must carry progress: %v", err)
	}
}

// TestEmulationCoreDeadlineNoFalsePositive: a context with plenty of
// headroom does not perturb a normal run.
func TestEmulationCoreDeadlineNoFalsePositive(t *testing.T) {
	m := rvLoop(t, 10_000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	stats, err := (&EmulationCore{Ctx: ctx}).Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
}

// TestEmulationCoreSinkPanicRecovered: a panicking analysis sink is
// converted to an ErrPanic-kind error, not a process death.
func TestEmulationCoreSinkPanicRecovered(t *testing.T) {
	m := rvLoop(t, 1000)
	n := 0
	sink := isa.SinkFunc(func(*isa.Event) {
		n++
		if n == 50 {
			panic("sink exploded")
		}
	})
	_, err := (&EmulationCore{}).Run(m, sink)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic kind", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("err %T is not a SimError", err)
	}
	if se.Retired != 50 {
		t.Fatalf("retired = %d, want 50", se.Retired)
	}
}
