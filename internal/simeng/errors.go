package simeng

import (
	"context"
	"errors"
	"fmt"

	"isacmp/internal/mem"
)

// The failure taxonomy. Every way a matrix cell can die is mapped onto
// one of these sentinels so that schedulers, retry policies, report
// writers and the manifest `failures` block can switch on the reason
// without parsing messages. errors.Is works through SimError.
var (
	// ErrDecode marks an instruction word the front end rejected
	// (predecode failures, unallocated encodings, injected decode
	// faults).
	ErrDecode = errors.New("decode error")
	// ErrMemFault marks an out-of-range or misaligned data access
	// (mem.AccessError and injected memory faults).
	ErrMemFault = errors.New("memory fault")
	// ErrBudget marks a run that exceeded its MaxInstructions
	// watchdog budget.
	ErrBudget = errors.New("instruction budget exceeded")
	// ErrDeadline marks a run reaped by its wall-clock deadline
	// (context timeout or cancellation).
	ErrDeadline = errors.New("cell deadline exceeded")
	// ErrPanic marks a panic recovered from the exec, decode or sink
	// layers and converted into an error.
	ErrPanic = errors.New("panic")
	// ErrSetup marks a failure before simulation started (compile or
	// load errors); setup failures are cell failures too, so the rest
	// of a matrix can keep going.
	ErrSetup = errors.New("setup error")
	// ErrIO marks a durability-layer disk failure (short journal
	// write, ENOSPC, fsync error, torn cache file). I/O failures are
	// reported and survive-able: a cell whose journal append fails
	// still returns its computed result; only its durability is lost.
	ErrIO = errors.New("i/o error")
)

// Reason returns the short lower-case tag of a taxonomy sentinel, the
// form the manifest `failures` block and FAILED(<reason>) table rows
// use. Unknown errors map to "unknown".
func Reason(err error) string {
	switch {
	case errors.Is(err, ErrDecode):
		return "decode"
	case errors.Is(err, ErrMemFault):
		return "mem-fault"
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrPanic):
		return "panic"
	case errors.Is(err, ErrSetup):
		return "setup"
	case errors.Is(err, ErrIO):
		return "io"
	default:
		return "unknown"
	}
}

// SimError is the structured failure record the engine attaches to
// every error that escapes a run: which taxonomy kind it is, where the
// machine was (PC), how far it got (retired instructions) and, once a
// scheduler owns it, which matrix cell it belongs to. errors.Is
// matches both the Kind sentinel and the wrapped cause.
type SimError struct {
	// Kind is one of the taxonomy sentinels above.
	Kind error
	// Workload and Target identify the matrix cell; the scheduler
	// fills them in via WithCell.
	Workload string
	Target   string
	// PC is the program counter at the point of failure (0 when the
	// failure happened outside simulation, e.g. setup).
	PC uint64
	// Retired is the number of instructions retired before the
	// failure.
	Retired uint64
	// Err is the underlying cause.
	Err error
}

// Error renders the full context: cell, kind, position and cause.
func (e *SimError) Error() string {
	cell := ""
	if e.Workload != "" || e.Target != "" {
		cell = fmt.Sprintf("%s/%s: ", e.Workload, e.Target)
	}
	if e.Err != nil && !errors.Is(e.Kind, e.Err) {
		return fmt.Sprintf("simeng: %s%s at pc=%#x after %d instructions: %v",
			cell, Reason(e.Kind), e.PC, e.Retired, e.Err)
	}
	return fmt.Sprintf("simeng: %s%s at pc=%#x after %d instructions",
		cell, Reason(e.Kind), e.PC, e.Retired)
}

// Unwrap exposes the underlying cause chain.
func (e *SimError) Unwrap() error { return e.Err }

// Is matches the taxonomy sentinel in addition to the cause chain, so
// errors.Is(err, simeng.ErrDecode) holds for a classified decode
// failure whatever the concrete cause was.
func (e *SimError) Is(target error) bool { return e.Kind == target }

// WithCell returns a copy of the error carrying the cell identity; a
// non-SimError cause is classified first.
func WithCell(err error, workload, target string) *SimError {
	se := AsSimError(err)
	se.Workload, se.Target = workload, target
	return se
}

// decodeFaulter is the structural marker the a64 and rv64 DecodeError
// types implement; checking it here avoids an import in either
// direction.
type decodeFaulter interface{ DecodeFault() }

// Classify maps an arbitrary error onto a taxonomy sentinel: typed
// decode errors, memory access errors, context deadlines and already-
// classified SimErrors are recognised; anything else — compile and
// load failures being the common case — is ErrSetup.
func Classify(err error) error {
	var se *SimError
	if errors.As(err, &se) {
		return se.Kind
	}
	var df decodeFaulter
	if errors.As(err, &df) {
		return ErrDecode
	}
	var ae *mem.AccessError
	if errors.As(err, &ae) {
		return ErrMemFault
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ErrDeadline
	case errors.Is(err, ErrDecode):
		return ErrDecode
	case errors.Is(err, ErrMemFault):
		return ErrMemFault
	case errors.Is(err, ErrBudget):
		return ErrBudget
	case errors.Is(err, ErrDeadline):
		return ErrDeadline
	case errors.Is(err, ErrPanic):
		return ErrPanic
	case errors.Is(err, ErrSetup):
		return ErrSetup
	case errors.Is(err, ErrIO):
		return ErrIO
	}
	return ErrSetup
}

// AsSimError returns err as a *SimError, classifying and wrapping it
// first when necessary.
func AsSimError(err error) *SimError {
	var se *SimError
	if errors.As(err, &se) {
		return se
	}
	return &SimError{Kind: Classify(err), Err: err}
}

// Guard runs fn, converting a panic in any layer below it (exec,
// decode, memory, analysis sinks) into an ErrPanic-kind SimError
// instead of killing the process. The worker pools run every matrix
// cell under a Guard.
func Guard(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SimError{Kind: ErrPanic, Err: fmt.Errorf("recovered: %v", r)}
		}
	}()
	return fn()
}
