package simeng

import (
	"errors"
	"fmt"
	"testing"

	"isacmp/internal/isa"
)

// scriptMachine is a BatchMachine that retires a fixed number of
// events with recognisable payloads, optionally failing at a given
// retirement. It lets the batched-loop tests control exactly where
// done/error fall relative to batch boundaries.
type scriptMachine struct {
	total    uint64 // events before the done step
	failAt   uint64 // fail when retiring event #failAt (1-based); 0 disables
	failErr  error
	retired  uint64
	stepNs   int // number of StepN calls observed
	exited   bool
	exitCode int64
}

func (s *scriptMachine) fill(ev *isa.Event) {
	*ev = isa.Event{PC: 0x1000 + 4*s.retired, Word: uint32(s.retired)}
	ev.AddDst(isa.IntReg(uint8(s.retired%30) + 1))
}

func (s *scriptMachine) Step(ev *isa.Event) (bool, error) {
	if s.retired >= s.total {
		s.exited = true
		return true, nil
	}
	if s.failAt != 0 && s.retired+1 == s.failAt {
		return false, s.failErr
	}
	s.fill(ev)
	s.retired++
	return false, nil
}

func (s *scriptMachine) StepN(evs []isa.Event) (n int, done bool, err error) {
	s.stepNs++
	for n < len(evs) {
		done, err = s.Step(&evs[n])
		if done || err != nil {
			return n, done, err
		}
		n++
	}
	return n, false, nil
}

func (s *scriptMachine) PC() uint64      { return 0x1000 + 4*s.retired }
func (s *scriptMachine) Arch() isa.Arch  { return isa.RV64 }
func (s *scriptMachine) Exited() bool    { return s.exited }
func (s *scriptMachine) ExitCode() int64 { return s.exitCode }

// collectSink copies every event — the documented sink contract.
type collectSink struct{ evs []isa.Event }

func (c *collectSink) Event(ev *isa.Event) { c.evs = append(c.evs, *ev) }

// batchCollectSink additionally takes the BatchSink fast path.
type batchCollectSink struct{ collectSink }

func (c *batchCollectSink) Events(evs []isa.Event) { c.evs = append(c.evs, evs...) }

// TestStepNMatchesStepLoop runs the same script through the per-Step
// reference loop and the batched loop and demands identical event
// streams and stats, for totals straddling the batch size.
func TestStepNMatchesStepLoop(t *testing.T) {
	for _, total := range []uint64{0, 1, 7, stepBatch - 1, stepBatch, stepBatch + 1, 3*stepBatch + 17} {
		var ref, bat collectSink
		refStats, err := (&EmulationCore{StepLoop: true}).Run(&scriptMachine{total: total}, &ref)
		if err != nil {
			t.Fatal(err)
		}
		sm := &scriptMachine{total: total}
		batStats, err := (&EmulationCore{}).Run(sm, &bat)
		if err != nil {
			t.Fatal(err)
		}
		if refStats != batStats {
			t.Fatalf("total %d: stats %+v != %+v", total, batStats, refStats)
		}
		if total > 0 && sm.stepNs == 0 {
			t.Fatalf("total %d: batched run never called StepN", total)
		}
		if len(ref.evs) != len(bat.evs) {
			t.Fatalf("total %d: %d events batched, %d stepwise", total, len(bat.evs), len(ref.evs))
		}
		for i := range ref.evs {
			if ref.evs[i] != bat.evs[i] {
				t.Fatalf("total %d: event %d differs: %+v != %+v", total, i, bat.evs[i], ref.evs[i])
			}
		}
	}
}

// TestStepNBatchSinkPath checks the BatchSink delivery path produces
// the same stream as per-event delivery.
func TestStepNBatchSinkPath(t *testing.T) {
	const total = 2*stepBatch + 31
	var perEvent collectSink
	var batched batchCollectSink
	if _, err := (&EmulationCore{}).Run(&scriptMachine{total: total}, &perEvent); err != nil {
		t.Fatal(err)
	}
	if _, err := (&EmulationCore{}).Run(&scriptMachine{total: total}, &batched); err != nil {
		t.Fatal(err)
	}
	if len(perEvent.evs) != total || len(batched.evs) != total {
		t.Fatalf("event counts: per-event %d, batched %d, want %d", len(perEvent.evs), len(batched.evs), total)
	}
	for i := range perEvent.evs {
		if perEvent.evs[i] != batched.evs[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestStepLoopKnob verifies StepLoop forces the reference loop even
// on a BatchMachine.
func TestStepLoopKnob(t *testing.T) {
	sm := &scriptMachine{total: 100}
	if _, err := (&EmulationCore{StepLoop: true}).Run(sm, nil); err != nil {
		t.Fatal(err)
	}
	if sm.stepNs != 0 {
		t.Fatalf("StepLoop run called StepN %d times", sm.stepNs)
	}
}

// TestStepNBudgetExact pins the instruction-budget semantics of the
// batched loop: the run fails with ErrBudget, Retired equals the
// budget exactly, and exactly budget events were delivered — even
// when the budget is not a multiple of the batch size.
func TestStepNBudgetExact(t *testing.T) {
	for _, budget := range []uint64{1, 50, stepBatch, stepBatch + 1, 2*stepBatch - 3} {
		var sink collectSink
		c := &EmulationCore{MaxInstructions: budget}
		_, err := c.Run(&scriptMachine{total: 10 * stepBatch}, &sink)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("budget %d: err = %v, want ErrBudget", budget, err)
		}
		var se *SimError
		if !errors.As(err, &se) || se.Retired != budget {
			t.Fatalf("budget %d: retired = %d, want exactly the budget", budget, se.Retired)
		}
		if uint64(len(sink.evs)) != budget {
			t.Fatalf("budget %d: %d events delivered", budget, len(sink.evs))
		}
	}
}

// TestStepNErrorMidBatch pins the fault semantics of the batched
// loop: events retired before the failure are all delivered, Retired
// counts exactly them, and the cause survives classification.
func TestStepNErrorMidBatch(t *testing.T) {
	cause := fmt.Errorf("scripted fault")
	for _, failAt := range []uint64{1, 100, stepBatch, stepBatch + 5} {
		var sink collectSink
		_, err := (&EmulationCore{}).Run(&scriptMachine{total: 10 * stepBatch, failAt: failAt, failErr: cause}, &sink)
		if !errors.Is(err, cause) {
			t.Fatalf("failAt %d: err = %v, want wrapped cause", failAt, err)
		}
		var se *SimError
		if !errors.As(err, &se) || se.Retired != failAt-1 {
			t.Fatalf("failAt %d: retired = %d, want %d", failAt, se.Retired, failAt-1)
		}
		if uint64(len(sink.evs)) != failAt-1 {
			t.Fatalf("failAt %d: %d events delivered, want %d", failAt, len(sink.evs), failAt-1)
		}
	}
}

// TestEventInvalidAfterReturn enforces the documented sink lifetime
// contract: the event a sink receives is invalid the moment the
// callback returns, because the engine reuses one batch buffer for
// the whole run. A sink that retains the pointer observes the payload
// being overwritten by a later batch; a correct sink copies the
// struct. Run under -race (the Makefile race/differential targets do)
// this also certifies the reuse itself is single-goroutine clean.
func TestEventInvalidAfterReturn(t *testing.T) {
	var retained *isa.Event
	var firstCopy isa.Event
	sink := isa.SinkFunc(func(ev *isa.Event) {
		if retained == nil {
			retained = ev // contract violation, deliberately
			firstCopy = *ev
		}
	})
	if _, err := (&EmulationCore{}).Run(&scriptMachine{total: 3 * stepBatch}, sink); err != nil {
		t.Fatal(err)
	}
	if retained == nil {
		t.Fatal("sink never ran")
	}
	if *retained == firstCopy {
		t.Fatal("retained event still holds its original payload; buffer reuse contract not exercised")
	}
}

// TestStepNSteadyStateZeroAlloc proves the batched loop is
// allocation-free in steady state: once the core's batch buffer
// exists, driving whole batches through StepN and a batch-consuming
// sink allocates nothing.
func TestStepNSteadyStateZeroAlloc(t *testing.T) {
	sm := &scriptMachine{total: 1 << 40}
	c := &EmulationCore{}
	var consumed uint64
	sink := &countEvents{n: &consumed}
	// Warm up: first run of the loop allocates the batch buffer.
	c.batch = make([]isa.Event, stepBatch)
	buf := c.batch
	allocs := testing.AllocsPerRun(100, func() {
		n, done, err := sm.StepN(buf)
		if done || err != nil {
			t.Fatal("script ended early")
		}
		sink.Events(buf[:n])
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch cycle allocates %v times per run", allocs)
	}
}

type countEvents struct{ n *uint64 }

func (c *countEvents) Event(*isa.Event)       { *c.n++ }
func (c *countEvents) Events(evs []isa.Event) { *c.n += uint64(len(evs)) }
