package simeng

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"isacmp/internal/isa"
)

// ParseLatencyConfig reads a latency model from a SimEng-style core
// description: one "group: latency" pair per line, '#' comments, blank
// lines ignored. Group names are the isa.Group strings (int-simple,
// int-mul, int-div, load, store, branch, fp-simple, fp-add, fp-mul,
// fp-fma, fp-div, fp-sqrt, fp-cvt, system). Groups not mentioned keep
// the base model's value (TX2 by default), mirroring how SimEng
// configs override a template.
func ParseLatencyConfig(r io.Reader, base *LatencyModel) (*LatencyModel, error) {
	model := &LatencyModel{}
	if base == nil {
		base = TX2Latencies()
	}
	*model = *base

	names := map[string]isa.Group{}
	for g := isa.Group(0); g < isa.NumGroups; g++ {
		names[g.String()] = g
	}

	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("simeng: config line %d: want 'group: latency', got %q", lineNo, line)
		}
		g, ok := names[strings.TrimSpace(key)]
		if !ok {
			return nil, fmt.Errorf("simeng: config line %d: unknown group %q", lineNo, strings.TrimSpace(key))
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 32)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("simeng: config line %d: bad latency %q", lineNo, strings.TrimSpace(val))
		}
		model[g] = uint32(n)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return model, nil
}

// WriteLatencyConfig serialises a latency model in the format
// ParseLatencyConfig reads.
func WriteLatencyConfig(w io.Writer, m *LatencyModel) error {
	for g := isa.Group(0); g < isa.NumGroups; g++ {
		if _, err := fmt.Fprintf(w, "%s: %d\n", g, m[g]); err != nil {
			return err
		}
	}
	return nil
}
