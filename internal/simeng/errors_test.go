package simeng

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"isacmp/internal/mem"
)

// fakeDecodeErr mimics the a64/rv64 DecodeError marker without
// importing the front ends (simeng sits below them).
type fakeDecodeErr struct{}

func (fakeDecodeErr) Error() string { return "fake: cannot decode" }
func (fakeDecodeErr) DecodeFault()  {}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"decode-marker", fakeDecodeErr{}, ErrDecode},
		{"decode-wrapped", fmt.Errorf("predecode: %w", fakeDecodeErr{}), ErrDecode},
		{"mem-fault", &mem.AccessError{Addr: 0x10, Size: 8, Op: "read"}, ErrMemFault},
		{"mem-fault-wrapped", fmt.Errorf("exec: %w", &mem.AccessError{}), ErrMemFault},
		{"deadline", context.DeadlineExceeded, ErrDeadline},
		{"canceled", context.Canceled, ErrDeadline},
		{"budget-sentinel", fmt.Errorf("x: %w", ErrBudget), ErrBudget},
		{"panic-sentinel", fmt.Errorf("x: %w", ErrPanic), ErrPanic},
		{"plain", errors.New("compile blew up"), ErrSetup},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSimErrorIsAndUnwrap(t *testing.T) {
	cause := &mem.AccessError{Addr: 0x40, Size: 8, Op: "write"}
	se := &SimError{Kind: ErrMemFault, PC: 0x1000, Retired: 42, Err: cause}
	if !errors.Is(se, ErrMemFault) {
		t.Fatal("errors.Is must match the taxonomy sentinel")
	}
	if errors.Is(se, ErrDecode) {
		t.Fatal("errors.Is must not match a different sentinel")
	}
	var ae *mem.AccessError
	if !errors.As(se, &ae) || ae != cause {
		t.Fatal("errors.As must reach the wrapped cause")
	}
	wrapped := fmt.Errorf("cell: %w", se)
	if !errors.Is(wrapped, ErrMemFault) {
		t.Fatal("sentinel must survive further wrapping")
	}
	if Classify(wrapped) != ErrMemFault {
		t.Fatal("Classify must find the embedded SimError kind")
	}
}

func TestSimErrorMessageCarriesContext(t *testing.T) {
	se := WithCell(&SimError{Kind: ErrBudget, PC: 0x2040, Retired: 1000,
		Err: fmt.Errorf("instruction limit 1000 exceeded")}, "stream", "RISC-V gcc12")
	msg := se.Error()
	for _, want := range []string{"stream", "RISC-V gcc12", "budget", "0x2040", "1000"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestReason(t *testing.T) {
	cases := map[string]error{
		"decode":    ErrDecode,
		"mem-fault": ErrMemFault,
		"budget":    ErrBudget,
		"deadline":  ErrDeadline,
		"panic":     ErrPanic,
		"setup":     ErrSetup,
		"unknown":   errors.New("???"),
	}
	for want, err := range cases {
		if got := Reason(err); got != want {
			t.Errorf("Reason(%v) = %q, want %q", err, got, want)
		}
	}
	if got := Reason(&SimError{Kind: ErrDeadline}); got != "deadline" {
		t.Errorf("Reason(SimError{deadline}) = %q", got)
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard(func() error { panic("not a load") })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic kind", err)
	}
	if !strings.Contains(err.Error(), "not a load") {
		t.Fatalf("panic value lost: %v", err)
	}
	if err := Guard(func() error { return nil }); err != nil {
		t.Fatalf("clean run must stay nil, got %v", err)
	}
	sentinel := errors.New("boom")
	if err := Guard(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("plain errors must pass through, got %v", err)
	}
}

func TestWithCell(t *testing.T) {
	err := WithCell(errors.New("gcc imploded"), "lbm", "AArch64 gcc9")
	if err.Workload != "lbm" || err.Target != "AArch64 gcc9" {
		t.Fatalf("cell identity not attached: %+v", err)
	}
	if !errors.Is(err, ErrSetup) {
		t.Fatalf("plain error must classify as setup, got kind %v", err.Kind)
	}
}
