package simeng

import (
	"testing"

	"isacmp/internal/isa"
)

func TestCacheHitsAndMisses(t *testing.T) {
	c := &Cache{LineSize: 64, Sets: 4, Ways: 2, MissPenalty: 10}
	// First touch misses, second hits.
	if c.Access(0x1000) != 10 {
		t.Fatal("cold access should miss")
	}
	if c.Access(0x1000) != 0 {
		t.Fatal("warm access should hit")
	}
	// Same line, different byte: hit.
	if c.Access(0x103F) != 0 {
		t.Fatal("same-line access should hit")
	}
	// Next line: miss.
	if c.Access(0x1040) != 10 {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: the third distinct line evicts the least recent.
	c := &Cache{LineSize: 64, Sets: 1, Ways: 2, MissPenalty: 1}
	c.Access(0)   // miss, cache: {0}
	c.Access(64)  // miss, cache: {64, 0}
	c.Access(0)   // hit, cache: {0, 64}
	c.Access(128) // miss, evicts 64
	if c.Access(0) != 0 {
		t.Fatal("line 0 should have survived (was MRU)")
	}
	if c.Access(64) != 1 {
		t.Fatal("line 64 should have been evicted")
	}
}

func TestCacheStreamingVsResident(t *testing.T) {
	// A working set that fits is all hits after warmup; a streaming
	// scan of a larger array keeps missing every line.
	resident := NewL1D()
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 16*1024; addr += 8 {
			resident.Access(addr)
		}
	}
	if resident.MissRate() > 0.05 {
		t.Fatalf("resident working set miss rate %v", resident.MissRate())
	}

	streaming := NewL1D()
	for addr := uint64(0); addr < 8*1024*1024; addr += 64 {
		streaming.Access(addr)
	}
	if streaming.MissRate() < 0.99 {
		t.Fatalf("streaming miss rate %v", streaming.MissRate())
	}
}

func TestOoOWithCache(t *testing.T) {
	// Streaming loads over a huge range: the cached model must charge
	// more cycles than the uncached one.
	run := func(dcache *Cache) uint64 {
		m := NewOoOModel()
		m.DCache = dcache
		for i := 0; i < 4000; i++ {
			ev := &isa.Event{Group: isa.GroupLoad, LoadAddr: uint64(i) * 64, LoadSize: 8}
			ev.AddDst(isa.IntReg(1))
			dep := &isa.Event{Group: isa.GroupIntSimple}
			dep.AddSrc(isa.IntReg(1))
			dep.AddDst(isa.IntReg(1)) // serialise on the loads
			m.Event(ev)
			m.Event(dep)
		}
		return m.Stats().Cycles
	}
	plain := run(nil)
	cached := run(NewL1D())
	if cached <= plain {
		t.Fatalf("cache model added no cost: %d vs %d", cached, plain)
	}
}

func TestInOrderWithCache(t *testing.T) {
	run := func(dcache *Cache) uint64 {
		m := NewInOrderModel()
		m.DCache = dcache
		for i := 0; i < 1000; i++ {
			ev := &isa.Event{Group: isa.GroupLoad, LoadAddr: uint64(i) * 64, LoadSize: 8}
			ev.AddDst(isa.IntReg(1))
			use := &isa.Event{Group: isa.GroupIntSimple}
			use.AddSrc(isa.IntReg(1))
			m.Event(ev)
			m.Event(use)
		}
		return m.Stats().Cycles
	}
	if run(NewL1D()) <= run(nil) {
		t.Fatal("in-order cache model added no cost")
	}
}
