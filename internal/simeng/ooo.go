package simeng

import "isacmp/internal/isa"

// OoOModel is a trace-driven timing model of an out-of-order
// superscalar core with a finite reorder buffer — the machine the
// paper's windowed critical-path analysis approximates, and the model
// its section 8 plans to study. It assumes perfect branch prediction
// and unlimited physical registers (so only true RAW dependencies,
// execution latency, dispatch width and ROB occupancy limit progress),
// plus store-to-load forwarding through memory.
//
// It implements isa.Sink: feed it the event stream, then read Stats.
type OoOModel struct {
	// Width is the dispatch/retire width per cycle.
	Width int
	// ROBSize bounds the number of instructions in flight.
	ROBSize int
	// Latencies supplies per-group execution latencies.
	Latencies *LatencyModel
	// TrackMemory enables RAW chains through memory (store forwarding
	// with the producing store's completion time).
	TrackMemory bool
	// DCache, when non-nil, adds a cache-miss penalty to loads.
	DCache *Cache
	// MSHRs bounds the number of outstanding cache misses (miss status
	// holding registers); 0 means 8. Only meaningful with DCache: an
	// unbounded-MSHR machine hides streaming misses completely under a
	// large ROB, which is not how real L1Ds behave.
	MSHRs int
	// Tracer, when non-nil, receives per-instruction pipeline timing.
	Tracer PipelineObserver

	mshrBusy []uint64

	srcStalls  uint64 // cycles instructions waited on sources
	robStalls  uint64 // cycles dispatch waited for a ROB slot
	robFullHit uint64 // dispatches that found the ROB full

	regReady  [isa.NumRegs]uint64
	memReady  map[uint64]uint64
	retire    []uint64 // ring buffer of retire cycles, ROBSize entries
	head      int
	count     int
	insts     uint64
	lastCycle uint64

	dispatchCycle uint64
	dispatched    int
}

// NewOoOModel returns a TX2-flavoured model: 4-wide with a 128-entry
// reorder buffer.
func NewOoOModel() *OoOModel {
	return &OoOModel{Width: 4, ROBSize: 128, Latencies: TX2Latencies(), TrackMemory: true}
}

// Event accounts one retired instruction.
func (m *OoOModel) Event(ev *isa.Event) {
	if m.retire == nil {
		m.retire = make([]uint64, m.ROBSize)
		if m.TrackMemory {
			m.memReady = make(map[uint64]uint64, 1<<12)
		}
	}
	m.insts++

	// Dispatch: Width per cycle, and the ROB must have a free slot.
	dispatch := m.dispatchCycle
	if m.dispatched >= m.Width {
		dispatch++
	}
	if m.count == m.ROBSize {
		// Oldest in-flight instruction retires at m.retire[m.head]; we
		// may not dispatch before the cycle after its retirement.
		m.robFullHit++
		if r := m.retire[m.head] + 1; r > dispatch {
			m.robStalls += r - dispatch
			dispatch = r
		}
		m.head = (m.head + 1) % m.ROBSize
		m.count--
	}
	if dispatch != m.dispatchCycle {
		m.dispatchCycle = dispatch
		m.dispatched = 0
	}
	m.dispatched++

	// Execute when sources are ready.
	start := dispatch
	for k := uint8(0); k < ev.NSrcs; k++ {
		if r := m.regReady[ev.Srcs[k]]; r > start {
			start = r
		}
	}
	if m.TrackMemory && ev.LoadSize != 0 {
		first, last := wordSpan(ev.LoadAddr, ev.LoadSize)
		for w := first; w <= last; w += 8 {
			if r := m.memReady[w]; r > start {
				start = r
			}
		}
	}
	if m.TrackMemory && ev.Load2Size != 0 { // second access of a fused load pair
		first, last := wordSpan(ev.Load2Addr, ev.Load2Size)
		for w := first; w <= last; w += 8 {
			if r := m.memReady[w]; r > start {
				start = r
			}
		}
	}
	m.srcStalls += start - dispatch
	lat := uint64(m.Latencies.Latency(ev.Group))
	if m.DCache != nil && ev.LoadSize != 0 {
		if miss := m.DCache.Access(ev.LoadAddr); miss != 0 {
			// A miss needs an MSHR; when all are busy the load waits
			// for the earliest one to free.
			if m.mshrBusy == nil {
				n := m.MSHRs
				if n <= 0 {
					n = 8
				}
				m.mshrBusy = make([]uint64, n)
			}
			best := 0
			for i, t := range m.mshrBusy {
				if t < m.mshrBusy[best] {
					best = i
				}
			}
			if m.mshrBusy[best] > start {
				start = m.mshrBusy[best]
			}
			lat += uint64(miss)
			m.mshrBusy[best] = start + lat
		}
	}
	if m.DCache != nil && ev.Load2Size != 0 {
		// Second access of a fused load pair: the dual-ported LSU issues
		// it alongside the first, so a miss adds latency but claims no
		// extra MSHR slot of its own.
		lat += uint64(m.DCache.Access(ev.Load2Addr))
	}
	if m.DCache != nil && ev.StoreSize != 0 {
		m.DCache.Access(ev.StoreAddr) // allocate-on-write, no stall
	}
	done := start + lat
	for k := uint8(0); k < ev.NDsts; k++ {
		m.regReady[ev.Dsts[k]] = done
	}
	if m.TrackMemory && ev.StoreSize != 0 {
		first, last := wordSpan(ev.StoreAddr, ev.StoreSize)
		for w := first; w <= last; w += 8 {
			m.memReady[w] = done
		}
	}

	// Retire in order.
	if done < m.lastCycle {
		done = m.lastCycle
	}
	m.lastCycle = done
	tail := (m.head + m.count) % m.ROBSize
	m.retire[tail] = done
	m.count++

	if m.Tracer != nil {
		m.Tracer.ObserveRetire(ev, dispatch, start, done)
	}
}

// Stats returns the accumulated counts; Cycles is the retire time of
// the last instruction.
func (m *OoOModel) Stats() Stats {
	return Stats{Instructions: m.insts, Cycles: m.lastCycle}
}

// PipelineStats returns the shared-base stats plus the out-of-order
// pipeline counters.
func (m *OoOModel) PipelineStats() PipelineStats {
	ps := PipelineStats{
		Stats:              m.Stats(),
		Model:              "ooo",
		SrcStallCycles:     m.srcStalls,
		ROBFullStallCycles: m.robStalls,
		ROBFullEvents:      m.robFullHit,
	}
	if m.DCache != nil {
		ps.CacheHits, ps.CacheMisses = m.DCache.Hits(), m.DCache.Misses()
	}
	return ps
}

// wordSpan returns the first and last 8-byte-aligned words covered by
// an access; callers iterate from first to last in steps of 8.
func wordSpan(addr uint64, size uint8) (first, last uint64) {
	return addr &^ 7, (addr + uint64(size) - 1) &^ 7
}
