package simeng

// Cache is a set-associative data-cache timing model with LRU
// replacement, used by the finite-resource core models to refine load
// latencies. The paper's analyses assume single-cycle memory (its
// ideal-processor definition); this model belongs to the section 8
// programme of adding real-world constraints one at a time.
type Cache struct {
	// LineSize is the block size in bytes (a power of two).
	LineSize uint64
	// Sets is the number of sets (a power of two).
	Sets uint64
	// Ways is the associativity.
	Ways int
	// MissPenalty is the extra latency of a miss, in cycles.
	MissPenalty uint32

	tags         [][]uint64 // per set, most-recently-used first
	hits, misses uint64
}

// NewL1D returns a 32 KiB, 8-way, 64-byte-line cache with a 20-cycle
// miss penalty — the shape of the L1D in the cores the paper tunes
// for.
func NewL1D() *Cache {
	return &Cache{LineSize: 64, Sets: 64, Ways: 8, MissPenalty: 20}
}

// Access touches addr and returns the extra latency incurred (0 on a
// hit, MissPenalty on a miss). The line is promoted to MRU either way.
func (c *Cache) Access(addr uint64) uint32 {
	if c.tags == nil {
		c.tags = make([][]uint64, c.Sets)
	}
	line := addr / c.LineSize
	set := line % c.Sets
	tags := c.tags[set]
	for i, t := range tags {
		if t == line {
			// Hit: move to front.
			copy(tags[1:i+1], tags[:i])
			tags[0] = line
			c.hits++
			return 0
		}
	}
	c.misses++
	// Miss: insert at front, evict LRU if full.
	if len(tags) < c.Ways {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = line
	c.tags[set] = tags
	return c.MissPenalty
}

// Hits returns the number of cache hits observed.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of cache misses observed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}
