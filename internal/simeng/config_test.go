package simeng

import (
	"strings"
	"testing"

	"isacmp/internal/isa"
)

func TestParseLatencyConfig(t *testing.T) {
	cfg := `
# custom core
fp-add: 4
fp-div: 30   # slow divider
int-mul: 2
`
	m, err := ParseLatencyConfig(strings.NewReader(cfg), TX2Latencies())
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency(isa.GroupFPAdd) != 4 || m.Latency(isa.GroupFPDiv) != 30 || m.Latency(isa.GroupIntMul) != 2 {
		t.Fatalf("overrides not applied: %+v", m)
	}
	// Unmentioned groups keep the base value.
	if m.Latency(isa.GroupIntSimple) != TX2Latencies().Latency(isa.GroupIntSimple) {
		t.Fatal("base value not preserved")
	}
}

func TestParseLatencyConfigErrors(t *testing.T) {
	cases := []string{
		"fp-add 4",      // missing colon
		"warp-drive: 3", // unknown group
		"fp-add: zero",  // non-numeric
		"fp-add: 0",     // zero latency
		"fp-add: -2",    // negative
	}
	for _, c := range cases {
		if _, err := ParseLatencyConfig(strings.NewReader(c), nil); err == nil {
			t.Errorf("config %q accepted", c)
		}
	}
}

func TestLatencyConfigRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteLatencyConfig(&sb, A55Latencies()); err != nil {
		t.Fatal(err)
	}
	m, err := ParseLatencyConfig(strings.NewReader(sb.String()), TX2Latencies())
	if err != nil {
		t.Fatal(err)
	}
	if *m != *A55Latencies() {
		t.Fatalf("round trip mismatch:\n%v\n%v", m, A55Latencies())
	}
}

func TestParseLatencyConfigNilBase(t *testing.T) {
	m, err := ParseLatencyConfig(strings.NewReader(""), nil)
	if err != nil {
		t.Fatal(err)
	}
	if *m != *TX2Latencies() {
		t.Fatal("empty config with nil base should equal TX2")
	}
}
