// Package simeng is the simulation engine: it drives an architectural
// machine (AArch64 or RV64G) and streams one execution record per
// retired instruction to any number of analysis sinks. It is the Go
// counterpart of the SimEng infrastructure the paper builds on.
//
// Three core models are provided:
//
//   - EmulationCore: the atomic model the paper uses for all four
//     experiments — every instruction executes to completion in a
//     single cycle, so cycles == instructions.
//   - InOrderModel: a dual-issue in-order pipeline in the spirit of
//     the Cortex-A55 / SiFive-7 cores the paper's -mtune flags target.
//   - OoOModel: a superscalar out-of-order core with a finite reorder
//     buffer, the "future work" model of the paper's section 8.
//
// The timing models are trace-driven: they consume the architectural
// event stream and account cycles, which is exactly the level of
// modelling the paper's analyses need (dependencies, latencies and
// structural limits; no wrong-path execution).
package simeng

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"isacmp/internal/isa"
)

// Machine is the architectural simulator interface implemented by
// rv64.Machine and a64.Machine.
type Machine interface {
	// Step retires one instruction, filling ev; done is true after the
	// program has exited.
	Step(ev *isa.Event) (done bool, err error)
	// PC returns the current program counter.
	PC() uint64
	// Arch identifies the instruction set.
	Arch() isa.Arch
}

// BatchMachine is the batched fast path of Machine: StepN retires up
// to len(evs) instructions in one dynamic dispatch, filling evs[:n]
// in retirement order. done and err describe the state after the n
// filled events; on an error the first n events are valid and the
// driver delivers them to the sink before surfacing the error, so
// batched and stepwise execution are observably identical. Both
// architectural machines implement it; EmulationCore.Run uses it
// automatically.
type BatchMachine interface {
	Machine
	StepN(evs []isa.Event) (n int, done bool, err error)
}

// Stats is the shared base every core model reports: retired
// instructions and cycles. Richer models embed it in PipelineStats.
type Stats struct {
	// Instructions is the number of retired instructions (the paper's
	// path length).
	Instructions uint64 `json:"instructions"`
	// Cycles is the core model's cycle count; for the emulation core
	// it equals Instructions.
	Cycles uint64 `json:"cycles"`
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// PipelineStats extends the shared base with the microarchitectural
// counters the core models track. Every core fills the base; fields
// that do not apply to a model stay zero, so consumers (the manifest
// writer, the CLIs) need no per-core switch.
type PipelineStats struct {
	Stats
	// Model names the core model: "emulation", "inorder" or "ooo".
	Model string `json:"model"`
	// SrcStallCycles is the total cycles instructions waited on
	// register or memory sources before issuing.
	SrcStallCycles uint64 `json:"src_stall_cycles,omitempty"`
	// BranchFlushes counts pipeline redirects paid for mispredicted
	// branches (in-order model only; the OoO model assumes perfect
	// prediction).
	BranchFlushes uint64 `json:"branch_flushes,omitempty"`
	// ROBFullStallCycles is the total cycles dispatch waited for a
	// reorder-buffer slot (OoO model only).
	ROBFullStallCycles uint64 `json:"rob_full_stall_cycles,omitempty"`
	// ROBFullEvents counts dispatches that found the ROB full.
	ROBFullEvents uint64 `json:"rob_full_events,omitempty"`
	// CacheHits/CacheMisses copy the attached DCache counters.
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
}

// StatsSource is implemented by every core model; it lets telemetry
// and the manifest writer treat cores uniformly.
type StatsSource interface {
	PipelineStats() PipelineStats
}

// PipelineObserver receives per-instruction pipeline timing from a
// core model: the cycle the instruction entered the pipe (dispatch),
// the cycle it began executing (issue) and the cycle its result was
// ready (complete). telemetry.PipelineTrace implements it.
type PipelineObserver interface {
	ObserveRetire(ev *isa.Event, dispatch, issue, complete uint64)
}

// EmulationCore executes instructions atomically, one per cycle,
// streaming each retirement to the sink. MaxInstructions guards
// against runaway programs (0 means no limit).
type EmulationCore struct {
	// MaxInstructions aborts the run when exceeded; 0 means unlimited.
	MaxInstructions uint64
	// Observer, when non-nil, receives per-instruction timing
	// (dispatch == issue == retire cycle for the atomic model).
	Observer PipelineObserver
	// Ctx, when non-nil, is the run's wall-clock watchdog: it is
	// polled every deadlinePoll retirements (once per batch on the
	// batched path) and the run stops with an ErrDeadline-kind
	// SimError once it is done. A nil context costs nothing.
	Ctx context.Context
	// StepLoop forces the per-Step reference loop even when the
	// machine supports batching. The batched/stepwise equivalence
	// tests and the bench-hotpath baseline use it; production runs
	// leave it false.
	StepLoop bool
	// Log, when set, receives one structured line per run: a debug
	// completion record, or a warning carrying the classified failure.
	// Nothing is logged inside the retirement loop, so the hot path is
	// unaffected.
	Log *slog.Logger
	// ProfileStages, when set, splits the batched loop's wall time into
	// Stages: StepN dispatch (simulate) versus sink delivery (deliver).
	// Two clock reads per stepBatch-sized batch, so the cost amortizes
	// to fractions of a nanosecond per event. The per-Step reference
	// loop is deliberately left unprofiled — a per-instruction clock
	// read would distort exactly the loop the hotpath bench compares
	// against.
	ProfileStages bool
	// Stages holds the accumulated split of the most recent Run when
	// ProfileStages is set.
	Stages StageNs

	last Stats
	// batch is the reused StepN buffer; allocated on first batched
	// run, so steady-state execution performs no allocation.
	batch []isa.Event
}

// StageNs is the batched run loop's wall time split by stage, in
// nanoseconds: time inside StepN (architectural simulation) versus
// time handing events to the sink (delivery). The split is what the
// span profiler records as "simulate" and "deliver" spans per cell.
type StageNs struct {
	SimulateNs int64
	DeliverNs  int64
}

// deadlinePoll is how often (in retired instructions) the core polls
// its watchdog context. A power of two so the check compiles to a
// mask; at simulated rates of tens of MIPS this bounds deadline
// overshoot to well under a millisecond while keeping the fault-free
// overhead unmeasurable.
const deadlinePoll = 4096

// stepBatch is the batch size of the batched run loop. Equal to
// deadlinePoll so hoisting the watchdog poll to once per batch keeps
// the stepwise poll cadence, and large enough that per-batch costs
// (dispatch, timing, channel hand-off in the fan-out engine) amortize
// to fractions of a nanosecond per event while a batch of events
// (~120 KiB) stays cache-resident.
const stepBatch = deadlinePoll

// Run drives m to completion. sink may be nil to just count. Panics
// escaping the machine or the sink are converted into ErrPanic-kind
// SimErrors carrying the PC and retired count, so one bad decode or
// analysis path cannot kill a whole matrix run.
func (c *EmulationCore) Run(m Machine, sink isa.Sink) (stats Stats, err error) {
	if log := c.Log; log != nil {
		// Registered before the recovery defer below, so it runs after
		// it and observes the panic already converted into err.
		defer func() {
			if err == nil {
				log.Debug("simeng: run complete", "retired", stats.Instructions)
				return
			}
			se := AsSimError(err)
			log.Warn("simeng: run failed",
				"reason", Reason(se.Kind), "pc", se.PC, "retired", se.Retired)
		}()
	}
	defer func() {
		if r := recover(); r != nil {
			c.last = stats
			err = &SimError{
				Kind:    ErrPanic,
				PC:      m.PC(),
				Retired: stats.Instructions,
				Err:     fmt.Errorf("recovered: %v", r),
			}
		}
	}()
	if bm, ok := m.(BatchMachine); ok && !c.StepLoop {
		if c.ProfileStages {
			c.Stages = StageNs{}
		}
		err = c.runBatched(bm, sink, &stats)
		return stats, err
	}
	var ev isa.Event
	max := c.MaxInstructions
	obs := c.Observer
	ctx := c.Ctx
	for {
		done, err := m.Step(&ev)
		if err != nil {
			c.last = stats
			return stats, &SimError{
				Kind:    Classify(err),
				PC:      m.PC(),
				Retired: stats.Instructions,
				Err:     err,
			}
		}
		if done {
			stats.Cycles = stats.Instructions
			c.last = stats
			return stats, nil
		}
		stats.Instructions++
		if sink != nil {
			sink.Event(&ev)
		}
		if obs != nil {
			obs.ObserveRetire(&ev, stats.Instructions-1, stats.Instructions-1, stats.Instructions)
		}
		if max != 0 && stats.Instructions >= max {
			c.last = stats
			return stats, &SimError{
				Kind:    ErrBudget,
				PC:      m.PC(),
				Retired: stats.Instructions,
				Err:     fmt.Errorf("instruction limit %d exceeded", max),
			}
		}
		if ctx != nil && stats.Instructions%deadlinePoll == 0 {
			if ctxErr := ctx.Err(); ctxErr != nil {
				c.last = stats
				return stats, &SimError{
					Kind:    ErrDeadline,
					PC:      m.PC(),
					Retired: stats.Instructions,
					Err:     ctxErr,
				}
			}
		}
	}
}

// runBatched is the batched hot loop: one StepN dispatch retires up
// to stepBatch instructions, sinks consume whole batches through
// isa.DeliverBatch, and the watchdog poll runs once per batch. It
// updates *stats incrementally so the panic recovery in Run reports
// the true retired count, and reproduces the stepwise loop's
// semantics exactly: events retired before an error are delivered
// first, the instruction budget fires after the event that reaches it
// (the batch length is clamped to the remaining budget), and the
// done-event is never delivered.
func (c *EmulationCore) runBatched(m BatchMachine, sink isa.Sink, stats *Stats) error {
	if c.batch == nil {
		c.batch = make([]isa.Event, stepBatch)
	}
	max := c.MaxInstructions
	obs := c.Observer
	ctx := c.Ctx
	bs, batched := sink.(isa.BatchSink)
	prof := c.ProfileStages
	var stageClock time.Time
	for {
		buf := c.batch
		if max != 0 {
			if left := max - stats.Instructions; left < uint64(len(buf)) {
				buf = buf[:left]
			}
		}
		if prof {
			stageClock = time.Now()
		}
		n, done, err := m.StepN(buf)
		if prof {
			c.Stages.SimulateNs += time.Since(stageClock).Nanoseconds()
		}
		if n > 0 {
			base := stats.Instructions
			if prof {
				stageClock = time.Now()
			}
			switch {
			case batched:
				stats.Instructions += uint64(n)
				bs.Events(buf[:n])
			case sink != nil:
				// Per-event fallback: count before each delivery so a
				// panicking sink reports the exact in-flight event,
				// matching the stepwise loop.
				for i := range buf[:n] {
					stats.Instructions++
					sink.Event(&buf[i])
				}
			default:
				stats.Instructions += uint64(n)
			}
			if prof {
				c.Stages.DeliverNs += time.Since(stageClock).Nanoseconds()
			}
			if obs != nil {
				for i := range buf[:n] {
					k := base + uint64(i)
					obs.ObserveRetire(&buf[i], k, k, k+1)
				}
			}
		}
		if err != nil {
			c.last = *stats
			return &SimError{
				Kind:    Classify(err),
				PC:      m.PC(),
				Retired: stats.Instructions,
				Err:     err,
			}
		}
		if done {
			stats.Cycles = stats.Instructions
			c.last = *stats
			return nil
		}
		if max != 0 && stats.Instructions >= max {
			c.last = *stats
			return &SimError{
				Kind:    ErrBudget,
				PC:      m.PC(),
				Retired: stats.Instructions,
				Err:     fmt.Errorf("instruction limit %d exceeded", max),
			}
		}
		if ctx != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				c.last = *stats
				return &SimError{
					Kind:    ErrDeadline,
					PC:      m.PC(),
					Retired: stats.Instructions,
					Err:     ctxErr,
				}
			}
		}
	}
}

// PipelineStats reports the most recent run (one instruction per
// cycle, no stalls by construction).
func (c *EmulationCore) PipelineStats() PipelineStats {
	return PipelineStats{Stats: c.last, Model: "emulation"}
}

// LatencyModel maps each instruction group to an execution latency in
// cycles. It is the Go analogue of the latency fields in SimEng's YAML
// core descriptions.
type LatencyModel [isa.NumGroups]uint32

// Latency returns the latency of group g.
func (l *LatencyModel) Latency(g isa.Group) uint32 { return l[g] }

// TX2Latencies models Marvell ThunderX2-style execution latencies, the
// "canonical superscalar RISC" model the paper scales critical paths
// with (section 5.1): single-cycle simple integer work, mid-single-
// digit multiplies and FP arithmetic, and long dividers.
func TX2Latencies() *LatencyModel {
	return &LatencyModel{
		isa.GroupIntSimple: 1,
		isa.GroupIntMul:    5,
		isa.GroupIntDiv:    23,
		isa.GroupLoad:      4,
		isa.GroupStore:     1,
		isa.GroupBranch:    1,
		isa.GroupFPSimple:  5,
		isa.GroupFPAdd:     6,
		isa.GroupFPMul:     6,
		isa.GroupFPFMA:     6,
		isa.GroupFPDiv:     23,
		isa.GroupFPSqrt:    23,
		isa.GroupFPCvt:     7,
		isa.GroupSystem:    1,
	}
}

// A55Latencies models a small dual-issue in-order core (Cortex-A55 /
// SiFive-7 class, the cores the paper's -mtune flags select).
func A55Latencies() *LatencyModel {
	return &LatencyModel{
		isa.GroupIntSimple: 1,
		isa.GroupIntMul:    3,
		isa.GroupIntDiv:    12,
		isa.GroupLoad:      3,
		isa.GroupStore:     1,
		isa.GroupBranch:    1,
		isa.GroupFPSimple:  2,
		isa.GroupFPAdd:     4,
		isa.GroupFPMul:     4,
		isa.GroupFPFMA:     4,
		isa.GroupFPDiv:     19,
		isa.GroupFPSqrt:    22,
		isa.GroupFPCvt:     4,
		isa.GroupSystem:    1,
	}
}

// UnitLatencies gives every group a latency of one cycle; with it the
// scaled critical path degenerates to the plain critical path.
func UnitLatencies() *LatencyModel {
	var l LatencyModel
	for g := range l {
		l[g] = 1
	}
	return &l
}
