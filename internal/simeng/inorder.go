package simeng

import "isacmp/internal/isa"

// InOrderModel is a trace-driven timing model of a dual-issue in-order
// pipeline (Cortex-A55 / SiFive-7 class). Instructions issue strictly
// in program order, at most Width per cycle, and an instruction cannot
// issue before its register sources are ready. Taken branches pay a
// redirect penalty unless the simple static predictor (backward-taken
// / forward-not-taken, the classic loop heuristic) guessed right.
//
// It implements isa.Sink: feed it the emulation core's event stream,
// then read Cycles.
type InOrderModel struct {
	// Width is the issue width (2 for the cores under study).
	Width int
	// Latencies supplies per-group execution latencies.
	Latencies *LatencyModel
	// BranchPenalty is the pipeline refill cost of a redirect.
	BranchPenalty uint64
	// DCache, when non-nil, adds a cache-miss penalty to loads.
	DCache *Cache
	// Tracer, when non-nil, receives per-instruction pipeline timing.
	Tracer PipelineObserver

	regReady  [isa.NumRegs]uint64
	cycle     uint64 // cycle of the most recent issue
	issued    int    // instructions issued in `cycle`
	insts     uint64
	lastEnd   uint64
	srcStalls uint64 // cycles lost waiting on sources
	flushes   uint64 // mispredicted-branch redirects
}

// NewInOrderModel returns a dual-issue model with A55-style latencies
// and an 8-stage-pipeline branch penalty.
func NewInOrderModel() *InOrderModel {
	return &InOrderModel{Width: 2, Latencies: A55Latencies(), BranchPenalty: 7}
}

// Event accounts one retired instruction.
func (m *InOrderModel) Event(ev *isa.Event) {
	m.insts++
	issue := m.cycle
	if m.issued >= m.Width {
		issue++
	}
	dispatch := issue
	// Wait for sources.
	for k := uint8(0); k < ev.NSrcs; k++ {
		if r := m.regReady[ev.Srcs[k]]; r > issue {
			issue = r
		}
	}
	m.srcStalls += issue - dispatch
	if issue != m.cycle {
		m.cycle = issue
		m.issued = 0
	}
	m.issued++

	lat := uint64(m.Latencies.Latency(ev.Group))
	if m.DCache != nil && ev.LoadSize != 0 {
		lat += uint64(m.DCache.Access(ev.LoadAddr))
	}
	if m.DCache != nil && ev.Load2Size != 0 { // second access of a fused load pair
		lat += uint64(m.DCache.Access(ev.Load2Addr))
	}
	if m.DCache != nil && ev.StoreSize != 0 {
		m.DCache.Access(ev.StoreAddr)
	}
	done := issue + lat
	for k := uint8(0); k < ev.NDsts; k++ {
		m.regReady[ev.Dsts[k]] = done
	}
	if done > m.lastEnd {
		m.lastEnd = done
	}

	// Static predict-taken: loop back edges dominate these workloads,
	// so a branch pays the redirect penalty only when it falls through
	// (the loop-exit case).
	if ev.Branch && !ev.Taken {
		m.cycle = issue + m.BranchPenalty
		m.issued = 0
		m.flushes++
	}
	if m.Tracer != nil {
		m.Tracer.ObserveRetire(ev, dispatch, issue, done)
	}
}

// Stats returns the accumulated instruction and cycle counts.
func (m *InOrderModel) Stats() Stats {
	return Stats{Instructions: m.insts, Cycles: m.lastEnd}
}

// PipelineStats returns the shared-base stats plus the in-order
// pipeline counters.
func (m *InOrderModel) PipelineStats() PipelineStats {
	ps := PipelineStats{
		Stats:          m.Stats(),
		Model:          "inorder",
		SrcStallCycles: m.srcStalls,
		BranchFlushes:  m.flushes,
	}
	if m.DCache != nil {
		ps.CacheHits, ps.CacheMisses = m.DCache.Hits(), m.DCache.Misses()
	}
	return ps
}
