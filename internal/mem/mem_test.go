package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New(0x1000, 0x1000)
	if err := m.Write64(0x1008, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v64, err := m.Read64(0x1008)
	if err != nil || v64 != 0x1122334455667788 {
		t.Fatalf("Read64 = %#x, %v", v64, err)
	}
	// Little-endian byte order.
	b, err := m.Read8(0x1008)
	if err != nil || b != 0x88 {
		t.Fatalf("Read8 = %#x, %v (want 0x88: little-endian)", b, err)
	}
	v16, err := m.Read16(0x1008)
	if err != nil || v16 != 0x7788 {
		t.Fatalf("Read16 = %#x, %v", v16, err)
	}
	v32, err := m.Read32(0x1008)
	if err != nil || v32 != 0x55667788 {
		t.Fatalf("Read32 = %#x, %v", v32, err)
	}

	if err := m.Write8(0x1010, 0xAB); err != nil {
		t.Fatal(err)
	}
	if err := m.Write16(0x1012, 0xCDEF); err != nil {
		t.Fatal(err)
	}
	if err := m.Write32(0x1014, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read8(0x1010); v != 0xAB {
		t.Fatalf("Write8/Read8 mismatch: %#x", v)
	}
	if v, _ := m.Read16(0x1012); v != 0xCDEF {
		t.Fatalf("Write16/Read16 mismatch: %#x", v)
	}
	if v, _ := m.Read32(0x1014); v != 0xDEADBEEF {
		t.Fatalf("Write32/Read32 mismatch: %#x", v)
	}
}

func TestBounds(t *testing.T) {
	m := New(0x1000, 0x100)
	cases := []struct {
		addr uint64
		op   func() error
	}{
		{0x0fff, func() error { _, err := m.Read8(0x0fff); return err }},
		{0x10ff, func() error { _, err := m.Read16(0x10ff); return err }},
		{0x10fd, func() error { _, err := m.Read32(0x10fd); return err }},
		{0x10f9, func() error { _, err := m.Read64(0x10f9); return err }},
		{0x1100, func() error { return m.Write8(0x1100, 0) }},
		{0x10ff, func() error { return m.Write64(0x10ff, 0) }},
		{0, func() error { return m.Write32(0, 0) }},
		{^uint64(0), func() error { _, err := m.Read8(^uint64(0)); return err }},
		{^uint64(0) - 3, func() error { _, err := m.Read64(^uint64(0) - 3); return err }},
	}
	for _, c := range cases {
		err := c.op()
		var ae *AccessError
		if err == nil || !errors.As(err, &ae) {
			t.Errorf("access at %#x: got %v, want AccessError", c.addr, err)
		}
	}
	// Edge-of-region accesses must succeed.
	if err := m.Write64(0x10f8, 1); err != nil {
		t.Errorf("Write64 at last valid slot: %v", err)
	}
	if err := m.Write8(0x10ff, 1); err != nil {
		t.Errorf("Write8 at last byte: %v", err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New(0x4000, 0x1000)
	in := []byte{1, 2, 3, 4, 5}
	if err := m.WriteBytes(0x4100, in); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadBytes(0x4100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: %d != %d", i, in[i], out[i])
		}
	}
	if _, err := m.ReadBytes(0x4ffe, 5); err == nil {
		t.Fatal("ReadBytes past end should fail")
	}
	if err := m.WriteBytes(0x4fff, in); err == nil {
		t.Fatal("WriteBytes past end should fail")
	}
}

func TestStackTopAligned(t *testing.T) {
	m := New(0x1000, 0x10007)
	if m.StackTop()%16 != 0 {
		t.Fatalf("stack top %#x not 16-byte aligned", m.StackTop())
	}
	if m.StackTop() > m.Base()+m.Size() {
		t.Fatalf("stack top outside memory")
	}
}

func TestBrk(t *testing.T) {
	m := New(0x1000, 0x1000)
	if m.Brk() != 0x1000 {
		t.Fatalf("initial brk = %#x", m.Brk())
	}
	m.SetBrk(0x1800)
	if m.Brk() != 0x1800 {
		t.Fatalf("brk after SetBrk = %#x", m.Brk())
	}
}

func TestQuick64RoundTrip(t *testing.T) {
	m := New(0, 1<<16)
	f := func(off uint16, v uint64) bool {
		addr := uint64(off)
		if addr+8 > m.Size() {
			addr = m.Size() - 8
		}
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessErrorMessage(t *testing.T) {
	e := &AccessError{Addr: 0x42, Size: 8, Op: "read"}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}
