// Package mem provides the flat little-endian memory image that the
// simulation cores execute against. A Memory is a single contiguous
// region starting at a base virtual address, with the conventional
// static-binary layout: text at the bottom, data above it, a heap
// growing upward and a stack growing down from the top.
package mem

import (
	"encoding/binary"
	"fmt"
)

// AccessError describes an out-of-range or misaligned memory access.
type AccessError struct {
	Addr uint64
	Size int
	Op   string // "read" or "write"
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s of %d bytes at %#x out of range", e.Op, e.Size, e.Addr)
}

// Memory is a flat byte-addressable memory image.
type Memory struct {
	base uint64
	data []byte

	brk      uint64 // current program break (heap top)
	stackTop uint64
}

// New creates a memory image of size bytes based at virtual address
// base. The stack pointer starts at the top of the region, 16-byte
// aligned.
func New(base, size uint64) *Memory {
	m := &Memory{base: base, data: make([]byte, size)}
	m.stackTop = (base + size) &^ 15
	m.brk = base
	return m
}

// Base returns the lowest mapped virtual address.
func (m *Memory) Base() uint64 { return m.base }

// Size returns the number of mapped bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// StackTop returns the initial stack pointer value.
func (m *Memory) StackTop() uint64 { return m.stackTop }

// Brk returns the current program break (one past the highest
// statically placed byte).
func (m *Memory) Brk() uint64 { return m.brk }

// SetBrk raises the program break; the loader calls this after placing
// segments so the heap starts above them.
func (m *Memory) SetBrk(brk uint64) { m.brk = brk }

// in reports whether [addr, addr+size) lies inside the image.
func (m *Memory) in(addr uint64, size int) bool {
	off := addr - m.base // wraps for addr < base, caught by the bound check
	return off <= uint64(len(m.data)) && uint64(size) <= uint64(len(m.data))-off
}

// WriteBytes copies b into memory at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if !m.in(addr, len(b)) {
		return &AccessError{Addr: addr, Size: len(b), Op: "write"}
	}
	copy(m.data[addr-m.base:], b)
	return nil
}

// ReadBytes copies size bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, size int) ([]byte, error) {
	if !m.in(addr, size) {
		return nil, &AccessError{Addr: addr, Size: size, Op: "read"}
	}
	out := make([]byte, size)
	copy(out, m.data[addr-m.base:])
	return out, nil
}

// Read8 loads one byte.
func (m *Memory) Read8(addr uint64) (uint8, error) {
	if !m.in(addr, 1) {
		return 0, &AccessError{Addr: addr, Size: 1, Op: "read"}
	}
	return m.data[addr-m.base], nil
}

// Read16 loads a little-endian 16-bit value.
func (m *Memory) Read16(addr uint64) (uint16, error) {
	if !m.in(addr, 2) {
		return 0, &AccessError{Addr: addr, Size: 2, Op: "read"}
	}
	return binary.LittleEndian.Uint16(m.data[addr-m.base:]), nil
}

// Read32 loads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	if !m.in(addr, 4) {
		return 0, &AccessError{Addr: addr, Size: 4, Op: "read"}
	}
	return binary.LittleEndian.Uint32(m.data[addr-m.base:]), nil
}

// Read64 loads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	if !m.in(addr, 8) {
		return 0, &AccessError{Addr: addr, Size: 8, Op: "read"}
	}
	return binary.LittleEndian.Uint64(m.data[addr-m.base:]), nil
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint64, v uint8) error {
	if !m.in(addr, 1) {
		return &AccessError{Addr: addr, Size: 1, Op: "write"}
	}
	m.data[addr-m.base] = v
	return nil
}

// Write16 stores a little-endian 16-bit value.
func (m *Memory) Write16(addr uint64, v uint16) error {
	if !m.in(addr, 2) {
		return &AccessError{Addr: addr, Size: 2, Op: "write"}
	}
	binary.LittleEndian.PutUint16(m.data[addr-m.base:], v)
	return nil
}

// Write32 stores a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) error {
	if !m.in(addr, 4) {
		return &AccessError{Addr: addr, Size: 4, Op: "write"}
	}
	binary.LittleEndian.PutUint32(m.data[addr-m.base:], v)
	return nil
}

// Write64 stores a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) error {
	if !m.in(addr, 8) {
		return &AccessError{Addr: addr, Size: 8, Op: "write"}
	}
	binary.LittleEndian.PutUint64(m.data[addr-m.base:], v)
	return nil
}
