package elfio

import (
	"bytes"
	"testing"
)

// FuzzELF throws arbitrary bytes at the ELF reader. The invariants:
// Read never panics whatever the input, and an image Read accepts
// survives a Write/Read round trip with identical segments.
func FuzzELF(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("\x7fELF"))
	f.Add(sampleFile().Write())
	f.Add((&File{
		Machine:  EMAarch64,
		Entry:    0x1000,
		Segments: []Segment{{Vaddr: 0x1000, Data: []byte{1, 2, 3, 4}, Flags: PFR | PFX, Name: ".text"}},
	}).Write())
	f.Fuzz(func(t *testing.T, b []byte) {
		file, err := Read(b)
		if err != nil {
			return
		}
		again, err := Read(file.Write())
		if err != nil {
			t.Fatalf("accepted image fails round trip: %v", err)
		}
		if len(again.Segments) != len(file.Segments) {
			t.Fatalf("round trip changed segment count: %d != %d", len(again.Segments), len(file.Segments))
		}
		for i := range file.Segments {
			if again.Segments[i].Vaddr != file.Segments[i].Vaddr ||
				!bytes.Equal(again.Segments[i].Data, file.Segments[i].Data) {
				t.Fatalf("round trip changed segment %d", i)
			}
		}
	})
}
