package elfio

import (
	"encoding/binary"
	"testing"
)

// corrupt returns a fresh copy of the sample image with an 8-byte
// little-endian value patched in at off.
func corrupt(t *testing.T, img []byte, off int, v uint64) []byte {
	t.Helper()
	if off+8 > len(img) {
		t.Fatalf("patch offset %d past image end %d", off, len(img))
	}
	out := append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(out[off:], v)
	return out
}

// phdrOff returns the file offset of program header i.
func phdrOff(img []byte, i int) int {
	return int(binary.LittleEndian.Uint64(img[32:])) + i*phentsize
}

// symtabShdrOff returns the file offset of the SHT_SYMTAB section
// header, or -1 if the image has none.
func symtabShdrOff(img []byte) int {
	le := binary.LittleEndian
	shoff := int(le.Uint64(img[40:]))
	shnum := int(le.Uint16(img[60:]))
	for i := 0; i < shnum; i++ {
		p := shoff + i*shentsize
		if le.Uint32(img[p+4:]) == 2 {
			return p
		}
	}
	return -1
}

// TestRejectWrappingOffsets patches in 64-bit offsets and sizes chosen
// so that the naive off+size bounds check wraps around zero. Each must
// be rejected with an error, not accepted or panicked on.
func TestRejectWrappingOffsets(t *testing.T) {
	img := sampleFile().Write()
	sym := symtabShdrOff(img)
	if sym < 0 {
		t.Fatal("sample image has no symtab section header")
	}
	const wrap = ^uint64(0) - 16
	cases := []struct {
		name string
		off  int
		v    uint64
	}{
		{"phoff wraps", 32, wrap},
		{"shoff wraps", 40, wrap},
		{"phoff past end", 32, uint64(len(img)) + 1},
		{"segment offset wraps", phdrOff(img, 0) + 8, wrap},
		{"segment filesz huge", phdrOff(img, 0) + 32, ^uint64(0)},
		{"segment filesz past end", phdrOff(img, 0) + 32, uint64(len(img))},
		{"symtab offset wraps", sym + 24, wrap},
		{"symtab size huge", sym + 32, ^uint64(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := corrupt(t, img, c.off, c.v)
			if _, err := Read(bad); err == nil {
				t.Fatalf("malformed image accepted (patched %#x at %d)", c.v, c.off)
			}
		})
	}
}

// TestRejectBadSymtabLink sets the symtab's string-table link past the
// section header table.
func TestRejectBadSymtabLink(t *testing.T) {
	img := sampleFile().Write()
	sym := symtabShdrOff(img)
	if sym < 0 {
		t.Fatal("sample image has no symtab section header")
	}
	bad := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(bad[sym+40:], 0xffff)
	if _, err := Read(bad); err == nil {
		t.Fatal("out-of-range symtab link accepted")
	}
}

// TestRejectOverlappingSegments rewrites the second load segment's
// vaddr so its range collides with the first.
func TestRejectOverlappingSegments(t *testing.T) {
	img := sampleFile().Write()
	// Segment 0 covers [0x10000, 0x10008); move segment 1 into it.
	bad := corrupt(t, img, phdrOff(img, 1)+16, 0x10004)
	if _, err := Read(bad); err == nil {
		t.Fatal("overlapping load segments accepted")
	}
	// Exactly adjacent segments must still parse.
	ok := corrupt(t, img, phdrOff(img, 1)+16, 0x10008)
	if _, err := Read(ok); err != nil {
		t.Fatalf("adjacent segments rejected: %v", err)
	}
}

// TestRejectAddressSpaceWrap gives a segment a vaddr+size range that
// wraps the 64-bit address space.
func TestRejectAddressSpaceWrap(t *testing.T) {
	img := sampleFile().Write()
	bad := corrupt(t, img, phdrOff(img, 0)+16, ^uint64(0)-2)
	if _, err := Read(bad); err == nil {
		t.Fatal("address-space-wrapping segment accepted")
	}
}

// TestTruncatedHeaderTables cuts the image just inside each table so
// the table itself is truncated (rather than absent).
func TestTruncatedHeaderTables(t *testing.T) {
	img := sampleFile().Write()
	le := binary.LittleEndian
	phoff := int(le.Uint64(img[32:]))
	shoff := int(le.Uint64(img[40:]))
	for _, cut := range []int{phoff + phentsize/2, shoff + shentsize/2} {
		if cut >= len(img) {
			continue
		}
		if _, err := Read(img[:cut]); err == nil {
			t.Errorf("image truncated at %d accepted", cut)
		}
	}
}
