package elfio

import (
	"bytes"
	"debug/elf"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	return &File{
		Machine: EMRiscV,
		Entry:   0x10000,
		Segments: []Segment{
			{Vaddr: 0x10000, Data: []byte{0x13, 0, 0, 0, 0x73, 0, 0, 0}, Flags: PFR | PFX, Name: ".text"},
			{Vaddr: 0x20000, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, Flags: PFR | PFW, Name: ".data"},
		},
		Symbols: []Symbol{
			{Name: "main", Value: 0x10000, Size: 8},
			{Name: "copy_kernel", Value: 0x10004, Size: 4},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	img := f.Write()
	got, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != f.Machine || got.Entry != f.Entry {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Segments) != 2 {
		t.Fatalf("got %d segments", len(got.Segments))
	}
	for i, s := range got.Segments {
		if s.Vaddr != f.Segments[i].Vaddr || !bytes.Equal(s.Data, f.Segments[i].Data) || s.Flags != f.Segments[i].Flags {
			t.Errorf("segment %d mismatch: %+v", i, s)
		}
	}
	if len(got.Symbols) != 2 {
		t.Fatalf("got %d symbols: %+v", len(got.Symbols), got.Symbols)
	}
	// Read sorts by value.
	if got.Symbols[0].Name != "main" || got.Symbols[1].Name != "copy_kernel" {
		t.Errorf("symbols: %+v", got.Symbols)
	}
	if got.Symbols[1].Value != 0x10004 || got.Symbols[1].Size != 4 {
		t.Errorf("symbol value/size: %+v", got.Symbols[1])
	}
}

// TestAgainstStdlib parses our writer's output with the standard
// library's debug/elf as an independent conformance check.
func TestAgainstStdlib(t *testing.T) {
	f := sampleFile()
	img := f.Write()
	ef, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("debug/elf rejected image: %v", err)
	}
	defer ef.Close()
	if ef.Machine != elf.EM_RISCV {
		t.Errorf("machine = %v", ef.Machine)
	}
	if ef.Entry != 0x10000 {
		t.Errorf("entry = %#x", ef.Entry)
	}
	if ef.Type != elf.ET_EXEC {
		t.Errorf("type = %v", ef.Type)
	}
	var loads int
	for _, p := range ef.Progs {
		if p.Type == elf.PT_LOAD {
			loads++
			buf := make([]byte, p.Filesz)
			if _, err := p.ReadAt(buf, 0); err != nil {
				t.Fatalf("reading segment: %v", err)
			}
		}
	}
	if loads != 2 {
		t.Errorf("PT_LOAD count = %d", loads)
	}
	syms, err := ef.Symbols()
	if err != nil {
		t.Fatalf("stdlib symbol parse: %v", err)
	}
	names := map[string]uint64{}
	for _, s := range syms {
		names[s.Name] = s.Value
	}
	if names["main"] != 0x10000 || names["copy_kernel"] != 0x10004 {
		t.Errorf("stdlib symbols: %v", names)
	}
	txt := ef.Section(".text")
	if txt == nil {
		t.Fatal("no .text section visible to stdlib")
	}
	data, err := txt.Data()
	if err != nil || !bytes.Equal(data, []byte{0x13, 0, 0, 0, 0x73, 0, 0, 0}) {
		t.Errorf(".text data = %x, err %v", data, err)
	}
}

func TestRejectGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not an elf"),
		make([]byte, 3),
		append([]byte("\x7fELF"), make([]byte, 10)...),
	}
	for i, c := range cases {
		if _, err := Read(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Wrong class.
	img := sampleFile().Write()
	img[4] = 1 // ELFCLASS32
	if _, err := Read(img); err == nil {
		t.Error("32-bit image accepted")
	}
}

func TestTruncatedImage(t *testing.T) {
	img := sampleFile().Write()
	for _, cut := range []int{65, 100, len(img) / 2} {
		if cut >= len(img) {
			continue
		}
		if _, err := Read(img[:cut]); err == nil {
			t.Errorf("truncated image at %d bytes accepted", cut)
		}
	}
}

func TestQuickSegmentRoundTrip(t *testing.T) {
	f := func(data []byte, vaddr uint32, entryOff uint8) bool {
		file := &File{
			Machine: EMAarch64,
			Entry:   uint64(vaddr) + uint64(entryOff),
			Segments: []Segment{
				{Vaddr: uint64(vaddr), Data: data, Flags: PFR | PFX, Name: ".text"},
			},
		}
		got, err := Read(file.Write())
		if err != nil {
			return false
		}
		return got.Entry == file.Entry &&
			len(got.Segments) == 1 &&
			got.Segments[0].Vaddr == uint64(vaddr) &&
			bytes.Equal(got.Segments[0].Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptySymtab(t *testing.T) {
	f := &File{
		Machine:  EMAarch64,
		Entry:    0x1000,
		Segments: []Segment{{Vaddr: 0x1000, Data: []byte{1, 2, 3, 4}, Flags: PFR | PFX, Name: ".text"}},
	}
	got, err := Read(f.Write())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Symbols) != 0 {
		t.Fatalf("expected no symbols, got %+v", got.Symbols)
	}
}
