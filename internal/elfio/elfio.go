// Package elfio implements the minimal subset of ELF64 needed to make
// the simulated toolchain honest: the assembler writes real statically
// linked executables (program headers, sections, a symbol table) and
// the simulator loads them back through a real parser. Only what a
// static freestanding binary needs is supported: ET_EXEC files with
// PT_LOAD segments and an optional .symtab used for kernel-region
// attribution in the path-length analysis.
package elfio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// ELF machine numbers for the two architectures under study.
const (
	EMAarch64 uint16 = 183 // EM_AARCH64
	EMRiscV   uint16 = 243 // EM_RISCV
)

// Segment is a loadable program segment.
type Segment struct {
	// Vaddr is the virtual load address.
	Vaddr uint64
	// Data is the segment image.
	Data []byte
	// Flags is the PF_* permission mask (PF_X=1, PF_W=2, PF_R=4).
	Flags uint32
	// Name is the section name used for the matching section header
	// (".text", ".data").
	Name string
}

// Segment permission flags.
const (
	PFX = 1
	PFW = 2
	PFR = 4
)

// Symbol is a named address range; the analyses use symbols to
// attribute dynamic instructions to source kernels.
type Symbol struct {
	Name  string
	Value uint64
	Size  uint64
}

// File is an in-memory representation of a minimal static executable.
type File struct {
	Machine  uint16
	Entry    uint64
	Segments []Segment
	Symbols  []Symbol
}

const (
	ehsize    = 64
	phentsize = 56
	shentsize = 64
	symsize   = 24
)

// Write serialises the file as a valid ELF64 little-endian ET_EXEC
// image.
func (f *File) Write() []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian

	nseg := len(f.Segments)
	// Sections: null, one per segment, .symtab, .strtab, .shstrtab.
	nsec := 1 + nseg + 3

	// File layout: ehdr, phdrs, segment data..., symtab, strtab,
	// shstrtab, shdrs.
	off := uint64(ehsize + nseg*phentsize)
	segOff := make([]uint64, nseg)
	for i, s := range f.Segments {
		// Keep file offset congruent with vaddr modulo a small page so
		// strict loaders stay happy; our own loader doesn't care.
		off = align(off, 8)
		segOff[i] = off
		off += uint64(len(s.Data))
	}

	symtabOff := align(off, 8)
	nsyms := len(f.Symbols) + 1 // leading null symbol
	symtabSize := uint64(nsyms * symsize)

	// String table for symbol names.
	var strtab bytes.Buffer
	strtab.WriteByte(0)
	symNameOff := make([]uint32, len(f.Symbols))
	for i, s := range f.Symbols {
		symNameOff[i] = uint32(strtab.Len())
		strtab.WriteString(s.Name)
		strtab.WriteByte(0)
	}
	strtabOff := symtabOff + symtabSize

	// Section-header string table.
	var shstr bytes.Buffer
	shstr.WriteByte(0)
	shname := func(n string) uint32 {
		o := uint32(shstr.Len())
		shstr.WriteString(n)
		shstr.WriteByte(0)
		return o
	}
	segShName := make([]uint32, nseg)
	for i, s := range f.Segments {
		segShName[i] = shname(s.Name)
	}
	symtabName := shname(".symtab")
	strtabName := shname(".strtab")
	shstrName := shname(".shstrtab")

	shstrOff := strtabOff + uint64(strtab.Len())
	shoff := align(shstrOff+uint64(shstr.Len()), 8)

	// ELF header.
	var eh [ehsize]byte
	copy(eh[:], "\x7fELF")
	eh[4] = 2                // ELFCLASS64
	eh[5] = 1                // ELFDATA2LSB
	eh[6] = 1                // EV_CURRENT
	le.PutUint16(eh[16:], 2) // ET_EXEC
	le.PutUint16(eh[18:], f.Machine)
	le.PutUint32(eh[20:], 1) // version
	le.PutUint64(eh[24:], f.Entry)
	le.PutUint64(eh[32:], ehsize) // phoff
	le.PutUint64(eh[40:], shoff)
	le.PutUint16(eh[52:], ehsize)
	le.PutUint16(eh[54:], phentsize)
	le.PutUint16(eh[56:], uint16(nseg))
	le.PutUint16(eh[58:], shentsize)
	le.PutUint16(eh[60:], uint16(nsec))
	le.PutUint16(eh[62:], uint16(nsec-1)) // shstrndx: last section
	buf.Write(eh[:])

	// Program headers.
	for i, s := range f.Segments {
		var ph [phentsize]byte
		le.PutUint32(ph[0:], 1) // PT_LOAD
		le.PutUint32(ph[4:], s.Flags)
		le.PutUint64(ph[8:], segOff[i])
		le.PutUint64(ph[16:], s.Vaddr)
		le.PutUint64(ph[24:], s.Vaddr)
		le.PutUint64(ph[32:], uint64(len(s.Data)))
		le.PutUint64(ph[40:], uint64(len(s.Data)))
		le.PutUint64(ph[48:], 8) // align
		buf.Write(ph[:])
	}

	// Segment data.
	for i, s := range f.Segments {
		pad(&buf, segOff[i])
		buf.Write(s.Data)
	}

	// Symbol table. First entry is the mandatory null symbol.
	pad(&buf, symtabOff)
	buf.Write(make([]byte, symsize))
	for i, s := range f.Symbols {
		var sym [symsize]byte
		le.PutUint32(sym[0:], symNameOff[i])
		sym[4] = (1 << 4) | 2 // STB_GLOBAL, STT_FUNC
		le.PutUint16(sym[6:], 1)
		le.PutUint64(sym[8:], s.Value)
		le.PutUint64(sym[16:], s.Size)
		buf.Write(sym[:])
	}

	buf.Write(strtab.Bytes())
	buf.Write(shstr.Bytes())

	// Section headers.
	pad(&buf, shoff)
	writeShdr := func(name uint32, typ uint32, flags, addr, off, size uint64, link uint32, entsize uint64) {
		var sh [shentsize]byte
		le.PutUint32(sh[0:], name)
		le.PutUint32(sh[4:], typ)
		le.PutUint64(sh[8:], flags)
		le.PutUint64(sh[16:], addr)
		le.PutUint64(sh[24:], off)
		le.PutUint64(sh[32:], size)
		le.PutUint32(sh[40:], link)
		le.PutUint64(sh[48:], 8)
		le.PutUint64(sh[56:], entsize)
		buf.Write(sh[:])
	}
	writeShdr(0, 0, 0, 0, 0, 0, 0, 0) // null section
	for i, s := range f.Segments {
		var flags uint64 = 0x2 // SHF_ALLOC
		if s.Flags&PFX != 0 {
			flags |= 0x4 // SHF_EXECINSTR
		}
		if s.Flags&PFW != 0 {
			flags |= 0x1 // SHF_WRITE
		}
		writeShdr(segShName[i], 1 /*SHT_PROGBITS*/, flags, s.Vaddr, segOff[i], uint64(len(s.Data)), 0, 0)
	}
	strtabIdx := uint32(1 + nseg + 1)
	writeShdr(symtabName, 2 /*SHT_SYMTAB*/, 0, 0, symtabOff, symtabSize, strtabIdx, symsize)
	writeShdr(strtabName, 3 /*SHT_STRTAB*/, 0, 0, strtabOff, uint64(strtab.Len()), 0, 0)
	writeShdr(shstrName, 3 /*SHT_STRTAB*/, 0, 0, shstrOff, uint64(shstr.Len()), 0, 0)

	return buf.Bytes()
}

// view returns b[off:off+size] after overflow-safe bounds checks: the
// naive off+size > len comparison wraps around for attacker-chosen
// 64-bit offsets, so the check is phrased to stay in range instead.
func view(b []byte, off, size uint64, what string) ([]byte, error) {
	n := uint64(len(b))
	if off > n || size > n-off {
		return nil, fmt.Errorf("elfio: %s out of range (off=%#x size=%#x file=%#x)", what, off, size, n)
	}
	return b[off : off+size], nil
}

// Read parses an ELF64 little-endian executable produced by Write (or
// any static binary using the same minimal feature set). Malformed
// input — truncated headers, offsets or sizes that overflow or point
// past the file, overlapping load segments — returns an error, never a
// panic or a silently corrupt image.
func Read(b []byte) (*File, error) {
	le := binary.LittleEndian
	if len(b) < ehsize || string(b[:4]) != "\x7fELF" {
		return nil, fmt.Errorf("elfio: bad magic")
	}
	if b[4] != 2 || b[5] != 1 {
		return nil, fmt.Errorf("elfio: only ELF64 little-endian supported")
	}
	f := &File{
		Machine: le.Uint16(b[18:]),
		Entry:   le.Uint64(b[24:]),
	}
	phoff := le.Uint64(b[32:])
	shoff := le.Uint64(b[40:])
	phnum := uint64(le.Uint16(b[56:]))
	shnum := uint64(le.Uint16(b[60:]))

	// All program headers must fit before any is parsed; phnum is
	// bounded (uint16), so phnum*phentsize cannot overflow.
	phdrs, err := view(b, phoff, phnum*phentsize, "program header table")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < phnum; i++ {
		ph := phdrs[i*phentsize : (i+1)*phentsize]
		if le.Uint32(ph[0:]) != 1 { // PT_LOAD
			continue
		}
		off := le.Uint64(ph[8:])
		filesz := le.Uint64(ph[32:])
		data, err := view(b, off, filesz, fmt.Sprintf("segment %d data", i))
		if err != nil {
			return nil, err
		}
		seg := Segment{
			Vaddr: le.Uint64(ph[16:]),
			Flags: le.Uint32(ph[4:]),
			Data:  append([]byte(nil), data...),
		}
		if seg.Vaddr+filesz < seg.Vaddr {
			return nil, fmt.Errorf("elfio: segment %d wraps the address space (vaddr=%#x size=%#x)", i, seg.Vaddr, filesz)
		}
		for j, prev := range f.Segments {
			// Empty ranges cannot overlap anything.
			if filesz > 0 && seg.Vaddr < prev.Vaddr+uint64(len(prev.Data)) && prev.Vaddr < seg.Vaddr+filesz {
				return nil, fmt.Errorf("elfio: segments %d and %d overlap at vaddr %#x", j, i, seg.Vaddr)
			}
		}
		f.Segments = append(f.Segments, seg)
	}

	// Locate .symtab and its string table.
	shdrs, err := view(b, shoff, shnum*shentsize, "section header table")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < shnum; i++ {
		sh := shdrs[i*shentsize : (i+1)*shentsize]
		if le.Uint32(sh[4:]) != 2 { // SHT_SYMTAB
			continue
		}
		symOff := le.Uint64(sh[24:])
		symSize := le.Uint64(sh[32:])
		link := uint64(le.Uint32(sh[40:]))
		if link >= shnum {
			return nil, fmt.Errorf("elfio: symtab links to section %d of %d", link, shnum)
		}
		strsh := shdrs[link*shentsize : (link+1)*shentsize]
		strOff := le.Uint64(strsh[24:])
		strSize := le.Uint64(strsh[32:])
		strs, err := view(b, strOff, strSize, "symtab string table")
		if err != nil {
			return nil, err
		}
		syms, err := view(b, symOff, symSize, "symtab data")
		if err != nil {
			return nil, err
		}
		for o := uint64(0); o+symsize <= uint64(len(syms)); o += symsize {
			sym := syms[o : o+symsize]
			nameOff := le.Uint32(sym[0:])
			val := le.Uint64(sym[8:])
			size := le.Uint64(sym[16:])
			name := cstr(strs, nameOff)
			if name == "" {
				continue
			}
			f.Symbols = append(f.Symbols, Symbol{Name: name, Value: val, Size: size})
		}
	}
	sort.Slice(f.Symbols, func(i, j int) bool { return f.Symbols[i].Value < f.Symbols[j].Value })
	return f, nil
}

func cstr(b []byte, off uint32) string {
	if uint64(off) >= uint64(len(b)) {
		return ""
	}
	end := off
	for end < uint32(len(b)) && b[end] != 0 {
		end++
	}
	return string(b[off:end])
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func pad(buf *bytes.Buffer, to uint64) {
	for uint64(buf.Len()) < to {
		buf.WriteByte(0)
	}
}
