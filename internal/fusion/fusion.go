// Package fusion implements macro-op fusion as a stream-rewriting
// pass over the retired event stream: a configurable isa.BatchSink
// adapter that sits between a core's (batched) retirement delivery and
// the analysis sinks, recognizes adjacent fusible instruction pairs,
// and replaces each pair with a single fused event carrying the merged
// register and memory dependency sets. Path length, critical path,
// windowed CP and ILP computed downstream then describe the fused
// machine — the counter-argument Celio et al. ("The Renewed Case for
// the Reduced Instruction Set Computer") raise against static
// path-length comparisons like the paper's Table 1.
//
// The pass is purely a sink-side rewrite: simulated architectural
// state, memory contents and the machine's instruction count are
// untouched. Expanding every fused event back into its two
// constituent PCs reproduces the unfused retirement stream exactly
// (pinned by the differential fusion-equivalence tests).
//
// Fusion never crosses a dynamic basic-block boundary: a pair only
// fuses when the second event retired at PC+4 (fall-through) and the
// first is not a branch, so a taken branch or a branch target always
// starts a fresh pairing window. Batch seams are invisible — the pass
// carries at most one pending event across Events calls (the
// cross-batch lookahead), which makes the output independent of how
// the core chops the stream into StepN batches.
package fusion

import (
	"fmt"
	"sort"
	"strings"

	"isacmp/internal/isa"
)

// Rule identifies one fusion pattern.
type Rule uint8

// The fusion rules, in matching priority order (when a pair satisfies
// several rules the lowest-numbered one wins, deterministically).
const (
	// RuleLoadPair fuses two adjacent independent loads of the same
	// access size — the dual-ported-LSU model. Unlike an AArch64 LDP
	// the two addresses need not be contiguous; the second access is
	// carried in the event's Load2 slot so both memory RAW chains
	// survive.
	RuleLoadPair Rule = iota
	// RuleStorePair fuses two adjacent independent stores whose byte
	// spans are contiguous, merging them into one wider store.
	RuleStorePair
	// RuleAddLd fuses RV64 indexed-address loads: add rd,rs1,rs2
	// followed by a load with base rd and zero offset.
	RuleAddLd
	// RuleAddSt is the store form of RuleAddLd.
	RuleAddSt
	// RuleSlliAdd fuses RV64 address scaling: slli rd,rs1,{1,2,3}
	// followed by a destructive add of rd.
	RuleSlliAdd
	// RuleLuiAddi fuses RV64 constant formation: lui rd followed by a
	// destructive addi/addiw rd,rd,imm.
	RuleLuiAddi
	// RuleCmpBranch fuses an AArch64 flag-setting ALU instruction with
	// the conditional branch that consumes its NZCV result. RV64 is
	// excluded: its compare-and-branch instructions are already fused
	// architecturally.
	RuleCmpBranch

	// NumRules is the number of fusion rules.
	NumRules
)

var ruleNames = [NumRules]string{
	"loadpair", "storepair", "addld", "addst", "slliadd", "luiaddi", "cmpbranch",
}

// String returns the rule's short name (the -fusion spec vocabulary).
func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return fmt.Sprintf("rule(%d)", uint8(r))
}

// RuleSet is a bitmask of enabled rules.
type RuleSet uint16

// Has reports whether the rule is in the set.
func (s RuleSet) Has(r Rule) bool { return s&(1<<r) != 0 }

// AllRules enables every fusion rule.
const AllRules RuleSet = 1<<NumRules - 1

// Per-architecture applicability: the RV64 word-pattern rules decode
// RV64 encodings and must never inspect AArch64 words (bit patterns
// alias), and cmp+branch fusion only exists on AArch64.
const (
	archNeutralRules = RuleSet(1<<RuleLoadPair | 1<<RuleStorePair)
	rv64OnlyRules    = RuleSet(1<<RuleAddLd | 1<<RuleAddSt | 1<<RuleSlliAdd | 1<<RuleLuiAddi)
	a64OnlyRules     = RuleSet(1 << RuleCmpBranch)
)

// Config selects which architectures the pass rewrites and which
// rules it applies. The zero value is fusion off.
type Config struct {
	// RV64 and A64 scope the pass to targets of that architecture; a
	// machine outside the scope gets no pass at all (identity elided).
	RV64 bool
	A64  bool
	// Rules is the enabled rule set (AllRules via ParseSpec unless the
	// spec names specific rules).
	Rules RuleSet
	// Attach forces the pass onto in-scope targets even when no rule
	// can fire there — the bench-fusion hook for measuring the bare
	// scan cost of an interposed pass that fuses nothing.
	Attach bool
}

// Enabled reports whether the config turns fusion on for any target.
func (c Config) Enabled() bool { return c.RV64 || c.A64 }

// RulesFor returns the subset of enabled rules that can fire on a
// machine of the given architecture (empty when out of scope).
func (c Config) RulesFor(arch isa.Arch) RuleSet {
	switch arch {
	case isa.RV64:
		if !c.RV64 {
			return 0
		}
		return c.Rules & (archNeutralRules | rv64OnlyRules)
	case isa.AArch64:
		if !c.A64 {
			return 0
		}
		return c.Rules & (archNeutralRules | a64OnlyRules)
	}
	return 0
}

// Active reports whether a pass should be interposed for the given
// architecture. When false the caller wires the sinks directly — the
// disabled pass costs nothing, which is the fusion-off byte-identity
// contract.
func (c Config) Active(arch isa.Arch) bool {
	if c.RulesFor(arch) != 0 {
		return true
	}
	if !c.Attach {
		return false
	}
	return (arch == isa.RV64 && c.RV64) || (arch == isa.AArch64 && c.A64)
}

// ParseSpec parses the -fusion flag: "off" (or ""), or a scope
// "rv64" | "a64" | "both", optionally followed by ":rule,rule,..."
// to enable a subset of rules (all rules without the suffix).
func ParseSpec(s string) (Config, error) {
	scope, rulesPart, hasRules := strings.Cut(s, ":")
	var c Config
	switch scope {
	case "", "off":
		if hasRules {
			return Config{}, fmt.Errorf("fusion: %q: \"off\" takes no rule list", s)
		}
		return Config{}, nil
	case "rv64":
		c.RV64 = true
	case "a64":
		c.A64 = true
	case "both":
		c.RV64, c.A64 = true, true
	default:
		return Config{}, fmt.Errorf("fusion: unknown scope %q (want off, rv64, a64 or both)", scope)
	}
	if !hasRules {
		c.Rules = AllRules
		return c, nil
	}
	for _, name := range strings.Split(rulesPart, ",") {
		found := false
		for r := Rule(0); r < NumRules; r++ {
			if name == ruleNames[r] {
				c.Rules |= 1 << r
				found = true
				break
			}
		}
		if !found {
			return Config{}, fmt.Errorf("fusion: unknown rule %q (want %s)",
				name, strings.Join(ruleNames[:], ", "))
		}
	}
	if c.Rules == 0 {
		return Config{}, fmt.Errorf("fusion: %q enables no rules", s)
	}
	return c, nil
}

// Spec renders the config back in -fusion flag syntax ("off",
// "rv64", "both:loadpair,slliadd", ...) — the canonical form recorded
// in the manifest fusion block.
func (c Config) Spec() string {
	if !c.Enabled() {
		return "off"
	}
	scope := "both"
	switch {
	case c.RV64 && !c.A64:
		scope = "rv64"
	case c.A64 && !c.RV64:
		scope = "a64"
	}
	if c.Rules == AllRules {
		return scope
	}
	var names []string
	for r := Rule(0); r < NumRules; r++ {
		if c.Rules.Has(r) {
			names = append(names, ruleNames[r])
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return scope + ":none"
	}
	return scope + ":" + strings.Join(names, ",")
}

// Stats counts what one pass did: raw events in, rewritten events out
// (the fused machine's effective path length) and per-rule hits.
type Stats struct {
	EventsIn  uint64
	EventsOut uint64
	Hits      [NumRules]uint64
}

// Pairs returns the total number of fused pairs across all rules.
func (s Stats) Pairs() uint64 {
	var n uint64
	for _, h := range s.Hits {
		n += h
	}
	return n
}

// Pass is the stream-rewriting adapter. It implements isa.Sink and
// isa.BatchSink; wire it between the core and the analysis sinks and
// call Flush once simulation has finished so the final carried event
// is delivered. A Pass is single-goroutine, like any sink.
type Pass struct {
	rules RuleSet
	arch  isa.Arch
	down  isa.Sink

	pending    isa.Event
	hasPending bool
	buf        []isa.Event
	stats      Stats
}

// NewPass builds a pass for one machine. Callers should interpose one
// only when cfg.Active(arch); rules outside the architecture's scope
// are masked off regardless.
func NewPass(cfg Config, arch isa.Arch, down isa.Sink) *Pass {
	return &Pass{rules: cfg.RulesFor(arch), arch: arch, down: down}
}

// Stats returns the pass counters accumulated so far.
func (p *Pass) Stats() Stats { return p.stats }

// Event observes one retired instruction — the unbatched path. The
// output is identical to delivering the same stream through Events in
// any batching (both implement the same greedy left-to-right pairing
// with a one-event carry).
func (p *Pass) Event(ev *isa.Event) {
	p.stats.EventsIn++
	if !p.hasPending {
		p.pending = *ev // value copy: ev dies when we return
		p.hasPending = true
		return
	}
	if fused, _, ok := p.tryFuse(&p.pending, ev); ok {
		p.hasPending = false
		p.stats.EventsOut++
		p.down.Event(&fused)
		return
	}
	out := p.pending
	p.pending = *ev
	p.stats.EventsOut++
	p.down.Event(&out)
}

// Events observes a batch of retired instructions — the isa.BatchSink
// fast path. The rewritten batch is delivered downstream in one call;
// at most one trailing event is carried to the next batch so a fusible
// pair straddling a StepN buffer seam fuses exactly as it would
// unbatched.
func (p *Pass) Events(evs []isa.Event) {
	if len(evs) == 0 {
		return
	}
	p.stats.EventsIn += uint64(len(evs))

	// Zero-copy fast path: when nothing in this batch can fuse, the
	// rewrite is the identity — deliver the carried event and then the
	// caller's own slice (minus the new carry) without rebuilding the
	// stream. matchAny ignores merge feasibility, so a hit here only
	// means falling back to the copying path, never a missed fusion.
	if !p.anyFusible(evs) {
		n := len(evs) - 1
		if p.hasPending {
			out := p.pending
			p.stats.EventsOut++
			p.down.Event(&out)
		}
		p.pending = evs[n]
		p.hasPending = true
		if n > 0 {
			p.stats.EventsOut += uint64(n)
			isa.DeliverBatch(p.down, evs[:n])
		}
		return
	}

	out := p.buf[:0]
	i := 0
	if p.hasPending {
		p.hasPending = false
		if fused, _, ok := p.tryFuse(&p.pending, &evs[0]); ok {
			out = append(out, fused)
			i = 1
		} else {
			out = append(out, p.pending)
		}
	}
	for i < len(evs) {
		if i == len(evs)-1 {
			p.pending = evs[i]
			p.hasPending = true
			break
		}
		if fused, _, ok := p.tryFuse(&evs[i], &evs[i+1]); ok {
			out = append(out, fused)
			i += 2
			continue
		}
		out = append(out, evs[i])
		i++
	}
	p.buf = out // keep the grown buffer for the next batch
	if len(out) > 0 {
		p.stats.EventsOut += uint64(len(out))
		isa.DeliverBatch(p.down, out)
	}
}

// Flush delivers the carried trailing event, if any. Call exactly once,
// after the core has finished and before reading analysis results.
func (p *Pass) Flush() {
	if !p.hasPending {
		return
	}
	p.hasPending = false
	out := p.pending
	p.stats.EventsOut++
	p.down.Event(&out)
}

// anyFusible reports whether any adjacent pair in (carry, evs) matches
// an enabled rule — the guard on the zero-copy identity path. An inert
// pass (no rules) never scans at all.
func (p *Pass) anyFusible(evs []isa.Event) bool {
	if p.rules == 0 {
		return false
	}
	if p.hasPending && p.matchAny(&p.pending, &evs[0]) {
		return true
	}
	for i := 0; i+1 < len(evs); i++ {
		if p.matchAny(&evs[i], &evs[i+1]) {
			return true
		}
	}
	return false
}

// matchAny is tryFuse without the merge step or hit accounting.
func (p *Pass) matchAny(a, b *isa.Event) bool {
	if b.PC != a.PC+4 || a.Branch || a.Fused != 0 || b.Fused != 0 {
		return false
	}
	for r := Rule(0); r < NumRules; r++ {
		if p.rules.Has(r) && p.match(r, a, b) {
			return true
		}
	}
	return false
}

// tryFuse decides whether the adjacent pair (a, b) fuses under the
// enabled rules and, if so, builds the merged event. It records the
// rule hit.
func (p *Pass) tryFuse(a, b *isa.Event) (isa.Event, Rule, bool) {
	// Dynamic basic-block constraint: b must have retired by falling
	// through from a. Already-fused events (possible in hand-built
	// streams) never re-fuse.
	if b.PC != a.PC+4 || a.Branch || a.Fused != 0 || b.Fused != 0 {
		return isa.Event{}, 0, false
	}
	for r := Rule(0); r < NumRules; r++ {
		if !p.rules.Has(r) || !p.match(r, a, b) {
			continue
		}
		if fused, ok := merge(r, a, b); ok {
			p.stats.Hits[r]++
			return fused, r, true
		}
	}
	return isa.Event{}, 0, false
}

// match checks the rule-specific pattern (register-width merge
// feasibility is checked later, in merge).
func (p *Pass) match(r Rule, a, b *isa.Event) bool {
	switch r {
	case RuleLoadPair:
		// Two independent loads of the same width; a dual-ported LSU
		// issues them together. Independence (b reads nothing a writes)
		// is required — a dependent second load cannot issue in the
		// same macro-op.
		return a.Group == isa.GroupLoad && b.Group == isa.GroupLoad &&
			a.LoadSize != 0 && a.LoadSize == b.LoadSize &&
			a.StoreSize == 0 && b.StoreSize == 0 &&
			a.Load2Size == 0 && b.Load2Size == 0 &&
			!b.Branch && !readsAny(b, a)
	case RuleStorePair:
		// Two adjacent stores forming one contiguous byte span (either
		// order) merge into a single wider store.
		if a.Group != isa.GroupStore || b.Group != isa.GroupStore ||
			a.StoreSize == 0 || b.StoreSize == 0 ||
			a.LoadSize != 0 || b.LoadSize != 0 || b.Branch {
			return false
		}
		if int(a.StoreSize)+int(b.StoreSize) > 255 {
			return false
		}
		return a.StoreAddr+uint64(a.StoreSize) == b.StoreAddr ||
			b.StoreAddr+uint64(b.StoreSize) == a.StoreAddr
	case RuleAddLd:
		rd, ok := rvAdd(a)
		return ok && b.Group == isa.GroupLoad && !b.Branch &&
			b.Load2Size == 0 && rvLoadZeroOff(b) == rd
	case RuleAddSt:
		rd, ok := rvAdd(a)
		return ok && b.Group == isa.GroupStore && !b.Branch &&
			rvStoreZeroOff(b) == rd
	case RuleSlliAdd:
		rd, ok := rvShiftSLLI(a)
		if !ok {
			return false
		}
		// Destructive add consuming the shifted temporary: the slli
		// result is dead after the pair, matching the Celio pattern.
		rd2, rs1, rs2, ok := rvAddFields(b)
		return ok && rd2 == rd && (rs1 == rd || rs2 == rd)
	case RuleLuiAddi:
		rd, ok := rvLUI(a)
		if !ok {
			return false
		}
		rd2, rs1, ok := rvAddImm(b)
		return ok && rd2 == rd && rs1 == rd
	case RuleCmpBranch:
		// AArch64 only: a sets NZCV, b is the conditional branch that
		// reads it.
		return p.arch == isa.AArch64 &&
			a.Group == isa.GroupIntSimple && writesReg(a, isa.RegNZCV) &&
			a.LoadSize == 0 && a.StoreSize == 0 &&
			b.Branch && readsReg(b, isa.RegNZCV)
	}
	return false
}

// merge builds the fused event for a matched pair. The merged source
// set is a.Srcs ∪ (b.Srcs − a.Dsts) — values a produces for b are
// internal to the macro-op — and the merged destination set is
// a.Dsts ∪ b.Dsts. A pair whose merged sets exceed the event's
// capacity does not fuse.
func merge(r Rule, a, b *isa.Event) (isa.Event, bool) {
	f := isa.Event{PC: a.PC, Word: a.Word, Fused: 2}

	for k := uint8(0); k < a.NDsts; k++ {
		if !addDst(&f, a.Dsts[k]) {
			return isa.Event{}, false
		}
	}
	for k := uint8(0); k < b.NDsts; k++ {
		if !addDst(&f, b.Dsts[k]) {
			return isa.Event{}, false
		}
	}
	for k := uint8(0); k < a.NSrcs; k++ {
		if !addSrc(&f, a.Srcs[k]) {
			return isa.Event{}, false
		}
	}
	for k := uint8(0); k < b.NSrcs; k++ {
		if writesReg(a, b.Srcs[k]) {
			continue // internal edge
		}
		if !addSrc(&f, b.Srcs[k]) {
			return isa.Event{}, false
		}
	}

	switch r {
	case RuleLoadPair:
		f.Group = isa.GroupLoad
		f.LoadAddr, f.LoadSize = a.LoadAddr, a.LoadSize
		f.Load2Addr, f.Load2Size = b.LoadAddr, b.LoadSize
	case RuleStorePair:
		f.Group = isa.GroupStore
		f.StoreAddr = a.StoreAddr
		if b.StoreAddr < a.StoreAddr {
			f.StoreAddr = b.StoreAddr
		}
		f.StoreSize = a.StoreSize + b.StoreSize
	case RuleAddLd:
		f.Group = isa.GroupLoad
		f.LoadAddr, f.LoadSize = b.LoadAddr, b.LoadSize
	case RuleAddSt:
		f.Group = isa.GroupStore
		f.StoreAddr, f.StoreSize = b.StoreAddr, b.StoreSize
	case RuleSlliAdd, RuleLuiAddi:
		f.Group = isa.GroupIntSimple
	case RuleCmpBranch:
		f.Group = isa.GroupBranch
		f.Branch, f.Taken = true, b.Taken
	}
	return f, true
}

// addSrc appends a deduplicated source, reporting overflow.
func addSrc(f *isa.Event, r isa.Reg) bool {
	for k := uint8(0); k < f.NSrcs; k++ {
		if f.Srcs[k] == r {
			return true
		}
	}
	if f.NSrcs == uint8(len(f.Srcs)) {
		return false
	}
	f.Srcs[f.NSrcs] = r
	f.NSrcs++
	return true
}

// addDst appends a deduplicated destination, reporting overflow.
func addDst(f *isa.Event, r isa.Reg) bool {
	for k := uint8(0); k < f.NDsts; k++ {
		if f.Dsts[k] == r {
			return true
		}
	}
	if f.NDsts == uint8(len(f.Dsts)) {
		return false
	}
	f.Dsts[f.NDsts] = r
	f.NDsts++
	return true
}

// readsReg reports whether e lists r as a source.
func readsReg(e *isa.Event, r isa.Reg) bool {
	for k := uint8(0); k < e.NSrcs; k++ {
		if e.Srcs[k] == r {
			return true
		}
	}
	return false
}

// writesReg reports whether e lists r as a destination.
func writesReg(e *isa.Event, r isa.Reg) bool {
	for k := uint8(0); k < e.NDsts; k++ {
		if e.Dsts[k] == r {
			return true
		}
	}
	return false
}

// readsAny reports whether b reads any register a writes.
func readsAny(b, a *isa.Event) bool {
	for k := uint8(0); k < a.NDsts; k++ {
		if readsReg(b, a.Dsts[k]) {
			return true
		}
	}
	return false
}

// RV64 word-pattern helpers. They inspect the raw 32-bit encoding, so
// the rules using them are gated to RV64 machines by RulesFor.

// rvAdd matches ADD rd,rs1,rs2 (opcode 0110011, funct3 0, funct7 0)
// and returns rd.
func rvAdd(e *isa.Event) (isa.Reg, bool) {
	w := e.Word
	if w&0x7f != 0x33 || (w>>12)&7 != 0 || w>>25 != 0 {
		return 0, false
	}
	rd := isa.Reg((w >> 7) & 0x1f)
	return rd, rd != 0 && e.Group == isa.GroupIntSimple
}

// rvAddFields matches ADD and returns (rd, rs1, rs2).
func rvAddFields(e *isa.Event) (rd, rs1, rs2 isa.Reg, ok bool) {
	if _, addOK := rvAdd(e); !addOK {
		return 0, 0, 0, false
	}
	w := e.Word
	return isa.Reg((w >> 7) & 0x1f), isa.Reg((w >> 15) & 0x1f), isa.Reg((w >> 20) & 0x1f), true
}

// rvShiftSLLI matches SLLI rd,rs1,shamt with the address-scaling
// shifts 1..3 (opcode 0010011, funct3 001) and returns rd.
func rvShiftSLLI(e *isa.Event) (isa.Reg, bool) {
	w := e.Word
	if w&0x7f != 0x13 || (w>>12)&7 != 1 {
		return 0, false
	}
	if sh := (w >> 20) & 0x3f; sh < 1 || sh > 3 {
		return 0, false
	}
	rd := isa.Reg((w >> 7) & 0x1f)
	return rd, rd != 0 && e.Group == isa.GroupIntSimple
}

// rvLUI matches LUI rd (opcode 0110111) and returns rd.
func rvLUI(e *isa.Event) (isa.Reg, bool) {
	w := e.Word
	if w&0x7f != 0x37 {
		return 0, false
	}
	rd := isa.Reg((w >> 7) & 0x1f)
	return rd, rd != 0 && e.Group == isa.GroupIntSimple
}

// rvAddImm matches ADDI/ADDIW rd,rs1,imm (opcodes 0010011/0011011,
// funct3 0) and returns (rd, rs1).
func rvAddImm(e *isa.Event) (rd, rs1 isa.Reg, ok bool) {
	w := e.Word
	op := w & 0x7f
	if (op != 0x13 && op != 0x1b) || (w>>12)&7 != 0 {
		return 0, 0, false
	}
	rd = isa.Reg((w >> 7) & 0x1f)
	return rd, isa.Reg((w >> 15) & 0x1f), rd != 0 && e.Group == isa.GroupIntSimple
}

// rvLoadZeroOff matches an integer or FP load (opcodes 0000011 /
// 0000111) with a zero immediate and returns its base register, or 0.
func rvLoadZeroOff(e *isa.Event) isa.Reg {
	w := e.Word
	op := w & 0x7f
	if (op != 0x03 && op != 0x07) || w>>20 != 0 {
		return 0
	}
	return isa.Reg((w >> 15) & 0x1f)
}

// rvStoreZeroOff matches an integer or FP store (opcodes 0100011 /
// 0100111) with a zero immediate and returns its base register, or 0.
func rvStoreZeroOff(e *isa.Event) isa.Reg {
	w := e.Word
	op := w & 0x7f
	if (op != 0x23 && op != 0x27) || (w>>25) != 0 || (w>>7)&0x1f != 0 {
		return 0
	}
	return isa.Reg((w >> 15) & 0x1f)
}
