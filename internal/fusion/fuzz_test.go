package fusion

import (
	"testing"

	"isacmp/internal/isa"
)

// FuzzFusionStream feeds the pass pseudo-random but well-formed event
// streams, chopped into pseudo-random batches, and checks the
// rule-independent invariants:
//
//   - the event count never increases, and stats agree with it;
//   - every unfused output event is byte-identical to its input;
//   - every fused output event stands for exactly the next two input
//     events, which are PC-adjacent with a non-branch first — i.e.
//     fusion never crosses a basic-block boundary;
//   - a fused event's register destinations are the union of the
//     pair's, and its sources are the union minus edges internal to
//     the pair;
//   - memory byte coverage (loads and stores separately) is preserved
//     through the merge.
func FuzzFusionStream(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x20, 0x00, 0x01, 0x11, 0x21, 0x08})
	f.Add([]byte{0x02, 0x05, 0x06, 0x00, 0x03, 0x1f, 0x1c, 0x03, 0x04, 0x06, 0x00, 0x02})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		in := synthesize(data)

		var c capture
		p := NewPass(allRV, isa.RV64, &c)
		// Chop the stream into batches whose lengths are driven by the
		// fuzz input, so seams land everywhere, then flush.
		i, k := 0, 0
		for i < len(in) {
			n := 1
			if len(data) > 0 {
				n = int(data[k%len(data)])%5 + 1
				k++
			}
			if i+n > len(in) {
				n = len(in) - i
			}
			p.Events(in[i : i+n])
			i += n
		}
		p.Flush()
		out, st := c.evs, p.Stats()

		if len(out) > len(in) {
			t.Fatalf("event count grew: %d -> %d", len(in), len(out))
		}
		if st.EventsIn != uint64(len(in)) || st.EventsOut != uint64(len(out)) {
			t.Fatalf("stats disagree with stream: %+v vs in=%d out=%d", st, len(in), len(out))
		}
		if uint64(len(in)-len(out)) != st.Pairs() {
			t.Fatalf("pair count: %d events removed, %d hits", len(in)-len(out), st.Pairs())
		}

		j := 0
		for oi := range out {
			ev := &out[oi]
			switch ev.Fused {
			case 0:
				if j >= len(in) || *ev != in[j] {
					t.Fatalf("output %d: unfused event differs from input %d", oi, j)
				}
				j++
			case 2:
				if j+1 >= len(in) {
					t.Fatalf("output %d: fused event overruns input", oi)
				}
				a, b := &in[j], &in[j+1]
				if ev.PC != a.PC || b.PC != a.PC+4 {
					t.Fatalf("fused pair not PC-adjacent: %#x %#x %#x", ev.PC, a.PC, b.PC)
				}
				if a.Branch {
					t.Fatalf("fused across basic-block boundary at %#x", a.PC)
				}
				checkDepUnion(t, ev, a, b)
				checkMemCoverage(t, ev, a, b)
				j += 2
			default:
				t.Fatalf("output %d: bad Fused=%d", oi, ev.Fused)
			}
		}
		if j != len(in) {
			t.Fatalf("output accounts for %d of %d input events", j, len(in))
		}
	})
}

// checkDepUnion verifies dsts(f) == dsts(a) ∪ dsts(b) and
// srcs(f) == srcs(a) ∪ (srcs(b) − dsts(a)).
func checkDepUnion(t *testing.T, f, a, b *isa.Event) {
	t.Helper()
	for k := uint8(0); k < a.NDsts; k++ {
		if !writesReg(f, a.Dsts[k]) {
			t.Fatalf("fused at %#x lost dst %v of first", f.PC, a.Dsts[k])
		}
	}
	for k := uint8(0); k < b.NDsts; k++ {
		if !writesReg(f, b.Dsts[k]) {
			t.Fatalf("fused at %#x lost dst %v of second", f.PC, b.Dsts[k])
		}
	}
	for k := uint8(0); k < f.NDsts; k++ {
		if !writesReg(a, f.Dsts[k]) && !writesReg(b, f.Dsts[k]) {
			t.Fatalf("fused at %#x invented dst %v", f.PC, f.Dsts[k])
		}
	}
	for k := uint8(0); k < a.NSrcs; k++ {
		if !readsReg(f, a.Srcs[k]) {
			t.Fatalf("fused at %#x lost src %v of first", f.PC, a.Srcs[k])
		}
	}
	for k := uint8(0); k < b.NSrcs; k++ {
		if writesReg(a, b.Srcs[k]) {
			continue // internal edge, correctly dropped
		}
		if !readsReg(f, b.Srcs[k]) {
			t.Fatalf("fused at %#x lost src %v of second", f.PC, b.Srcs[k])
		}
	}
	for k := uint8(0); k < f.NSrcs; k++ {
		r := f.Srcs[k]
		if !readsReg(a, r) && !(readsReg(b, r) && !writesReg(a, r)) {
			t.Fatalf("fused at %#x invented src %v", f.PC, r)
		}
	}
}

// checkMemCoverage verifies the fused event touches exactly the bytes
// the pair touched, loads and stores separately.
func checkMemCoverage(t *testing.T, f, a, b *isa.Event) {
	t.Helper()
	cover := func(m map[uint64]int, addr uint64, size uint8, d int) {
		for i := uint64(0); i < uint64(size); i++ {
			m[addr+i] += d
		}
	}
	loads := map[uint64]int{}
	cover(loads, a.LoadAddr, a.LoadSize, 1)
	cover(loads, a.Load2Addr, a.Load2Size, 1)
	cover(loads, b.LoadAddr, b.LoadSize, 1)
	cover(loads, b.Load2Addr, b.Load2Size, 1)
	cover(loads, f.LoadAddr, f.LoadSize, -1)
	cover(loads, f.Load2Addr, f.Load2Size, -1)
	for addr, n := range loads {
		if n > 0 {
			t.Fatalf("fused at %#x lost load byte %#x", f.PC, addr)
		}
		if n < 0 {
			t.Fatalf("fused at %#x invented load byte %#x", f.PC, addr)
		}
	}
	stores := map[uint64]int{}
	cover(stores, a.StoreAddr, a.StoreSize, 1)
	cover(stores, b.StoreAddr, b.StoreSize, 1)
	cover(stores, f.StoreAddr, f.StoreSize, -1)
	for addr, n := range stores {
		if n != 0 {
			t.Fatalf("fused at %#x store byte %#x off by %d", f.PC, addr, n)
		}
	}
}

// synthesize builds a well-formed event stream from fuzz bytes: PCs
// advance by 4 (branches occasionally jump), registers and addresses
// come from the input, and the ALU kinds carry genuine RV64 encodings
// so every word rule can fire.
func synthesize(data []byte) []isa.Event {
	var evs []isa.Event
	pc := uint64(0x1000)
	next := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	for i := 0; i+3 < len(data) && len(evs) < 512; i += 4 {
		kind := data[i] % 8
		r1 := uint32(data[i+1]%31) + 1 // x1..x31, never x0
		r2 := uint32(data[i+2]%31) + 1
		addr := 0x8000 + uint64(data[i+3])*8
		sizes := [4]uint8{1, 2, 4, 8}
		size := sizes[data[i+1]%4]

		var e isa.Event
		e.PC = pc
		switch kind {
		case 0, 1: // load
			e = evLoad(pc, isa.Reg(r1), isa.Reg(r2), addr, size)
			e.Word = wLD(r1, r2, uint32(data[i+3]&1)<<3)
		case 2: // store
			e = evStore(pc, isa.Reg(r1), isa.Reg(r2), addr, size)
			e.Word = wSD(r1, r2, uint32(data[i+3]&1)<<3)
		case 3: // add
			e = evALU(pc, wADD(r1, r2, uint32(next(i+5)%31)+1),
				isa.Reg(r1), isa.Reg(r2), isa.Reg(uint32(next(i+5)%31)+1))
		case 4: // slli
			e = evALU(pc, wSLLI(r1, r2, uint32(data[i+3]%5)), isa.Reg(r1), isa.Reg(r2))
		case 5: // lui
			e = evALU(pc, wLUI(r1), isa.Reg(r1))
		case 6: // addi
			e = evALU(pc, wADDI(r1, r2, uint32(data[i+3])), isa.Reg(r1), isa.Reg(r2))
		case 7: // branch
			e = evBranch(pc, data[i+3]&1 == 1, isa.Reg(r1))
		}
		evs = append(evs, e)
		if e.Branch && e.Taken {
			pc += 8 + uint64(data[i+3])*4 // jump: breaks PC adjacency
		} else {
			pc += 4
		}
	}
	return evs
}
