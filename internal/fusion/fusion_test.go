package fusion

import (
	"reflect"
	"testing"

	"isacmp/internal/isa"
)

// capture records value copies of every delivered event plus the batch
// boundaries, so tests can check both the rewritten stream and how it
// was chopped.
type capture struct {
	evs     []isa.Event
	batches []int
	singles int
}

func (c *capture) Event(ev *isa.Event) {
	c.evs = append(c.evs, *ev)
	c.singles++
}

func (c *capture) Events(evs []isa.Event) {
	c.evs = append(c.evs, evs...)
	c.batches = append(c.batches, len(evs))
}

// RV64 word constructors for the word-pattern rules.

func wADD(rd, rs1, rs2 uint32) uint32  { return 0x33 | rd<<7 | rs1<<15 | rs2<<20 }
func wSLLI(rd, rs1, sh uint32) uint32  { return 0x13 | rd<<7 | 1<<12 | rs1<<15 | sh<<20 }
func wLUI(rd uint32) uint32            { return 0x37 | rd<<7 | 0x12345<<12 }
func wADDI(rd, rs1, imm uint32) uint32 { return 0x13 | rd<<7 | rs1<<15 | imm<<20 }
func wLD(rd, rs1, imm uint32) uint32   { return 0x03 | rd<<7 | 3<<12 | rs1<<15 | imm<<20 }
func wSD(rs2, rs1, imm uint32) uint32 {
	return 0x23 | (imm&0x1f)<<7 | 3<<12 | rs1<<15 | rs2<<20 | (imm>>5)<<25
}

// Event constructors.

func evLoad(pc uint64, dst, base isa.Reg, addr uint64, size uint8) isa.Event {
	e := isa.Event{PC: pc, Group: isa.GroupLoad, LoadAddr: addr, LoadSize: size}
	e.AddDst(dst)
	e.AddSrc(base)
	return e
}

func evStore(pc uint64, val, base isa.Reg, addr uint64, size uint8) isa.Event {
	e := isa.Event{PC: pc, Group: isa.GroupStore, StoreAddr: addr, StoreSize: size}
	e.AddSrc(val)
	e.AddSrc(base)
	return e
}

func evALU(pc uint64, word uint32, dst isa.Reg, srcs ...isa.Reg) isa.Event {
	e := isa.Event{PC: pc, Word: word, Group: isa.GroupIntSimple}
	e.AddDst(dst)
	for _, s := range srcs {
		e.AddSrc(s)
	}
	return e
}

func evBranch(pc uint64, taken bool, srcs ...isa.Reg) isa.Event {
	e := isa.Event{PC: pc, Group: isa.GroupBranch, Branch: true, Taken: taken}
	for _, s := range srcs {
		e.AddSrc(s)
	}
	return e
}

// run pushes evs through a fresh pass as one batch and flushes.
func run(t *testing.T, cfg Config, arch isa.Arch, evs []isa.Event) ([]isa.Event, Stats) {
	t.Helper()
	var c capture
	p := NewPass(cfg, arch, &c)
	p.Events(evs)
	p.Flush()
	return c.evs, p.Stats()
}

var allRV = Config{RV64: true, A64: true, Rules: AllRules}

func TestLoadPairFuses(t *testing.T) {
	in := []isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8), // independent, discontiguous
	}
	out, st := run(t, allRV, isa.RV64, in)
	if len(out) != 1 {
		t.Fatalf("got %d events, want 1 fused", len(out))
	}
	f := out[0]
	if f.Fused != 2 || f.PC != 0x100 || f.Group != isa.GroupLoad {
		t.Fatalf("bad fused event: %+v", f)
	}
	if f.LoadAddr != 0x8000 || f.LoadSize != 8 || f.Load2Addr != 0x9000 || f.Load2Size != 8 {
		t.Fatalf("memory spans not preserved: %+v", f)
	}
	if f.NDsts != 2 || f.Dsts[0] != isa.IntReg(5) || f.Dsts[1] != isa.IntReg(6) {
		t.Fatalf("dsts not merged: %+v", f)
	}
	// Shared base register deduplicates.
	if f.NSrcs != 1 || f.Srcs[0] != isa.IntReg(10) {
		t.Fatalf("srcs not deduped: %+v", f)
	}
	if st.Hits[RuleLoadPair] != 1 || st.EventsIn != 2 || st.EventsOut != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLoadPairRefusals(t *testing.T) {
	base := func() []isa.Event {
		return []isa.Event{
			evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
			evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8),
		}
	}
	cases := []struct {
		name string
		mut  func(in []isa.Event)
	}{
		{"pc gap", func(in []isa.Event) { in[1].PC = 0x110 }},
		{"dependent", func(in []isa.Event) { in[1].Srcs[0] = isa.IntReg(5) }},
		{"size mismatch", func(in []isa.Event) { in[1].LoadSize = 4 }},
		{"second already paired", func(in []isa.Event) {
			in[1].Load2Addr, in[1].Load2Size = 0xa000, 8
		}},
		{"first has store", func(in []isa.Event) {
			in[0].StoreAddr, in[0].StoreSize = 0xb000, 8
		}},
		{"already fused", func(in []isa.Event) { in[0].Fused = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := base()
			tc.mut(in)
			out, st := run(t, allRV, isa.RV64, in)
			if len(out) != 2 || st.Pairs() != 0 {
				t.Fatalf("fused when it must not: %d events, stats %+v", len(out), st)
			}
		})
	}
}

func TestLoadPairDstOverflow(t *testing.T) {
	// Two loads with distinct dsts fit (2 slots), but a second load
	// whose srcs don't dedup past 4 must refuse. Build src overflow:
	// a reads 3 regs (synthetic), b reads 2 distinct others.
	a := evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8)
	a.AddSrc(isa.IntReg(11))
	a.AddSrc(isa.IntReg(12))
	b := evLoad(0x104, isa.IntReg(6), isa.IntReg(13), 0x9000, 8)
	b.AddSrc(isa.IntReg(14))
	out, st := run(t, allRV, isa.RV64, []isa.Event{a, b})
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("src overflow must refuse: %d events", len(out))
	}
}

func TestStorePairFuses(t *testing.T) {
	in := []isa.Event{
		evStore(0x200, isa.FPReg(1), isa.IntReg(10), 0x8000, 8),
		evStore(0x204, isa.FPReg(2), isa.IntReg(10), 0x8008, 8), // contiguous
	}
	out, st := run(t, allRV, isa.RV64, in)
	if len(out) != 1 {
		t.Fatalf("got %d events, want 1", len(out))
	}
	f := out[0]
	if f.Group != isa.GroupStore || f.StoreAddr != 0x8000 || f.StoreSize != 16 {
		t.Fatalf("merged span wrong: %+v", f)
	}
	if f.NSrcs != 3 { // two values + shared base
		t.Fatalf("srcs: %+v", f)
	}
	if st.Hits[RuleStorePair] != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Descending order merges too.
	in = []isa.Event{
		evStore(0x200, isa.FPReg(1), isa.IntReg(10), 0x8008, 8),
		evStore(0x204, isa.FPReg(2), isa.IntReg(10), 0x8000, 8),
	}
	out, _ = run(t, allRV, isa.RV64, in)
	if len(out) != 1 || out[0].StoreAddr != 0x8000 || out[0].StoreSize != 16 {
		t.Fatalf("descending pair: %+v", out)
	}
}

func TestStorePairRefusesGap(t *testing.T) {
	in := []isa.Event{
		evStore(0x200, isa.FPReg(1), isa.IntReg(10), 0x8000, 8),
		evStore(0x204, isa.FPReg(2), isa.IntReg(10), 0x8010, 8), // hole at 0x8008
	}
	out, st := run(t, allRV, isa.RV64, in)
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("non-adjacent stores fused: %+v", out)
	}
}

func TestAddLdFuses(t *testing.T) {
	add := evALU(0x300, wADD(6, 10, 11), isa.IntReg(6), isa.IntReg(10), isa.IntReg(11))
	ld := evLoad(0x304, isa.IntReg(7), isa.IntReg(6), 0xc000, 8)
	ld.Word = wLD(7, 6, 0)
	out, st := run(t, allRV, isa.RV64, []isa.Event{add, ld})
	if len(out) != 1 || st.Hits[RuleAddLd] != 1 {
		t.Fatalf("addld did not fire: %d events, %+v", len(out), st)
	}
	f := out[0]
	if f.Group != isa.GroupLoad || f.LoadAddr != 0xc000 || f.LoadSize != 8 {
		t.Fatalf("fused addld: %+v", f)
	}
	// Sources: the add's operands; the load's base x6 is internal.
	if f.NSrcs != 2 || f.NDsts != 2 {
		t.Fatalf("deps: %+v", f)
	}

	// Nonzero load offset refuses.
	ld.Word = wLD(7, 6, 8)
	out, st = run(t, allRV, isa.RV64, []isa.Event{add, ld})
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("nonzero offset fused")
	}
	// Base mismatch refuses.
	ld.Word = wLD(7, 12, 0)
	out, _ = run(t, allRV, isa.RV64, []isa.Event{add, ld})
	if len(out) != 2 {
		t.Fatalf("base mismatch fused")
	}
}

func TestAddStFuses(t *testing.T) {
	add := evALU(0x300, wADD(6, 10, 11), isa.IntReg(6), isa.IntReg(10), isa.IntReg(11))
	st0 := evStore(0x304, isa.IntReg(12), isa.IntReg(6), 0xd000, 8)
	st0.Word = wSD(12, 6, 0)
	out, stats := run(t, allRV, isa.RV64, []isa.Event{add, st0})
	if len(out) != 1 || stats.Hits[RuleAddSt] != 1 {
		t.Fatalf("addst did not fire: %d events, %+v", len(out), stats)
	}
	if out[0].Group != isa.GroupStore || out[0].StoreAddr != 0xd000 {
		t.Fatalf("fused addst: %+v", out[0])
	}

	st0.Word = wSD(12, 6, 16) // nonzero offset
	out, _ = run(t, allRV, isa.RV64, []isa.Event{add, st0})
	if len(out) != 2 {
		t.Fatalf("nonzero store offset fused")
	}
}

func TestSlliAddFuses(t *testing.T) {
	slli := evALU(0x400, wSLLI(31, 28, 3), isa.IntReg(31), isa.IntReg(28))
	add := evALU(0x404, wADD(31, 31, 6), isa.IntReg(31), isa.IntReg(31), isa.IntReg(6))
	out, st := run(t, allRV, isa.RV64, []isa.Event{slli, add})
	if len(out) != 1 || st.Hits[RuleSlliAdd] != 1 {
		t.Fatalf("slliadd did not fire: %d events, %+v", len(out), st)
	}
	f := out[0]
	if f.Group != isa.GroupIntSimple || f.NDsts != 1 || f.Dsts[0] != isa.IntReg(31) {
		t.Fatalf("fused slliadd: %+v", f)
	}
	// Sources: slli's x28, add's x6; x31 (written by slli) is internal.
	if f.NSrcs != 2 {
		t.Fatalf("srcs: %+v", f)
	}

	// shamt 4 (not an address scale) refuses.
	slli.Word = wSLLI(31, 28, 4)
	out, _ = run(t, allRV, isa.RV64, []isa.Event{slli, add})
	if len(out) != 2 {
		t.Fatalf("shamt 4 fused")
	}
	// Non-destructive add (different rd) refuses.
	slli.Word = wSLLI(31, 28, 3)
	add2 := evALU(0x404, wADD(7, 31, 6), isa.IntReg(7), isa.IntReg(31), isa.IntReg(6))
	out, _ = run(t, allRV, isa.RV64, []isa.Event{slli, add2})
	if len(out) != 2 {
		t.Fatalf("non-destructive add fused")
	}
}

func TestLuiAddiFuses(t *testing.T) {
	lui := evALU(0x500, wLUI(6), isa.IntReg(6))
	addi := evALU(0x504, wADDI(6, 6, 512), isa.IntReg(6), isa.IntReg(6))
	out, st := run(t, allRV, isa.RV64, []isa.Event{lui, addi})
	if len(out) != 1 || st.Hits[RuleLuiAddi] != 1 {
		t.Fatalf("luiaddi did not fire: %d events, %+v", len(out), st)
	}
	f := out[0]
	if f.NDsts != 1 || f.Dsts[0] != isa.IntReg(6) || f.NSrcs != 0 {
		t.Fatalf("fused luiaddi: %+v", f)
	}

	// addi reading a different base refuses.
	addi2 := evALU(0x504, wADDI(6, 7, 512), isa.IntReg(6), isa.IntReg(7))
	out, _ = run(t, allRV, isa.RV64, []isa.Event{lui, addi2})
	if len(out) != 2 {
		t.Fatalf("wrong-base addi fused")
	}
}

func TestCmpBranchFusesOnA64Only(t *testing.T) {
	cmp := isa.Event{PC: 0x600, Group: isa.GroupIntSimple}
	cmp.AddSrc(isa.IntReg(3))
	cmp.AddDst(isa.RegNZCV)
	br := evBranch(0x604, true, isa.RegNZCV)

	out, st := run(t, allRV, isa.AArch64, []isa.Event{cmp, br})
	if len(out) != 1 || st.Hits[RuleCmpBranch] != 1 {
		t.Fatalf("cmpbranch did not fire on a64: %d events, %+v", len(out), st)
	}
	f := out[0]
	if f.Group != isa.GroupBranch || !f.Branch || !f.Taken {
		t.Fatalf("fused cmpbranch: %+v", f)
	}
	if f.NDsts != 1 || f.Dsts[0] != isa.RegNZCV {
		t.Fatalf("nzcv dst dropped: %+v", f)
	}

	// The same stream on an RV64 machine must not fuse (rule gated).
	out, st = run(t, allRV, isa.RV64, []isa.Event{cmp, br})
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("cmpbranch fired on rv64")
	}
}

func TestNoFusionAcrossBlockBoundary(t *testing.T) {
	// A taken branch followed by its fall-through-looking PC: the first
	// event being a branch blocks fusion.
	br := evBranch(0x700, true, isa.IntReg(3))
	ld := evLoad(0x704, isa.IntReg(5), isa.IntReg(10), 0x8000, 8)
	out, st := run(t, allRV, isa.RV64, []isa.Event{br, ld})
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("fused across branch")
	}
}

func TestGreedyPairingNoOverlap(t *testing.T) {
	// Three adjacent same-size independent loads: greedy pairing fuses
	// (1,2) and leaves 3 alone — never (2,3) too.
	in := []isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x8008, 8),
		evLoad(0x108, isa.IntReg(7), isa.IntReg(10), 0x8010, 8),
	}
	out, st := run(t, allRV, isa.RV64, in)
	if len(out) != 2 || st.Pairs() != 1 {
		t.Fatalf("greedy pairing: %d events, %+v", len(out), st)
	}
	if out[0].Fused != 2 || out[1].Fused != 0 || out[1].PC != 0x108 {
		t.Fatalf("wrong pair chosen: %+v", out)
	}
}

func TestRuleMaskRestricts(t *testing.T) {
	cfg := Config{RV64: true, Rules: 1 << RuleSlliAdd}
	in := []isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8),
	}
	out, st := run(t, cfg, isa.RV64, in)
	if len(out) != 2 || st.Pairs() != 0 {
		t.Fatalf("disabled loadpair fired")
	}
}

func TestAttachInert(t *testing.T) {
	cfg := Config{RV64: true, A64: true, Attach: true}
	if !cfg.Active(isa.RV64) || !cfg.Active(isa.AArch64) {
		t.Fatalf("attach-only config must be active")
	}
	in := []isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8),
	}
	out, st := run(t, cfg, isa.RV64, in)
	if len(out) != 2 || st.Pairs() != 0 || st.EventsIn != 2 || st.EventsOut != 2 {
		t.Fatalf("inert pass rewrote the stream: %d events, %+v", len(out), st)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("inert pass altered events")
	}
}

// TestBatchSplitEquivalence delivers the same stream (a) as one batch,
// (b) split at every possible seam, (c) per-event through Event — the
// output and stats must be identical regardless. This pins the
// cross-batch carry: a fusible pair straddling a StepN buffer boundary
// fuses exactly as it would unbatched.
func TestBatchSplitEquivalence(t *testing.T) {
	in := []isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8),
		evALU(0x108, wSLLI(31, 28, 3), isa.IntReg(31), isa.IntReg(28)),
		evALU(0x10c, wADD(31, 31, 6), isa.IntReg(31), isa.IntReg(31), isa.IntReg(6)),
		evBranch(0x110, true, isa.IntReg(3)),
		evStore(0x200, isa.FPReg(1), isa.IntReg(10), 0x8000, 8),
		evStore(0x204, isa.FPReg(2), isa.IntReg(10), 0x8008, 8),
		evLoad(0x208, isa.IntReg(7), isa.IntReg(10), 0xa000, 4),
	}

	var ref capture
	p := NewPass(allRV, isa.RV64, &ref)
	p.Events(in)
	p.Flush()
	refStats := p.Stats()
	if refStats.Pairs() != 3 {
		t.Fatalf("reference stream should fuse 3 pairs, got %+v", refStats)
	}

	for cut := 0; cut <= len(in); cut++ {
		var c capture
		q := NewPass(allRV, isa.RV64, &c)
		q.Events(in[:cut])
		q.Events(in[cut:])
		q.Flush()
		if !reflect.DeepEqual(c.evs, ref.evs) {
			t.Fatalf("split at %d diverges:\n got %+v\nwant %+v", cut, c.evs, ref.evs)
		}
		if q.Stats() != refStats {
			t.Fatalf("split at %d stats diverge: %+v vs %+v", cut, q.Stats(), refStats)
		}
	}

	// Per-event path.
	var c capture
	q := NewPass(allRV, isa.RV64, &c)
	for i := range in {
		ev := in[i]
		q.Event(&ev)
	}
	q.Flush()
	if !reflect.DeepEqual(c.evs, ref.evs) {
		t.Fatalf("per-event path diverges:\n got %+v\nwant %+v", c.evs, ref.evs)
	}
	if q.Stats() != refStats {
		t.Fatalf("per-event stats diverge: %+v vs %+v", q.Stats(), refStats)
	}
}

// TestFlushEmitsCarry pins that a trailing unpaired event is only
// delivered at Flush, and that Flush is idempotent.
func TestFlushEmitsCarry(t *testing.T) {
	var c capture
	p := NewPass(allRV, isa.RV64, &c)
	ev := evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8)
	p.Events([]isa.Event{ev})
	if len(c.evs) != 0 {
		t.Fatalf("trailing event delivered before Flush")
	}
	p.Flush()
	if len(c.evs) != 1 || !reflect.DeepEqual(c.evs[0], ev) {
		t.Fatalf("flush: %+v", c.evs)
	}
	p.Flush()
	if len(c.evs) != 1 {
		t.Fatalf("Flush not idempotent")
	}
	st := p.Stats()
	if st.EventsIn != 1 || st.EventsOut != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Config
		err  bool
	}{
		{in: "off", want: Config{}},
		{in: "", want: Config{}},
		{in: "rv64", want: Config{RV64: true, Rules: AllRules}},
		{in: "a64", want: Config{A64: true, Rules: AllRules}},
		{in: "both", want: Config{RV64: true, A64: true, Rules: AllRules}},
		{in: "rv64:loadpair,slliadd",
			want: Config{RV64: true, Rules: 1<<RuleLoadPair | 1<<RuleSlliAdd}},
		{in: "both:cmpbranch", want: Config{RV64: true, A64: true, Rules: 1 << RuleCmpBranch}},
		{in: "off:loadpair", err: true},
		{in: "riscv", err: true},
		{in: "rv64:frobnicate", err: true},
		{in: "rv64:", err: true},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// Round trip through Spec.
		back, err := ParseSpec(got.Spec())
		if err != nil || back != got {
			t.Errorf("Spec round trip for %q: %q -> %+v, %v", tc.in, got.Spec(), back, err)
		}
	}
	if (Config{}).Spec() != "off" {
		t.Errorf("zero config Spec = %q", Config{}.Spec())
	}
}

func TestRulesForArchGating(t *testing.T) {
	cfg := Config{RV64: true, A64: true, Rules: AllRules}
	rv := cfg.RulesFor(isa.RV64)
	if !rv.Has(RuleLoadPair) || !rv.Has(RuleSlliAdd) || rv.Has(RuleCmpBranch) {
		t.Fatalf("rv64 rule set: %b", rv)
	}
	a64 := cfg.RulesFor(isa.AArch64)
	if !a64.Has(RuleLoadPair) || !a64.Has(RuleCmpBranch) || a64.Has(RuleSlliAdd) {
		t.Fatalf("a64 rule set: %b", a64)
	}
	off := Config{}
	if off.Active(isa.RV64) || off.Active(isa.AArch64) || off.Enabled() {
		t.Fatalf("zero config must be inactive")
	}
	rvOnly := Config{RV64: true, Rules: AllRules}
	if rvOnly.Active(isa.AArch64) {
		t.Fatalf("rv64-scoped config active on a64")
	}
}

// TestDownstreamBatchDelivery pins that the pass uses the downstream
// batched path when available and never delivers empty batches.
func TestDownstreamBatchDelivery(t *testing.T) {
	var c capture
	p := NewPass(allRV, isa.RV64, &c)
	p.Events([]isa.Event{
		evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8),
		evLoad(0x104, isa.IntReg(6), isa.IntReg(10), 0x9000, 8),
		evLoad(0x108, isa.IntReg(7), isa.IntReg(10), 0xa000, 4),
	})
	if len(c.batches) != 1 || c.batches[0] != 1 || c.singles != 0 {
		t.Fatalf("batch delivery: batches=%v singles=%d", c.batches, c.singles)
	}
	// A batch that fuses entirely into the carry delivers nothing.
	var c2 capture
	q := NewPass(allRV, isa.RV64, &c2)
	q.Events([]isa.Event{evLoad(0x100, isa.IntReg(5), isa.IntReg(10), 0x8000, 8)})
	if len(c2.evs) != 0 || len(c2.batches) != 0 {
		t.Fatalf("empty batch delivered: %v", c2.batches)
	}
}
