package benchdb

import (
	"fmt"
	"math"
	"sort"
)

// Robust statistics over small benchmark samples. Benchmark rep times
// are contaminated by one-sided outliers (a preempted rep is slow,
// never fast), so the summary statistics here are median/MAD-based:
// a single wild rep moves them barely at all, where mean/stddev would
// be dragged by it.

// Median returns the sample median (0 for an empty sample).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the smallest sample value (0 for an empty sample).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// MAD returns the median absolute deviation from the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// madToSigma scales MAD to a standard-deviation-comparable spread for
// normally distributed samples (1/Φ⁻¹(3/4)).
const madToSigma = 1.4826

// RobustCV returns the MAD-based coefficient of variation,
// madToSigma·MAD/median — the relative spread of the sample,
// insensitive to outlier reps. 0 when the median is not positive.
func RobustCV(xs []float64) float64 {
	med := Median(xs)
	if med <= 0 {
		return 0
	}
	return madToSigma * MAD(xs) / med
}

// Series is the longitudinal view of one (schema, metric) pair across
// ledger entries, oldest first.
type Series struct {
	Schema string `json:"schema"`
	Metric string `json:"metric"`
	// Docs and Values are parallel: Docs[i] names the source document
	// of Values[i] ("" when the entry carried no document name).
	Docs   []string  `json:"docs"`
	Values []float64 `json:"values"`
	// Median and CV summarize the whole series; Latest is the newest
	// value and Trend its ratio to the series median (1.0 = flat,
	// >1 = the metric grew).
	Median float64 `json:"median"`
	CV     float64 `json:"cv"`
	Latest float64 `json:"latest"`
	Trend  float64 `json:"trend"`
}

// BuildSeries groups ledger entries into per-(schema family, metric)
// series, ordered by schema then metric. Schema versions collapse
// into one family series — a v1→v2 bump must not sever the metric's
// history.
func BuildSeries(entries []Entry) []Series {
	type key struct{ schema, metric string }
	idx := make(map[key]int)
	var out []Series
	for _, e := range entries {
		fam := SchemaFamily(e.Schema)
		metrics := make([]string, 0, len(e.Metrics))
		for m := range e.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			k := key{fam, m}
			i, ok := idx[k]
			if !ok {
				i = len(out)
				idx[k] = i
				out = append(out, Series{Schema: fam, Metric: m})
			}
			out[i].Docs = append(out[i].Docs, e.Doc)
			out[i].Values = append(out[i].Values, e.Metrics[m])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Metric < out[j].Metric
	})
	for i := range out {
		s := &out[i]
		s.Median = Median(s.Values)
		s.CV = RobustCV(s.Values)
		s.Latest = s.Values[len(s.Values)-1]
		if s.Median > 0 {
			s.Trend = s.Latest / s.Median
		}
	}
	return out
}

// NoiseDriftTolerance is how far the fresh noise-probe median may
// move from the baseline's before the host is judged to have drifted
// (frequency scaling, thermal throttling, a co-tenant): the probe
// workload is byte-identical across runs, so a >10% shift cannot be
// a property of the code under test.
const NoiseDriftTolerance = 1.10

// Drift classifies why two documents are (or are not) comparable.
type Drift struct {
	// Kind is one of "none" (same host, quiet), "fingerprint" (host
	// identity changed), "noise" (same identity, probe shifted), or
	// "unknown" (a side predates fingerprints/probes).
	Kind string `json:"kind"`
	// Detail is the human diagnosis.
	Detail string `json:"detail"`
}

// HostDrifted reports whether the drift kind indicts the host rather
// than the code.
func (d Drift) HostDrifted() bool { return d.Kind == "fingerprint" || d.Kind == "noise" }

// DetectDrift distinguishes host drift from a clean comparison: a
// fingerprint identity mismatch is drift outright; with identical
// fingerprints, a noise-probe median shifted beyond
// NoiseDriftTolerance (either direction) is drift of the host's
// effective speed. Only a same-fingerprint, stable-probe pair earns
// "none" — the precondition under which a regressed metric indicts
// the code.
func DetectDrift(baseFP, freshFP *Fingerprint, baseNoise, freshNoise *Probe) Drift {
	same, known := SameHost(baseFP, freshFP)
	if !known {
		return Drift{Kind: "unknown", Detail: "a document predates host fingerprints; drift cannot be ruled out"}
	}
	if !same {
		return Drift{
			Kind:   "fingerprint",
			Detail: fmt.Sprintf("host fingerprint changed: baseline %q vs fresh %q", baseFP.Key(), freshFP.Key()),
		}
	}
	if baseNoise == nil || freshNoise == nil {
		return Drift{Kind: "unknown", Detail: "a document carries no noise probe; probe drift cannot be ruled out"}
	}
	if baseNoise.MedianSeconds > 0 {
		ratio := freshNoise.MedianSeconds / baseNoise.MedianSeconds
		if ratio > NoiseDriftTolerance || ratio < 1/NoiseDriftTolerance {
			return Drift{
				Kind: "noise",
				Detail: fmt.Sprintf("noise-probe median moved %.1f%% (%.4fs → %.4fs) on an identical workload: the host's effective speed changed",
					(ratio-1)*100, baseNoise.MedianSeconds, freshNoise.MedianSeconds),
			}
		}
	}
	return Drift{Kind: "none", Detail: "same fingerprint, stable noise probe"}
}
