package benchdb

import "time"

// The noise probe is a short calibrated spin loop: a fixed,
// deterministic amount of pure-CPU work timed a handful of times.
// Its absolute wall time tracks the host's effective single-thread
// speed (frequency scaling, thermal state) and its dispersion tracks
// the host's current measurement noise (preemption, co-tenants).
// Because the work is identical in every run of every benchmark, a
// shift in the probe median between two documents is host drift by
// construction — the code under test never touches the probe.

const (
	// probeIters is the spin-loop trip count: ~1–3 ms per rep on
	// contemporary hardware — long enough to ride over timer and
	// scheduler granularity, short enough that a full probe
	// (DefaultProbeReps reps plus warmup) costs ~10–20 ms and stays
	// well under the 1% overhead budget of a seconds-long bench run
	// (BENCH_PR10 pins this).
	probeIters = 1 << 20
	// DefaultProbeReps is how many timed reps writers use (plus one
	// untimed warmup).
	DefaultProbeReps = 5
)

// Probe is the recorded noise-probe result.
type Probe struct {
	// Reps is how many timed spin-loop reps were taken.
	Reps int `json:"reps"`
	// MedianSeconds and MinSeconds summarize the rep wall times. The
	// median is the drift signal; the min is the "quiet host" floor.
	MedianSeconds float64 `json:"median_seconds"`
	MinSeconds    float64 `json:"min_seconds"`
	// CV is the robust coefficient of variation of the rep times
	// (1.4826·MAD/median): the host's current relative measurement
	// noise. Noise-aware gates widen their tolerance with it.
	CV float64 `json:"cv"`
}

// probeSink defeats dead-code elimination of the spin loop.
var probeSink uint64

// spin runs the fixed xorshift64 workload once.
func spin() {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < probeIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	probeSink = x
}

// RunProbe times the calibrated spin loop reps times (after one
// warmup) and returns the dispersion summary. reps <= 0 uses
// DefaultProbeReps.
func RunProbe(reps int) *Probe {
	if reps <= 0 {
		reps = DefaultProbeReps
	}
	spin() // warmup: fault in code, settle frequency
	times := make([]float64, reps)
	for i := range times {
		start := time.Now()
		spin()
		times[i] = time.Since(start).Seconds()
	}
	return &Probe{
		Reps:          reps,
		MedianSeconds: Median(times),
		MinSeconds:    Min(times),
		CV:            RobustCV(times),
	}
}
