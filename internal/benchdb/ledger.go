package benchdb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"

	"isacmp/internal/durable"
)

// LedgerSchema versions the ledger record format. A reader that sees
// a different schema string must refuse the record rather than guess.
const LedgerSchema = "isacmp/benchdb/v1"

// DefaultLedgerPath is where bench writers append by default: one
// JSONL ledger per working tree, next to the committed BENCH_*.json
// documents it summarizes. Gitignored — the ledger is longitudinal
// local history; the committed documents are the curated trajectory.
const DefaultLedgerPath = "BENCHDB.jsonl"

// Entry is one ledger line: the flattened scalar metrics of one
// benchmark document plus its measurement provenance. Sum is a
// CRC-32 (IEEE) over the entry marshaled with Sum set to zero —
// the same torn/bit-flip detection contract as the cell journal.
type Entry struct {
	V   string `json:"v"`
	Seq int    `json:"seq"`
	// Time is the append wall-clock time (RFC3339, UTC). Provenance
	// only — no analysis depends on it.
	Time string `json:"time,omitempty"`
	// Schema is the source document's schema string (e.g.
	// "isacmp/bench-matrix/v2") and Doc its file name (e.g.
	// "BENCH_PR2.json", "" for uncommitted scratch runs).
	Schema string `json:"schema"`
	Doc    string `json:"doc,omitempty"`
	// Metrics are the document's top-level numeric fields and Flags
	// its boolean invariants, both keyed by field name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Flags   map[string]bool    `json:"flags,omitempty"`
	// Fingerprint and Noise are the measurement provenance carried by
	// v2 documents (nil when replaying a legacy v1 document).
	Fingerprint *Fingerprint `json:"fingerprint,omitempty"`
	Noise       *Probe       `json:"noise,omitempty"`
	Sum         uint32       `json:"sum"`
}

// checksum computes the entry's CRC with Sum zeroed. json.Marshal
// emits map keys sorted, so the checksum is deterministic for a given
// entry value.
func (e *Entry) checksum() (uint32, error) {
	saved := e.Sum
	e.Sum = 0
	data, err := json.Marshal(e)
	e.Sum = saved
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(data), nil
}

// SchemaFamily strips a trailing "/vN" version suffix: both
// "isacmp/bench-matrix/v1" and ".../v2" belong to family
// "isacmp/bench-matrix". Gates and series match by family so a schema
// version bump neither severs a metric's history nor lets a document
// escape its rules.
func SchemaFamily(schema string) string {
	i := strings.LastIndex(schema, "/v")
	if i < 0 {
		return schema
	}
	suffix := schema[i+2:]
	if suffix == "" {
		return schema
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return schema
		}
	}
	return schema[:i]
}

// EntryFromDoc flattens a generic benchmark document into a ledger
// entry: top-level numbers become Metrics, top-level booleans become
// Flags, and the fingerprint/noise blocks (when present) are decoded
// into their typed form. docName is recorded as the entry's Doc.
func EntryFromDoc(doc map[string]any, docName string) Entry {
	e := Entry{Doc: docName}
	e.Schema, _ = doc["schema"].(string)
	for k, v := range doc {
		switch val := v.(type) {
		case float64:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[k] = val
		case bool:
			if e.Flags == nil {
				e.Flags = make(map[string]bool)
			}
			e.Flags[k] = val
		}
	}
	if raw, ok := doc["fingerprint"]; ok {
		if data, err := json.Marshal(raw); err == nil {
			fp := new(Fingerprint)
			if json.Unmarshal(data, fp) == nil {
				e.Fingerprint = fp
			}
		}
	}
	if raw, ok := doc["noise"]; ok {
		if data, err := json.Marshal(raw); err == nil {
			p := new(Probe)
			if json.Unmarshal(data, p) == nil {
				e.Noise = p
			}
		}
	}
	return e
}

// Ledger is the append side of the performance log. Append is
// serialized and fsyncs each entry before returning (unless opened
// with NoSync), so an acknowledged entry survives a SIGKILL
// immediately after — the same durability contract as the cell
// journal, via the same open/write path.
type Ledger struct {
	mu   sync.Mutex
	path string
	f    durable.File
	seq  int
}

// Open replays the ledger at path (creating it if absent) and opens
// it for appending after the last valid entry. A torn final line is
// tolerated exactly as in the cell journal; mid-file corruption is an
// error. The replayed entries are returned so callers can serve
// history without a second read.
func Open(path string, opts *durable.Options) (*Ledger, []Entry, error) {
	entries, _, err := Replay(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := durable.OpenAppendFile(path, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("benchdb: open ledger %s: %w", path, err)
	}
	seq := 0
	if n := len(entries); n > 0 {
		seq = entries[n-1].Seq + 1
	}
	if opts != nil && opts.NoSync {
		return &Ledger{path: path, f: nosyncFile{f}, seq: seq}, entries, nil
	}
	return &Ledger{path: path, f: f, seq: seq}, entries, nil
}

// nosyncFile drops Sync for benchmark runs that isolate encoding cost
// from disk cost.
type nosyncFile struct{ durable.File }

func (nosyncFile) Sync() error { return nil }

// Append fills in the schema version, sequence number and checksum,
// writes the entry as one JSONL line and fsyncs it.
func (l *Ledger) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.V = LedgerSchema
	e.Seq = l.seq
	sum, err := (&e).checksum()
	if err != nil {
		return fmt.Errorf("benchdb: ledger encode: %w", err)
	}
	e.Sum = sum
	line, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("benchdb: ledger encode: %w", err)
	}
	line = append(line, '\n')
	if n, err := l.f.Write(line); err != nil {
		return fmt.Errorf("benchdb: ledger append: %w", err)
	} else if n != len(line) {
		return fmt.Errorf("benchdb: ledger append: short write (%d of %d bytes)", n, len(line))
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("benchdb: ledger sync: %w", err)
	}
	l.seq++
	return nil
}

// Path returns the ledger file location.
func (l *Ledger) Path() string { return l.path }

// Close closes the underlying file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay reads and verifies a ledger file. A missing file replays as
// empty. tornTail reports whether a torn final line was tolerated.
func Replay(path string) (entries []Entry, tornTail bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("benchdb: read ledger: %w", err)
	}
	return ReplayData(data)
}

// ReplayData replays ledger bytes under the journal's torn-tail rule:
// a final line that fails to parse or checksum is tolerated (the
// process died mid-append), but a bad line followed by further valid
// entries is mid-file corruption and an error — silently skipping it
// could erase history. Never panics on any input
// (FuzzBenchLedgerReplay pins this).
func ReplayData(data []byte) (entries []Entry, tornTail bool, err error) {
	lines := bytes.Split(data, []byte{'\n'})
	wantSeq := -1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		e := new(Entry)
		bad, torn := "", true
		if uerr := json.Unmarshal(line, e); uerr != nil {
			bad = fmt.Sprintf("parse: %v", uerr)
		} else if e.V != LedgerSchema {
			bad = fmt.Sprintf("schema %q (want %q)", e.V, LedgerSchema)
		} else if sum, cerr := e.checksum(); cerr != nil || sum != e.Sum {
			bad = fmt.Sprintf("checksum %08x (want %08x)", e.Sum, sum)
		} else if wantSeq >= 0 && e.Seq <= wantSeq {
			// A checksummed entry with a stale sequence cannot come
			// from a crash mid-append (the checksum covers Seq): it is
			// corruption wherever it sits, never a tolerated tear.
			bad, torn = fmt.Sprintf("sequence %d not after %d", e.Seq, wantSeq), false
		}
		if bad != "" {
			if torn && ledgerTailOnly(lines[i+1:]) {
				return entries, true, nil
			}
			return nil, false, fmt.Errorf("benchdb: ledger entry %d: %s (ledger is corrupt, not torn)", len(entries), bad)
		}
		wantSeq = e.Seq
		entries = append(entries, *e)
	}
	return entries, false, nil
}

// ledgerTailOnly reports whether the remaining lines hold no further
// valid entry — the condition under which a bad line is a tolerated
// torn tail rather than mid-file corruption.
func ledgerTailOnly(rest [][]byte) bool {
	for _, line := range rest {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		e := new(Entry)
		if json.Unmarshal(line, e) != nil {
			continue
		}
		if e.V != LedgerSchema {
			continue
		}
		if sum, err := e.checksum(); err == nil && sum == e.Sum {
			return false
		}
	}
	return true
}

// Compact rewrites the ledger to exactly the surviving entries of a
// replay, re-sequenced from zero, dropping any torn tail. The rewrite
// goes through WriteFileAtomic so a crash during compaction leaves
// the previous ledger intact. Returns the next sequence number.
func Compact(path string, entries []Entry) (int, error) {
	var buf bytes.Buffer
	for seq := range entries {
		e := entries[seq] // copy: renumbering must not alias caller state
		e.V = LedgerSchema
		e.Seq = seq
		sum, err := (&e).checksum()
		if err != nil {
			return 0, fmt.Errorf("benchdb: ledger compact: %w", err)
		}
		e.Sum = sum
		line, err := json.Marshal(&e)
		if err != nil {
			return 0, fmt.Errorf("benchdb: ledger compact: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := durable.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
		return 0, fmt.Errorf("benchdb: ledger compact: %w", err)
	}
	return len(entries), nil
}
