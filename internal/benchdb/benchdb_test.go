package benchdb

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isacmp/internal/durable"
)

func TestMedianMADCV(t *testing.T) {
	cases := []struct {
		name   string
		xs     []float64
		median float64
		mad    float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3}, 3, 0},
		{"odd", []float64{5, 1, 3}, 3, 2},
		{"even", []float64{1, 2, 3, 4}, 2.5, 1},
		{"outlier", []float64{10, 10, 10, 10, 1000}, 10, 0},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.median {
			t.Errorf("%s: Median = %v, want %v", c.name, got, c.median)
		}
		if got := MAD(c.xs); got != c.mad {
			t.Errorf("%s: MAD = %v, want %v", c.name, got, c.mad)
		}
	}
	// The robust CV must shrug off the outlier the classic CV would be
	// dragged by.
	if cv := RobustCV([]float64{10, 10, 10, 10, 1000}); cv != 0 {
		t.Errorf("RobustCV with single outlier = %v, want 0", cv)
	}
	want := madToSigma * 1 / 2.5
	if cv := RobustCV([]float64{1, 2, 3, 4}); math.Abs(cv-want) > 1e-12 {
		t.Errorf("RobustCV = %v, want %v", cv, want)
	}
	if cv := RobustCV([]float64{-1, -2}); cv != 0 {
		t.Errorf("RobustCV of non-positive median = %v, want 0", cv)
	}
	if got := Min([]float64{3, 1, 2}); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
}

func TestSchemaFamily(t *testing.T) {
	cases := map[string]string{
		"isacmp/bench-matrix/v1":    "isacmp/bench-matrix",
		"isacmp/bench-matrix/v2":    "isacmp/bench-matrix",
		"isacmp/scaling-report/v12": "isacmp/scaling-report",
		"isacmp/bench-matrix":       "isacmp/bench-matrix",
		"isacmp/bench-matrix/vx":    "isacmp/bench-matrix/vx",
		"isacmp/bench-matrix/v":     "isacmp/bench-matrix/v",
		"":                          "",
	}
	for in, want := range cases {
		if got := SchemaFamily(in); got != want {
			t.Errorf("SchemaFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFingerprintKeyExcludesLoad(t *testing.T) {
	a := &Fingerprint{CPUModel: "m", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22", OS: "linux", Arch: "amd64", Governor: "performance", LoadAvg: 0.1}
	b := *a
	b.LoadAvg = 7.5
	if same, known := SameHost(a, &b); !known || !same {
		t.Fatalf("SameHost ignoring load: same=%v known=%v, want true/true", same, known)
	}
	b.Governor = "powersave"
	if same, known := SameHost(a, &b); !known || same {
		t.Fatalf("SameHost across governors: same=%v known=%v, want false/true", same, known)
	}
	if same, known := SameHost(a, nil); known || same {
		t.Fatalf("SameHost vs nil: same=%v known=%v, want false/false", same, known)
	}
}

func TestCollectFromFixtures(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	savedCPU, savedGov, savedLoad := cpuinfoPath, governorPath, loadavgPath
	defer func() { cpuinfoPath, governorPath, loadavgPath = savedCPU, savedGov, savedLoad }()
	cpuinfoPath = write("cpuinfo", "processor\t: 0\nmodel name\t: Example CPU @ 3.00GHz\nflags\t: fpu\n")
	governorPath = write("governor", "schedutil\n")
	loadavgPath = write("loadavg", "1.25 0.80 0.40 2/345 6789\n")
	fp := Collect()
	if fp.CPUModel != "Example CPU @ 3.00GHz" {
		t.Errorf("CPUModel = %q", fp.CPUModel)
	}
	if fp.Governor != "schedutil" {
		t.Errorf("Governor = %q", fp.Governor)
	}
	if fp.LoadAvg != 1.25 {
		t.Errorf("LoadAvg = %v", fp.LoadAvg)
	}
	if fp.NumCPU <= 0 || fp.GOMAXPROCS <= 0 || fp.GoVersion == "" {
		t.Errorf("core identity incomplete: %+v", fp)
	}
	// Missing files must degrade, never fail.
	cpuinfoPath = filepath.Join(dir, "missing")
	governorPath = filepath.Join(dir, "missing")
	loadavgPath = filepath.Join(dir, "missing")
	fp = Collect()
	if fp.CPUModel != "" || fp.Governor != "" || fp.LoadAvg != 0 {
		t.Errorf("missing sources should zero optional fields: %+v", fp)
	}
}

func TestRunProbe(t *testing.T) {
	p := RunProbe(3)
	if p.Reps != 3 {
		t.Fatalf("Reps = %d", p.Reps)
	}
	if p.MedianSeconds <= 0 || p.MinSeconds <= 0 || p.MinSeconds > p.MedianSeconds {
		t.Fatalf("implausible probe: %+v", p)
	}
	if p.CV < 0 {
		t.Fatalf("negative CV: %+v", p)
	}
	if d := RunProbe(0); d.Reps != DefaultProbeReps {
		t.Fatalf("default reps = %d, want %d", d.Reps, DefaultProbeReps)
	}
}

func TestLedgerAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, entries, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh ledger replayed %d entries", len(entries))
	}
	fp := Collect()
	for i, schema := range []string{"isacmp/bench-matrix/v2", "isacmp/bench-obs/v2"} {
		e := Entry{
			Time:        "2026-08-08T00:00:00Z",
			Schema:      schema,
			Doc:         "BENCH_TEST.json",
			Metrics:     map[string]float64{"sequential_seconds": 1.5 + float64(i)},
			Flags:       map[string]bool{"identical": true},
			Fingerprint: fp,
			Noise:       &Probe{Reps: 3, MedianSeconds: 0.002, MinSeconds: 0.0019, CV: 0.01},
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Replay(path)
	if err != nil || torn {
		t.Fatalf("Replay: torn=%v err=%v", torn, err)
	}
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("replayed %+v", got)
	}
	if got[1].Metrics["sequential_seconds"] != 2.5 || !got[0].Flags["identical"] {
		t.Fatalf("payload mismatch: %+v", got)
	}
	if got[0].Fingerprint == nil || got[0].Fingerprint.Key() != fp.Key() {
		t.Fatalf("fingerprint did not round-trip: %+v", got[0].Fingerprint)
	}

	// Re-open continues the sequence.
	l2, entries, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("re-open replayed %d entries", len(entries))
	}
	if err := l2.Append(Entry{Schema: "isacmp/bench-matrix/v2"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got, _, err = Replay(path)
	if err != nil || len(got) != 3 || got[2].Seq != 2 {
		t.Fatalf("continued replay: %+v err=%v", got, err)
	}
}

func TestLedgerTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Entry{Schema: "isacmp/bench-matrix/v2", Metrics: map[string]float64{"x": float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final line mid-record.
	torn := data[:len(data)-10]
	entries, tornTail, err := ReplayData(torn)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if !tornTail || len(entries) != 2 {
		t.Fatalf("tornTail=%v entries=%d, want true/2", tornTail, len(entries))
	}

	// The same tear mid-file is corruption, not a tolerated tear.
	lines := bytes.SplitAfter(data, []byte{'\n'})
	corrupt := append(append([]byte{}, lines[0][:len(lines[0])-10]...), '\n')
	corrupt = append(corrupt, lines[1]...)
	corrupt = append(corrupt, lines[2]...)
	if _, _, err := ReplayData(corrupt); err == nil {
		t.Fatal("mid-file corruption must be an error")
	}

	// A stale sequence number is corruption even at the tail.
	dup := append(append([]byte{}, data...), lines[0]...)
	if _, _, err := ReplayData(dup); err == nil {
		t.Fatal("stale sequence must be an error")
	}

	// Compact drops the tear and renumbers.
	if _, err := Compact(path, entries); err != nil {
		t.Fatal(err)
	}
	got, tornTail, err := Replay(path)
	if err != nil || tornTail || len(got) != 2 {
		t.Fatalf("post-compact: entries=%d torn=%v err=%v", len(got), tornTail, err)
	}
}

func TestLedgerNoSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, _, err := Open(path, &durable.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Schema: "isacmp/bench-matrix/v2"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if entries, _, err := Replay(path); err != nil || len(entries) != 1 {
		t.Fatalf("nosync replay: %v %v", entries, err)
	}
}

func TestEntryFromDoc(t *testing.T) {
	raw := `{
		"schema": "isacmp/bench-matrix/v2",
		"scale": "small",
		"sequential_seconds": 12.5,
		"workers": 8,
		"identical": true,
		"rows": [{"ignored": 1}],
		"fingerprint": {"cpu_model": "Example CPU", "num_cpu": 8, "gomaxprocs": 8, "go_version": "go1.22", "os": "linux", "arch": "amd64"},
		"noise": {"reps": 7, "median_seconds": 0.002, "min_seconds": 0.0019, "cv": 0.015}
	}`
	var doc map[string]any
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatal(err)
	}
	e := EntryFromDoc(doc, "BENCH_PR2.json")
	if e.Schema != "isacmp/bench-matrix/v2" || e.Doc != "BENCH_PR2.json" {
		t.Fatalf("identity: %+v", e)
	}
	if e.Metrics["sequential_seconds"] != 12.5 || e.Metrics["workers"] != 8 {
		t.Fatalf("metrics: %+v", e.Metrics)
	}
	if _, ok := e.Metrics["scale"]; ok {
		t.Fatal("string field leaked into metrics")
	}
	if !e.Flags["identical"] {
		t.Fatalf("flags: %+v", e.Flags)
	}
	if e.Fingerprint == nil || e.Fingerprint.CPUModel != "Example CPU" {
		t.Fatalf("fingerprint: %+v", e.Fingerprint)
	}
	if e.Noise == nil || e.Noise.CV != 0.015 {
		t.Fatalf("noise: %+v", e.Noise)
	}
}

func TestBuildSeries(t *testing.T) {
	entries := []Entry{
		{Schema: "isacmp/bench-matrix/v1", Doc: "BENCH_PR2.json", Metrics: map[string]float64{"sequential_seconds": 10, "parallel_seconds": 4}},
		{Schema: "isacmp/bench-matrix/v2", Doc: "BENCH_PR2b.json", Metrics: map[string]float64{"sequential_seconds": 12}},
		{Schema: "isacmp/bench-obs/v2", Doc: "BENCH_PR5.json", Metrics: map[string]float64{"overhead_percent": 0.5}},
	}
	series := BuildSeries(entries)
	if len(series) != 3 {
		t.Fatalf("series count = %d: %+v", len(series), series)
	}
	// v1 and v2 collapse into one family series, in schema/metric order.
	var seq *Series
	for i := range series {
		if series[i].Schema == "isacmp/bench-matrix" && series[i].Metric == "sequential_seconds" {
			seq = &series[i]
		}
	}
	if seq == nil {
		t.Fatalf("no family series: %+v", series)
	}
	if len(seq.Values) != 2 || seq.Values[0] != 10 || seq.Values[1] != 12 {
		t.Fatalf("values: %+v", seq)
	}
	if seq.Median != 11 || seq.Latest != 12 || math.Abs(seq.Trend-12.0/11.0) > 1e-12 {
		t.Fatalf("summary: %+v", seq)
	}
	if seq.Docs[1] != "BENCH_PR2b.json" {
		t.Fatalf("docs: %+v", seq.Docs)
	}
}

func TestDetectDrift(t *testing.T) {
	fpA := &Fingerprint{CPUModel: "m", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22", OS: "linux", Arch: "amd64"}
	fpB := &Fingerprint{CPUModel: "m", NumCPU: 4, GOMAXPROCS: 4, GoVersion: "go1.22", OS: "linux", Arch: "amd64"}
	quiet := &Probe{Reps: 7, MedianSeconds: 0.0020, CV: 0.01}
	slowed := &Probe{Reps: 7, MedianSeconds: 0.0030, CV: 0.01}

	if d := DetectDrift(nil, fpA, quiet, quiet); d.Kind != "unknown" {
		t.Errorf("nil baseline fingerprint: %+v", d)
	}
	if d := DetectDrift(fpA, fpB, quiet, quiet); d.Kind != "fingerprint" || !d.HostDrifted() {
		t.Errorf("fingerprint mismatch: %+v", d)
	}
	if d := DetectDrift(fpA, fpA, quiet, slowed); d.Kind != "noise" || !d.HostDrifted() {
		t.Errorf("probe shift: %+v", d)
	}
	if d := DetectDrift(fpA, fpA, quiet, nil); d.Kind != "unknown" || d.HostDrifted() {
		t.Errorf("missing probe: %+v", d)
	}
	if d := DetectDrift(fpA, fpA, quiet, &Probe{MedianSeconds: 0.00205, CV: 0.01}); d.Kind != "none" || d.HostDrifted() {
		t.Errorf("stable pair: %+v", d)
	}
	if !strings.Contains(DetectDrift(fpA, fpB, quiet, quiet).Detail, "fingerprint changed") {
		t.Error("fingerprint drift detail should name the cause")
	}
}
