// Package benchdb is the benchmark observatory: an append-only,
// crash-safe performance ledger that every bench writer appends to,
// plus the host-fingerprint and noise-probe provenance that makes a
// recorded number auditable. The paper's headline claims are ratio
// measurements; this package is the controlled measurement around
// them — it records *where* a number was measured (fingerprint),
// *how noisy* the host was at the time (probe), and keeps the whole
// longitudinal trajectory replayable after a crash (ledger).
package benchdb

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Fingerprint identifies the measurement host. Two documents whose
// fingerprints differ on any identity field were measured on
// different effective hardware and must not be ratio-compared: the
// difference is host drift, not code regression. LoadAvg is recorded
// for diagnosis but excluded from the identity key — load varies
// within a host; it explains noise, it does not change the host.
type Fingerprint struct {
	// CPUModel is the `model name` line from /proc/cpuinfo ("" when
	// unreadable, e.g. non-Linux).
	CPUModel string `json:"cpu_model,omitempty"`
	// NumCPU and GOMAXPROCS bound the parallelism the measurement saw.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// GoVersion is the toolchain that compiled the measuring binary.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Governor is the cpu0 cpufreq scaling governor ("" when the
	// sysfs file is absent — VMs, containers, non-Linux).
	Governor string `json:"governor,omitempty"`
	// LoadAvg is the 1-minute load average at collection time.
	// Diagnostic only: excluded from Key.
	LoadAvg float64 `json:"load_avg,omitempty"`
}

// Linux provenance sources. Variables so tests can point them at
// fixtures.
var (
	cpuinfoPath  = "/proc/cpuinfo"
	governorPath = "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"
	loadavgPath  = "/proc/loadavg"
)

// Collect gathers the current host fingerprint. Every Linux-specific
// source degrades to its zero value when unreadable, so Collect never
// fails — a fingerprint with blank optional fields still carries the
// core identity (CPU count, toolchain, OS/arch).
func Collect() *Fingerprint {
	fp := &Fingerprint{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if data, err := os.ReadFile(cpuinfoPath); err == nil {
		fp.CPUModel = cpuModel(string(data))
	}
	if data, err := os.ReadFile(governorPath); err == nil {
		fp.Governor = strings.TrimSpace(string(data))
	}
	if data, err := os.ReadFile(loadavgPath); err == nil {
		if fields := strings.Fields(string(data)); len(fields) > 0 {
			if v, err := strconv.ParseFloat(fields[0], 64); err == nil {
				fp.LoadAvg = v
			}
		}
	}
	return fp
}

// cpuModel extracts the first `model name` value from /proc/cpuinfo
// content ("" when absent).
func cpuModel(cpuinfo string) string {
	for _, line := range strings.Split(cpuinfo, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		if strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// Key is the host identity string: every field that changes the
// meaning of a wall-time measurement, and nothing that merely varies
// within a host (LoadAvg). Two documents are ratio-comparable exactly
// when their keys are equal.
func (f *Fingerprint) Key() string {
	if f == nil {
		return ""
	}
	return fmt.Sprintf("%s|cpu=%d|gomaxprocs=%d|%s|%s/%s|gov=%s",
		f.CPUModel, f.NumCPU, f.GOMAXPROCS, f.GoVersion, f.OS, f.Arch, f.Governor)
}

// SameHost reports whether two fingerprints name the same effective
// host, and whether that judgment is even possible (known is false
// when either side predates fingerprints — legacy v1 documents).
func SameHost(a, b *Fingerprint) (same, known bool) {
	if a == nil || b == nil {
		return false, false
	}
	return a.Key() == b.Key(), true
}
