package benchdb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzBenchLedgerReplay pins the ledger replay contract on arbitrary
// bytes: never panic, and any accepted entries must re-serialize
// through Compact into a ledger that replays to the same count with
// no tear.
func FuzzBenchLedgerReplay(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.jsonl")
	l, _, err := Open(path, nil)
	if err != nil {
		f.Fatal(err)
	}
	l.Append(Entry{Schema: "isacmp/bench-matrix/v2", Metrics: map[string]float64{"sequential_seconds": 1.0}, Flags: map[string]bool{"identical": true}})
	l.Append(Entry{Schema: "isacmp/bench-obs/v2", Noise: &Probe{Reps: 7, MedianSeconds: 0.002, CV: 0.01}})
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-7]) // torn tail
	f.Add([]byte("{}\n"))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, _, err := ReplayData(data)
		if err != nil {
			return
		}
		out := filepath.Join(t.TempDir(), "compact.jsonl")
		next, err := Compact(out, entries)
		if err != nil {
			t.Fatalf("Compact of accepted entries failed: %v", err)
		}
		if next != len(entries) {
			t.Fatalf("Compact next seq = %d, want %d", next, len(entries))
		}
		again, torn, err := Replay(out)
		if err != nil || torn {
			t.Fatalf("compacted ledger must replay clean: torn=%v err=%v", torn, err)
		}
		if len(again) != len(entries) {
			t.Fatalf("compacted replay count = %d, want %d", len(again), len(entries))
		}
	})
}
