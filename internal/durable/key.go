package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// EngineVersion participates in every cache key so results computed
// by an older engine can never be served for a newer one. Bump it on
// any change that can alter a cell's canonical result bytes
// (analysis semantics, fusion rules, counter definitions, row
// schema).
const EngineVersion = "isacmp-engine/8"

// KeyInput is everything a cell's result depends on. Code is the
// compiled ELF image — hashing the bytes the machine actually loads
// (not the source) means a compiler change invalidates the cache
// automatically. Analysis and Fusion are canonical spec strings
// produced by the report layer; Parallel/StepLoop and other
// execution-strategy knobs are deliberately excluded because the PR 2
// byte-identity contract guarantees they cannot change the result.
type KeyInput struct {
	Engine   string
	Workload string
	Target   string
	Code     []byte
	Analysis string
	Fusion   string
}

// Hash returns the content address: a SHA-256 over the length-
// prefixed fields, hex-encoded. Length prefixes make the encoding
// injective — no concatenation of fields can collide with another
// split of the same bytes.
func (k KeyInput) Hash() string {
	h := sha256.New()
	field := func(b []byte) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	field([]byte(k.Engine))
	field([]byte(k.Workload))
	field([]byte(k.Target))
	field(k.Code)
	field([]byte(k.Analysis))
	field([]byte(k.Fusion))
	return hex.EncodeToString(h.Sum(nil))
}
