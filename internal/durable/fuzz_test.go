package durable

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournalReplay pins the replay contract on arbitrary bytes: it
// never panics, and when it accepts a journal the replayed state is
// internally consistent (every looked-up record round-trips its
// checksum, Records bounds the map sizes).
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed journal, a torn tail, and junk.
	var buf bytes.Buffer
	seq := 0
	add := func(rec Record) {
		rec.V = JournalSchema
		rec.Seq = seq
		sum, _ := (&rec).checksum()
		rec.Sum = sum
		line, _ := json.Marshal(&rec)
		buf.Write(line)
		buf.WriteByte('\n')
		seq++
	}
	add(Record{Type: RecStarted, Workload: "lbm", Target: "rv64", Hash: "h"})
	add(Record{Type: RecFinished, Workload: "lbm", Target: "rv64", Hash: "h", Payload: json.RawMessage(`{"a":1}`)})
	add(Record{Type: RecComplete})
	whole := buf.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)-9])
	f.Add([]byte(`{"v":"isacmp/journal/v1"`))
	f.Add([]byte("not json at all\n\x00\xff"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := ReplayData(data)
		if err != nil {
			return
		}
		if rp == nil {
			t.Fatal("nil replay with nil error")
		}
		if len(rp.Finished)+len(rp.Failed) > rp.Records {
			t.Fatalf("more terminal cells (%d+%d) than records (%d)",
				len(rp.Finished), len(rp.Failed), rp.Records)
		}
		for k, rec := range rp.Finished {
			if rec.Type != RecFinished {
				t.Fatalf("finished map holds %q", rec.Type)
			}
			if sum, err := rec.checksum(); err != nil || sum != rec.Sum {
				t.Fatalf("accepted record %q fails its own checksum", k)
			}
		}
	})
}
