package durable

import (
	"encoding/json"
	"sync"
)

// Stats summarizes what durability did for a run; the manifest and
// /statusz surface it so a resumed run shows resumed-vs-computed
// counts.
type Stats struct {
	// Dir is the run directory holding journal and cache.
	Dir string `json:"dir"`
	// Resumed counts cells served verbatim from the replayed journal.
	Resumed int `json:"resumed_cells"`
	// Cached counts cells served from the content-addressed cache.
	Cached int `json:"cached_cells"`
	// Computed counts cells actually simulated this run.
	Computed int `json:"computed_cells"`
	// FailedReplayed counts journaled terminal failures replayed
	// verbatim (included in Resumed).
	FailedReplayed int `json:"failed_replayed,omitempty"`
	// Records is the number of valid journal records replayed at
	// open.
	Records int `json:"journal_records"`
	// TornTail is true when resume tolerated a torn final journal
	// record.
	TornTail bool `json:"torn_tail,omitempty"`
	// HashMismatches counts journal records whose content hash no
	// longer matched the cell's inputs (cell re-ran).
	HashMismatches int `json:"hash_mismatches,omitempty"`
	// IOErrors counts journal/cache write failures that were survived
	// (result kept, durability lost).
	IOErrors int `json:"io_errors,omitempty"`
}

// Hit is a durable lookup result.
type Hit struct {
	// Payload is the canonical result bytes (row JSON for finished
	// cells, attempt-history JSON for failed ones).
	Payload json.RawMessage
	// Source is "journal" or "cache".
	Source string
	// Failed marks a journaled terminal failure replayed verbatim.
	Failed bool
}

// Run is a durable run handle: one journal, one cache, one stats
// block. All methods are safe for concurrent use by pool workers.
type Run struct {
	mu      sync.Mutex
	dir     string
	journal *Journal
	cache   *Cache
	replay  *Replay
	stats   Stats
	// Warn receives non-fatal durability diagnostics (hash
	// mismatches, survived I/O errors). Nil means silent.
	Warn func(format string, args ...any)
}

// Open creates (or reuses) a run directory for a fresh run: the
// journal starts empty — an existing journal is compacted away by
// truncation — but the content cache persists, so identical cells
// are served from cache even on a non-resumed run.
func Open(dir string, opts *Options) (*Run, error) {
	cache, err := OpenCache(CachePath(dir))
	if err != nil {
		return nil, err
	}
	if err := WriteFileAtomic(JournalPath(dir), nil, 0o644); err != nil {
		return nil, err
	}
	j, err := OpenJournal(dir, 0, opts)
	if err != nil {
		return nil, err
	}
	return &Run{dir: dir, journal: j, cache: cache, stats: Stats{Dir: dir}}, nil
}

// Resume replays an existing run directory's journal (tolerating a
// torn tail), compacts it in place, and returns a handle that serves
// replayed cells from the journal and appends new records after it.
func Resume(dir string, opts *Options) (*Run, error) {
	rp, err := ReplayJournal(dir)
	if err != nil {
		return nil, err
	}
	next, err := Compact(dir, rp)
	if err != nil {
		return nil, err
	}
	cache, err := OpenCache(CachePath(dir))
	if err != nil {
		return nil, err
	}
	j, err := OpenJournal(dir, next, opts)
	if err != nil {
		return nil, err
	}
	return &Run{dir: dir, journal: j, cache: cache, replay: rp,
		stats: Stats{Dir: dir, Records: rp.Records, TornTail: rp.TornTail}}, nil
}

// Dir returns the run directory.
func (r *Run) Dir() string { return r.dir }

// Resumed reports whether this handle replayed a prior journal.
func (r *Run) Resumed() bool { return r.replay != nil }

func (r *Run) warnf(format string, args ...any) {
	if r.Warn != nil {
		r.Warn(format, args...)
	}
}

// Lookup serves a cell without simulation if it can: first from the
// replayed journal (verifying the stored content hash still matches
// the cell's inputs — a mismatch means the workload, spec or engine
// changed, so the record is discarded with a warning and the cell
// re-runs), then from the content cache. Returns nil when the cell
// must be computed.
func (r *Run) Lookup(workload, target, hash string) *Hit {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replay != nil {
		if rec := r.replay.Lookup(workload, target); rec != nil {
			if rec.Hash == hash {
				r.stats.Resumed++
				failed := rec.Type == RecFailed
				if failed {
					r.stats.FailedReplayed++
				}
				return &Hit{Payload: rec.Payload, Source: "journal", Failed: failed}
			}
			r.stats.HashMismatches++
			r.warnf("durable: %s/%s: journal hash %.12s does not match inputs %.12s — re-running cell",
				workload, target, rec.Hash, hash)
		}
	}
	if payload, ok := r.cache.Get(hash); ok {
		r.stats.Cached++
		return &Hit{Payload: payload, Source: "cache"}
	}
	return nil
}

// CellStarted journals that a worker picked up the cell. A journal
// that ends after a cell-started with no terminal record is exactly
// what resume re-enqueues.
func (r *Run) CellStarted(workload, target, hash string) {
	r.append(Record{Type: RecStarted, Workload: workload, Target: target, Hash: hash})
}

// CellFinished journals the cell's canonical result and files it in
// the content cache. fromCache marks a cell served by Lookup from the
// cache (journaled so a resume of this run replays it, but not
// re-Put, and counted as cached rather than computed).
func (r *Run) CellFinished(workload, target, hash string, payload []byte, fromCache bool) {
	r.append(Record{Type: RecFinished, Workload: workload, Target: target, Hash: hash, Payload: payload})
	if !fromCache {
		if err := r.cache.Put(hash, payload); err != nil {
			r.ioError("durable: %s/%s: cache put: %v", workload, target, err)
		}
	}
	r.mu.Lock()
	if fromCache {
		// already counted by Lookup
	} else {
		r.stats.Computed++
	}
	r.mu.Unlock()
}

// CellFailed journals a terminal (non-cancelled) cell failure with
// its attempt history so a resume reproduces the FAILED row
// byte-identically instead of re-running a cell that deterministically
// dies.
func (r *Run) CellFailed(workload, target, hash string, attempts []byte) {
	r.append(Record{Type: RecFailed, Workload: workload, Target: target, Hash: hash, Payload: attempts})
	r.mu.Lock()
	r.stats.Computed++
	r.mu.Unlock()
}

// RunComplete journals the run's natural end.
func (r *Run) RunComplete() {
	r.append(Record{Type: RecComplete})
}

// append writes one record, surviving I/O failure: the error is
// counted and warned, never propagated, because losing durability
// must not lose the in-memory result.
func (r *Run) append(rec Record) {
	if err := r.journal.Append(rec); err != nil {
		r.ioError("durable: journal %s %s/%s: %v", rec.Type, rec.Workload, rec.Target, err)
	}
}

func (r *Run) ioError(format string, args ...any) {
	r.mu.Lock()
	r.stats.IOErrors++
	r.mu.Unlock()
	r.warnf(format, args...)
}

// Stats returns a snapshot of the durability counters.
func (r *Run) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close closes the journal.
func (r *Run) Close() error {
	return r.journal.Close()
}
