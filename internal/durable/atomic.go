// Package durable makes experiment runs crash-safe: a write-ahead
// cell journal (append-only JSONL, fsync'd per record), a
// content-addressed result cache keyed by a canonical hash of the
// cell's inputs, and a resume path that replays the journal and
// re-enqueues only unfinished cells. The package is payload-agnostic
// — result payloads travel as canonical JSON (json.RawMessage) so the
// report layer above owns the row schema and durable owns only
// ordering, integrity and identity.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"isacmp/internal/simeng"
)

// WriteFileAtomic writes data to path with full-file atomicity: the
// bytes land in a temporary file in the same directory, are fsync'd,
// and are renamed over the target; the directory is fsync'd last so
// the rename itself is durable. A reader can observe the old file or
// the new file but never a torn mixture — the property the manifest
// writer, flight recorder, BENCH_*.json writers and journal
// compaction all rely on.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("%w: atomic write %s: %v", simeng.ErrIO, path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("%w: atomic write %s: %v", simeng.ErrIO, path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("%w: atomic write %s: sync: %v", simeng.ErrIO, path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("%w: atomic write %s: close: %v", simeng.ErrIO, path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("%w: atomic write %s: chmod: %v", simeng.ErrIO, path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("%w: atomic write %s: rename: %v", simeng.ErrIO, path, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a
// crash. Filesystems that refuse to sync directories (some CI
// overlays) are tolerated: the rename is still atomic, only its
// durability window widens.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
