package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"isacmp/internal/simeng"
)

// Cache is the content-addressed result store: payload bytes filed
// under the hex hash of their KeyInput, sharded by the first hash
// byte (cache/ab/abcdef….json) so directories stay small at matrix
// scale. Entries are immutable — a hash fully determines its payload
// — so Put is idempotent and Get needs no locking.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) the cache under dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: cache dir: %v", simeng.ErrIO, err)
	}
	return &Cache{dir: dir}, nil
}

// CachePath returns the cache root inside a run directory.
func CachePath(dir string) string { return filepath.Join(dir, "cache") }

func (c *Cache) path(hash string) string {
	if len(hash) < 2 {
		return filepath.Join(c.dir, "xx", hash+".json")
	}
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get returns the payload for hash, or ok=false on a miss. A
// present-but-unreadable entry is a miss, not an error: the cell
// recomputes.
func (c *Cache) Get(hash string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(hash))
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// Put stores payload under hash via the atomic writer, so a reader
// can never observe a torn entry and a crash mid-Put leaves no entry
// at all.
func (c *Cache) Put(hash string, payload []byte) error {
	p := c.path(hash)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("%w: cache shard: %v", simeng.ErrIO, err)
	}
	return WriteFileAtomic(p, payload, 0o644)
}
