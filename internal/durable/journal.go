package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"isacmp/internal/simeng"
)

// JournalSchema versions the journal record format. A reader that
// sees a different schema string must refuse the journal rather than
// guess.
const JournalSchema = "isacmp/journal/v1"

// Record types, in the order a cell's life emits them.
const (
	// RecStarted marks a cell handed to a worker. It carries no
	// payload; its presence without a matching finished/failed record
	// is what -resume re-enqueues.
	RecStarted = "cell-started"
	// RecFinished carries the cell's canonical result payload and the
	// content hash of its inputs.
	RecFinished = "cell-finished"
	// RecFailed carries the cell's attempt history (the PR 3 failure
	// record) for a cell that exhausted retries on a real fault.
	// Cancelled/drained cells are never journaled as failed — they
	// must re-run on resume.
	RecFailed = "cell-failed"
	// RecComplete marks the run's natural end; a journal ending with
	// it resumes to a zero-work run.
	RecComplete = "run-complete"
)

// Record is one journal line. Sum is a CRC-32 (IEEE) over the record
// marshaled with Sum set to zero, so a torn or bit-flipped line is
// detected before its payload is trusted.
type Record struct {
	V        string          `json:"v"`
	Seq      int             `json:"seq"`
	Type     string          `json:"type"`
	Workload string          `json:"workload,omitempty"`
	Target   string          `json:"target,omitempty"`
	Hash     string          `json:"hash,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Sum      uint32          `json:"sum"`
}

// checksum computes the record's CRC with Sum zeroed.
func (r *Record) checksum() (uint32, error) {
	saved := r.Sum
	r.Sum = 0
	data, err := json.Marshal(r)
	r.Sum = saved
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(data), nil
}

// File is the journal's write handle. It is an interface so
// faultinject can substitute short-write and ENOSPC wrappers.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configure a journal or run directory.
type Options struct {
	// OpenFile opens the journal file for appending. Nil means the
	// default os.OpenFile(O_CREATE|O_WRONLY|O_APPEND). Fault-injection
	// hook.
	OpenFile func(path string) (File, error)
	// NoSync skips the per-record fsync — only for benchmarks that
	// want to isolate the encoding cost from the disk cost. The
	// crash-consistency argument in DESIGN.md assumes NoSync is off.
	NoSync bool
}

func (o *Options) open(path string) (File, error) {
	if o != nil && o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// OpenAppendFile opens path for appending through the Options hook.
// It is the shared open path for the cell journal and the benchdb
// performance ledger, so both see the same fault-injection wrappers
// and the same NoSync escape hatch.
func OpenAppendFile(path string, opts *Options) (File, error) {
	if opts == nil {
		opts = &Options{}
	}
	return opts.open(path)
}

// JournalPath returns the journal file location inside a run
// directory.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// Journal is the append side of the write-ahead log. Append is
// serialized and fsyncs each record before returning, so a record the
// caller saw acknowledged survives a SIGKILL immediately after.
type Journal struct {
	mu   sync.Mutex
	path string
	f    File
	seq  int
	opts Options
}

// OpenJournal opens (creating if needed) the journal in dir for
// appending, continuing the sequence after nextSeq-1.
func OpenJournal(dir string, nextSeq int, opts *Options) (*Journal, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: journal dir: %v", simeng.ErrIO, err)
	}
	path := JournalPath(dir)
	f, err := opts.open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: open journal %s: %v", simeng.ErrIO, path, err)
	}
	return &Journal{path: path, f: f, seq: nextSeq, opts: *opts}, nil
}

// Append fills in the schema version, sequence number and checksum,
// writes the record as one JSONL line and fsyncs it.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.V = JournalSchema
	rec.Seq = j.seq
	sum, err := (&rec).checksum()
	if err != nil {
		return fmt.Errorf("%w: journal encode: %v", simeng.ErrIO, err)
	}
	rec.Sum = sum
	line, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("%w: journal encode: %v", simeng.ErrIO, err)
	}
	line = append(line, '\n')
	if n, err := j.f.Write(line); err != nil {
		return fmt.Errorf("%w: journal append: %v", simeng.ErrIO, err)
	} else if n != len(line) {
		return fmt.Errorf("%w: journal append: short write (%d of %d bytes)", simeng.ErrIO, n, len(line))
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("%w: journal sync: %v", simeng.ErrIO, err)
		}
	}
	j.seq++
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// cellKey identifies a matrix cell inside replay maps.
func cellKey(workload, target string) string { return workload + "\x00" + target }

// Replay is the parsed state of a journal: which cells finished,
// which failed terminally, and how trustworthy the tail was.
type Replay struct {
	// Finished maps cellKey -> the first cell-finished record.
	Finished map[string]*Record
	// Failed maps cellKey -> the first cell-failed record, for cells
	// with no finished record.
	Failed map[string]*Record
	// Started maps cellKey -> true for every cell-started seen.
	Started map[string]bool
	// Complete is true when a run-complete record was replayed.
	Complete bool
	// Records is the count of valid records replayed.
	Records int
	// TornTail is true when the journal ended in a torn or corrupt
	// final line that was tolerated (the crash wrote part of a record).
	TornTail bool
	// Dups counts duplicate cell-finished/cell-failed records that
	// were ignored (first wins).
	Dups int
}

// Lookup returns the terminal record for a cell: finished wins over
// failed.
func (rp *Replay) Lookup(workload, target string) *Record {
	k := cellKey(workload, target)
	if r, ok := rp.Finished[k]; ok {
		return r
	}
	if r, ok := rp.Failed[k]; ok {
		return r
	}
	return nil
}

// ReplayJournal reads and verifies a journal file. A missing file
// replays as empty.
func ReplayJournal(dir string) (*Replay, error) {
	data, err := os.ReadFile(JournalPath(dir))
	if os.IsNotExist(err) {
		return ReplayData(nil)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: read journal: %v", simeng.ErrIO, err)
	}
	return ReplayData(data)
}

// ReplayData replays journal bytes. The torn-tail rule: a final line
// that fails to parse or checksum is tolerated (the process died
// mid-append) — but a bad line followed by further valid records
// means corruption in the middle of the file, which is an error
// because silently skipping it could resurrect stale state. The
// function never panics on any input (FuzzJournalReplay pins this).
func ReplayData(data []byte) (*Replay, error) {
	rp := &Replay{
		Finished: make(map[string]*Record),
		Failed:   make(map[string]*Record),
		Started:  make(map[string]bool),
	}
	lines := bytes.Split(data, []byte{'\n'})
	wantSeq := -1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec := new(Record)
		bad, torn := "", true
		if err := json.Unmarshal(line, rec); err != nil {
			bad = fmt.Sprintf("parse: %v", err)
		} else if rec.V != JournalSchema {
			bad = fmt.Sprintf("schema %q (want %q)", rec.V, JournalSchema)
		} else if sum, err := rec.checksum(); err != nil || sum != rec.Sum {
			bad = fmt.Sprintf("checksum %08x (want %08x)", rec.Sum, sum)
		} else if wantSeq >= 0 && rec.Seq <= wantSeq {
			// A checksummed record with a stale sequence cannot come
			// from a crash mid-append (the checksum covers Seq): it is
			// corruption wherever it sits, never a tolerated tear.
			bad, torn = fmt.Sprintf("sequence %d not after %d", rec.Seq, wantSeq), false
		}
		if bad != "" {
			if torn && tailOnly(lines[i+1:]) {
				rp.TornTail = true
				return rp, nil
			}
			return nil, fmt.Errorf("%w: journal record %d: %s (journal is corrupt, not torn)", simeng.ErrIO, rp.Records, bad)
		}
		wantSeq = rec.Seq
		rp.Records++
		k := cellKey(rec.Workload, rec.Target)
		switch rec.Type {
		case RecStarted:
			rp.Started[k] = true
		case RecFinished:
			if _, dup := rp.Finished[k]; dup {
				rp.Dups++
			} else {
				rp.Finished[k] = rec
			}
		case RecFailed:
			if _, dup := rp.Failed[k]; dup {
				rp.Dups++
			} else {
				rp.Failed[k] = rec
			}
		case RecComplete:
			rp.Complete = true
		default:
			// Unknown record types from a future minor revision are
			// skipped, not fatal: the schema string gates real breaks.
		}
	}
	return rp, nil
}

// tailOnly reports whether the remaining lines hold no further valid
// record — the condition under which a bad line is a tolerated torn
// tail rather than mid-file corruption.
func tailOnly(rest [][]byte) bool {
	for _, line := range rest {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec := new(Record)
		if err := json.Unmarshal(line, rec); err != nil {
			continue
		}
		if rec.V != JournalSchema {
			continue
		}
		if sum, err := rec.checksum(); err == nil && sum == rec.Sum {
			return false
		}
	}
	return true
}

// Compact rewrites the journal to contain exactly the surviving
// records of a replay — finished and failed cells, re-sequenced from
// zero — dropping any torn tail, duplicates, superseded records and
// the run-complete marker (the resumed run will write its own). The
// rewrite goes through WriteFileAtomic so a crash during compaction
// leaves the previous journal intact. Returns the next sequence
// number for appending.
func Compact(dir string, rp *Replay) (int, error) {
	var buf bytes.Buffer
	seq := 0
	emit := func(rec *Record) error {
		c := *rec // copy: renumbering must not alias replay state
		c.Seq = seq
		sum, err := (&c).checksum()
		if err != nil {
			return err
		}
		c.Sum = sum
		line, err := json.Marshal(&c)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		seq++
		return nil
	}
	// Deterministic order: replay order is lost in the maps, so emit
	// by sorted cell key; byte-identity of outputs never depends on
	// journal order, only on the set of records.
	for _, k := range sortedKeys(rp.Finished) {
		if err := emit(rp.Finished[k]); err != nil {
			return 0, fmt.Errorf("%w: journal compact: %v", simeng.ErrIO, err)
		}
	}
	for _, k := range sortedKeys(rp.Failed) {
		if _, done := rp.Finished[k]; done {
			continue
		}
		if err := emit(rp.Failed[k]); err != nil {
			return 0, fmt.Errorf("%w: journal compact: %v", simeng.ErrIO, err)
		}
	}
	if err := WriteFileAtomic(JournalPath(dir), buf.Bytes(), 0o644); err != nil {
		return 0, err
	}
	return seq, nil
}

func sortedKeys(m map[string]*Record) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
